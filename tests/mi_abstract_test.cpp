// The paper's case study (Section 5, Figs. 2-4): abstract MI protocol on a
// 2x2 mesh with XY routing.
//
//  * queue size 2  -> cross-layer deadlock: the SMT layer reports a
//    candidate AND the explicit-state explorer proves it reachable
//    (Fig. 3).
//  * queue size 3  -> ADVOCAT proves deadlock freedom; the explorer agrees
//    (exhaustive search, no quiescent state).
#include <gtest/gtest.h>

#include <cstdlib>

#include "advocat/verifier.hpp"
#include "coherence/mi_abstract.hpp"
#include "sim/explorer.hpp"
#include "sim/simulator.hpp"
#include "xmas/typing.hpp"

namespace advocat {
namespace {

TEST(MiAbstract2x2, NetworkValidates) {
  coh::MiAbstractSystem sys = coh::build_mi_abstract({});
  const auto problems = sys.net.validate();
  EXPECT_TRUE(problems.empty())
      << (problems.empty() ? "" : problems.front());
  EXPECT_EQ(sys.cache_nodes.size(), 3u);
  // 2x2 mesh: 8 link queues (no ejection queues in the paper model).
  EXPECT_EQ(sys.net.num_queues(), 8u);
}

TEST(MiAbstract2x2, QueueSize2HasDeadlockCandidate) {
  coh::MiAbstractConfig config;
  config.queue_capacity = 2;
  coh::MiAbstractSystem sys = coh::build_mi_abstract(config);
  const core::VerifyResult result = core::verify(sys.net);
  EXPECT_FALSE(result.deadlock_free()) << "paper: size-2 queues deadlock";
}

TEST(MiAbstract2x2, QueueSize2DeadlockIsReachable) {
  coh::MiAbstractConfig config;
  config.queue_capacity = 2;
  coh::MiAbstractSystem sys = coh::build_mi_abstract(config);
  sim::Simulator simulator(sys.net);
  sim::ExploreOptions options;
  options.max_states = 2'000'000;
  const sim::ExploreResult result = sim::explore(simulator, options);
  ASSERT_TRUE(result.deadlock.has_value())
      << "explored " << result.states_visited << " states";
  // The deadlock matches Fig. 3's shape: some automaton is wedged in M/MI
  // while queues are saturated.
  EXPECT_FALSE(result.trace.empty());
}

TEST(MiAbstract2x2, QueueSize3ProvenDeadlockFree) {
  coh::MiAbstractConfig config;
  config.queue_capacity = 3;
  coh::MiAbstractSystem sys = coh::build_mi_abstract(config);
  const core::VerifyResult result = core::verify(sys.net);
  EXPECT_TRUE(result.deadlock_free()) << result.report.to_string();
}

TEST(MiAbstract2x2, QueueSize3ExplorerAgrees) {
  coh::MiAbstractConfig config;
  config.queue_capacity = 3;
  coh::MiAbstractSystem sys = coh::build_mi_abstract(config);
  sim::Simulator simulator(sys.net);
  sim::ExploreOptions options;
  // The full space (~1M states) takes minutes on one core; by default
  // explore a large budget and require no deadlock inside it. Set
  // ADVOCAT_FULL=1 for the exhaustive run (then completeness is asserted).
  const bool full = std::getenv("ADVOCAT_FULL") != nullptr;
  options.max_states = full ? 5'000'000 : 100'000;
  options.stop_at_deadlock = true;
  const sim::ExploreResult result = sim::explore(simulator, options);
  if (full) {
    EXPECT_TRUE(result.complete)
        << "state budget too small: " << result.states_visited;
  }
  EXPECT_FALSE(result.deadlock.has_value());
}

}  // namespace
}  // namespace advocat
