// Block/idle deadlock encoder: primitive-level behaviour on small,
// hand-analyzable networks. Every solver-backed test runs on each
// available backend; the verdicts must agree.
#include <gtest/gtest.h>

#include "automata/builder.hpp"
#include "backend_fixture.hpp"
#include "deadlock/checker.hpp"
#include "deadlock/encoder.hpp"
#include "smt/smtlib.hpp"
#include "xmas/typing.hpp"

namespace advocat::deadlock {
namespace {

using xmas::ColorId;
using xmas::Network;
using xmas::PrimId;

class Deadlock : public advocat::testing::BackendTest {
 protected:
  Report run(const Network& net) {
    const xmas::Typing typing = xmas::Typing::derive(net);
    smt::ExprFactory f;
    return check(net, typing, f, {}, /*timeout_ms=*/0, GetParam());
  }
};
ADVOCAT_INSTANTIATE_BACKENDS(Deadlock);

TEST_P(Deadlock, FairPipelineIsFree) {
  Network net;
  const ColorId d = net.colors().intern("d");
  const PrimId q = net.add_queue("q", 2);
  net.connect(net.add_source("src", {d}), 0, q, 0);
  net.connect(q, 0, net.add_sink("sink"), 0);
  EXPECT_TRUE(run(net).deadlock_free());
}

TEST_P(Deadlock, DeadSinkBlocks) {
  Network net;
  const ColorId d = net.colors().intern("d");
  const PrimId q = net.add_queue("q", 2);
  net.connect(net.add_source("src", {d}), 0, q, 0);
  net.connect(q, 0, net.add_sink("sink", /*fair=*/false), 0);
  const Report r = run(net);
  ASSERT_FALSE(r.deadlock_free());
  // The stall is reported against the source or the queue in front of the
  // dead sink. Which disjunct carries it is model-dependent (backends may
  // return different witnesses), but one of the two must fire.
  ASSERT_FALSE(r.fired.empty());
  bool stall_reported = false;
  for (const auto& tag : r.fired) {
    if (tag == "source_blocked:src" || tag == "packet_stuck:q") {
      stall_reported = true;
    }
  }
  EXPECT_TRUE(stall_reported);
}

TEST_P(Deadlock, ForkWithOneDeadBranchBlocks) {
  Network net;
  const ColorId d = net.colors().intern("d");
  const PrimId fork = net.add_fork("fork");
  const PrimId qa = net.add_queue("qa", 1);
  const PrimId qb = net.add_queue("qb", 1);
  net.connect(net.add_source("src", {d}), 0, fork, 0);
  net.connect(fork, 0, qa, 0);
  net.connect(fork, 1, qb, 0);
  net.connect(qa, 0, net.add_sink("sa"), 0);
  net.connect(qb, 0, net.add_sink("sb", /*fair=*/false), 0);
  EXPECT_FALSE(run(net).deadlock_free());
}

TEST_P(Deadlock, JoinWithStarvedTokenBlocks) {
  Network net;
  const ColorId d = net.colors().intern("d");
  const ColorId t = net.colors().intern("t");
  const PrimId join = net.add_join("join");
  const PrimId dq = net.add_queue("dq", 1);
  const PrimId tq = net.add_queue("tq", 1);
  net.connect(net.add_source("data", {d}), 0, dq, 0);
  // Token source is dead: the join can never fire.
  net.connect(net.add_source("tok", {t}, /*fair=*/false), 0, tq, 0);
  net.connect(dq, 0, join, 0);
  net.connect(tq, 0, join, 1);
  net.connect(join, 0, net.add_sink("sink"), 0);
  EXPECT_FALSE(run(net).deadlock_free());
}

TEST_P(Deadlock, JoinWithFairTokenIsFree) {
  Network net;
  const ColorId d = net.colors().intern("d");
  const ColorId t = net.colors().intern("t");
  const PrimId join = net.add_join("join");
  const PrimId dq = net.add_queue("dq", 1);
  const PrimId tq = net.add_queue("tq", 1);
  net.connect(net.add_source("data", {d}), 0, dq, 0);
  net.connect(net.add_source("tok", {t}), 0, tq, 0);
  net.connect(dq, 0, join, 0);
  net.connect(tq, 0, join, 1);
  net.connect(join, 0, net.add_sink("sink"), 0);
  EXPECT_TRUE(run(net).deadlock_free());
}

TEST_P(Deadlock, SwitchRoutesAroundDeadBranch) {
  // Only color a flows; the dead branch is never exercised, so the system
  // is free even though one sink is dead.
  Network net;
  const ColorId a = net.colors().intern("a");
  const PrimId q = net.add_queue("q", 1);
  const PrimId sw = net.add_switch("sw", 2, [a](ColorId c) {
    return c == a ? 0 : 1;
  });
  net.connect(net.add_source("src", {a}), 0, q, 0);
  net.connect(q, 0, sw, 0);
  net.connect(sw, 0, net.add_sink("live"), 0);
  net.connect(sw, 1, net.add_sink("dead", /*fair=*/false), 0);
  EXPECT_TRUE(run(net).deadlock_free());
}

TEST_P(Deadlock, AutomatonRefusingAColorBlocks) {
  // An automaton that never consumes color b: a b-packet wedges the queue.
  Network net;
  const ColorId a = net.colors().intern("a");
  const ColorId b = net.colors().intern("b");
  aut::AutomatonBuilder builder("eater", {"s"});
  builder.in_ports(1).out_ports(0);
  builder.on("s", 0, a).label("eat_a");
  const PrimId prim = net.add_automaton(builder.build());
  const PrimId q = net.add_queue("q", 1);
  net.connect(net.add_source("src", {a, b}), 0, q, 0);
  net.connect(q, 0, prim, 0);
  const Report r = run(net);
  EXPECT_FALSE(r.deadlock_free());
}

TEST_P(Deadlock, WitnessDecodingNamesQueuesAndStates) {
  Network net;
  const ColorId d = net.colors().intern("d");
  const PrimId q = net.add_queue("wedged", 2);
  net.connect(net.add_source("src", {d}), 0, q, 0);
  net.connect(q, 0, net.add_sink("sink", /*fair=*/false), 0);
  const Report r = run(net);
  ASSERT_FALSE(r.deadlock_free());
  ASSERT_FALSE(r.queue_contents.empty());
  EXPECT_NE(r.queue_contents[0].find("wedged"), std::string::npos);
  EXPECT_NE(r.to_string().find("deadlock candidate"), std::string::npos);
}

TEST(DeadlockEncoding, IsSerializableAsSmtLib) {
  Network net;
  const ColorId d = net.colors().intern("d");
  const PrimId q = net.add_queue("q", 2);
  net.connect(net.add_source("src", {d}), 0, q, 0);
  net.connect(q, 0, net.add_sink("sink"), 0);
  const xmas::Typing typing = xmas::Typing::derive(net);
  smt::ExprFactory f;
  Encoder encoder(net, typing, f);
  const Encoding enc = encoder.encode();
  const std::string text = to_smtlib(f, enc.all_assertions());
  EXPECT_NE(text.find("(set-logic"), std::string::npos);
  EXPECT_NE(text.find("check-sat"), std::string::npos);
  EXPECT_THROW(encoder.encode(), std::logic_error);  // single-shot
}

// Bag vs FIFO queue block equations: a bag with one consumable packet in a
// full queue does not block its input; a FIFO might.
TEST_P(Deadlock, BagQueueBlocksOnlyWhenAllStoredStuck) {
  for (bool fifo : {true, false}) {
    Network net;
    const ColorId a = net.colors().intern("a");
    const ColorId b = net.colors().intern("b");
    const PrimId q = net.add_queue("q", 1, fifo);
    const PrimId sw = net.add_switch("sw", 2, [a](ColorId c) {
      return c == a ? 0 : 1;
    });
    net.connect(net.add_source("src", {a, b}), 0, q, 0);
    net.connect(q, 0, sw, 0);
    net.connect(sw, 0, net.add_sink("live"), 0);
    net.connect(sw, 1, net.add_sink("dead", /*fair=*/false), 0);
    // Either way a b-packet can wedge the single-slot queue.
    EXPECT_FALSE(run(net).deadlock_free()) << "fifo=" << fifo;
  }
}

}  // namespace
}  // namespace advocat::deadlock
