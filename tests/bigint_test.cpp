// BigInt: exact arbitrary-precision arithmetic.
#include <gtest/gtest.h>

#include <cstdint>
#include <iterator>
#include <random>
#include <string>

#include "util/bigint.hpp"

namespace advocat::util {
namespace {

TEST(BigInt, ConstructionAndToString) {
  EXPECT_EQ(BigInt(0).to_string(), "0");
  EXPECT_EQ(BigInt(1).to_string(), "1");
  EXPECT_EQ(BigInt(-1).to_string(), "-1");
  EXPECT_EQ(BigInt(1234567890123456789LL).to_string(), "1234567890123456789");
  EXPECT_EQ(BigInt(INT64_MIN).to_string(), "-9223372036854775808");
}

TEST(BigInt, FromString) {
  EXPECT_EQ(BigInt::from_string("0"), BigInt(0));
  EXPECT_EQ(BigInt::from_string("-42"), BigInt(-42));
  EXPECT_EQ(BigInt::from_string("+42"), BigInt(42));
  const BigInt big = BigInt::from_string("123456789012345678901234567890");
  EXPECT_EQ(big.to_string(), "123456789012345678901234567890");
  EXPECT_FALSE(big.fits_int64());
  EXPECT_THROW(BigInt::from_string(""), std::invalid_argument);
  EXPECT_THROW(BigInt::from_string("-"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_string("12a"), std::invalid_argument);
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  const BigInt a = BigInt::from_string("4294967295");  // 2^32 - 1
  EXPECT_EQ((a + BigInt(1)).to_string(), "4294967296");
  const BigInt b = BigInt::from_string("18446744073709551615");  // 2^64 - 1
  EXPECT_EQ((b + BigInt(1)).to_string(), "18446744073709551616");
}

TEST(BigInt, SignedArithmetic) {
  EXPECT_EQ(BigInt(5) + BigInt(-7), BigInt(-2));
  EXPECT_EQ(BigInt(-5) + BigInt(7), BigInt(2));
  EXPECT_EQ(BigInt(-5) - BigInt(-7), BigInt(2));
  EXPECT_EQ(BigInt(5) * BigInt(-7), BigInt(-35));
  EXPECT_EQ(BigInt(-5) * BigInt(-7), BigInt(35));
  EXPECT_EQ(BigInt(0) * BigInt(-7), BigInt(0));
  EXPECT_FALSE((BigInt(0)).is_negative());
}

TEST(BigInt, DivisionTruncatesTowardZero) {
  EXPECT_EQ(BigInt(7) / BigInt(2), BigInt(3));
  EXPECT_EQ(BigInt(-7) / BigInt(2), BigInt(-3));
  EXPECT_EQ(BigInt(7) / BigInt(-2), BigInt(-3));
  EXPECT_EQ(BigInt(7) % BigInt(2), BigInt(1));
  EXPECT_EQ(BigInt(-7) % BigInt(2), BigInt(-1));
  EXPECT_THROW(BigInt(1) / BigInt(0), std::domain_error);
}

TEST(BigInt, MultiLimbDivision) {
  const BigInt a = BigInt::from_string("340282366920938463463374607431768211456");  // 2^128
  const BigInt b = BigInt::from_string("18446744073709551616");                    // 2^64
  EXPECT_EQ((a / b).to_string(), "18446744073709551616");
  EXPECT_EQ((a % b).to_string(), "0");
  const BigInt c = a + BigInt(12345);
  EXPECT_EQ((c % b), BigInt(12345));
}

TEST(BigInt, Comparisons) {
  EXPECT_LT(BigInt(-2), BigInt(1));
  EXPECT_LT(BigInt(-5), BigInt(-2));
  EXPECT_GT(BigInt::from_string("100000000000000000000"), BigInt(INT64_MAX));
  EXPECT_LT(BigInt::from_string("-100000000000000000000"), BigInt(INT64_MIN));
}

TEST(BigInt, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::gcd(BigInt(7), BigInt(0)), BigInt(7));
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)), BigInt(1));
}

TEST(BigInt, ToInt64Bounds) {
  EXPECT_EQ(BigInt(INT64_MAX).to_int64(), INT64_MAX);
  EXPECT_EQ(BigInt(INT64_MIN).to_int64(), INT64_MIN);
  const BigInt over = BigInt(INT64_MAX) + BigInt(1);
  EXPECT_FALSE(over.fits_int64());
  EXPECT_THROW((void)over.to_int64(), std::overflow_error);
  // -2^63 fits, -2^63-1 does not.
  EXPECT_TRUE((-over).fits_int64());
  EXPECT_FALSE((-over - BigInt(1)).fits_int64());
}

// Property sweep: arithmetic agrees with int64 on random small values.
class BigIntRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(BigIntRandomProperty, MatchesInt64Semantics) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_int_distribution<std::int64_t> dist(-1'000'000'000LL,
                                                   1'000'000'000LL);
  for (int i = 0; i < 200; ++i) {
    const std::int64_t x = dist(rng);
    const std::int64_t y = dist(rng);
    EXPECT_EQ((BigInt(x) + BigInt(y)).to_int64(), x + y);
    EXPECT_EQ((BigInt(x) - BigInt(y)).to_int64(), x - y);
    EXPECT_EQ((BigInt(x) * BigInt(y)).to_int64(), x * y);
    if (y != 0) {
      EXPECT_EQ((BigInt(x) / BigInt(y)).to_int64(), x / y);
      EXPECT_EQ((BigInt(x) % BigInt(y)).to_int64(), x % y);
    }
    EXPECT_EQ(BigInt(x) < BigInt(y), x < y);
  }
}

// Property: (a*b)/b == a and (a/b)*b + a%b == a on multi-limb values.
TEST_P(BigIntRandomProperty, DivModRoundTrip) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  std::uniform_int_distribution<std::int64_t> dist(-1'000'000'000LL,
                                                   1'000'000'000LL);
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt(dist(rng)) * BigInt(dist(rng)) * BigInt(dist(rng));
    BigInt b = BigInt(dist(rng)) * BigInt(dist(rng));
    if (b.is_zero()) continue;
    EXPECT_EQ((a * b) / b, a);
    EXPECT_EQ((a / b) * b + (a % b), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntRandomProperty,
                         ::testing::Values(1, 2, 3, 42, 12345));

// ---- small/heap boundary fuzz -------------------------------------------
//
// The dual representation promotes to heap limbs exactly when a value
// leaves [INT64_MIN, INT64_MAX] and demotes when a result re-enters it, so
// the most error-prone inputs are the ones hugging ±2^63. Fuzz add / sub /
// mul / compare / gcd with operands a few steps either side of the
// boundary against a __int128 reference, and assert the canonical-form
// invariant (fits_int64() ⟺ the value is in int64 range) on every result.

std::string i128_to_string(__int128 v) {
  if (v == 0) return "0";
  const bool neg = v < 0;
  unsigned __int128 mag =
      neg ? ~static_cast<unsigned __int128>(v) + 1
          : static_cast<unsigned __int128>(v);
  std::string digits;
  while (mag != 0) {
    digits += static_cast<char>('0' + static_cast<int>(mag % 10));
    mag /= 10;
  }
  if (neg) digits += '-';
  return {digits.rbegin(), digits.rend()};
}

void expect_matches_i128(const BigInt& got, __int128 want,
                         const char* what) {
  EXPECT_EQ(got.to_string(), i128_to_string(want)) << what;
  constexpr __int128 kMin = INT64_MIN;
  constexpr __int128 kMax = INT64_MAX;
  EXPECT_EQ(got.fits_int64(), want >= kMin && want <= kMax)
      << what << ": canonical-form invariant broken for "
      << i128_to_string(want);
}

TEST_P(BigIntRandomProperty, BoundaryFuzzAroundTwoPow63) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  // Anchors at the representation boundary and zero; offsets keep the
  // operands within a few steps of an anchor.
  const std::int64_t anchors[] = {INT64_MIN,     INT64_MIN + 1,
                                  INT64_MIN / 2, -1,
                                  0,             1,
                                  INT64_MAX / 2, INT64_MAX - 1,
                                  INT64_MAX};
  std::uniform_int_distribution<std::size_t> pick(0, std::size(anchors) - 1);
  std::uniform_int_distribution<std::int64_t> off(-3, 3);
  auto draw = [&]() -> std::int64_t {
    const std::int64_t base = anchors[pick(rng)];
    const std::int64_t delta = off(rng);
    // Saturate instead of overflowing the draw itself; the arithmetic
    // under test still crosses the boundary because the anchors sit on it.
    if (delta > 0 && base > INT64_MAX - delta) return INT64_MAX;
    if (delta < 0 && base < INT64_MIN - delta) return INT64_MIN;
    return base + delta;
  };
  for (int i = 0; i < 400; ++i) {
    const std::int64_t x = draw();
    const std::int64_t y = draw();
    const __int128 xw = x;
    const __int128 yw = y;
    expect_matches_i128(BigInt(x) + BigInt(y), xw + yw, "add");
    expect_matches_i128(BigInt(x) - BigInt(y), xw - yw, "sub");
    expect_matches_i128(BigInt(x) * BigInt(y), xw * yw, "mul");
    EXPECT_EQ(BigInt(x) < BigInt(y), x < y);
    EXPECT_EQ(BigInt(x) == BigInt(y), x == y);
    // gcd reference in unsigned space (|INT64_MIN| overflows int64).
    unsigned __int128 a = xw < 0 ? static_cast<unsigned __int128>(-xw)
                                 : static_cast<unsigned __int128>(xw);
    unsigned __int128 b = yw < 0 ? static_cast<unsigned __int128>(-yw)
                                 : static_cast<unsigned __int128>(yw);
    while (b != 0) {
      const unsigned __int128 t = a % b;
      a = b;
      b = t;
    }
    expect_matches_i128(BigInt::gcd(BigInt(x), BigInt(y)),
                        static_cast<__int128>(a), "gcd");
  }
}

TEST(BigInt, BoundaryPromoteDemoteRoundTrip) {
  // Crossing the boundary and coming back must land in the small form.
  const BigInt max(INT64_MAX);
  const BigInt min(INT64_MIN);
  const BigInt over = max + BigInt(1);    // 2^63: heap form
  EXPECT_FALSE(over.fits_int64());
  EXPECT_TRUE((over - BigInt(1)).fits_int64());
  EXPECT_EQ(over - BigInt(1), max);
  EXPECT_TRUE((-over).fits_int64());      // -2^63 == INT64_MIN: small form
  EXPECT_EQ(-over, min);
  EXPECT_FALSE((min - BigInt(1)).fits_int64());
  EXPECT_EQ(min - BigInt(1) + BigInt(1), min);
  EXPECT_EQ(min * BigInt(-1), over);
  EXPECT_EQ(over / BigInt(-1), min);
  EXPECT_EQ(min.abs(), over);
  EXPECT_EQ(BigInt::gcd(min, min), over) << "gcd is the (positive) 2^63";
}

}  // namespace
}  // namespace advocat::util
