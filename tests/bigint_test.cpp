// BigInt: exact arbitrary-precision arithmetic.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "util/bigint.hpp"

namespace advocat::util {
namespace {

TEST(BigInt, ConstructionAndToString) {
  EXPECT_EQ(BigInt(0).to_string(), "0");
  EXPECT_EQ(BigInt(1).to_string(), "1");
  EXPECT_EQ(BigInt(-1).to_string(), "-1");
  EXPECT_EQ(BigInt(1234567890123456789LL).to_string(), "1234567890123456789");
  EXPECT_EQ(BigInt(INT64_MIN).to_string(), "-9223372036854775808");
}

TEST(BigInt, FromString) {
  EXPECT_EQ(BigInt::from_string("0"), BigInt(0));
  EXPECT_EQ(BigInt::from_string("-42"), BigInt(-42));
  EXPECT_EQ(BigInt::from_string("+42"), BigInt(42));
  const BigInt big = BigInt::from_string("123456789012345678901234567890");
  EXPECT_EQ(big.to_string(), "123456789012345678901234567890");
  EXPECT_FALSE(big.fits_int64());
  EXPECT_THROW(BigInt::from_string(""), std::invalid_argument);
  EXPECT_THROW(BigInt::from_string("-"), std::invalid_argument);
  EXPECT_THROW(BigInt::from_string("12a"), std::invalid_argument);
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  const BigInt a = BigInt::from_string("4294967295");  // 2^32 - 1
  EXPECT_EQ((a + BigInt(1)).to_string(), "4294967296");
  const BigInt b = BigInt::from_string("18446744073709551615");  // 2^64 - 1
  EXPECT_EQ((b + BigInt(1)).to_string(), "18446744073709551616");
}

TEST(BigInt, SignedArithmetic) {
  EXPECT_EQ(BigInt(5) + BigInt(-7), BigInt(-2));
  EXPECT_EQ(BigInt(-5) + BigInt(7), BigInt(2));
  EXPECT_EQ(BigInt(-5) - BigInt(-7), BigInt(2));
  EXPECT_EQ(BigInt(5) * BigInt(-7), BigInt(-35));
  EXPECT_EQ(BigInt(-5) * BigInt(-7), BigInt(35));
  EXPECT_EQ(BigInt(0) * BigInt(-7), BigInt(0));
  EXPECT_FALSE((BigInt(0)).is_negative());
}

TEST(BigInt, DivisionTruncatesTowardZero) {
  EXPECT_EQ(BigInt(7) / BigInt(2), BigInt(3));
  EXPECT_EQ(BigInt(-7) / BigInt(2), BigInt(-3));
  EXPECT_EQ(BigInt(7) / BigInt(-2), BigInt(-3));
  EXPECT_EQ(BigInt(7) % BigInt(2), BigInt(1));
  EXPECT_EQ(BigInt(-7) % BigInt(2), BigInt(-1));
  EXPECT_THROW(BigInt(1) / BigInt(0), std::domain_error);
}

TEST(BigInt, MultiLimbDivision) {
  const BigInt a = BigInt::from_string("340282366920938463463374607431768211456");  // 2^128
  const BigInt b = BigInt::from_string("18446744073709551616");                    // 2^64
  EXPECT_EQ((a / b).to_string(), "18446744073709551616");
  EXPECT_EQ((a % b).to_string(), "0");
  const BigInt c = a + BigInt(12345);
  EXPECT_EQ((c % b), BigInt(12345));
}

TEST(BigInt, Comparisons) {
  EXPECT_LT(BigInt(-2), BigInt(1));
  EXPECT_LT(BigInt(-5), BigInt(-2));
  EXPECT_GT(BigInt::from_string("100000000000000000000"), BigInt(INT64_MAX));
  EXPECT_LT(BigInt::from_string("-100000000000000000000"), BigInt(INT64_MIN));
}

TEST(BigInt, Gcd) {
  EXPECT_EQ(BigInt::gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::gcd(BigInt(7), BigInt(0)), BigInt(7));
  EXPECT_EQ(BigInt::gcd(BigInt(17), BigInt(13)), BigInt(1));
}

TEST(BigInt, ToInt64Bounds) {
  EXPECT_EQ(BigInt(INT64_MAX).to_int64(), INT64_MAX);
  EXPECT_EQ(BigInt(INT64_MIN).to_int64(), INT64_MIN);
  const BigInt over = BigInt(INT64_MAX) + BigInt(1);
  EXPECT_FALSE(over.fits_int64());
  EXPECT_THROW((void)over.to_int64(), std::overflow_error);
  // -2^63 fits, -2^63-1 does not.
  EXPECT_TRUE((-over).fits_int64());
  EXPECT_FALSE((-over - BigInt(1)).fits_int64());
}

// Property sweep: arithmetic agrees with int64 on random small values.
class BigIntRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(BigIntRandomProperty, MatchesInt64Semantics) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_int_distribution<std::int64_t> dist(-1'000'000'000LL,
                                                   1'000'000'000LL);
  for (int i = 0; i < 200; ++i) {
    const std::int64_t x = dist(rng);
    const std::int64_t y = dist(rng);
    EXPECT_EQ((BigInt(x) + BigInt(y)).to_int64(), x + y);
    EXPECT_EQ((BigInt(x) - BigInt(y)).to_int64(), x - y);
    EXPECT_EQ((BigInt(x) * BigInt(y)).to_int64(), x * y);
    if (y != 0) {
      EXPECT_EQ((BigInt(x) / BigInt(y)).to_int64(), x / y);
      EXPECT_EQ((BigInt(x) % BigInt(y)).to_int64(), x % y);
    }
    EXPECT_EQ(BigInt(x) < BigInt(y), x < y);
  }
}

// Property: (a*b)/b == a and (a/b)*b + a%b == a on multi-limb values.
TEST_P(BigIntRandomProperty, DivModRoundTrip) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  std::uniform_int_distribution<std::int64_t> dist(-1'000'000'000LL,
                                                   1'000'000'000LL);
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt(dist(rng)) * BigInt(dist(rng)) * BigInt(dist(rng));
    BigInt b = BigInt(dist(rng)) * BigInt(dist(rng));
    if (b.is_zero()) continue;
    EXPECT_EQ((a * b) / b, a);
    EXPECT_EQ((a / b) * b + (a % b), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntRandomProperty,
                         ::testing::Values(1, 2, 3, 42, 12345));

}  // namespace
}  // namespace advocat::util
