// Rational: exact normalized fractions.
#include <gtest/gtest.h>

#include <random>

#include "util/rational.hpp"

namespace advocat::util {
namespace {

TEST(Rational, NormalizesOnConstruction) {
  const Rational r(BigInt(6), BigInt(-8));
  EXPECT_EQ(r.num(), BigInt(-3));
  EXPECT_EQ(r.den(), BigInt(4));
  EXPECT_TRUE(r.is_negative());
  EXPECT_THROW(Rational(BigInt(1), BigInt(0)), std::domain_error);
}

TEST(Rational, ZeroHasCanonicalForm) {
  const Rational z(BigInt(0), BigInt(-17));
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.den(), BigInt(1));
  EXPECT_EQ(z, Rational(0));
}

TEST(Rational, Arithmetic) {
  const Rational half(BigInt(1), BigInt(2));
  const Rational third(BigInt(1), BigInt(3));
  EXPECT_EQ(half + third, Rational(BigInt(5), BigInt(6)));
  EXPECT_EQ(half - third, Rational(BigInt(1), BigInt(6)));
  EXPECT_EQ(half * third, Rational(BigInt(1), BigInt(6)));
  EXPECT_EQ(half / third, Rational(BigInt(3), BigInt(2)));
  EXPECT_EQ(-half, Rational(BigInt(-1), BigInt(2)));
  EXPECT_THROW(half / Rational(0), std::domain_error);
  EXPECT_THROW(Rational(0).reciprocal(), std::domain_error);
}

TEST(Rational, Ordering) {
  EXPECT_LT(Rational(BigInt(1), BigInt(3)), Rational(BigInt(1), BigInt(2)));
  EXPECT_LT(Rational(-1), Rational(BigInt(-1), BigInt(2)));
  EXPECT_GT(Rational(2), Rational(BigInt(7), BigInt(4)));
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(5).to_string(), "5");
  EXPECT_EQ(Rational(BigInt(-3), BigInt(4)).to_string(), "-3/4");
  EXPECT_EQ(Rational(BigInt(8), BigInt(4)).to_string(), "2");
}

// Field axioms on random values.
class RationalProperty : public ::testing::TestWithParam<int> {};

TEST_P(RationalProperty, FieldAxioms) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_int_distribution<std::int64_t> dist(-50, 50);
  auto rand_rational = [&] {
    std::int64_t d = 0;
    while (d == 0) d = dist(rng);
    return Rational(BigInt(dist(rng)), BigInt(d));
  };
  for (int i = 0; i < 100; ++i) {
    const Rational a = rand_rational();
    const Rational b = rand_rational();
    const Rational c = rand_rational();
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + (-a), Rational(0));
    if (!a.is_zero()) {
      EXPECT_EQ(a * a.reciprocal(), Rational(1));
      EXPECT_EQ(b / a * a, b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalProperty, ::testing::Values(7, 11, 13));

}  // namespace
}  // namespace advocat::util
