// Certified Unsat verdicts: every native refutation serializes to a
// certificate the standalone checker (tools/proof_check.cpp) accepts, and
// the checker rejects — with a named reason — a certificate corrupted in
// any single ingredient (dropped clause, perturbed Farkas multiplier,
// swapped literal, truncated tail). The checker shares nothing with the
// solver beyond the exact-number primitives, so these tests are the
// trust anchor of the whole proof pipeline.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "backend_fixture.hpp"
#include "proof_check.hpp"
#include "smt/expr.hpp"
#include "smt/simplex_theory.hpp"
#include "smt/solver.hpp"
#include "smt/theory.hpp"

namespace advocat::smt {
namespace {

using proofcheck::CheckResult;
using proofcheck::check_proof_text;

/// Collects every certificate of a session in memory.
class CaptureSink : public ProofSink {
 public:
  void on_unsat_certificate(const Certificate& cert) override {
    certs.push_back(cert);
  }
  std::vector<Certificate> certs;
};

/// x ≤ 2 ∧ x ≥ 5: the smallest theory-level contradiction — its
/// certificate must contain a theory lemma with an inline Farkas proof.
void assert_interval_clash(ExprFactory& f, Solver& s) {
  const ExprId x = f.int_var("x");
  s.add(f.le(x, f.int_const(2)));
  s.add(f.le(f.int_const(5), x));
}

TEST(ProofCertificate, IntervalClashCertificateAccepted) {
  ExprFactory f;
  auto s = make_solver(f, Backend::Native);
  CaptureSink sink;
  s->set_proof_sink(&sink);
  assert_interval_clash(f, *s);
  ASSERT_EQ(s->check(), SatResult::Unsat);
  ASSERT_EQ(sink.certs.size(), 1u);
  const Certificate& cert = sink.certs[0];
  EXPECT_EQ(cert.mode, "native");
  EXPECT_TRUE(cert.complete) << cert.reason;
  EXPECT_EQ(cert.proof_bytes, cert.text.size());
  const CheckResult r = check_proof_text(cert.text);
  EXPECT_TRUE(r.ok) << r.reason << ": " << r.detail;
  EXPECT_EQ(r.mode, "native");
  // The refutation is theory-level: an inline lemma proof must be there.
  EXPECT_NE(cert.text.find("lem"), std::string::npos);
  EXPECT_NE(cert.text.find("\nf "), std::string::npos);
}

TEST(ProofCertificate, BooleanContradictionCertificateAccepted) {
  ExprFactory f;
  auto s = make_solver(f, Backend::Native);
  CaptureSink sink;
  s->set_proof_sink(&sink);
  const ExprId p = f.bool_var("p");
  const ExprId q = f.bool_var("q");
  s->add(f.or_({p, q}));
  s->add(f.or_({p, f.not_(q)}));
  s->add(f.not_(p));
  ASSERT_EQ(s->check(), SatResult::Unsat);
  ASSERT_EQ(sink.certs.size(), 1u);
  const CheckResult r = check_proof_text(sink.certs[0].text);
  EXPECT_TRUE(r.ok) << r.reason << ": " << r.detail;
}

TEST(ProofCertificate, TriviallyUnsatCertificateAccepted) {
  ExprFactory f;
  auto s = make_solver(f, Backend::Native);
  CaptureSink sink;
  s->set_proof_sink(&sink);
  const ExprId p = f.bool_var("p");
  s->add(f.and_({p, f.not_(p)}));  // translation derives the empty clause
  ASSERT_EQ(s->check(), SatResult::Unsat);
  ASSERT_EQ(sink.certs.size(), 1u);
  const CheckResult r = check_proof_text(sink.certs[0].text);
  EXPECT_TRUE(r.ok) << r.reason << ": " << r.detail;
}

TEST(ProofCertificate, SatCheckEmitsNoCertificate) {
  ExprFactory f;
  auto s = make_solver(f, Backend::Native);
  CaptureSink sink;
  s->set_proof_sink(&sink);
  const ExprId x = f.int_var("x");
  s->add(f.le(x, f.int_const(10)));
  ASSERT_EQ(s->check(), SatResult::Sat);
  EXPECT_TRUE(sink.certs.empty());
}

TEST(ProofCertificate, IncrementalSessionCertifiesEveryUnsat) {
  ExprFactory f;
  auto s = make_solver(f, Backend::Native);
  CaptureSink sink;
  s->set_proof_sink(&sink);
  const ExprId x = f.int_var("x");
  const ExprId y = f.int_var("y");
  s->add(f.le(x, f.int_const(4)));
  s->add(f.le(f.int_const(0), x));
  // Probe a shrinking capacity: y ≥ k under x + y ≤ 4 ∧ y ≥ x ∧ x ≥ 3.
  s->add(f.le(f.int_const(3), x));
  s->add(f.le(f.add({x, y}), f.int_const(4)));
  for (int k = 0; k <= 3; ++k) {
    s->push();
    s->add(f.le(f.int_const(k), y));
    const SatResult r = s->check();
    EXPECT_EQ(r, k <= 1 ? SatResult::Sat : SatResult::Unsat) << "k=" << k;
    s->pop();
  }
  ASSERT_EQ(sink.certs.size(), 2u);  // k = 2 and k = 3
  for (const Certificate& cert : sink.certs) {
    EXPECT_TRUE(cert.complete) << cert.reason;
    const CheckResult r = check_proof_text(cert.text);
    EXPECT_TRUE(r.ok) << r.reason << ": " << r.detail;
  }
}

TEST(ProofCertificate, AssumptionRefutationCertified) {
  ExprFactory f;
  auto s = make_solver(f, Backend::Native);
  CaptureSink sink;
  s->set_proof_sink(&sink);
  const ExprId x = f.int_var("x");
  s->add(f.le(x, f.int_const(7)));
  ASSERT_EQ(s->check_assuming({f.le(f.int_const(9), x)}), SatResult::Unsat);
  ASSERT_EQ(sink.certs.size(), 1u);
  const CheckResult r = check_proof_text(sink.certs[0].text);
  EXPECT_TRUE(r.ok) << r.reason << ": " << r.detail;
}

TEST(ProofCertificate, EqualityAndDisequalityCertified) {
  ExprFactory f;
  auto s = make_solver(f, Backend::Native);
  CaptureSink sink;
  s->set_proof_sink(&sink);
  const ExprId x = f.int_var("x");
  const ExprId y = f.int_var("y");
  // x = 2y (even) ∧ x = 2z+1 (odd) — needs equality splitting or cuts.
  const ExprId z = f.int_var("z");
  s->add(f.eq(x, f.mul_const(2, y)));
  s->add(f.eq(x, f.add({f.mul_const(2, z), f.int_const(1)})));
  s->add(f.le(f.int_const(0), x));
  s->add(f.le(x, f.int_const(20)));
  ASSERT_EQ(s->check(), SatResult::Unsat);
  ASSERT_EQ(sink.certs.size(), 1u);
  EXPECT_TRUE(sink.certs[0].complete) << sink.certs[0].reason;
  const CheckResult r = check_proof_text(sink.certs[0].text);
  EXPECT_TRUE(r.ok) << r.reason << ": " << r.detail;
}

TEST(ProofCertificate, MidSessionAttachMarkedIncomplete) {
  ExprFactory f;
  auto s = make_solver(f, Backend::Native);
  const ExprId x = f.int_var("x");
  s->add(f.le(x, f.int_const(2)));
  ASSERT_EQ(s->check(), SatResult::Sat);  // unlogged check
  CaptureSink sink;
  s->set_proof_sink(&sink);
  s->add(f.le(f.int_const(5), x));
  ASSERT_EQ(s->check(), SatResult::Unsat);
  ASSERT_EQ(sink.certs.size(), 1u);
  EXPECT_FALSE(sink.certs[0].complete);
  EXPECT_FALSE(sink.certs[0].reason.empty());
}

TEST(ProofCertificate, LoggingDoesNotPerturbDeterministicStats) {
  // The certification pipeline must be observation-only: the same
  // deterministic check with and without a sink returns the same verdict
  // and bit-identical search statistics.
  auto run = [](bool with_sink, SolveStats& stats) {
    ExprFactory f;
    auto s = make_solver(f, Backend::Native);
    s->set_deterministic(true);
    CaptureSink sink;
    if (with_sink) s->set_proof_sink(&sink);
    const ExprId x = f.int_var("x");
    const ExprId y = f.int_var("y");
    s->add(f.le(f.add({f.mul_const(3, x), f.mul_const(5, y)}),
                f.int_const(14)));
    s->add(f.le(f.int_const(2), x));
    s->add(f.le(f.int_const(2), y));
    const SatResult r = s->check();
    stats = s->solve_stats();
    return r;
  };
  SolveStats with{};
  SolveStats without{};
  ASSERT_EQ(run(true, with), SatResult::Unsat);
  ASSERT_EQ(run(false, without), SatResult::Unsat);
  EXPECT_EQ(with.decisions, without.decisions);
  EXPECT_EQ(with.conflicts, without.conflicts);
  EXPECT_EQ(with.propagations, without.propagations);
  EXPECT_EQ(with.restarts, without.restarts);
  EXPECT_EQ(with.learned_clauses, without.learned_clauses);
}

TEST(ProofCertificate, ParallelUnsatCertified) {
  for (const unsigned threads : {2u, 4u}) {
    ExprFactory f;
    auto s = make_solver(f, Backend::Native);
    s->set_threads(threads);
    CaptureSink sink;
    s->set_proof_sink(&sink);
    // Small pigeonhole-flavoured system: enough conflicts to exercise the
    // search, refuted whatever the parallel mode decides to do.
    std::vector<ExprId> vars;
    ExprId sum = f.int_const(0);
    for (int i = 0; i < 4; ++i) {
      const ExprId v = f.int_var("h" + std::to_string(i));
      s->add(f.le(f.int_const(1), v));
      vars.push_back(v);
      sum = f.add({sum, v});
    }
    s->add(f.le(sum, f.int_const(3)));
    ASSERT_EQ(s->check(), SatResult::Unsat) << "threads=" << threads;
    ASSERT_EQ(sink.certs.size(), 1u);
    const CheckResult r = check_proof_text(sink.certs[0].text);
    EXPECT_TRUE(r.ok) << "threads=" << threads << ": " << r.reason << ": "
                      << r.detail;
  }
}

// ------------------------------------------------------- mutation tests
// Every certificate ingredient, corrupted one at a time, must be caught
// and named. The base certificate is a real solver artifact, not a
// hand-written fixture, so the mutations track the live grammar.

std::string interval_clash_certificate() {
  ExprFactory f;
  auto s = make_solver(f, Backend::Native);
  CaptureSink sink;
  s->set_proof_sink(&sink);
  assert_interval_clash(f, *s);
  EXPECT_EQ(s->check(), SatResult::Unsat);
  EXPECT_EQ(sink.certs.size(), 1u);
  return sink.certs.empty() ? std::string() : sink.certs[0].text;
}

TEST(ProofMutation, BaseCertificateAccepted) {
  const CheckResult r = check_proof_text(interval_clash_certificate());
  ASSERT_TRUE(r.ok) << r.reason << ": " << r.detail;
}

TEST(ProofMutation, DroppedProblemClauseRejected) {
  std::string text = interval_clash_certificate();
  // Drop the first `assume` hypothesis: the refutation loses a premise.
  const std::size_t at = text.find("\nassume ");
  ASSERT_NE(at, std::string::npos);
  const std::size_t eol = text.find('\n', at + 1);
  text.erase(at, eol - at);
  const CheckResult r = check_proof_text(text);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.reason == "qed-failed" || r.reason == "rup-failed" ||
              r.reason == "ctx-underived" || r.reason == "lemma-unproven")
      << r.reason;
}

TEST(ProofMutation, PerturbedFarkasMultiplierRejected) {
  std::string text = interval_clash_certificate();
  // First Farkas step: "f <n> <ref> <num> <den> ..." — scale the first
  // multiplier's numerator so the combination no longer cancels.
  const std::size_t at = text.find("\nf ");
  ASSERT_NE(at, std::string::npos);
  std::size_t sp = text.find(' ', at + 3);   // after <n>
  ASSERT_NE(sp, std::string::npos);
  sp = text.find(' ', sp + 1);               // after <ref>
  ASSERT_NE(sp, std::string::npos);
  text.insert(sp + 1, "7");  // 1 -> 71, or any num -> 7num
  const CheckResult r = check_proof_text(text);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.reason, "lemma-invalid-farkas") << r.detail;
}

TEST(ProofMutation, SwappedLiteralRejected) {
  std::string text = interval_clash_certificate();
  // Negate the first literal of the first lemma clause: its inline proof
  // no longer matches the premises.
  const std::size_t at = text.find("\nlem ");
  ASSERT_NE(at, std::string::npos);
  const std::size_t lit = at + 5;
  if (text[lit] == '-') {
    text.erase(lit, 1);
  } else {
    text.insert(lit, "-");
  }
  const CheckResult r = check_proof_text(text);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.reason == "lemma-bad-ref" ||
              r.reason == "lemma-invalid-farkas" ||
              r.reason == "lemma-open-branch" || r.reason == "qed-failed" ||
              r.reason == "lemma-diseq-unforced")
      << r.reason;
}

TEST(ProofMutation, TruncatedTailRejected) {
  std::string text = interval_clash_certificate();
  const std::size_t qed = text.rfind("qed");
  ASSERT_NE(qed, std::string::npos);
  text.resize(qed);
  const CheckResult r = check_proof_text(text);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.reason, "truncated") << r.detail;
}

TEST(ProofMutation, TruncatedLemmaBodyRejected) {
  std::string text = interval_clash_certificate();
  // Cut everything from the first proof step to the lemma's `end`: the
  // branch is left open.
  const std::size_t f_at = text.find("\nf ");
  ASSERT_NE(f_at, std::string::npos);
  const std::size_t end_at = text.find("\nend", f_at);
  ASSERT_NE(end_at, std::string::npos);
  text.erase(f_at, end_at - f_at);
  const CheckResult r = check_proof_text(text);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.reason, "lemma-open-branch") << r.detail;
}

TEST(ProofMutation, UnprovenLemmaRejected) {
  std::string text = interval_clash_certificate();
  const std::size_t f_at = text.find("\nf ");
  ASSERT_NE(f_at, std::string::npos);
  const std::size_t end_at = text.find("\nend", f_at);
  ASSERT_NE(end_at, std::string::npos);
  text.replace(f_at, end_at - f_at, "\nunproven");
  const CheckResult r = check_proof_text(text);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.reason, "lemma-unproven") << r.detail;
}

TEST(ProofMutation, GarbageHeaderRejected) {
  const CheckResult r = check_proof_text("not a proof\n");
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.reason, "bad-header");
}

TEST(ProofMutation, AttestedCertificateAcceptedAsAttested) {
  const CheckResult r =
      check_proof_text("advocat-proof 1\nmode attested z3\nqed\n");
  EXPECT_TRUE(r.ok) << r.reason;
  EXPECT_EQ(r.mode, "attested");
}

// ---------------------------------------------- Farkas multiplier surface
// The theory bridge exposes the exact multipliers of a branch-free
// refutation (SimplexTheory::Result::farkas); re-substituting them must
// cancel every column and cross zero — the same invariant the proof
// checker enforces on serialized `f` steps.
TEST(SimplexFarkas, ExposedMultipliersCancelExactly) {
  SimplexTheory th;
  theory::Row r1{{{0, 1}, {1, 1}}, 3};    //  x + y ≤ 3
  theory::Row r2{{{0, -1}}, -2};          //  x ≥ 2
  theory::Row r3{{{1, -1}}, -2};          //  y ≥ 2
  const SimplexTheory::Result res =
      th.check({&r1, &r2, &r3}, {}, /*integer_complete=*/false);
  ASSERT_EQ(res.verdict, SimplexTheory::Verdict::Infeasible);
  ASSERT_FALSE(res.farkas.empty());
  const std::vector<theory::Row> rows{r1, r2, r3};
  util::Rational col_x(0), col_y(0), bound(0);
  for (const linalg::FarkasTerm& t : res.farkas) {
    ASSERT_GE(t.tag, 0);
    ASSERT_LT(static_cast<std::size_t>(t.tag), rows.size());
    EXPECT_FALSE(t.mult.is_negative());
    for (const auto& [v, c] : rows[static_cast<std::size_t>(t.tag)].terms) {
      (v == 0 ? col_x : col_y) += t.mult * util::Rational(c);
    }
    bound += t.mult * util::Rational(rows[static_cast<std::size_t>(t.tag)].bound);
  }
  EXPECT_TRUE(col_x.is_zero());
  EXPECT_TRUE(col_y.is_zero());
  EXPECT_TRUE(bound.is_negative());
}

}  // namespace
}  // namespace advocat::smt
