// GEM5-inspired MI protocol: structure, protocol-level freedom, cross-layer
// sizing boundary, and agreement between the SMT pipeline and the
// explicit-state ground truth.
#include <gtest/gtest.h>

#include "advocat/verifier.hpp"
#include "backend_fixture.hpp"
#include "coherence/mi_gem5.hpp"
#include "sim/explorer.hpp"
#include "sim/simulator.hpp"
#include "xmas/typing.hpp"

namespace advocat {
namespace {

TEST(MiGem5, NetworkValidates) {
  coh::MiGem5System sys = coh::build_mi_gem5({});
  const auto problems = sys.net.validate();
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems[0]);
  // 2x2 with one directory and one DMA node leaves two caches.
  EXPECT_EQ(sys.cache_nodes.size(), 2u);
}

TEST(MiGem5, EightMessageTypesOnTheWire) {
  coh::MiGem5System sys = coh::build_mi_gem5({});
  const xmas::Typing typing = xmas::Typing::derive(sys.net);
  std::vector<std::string> types;
  for (xmas::PrimId q : sys.net.prims_of_kind(xmas::PrimKind::Queue)) {
    for (xmas::ColorId d : typing.of(sys.net.prim(q).in[0])) {
      const std::string& t = sys.net.colors().get(d).type;
      if (std::find(types.begin(), types.end(), t) == types.end()) {
        types.push_back(t);
      }
    }
  }
  EXPECT_EQ(types.size(), 8u);  // the paper's 8 message types
}

TEST(MiGem5, RejectsBadNodeAssignments) {
  coh::MiGem5Config config;
  config.directory_node = 99;
  EXPECT_THROW(coh::build_mi_gem5(config), std::invalid_argument);
  config.directory_node = 3;
  config.dma_node = 3;  // same as directory
  EXPECT_THROW(coh::build_mi_gem5(config), std::invalid_argument);
}

TEST(MiGem5, DeadlockFreeAtCapacity2Proven) {
  coh::MiGem5Config config;
  config.queue_capacity = 2;
  coh::MiGem5System sys = coh::build_mi_gem5(config);
  const core::VerifyResult result = core::verify(sys.net);
  EXPECT_TRUE(result.deadlock_free()) << result.report.to_string();
}

TEST(MiGem5, ExplorerAgreesAtCapacity2) {
  coh::MiGem5Config config;
  config.queue_capacity = 2;
  coh::MiGem5System sys = coh::build_mi_gem5(config);
  sim::Simulator simulator(sys.net);
  const sim::ExploreResult result = sim::explore(simulator);
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.deadlock.has_value());
}

TEST(MiGem5, DeadlocksAtCapacity1) {
  coh::MiGem5Config config;
  config.queue_capacity = 1;
  coh::MiGem5System sys = coh::build_mi_gem5(config);
  const core::VerifyResult result = core::verify(sys.net);
  EXPECT_FALSE(result.deadlock_free());
  // And the candidate is real: exhaustive exploration finds it.
  sim::Simulator simulator(sys.net);
  const sim::ExploreResult ground = sim::explore(simulator);
  EXPECT_TRUE(ground.deadlock.has_value());
}

// Backend-parameterized since PR 4: the native solver's CDCL core keeps
// learned clauses across the sizing probes, so the 3x3 boundary is found
// in seconds on every backend (it used to be Z3-only).
class MiGem5Backend : public advocat::testing::BackendTest {};
ADVOCAT_INSTANTIATE_BACKENDS(MiGem5Backend);

TEST_P(MiGem5Backend, LargerMeshNeedsLargerQueues) {
  auto make = [](std::size_t cap) {
    coh::MiGem5Config config;
    config.width = 3;
    config.height = 3;
    config.queue_capacity = cap;
    return std::move(coh::build_mi_gem5(config).net);
  };
  core::QueueSizingOptions options;
  options.min_capacity = 1;
  options.max_capacity = 64;
  options.verify.backend = GetParam();
  // Hang guard per probe (seconds of actual work on either backend);
  // ADVOCAT_TEST_TIMEOUT_MS overrides it centrally.
  options.verify.timeout_ms = advocat::testing::test_timeout_ms(60'000);
  const auto sizing = core::find_minimal_queue_size(make, options);
  EXPECT_EQ(sizing.unknown_probes, 0u);  // every probe must be definite
  EXPECT_GT(sizing.minimal_capacity, 2u);  // 2x2 needs 2; 3x3 needs more
  EXPECT_LE(sizing.minimal_capacity, 16u);
  // The native path must actually be learning, not brute-forcing.
  if (GetParam() == smt::Backend::Native) {
    EXPECT_GT(sizing.solve_stats.learned_clauses, 0u);
  }
}

TEST(MiGem5, VcClassesAreConsistent) {
  // The 3-class map must put every message in [0, 3).
  for (const char* type :
       {coh::kGetX, coh::kData, coh::kDataAck, coh::kFwdGetX, coh::kPutX,
        coh::kWbAck, coh::kWbNack, coh::kDmaReq}) {
    xmas::ColorData c;
    c.type = type;
    const int vc = coh::mi_gem5_vc_class(c);
    EXPECT_GE(vc, 0);
    EXPECT_LT(vc, 3);
  }
  // With VCs the network still validates and verifies.
  coh::MiGem5Config config;
  config.queue_capacity = 3;
  config.num_vcs = 3;
  coh::MiGem5System sys = coh::build_mi_gem5(config);
  EXPECT_TRUE(sys.net.validate().empty());
  const core::VerifyResult result = core::verify(sys.net);
  EXPECT_TRUE(result.deadlock_free()) << result.report.to_string();
}

TEST_P(MiGem5Backend, FlowCompletionAgreesWithEqualities) {
  for (std::size_t cap : {1u, 2u, 3u}) {
    coh::MiGem5Config config;
    config.queue_capacity = cap;
    coh::MiGem5System sys = coh::build_mi_gem5(config);
    core::VerifyOptions eq;
    core::VerifyOptions fc;
    eq.backend = GetParam();
    fc.backend = GetParam();
    fc.use_flow_completion = true;
    // Since the CDCL core landed the native backend finishes every one of
    // these (the cap-1 flow-completion Sat instance used to be
    // timeout-bounded); both verdicts must now be definite on every
    // backend. The timeout is a hang guard, not a tuning knob — override
    // with ADVOCAT_TEST_TIMEOUT_MS to tighten it in CI smoke mode.
    eq.timeout_ms = advocat::testing::test_timeout_ms(60'000);
    fc.timeout_ms = advocat::testing::test_timeout_ms(60'000);
    const smt::SatResult r_eq = core::verify(sys.net, eq).report.result;
    const smt::SatResult r_fc = core::verify(sys.net, fc).report.result;
    ASSERT_NE(r_eq, smt::SatResult::Unknown) << "capacity " << cap;
    ASSERT_NE(r_fc, smt::SatResult::Unknown) << "capacity " << cap;
    // Flow completion subsumes the equalities: it can only prune more.
    EXPECT_LE(r_eq == smt::SatResult::Unsat, r_fc == smt::SatResult::Unsat)
        << "capacity " << cap;
  }
}

}  // namespace
}  // namespace advocat
