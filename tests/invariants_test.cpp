// Invariant generator: variable space, flow rows, elimination results, and
// the soundness property that generated invariants hold on every reachable
// state (cross-checked against the explicit-state explorer).
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <unordered_map>

#include "coherence/mi_abstract.hpp"
#include "deadlock/varnames.hpp"
#include "invariants/generator.hpp"
#include "smt/solver.hpp"
#include "sim/explorer.hpp"
#include "sim/simulator.hpp"
#include "xmas/typing.hpp"

#include "backend_fixture.hpp"
#include "helpers.hpp"

namespace advocat::inv {
namespace {

TEST(VarSpace, LayoutAndNames) {
  testing::RunningExample rx;
  const xmas::Typing typing = xmas::Typing::derive(rx.net);
  const VarSpace vars(rx.net, typing);
  // λ/κ first, then occupancies and states.
  EXPECT_TRUE(vars.is_eliminated(0));
  const std::int32_t occ = vars.occ(rx.q0, rx.req);
  const std::int32_t st = vars.state(0, 1);
  EXPECT_FALSE(vars.is_eliminated(occ));
  EXPECT_FALSE(vars.is_eliminated(st));
  EXPECT_EQ(vars.name(occ), "#q0.req");
  EXPECT_EQ(vars.name(st), "S.s1");
  EXPECT_EQ(vars.smt_name(occ), occ_var_name(rx.net, rx.q0, rx.req));
  EXPECT_EQ(vars.smt_name(st), state_var_name(rx.net, 0, 1));
  EXPECT_THROW((void)vars.smt_name(0), std::out_of_range);
  EXPECT_THROW((void)vars.occ(rx.aut_s, rx.req), std::out_of_range);
}

TEST(FlowRows, QueueConservation) {
  testing::RunningExample rx;
  const xmas::Typing typing = xmas::Typing::derive(rx.net);
  const VarSpace vars(rx.net, typing);
  const auto rows = build_flow_rows(rx.net, typing, vars);
  // Find the q0 row: λ(in) − λ(out) − #q0 = 0.
  const auto& q0 = rx.net.prim(rx.q0);
  bool found = false;
  for (const auto& row : rows) {
    if (row.coeff(vars.occ(rx.q0, rx.req)) == linalg::Rational(-1) &&
        row.coeff(vars.lambda(q0.in[0], rx.req)) == linalg::Rational(1) &&
        row.coeff(vars.lambda(q0.out[0], rx.req)) == linalg::Rational(-1)) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(FlowRows, OneHotPerAutomaton) {
  testing::RunningExample rx;
  const xmas::Typing typing = xmas::Typing::derive(rx.net);
  const VarSpace vars(rx.net, typing);
  const auto rows = build_flow_rows(rx.net, typing, vars);
  int onehots = 0;
  for (const auto& row : rows) {
    if (row.constant() == linalg::Rational(-1) && row.entries().size() == 2 &&
        !vars.is_eliminated(row.min_col())) {
      ++onehots;
    }
  }
  EXPECT_EQ(onehots, 2);  // S and T
}

TEST(Generator, SmtRenderingUsesSharedNames) {
  testing::RunningExample rx;
  const xmas::Typing typing = xmas::Typing::derive(rx.net);
  InvariantSet set = generate(rx.net, typing);
  smt::ExprFactory f;
  const auto exprs = set.to_smt(f);
  EXPECT_EQ(exprs.size(), set.equalities.size() + set.inequalities.size());
  bool uses_occ_name = false;
  for (const auto& [name, is_bool] : f.variables()) {
    if (name == occ_var_name(rx.net, rx.q0, rx.req)) uses_occ_name = true;
    EXPECT_FALSE(is_bool);
  }
  EXPECT_TRUE(uses_occ_name);
}

// Soundness: every generated invariant (equality and inequality) holds in
// every reachable state of the 2x2 MI system.
class InvariantSoundness : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InvariantSoundness, HoldsOnAllReachableStates) {
  coh::MiAbstractConfig config;
  config.queue_capacity = GetParam();
  coh::MiAbstractSystem sys = coh::build_mi_abstract(config);
  const xmas::Typing typing = xmas::Typing::derive(sys.net);
  InvariantSet set = generate(sys.net, typing);
  ASSERT_FALSE(set.equalities.empty());

  // Enumerate reachable states (bounded) and evaluate each invariant.
  sim::Simulator simulator(sys.net);
  std::vector<sim::State> stack = {simulator.initial()};
  std::unordered_map<std::size_t, int> seen;
  const VarSpace& vars = *set.vars;

  // Column evaluation against a concrete simulator state.
  const auto queues = sys.net.prims_of_kind(xmas::PrimKind::Queue);
  auto value_of = [&](std::int32_t col, const sim::State& s) -> int {
    for (std::size_t qi = 0; qi < queues.size(); ++qi) {
      const auto& prim = sys.net.prim(queues[qi]);
      for (xmas::ColorId d : typing.of(prim.in[0])) {
        if (vars.occ(queues[qi], d) == col) {
          int count = 0;
          for (xmas::ColorId stored : s.queues[qi]) count += stored == d;
          return count;
        }
      }
    }
    for (std::size_t ai = 0; ai < sys.net.automata().size(); ++ai) {
      const auto& a = sys.net.automata()[ai];
      for (int st = 0; st < a.num_states(); ++st) {
        if (vars.state(static_cast<int>(ai), st) == col) {
          return s.aut_states[ai] == st ? 1 : 0;
        }
      }
    }
    ADD_FAILURE() << "unknown column";
    return 0;
  };

  std::size_t states_checked = 0;
  while (!stack.empty() && states_checked < 3000) {
    sim::State s = std::move(stack.back());
    stack.pop_back();
    const std::size_t h = sim::StateHash{}(s);
    if (seen.count(h)) continue;
    seen[h] = 1;
    ++states_checked;
    for (const auto& row : set.equalities) {
      linalg::Rational acc = row.constant();
      for (const auto& e : row.entries()) {
        acc += e.coeff * linalg::Rational(value_of(e.col, s));
      }
      ASSERT_TRUE(acc.is_zero()) << "equality violated in reachable state";
    }
    for (const auto& row : set.inequalities) {
      linalg::Rational acc = row.constant();
      for (const auto& e : row.entries()) {
        acc += e.coeff * linalg::Rational(value_of(e.col, s));
      }
      ASSERT_LE(acc, linalg::Rational(0)) << "inequality violated";
    }
    for (auto& ev : simulator.events(s)) stack.push_back(std::move(ev.next));
  }
  EXPECT_GT(states_checked, 100u);
}

INSTANTIATE_TEST_SUITE_P(Capacities, InvariantSoundness,
                         ::testing::Values(1u, 2u, 3u));

// Flow-completion checks run on every available backend: the native
// solver's simplex theory layer must reach the same exact verdicts as Z3
// on these unbounded systems.
class FlowCompletion : public advocat::testing::BackendTest {};
ADVOCAT_INSTANTIATE_BACKENDS(FlowCompletion);

// The flow-completion constraints are satisfiable for the initial state
// (all queues empty, automata initial) — a sanity anchor.
TEST_P(FlowCompletion, InitialStateSatisfiable) {
  testing::RunningExample rx;
  const xmas::Typing typing = xmas::Typing::derive(rx.net);
  smt::ExprFactory f;
  auto constraints = flow_completion_smt(rx.net, typing, f);
  // Pin the initial state.
  constraints.push_back(
      f.eq(f.int_var(occ_var_name(rx.net, rx.q0, rx.req)), f.int_const(0)));
  constraints.push_back(
      f.eq(f.int_var(occ_var_name(rx.net, rx.q1, rx.ack)), f.int_const(0)));
  constraints.push_back(
      f.eq(f.int_var(state_var_name(rx.net, 0, 0)), f.int_const(1)));
  constraints.push_back(
      f.eq(f.int_var(state_var_name(rx.net, 1, 0)), f.int_const(1)));
  constraints.push_back(
      f.eq(f.int_var(state_var_name(rx.net, 0, 1)), f.int_const(0)));
  constraints.push_back(
      f.eq(f.int_var(state_var_name(rx.net, 1, 1)), f.int_const(0)));
  auto solver = smt::make_solver(f, GetParam());
  for (auto e : constraints) solver->add(e);
  EXPECT_EQ(solver->check(), smt::SatResult::Sat);
}

// And unsatisfiable for the state the paper proves unreachable: (s0, t1)
// with empty queues (the invariant evaluates to -1 = 0). The λ/κ counters
// are unbounded, so interval propagation alone cannot conclude — this was
// the last Z3-only verdict in the repo until the simplex theory layer:
// the native backend now refutes the flow system with an exact Farkas
// certificate.
TEST_P(FlowCompletion, UnreachableStateRejected) {
  testing::RunningExample rx;
  const xmas::Typing typing = xmas::Typing::derive(rx.net);
  smt::ExprFactory f;
  auto constraints = flow_completion_smt(rx.net, typing, f);
  constraints.push_back(
      f.eq(f.int_var(occ_var_name(rx.net, rx.q0, rx.req)), f.int_const(0)));
  constraints.push_back(
      f.eq(f.int_var(occ_var_name(rx.net, rx.q1, rx.ack)), f.int_const(0)));
  constraints.push_back(
      f.eq(f.int_var(state_var_name(rx.net, 0, 0)), f.int_const(1)));  // s0
  constraints.push_back(
      f.eq(f.int_var(state_var_name(rx.net, 1, 1)), f.int_const(1)));  // t1
  constraints.push_back(
      f.eq(f.int_var(state_var_name(rx.net, 0, 1)), f.int_const(0)));
  constraints.push_back(
      f.eq(f.int_var(state_var_name(rx.net, 1, 0)), f.int_const(0)));
  auto solver = smt::make_solver(f, GetParam());
  for (auto e : constraints) solver->add(e);
  EXPECT_EQ(solver->check(), smt::SatResult::Unsat);
  if (GetParam() == smt::Backend::Native) {
    EXPECT_GT(solver->solve_stats().farkas_explanations, 0u)
        << "the native refutation must come from the simplex layer";
  }
}

// Infeasible unbounded flow cycles of increasing size, the distilled
// shape of the refutation above: nonnegative counters λ_0..λ_{n-1} with
// λ_i − λ_{i+1 (mod n)} = 1 around the cycle. Summing the equalities
// yields n = 0 — infeasible — but every λ is unbounded above, so the
// interval fixpoint walks bounds one unit per lap forever; only an exact
// theory concludes, at any cycle size.
class InfeasibleUnboundedCycle
    : public ::testing::TestWithParam<std::tuple<smt::Backend, int>> {};

TEST_P(InfeasibleUnboundedCycle, RefutedExactly) {
  const auto [backend, n] = GetParam();
  smt::ExprFactory f;
  auto solver = smt::make_solver(f, backend);
  std::vector<smt::ExprId> lam;
  for (int i = 0; i < n; ++i) {
    lam.push_back(f.int_var("cyc_l" + std::to_string(i)));
  }
  for (int i = 0; i < n; ++i) {
    solver->add(f.ge(lam[static_cast<std::size_t>(i)], f.int_const(0)));
    solver->add(
        f.eq(f.add({lam[static_cast<std::size_t>(i)],
                    f.mul_const(-1, lam[static_cast<std::size_t>((i + 1) % n)])}),
             f.int_const(1)));
  }
  EXPECT_EQ(solver->check(), smt::SatResult::Unsat);

  // Cutting one cycle edge leaves a satisfiable chain — the refutation is
  // the cycle itself, not pessimism about unbounded counters.
  smt::ExprFactory g;
  auto chain = smt::make_solver(g, backend);
  std::vector<smt::ExprId> mu;
  for (int i = 0; i < n; ++i) {
    mu.push_back(g.int_var("cyc_l" + std::to_string(i)));
    chain->add(g.ge(mu.back(), g.int_const(0)));
  }
  for (int i = 0; i + 1 < n; ++i) {
    chain->add(
        g.eq(g.add({mu[static_cast<std::size_t>(i)],
                    g.mul_const(-1, mu[static_cast<std::size_t>(i + 1)])}),
             g.int_const(1)));
  }
  EXPECT_EQ(chain->check(), smt::SatResult::Sat);
}

INSTANTIATE_TEST_SUITE_P(
    Cycles, InfeasibleUnboundedCycle,
    ::testing::Combine(
        ::testing::ValuesIn(advocat::testing::solver_backends()),
        ::testing::Values(2, 3, 5, 8, 13)),
    [](const ::testing::TestParamInfo<std::tuple<smt::Backend, int>>& info) {
      return std::string(smt::to_string(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace advocat::inv
