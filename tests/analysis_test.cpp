// Static-analysis layer: one minimal ill-formed network per analyzer
// rule, the warning rules on well-formed nets, and the pruning
// regression — a net with a provably-idle component must agree with its
// unpruned original on verdict and minimal capacity on every backend.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "advocat/verifier.hpp"
#include "analysis/analyzer.hpp"
#include "backend_fixture.hpp"
#include "coherence/mi_abstract.hpp"
#include "helpers.hpp"
#include "xmas/network.hpp"

namespace advocat::analysis {
namespace {

bool has_rule(const AnalysisResult& r, const std::string& rule,
              Severity severity) {
  for (const Diagnostic& d : r.diagnostics) {
    if (d.rule == rule && d.severity == severity) return true;
  }
  return false;
}

/// A closed two-queue ring: structurally valid, but no packet can ever
/// enter it — every channel is dead and the component holds neither a
/// source nor an automaton, so it is provably idle and prunable.
void add_idle_ring(xmas::Network& net) {
  const xmas::PrimId r1 = net.add_queue("idle_r1", 2);
  const xmas::PrimId r2 = net.add_queue("idle_r2", 2);
  net.connect(r1, 0, r2, 0, "idle_a");
  net.connect(r2, 0, r1, 0, "idle_b");
}

TEST(AnalyzerTest, DanglingPortIsAnError) {
  xmas::Network net;
  net.add_queue("lonely", 2);  // both ports unwired
  const AnalysisResult r = analyze(net);
  EXPECT_TRUE(r.has_errors());
  EXPECT_EQ(r.num_errors(), 2u);  // in-port and out-port
  EXPECT_TRUE(has_rule(r, "port-connectivity", Severity::Error));
  EXPECT_EQ(r.diagnostics.front().component, "lonely");
  EXPECT_NE(r.diagnostics.front().to_string().find("port-connectivity"),
            std::string::npos);
}

TEST(AnalyzerTest, DuplicateNameIsAnError) {
  xmas::Network net;
  const xmas::ColorId d = net.colors().intern("d");
  const xmas::PrimId q1 = net.add_queue("q", 2);
  const xmas::PrimId q2 = net.add_queue("q", 2);
  net.connect(net.add_source("s1", {d}), 0, q1, 0);
  net.connect(net.add_source("s2", {d}), 0, q2, 0);
  net.connect(q1, 0, net.add_sink("k1"), 0);
  net.connect(q2, 0, net.add_sink("k2"), 0);
  const AnalysisResult r = analyze(net);
  EXPECT_TRUE(has_rule(r, "duplicate-name", Severity::Error));
}

TEST(AnalyzerTest, ColorlessSourceIsAParameterError) {
  // The builder guards queue capacity and switch/merge arity itself; an
  // empty source color set is the parameter error it lets through.
  xmas::Network net;
  const xmas::PrimId q = net.add_queue("q", 2);
  net.connect(net.add_source("src", {}), 0, q, 0);
  net.connect(q, 0, net.add_sink("sink"), 0);
  const AnalysisResult r = analyze(net);
  EXPECT_TRUE(r.has_errors());
  EXPECT_TRUE(has_rule(r, "parameters", Severity::Error));
}

TEST(AnalyzerTest, CombinationalCycleIsAnError) {
  // src -> merge -> fork -> {merge (back edge), sink}: the merge/fork
  // loop contains no queue, so the synchronous transfer relation has no
  // least fixed point.
  xmas::Network net;
  const xmas::ColorId d = net.colors().intern("d");
  const xmas::PrimId m = net.add_merge("m", 2);
  const xmas::PrimId f = net.add_fork("f");
  net.connect(net.add_source("src", {d}), 0, m, 0);
  net.connect(m, 0, f, 0, "loop_in");
  net.connect(f, 0, m, 1, "loop_back");
  net.connect(f, 1, net.add_sink("sink"), 0);
  const AnalysisResult r = analyze(net);
  EXPECT_TRUE(r.has_errors());
  EXPECT_TRUE(has_rule(r, "combinational-cycle", Severity::Error));
}

TEST(AnalyzerTest, QueueBreaksCombinationalCycle) {
  // The same loop with a queue inside is a perfectly fine net.
  xmas::Network net;
  const xmas::ColorId d = net.colors().intern("d");
  const xmas::PrimId m = net.add_merge("m", 2);
  const xmas::PrimId f = net.add_fork("f");
  const xmas::PrimId q = net.add_queue("q", 2);
  net.connect(net.add_source("src", {d}), 0, m, 0);
  net.connect(m, 0, f, 0);
  net.connect(f, 0, q, 0);
  net.connect(q, 0, m, 1);
  net.connect(f, 1, net.add_sink("sink"), 0);
  const AnalysisResult r = analyze(net);
  EXPECT_FALSE(has_rule(r, "combinational-cycle", Severity::Error));
}

TEST(AnalyzerTest, OutOfRangeRouteIsATypeError) {
  xmas::Network net;
  const xmas::ColorId d = net.colors().intern("d");
  const xmas::PrimId sw =
      net.add_switch("sw", 2, [](xmas::ColorId) { return 7; });
  net.connect(net.add_source("src", {d}), 0, sw, 0);
  net.connect(sw, 0, net.add_sink("k0"), 0);
  net.connect(sw, 1, net.add_sink("k1"), 0);
  const AnalysisResult r = analyze(net);
  EXPECT_TRUE(r.has_errors());
  EXPECT_TRUE(has_rule(r, "type-consistency", Severity::Error));
}

TEST(AnalyzerTest, OutOfRangeFunctionImageIsATypeError) {
  xmas::Network net;
  const xmas::ColorId d = net.colors().intern("d");
  const xmas::PrimId fn =
      net.add_function("fn", [](xmas::ColorId) { return xmas::ColorId{99}; });
  net.connect(net.add_source("src", {d}), 0, fn, 0);
  net.connect(fn, 0, net.add_sink("sink"), 0);
  const AnalysisResult r = analyze(net);
  EXPECT_TRUE(r.has_errors());
  EXPECT_TRUE(has_rule(r, "type-consistency", Severity::Error));
}

TEST(AnalyzerTest, DeadChannelIsAWarning) {
  // The switch routes every color to port 0, so the port-1 channel can
  // never see a packet: a warning, not an error.
  xmas::Network net;
  const xmas::ColorId d = net.colors().intern("d");
  const xmas::PrimId sw =
      net.add_switch("sw", 2, [](xmas::ColorId) { return 0; });
  net.connect(net.add_source("src", {d}), 0, sw, 0);
  net.connect(sw, 0, net.add_sink("k0"), 0);
  net.connect(sw, 1, net.add_sink("k1"), 0, "never");
  const AnalysisResult r = analyze(net);
  EXPECT_FALSE(r.has_errors());
  EXPECT_TRUE(has_rule(r, "dead-channel", Severity::Warning));
  ASSERT_EQ(r.dead_channels.size(), 1u);
  EXPECT_EQ(net.channel_name(r.dead_channels.front()), "never");
}

TEST(AnalyzerTest, UnreachableSinkIsAWarning) {
  // src -> merge -> q -> merge: packets circulate forever with no sink,
  // join token port, or automaton anywhere downstream.
  xmas::Network net;
  const xmas::ColorId d = net.colors().intern("d");
  const xmas::PrimId m = net.add_merge("m", 2);
  const xmas::PrimId q = net.add_queue("q", 2);
  net.connect(net.add_source("src", {d}), 0, m, 0);
  net.connect(m, 0, q, 0);
  net.connect(q, 0, m, 1);
  const AnalysisResult r = analyze(net);
  EXPECT_FALSE(r.has_errors());
  EXPECT_TRUE(has_rule(r, "unreachable-sink", Severity::Warning));
}

TEST(AnalyzerTest, CleanNetworkHasNoDiagnostics) {
  testing::RunningExample rx;
  const AnalysisResult r = analyze(rx.net);
  EXPECT_TRUE(r.diagnostics.empty()) << r.to_string();
  EXPECT_TRUE(r.dead_channels.empty());
  EXPECT_TRUE(r.prunable_prims.empty());
}

TEST(AnalyzerTest, IdleComponentIsPrunable) {
  testing::RunningExample rx;
  const std::size_t prims = rx.net.num_prims();
  const std::size_t chans = rx.net.num_channels();
  add_idle_ring(rx.net);
  const AnalysisResult r = analyze(rx.net);
  EXPECT_FALSE(r.has_errors());
  EXPECT_EQ(r.dead_channels.size(), 2u);
  EXPECT_EQ(r.prunable_prims.size(), 2u);

  const xmas::Network pruned = prune_idle(rx.net, r);
  EXPECT_EQ(pruned.num_prims(), prims);
  EXPECT_EQ(pruned.num_channels(), chans);
  const AnalysisResult r2 = analyze(pruned);
  EXPECT_TRUE(r2.diagnostics.empty()) << r2.to_string();
}

TEST(AnalyzerTest, LiveComponentsAreNotPrunable) {
  // A dead channel inside a component that also carries live traffic (or
  // a source/automaton) must not mark the component prunable.
  xmas::Network net;
  const xmas::ColorId d = net.colors().intern("d");
  const xmas::PrimId sw =
      net.add_switch("sw", 2, [](xmas::ColorId) { return 0; });
  net.connect(net.add_source("src", {d}), 0, sw, 0);
  net.connect(sw, 0, net.add_sink("k0"), 0);
  net.connect(sw, 1, net.add_sink("k1"), 0);
  const AnalysisResult r = analyze(net);
  EXPECT_EQ(r.dead_channels.size(), 1u);
  EXPECT_TRUE(r.prunable_prims.empty());
}

// ------------------------------------------------ verifier integration

class AnalysisBackend : public advocat::testing::BackendTest {
 protected:
  core::VerifyOptions options(bool prune = false) const {
    core::VerifyOptions o;
    o.backend = GetParam();
    o.prune_dead_channels = prune;
    return o;
  }
};
ADVOCAT_INSTANTIATE_BACKENDS(AnalysisBackend);

TEST_P(AnalysisBackend, ErrorsRejectBeforeAnySolverWork) {
  xmas::Network net;
  const xmas::ColorId d = net.colors().intern("d");
  const xmas::PrimId sw =
      net.add_switch("sw", 2, [](xmas::ColorId) { return 7; });
  net.connect(net.add_source("src", {d}), 0, sw, 0);
  net.connect(sw, 0, net.add_sink("k0"), 0);
  net.connect(sw, 1, net.add_sink("k1"), 0);
  try {
    core::verify(net, options());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The structured diagnostic rides on the exception, rule id included.
    EXPECT_NE(std::string(e.what()).find("type-consistency"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("sw"), std::string::npos);
  }
}

TEST_P(AnalysisBackend, WarningsSurfaceInTheResult) {
  testing::RunningExample rx;
  add_idle_ring(rx.net);
  const core::VerifyResult r = core::verify(rx.net, options());
  EXPECT_TRUE(r.deadlock_free());
  EXPECT_EQ(r.diagnostics.size(), 2u);  // the two dead ring channels
  for (const analysis::Diagnostic& diag : r.diagnostics) {
    EXPECT_EQ(diag.severity, analysis::Severity::Warning);
    EXPECT_EQ(diag.rule, "dead-channel");
  }
  EXPECT_GE(r.analysis_ms, 0.0);
  EXPECT_NE(r.to_string().find("dead-channel"), std::string::npos);
}

TEST_P(AnalysisBackend, PruningPreservesTheVerdict) {
  testing::RunningExample rx;
  add_idle_ring(rx.net);
  const core::VerifyResult plain = core::verify(rx.net, options(false));
  const core::VerifyResult pruned = core::verify(rx.net, options(true));
  EXPECT_EQ(plain.deadlock_free(), pruned.deadlock_free());
  EXPECT_TRUE(pruned.deadlock_free());
  // Pruning drops the ring before encoding but keeps the warnings.
  EXPECT_EQ(pruned.diagnostics.size(), 2u);
}

TEST_P(AnalysisBackend, PruningPreservesMinimalCapacity) {
  auto make = [](std::size_t cap) {
    coh::MiAbstractConfig config;
    config.queue_capacity = cap;
    xmas::Network net = std::move(coh::build_mi_abstract(config).net);
    add_idle_ring(net);
    return net;
  };
  core::QueueSizingOptions o;
  o.min_capacity = 1;
  o.max_capacity = 16;
  for (const bool prune : {false, true}) {
    o.verify = options(prune);
    const core::QueueSizingResult r = core::find_minimal_queue_size(make, o);
    EXPECT_EQ(r.minimal_capacity, 3u) << "prune = " << prune;
    EXPECT_EQ(r.unknown_probes, 0u);
    EXPECT_GE(r.diagnostics, 2u);  // the ring warnings ride along
    EXPECT_GE(r.analysis_ms, 0.0);
  }
}

}  // namespace
}  // namespace advocat::analysis
