// Executable semantics: transfer-event enumeration and BFS exploration.
#include <gtest/gtest.h>

#include "automata/builder.hpp"
#include "sim/explorer.hpp"
#include "sim/simulator.hpp"
#include "xmas/network.hpp"

namespace advocat::sim {
namespace {

using xmas::ColorId;
using xmas::Network;
using xmas::PrimId;

// source -> queue -> sink pipeline.
struct Pipeline {
  Network net;
  PrimId q;
  Pipeline(std::size_t cap, bool fair_sink) {
    const ColorId d = net.colors().intern("d");
    const PrimId src = net.add_source("src", {d});
    q = net.add_queue("q", cap);
    const PrimId sink = net.add_sink("sink", fair_sink);
    net.connect(src, 0, q, 0);
    net.connect(q, 0, sink, 0);
  }
};

TEST(Simulator, SourceInjectsAndSinkConsumes) {
  Pipeline p(2, /*fair_sink=*/true);
  Simulator sim(p.net);
  const State init = sim.initial();
  const auto events = sim.events(init);
  // Only injection possible from the empty state.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].next.queues[0].size(), 1u);
  // From one stored packet: inject another or consume.
  const auto events2 = sim.events(events[0].next);
  EXPECT_EQ(events2.size(), 2u);
}

TEST(Simulator, DeadSinkWedgesTheQueue) {
  Pipeline p(2, /*fair_sink=*/false);
  Simulator sim(p.net);
  const ExploreResult r = explore(sim);
  ASSERT_TRUE(r.deadlock.has_value());
  // Deadlock: queue full, sink never consumes.
  EXPECT_EQ(r.deadlock->queues[0].size(), 2u);
  EXPECT_EQ(r.trace.size(), 2u);  // two injections
  EXPECT_TRUE(r.complete || r.deadlock.has_value());
}

TEST(Simulator, FairSinkNeverDeadlocks) {
  Pipeline p(3, /*fair_sink=*/true);
  Simulator sim(p.net);
  const ExploreResult r = explore(sim);
  EXPECT_TRUE(r.complete);
  EXPECT_FALSE(r.deadlock.has_value());
  EXPECT_EQ(r.states_visited, 4u);  // fill levels 0..3
}

TEST(Simulator, ForkNeedsBothOutputs) {
  Network net;
  const ColorId d = net.colors().intern("d");
  const PrimId src = net.add_source("src", {d});
  const PrimId fork = net.add_fork("fork");
  const PrimId qa = net.add_queue("qa", 1);
  const PrimId qb = net.add_queue("qb", 1);
  const PrimId sa = net.add_sink("sa");
  const PrimId sb = net.add_sink("sb", /*fair=*/false);
  net.connect(src, 0, fork, 0);
  net.connect(fork, 0, qa, 0);
  net.connect(fork, 1, qb, 0);
  net.connect(qa, 0, sa, 0);
  net.connect(qb, 0, sb, 0);

  Simulator sim(net);
  State s = sim.initial();
  // First injection duplicates into both queues.
  auto events = sim.events(s);
  bool found_dup = false;
  for (const auto& e : events) {
    if (e.next.queues[0].size() == 1 && e.next.queues[1].size() == 1)
      found_dup = true;
    // A fork transfer is all-or-nothing.
    EXPECT_EQ(e.next.queues[0].size(), e.next.queues[1].size());
  }
  EXPECT_TRUE(found_dup);
  // qb never drains (dead sink): once full, no further injection possible.
  const ExploreResult r = explore(sim);
  ASSERT_TRUE(r.deadlock.has_value());
  EXPECT_EQ(r.deadlock->queues[1].size(), 1u);
}

TEST(Simulator, JoinPairsDataWithToken) {
  Network net;
  const ColorId d = net.colors().intern("d");
  const ColorId t = net.colors().intern("t");
  const PrimId data_q = net.add_queue("dq", 1);
  const PrimId tok_q = net.add_queue("tq", 1);
  const PrimId join = net.add_join("join");
  const PrimId out_q = net.add_queue("oq", 2);
  net.connect(net.add_source("ds", {d}), 0, data_q, 0);
  net.connect(net.add_source("ts", {t}), 0, tok_q, 0);
  net.connect(data_q, 0, join, 0);
  net.connect(tok_q, 0, join, 1);
  net.connect(join, 0, out_q, 0);
  net.connect(out_q, 0, net.add_sink("sink"), 0);

  Simulator sim(net);
  // Fill only the data queue: join must not fire.
  State s = sim.initial();
  s.queues[0] = {d};
  for (const auto& e : sim.events(s)) {
    // No event may put anything into the output queue yet...
    if (!e.next.queues[2].empty()) {
      // ...unless the token arrived in the same transfer (token source
      // offering directly through the token queue is impossible: queues
      // store, they do not pass through combinationally).
      ADD_FAILURE() << "join fired without a stored token: " << e.label;
    }
  }
  // With both stored, the join can fire and consumes both.
  s.queues[1] = {t};
  bool fired = false;
  for (const auto& e : sim.events(s)) {
    if (!e.next.queues[2].empty()) {
      fired = true;
      EXPECT_TRUE(e.next.queues[0].empty());
      EXPECT_TRUE(e.next.queues[1].empty());
      EXPECT_EQ(e.next.queues[2][0], d);  // join copies the data input
    }
  }
  EXPECT_TRUE(fired);
}

TEST(Simulator, BagQueueOffersAnyColorFifoOnlyHead) {
  Network net;
  const ColorId a = net.colors().intern("a");
  const ColorId b = net.colors().intern("b");
  for (bool fifo : {true, false}) {
    Network n2;
    const ColorId a2 = n2.colors().intern("a");
    const ColorId b2 = n2.colors().intern("b");
    const PrimId q = n2.add_queue("q", 2, fifo);
    const PrimId sw = n2.add_switch(
        "sw", 2, [a2](ColorId c) { return c == a2 ? 0 : 1; });
    n2.connect(n2.add_source("src", {a2, b2}), 0, q, 0);
    n2.connect(q, 0, sw, 0);
    n2.connect(sw, 0, n2.add_sink("sa"), 0);
    n2.connect(sw, 1, n2.add_sink("sb", /*fair=*/false), 0);

    Simulator sim(n2);
    State s = sim.initial();
    s.queues[0] = {b2, a2};  // b at the head; only a is consumable
    std::size_t consuming = 0;
    for (const auto& e : sim.events(s)) {
      if (e.next.queues[0].size() == 1) ++consuming;
    }
    if (fifo) {
      EXPECT_EQ(consuming, 0u) << "FIFO: head b is stuck at the dead sink";
    } else {
      EXPECT_EQ(consuming, 1u) << "bag: a can overtake the stuck b";
    }
  }
  (void)a;
  (void)b;
}

TEST(Simulator, AutomatonConsumesAndEmitsAtomically) {
  Network net;
  const ColorId ping = net.colors().intern("ping");
  const ColorId pong = net.colors().intern("pong");
  aut::AutomatonBuilder b("echo", {"s"});
  b.in_ports(1).out_ports(1);
  b.on("s", 0, ping).emit(0, pong).label("echo");
  const PrimId prim = net.add_automaton(b.build());
  const PrimId in_q = net.add_queue("in", 1);
  const PrimId out_q = net.add_queue("out", 1);
  net.connect(net.add_source("src", {ping}), 0, in_q, 0);
  net.connect(in_q, 0, prim, 0);
  net.connect(prim, 0, out_q, 0);
  net.connect(out_q, 0, net.add_sink("sink"), 0);

  Simulator sim(net);
  State s = sim.initial();
  s.queues[0] = {ping};
  s.queues[1] = {pong};  // out queue full: the transition cannot fire
  for (const auto& e : sim.events(s)) {
    // ping may only be consumed if its pong found a slot — possibly freed
    // by the same event draining the out queue.
    if (e.next.queues[0].empty()) {
      EXPECT_FALSE(e.next.queues[1].empty()) << e.label;
    }
  }
  // After draining the out queue, the echo fires.
  State s2 = sim.initial();
  s2.queues[0] = {ping};
  bool echoed = false;
  for (const auto& e : sim.events(s2)) {
    if (e.next.queues[1].size() == 1 && e.next.queues[0].empty()) {
      EXPECT_EQ(e.next.queues[1][0], pong);
      echoed = true;
    }
  }
  EXPECT_TRUE(echoed);
}

TEST(Explorer, RespectsStateBudget) {
  Pipeline p(64, /*fair_sink=*/true);
  Simulator sim(p.net);
  ExploreOptions options;
  options.max_states = 10;
  const ExploreResult r = explore(sim, options);
  EXPECT_FALSE(r.complete);
  EXPECT_FALSE(r.deadlock.has_value());
}

TEST(Explorer, TraceReplaysToDeadlock) {
  Pipeline p(3, /*fair_sink=*/false);
  Simulator sim(p.net);
  const ExploreResult r = explore(sim);
  ASSERT_TRUE(r.deadlock.has_value());
  EXPECT_EQ(r.trace.size(), 3u);
  for (const auto& label : r.trace) {
    EXPECT_NE(label.find("src"), std::string::npos);
  }
}

}  // namespace
}  // namespace advocat::sim
