// The incremental Solver contract, on every available backend: push/pop
// scoping, assumption-based checks with automatic retraction, model
// survival across pop, session recording/replay through smt::Script, and
// native-vs-Z3 verdict agreement on interleaved check sequences.
#include <gtest/gtest.h>

#include <vector>

#include "backend_fixture.hpp"
#include "smt/eval.hpp"
#include "smt/expr.hpp"
#include "smt/smtlib.hpp"
#include "smt/solver.hpp"

namespace advocat::smt {
namespace {

class Incremental : public advocat::testing::BackendTest {};
ADVOCAT_INSTANTIATE_BACKENDS(Incremental);

TEST_P(Incremental, PushPopScopesAssertions) {
  ExprFactory f;
  const ExprId x = f.int_var("x");
  auto solver = make_solver(f, GetParam());
  solver->add(f.le(x, f.int_const(1)));
  EXPECT_EQ(solver->check(), SatResult::Sat);

  solver->push();
  EXPECT_EQ(solver->num_scopes(), 1u);
  solver->add(f.le(f.int_const(2), x));
  EXPECT_EQ(solver->check(), SatResult::Unsat);
  solver->pop();

  EXPECT_EQ(solver->num_scopes(), 0u);
  EXPECT_EQ(solver->check(), SatResult::Sat);  // x >= 2 retracted
}

TEST_P(Incremental, NestedScopesUnwindIndependently) {
  ExprFactory f;
  const ExprId x = f.int_var("x");
  auto solver = make_solver(f, GetParam());
  solver->add(f.le(f.int_const(0), x));
  solver->add(f.le(x, f.int_const(10)));

  solver->push();
  solver->add(f.le(f.int_const(5), x));  // x in [5, 10]
  solver->push();
  solver->add(f.le(x, f.int_const(4)));  // contradiction
  EXPECT_EQ(solver->check(), SatResult::Unsat);
  solver->pop();
  ASSERT_EQ(solver->check(), SatResult::Sat);
  EXPECT_GE(solver->model().int_value("x"), 5);
  solver->pop();

  ASSERT_EQ(solver->check(), SatResult::Sat);
  const std::int64_t v = solver->model().int_value("x");
  EXPECT_GE(v, 0);
  EXPECT_LE(v, 10);
}

TEST_P(Incremental, PopWithoutPushThrows) {
  ExprFactory f;
  auto solver = make_solver(f, GetParam());
  EXPECT_THROW(solver->pop(), std::logic_error);
}

TEST_P(Incremental, AssumptionsAreRetractedPerCheck) {
  ExprFactory f;
  const ExprId x = f.int_var("x");
  auto solver = make_solver(f, GetParam());
  solver->add(f.le(f.int_const(0), x));
  solver->add(f.le(x, f.int_const(8)));

  // Unsat under an assumption, Sat again without it: nothing leaked.
  EXPECT_EQ(solver->check_assuming({f.le(f.int_const(9), x)}), SatResult::Unsat);
  EXPECT_EQ(solver->check(), SatResult::Sat);

  // Assumption flips pin different solutions on one live session.
  for (std::int64_t k = 0; k <= 8; k += 4) {
    ASSERT_EQ(solver->check_assuming({f.eq(x, f.int_const(k))}), SatResult::Sat);
    EXPECT_EQ(solver->model().int_value("x"), k);
  }
}

TEST_P(Incremental, AssumptionsComposeWithScopes) {
  ExprFactory f;
  const ExprId x = f.int_var("x");
  const ExprId g = f.bool_var("g");
  auto solver = make_solver(f, GetParam());
  solver->add(f.le(f.int_const(0), x));
  solver->add(f.le(x, f.int_const(5)));
  // Guarded constraint, enabled per check by assuming the guard.
  solver->add(f.implies(g, f.le(f.int_const(3), x)));

  ASSERT_EQ(solver->check_assuming({g, f.le(x, f.int_const(2))}), SatResult::Unsat);
  ASSERT_EQ(solver->check_assuming({f.le(x, f.int_const(2))}), SatResult::Sat);

  solver->push();
  solver->add(f.le(x, f.int_const(2)));
  EXPECT_EQ(solver->check_assuming({g}), SatResult::Unsat);
  solver->pop();
  EXPECT_EQ(solver->check_assuming({g}), SatResult::Sat);
}

TEST_P(Incremental, LastModelSurvivesPop) {
  ExprFactory f;
  const ExprId x = f.int_var("x");
  const ExprId inner = f.eq(x, f.int_const(7));
  auto solver = make_solver(f, GetParam());
  solver->add(f.le(f.int_const(0), x));

  solver->push();
  solver->add(inner);
  ASSERT_EQ(solver->check(), SatResult::Sat);
  solver->pop();

  // The scoped assertion is gone, but the model it produced is not, and
  // still satisfies the popped formula under the reference evaluator.
  ASSERT_TRUE(solver->has_model());
  EXPECT_EQ(solver->last_model().int_value("x"), 7);
  EXPECT_TRUE(eval_bool(f, solver->last_model(), inner));

  // A later Unsat check does not clobber the last Sat model either.
  EXPECT_EQ(solver->check_assuming({f.le(x, f.int_const(-1))}), SatResult::Unsat);
  EXPECT_EQ(solver->last_model().int_value("x"), 7);
}

TEST_P(Incremental, ModelBeforeAnySatCheckThrows) {
  ExprFactory f;
  auto solver = make_solver(f, GetParam());
  EXPECT_FALSE(solver->has_model());
  EXPECT_THROW((void)solver->model(), std::logic_error);
}

TEST_P(Incremental, CountsChecks) {
  ExprFactory f;
  const ExprId x = f.int_var("x");
  auto solver = make_solver(f, GetParam());
  solver->add(f.le(f.int_const(0), x));
  EXPECT_EQ(solver->num_checks(), 0u);
  (void)solver->check();
  (void)solver->check_assuming({f.eq(x, f.int_const(1))});
  EXPECT_EQ(solver->num_checks(), 2u);
}

TEST_P(Incremental, DeclarationsPersistAcrossPop) {
  ExprFactory f;
  const ExprId x = f.int_var("x");
  const ExprId y = f.int_var("y");
  auto solver = make_solver(f, GetParam());
  solver->add(f.le(f.int_const(0), x));

  solver->push();
  solver->add(f.eq(y, f.add({x, f.int_const(1)})));  // first mention of y
  ASSERT_EQ(solver->check(), SatResult::Sat);
  solver->pop();

  // y's declaration (and each backend's translation of it) survives the
  // pop; re-asserting over y works without re-declaration.
  solver->add(f.eq(y, f.int_const(3)));
  ASSERT_EQ(solver->check(), SatResult::Sat);
  EXPECT_EQ(solver->model().int_value("y"), 3);
}

// A deterministic interleaved session: scopes, assumptions, retraction.
// Returns the verdict sequence, used both for cross-backend agreement and
// for the Script replay round-trip.
std::vector<SatResult> run_session(ExprFactory& f, Solver& solver) {
  const ExprId x = f.int_var("x");
  const ExprId y = f.int_var("y");
  std::vector<SatResult> verdicts;
  solver.add(f.le(f.int_const(0), x));
  solver.add(f.le(x, f.int_const(6)));
  solver.add(f.le(f.int_const(0), y));
  verdicts.push_back(solver.check());
  solver.push();
  solver.add(f.eq(f.add({x, y}), f.int_const(4)));
  verdicts.push_back(solver.check_assuming({f.le(f.int_const(5), y)}));
  verdicts.push_back(solver.check());
  solver.push();
  solver.add(f.le(f.int_const(7), x));
  verdicts.push_back(solver.check());
  solver.pop();
  verdicts.push_back(solver.check_assuming({f.eq(x, f.int_const(4))}));
  solver.pop();
  verdicts.push_back(solver.check_assuming({f.le(f.int_const(7), x)}));
  return verdicts;
}

// The interleaved session's verdicts are fully determined by the
// constraints, so every backend is held to the same hardcoded expectation
// (no cross-backend skip: the native solver answers for itself, and when
// Z3 is compiled in it must produce the identical sequence).
class InterleavedSession : public advocat::testing::BackendTest {};
ADVOCAT_INSTANTIATE_BACKENDS(InterleavedSession);

TEST_P(InterleavedSession, VerdictsMatchTheGroundTruth) {
  const std::vector<SatResult> expected{
      SatResult::Sat,    // x in [0,6], y >= 0
      SatResult::Unsat,  // x+y = 4 under y >= 5
      SatResult::Sat,    // x+y = 4 alone
      SatResult::Unsat,  // plus x >= 7 against x <= 6
      SatResult::Sat,    // x = 4, y = 0 after the inner pop
      SatResult::Unsat,  // x >= 7 assumption at the outer scope
  };
  ExprFactory f;
  auto solver = make_solver(f, GetParam());
  EXPECT_EQ(run_session(f, *solver), expected);
}

TEST(Script, RecordsAndSerializesSessions) {
  ExprFactory f;
  Script script;
  auto solver = make_recording_solver(make_solver(f, Backend::Native), script);
  const std::vector<SatResult> verdicts = run_session(f, *solver);

  EXPECT_EQ(script.num_checks(), verdicts.size());
  EXPECT_EQ(script.num_scopes(), 0u);  // balanced session

  const std::string text = script.to_smtlib(f);
  EXPECT_NE(text.find("(push 1)"), std::string::npos);
  EXPECT_NE(text.find("(pop 1)"), std::string::npos);
  EXPECT_NE(text.find("(declare-const x Int)"), std::string::npos);
  // Assumption checks serialize as push/assert/check-sat/pop brackets, so
  // pushes and pops stay balanced in the emitted script.
  std::size_t pushes = 0;
  std::size_t pops = 0;
  for (std::size_t at = text.find("(push 1)"); at != std::string::npos;
       at = text.find("(push 1)", at + 1)) {
    ++pushes;
  }
  for (std::size_t at = text.find("(pop 1)"); at != std::string::npos;
       at = text.find("(pop 1)", at + 1)) {
    ++pops;
  }
  EXPECT_EQ(pushes, pops);
  EXPECT_GE(pushes, 2u);
}

TEST(Script, UnbalancedPopThrows) {
  Script script;
  EXPECT_THROW(script.pop(), std::logic_error);
  script.push();
  script.pop();
  EXPECT_THROW(script.pop(), std::logic_error);
}

// Round-trip: a recorded session replayed onto a fresh solver of every
// backend reproduces the original verdicts exactly.
class ScriptReplay : public advocat::testing::BackendTest {};
ADVOCAT_INSTANTIATE_BACKENDS(ScriptReplay);

TEST_P(ScriptReplay, ReplayReproducesVerdicts) {
  ExprFactory f;
  Script script;
  std::vector<SatResult> recorded;
  {
    auto recorder =
        make_recording_solver(make_solver(f, Backend::Native), script);
    recorded = run_session(f, *recorder);
  }
  auto fresh = make_solver(f, GetParam());
  EXPECT_EQ(script.replay(*fresh), recorded);
}

}  // namespace
}  // namespace advocat::smt
