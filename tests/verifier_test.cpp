// End-to-end verifier and minimal-queue-size search, on every available
// solver backend: native and Z3 must produce identical verdicts.
#include <gtest/gtest.h>

#include "advocat/verifier.hpp"
#include "backend_fixture.hpp"
#include "coherence/mi_abstract.hpp"
#include "helpers.hpp"

namespace advocat::core {
namespace {

class VerifierTest : public advocat::testing::BackendTest {
 protected:
  VerifyOptions options() const {
    VerifyOptions o;
    o.backend = GetParam();
    return o;
  }
};
ADVOCAT_INSTANTIATE_BACKENDS(VerifierTest);

class QueueSizing : public VerifierTest {};
ADVOCAT_INSTANTIATE_BACKENDS(QueueSizing);

TEST_P(VerifierTest, RejectsInvalidNetworks) {
  xmas::Network net;
  net.add_queue("dangling", 2);
  EXPECT_THROW(verify(net, options()), std::invalid_argument);
}

TEST_P(VerifierTest, ReportsStageTimings) {
  testing::RunningExample rx;
  const VerifyResult r = verify(rx.net, options());
  EXPECT_TRUE(r.deadlock_free());
  EXPECT_GT(r.num_invariants, 0u);
  EXPECT_GE(r.total_seconds, 0.0);
  EXPECT_FALSE(r.invariant_text.empty());
  EXPECT_NE(r.to_string().find("invariants:"), std::string::npos);
}

TEST_P(VerifierTest, InvariantsCanBeDisabled) {
  testing::RunningExample rx;
  VerifyOptions o = options();
  o.use_invariants = false;
  const VerifyResult r = verify(rx.net, o);
  EXPECT_EQ(r.num_invariants, 0u);
  EXPECT_FALSE(r.deadlock_free());  // candidates reappear
}

TEST_P(QueueSizing, FindsTheKnownBoundary) {
  auto make = [](std::size_t cap) {
    coh::MiAbstractConfig config;
    config.queue_capacity = cap;
    return std::move(coh::build_mi_abstract(config).net);
  };
  QueueSizingOptions o;
  o.min_capacity = 1;
  o.max_capacity = 16;
  o.verify = options();
  const QueueSizingResult r = find_minimal_queue_size(make, o);
  EXPECT_EQ(r.minimal_capacity, 3u);  // the paper's 2x2 value
  // Probes must include a failing and a succeeding capacity, and every
  // verdict must be definite on this small instance.
  bool saw_bad = false;
  bool saw_good = false;
  EXPECT_EQ(r.unknown_probes, 0u);
  for (const auto& [cap, verdict] : r.probes) {
    const bool free = verdict == smt::SatResult::Unsat;
    saw_bad |= !free;
    saw_good |= free;
    if (free) EXPECT_GE(cap, 3u);
    else EXPECT_LT(cap, 3u);
  }
  EXPECT_TRUE(saw_bad);
  EXPECT_TRUE(saw_good);
}

TEST_P(QueueSizing, ReportsFailureWhenNothingFits) {
  // A dead sink deadlocks at every capacity.
  auto make = [](std::size_t cap) {
    xmas::Network net;
    const xmas::ColorId d = net.colors().intern("d");
    const xmas::PrimId q = net.add_queue("q", cap);
    net.connect(net.add_source("src", {d}), 0, q, 0);
    net.connect(q, 0, net.add_sink("sink", /*fair=*/false), 0);
    return net;
  };
  QueueSizingOptions o;
  o.min_capacity = 1;
  o.max_capacity = 8;
  o.verify = options();
  const QueueSizingResult r = find_minimal_queue_size(make, o);
  EXPECT_EQ(r.minimal_capacity, 0u);
  EXPECT_FALSE(r.probes.empty());
}

TEST_P(VerifierTest, SessionChecksAreRepeatable) {
  testing::RunningExample rx;
  Verifier session(rx.net, options());
  const VerifyResult first = session.check();
  const VerifyResult second = session.check();
  EXPECT_TRUE(first.deadlock_free());
  EXPECT_TRUE(second.deadlock_free());
  EXPECT_EQ(first.num_invariants, second.num_invariants);
  // One pipeline, many checks.
  EXPECT_EQ(session.stats().validations, 1u);
  EXPECT_EQ(session.stats().invariant_generations, 1u);
  EXPECT_EQ(session.stats().encodes, 1u);
  EXPECT_EQ(session.stats().checks, 2u);
}

TEST_P(VerifierTest, CheckWithTogglesInvariantsPerCheck) {
  testing::RunningExample rx;
  Verifier session(rx.net, options());
  EXPECT_TRUE(session.check().deadlock_free());

  // Disabling the invariants for one check degenerates to plain detection
  // (candidates reappear), exactly like a one-shot verify without them...
  CheckOverrides no_inv;
  no_inv.use_invariants = false;
  const VerifyResult plain = session.check_with(no_inv);
  EXPECT_FALSE(plain.deadlock_free());
  EXPECT_EQ(plain.num_invariants, 0u);

  // ...and nothing leaks into the next full-strength check.
  EXPECT_TRUE(session.check().deadlock_free());
  EXPECT_EQ(session.stats().invariant_generations, 1u);
}

TEST_P(VerifierTest, ProbeCapacityMatchesOneShotVerify) {
  auto make = [](std::size_t cap) {
    coh::MiAbstractConfig config;
    config.queue_capacity = cap;
    return std::move(coh::build_mi_abstract(config).net);
  };
  VerifyOptions vo = options();
  vo.symbolic_capacities = true;
  Verifier session(make(1), vo);
  for (std::size_t cap = 1; cap <= 4; ++cap) {
    const bool incremental = session.probe_capacity(cap).deadlock_free();
    const bool one_shot = verify(make(cap), options()).deadlock_free();
    EXPECT_EQ(incremental, one_shot) << "capacity " << cap;
    EXPECT_EQ(incremental, cap >= 3u);  // the paper's 2x2 boundary
  }
  EXPECT_EQ(session.stats().validations, 1u);
  EXPECT_EQ(session.stats().checks, 4u);
}

TEST_P(VerifierTest, ProbeCapacityRequiresSymbolicSession) {
  testing::RunningExample rx;
  Verifier session(rx.net, options());
  EXPECT_THROW((void)session.probe_capacity(2), std::logic_error);
}

TEST_P(VerifierTest, RecordsSmtlibSessionScript) {
  testing::RunningExample rx;
  VerifyOptions vo = options();
  vo.record_script = true;
  Verifier session(rx.net, vo);
  (void)session.check();
  (void)session.check();
  EXPECT_EQ(session.script().num_checks(), 2u);
  const std::string text = session.script().to_smtlib(session.factory());
  // Guard assumptions serialize as push/assert/check-sat/pop brackets.
  EXPECT_NE(text.find("(push 1)"), std::string::npos);
  EXPECT_NE(text.find("(pop 1)"), std::string::npos);
  EXPECT_NE(text.find("(check-sat)"), std::string::npos);
}

TEST_P(QueueSizing, SizingRunsThePipelineExactlyOnce) {
  auto make = [](std::size_t cap) {
    coh::MiAbstractConfig config;
    config.queue_capacity = cap;
    return std::move(coh::build_mi_abstract(config).net);
  };
  QueueSizingOptions o;
  o.min_capacity = 1;
  o.max_capacity = 16;
  o.verify = options();
  const QueueSizingResult r = find_minimal_queue_size(make, o);
  EXPECT_EQ(r.minimal_capacity, 3u);
  EXPECT_TRUE(r.incremental);
  // The tentpole contract: one validation + one invariant generation + one
  // encode for the whole sizing run; one solver check per probe.
  EXPECT_EQ(r.validations, 1u);
  EXPECT_EQ(r.invariant_generations, 1u);
  EXPECT_EQ(r.encodes, 1u);
  EXPECT_GE(r.probes.size(), 2u);
  EXPECT_EQ(r.solver_checks, r.probes.size());
}

TEST_P(QueueSizing, LegacyPathAgreesWithIncremental) {
  auto make = [](std::size_t cap) {
    coh::MiAbstractConfig config;
    config.queue_capacity = cap;
    return std::move(coh::build_mi_abstract(config).net);
  };
  QueueSizingOptions o;
  o.min_capacity = 1;
  o.max_capacity = 16;
  o.verify = options();
  o.incremental = false;
  const QueueSizingResult legacy = find_minimal_queue_size(make, o);
  EXPECT_EQ(legacy.minimal_capacity, 3u);
  EXPECT_FALSE(legacy.incremental);
  // The legacy path re-runs the pipeline per probe.
  EXPECT_EQ(legacy.validations, legacy.probes.size());
}

TEST_P(QueueSizing, ShapeChangingFactoryFallsBackSafely) {
  // make_net(cap) changes structure, not just capacities: the session
  // detects the mismatch per probe and falls back to one-shot verifies.
  auto make = [](std::size_t cap) {
    xmas::Network net;
    const xmas::ColorId d = net.colors().intern("d");
    xmas::PrimId prev = net.add_source("src", {d});
    int out = 0;
    // One pipeline stage per unit of capacity; every queue has capacity 1,
    // and the tail sink is dead below capacity 3, fair at and above it.
    for (std::size_t i = 0; i < cap; ++i) {
      const xmas::PrimId q = net.add_queue("q" + std::to_string(i), 1);
      net.connect(prev, out, q, 0);
      prev = q;
      out = 0;
    }
    net.connect(prev, out, net.add_sink("sink", /*fair=*/cap >= 3), 0);
    return net;
  };
  QueueSizingOptions o;
  o.min_capacity = 1;
  o.max_capacity = 8;
  o.verify = options();
  const QueueSizingResult r = find_minimal_queue_size(make, o);
  EXPECT_EQ(r.minimal_capacity, 3u);
  EXPECT_FALSE(r.incremental);  // the session could not be reused
}

TEST_P(QueueSizing, TrivialSystemNeedsMinCapacity) {
  // A fair pipeline is free at any capacity: the minimum is min_capacity.
  auto make = [](std::size_t cap) {
    xmas::Network net;
    const xmas::ColorId d = net.colors().intern("d");
    const xmas::PrimId q = net.add_queue("q", cap);
    net.connect(net.add_source("src", {d}), 0, q, 0);
    net.connect(q, 0, net.add_sink("sink"), 0);
    return net;
  };
  QueueSizingOptions o;
  o.min_capacity = 2;
  o.max_capacity = 8;
  o.verify = options();
  const QueueSizingResult r = find_minimal_queue_size(make, o);
  EXPECT_EQ(r.minimal_capacity, 2u);
}

}  // namespace
}  // namespace advocat::core
