// End-to-end verifier and minimal-queue-size search, on every available
// solver backend: native and Z3 must produce identical verdicts.
#include <gtest/gtest.h>

#include "advocat/verifier.hpp"
#include "backend_fixture.hpp"
#include "coherence/mi_abstract.hpp"
#include "helpers.hpp"

namespace advocat::core {
namespace {

class Verifier : public advocat::testing::BackendTest {
 protected:
  VerifyOptions options() const {
    VerifyOptions o;
    o.backend = GetParam();
    return o;
  }
};
ADVOCAT_INSTANTIATE_BACKENDS(Verifier);

class QueueSizing : public Verifier {};
ADVOCAT_INSTANTIATE_BACKENDS(QueueSizing);

TEST_P(Verifier, RejectsInvalidNetworks) {
  xmas::Network net;
  net.add_queue("dangling", 2);
  EXPECT_THROW(verify(net, options()), std::invalid_argument);
}

TEST_P(Verifier, ReportsStageTimings) {
  testing::RunningExample rx;
  const VerifyResult r = verify(rx.net, options());
  EXPECT_TRUE(r.deadlock_free());
  EXPECT_GT(r.num_invariants, 0u);
  EXPECT_GE(r.total_seconds, 0.0);
  EXPECT_FALSE(r.invariant_text.empty());
  EXPECT_NE(r.to_string().find("invariants:"), std::string::npos);
}

TEST_P(Verifier, InvariantsCanBeDisabled) {
  testing::RunningExample rx;
  VerifyOptions o = options();
  o.use_invariants = false;
  const VerifyResult r = verify(rx.net, o);
  EXPECT_EQ(r.num_invariants, 0u);
  EXPECT_FALSE(r.deadlock_free());  // candidates reappear
}

TEST_P(QueueSizing, FindsTheKnownBoundary) {
  auto make = [](std::size_t cap) {
    coh::MiAbstractConfig config;
    config.queue_capacity = cap;
    return std::move(coh::build_mi_abstract(config).net);
  };
  QueueSizingOptions o;
  o.min_capacity = 1;
  o.max_capacity = 16;
  o.verify = options();
  const QueueSizingResult r = find_minimal_queue_size(make, o);
  EXPECT_EQ(r.minimal_capacity, 3u);  // the paper's 2x2 value
  // Probes must include a failing and a succeeding capacity.
  bool saw_bad = false;
  bool saw_good = false;
  for (const auto& [cap, free] : r.probes) {
    saw_bad |= !free;
    saw_good |= free;
    if (free) EXPECT_GE(cap, 3u);
    else EXPECT_LT(cap, 3u);
  }
  EXPECT_TRUE(saw_bad);
  EXPECT_TRUE(saw_good);
}

TEST_P(QueueSizing, ReportsFailureWhenNothingFits) {
  // A dead sink deadlocks at every capacity.
  auto make = [](std::size_t cap) {
    xmas::Network net;
    const xmas::ColorId d = net.colors().intern("d");
    const xmas::PrimId q = net.add_queue("q", cap);
    net.connect(net.add_source("src", {d}), 0, q, 0);
    net.connect(q, 0, net.add_sink("sink", /*fair=*/false), 0);
    return net;
  };
  QueueSizingOptions o;
  o.min_capacity = 1;
  o.max_capacity = 8;
  o.verify = options();
  const QueueSizingResult r = find_minimal_queue_size(make, o);
  EXPECT_EQ(r.minimal_capacity, 0u);
  EXPECT_FALSE(r.probes.empty());
}

TEST_P(QueueSizing, TrivialSystemNeedsMinCapacity) {
  // A fair pipeline is free at any capacity: the minimum is min_capacity.
  auto make = [](std::size_t cap) {
    xmas::Network net;
    const xmas::ColorId d = net.colors().intern("d");
    const xmas::PrimId q = net.add_queue("q", cap);
    net.connect(net.add_source("src", {d}), 0, q, 0);
    net.connect(q, 0, net.add_sink("sink"), 0);
    return net;
  };
  QueueSizingOptions o;
  o.min_capacity = 2;
  o.max_capacity = 8;
  o.verify = options();
  const QueueSizingResult r = find_minimal_queue_size(make, o);
  EXPECT_EQ(r.minimal_capacity, 2u);
}

}  // namespace
}  // namespace advocat::core
