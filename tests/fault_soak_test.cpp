// Fault-soak suite (PR 9): deterministic fault injection across the
// bounded incremental fuzz corpus. The soak invariant is the PR's
// acceptance criterion: under any fault schedule the solver returns
// either the fault-free reference verdict or Unknown with a non-empty
// StopReason — never a wrong verdict, a crash, or a hang — and the
// session stays usable once the faults are cleared. The suite also pins
// the ADVOCAT_FAULTS spec grammar and the capacity-sizing soundness
// guarantee (a minimal capacity is only ever accepted on its own
// definite Unsat, faults or not).
//
// Schedule count defaults to 200 (the acceptance floor) and is tunable
// via ADVOCAT_SOAK_SCHEDULES for sanitizer jobs, where each schedule
// costs more.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "advocat/verifier.hpp"
#include "coherence/mi_abstract.hpp"
#include "proof_check.hpp"
#include "smt/expr.hpp"
#include "smt/solver.hpp"
#include "util/budget.hpp"
#include "util/fault.hpp"
#include "util/stopwatch.hpp"

namespace advocat::smt {
namespace {

namespace fault = util::fault;

// Faults are process-global; every test clears the schedule on exit so a
// latched or repeating fault can never leak into another test.
class FaultGuard {
 public:
  FaultGuard() = default;
  ~FaultGuard() { fault::configure(""); }
  FaultGuard(const FaultGuard&) = delete;
  FaultGuard& operator=(const FaultGuard&) = delete;
};

int soak_schedules() {
  if (const char* env = std::getenv("ADVOCAT_SOAK_SCHEDULES")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 200;
}

// ------------------------------------------------------- spec grammar

TEST(FaultSpec, OneShotFiresExactlyAtItsArrival) {
  FaultGuard guard;
  ASSERT_TRUE(fault::configure("worker_kill@3"));
  EXPECT_TRUE(fault::enabled());
  EXPECT_FALSE(fault::fire(fault::Site::kWorkerKill));
  EXPECT_FALSE(fault::fire(fault::Site::kWorkerKill));
  EXPECT_TRUE(fault::fire(fault::Site::kWorkerKill));
  EXPECT_FALSE(fault::fire(fault::Site::kWorkerKill));
  EXPECT_EQ(fault::arrivals(fault::Site::kWorkerKill), 4u);
  // Other sites are untouched by the schedule.
  EXPECT_FALSE(fault::fire(fault::Site::kArenaAlloc));
}

TEST(FaultSpec, RepeatSuffixFiresFromItsArrivalOnward) {
  FaultGuard guard;
  ASSERT_TRUE(fault::configure("bigint_alloc@2+"));
  EXPECT_FALSE(fault::fire(fault::Site::kBigIntAlloc));
  EXPECT_TRUE(fault::fire(fault::Site::kBigIntAlloc));
  EXPECT_TRUE(fault::fire(fault::Site::kBigIntAlloc));
  EXPECT_TRUE(fault::fire(fault::Site::kBigIntAlloc));
}

TEST(FaultSpec, MultipleTokensAndWhitespaceCompose) {
  FaultGuard guard;
  ASSERT_TRUE(fault::configure(" theory_timeout@1 , arena_alloc@2 "));
  EXPECT_TRUE(fault::fire(fault::Site::kTheoryTimeout));
  EXPECT_FALSE(fault::fire(fault::Site::kTheoryTimeout));
  EXPECT_FALSE(fault::fire(fault::Site::kArenaAlloc));
  EXPECT_TRUE(fault::fire(fault::Site::kArenaAlloc));
}

TEST(FaultSpec, BadTokensAreSkippedNotFatal) {
  FaultGuard guard;
  // Unknown site, garbage count, missing '@' — each is skipped with a
  // warning (env-knob convention) while the valid token still installs.
  EXPECT_FALSE(fault::configure("bogus@1,arena_alloc@xyz,oops"));
  EXPECT_FALSE(fault::configure("exchange_stall@1,bogus@2"));
  EXPECT_TRUE(fault::enabled());  // the valid token survived
  EXPECT_TRUE(fault::fire(fault::Site::kExchangeStall));
}

TEST(FaultSpec, EmptyAndNullDisable) {
  FaultGuard guard;
  ASSERT_TRUE(fault::configure("worker_kill@1"));
  EXPECT_TRUE(fault::enabled());
  EXPECT_TRUE(fault::configure(""));
  EXPECT_FALSE(fault::enabled());
  EXPECT_TRUE(fault::configure(nullptr));
  EXPECT_FALSE(fault::enabled());
}

TEST(FaultSpec, DeferLatchesUntilTaken) {
  FaultGuard guard;
  ASSERT_TRUE(fault::configure("arena_alloc@1"));
  EXPECT_FALSE(fault::take_deferred());
  fault::defer(fault::Site::kArenaAlloc);  // arrival 1 → latch
  EXPECT_TRUE(fault::take_deferred());
  EXPECT_FALSE(fault::take_deferred());  // one delivery per latch
  fault::defer(fault::Site::kArenaAlloc);  // arrival 2 → no fault
  EXPECT_FALSE(fault::take_deferred());
}

TEST(FaultSpec, SiteNamesRoundTrip) {
  FaultGuard guard;
  for (unsigned s = 0; s < static_cast<unsigned>(fault::Site::kCount); ++s) {
    const auto site = static_cast<fault::Site>(s);
    const std::string spec = std::string(fault::name(site)) + "@1";
    ASSERT_TRUE(fault::configure(spec.c_str())) << spec;
    EXPECT_TRUE(fault::fire(site)) << spec;
  }
}

// -------------------------------------------------------- soak harness

// Pigeonhole PHP(p, h): Unsat for p > h and resolution-hard, so learned
// clauses, theory calls, and (at larger sizes) the parallel cube
// machinery genuinely accrue fault arrivals before any verdict.
std::vector<ExprId> pigeonhole(ExprFactory& f, int pigeons, int holes) {
  std::vector<ExprId> clauses;
  std::vector<std::vector<ExprId>> in(
      static_cast<std::size_t>(pigeons),
      std::vector<ExprId>(static_cast<std::size_t>(holes)));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      in[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)] =
          f.bool_var("fk_p" + std::to_string(p) + "h" + std::to_string(h));
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    clauses.push_back(f.or_(in[static_cast<std::size_t>(p)]));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        clauses.push_back(f.or_(
            {f.not_(in[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)]),
             f.not_(in[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)])}));
      }
    }
  }
  return clauses;
}

// Bounded-domain incremental fuzz session, shared by the reference and
// the faulted run: the same seed replays the same assertion DAG and the
// same push/pop/check sequence. Bounded domains keep the fault-free
// native solver complete, so reference verdicts are definite and any
// faulted divergence other than Unknown is a soundness bug.
struct FuzzScript {
  explicit FuzzScript(std::uint64_t seed) : rng(seed) {}

  std::mt19937_64 rng;

  // Runs the scripted session on `solver` and returns the verdict of
  // every check in order. `factory` must outlive the solver. With
  // `with_php` a small pigeonhole instance rides along so the session is
  // conflict-rich — otherwise most fault arrivals are never reached and
  // the soak is vacuous.
  std::vector<SatResult> run(ExprFactory& f, Solver& solver, bool with_php) {
    std::vector<ExprId> ivars, bvars;
    for (int i = 0; i < 3; ++i) {
      ivars.push_back(f.int_var("sk_x" + std::to_string(i)));
    }
    for (int i = 0; i < 3; ++i) {
      bvars.push_back(f.bool_var("sk_p" + std::to_string(i)));
    }
    std::uniform_int_distribution<int> coeff(-3, 3);
    std::uniform_int_distribution<int> constd(-8, 8);
    std::uniform_int_distribution<std::size_t> pick_i(0, ivars.size() - 1);
    std::uniform_int_distribution<std::size_t> pick_b(0, bvars.size() - 1);
    std::function<ExprId(int)> formula = [&](int depth) -> ExprId {
      switch (std::uniform_int_distribution<int>(0, depth > 0 ? 5 : 1)(rng)) {
        case 0: {
          std::vector<ExprId> terms;
          const int n = std::uniform_int_distribution<int>(1, 3)(rng);
          for (int i = 0; i < n; ++i) {
            int c = coeff(rng);
            if (c == 0) c = 1;
            terms.push_back(f.mul_const(c, ivars[pick_i(rng)]));
          }
          const ExprId lhs = f.add(terms);
          const ExprId rhs = f.int_const(constd(rng));
          return (rng() & 1) != 0 ? f.le(lhs, rhs) : f.eq(lhs, rhs);
        }
        case 1: return bvars[pick_b(rng)];
        case 2: return f.not_(formula(depth - 1));
        case 3: return f.and_({formula(depth - 1), formula(depth - 1)});
        case 4: return f.or_({formula(depth - 1), formula(depth - 1)});
        default: return f.implies(formula(depth - 1), formula(depth - 1));
      }
    };
    for (ExprId v : ivars) {
      solver.add(f.le(f.int_const(-6), v));
      solver.add(f.le(v, f.int_const(6)));
    }
    if (with_php) {
      for (ExprId c : pigeonhole(f, 6, 5)) solver.add(c);
    }
    const int asserts = std::uniform_int_distribution<int>(1, 3)(rng);
    for (int i = 0; i < asserts; ++i) solver.add(formula(3));
    std::vector<SatResult> verdicts;
    const int ops = std::uniform_int_distribution<int>(3, 6)(rng);
    for (int i = 0; i < ops; ++i) {
      switch (std::uniform_int_distribution<int>(0, 3)(rng)) {
        case 0:
          solver.push();
          solver.add(formula(2));
          break;
        case 1:
          if (solver.num_scopes() > 0) solver.pop();
          break;
        case 2: verdicts.push_back(solver.check_assuming({formula(2)})); break;
        default: verdicts.push_back(solver.check()); break;
      }
    }
    verdicts.push_back(solver.check());  // every script ends on a check
    return verdicts;
  }
};

// Random fault schedule: 1–3 tokens over all six sites. exchange_stall
// never gets the '+' suffix — a stall on *every* exchange operation is a
// slowdown amplifier, not a new behavior, and would dominate wall clock.
std::string random_schedule(std::mt19937_64& rng) {
  static const char* kSites[] = {"worker_kill",    "arena_alloc",
                                 "bigint_alloc",   "exchange_stall",
                                 "exchange_overflow", "theory_timeout"};
  // Arrivals stay low (1–40): the soak scripts are small, so a fault
  // scheduled hundreds of arrivals out would never be reached and the
  // whole schedule would be a no-op.
  std::uniform_int_distribution<int> ntok(1, 3);
  std::uniform_int_distribution<std::size_t> site(0, 5);
  std::uniform_int_distribution<int> arrival(1, 40);
  std::string spec;
  const int n = ntok(rng);
  for (int t = 0; t < n; ++t) {
    if (t > 0) spec += ',';
    const std::size_t s = site(rng);
    spec += kSites[s];
    spec += '@';
    spec += std::to_string(arrival(rng));
    if (s != 3 && (rng() % 100) < 30) spec += '+';
  }
  return spec;
}

// Collects every certificate the faulted session emits so the round can
// pipe them through the standalone checker in-process.
struct CaptureSink : ProofSink {
  void on_unsat_certificate(const Certificate& cert) override {
    certs.push_back(cert);
  }
  std::vector<Certificate> certs;
};

// When ADVOCAT_PROOF_DIR is set (the CI certification step), the soak's
// certificates are also serialized for the standalone advocat-check
// binary to revalidate out of process.
void dump_certs(const CaptureSink& sink) {
  static const char* dir = std::getenv("ADVOCAT_PROOF_DIR");
  if (dir == nullptr) return;
  static std::size_t serial = 0;
  for (const Certificate& cert : sink.certs) {
    std::ofstream out(std::string(dir) + "/soak_" + std::to_string(serial++) +
                      ".proof");
    out << cert.text;
  }
}

TEST(FaultSoak, NeverAWrongVerdictAcrossRandomSchedules) {
  FaultGuard guard;
  const int schedules = soak_schedules();
  const unsigned thread_choices[] = {1, 2, 4};
  std::mt19937_64 master(20260808);
  int degraded = 0;
  int certified = 0;
  for (int round = 0; round < schedules; ++round) {
    const std::uint64_t seed = master();
    const std::string spec = random_schedule(master);
    const unsigned threads = thread_choices[master() % 3];
    // Alternate rounds carry a pigeonhole block: without it the random
    // formulas are decided in a handful of conflicts and most fault
    // arrivals are simply never reached.
    const bool with_php = (round % 2) == 0;

    // Reference: same script, faults off, sequential (thread count must
    // not matter for the definite verdicts — pinned by parallel_test).
    ASSERT_TRUE(fault::configure(""));
    ExprFactory f_ref;
    auto ref_solver = make_solver(f_ref, Backend::Native);
    std::vector<SatResult> reference =
        FuzzScript(seed).run(f_ref, *ref_solver, with_php);

    // Faulted replay, with proof logging on: every Unsat the degraded
    // session still produces must come with a checkable certificate (or
    // one that is honest about being aborted by the fault).
    ASSERT_TRUE(fault::configure(spec.c_str())) << spec;
    ExprFactory f_flt;
    auto solver = make_solver(f_flt, Backend::Native);
    solver->set_threads(threads);
    CaptureSink sink;
    solver->set_proof_sink(&sink);
    std::vector<SatResult> faulted =
        FuzzScript(seed).run(f_flt, *solver, with_php);

    ASSERT_EQ(faulted.size(), reference.size()) << spec;
    for (std::size_t i = 0; i < faulted.size(); ++i) {
      if (faulted[i] == reference[i]) continue;
      // The only tolerated divergence: a degraded Unknown that says why.
      ASSERT_EQ(faulted[i], SatResult::Unknown)
          << "WRONG VERDICT under faults: spec=" << spec << " seed=" << seed
          << " threads=" << threads << " check=" << i;
      ++degraded;
    }
    if (faulted.back() == SatResult::Unknown) {
      EXPECT_NE(solver->solve_stats().stop_reason, util::StopReason::kNone)
          << "silent Unknown: spec=" << spec << " seed=" << seed;
    }

    // Clearing the schedule re-arms the session: the final check must
    // now reproduce the reference verdict on the same live solver.
    ASSERT_TRUE(fault::configure(""));
    EXPECT_EQ(solver->check(), reference.back())
        << "session not reusable after faults: spec=" << spec
        << " seed=" << seed;

    // Certification invariant under faults: one certificate per Unsat
    // check (the post-clear re-check included), each either accepted by
    // the standalone checker or honestly incomplete with a reason.
    std::size_t unsat_checks = reference.back() == SatResult::Unsat ? 1 : 0;
    for (const SatResult v : faulted) {
      if (v == SatResult::Unsat) ++unsat_checks;
    }
    EXPECT_EQ(sink.certs.size(), unsat_checks)
        << "certificates != Unsat checks: spec=" << spec << " seed=" << seed;
    dump_certs(sink);
    for (std::size_t i = 0; i < sink.certs.size(); ++i) {
      const Certificate& cert = sink.certs[i];
      const proofcheck::CheckResult res =
          proofcheck::check_proof_text(cert.text);
      if (cert.complete) {
        EXPECT_TRUE(res.ok)
            << "cert " << i << " rejected (" << res.reason << ": "
            << res.detail << ") spec=" << spec << " seed=" << seed;
        EXPECT_EQ(res.mode, "native");
        ++certified;
      } else {
        EXPECT_FALSE(cert.reason.empty())
            << "incomplete certificate without a reason: spec=" << spec;
      }
    }
  }
  // The harness must actually bite: across hundreds of schedules at
  // least one fault has to land mid-search and degrade a verdict, and
  // the certification path must have validated real refutations.
  EXPECT_GT(degraded, 0) << "no schedule ever fired — soak is vacuous";
  EXPECT_GT(certified, 0) << "no Unsat was ever certified — soak is vacuous";
}

TEST(FaultSoak, WorkerKillDegradesParallelCheckNotVerdictSoundness) {
  FaultGuard guard;
  ExprFactory f;
  auto solver = make_solver(f, Backend::Native);
  solver->set_threads(4);
  for (ExprId c : pigeonhole(f, 8, 7)) solver->add(c);
  // Kill the first worker that polls its cancellation point: the check
  // either still proves Unsat (other cubes finish) or degrades honestly.
  ASSERT_TRUE(fault::configure("worker_kill@1"));
  const SatResult r = solver->check();
  if (r == SatResult::Unknown) {
    EXPECT_EQ(solver->solve_stats().stop_reason,
              util::StopReason::kFaultInjected);
  } else {
    EXPECT_EQ(r, SatResult::Unsat);
  }
  // Faults cleared, same session: the definite verdict comes back.
  ASSERT_TRUE(fault::configure(""));
  EXPECT_EQ(solver->check(), SatResult::Unsat);
}

TEST(FaultSoak, SizingUnderFaultsIsSoundAndFaultIndependentWhenDefinite) {
  FaultGuard guard;
  auto make = [](std::size_t cap) {
    coh::MiAbstractConfig config;
    config.queue_capacity = cap;
    return std::move(coh::build_mi_abstract(config).net);
  };
  core::QueueSizingOptions o;
  o.min_capacity = 1;
  o.max_capacity = 16;
  o.verify.backend = Backend::Native;

  ASSERT_TRUE(fault::configure(""));
  const core::QueueSizingResult reference =
      core::find_minimal_queue_size(make, o);
  ASSERT_EQ(reference.minimal_capacity, 3u);  // the paper's 2x2 value
  ASSERT_EQ(reference.unknown_probes, 0u);
  EXPECT_EQ(reference.stop_reason, util::StopReason::kNone);

  std::mt19937_64 rng(20260808);
  for (int round = 0; round < 6; ++round) {
    const std::string spec = random_schedule(rng);
    ASSERT_TRUE(fault::configure(spec.c_str())) << spec;
    for (const unsigned probe_threads : {1u, 3u}) {
      o.probe_threads = probe_threads;
      const core::QueueSizingResult r = core::find_minimal_queue_size(make, o);
      if (r.unknown_probes == 0) {
        // Every probe definite → the sizing result is fault- and
        // thread-count-independent.
        EXPECT_EQ(r.minimal_capacity, reference.minimal_capacity)
            << spec << " threads=" << probe_threads;
      } else {
        // Degraded probes may only ever oversize (or fail to find a
        // capacity), never undersize: acceptance needs a definite Unsat.
        EXPECT_NE(r.stop_reason, util::StopReason::kNone) << spec;
        if (r.minimal_capacity != 0) {
          EXPECT_GE(r.minimal_capacity, reference.minimal_capacity) << spec;
        }
      }
    }
  }
}

TEST(FaultSoak, BudgetedVerifierReportsReasonNotSilence) {
  // Budgets and faults share the degradation path: a Verifier check that
  // exhausts an absurdly small conflict budget must say so.
  FaultGuard guard;
  ASSERT_TRUE(fault::configure(""));
  coh::MiAbstractConfig config;
  config.queue_capacity = 1;  // deadlocks (Sat) at capacity 1 when unbudgeted
  core::VerifyOptions vo;
  vo.backend = Backend::Native;
  vo.budget.max_conflicts = 1;
  const core::VerifyResult r =
      core::verify(coh::build_mi_abstract(config).net, vo);
  if (r.report.result == SatResult::Unknown) {
    EXPECT_NE(r.stop_reason, util::StopReason::kNone);
    EXPECT_EQ(r.solve_stats.stop_reason, r.stop_reason);
  } else {
    // The check fit inside one conflict; the verdict must then be the
    // unbudgeted one and carry no reason.
    EXPECT_EQ(r.stop_reason, util::StopReason::kNone);
  }
}

}  // namespace
}  // namespace advocat::smt
