// Mesh generator: XY routing, structure, VC replication.
#include <gtest/gtest.h>

#include "automata/builder.hpp"
#include "noc/mesh.hpp"
#include "xmas/typing.hpp"

namespace advocat::noc {
namespace {

using xmas::ColorId;
using xmas::Network;
using xmas::PrimId;

TEST(XyRouting, DimensionOrder) {
  // 3x3, nodes 0..8 (row-major). From node 0 (0,0):
  EXPECT_EQ(xy_next_hop(3, 0, 0), -1);     // local
  EXPECT_EQ(xy_next_hop(3, 0, 2), East);   // same row east
  EXPECT_EQ(xy_next_hop(3, 0, 6), South);  // same column down
  EXPECT_EQ(xy_next_hop(3, 0, 8), East);   // X first
  EXPECT_EQ(xy_next_hop(3, 8, 0), West);   // X first back
  EXPECT_EQ(xy_next_hop(3, 6, 0), North);
  EXPECT_EQ(xy_next_hop(3, 5, 3), West);
}

// A reference automaton with one net-in and one net-out port that consumes
// anything addressed to it.
xmas::Automaton consume_all(Network& net, int n, ColorId emit_color) {
  aut::AutomatonBuilder b("node" + std::to_string(n), {"s"});
  b.in_ports(2).out_ports(1);
  b.on_pred("s", [](int port, ColorId) { return port == 0; }, "eat");
  b.on("s", 1, net.colors().intern("tok", n, n)).emit(0, emit_color);
  return b.build();
}

struct TestMesh {
  Network net;
  MeshStats stats;
  explicit TestMesh(const MeshConfig& config) {
    const int nodes = config.width * config.height;
    std::vector<NodeHook> hooks;
    for (int n = 0; n < nodes; ++n) {
      // Every node sends to node 0 (except node 0 which sends to the last).
      const int dst = n == 0 ? nodes - 1 : 0;
      const ColorId pkt = net.colors().intern("pkt", n, dst);
      const PrimId prim = net.add_automaton(consume_all(net, n, pkt));
      hooks.push_back(NodeHook{prim, 0, 0});
      net.connect(net.add_source("core" + std::to_string(n),
                                 {net.colors().intern("tok", n, n)}),
                  0, prim, 1);
    }
    stats = build_mesh(net, config, hooks);
  }
};

TEST(Mesh, StructureValidates2x2) {
  MeshConfig config;
  TestMesh mesh(config);
  const auto problems = mesh.net.validate();
  EXPECT_TRUE(problems.empty()) << (problems.empty() ? "" : problems[0]);
  // 2x2: 8 directed links -> 8 input queues, no ejection queues.
  EXPECT_EQ(mesh.stats.queues, 8u);
  EXPECT_EQ(mesh.net.num_queues(), 8u);
}

TEST(Mesh, StructureValidatesRectangularAnd1xN) {
  for (auto [w, h] : {std::pair{3, 2}, std::pair{1, 4}, std::pair{4, 1}}) {
    MeshConfig config;
    config.width = w;
    config.height = h;
    TestMesh mesh(config);
    const auto problems = mesh.net.validate();
    EXPECT_TRUE(problems.empty())
        << w << "x" << h << ": " << (problems.empty() ? "" : problems[0]);
  }
}

TEST(Mesh, VcReplicationMultipliesLinkQueues) {
  MeshConfig config;
  config.num_vcs = 2;
  config.vc_of = [](const xmas::ColorData& c) { return c.src % 2; };
  TestMesh mesh(config);
  EXPECT_TRUE(mesh.net.validate().empty());
  EXPECT_EQ(mesh.stats.queues, 16u);  // 8 links x 2 VCs
}

TEST(Mesh, EjectionBagOptional) {
  MeshConfig config;
  config.eject_capacity = 3;
  TestMesh mesh(config);
  EXPECT_TRUE(mesh.net.validate().empty());
  EXPECT_EQ(mesh.stats.queues, 12u);  // 8 links + 4 bags
  // Ejection bags are bags, link queues honor link_fifo (default bag).
  std::size_t bags = 0;
  for (PrimId q : mesh.net.prims_of_kind(xmas::PrimKind::Queue)) {
    if (!mesh.net.prim(q).fifo) ++bags;
  }
  EXPECT_EQ(bags, 12u);
}

TEST(Mesh, TypingFollowsXyRoutes) {
  MeshConfig config;
  config.width = 3;
  config.height = 3;
  TestMesh mesh(config);
  const xmas::Typing typing = xmas::Typing::derive(mesh.net);
  // Traffic from node 8 to node 0 goes west along row 2, then north along
  // column 0: the link from 1 to 0... does not exist; check instead that
  // the queue arriving at node 0 from the South carries pkt(8->0).
  const ColorId pkt = mesh.net.colors().intern("pkt", 8, 0);
  bool found = false;
  for (PrimId q : mesh.net.prims_of_kind(xmas::PrimKind::Queue)) {
    const auto& prim = mesh.net.prim(q);
    if (prim.name == "q_0_S") {
      found = true;
      EXPECT_TRUE(xmas::set_contains(typing.of(prim.in[0]), pkt));
    }
    if (prim.name == "q_0_E") {
      // X-first routing: pkt(8->0) turns at column 0, never arrives from
      // the East on row 0.
      EXPECT_FALSE(xmas::set_contains(typing.of(prim.in[0]), pkt));
    }
  }
  EXPECT_TRUE(found);
}

TEST(Mesh, RejectsBadArguments) {
  Network net;
  MeshConfig config;
  EXPECT_THROW(build_mesh(net, config, {}), std::invalid_argument);
  config.num_vcs = 2;  // no vc_of
  std::vector<NodeHook> hooks(4);
  EXPECT_THROW(build_mesh(net, config, hooks), std::invalid_argument);
}

}  // namespace
}  // namespace advocat::noc
