// Certified Sat verdicts: every deadlock candidate is decoded into a
// concrete simulator state and replayed (bounded exhaustive BFS) to
// confirm the claimed blockage is genuine, then minimized to an
// inclusion-minimal blocking queue set — no proper subset may still
// block. Runs across solver backends: the witness pipeline only consumes
// the model, so the verdict structure must be backend-independent.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "advocat/verifier.hpp"
#include "automata/builder.hpp"
#include "backend_fixture.hpp"
#include "coherence/mi_abstract.hpp"
#include "deadlock/varnames.hpp"
#include "deadlock/witness.hpp"
#include "helpers.hpp"
#include "noc/mesh.hpp"
#include "sim/simulator.hpp"
#include "xmas/typing.hpp"

namespace advocat {
namespace {

using deadlock::ClaimStatus;
using deadlock::Witness;
using xmas::ColorId;
using xmas::Network;
using xmas::PrimId;

/// A deterministic genuine deadlock: a fair source feeds a 1-slot queue
/// whose only consumer is a join waiting for a token that never arrives
/// (the token source is unfair, so it may stall forever).
struct JoinStarvation {
  Network net;
  PrimId src = -1, q = -1;
  JoinStarvation() {
    const ColorId pkt = net.colors().intern("pkt");
    const ColorId tok = net.colors().intern("tok");
    src = net.add_source("src", {pkt});
    q = net.add_queue("q", 1);
    const PrimId join = net.add_join("join");
    const PrimId tok_src = net.add_source("tokSrc", {tok}, /*fair=*/false);
    const PrimId sink = net.add_sink("sink");
    net.connect(src, 0, q, 0);
    net.connect(q, 0, join, 0);
    net.connect(tok_src, 0, join, 1);
    net.connect(join, 0, sink, 0);
  }
};

/// Checks inclusion-minimality directly: emptying any single blocking
/// queue and re-replaying must break a claim (or leave nothing to claim).
void expect_no_proper_subset_blocked(const Network& net, const Witness& w) {
  const sim::Simulator sim(net);
  std::vector<std::string> tags;
  for (const auto& c : w.claims) tags.push_back(c.tag);
  for (const std::string& qname : w.blocking_queues) {
    sim::State probe = w.state;
    int ordinal = -1;
    for (std::size_t qi = 0; qi < sim.num_queues(); ++qi) {
      if (net.prim(sim.queue_prim(static_cast<int>(qi))).name == qname) {
        ordinal = static_cast<int>(qi);
      }
    }
    ASSERT_GE(ordinal, 0) << qname;
    probe.queues[static_cast<std::size_t>(ordinal)].clear();
    // Claims about the emptied queue's contents no longer apply.
    std::vector<std::string> probe_tags;
    for (const std::string& t : tags) {
      if (t == "packet_stuck:" + qname) continue;
      probe_tags.push_back(t);
    }
    const std::vector<deadlock::WitnessClaim> verdicts =
        deadlock::replay_claims(net, probe, probe_tags, 50'000);
    const bool still_blocked =
        !verdicts.empty() &&
        std::all_of(verdicts.begin(), verdicts.end(), [](const auto& c) {
          return c.status == ClaimStatus::Confirmed;
        });
    EXPECT_FALSE(still_blocked)
        << "emptying " << qname << " leaves the witness blocked: not minimal";
  }
}

class WitnessBackend : public testing::BackendTest {};
ADVOCAT_INSTANTIATE_BACKENDS(WitnessBackend);

TEST_P(WitnessBackend, JoinStarvationConfirmedAndMinimal) {
  JoinStarvation n;
  core::VerifyOptions vo;
  vo.backend = GetParam();
  vo.witness_replay = true;
  vo.timeout_ms = testing::test_timeout_ms(60'000);
  const core::VerifyResult r = core::verify(n.net, vo);
  ASSERT_EQ(r.report.result, smt::SatResult::Sat);
  ASSERT_TRUE(r.witness.has_value());
  const Witness& w = *r.witness;
  EXPECT_TRUE(w.consistent) << w.to_string();
  ASSERT_TRUE(w.replayed);
  EXPECT_TRUE(w.exhaustive);
  EXPECT_TRUE(w.blocked) << w.to_string();
  EXPECT_TRUE(w.minimal);
  // The packet wedged in q is the whole deadlock.
  ASSERT_EQ(w.blocking_queues, std::vector<std::string>{"q"});
  expect_no_proper_subset_blocked(n.net, w);
  // JSON carries the machine-readable verdict (schema: docs/PROOFS.md).
  const std::string json = w.to_json();
  EXPECT_NE(json.find("\"blocked\":true"), std::string::npos);
  EXPECT_NE(json.find("\"minimal\":true"), std::string::npos);
}

TEST_P(WitnessBackend, MinimizedWitnessStillBlocked) {
  JoinStarvation n;
  core::VerifyOptions vo;
  vo.backend = GetParam();
  vo.witness_replay = true;
  vo.timeout_ms = testing::test_timeout_ms(60'000);
  const core::VerifyResult r = core::verify(n.net, vo);
  ASSERT_EQ(r.report.result, smt::SatResult::Sat);
  ASSERT_TRUE(r.witness.has_value() && r.witness->blocked);
  // Re-replaying the *minimized* state confirms it is still blocked.
  std::vector<std::string> tags;
  for (const auto& c : r.witness->claims) tags.push_back(c.tag);
  bool exhaustive = false;
  const auto verdicts = deadlock::replay_claims(n.net, r.witness->state, tags,
                                                50'000, nullptr, &exhaustive);
  EXPECT_TRUE(exhaustive);
  ASSERT_FALSE(verdicts.empty());
  for (const auto& c : verdicts) {
    EXPECT_EQ(c.status, ClaimStatus::Confirmed) << c.tag << ": " << c.note;
  }
}

TEST_P(WitnessBackend, Fig1CandidateWithoutInvariantsIsReplayed) {
  // Without invariants the fig. 1 running example yields a spurious
  // candidate (the net is deadlock-free). The replay must decode it
  // consistently and deliver a verdict; if it confirms blockage, the
  // state is unreachable (pruned by the invariant), which replay-from-
  // state cannot see — but the per-claim verdicts must be internally
  // consistent and the minimization sound.
  testing::RunningExample rx;
  core::VerifyOptions vo;
  vo.backend = GetParam();
  vo.use_invariants = false;
  vo.witness_replay = true;
  vo.timeout_ms = testing::test_timeout_ms(60'000);
  const core::VerifyResult r = core::verify(rx.net, vo);
  ASSERT_EQ(r.report.result, smt::SatResult::Sat);
  ASSERT_TRUE(r.witness.has_value());
  const Witness& w = *r.witness;
  EXPECT_TRUE(w.consistent) << w.to_string();
  ASSERT_TRUE(w.replayed);
  ASSERT_EQ(w.claims.size(), r.report.fired.size());
  if (w.blocked) {
    EXPECT_TRUE(w.minimal);
    expect_no_proper_subset_blocked(rx.net, w);
  } else {
    const bool any_not_confirmed =
        std::any_of(w.claims.begin(), w.claims.end(), [](const auto& c) {
          return c.status != ClaimStatus::Confirmed;
        });
    EXPECT_TRUE(any_not_confirmed) << w.to_string();
  }
}

TEST_P(WitnessBackend, Fig1WithInvariantsHasNoWitness) {
  testing::RunningExample rx;
  core::VerifyOptions vo;
  vo.backend = GetParam();
  vo.witness_replay = true;
  vo.timeout_ms = testing::test_timeout_ms(60'000);
  const core::VerifyResult r = core::verify(rx.net, vo);
  EXPECT_EQ(r.report.result, smt::SatResult::Unsat);
  EXPECT_FALSE(r.witness.has_value());
}

/// 2x2 mesh whose node automata inject but never consume: every packet
/// wedges at its destination and the fabric deadlocks for real.
struct StuckMesh {
  Network net;
  explicit StuckMesh(std::size_t link_capacity = 2) {
    const int nodes = 4;
    std::vector<noc::NodeHook> hooks;
    for (int n = 0; n < nodes; ++n) {
      const int dst = n == 0 ? nodes - 1 : 0;
      const ColorId pkt = net.colors().intern("pkt", n, dst);
      const ColorId tok = net.colors().intern("tok", n, n);
      aut::AutomatonBuilder b("node" + std::to_string(n), {"s"});
      b.in_ports(2).out_ports(1);
      b.on("s", 1, tok).emit(0, pkt).label("inject" + std::to_string(n));
      const PrimId prim = net.add_automaton(b.build());
      hooks.push_back(noc::NodeHook{prim, 0, 0});
      net.connect(net.add_source("core" + std::to_string(n), {tok}), 0, prim,
                  1);
    }
    noc::MeshConfig config;
    config.link_capacity = link_capacity;
    noc::build_mesh(net, config, hooks);
  }
};

TEST(WitnessMesh, StuckConsumersConfirmedBlocked) {
  StuckMesh m;
  core::VerifyOptions vo;
  vo.witness_replay = true;
  vo.witness_max_states = 200'000;
  vo.timeout_ms = testing::test_timeout_ms(120'000);
  const core::VerifyResult r = core::verify(m.net, vo);
  ASSERT_EQ(r.report.result, smt::SatResult::Sat);
  ASSERT_TRUE(r.witness.has_value());
  const Witness& w = *r.witness;
  EXPECT_TRUE(w.consistent) << w.to_string();
  ASSERT_TRUE(w.replayed);
  ASSERT_FALSE(w.claims.empty());
  if (w.blocked) {
    EXPECT_TRUE(w.minimal);
    expect_no_proper_subset_blocked(m.net, w);
  } else {
    // Bounded replay may run out of budget on the fabric state space, but
    // it must never silently claim confirmation.
    for (const auto& c : w.claims) {
      EXPECT_NE(c.note, "") << c.tag;
    }
  }
}

TEST(WitnessMi, Fig3DeadlockCandidateReplayed) {
  // The paper's Fig. 3 cross-layer deadlock (MI protocol on a 2x2 mesh,
  // queue capacity 2): the deadlock is real and reachable.
  coh::MiAbstractConfig config;
  config.queue_capacity = 2;
  coh::MiAbstractSystem sys = coh::build_mi_abstract(config);
  core::VerifyOptions vo;
  vo.witness_replay = true;
  vo.witness_max_states = 20'000;
  vo.timeout_ms = testing::test_timeout_ms(120'000);
  const core::VerifyResult r = core::verify(sys.net, vo);
  ASSERT_EQ(r.report.result, smt::SatResult::Sat);
  ASSERT_TRUE(r.witness.has_value());
  const Witness& w = *r.witness;
  EXPECT_TRUE(w.consistent) << w.to_string();
  ASSERT_TRUE(w.replayed);
  ASSERT_FALSE(w.claims.empty());
  EXPECT_GT(w.states_explored, 0u);
  // Every claim verdict must carry its evidence or its budget note.
  for (const auto& c : w.claims) {
    if (c.status != ClaimStatus::Confirmed) {
      EXPECT_FALSE(c.note.empty()) << c.tag;
    }
  }
  if (w.blocked) expect_no_proper_subset_blocked(sys.net, w);
}

TEST(WitnessDecode, InconsistentModelIsRejected) {
  // A hand-built model that over-fills the queue and activates two
  // automaton states must be flagged, not replayed.
  testing::RunningExample rx;
  const xmas::Typing typing = xmas::Typing::derive(rx.net);
  smt::Model model;
  model.set_int(occ_var_name(rx.net, rx.q0, rx.req), 99);
  model.set_int(state_var_name(rx.net, 0, 0), 1);
  model.set_int(state_var_name(rx.net, 0, 1), 1);
  const Witness w = deadlock::build_witness(
      rx.net, typing, model, {"packet_stuck:q0"}, {});
  EXPECT_FALSE(w.consistent);
  EXPECT_FALSE(w.replayed);
  EXPECT_FALSE(w.blocked);
  EXPECT_FALSE(w.inconsistencies.empty());
}

TEST(WitnessEvents, EffectSummariesMatchLabels) {
  // The structured Event effects the replay relies on: a source injection
  // pushes without popping; a queue-initiated transfer pops its queue.
  JoinStarvation n;
  const sim::Simulator sim(n.net);
  const sim::State init = sim.initial();
  const auto events = sim.events(init);
  ASSERT_FALSE(events.empty());
  for (const auto& e : events) {
    EXPECT_EQ(e.initiator, n.src) << e.label;
    ASSERT_EQ(e.effects.pushes.size(), 1u);
    EXPECT_EQ(sim.queue_prim(e.effects.pushes[0].first), n.q);
    EXPECT_TRUE(e.effects.pops.empty());
  }
  // After the push, the queue is full and the join still starves: the
  // deadlock state is quiescent.
  EXPECT_TRUE(sim.is_deadlock(events[0].next));
}

}  // namespace
}  // namespace advocat
