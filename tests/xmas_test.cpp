// xMAS core: colors, network construction, validation, typing, DOT export.
#include <gtest/gtest.h>

#include "xmas/color.hpp"
#include "xmas/dot_export.hpp"
#include "xmas/network.hpp"
#include "xmas/typing.hpp"

namespace advocat::xmas {
namespace {

TEST(ColorTable, InternsAndDeduplicates) {
  ColorTable table;
  const ColorId a = table.intern("get", 0, 3);
  const ColorId b = table.intern("get", 0, 3);
  const ColorId c = table.intern("get", 1, 3);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.name(a), "get(0->3)");
  EXPECT_EQ(table.name(table.intern("tok")), "tok");
  EXPECT_EQ(table.name(table.intern("fwd", 3, 1, 2)), "fwd(3->1)#2");
}

TEST(ColorSet, SortedSetOperations) {
  ColorSet set;
  EXPECT_TRUE(set_insert(set, 5));
  EXPECT_TRUE(set_insert(set, 2));
  EXPECT_FALSE(set_insert(set, 5));
  EXPECT_EQ(set, (ColorSet{2, 5}));
  EXPECT_TRUE(set_contains(set, 2));
  EXPECT_FALSE(set_contains(set, 3));
  ColorSet other{3, 5};
  EXPECT_TRUE(set_union(set, other));
  EXPECT_EQ(set, (ColorSet{2, 3, 5}));
  EXPECT_FALSE(set_union(set, other));
}

TEST(Network, ConnectRejectsDoubleWiring) {
  Network net;
  const ColorId tok = net.colors().intern("tok");
  const PrimId src = net.add_source("src", {tok});
  const PrimId q = net.add_queue("q", 2);
  const PrimId sink = net.add_sink("sink");
  net.connect(src, 0, q, 0);
  EXPECT_THROW(net.connect(src, 0, q, 0), std::logic_error);
  EXPECT_THROW(net.connect(q, 5, sink, 0), std::out_of_range);
  net.connect(q, 0, sink, 0);
  EXPECT_TRUE(net.validate().empty());
}

TEST(Network, ValidateFindsDanglingPorts) {
  Network net;
  const ColorId tok = net.colors().intern("tok");
  net.add_source("src", {tok});
  const auto problems = net.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("src"), std::string::npos);
}

TEST(Network, ValidateFindsDuplicateNames) {
  Network net;
  const ColorId tok = net.colors().intern("tok");
  const PrimId a = net.add_source("x", {tok});
  const PrimId b = net.add_sink("x");
  net.connect(a, 0, b, 0);
  const auto problems = net.validate();
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("duplicate"), std::string::npos);
}

TEST(Network, BuilderParameterChecks) {
  Network net;
  EXPECT_THROW(net.add_queue("q", 0), std::invalid_argument);
  EXPECT_THROW(net.add_switch("s", 1, [](ColorId) { return 0; }),
               std::invalid_argument);
  EXPECT_THROW(net.add_merge("m", 1), std::invalid_argument);
}

TEST(Network, DesugaredPrimitiveCount) {
  Network net;
  const ColorId tok = net.colors().intern("tok");
  const PrimId src = net.add_source("src", {tok});
  const PrimId sw = net.add_switch("sw", 4, [](ColorId) { return 0; });
  const PrimId mg = net.add_merge("mg", 3);
  const PrimId sink = net.add_sink("sink");
  net.connect(src, 0, sw, 0);
  for (int i = 0; i < 4; ++i) {
    if (i < 3) net.connect(sw, i, mg, i);
  }
  net.connect(sw, 3, net.add_sink("s2"), 0);
  net.connect(mg, 0, sink, 0);
  // src(1) + sink(1) + s2(1) + 4-way switch(3 binary) + 3-way merge(2).
  EXPECT_EQ(net.num_prims_desugared(), 8u);
}

// Typing through a function/switch/merge diamond.
TEST(Typing, PropagatesThroughPrimitives) {
  Network net;
  auto& colors = net.colors();
  const ColorId red = colors.intern("red");
  const ColorId blue = colors.intern("blue");
  const ColorId green = colors.intern("green");

  const PrimId src = net.add_source("src", {red, blue});
  const PrimId sw = net.add_switch(
      "sw", 2, [red](ColorId c) { return c == red ? 0 : 1; });
  // red -> green on branch 0.
  const PrimId fn = net.add_function(
      "fn", [green](ColorId) { return green; });
  const PrimId mg = net.add_merge("mg", 2);
  const PrimId q = net.add_queue("q", 2);
  const PrimId sink = net.add_sink("sink");

  net.connect(src, 0, sw, 0);
  net.connect(sw, 0, fn, 0);
  const ChanId sw1 = net.connect(sw, 1, mg, 1);
  const ChanId fn_out = net.connect(fn, 0, mg, 0);
  const ChanId q_in = net.connect(mg, 0, q, 0);
  const ChanId q_out = net.connect(q, 0, sink, 0);

  ASSERT_TRUE(net.validate().empty());
  const Typing typing = Typing::derive(net);
  EXPECT_EQ(typing.of(sw1), ColorSet{blue});
  EXPECT_EQ(typing.of(fn_out), ColorSet{green});
  EXPECT_EQ(typing.of(q_in), (ColorSet{blue, green}));
  EXPECT_EQ(typing.of(q_out), (ColorSet{blue, green}));
  EXPECT_EQ(typing.num_pairs(), 2u + 1u + 1u + 1u + 2u + 2u);
}

TEST(Typing, ForkAndJoin) {
  Network net;
  auto& colors = net.colors();
  const ColorId d = colors.intern("d");
  const ColorId t = colors.intern("t");
  const PrimId src = net.add_source("data", {d});
  const PrimId tok = net.add_source("tok", {t});
  const PrimId fork = net.add_fork("fork");
  const PrimId join = net.add_join("join");
  const PrimId s1 = net.add_sink("s1");
  const PrimId s2 = net.add_sink("s2");

  net.connect(src, 0, fork, 0);
  const ChanId fa = net.connect(fork, 0, join, 0);  // data side
  const ChanId fb = net.connect(fork, 1, s1, 0);
  const ChanId tj = net.connect(tok, 0, join, 1);   // token side
  const ChanId out = net.connect(join, 0, s2, 0);

  ASSERT_TRUE(net.validate().empty());
  const Typing typing = Typing::derive(net);
  EXPECT_EQ(typing.of(fa), ColorSet{d});
  EXPECT_EQ(typing.of(fb), ColorSet{d});
  EXPECT_EQ(typing.of(tj), ColorSet{t});
  EXPECT_EQ(typing.of(out), ColorSet{d});  // join copies the data input
}

TEST(Typing, AutomatonEmissions) {
  Network net;
  auto& colors = net.colors();
  const ColorId ping = colors.intern("ping");
  const ColorId pong = colors.intern("pong");

  Automaton a;
  a.name = "echo";
  a.states = {"s"};
  a.num_in = 1;
  a.num_out = 1;
  AutTransition t;
  t.from = t.to = 0;
  t.guard = [ping](int, ColorId d) { return d == ping; };
  t.transform = [pong](int, ColorId) {
    return std::optional<Emission>({0, pong});
  };
  t.label = "echo";
  a.transitions.push_back(std::move(t));

  const PrimId prim = net.add_automaton(std::move(a));
  const PrimId src = net.add_source("src", {ping});
  const PrimId sink = net.add_sink("sink");
  net.connect(src, 0, prim, 0);
  const ChanId out = net.connect(prim, 0, sink, 0);

  const Typing typing = Typing::derive(net);
  EXPECT_EQ(typing.of(out), ColorSet{pong});
}

TEST(DotExport, ProducesWellFormedDigraph) {
  Network net;
  const ColorId tok = net.colors().intern("tok");
  const PrimId src = net.add_source("src", {tok});
  const PrimId q = net.add_queue("q", 2);
  const PrimId sink = net.add_sink("sink");
  net.connect(src, 0, q, 0);
  net.connect(q, 0, sink, 0);
  const Typing typing = Typing::derive(net);
  const std::string dot = to_dot(net, &typing);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("src"), std::string::npos);
  EXPECT_NE(dot.find("tok"), std::string::npos);
  EXPECT_EQ(dot.find("null"), std::string::npos);
}

}  // namespace
}  // namespace advocat::xmas
