// End-to-end reproduction of the paper's running example (Fig. 1 and the
// Section 1 invariant): typing, invariant generation, deadlock candidates
// without invariants, deadlock freedom with them, and explicit-state
// cross-check.
#include <gtest/gtest.h>

#include "advocat/verifier.hpp"
#include "backend_fixture.hpp"
#include "deadlock/encoder.hpp"
#include "helpers.hpp"
#include "invariants/generator.hpp"
#include "linalg/eliminator.hpp"
#include "sim/explorer.hpp"
#include "sim/simulator.hpp"
#include "smt/smtlib.hpp"
#include "xmas/typing.hpp"

namespace advocat {
namespace {

using testing::RunningExample;

class RunningExampleBackend : public testing::BackendTest {};
ADVOCAT_INSTANTIATE_BACKENDS(RunningExampleBackend);

TEST(RunningExample, ValidatesAndTypes) {
  RunningExample rx;
  EXPECT_TRUE(rx.net.validate().empty());
  const xmas::Typing typing = xmas::Typing::derive(rx.net);
  // q0 carries requests only, q1 acknowledgments only.
  const auto& q0 = rx.net.prim(rx.q0);
  const auto& q1 = rx.net.prim(rx.q1);
  EXPECT_EQ(typing.of(q0.in[0]), xmas::ColorSet{rx.req});
  EXPECT_EQ(typing.of(q0.out[0]), xmas::ColorSet{rx.req});
  EXPECT_EQ(typing.of(q1.in[0]), xmas::ColorSet{rx.ack});
  EXPECT_EQ(typing.of(q1.out[0]), xmas::ColorSet{rx.ack});
}

// The Section 1 invariant: #q0 + #q1 = S.s1 + T.t0 - 1. Checked as span
// membership: adding the paper's row to the generated equalities must not
// increase the rank.
TEST(RunningExample, FindsThePaperInvariant) {
  RunningExample rx;
  const xmas::Typing typing = xmas::Typing::derive(rx.net);
  inv::InvariantSet set = inv::generate(rx.net, typing);
  ASSERT_FALSE(set.equalities.empty());

  const inv::VarSpace& vars = *set.vars;
  linalg::SparseRow paper;
  paper.add(vars.occ(rx.q0, rx.req), 1);
  paper.add(vars.occ(rx.q1, rx.ack), 1);
  paper.add(vars.state(0, 1), -1);  // S.s1
  paper.add(vars.state(1, 0), -1);  // T.t0
  paper.add_constant(1);

  std::vector<linalg::SparseRow> rows = set.equalities;
  ASSERT_TRUE(linalg::Eliminator::reduce_rref(rows));
  const std::size_t rank_before = rows.size();
  rows.push_back(paper);
  ASSERT_TRUE(linalg::Eliminator::reduce_rref(rows));
  EXPECT_EQ(rows.size(), rank_before)
      << "paper invariant is not implied by the generated set";
}

// One-hot state sums are invariants too.
TEST(RunningExample, FindsOneHotInvariants) {
  RunningExample rx;
  const xmas::Typing typing = xmas::Typing::derive(rx.net);
  inv::InvariantSet set = inv::generate(rx.net, typing);
  const inv::VarSpace& vars = *set.vars;
  for (int a = 0; a < 2; ++a) {
    linalg::SparseRow onehot;
    onehot.add(vars.state(a, 0), 1);
    onehot.add(vars.state(a, 1), 1);
    onehot.add_constant(-1);
    std::vector<linalg::SparseRow> rows = set.equalities;
    linalg::Eliminator::reduce_rref(rows);
    const std::size_t rank = rows.size();
    rows.push_back(onehot);
    linalg::Eliminator::reduce_rref(rows);
    EXPECT_EQ(rows.size(), rank);
  }
}

// Without invariants the block/idle query reports (unreachable) deadlock
// candidates — the two candidates discussed in Section 3.
TEST_P(RunningExampleBackend, WithoutInvariantsReportsCandidates) {
  RunningExample rx;
  core::VerifyOptions options;
  options.use_invariants = false;
  options.backend = GetParam();
  const core::VerifyResult result = core::verify(rx.net, options);
  EXPECT_FALSE(result.deadlock_free());
}

// With cross-layer invariants the system is proven deadlock-free.
TEST_P(RunningExampleBackend, WithInvariantsProvenDeadlockFree) {
  RunningExample rx;
  core::VerifyOptions options;
  options.backend = GetParam();
  const core::VerifyResult result = core::verify(rx.net, options);
  EXPECT_TRUE(result.deadlock_free()) << result.report.to_string();
}

// Explicit-state cross-check: the reachable space is tiny and contains no
// quiescent state.
TEST(RunningExample, ExplicitStateAgreesNoDeadlock) {
  RunningExample rx;
  sim::Simulator simulator(rx.net);
  const sim::ExploreResult result = sim::explore(simulator);
  EXPECT_TRUE(result.complete);
  EXPECT_FALSE(result.deadlock.has_value());
  // States: (s,t) automaton pairs x queue fills — small but nontrivial.
  EXPECT_GT(result.states_visited, 3u);
  EXPECT_LT(result.states_visited, 64u);
}

// Queue capacity does not matter for this protocol: it is self-limiting
// (at most one packet in flight). Verify for several capacities.
TEST_P(RunningExampleBackend, DeadlockFreeForAllCapacities) {
  core::VerifyOptions options;
  options.backend = GetParam();
  for (std::size_t cap : {1u, 2u, 5u}) {
    RunningExample rx(cap, cap);
    const core::VerifyResult result = core::verify(rx.net, options);
    EXPECT_TRUE(result.deadlock_free()) << "capacity " << cap;
  }
}

// The full block/idle encoding of the running example round-trips through
// the SMT-LIB2 printer: every variable declared, well-formed framing, no
// crash on the |quoted| occupancy/state names.
TEST(RunningExample, EncodingRoundTripsThroughSmtLib) {
  RunningExample rx;
  const xmas::Typing typing = xmas::Typing::derive(rx.net);
  smt::ExprFactory f;
  deadlock::Encoder encoder(rx.net, typing, f);
  const deadlock::Encoding enc = encoder.encode();
  const std::string text = smt::to_smtlib(f, enc.all_assertions());
  EXPECT_NE(text.find("(set-logic QF_LIA)"), std::string::npos);
  EXPECT_NE(text.find("(check-sat)"), std::string::npos);
  std::size_t declared = 0;
  for (std::size_t at = text.find("(declare-const");
       at != std::string::npos; at = text.find("(declare-const", at + 1)) {
    ++declared;
  }
  EXPECT_EQ(declared, f.variables().size());
  // Occupancy and state variable names need |...| quoting.
  EXPECT_NE(text.find("|"), std::string::npos);
}

}  // namespace
}  // namespace advocat
