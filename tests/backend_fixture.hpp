// Backend-parameterized test fixture: suites derived from BackendTest run
// once per available solver backend (always native, plus Z3 when this
// build has it), so both solvers must agree on every verdict.
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "smt/solver.hpp"
#include "util/env.hpp"

namespace advocat::testing {

/// Per-query solver timeout for tests that bound slow paths. Defaults to
/// `fallback`; ADVOCAT_TEST_TIMEOUT_MS overrides it globally so CI smoke
/// runs can tighten every such bound in one place instead of editing
/// scattered magic numbers (0 disables the timeout entirely). Parsing is
/// validated (garbage, negative, and overflowing values fall back / clamp
/// with a stderr warning — see util::env_uint).
inline unsigned test_timeout_ms(unsigned fallback) {
  return util::env_test_timeout_ms(fallback);
}

inline std::vector<smt::Backend> solver_backends() {
  std::vector<smt::Backend> out{smt::Backend::Native};
  if (smt::backend_available(smt::Backend::Z3)) out.push_back(smt::Backend::Z3);
  return out;
}

struct BackendName {
  template <class ParamType>
  std::string operator()(const ::testing::TestParamInfo<ParamType>& info) const {
    return smt::to_string(info.param);
  }
};

class BackendTest : public ::testing::TestWithParam<smt::Backend> {};

#define ADVOCAT_INSTANTIATE_BACKENDS(fixture)                            \
  INSTANTIATE_TEST_SUITE_P(                                              \
      Backends, fixture,                                                 \
      ::testing::ValuesIn(::advocat::testing::solver_backends()),        \
      ::advocat::testing::BackendName{})

}  // namespace advocat::testing
