// Backend-parameterized test fixture: suites derived from BackendTest run
// once per available solver backend (always native, plus Z3 when this
// build has it), so both solvers must agree on every verdict.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "smt/solver.hpp"

namespace advocat::testing {

inline std::vector<smt::Backend> solver_backends() {
  std::vector<smt::Backend> out{smt::Backend::Native};
  if (smt::backend_available(smt::Backend::Z3)) out.push_back(smt::Backend::Z3);
  return out;
}

struct BackendName {
  template <class ParamType>
  std::string operator()(const ::testing::TestParamInfo<ParamType>& info) const {
    return smt::to_string(info.param);
  }
};

class BackendTest : public ::testing::TestWithParam<smt::Backend> {};

#define ADVOCAT_INSTANTIATE_BACKENDS(fixture)                            \
  INSTANTIATE_TEST_SUITE_P(                                              \
      Backends, fixture,                                                 \
      ::testing::ValuesIn(::advocat::testing::solver_backends()),        \
      ::advocat::testing::BackendName{})

}  // namespace advocat::testing
