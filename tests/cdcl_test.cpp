// CDCL behavior of the native solver: clause learning is active and
// persists across pop() and between incremental checks, backjumping and
// restarts produce correct verdicts, the search is deterministic, the
// learned-clause database is bounded by deletion, and degraded searches
// (unbounded domains, timeouts) answer Unknown — never a wrong Unsat.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "backend_fixture.hpp"
#include "smt/eval.hpp"
#include "smt/expr.hpp"
#include "smt/solver.hpp"
#include "util/budget.hpp"
#include "util/stopwatch.hpp"

namespace advocat::smt {
namespace {

// The CDCL suite always runs with the solver invariant auditor on (unless
// the caller set ADVOCAT_AUDIT explicitly): every backjump, restart, and
// check boundary here deep-checks the search state (smt/audit.hpp).
const int kAuditOn = [] {
  ::setenv("ADVOCAT_AUDIT", "1", /*overwrite=*/0);
  return 0;
}();

// Pigeonhole principle PHP(p, h): p pigeons into h holes. Unsat for p > h,
// and famously resolution-hard — a reliable conflict generator.
std::vector<ExprId> pigeonhole(ExprFactory& f, int pigeons, int holes) {
  std::vector<ExprId> constraints;
  std::vector<std::vector<ExprId>> in(
      static_cast<std::size_t>(pigeons),
      std::vector<ExprId>(static_cast<std::size_t>(holes)));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      in[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)] =
          f.bool_var("php_p" + std::to_string(p) + "h" + std::to_string(h));
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    constraints.push_back(f.or_(in[static_cast<std::size_t>(p)]));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        constraints.push_back(f.or_(
            {f.not_(in[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)]),
             f.not_(in[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)])}));
      }
    }
  }
  return constraints;
}

TEST(Cdcl, LearnsClausesAndKeepsThemAcrossPop) {
  ExprFactory f;
  auto solver = make_solver(f, Backend::Native);

  solver->push();
  for (ExprId c : pigeonhole(f, 7, 6)) solver->add(c);
  ASSERT_EQ(solver->check(), SatResult::Unsat);
  const SolveStats first = solver->solve_stats();
  EXPECT_GT(first.conflicts, 0u);
  EXPECT_GT(first.learned_clauses, 0u);
  EXPECT_GT(first.learned_kept, 0u);
  solver->pop();

  // The popped scope's learned clauses survive: they mention the scoped
  // roots' negations explicitly, so they stay valid — and make the same
  // query much cheaper the second time.
  solver->push();
  for (ExprId c : pigeonhole(f, 7, 6)) solver->add(c);
  ASSERT_EQ(solver->check(), SatResult::Unsat);
  const SolveStats second = solver->solve_stats();
  EXPECT_GT(second.learned_kept, 0u);
  EXPECT_LT(second.conflicts - first.conflicts, first.conflicts)
      << "re-checking the popped formula should reuse learned clauses";
  solver->pop();

  // And the popped clauses do not poison an unrelated satisfiable query.
  const ExprId x = f.int_var("x");
  solver->add(f.le(f.int_const(2), x));
  solver->add(f.le(x, f.int_const(5)));
  ASSERT_EQ(solver->check(), SatResult::Sat);
  EXPECT_GE(solver->model().int_value("x"), 2);
  EXPECT_LE(solver->model().int_value("x"), 5);
}

TEST(Cdcl, LearningCarriesAcrossAssumptionProbes) {
  // The incremental-session pattern: one formula, capacity-style probes as
  // assumption flips. Learned clauses from earlier probes must persist
  // (they may mention the assumption atoms, which is sound) and speed up
  // later probes instead of being discarded with the assumptions.
  ExprFactory f;
  auto solver = make_solver(f, Backend::Native);
  for (ExprId c : pigeonhole(f, 7, 6)) solver->add(c);
  const ExprId guard = f.bool_var("cdcl_guard");

  ASSERT_EQ(solver->check_assuming({guard}), SatResult::Unsat);
  const SolveStats first = solver->solve_stats();
  EXPECT_GT(first.learned_kept, 0u);

  ASSERT_EQ(solver->check_assuming({f.not_(guard)}), SatResult::Unsat);
  const SolveStats second = solver->solve_stats();
  EXPECT_LT(second.conflicts - first.conflicts, first.conflicts)
      << "the second probe should start from the first probe's clauses";
  EXPECT_GT(second.learned_hits, first.learned_hits)
      << "the reuse must be visible as prior-clause hits, not just fewer "
         "conflicts";
}

// check_assuming() on an Unsat verdict reports which assumptions the
// refutation used — the contract capacity probing leans on to tell a
// capacity-induced Unsat from one forced by the assertions alone.
TEST(Cdcl, UnsatCoreReportsFailedAssumptions) {
  for (const Backend backend : advocat::testing::solver_backends()) {
    ExprFactory f;
    auto solver = make_solver(f, backend);
    const ExprId x = f.int_var("core_x");
    const ExprId y = f.int_var("core_y");
    solver->add(f.le(f.int_const(0), y));
    const ExprId a_hi = f.le(f.int_const(6), x);  // x >= 6
    const ExprId a_lo = f.le(x, f.int_const(2));  // x <= 2 — clashes with a_hi
    const ExprId a_y = f.eq(y, f.int_const(5));   // satisfiable, irrelevant
    ASSERT_EQ(solver->check_assuming({a_y, a_hi, a_lo}), SatResult::Unsat)
        << to_string(backend);

    const std::vector<ExprId>& core = solver->unsat_core();
    auto in_core = [&core](ExprId e) {
      return std::find(core.begin(), core.end(), e) != core.end();
    };
    EXPECT_TRUE(in_core(a_hi)) << to_string(backend);
    EXPECT_TRUE(in_core(a_lo)) << to_string(backend);
    EXPECT_FALSE(in_core(a_y))
        << to_string(backend) << ": the refutation never touched y";

    // A Sat check clears the core; an assertion-only Unsat leaves it empty
    // (the assumptions were not needed).
    ASSERT_EQ(solver->check_assuming({a_y}), SatResult::Sat);
    EXPECT_TRUE(solver->unsat_core().empty());
    solver->push();
    solver->add(a_hi);
    solver->add(a_lo);
    ASSERT_EQ(solver->check_assuming({a_y}), SatResult::Unsat);
    EXPECT_FALSE(in_core(a_y));  // note: vector reference stays valid
    EXPECT_TRUE(solver->unsat_core().empty())
        << to_string(backend) << ": unsat without the assumptions";
    solver->pop();
  }
}

// The core machinery composes with clause learning: a later probe whose
// refutation reuses learned clauses must still trace those clauses back
// to the assumptions that (re-)enable them.
TEST(Cdcl, UnsatCoreSurvivesLearnedClauseReuse) {
  ExprFactory f;
  auto solver = make_solver(f, Backend::Native);
  const ExprId guard = f.bool_var("core_guard");
  std::vector<ExprId> php = pigeonhole(f, 7, 6);
  for (ExprId c : php) solver->add(f.implies(guard, c));

  ASSERT_EQ(solver->check_assuming({guard}), SatResult::Unsat);
  ASSERT_EQ(solver->unsat_core().size(), 1u);
  EXPECT_EQ(solver->unsat_core()[0], guard);

  // Second probe: mostly answered from learned clauses, same core.
  ASSERT_EQ(solver->check_assuming({guard}), SatResult::Unsat);
  ASSERT_EQ(solver->unsat_core().size(), 1u);
  EXPECT_EQ(solver->unsat_core()[0], guard);

  // Dropping the guard assumption drops the contradiction.
  EXPECT_EQ(solver->check(), SatResult::Sat);
}

TEST(Cdcl, BackjumpsOverIrrelevantDecisionsCorrectly) {
  // A long chain of free variables (decision fodder) plus a contradiction
  // reachable only through the chain's tail: conflict analysis must jump
  // back over the irrelevant decisions and still produce exact verdicts
  // in both directions.
  ExprFactory f;
  auto solver = make_solver(f, Backend::Native);
  const int kChain = 24;
  std::vector<ExprId> chain;
  for (int i = 0; i < kChain; ++i) {
    chain.push_back(f.bool_var("link" + std::to_string(i)));
  }
  for (int i = 0; i + 1 < kChain; ++i) {
    solver->add(f.implies(chain[static_cast<std::size_t>(i)],
                          chain[static_cast<std::size_t>(i + 1)]));
  }
  const ExprId x = f.int_var("bj_x");
  solver->add(f.implies(chain.back(), f.le(f.int_const(7), x)));
  solver->add(f.implies(chain.back(), f.le(x, f.int_const(3))));
  solver->add(f.le(f.int_const(0), x));
  solver->add(f.le(x, f.int_const(10)));

  // Asserting the chain head forces the contradiction at its tail.
  ASSERT_EQ(solver->check_assuming({chain.front()}), SatResult::Unsat);
  // Without the assumption the formula is satisfiable — and the model
  // must actually satisfy every assertion (cross-checked by evaluation).
  ASSERT_EQ(solver->check(), SatResult::Sat);
  const Model& m = solver->model();
  EXPECT_FALSE(m.bool_value("link0"));  // the chain head cannot hold
  EXPECT_TRUE(eval_bool(
      f, m, f.implies(chain.back(), f.le(f.int_const(7), x))));
}

TEST(Cdcl, RestartsAreDeterministic) {
  // No randomness anywhere: two fresh solvers on the same session must
  // walk the identical search, restart for restart, conflict for conflict.
  auto run = [](SolveStats& out) {
    ExprFactory f;
    auto solver = make_solver(f, Backend::Native);
    for (ExprId c : pigeonhole(f, 8, 7)) solver->add(c);
    const SatResult r = solver->check();
    out = solver->solve_stats();
    return r;
  };
  SolveStats a, b;
  ASSERT_EQ(run(a), SatResult::Unsat);
  ASSERT_EQ(run(b), SatResult::Unsat);
  EXPECT_GT(a.restarts, 0u) << "PHP(8,7) must be hard enough to restart";
  EXPECT_EQ(a.conflicts, b.conflicts);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.propagations, b.propagations);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.learned_clauses, b.learned_clauses);
  EXPECT_EQ(a.deleted_clauses, b.deleted_clauses);
}

TEST(Cdcl, DeletesLearnedClausesUnderPressure) {
  ExprFactory f;
  auto solver = make_solver(f, Backend::Native);
  for (ExprId c : pigeonhole(f, 8, 7)) solver->add(c);
  ASSERT_EQ(solver->check(), SatResult::Unsat);
  const SolveStats& s = solver->solve_stats();
  EXPECT_GT(s.deleted_clauses, 0u)
      << "LBD/activity reduction should have trimmed the database";
  EXPECT_LT(s.learned_kept, s.learned_clauses);
}

TEST(Cdcl, RefutesUnboundedInfeasibleSystemsExactly) {
  // x <= y - 1 and y <= x - 1 is infeasible but unbounded: the interval
  // fixpoint diverges (PR 4 degraded exactly this shape to Unknown by
  // design). The simplex theory layer now refutes it outright — the
  // Farkas combination of the two rows is 0 <= -2 — and reports the
  // effort through the new SolveStats fields.
  ExprFactory f;
  auto solver = make_solver(f, Backend::Native);
  const ExprId x = f.int_var("u_x");
  const ExprId y = f.int_var("u_y");
  solver->add(f.le(x, f.add({y, f.int_const(-1)})));
  solver->add(f.le(y, f.add({x, f.int_const(-1)})));
  EXPECT_EQ(solver->check(), SatResult::Unsat);
  EXPECT_GT(solver->solve_stats().farkas_explanations, 0u)
      << "the refutation must come from a Farkas certificate";

  // The refutation is the cycle, not blanket pessimism: relaxing one side
  // leaves a satisfiable system.
  ExprFactory f2;
  auto relaxed = make_solver(f2, Backend::Native);
  const ExprId x2 = f2.int_var("u_x");
  const ExprId y2 = f2.int_var("u_y");
  relaxed->add(f2.le(x2, f2.add({y2, f2.int_const(-1)})));
  relaxed->add(f2.le(f2.int_const(3), y2));
  ASSERT_EQ(relaxed->check(), SatResult::Sat);
}

TEST(Cdcl, IntegerDivisibilityCutRefutesAtTranslation) {
  // 2x = 2y + 1 has no integer solution (gcd(2,2) does not divide 1); the
  // theory layer's divisibility cut decides the atom at translation time,
  // so neither polarity needs any search.
  ExprFactory f;
  auto solver = make_solver(f, Backend::Native);
  const ExprId x = f.int_var("g_x");
  const ExprId y = f.int_var("g_y");
  const ExprId odd =
      f.eq(f.mul_const(2, x), f.add({f.mul_const(2, y), f.int_const(1)}));
  solver->push();
  solver->add(odd);
  EXPECT_EQ(solver->check(), SatResult::Unsat);
  solver->pop();
  solver->add(f.not_(odd));  // the disequality is an integer tautology
  EXPECT_EQ(solver->check(), SatResult::Sat);
}

TEST(Cdcl, DegradedIntegerOpenSearchStaysUnknown) {
  // 2x - 2y <= 1 and 2y - 2x <= -1 pin x - y to the rational value 1/2:
  // rationally feasible, integer-infeasible, unbounded — and split across
  // two inequality atoms, so the single-atom divisibility cut cannot see
  // it. Branch-on-rational-vertex cannot close an unbounded fractional
  // line within its budget either; the solver must degrade to Unknown
  // instead of guessing. (This replaces the pre-simplex divergence
  // exemplar x <= y-1, y <= x-1, which the theory now refutes exactly.)
  ExprFactory f;
  auto solver = make_solver(f, Backend::Native);
  const ExprId x = f.int_var("u_x");
  const ExprId y = f.int_var("u_y");
  solver->add(f.le(f.add({f.mul_const(2, x), f.mul_const(-2, y)}),
                   f.int_const(1)));
  solver->add(f.le(f.add({f.mul_const(2, y), f.mul_const(-2, x)}),
                   f.int_const(-1)));
  EXPECT_EQ(solver->check(), SatResult::Unknown);

  // And a tainted check never contaminates the next one: with bounds the
  // same shape is refuted exactly (finite enumeration closes the line).
  solver->add(f.le(f.int_const(0), x));
  solver->add(f.le(x, f.int_const(8)));
  solver->add(f.le(f.int_const(0), y));
  solver->add(f.le(y, f.int_const(8)));
  EXPECT_EQ(solver->check(), SatResult::Unsat);
}

// Differential fuzz on random incremental sessions over bounded linear
// arithmetic. Two fresh native solvers always run every session in
// lockstep: the search is fully deterministic, so their verdicts AND
// statistics must match step for step — a seed-determinism cross-check
// that keeps this target meaningful in the no-Z3 configuration, where it
// used to skip silently and test nothing. When the Z3 oracle is available
// a Z3 session joins the lockstep and every definite verdict must agree
// across backends. The oracle half is the harness that caught a real
// soundness bug during development (provenance explanations built over
// the mutable current-source graph lost the grounding bound of
// self-referential tightening laps and learned a clause the theory did
// not entail); it pins the chronological-log fix.
TEST(Cdcl, DifferentialFuzzAcrossBackendsAndSeeds) {
  const bool with_z3 = backend_available(Backend::Z3);
  std::mt19937_64 master(20260728);
  for (int round = 0; round < 200; ++round) {
    std::mt19937_64 rng(master());
    ExprFactory f;
    std::vector<ExprId> ivars, bvars;
    for (int i = 0; i < 4; ++i) {
      ivars.push_back(f.int_var("fz_x" + std::to_string(i)));
    }
    for (int i = 0; i < 3; ++i) {
      bvars.push_back(f.bool_var("fz_p" + std::to_string(i)));
    }
    std::uniform_int_distribution<int> coeff(-3, 3);
    std::uniform_int_distribution<int> constd(-8, 8);
    std::uniform_int_distribution<std::size_t> pick_i(0, ivars.size() - 1);
    std::uniform_int_distribution<std::size_t> pick_b(0, bvars.size() - 1);
    std::function<ExprId(int)> formula = [&](int depth) -> ExprId {
      switch (std::uniform_int_distribution<int>(0, depth > 0 ? 5 : 1)(rng)) {
        case 0: {
          std::vector<ExprId> terms;
          const int n = std::uniform_int_distribution<int>(1, 3)(rng);
          for (int i = 0; i < n; ++i) {
            int c = coeff(rng);
            if (c == 0) c = 1;
            terms.push_back(f.mul_const(c, ivars[pick_i(rng)]));
          }
          const ExprId lhs = f.add(terms);
          const ExprId rhs = f.int_const(constd(rng));
          return (rng() & 1) != 0 ? f.le(lhs, rhs) : f.eq(lhs, rhs);
        }
        case 1: return bvars[pick_b(rng)];
        case 2: return f.not_(formula(depth - 1));
        case 3: return f.and_({formula(depth - 1), formula(depth - 1)});
        case 4: return f.or_({formula(depth - 1), formula(depth - 1)});
        default: return f.implies(formula(depth - 1), formula(depth - 1));
      }
    };
    // solvers[0] and [1] are the native determinism twins; [2] is Z3.
    std::vector<std::unique_ptr<Solver>> solvers;
    solvers.push_back(make_solver(f, Backend::Native));
    solvers.push_back(make_solver(f, Backend::Native));
    if (with_z3) solvers.push_back(make_solver(f, Backend::Z3));
    auto add_all = [&](ExprId e) {
      for (auto& s : solvers) s->add(e);
    };
    auto expect_twins_in_sync = [&](const char* what) {
      const SolveStats& a = solvers[0]->solve_stats();
      const SolveStats& b = solvers[1]->solve_stats();
      EXPECT_EQ(a.conflicts, b.conflicts) << what << " round " << round;
      EXPECT_EQ(a.decisions, b.decisions) << what << " round " << round;
      EXPECT_EQ(a.propagations, b.propagations) << what << " round " << round;
      EXPECT_EQ(a.learned_clauses, b.learned_clauses)
          << what << " round " << round;
      EXPECT_EQ(a.theory_pivots, b.theory_pivots) << what << " round " << round;
      EXPECT_EQ(a.farkas_explanations, b.farkas_explanations)
          << what << " round " << round;
    };
    // Three rounds in four get bounded domains (native stays complete and
    // definite verdicts abound); the fourth leaves the variables unbounded
    // so the sessions exercise the simplex theory layer — Farkas
    // refutations, divisibility cuts, branch-on-vertex — where Unknown is
    // tolerated but any definite verdict must still match the oracle.
    if (round % 4 != 3) {
      for (ExprId v : ivars) {
        add_all(f.le(f.int_const(-6), v));
        add_all(f.le(v, f.int_const(6)));
      }
    }
    const int asserts = std::uniform_int_distribution<int>(1, 3)(rng);
    for (int i = 0; i < asserts; ++i) add_all(formula(3));
    const int ops = std::uniform_int_distribution<int>(2, 5)(rng);
    for (int i = 0; i < ops; ++i) {
      switch (std::uniform_int_distribution<int>(0, 3)(rng)) {
        case 0: {
          for (auto& s : solvers) s->push();
          add_all(formula(2));
          break;
        }
        case 1:
          if (solvers[0]->num_scopes() > 0) {
            for (auto& s : solvers) s->pop();
          }
          break;
        case 2: {
          const ExprId a = formula(2);
          const SatResult rn = solvers[0]->check_assuming({a});
          ASSERT_EQ(rn, solvers[1]->check_assuming({a}))
              << "native twins diverged, round " << round;
          expect_twins_in_sync("check_assuming");
          // The native solver may degrade a search to Unknown
          // (documented); definite verdicts must agree with the oracle
          // exactly.
          if (with_z3 && rn != SatResult::Unknown) {
            ASSERT_EQ(rn, solvers[2]->check_assuming({a}))
                << "round " << round;
          }
          break;
        }
        default: {
          const SatResult rn = solvers[0]->check();
          ASSERT_EQ(rn, solvers[1]->check())
              << "native twins diverged, round " << round;
          expect_twins_in_sync("check");
          if (with_z3 && rn != SatResult::Unknown) {
            ASSERT_EQ(rn, solvers[2]->check()) << "round " << round;
          }
        }
      }
    }
  }
}

TEST(Cdcl, TimeoutReturnsUnknownPromptly) {
  // The deadline must be honored inside every search loop (satellite fix:
  // it used to be overshot badly in the tightening/branch-and-bound
  // loops). PHP(11,10) takes far longer than the 50ms budget.
  ExprFactory f;
  auto solver = make_solver(f, Backend::Native);
  for (ExprId c : pigeonhole(f, 11, 10)) solver->add(c);
  util::Stopwatch watch;
  EXPECT_EQ(solver->check(/*timeout_ms=*/50), SatResult::Unknown);
  EXPECT_LT(watch.seconds(), 5.0) << "timeout overshot by >100x";
}

TEST(Cdcl, TimedOutCheckDoesNotLeakDeadlineIntoNextCheck) {
  // Per-check transient state (deadline_active_, the ops_ poll counter)
  // must be fully reset when a check exits by *any* path, including the
  // Timeout unwind. A leaked deadline would make the follow-up untimed
  // check on the same session spuriously Unknown the moment its first
  // deadline poll fires.
  ExprFactory f;
  auto solver = make_solver(f, Backend::Native);
  for (ExprId c : pigeonhole(f, 9, 8)) solver->add(c);
  ASSERT_EQ(solver->check(/*timeout_ms=*/1), SatResult::Unknown)
      << "PHP(9,8) must not be refutable within 1ms for this regression "
         "test to bite";
  // Same session, no timeout: must run to the definite verdict. With the
  // stale 1ms deadline this returns Unknown almost immediately.
  EXPECT_EQ(solver->check(/*timeout_ms=*/0), SatResult::Unsat);
}

TEST(Cdcl, EveryBudgetKindDegradesWithItsOwnReasonAndClearsCleanly) {
  // The PR6 deadline-leak regression, generalized to every budget kind:
  // a check stopped by any ceiling answers Unknown with the matching
  // StopReason, and clearing the budget re-arms the same session — no
  // ceiling may leak into the follow-up check.
  struct Case {
    const char* name;
    util::ResourceBudget budget;
    util::StopReason reason;
  };
  const Case cases[] = {
      {"deadline", {.deadline_ms = 1}, util::StopReason::kDeadline},
      {"conflicts", {.max_conflicts = 1}, util::StopReason::kConflictBudget},
      {"decisions", {.max_decisions = 1}, util::StopReason::kDecisionBudget},
      {"propagations",
       {.max_propagations = 1},
       util::StopReason::kPropagationBudget},
      {"memory", {.max_memory_bytes = 1}, util::StopReason::kMemoryCeiling},
  };
  for (const Case& c : cases) {
    ExprFactory f;
    auto solver = make_solver(f, Backend::Native);
    for (ExprId cl : pigeonhole(f, 9, 8)) solver->add(cl);
    solver->set_budget(c.budget);
    ASSERT_EQ(solver->check(), SatResult::Unknown)
        << "PHP(9,8) must not fit inside the tight " << c.name << " budget";
    EXPECT_EQ(solver->solve_stats().stop_reason, c.reason) << c.name;
    // Budget cleared, same live session: the definite verdict comes back
    // and the stats no longer carry a reason.
    solver->set_budget({});
    EXPECT_EQ(solver->check(), SatResult::Unsat) << c.name << " budget leaked";
    EXPECT_EQ(solver->solve_stats().stop_reason, util::StopReason::kNone)
        << c.name;
  }
}

TEST(Cdcl, CrossThreadCancelInterruptsAndReArms) {
  // cancel() from another thread must stop an in-flight check promptly
  // with Unknown(cancelled), and — like the budget kinds above — must not
  // leak into the next check on the same session.
  ExprFactory f;
  auto solver = make_solver(f, Backend::Native);
  for (ExprId c : pigeonhole(f, 11, 10)) solver->add(c);
  util::Stopwatch watch;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    solver->cancel();
  });
  const SatResult r = solver->check();
  canceller.join();
  EXPECT_EQ(r, SatResult::Unknown);
  EXPECT_EQ(solver->solve_stats().stop_reason, util::StopReason::kCancelled);
  EXPECT_LT(watch.seconds(), 5.0) << "cancel() not observed promptly";
  // The cancel flag re-arms per check: the follow-up must run for its own
  // deadline (a leaked flag would return Unknown(cancelled) instantly).
  util::Stopwatch again;
  EXPECT_EQ(solver->check(/*timeout_ms=*/50), SatResult::Unknown);
  EXPECT_EQ(solver->solve_stats().stop_reason, util::StopReason::kDeadline)
      << "stale cancellation leaked into the next check";
  EXPECT_GT(again.millis(), 10.0)
      << "follow-up check died instantly — cancel flag leaked";
}

TEST(Cdcl, TightBudgetDifferentialOutcomesAcrossBackends) {
  // Both backends under the same tight discrete budget: definite verdicts
  // must agree, every Unknown must carry a non-empty StopReason, and the
  // native determinism twins must stay in lockstep even while degrading.
  const bool with_z3 = backend_available(Backend::Z3);
  std::mt19937_64 master(20260809);
  for (int round = 0; round < 24; ++round) {
    std::mt19937_64 rng(master());
    ExprFactory f;
    const int pigeons = std::uniform_int_distribution<int>(4, 7)(rng);
    const auto clauses = pigeonhole(f, pigeons, pigeons - 1);
    util::ResourceBudget budget;
    budget.max_conflicts = std::uniform_int_distribution<std::uint64_t>(
        1, 40)(rng);
    std::vector<std::unique_ptr<Solver>> solvers;
    solvers.push_back(make_solver(f, Backend::Native));
    solvers.push_back(make_solver(f, Backend::Native));
    if (with_z3) solvers.push_back(make_solver(f, Backend::Z3));
    std::vector<SatResult> verdicts;
    for (auto& s : solvers) {
      for (ExprId c : clauses) s->add(c);
      s->set_budget(budget);
      verdicts.push_back(s->check());
    }
    // Native twins: identical verdict AND identical stop reason — the
    // budget cut must be deterministic, not timing-dependent.
    ASSERT_EQ(verdicts[0], verdicts[1]) << "round " << round;
    EXPECT_EQ(solvers[0]->solve_stats().stop_reason,
              solvers[1]->solve_stats().stop_reason)
        << "round " << round;
    for (std::size_t i = 0; i < solvers.size(); ++i) {
      if (verdicts[i] == SatResult::Unknown) {
        EXPECT_NE(solvers[i]->solve_stats().stop_reason,
                  util::StopReason::kNone)
            << "silent budgeted Unknown, backend " << i << " round " << round;
      } else {
        EXPECT_EQ(verdicts[i], SatResult::Unsat)
            << "backend " << i << " round " << round;
      }
    }
  }
}

}  // namespace
}  // namespace advocat::smt
