// PR6 parallel-solver suite: validated env knobs, the fork/join helpers,
// the sharded clause exchange (the TSan hammer lives here), determinism
// mode (same thread count twice → identical verdicts AND identical
// SolveStats), thread-count verdict agreement under differential fuzz,
// and the parallel capacity-probe scheduler against its sequential twin.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "advocat/verifier.hpp"
#include "coherence/mi_abstract.hpp"
#include "smt/clause_exchange.hpp"
#include "smt/expr.hpp"
#include "smt/solver.hpp"
#include "util/env.hpp"
#include "util/parallel.hpp"

namespace advocat {
namespace {

using smt::Backend;
using smt::ExprFactory;
using smt::ExprId;
using smt::SatResult;
using smt::SolveStats;
using smt::make_solver;

/// Sets (or unsets, when value == nullptr) an environment variable for
/// one scope and restores the previous state on exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_ = true;
      old_ = old;
    }
    if (value != nullptr) ::setenv(name, value, 1);
    else ::unsetenv(name);
  }
  ~ScopedEnv() {
    if (had_) ::setenv(name_, old_.c_str(), 1);
    else ::unsetenv(name_);
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
  bool had_ = false;
  std::string old_;
};

// Pigeonhole principle PHP(p, h): Unsat for p > h and resolution-hard —
// PHP(8,7) costs a few thousand conflicts, comfortably past the parallel
// probe budget, so the cube/portfolio machinery genuinely engages.
std::vector<ExprId> pigeonhole(ExprFactory& f, int pigeons, int holes) {
  std::vector<ExprId> clauses;
  std::vector<std::vector<ExprId>> in(
      static_cast<std::size_t>(pigeons),
      std::vector<ExprId>(static_cast<std::size_t>(holes)));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      in[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)] =
          f.bool_var("pl_p" + std::to_string(p) + "h" + std::to_string(h));
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    clauses.push_back(f.or_(in[static_cast<std::size_t>(p)]));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        clauses.push_back(f.or_(
            {f.not_(in[static_cast<std::size_t>(p1)][static_cast<std::size_t>(h)]),
             f.not_(in[static_cast<std::size_t>(p2)][static_cast<std::size_t>(h)])}));
      }
    }
  }
  return clauses;
}

// ------------------------------------------------------------- env knobs

TEST(EnvParsing, GarbageNegativeAndOverflowFallBack) {
  {
    ScopedEnv e("ADVOCAT_THREADS", "banana");
    EXPECT_EQ(util::env_threads(1), 1u);
  }
  {
    ScopedEnv e("ADVOCAT_THREADS", "12abc");  // trailing junk
    EXPECT_EQ(util::env_threads(2), 2u);
  }
  {
    ScopedEnv e("ADVOCAT_THREADS", "-4");
    EXPECT_EQ(util::env_threads(1), 1u);
  }
  {
    ScopedEnv e("ADVOCAT_THREADS", "99999999999999999999999");  // ERANGE
    EXPECT_EQ(util::env_threads(1), 1u);
  }
  {
    ScopedEnv e("ADVOCAT_TEST_TIMEOUT_MS", "soon");
    EXPECT_EQ(util::env_test_timeout_ms(250), 250u);
  }
  {
    ScopedEnv e("ADVOCAT_TEST_TIMEOUT_MS", "-1");
    EXPECT_EQ(util::env_test_timeout_ms(250), 250u);
  }
}

TEST(EnvParsing, OutOfRangeValuesClamp) {
  {
    ScopedEnv e("ADVOCAT_THREADS", "0");  // below the 1-thread minimum
    EXPECT_EQ(util::env_threads(4), 1u);
  }
  {
    ScopedEnv e("ADVOCAT_THREADS", "100000");
    EXPECT_EQ(util::env_threads(1), 256u);
  }
  {
    ScopedEnv e("ADVOCAT_TEST_TIMEOUT_MS", "999999999");  // > one hour
    EXPECT_EQ(util::env_test_timeout_ms(0), 3'600'000u);
  }
}

TEST(EnvParsing, ValidAndUnsetValues) {
  {
    ScopedEnv e("ADVOCAT_THREADS", "8");
    EXPECT_EQ(util::env_threads(1), 8u);
  }
  {
    ScopedEnv e("ADVOCAT_THREADS", nullptr);
    EXPECT_EQ(util::env_threads(3), 3u);
  }
  {
    ScopedEnv e("ADVOCAT_TEST_TIMEOUT_MS", "0");  // 0 = no timeout, valid
    EXPECT_EQ(util::env_test_timeout_ms(77), 0u);
  }
  {
    ScopedEnv e("ADVOCAT_DETERMINISTIC", "1");
    EXPECT_TRUE(util::env_deterministic());
  }
  {
    ScopedEnv e("ADVOCAT_DETERMINISTIC", "0");
    EXPECT_FALSE(util::env_deterministic());
  }
  {
    ScopedEnv e("ADVOCAT_DETERMINISTIC", nullptr);
    EXPECT_FALSE(util::env_deterministic());
  }
}

// ------------------------------------------------------ fork/join helpers

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  util::parallel_for(hits.size(), 8,
                     [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  std::vector<std::atomic<int>> hits2(257);
  util::parallel_for_static(hits2.size(), 8,
                            [&](std::size_t i) { hits2[i].fetch_add(1); });
  for (const auto& h : hits2) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, FirstExceptionPropagates) {
  EXPECT_THROW(util::parallel_for(
                   16, 4,
                   [](std::size_t i) {
                     if (i == 7) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
  EXPECT_THROW(util::parallel_for_static(
                   16, 4,
                   [](std::size_t i) {
                     if (i == 7) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ParallelFor, ManyThrowingCellsJoinAllAndRethrowExactlyOne) {
  // The fig4 --position-threads sweep regression: several cells throwing
  // concurrently must produce exactly ONE rethrown exception on the
  // caller, after every worker joined — not a std::terminate, not a leaked
  // thread, not a second in-flight exception. Every entered task must also
  // leave (normally or by throw) before the helper returns; remaining
  // tasks may be skipped (early stop) but never half-run.
  for (const bool use_static : {false, true}) {
    std::atomic<int> entered{0};
    std::atomic<int> exited{0};
    const auto cell = [&](std::size_t i) {
      entered.fetch_add(1);
      struct Leave {
        std::atomic<int>& n;
        ~Leave() { n.fetch_add(1); }
      } leave{exited};
      if (i % 3 == 0) {  // 22 of 64 cells throw
        throw std::runtime_error("cell " + std::to_string(i));
      }
    };
    int caught = 0;
    try {
      if (use_static) {
        util::parallel_for_static(64, 8, cell);
      } else {
        util::parallel_for(64, 8, cell);
      }
    } catch (const std::runtime_error& e) {
      ++caught;
      EXPECT_EQ(std::string(e.what()).rfind("cell ", 0), 0u) << e.what();
    }
    EXPECT_EQ(caught, 1) << (use_static ? "static" : "dynamic");
    // All workers joined: every task that started also finished, and at
    // least one throwing cell ran.
    EXPECT_EQ(entered.load(), exited.load())
        << (use_static ? "static" : "dynamic");
    EXPECT_GE(entered.load(), 1);
    EXPECT_LE(entered.load(), 64);
  }
}

// -------------------------------------------------------- clause exchange

TEST(ClauseExchange, DrainSeesEachClauseOnceAndSkipsOwnShard) {
  smt::native::ClauseExchange x;
  EXPECT_TRUE(x.publish({2, 5}, /*source=*/0));
  EXPECT_TRUE(x.publish({4}, /*source=*/0));
  EXPECT_TRUE(x.publish({6, 9}, /*source=*/1));

  smt::native::ClauseExchange::Cursor cursor{};
  std::vector<smt::native::ClauseExchange::Lits> got;
  x.drain(cursor, got, /*skip_shard=*/0);  // worker 0: own shard skipped
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (std::vector<std::int32_t>{6, 9}));

  got.clear();
  x.drain(cursor, got, /*skip_shard=*/0);  // nothing new
  EXPECT_TRUE(got.empty());

  x.publish({8}, /*source=*/1);
  got.clear();
  x.drain(cursor, got, /*skip_shard=*/0);  // only the new suffix
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (std::vector<std::int32_t>{8}));

  // A fresh cursor with no skip sees everything exactly once.
  smt::native::ClauseExchange::Cursor all{};
  got.clear();
  x.drain(all, got);
  EXPECT_EQ(got.size(), 4u);
  EXPECT_EQ(x.published(), 4u);
  EXPECT_EQ(x.dropped(), 0u);
}

TEST(ClauseExchange, ConcurrentPublishAndDrainIsRaceFree) {
  // The TSan target: publishers and drainers hammer the exchange
  // concurrently. Correctness here is no data race (TSan), no lost or
  // duplicated clause (counted after the join).
  smt::native::ClauseExchange x;
  constexpr int kPublishers = 4;
  constexpr int kPerPublisher = 2000;
  std::vector<std::thread> threads;
  std::atomic<std::size_t> drained_mid{0};
  for (int p = 0; p < kPublishers; ++p) {
    threads.emplace_back([&x, p] {
      for (int i = 0; i < kPerPublisher; ++i) {
        x.publish({p * kPerPublisher + i}, static_cast<unsigned>(p));
      }
    });
  }
  for (int d = 0; d < 3; ++d) {
    threads.emplace_back([&x, &drained_mid] {
      smt::native::ClauseExchange::Cursor cursor{};
      std::vector<smt::native::ClauseExchange::Lits> got;
      for (int round = 0; round < 50; ++round) x.drain(cursor, got);
      drained_mid.fetch_add(got.size());
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(x.published() + x.dropped(),
            static_cast<std::uint64_t>(kPublishers) * kPerPublisher);
  smt::native::ClauseExchange::Cursor cursor{};
  std::vector<smt::native::ClauseExchange::Lits> all;
  x.drain(cursor, all);
  EXPECT_EQ(all.size(), x.published());
}

// ----------------------------------------------------- determinism suite

SolveStats run_deterministic_php(unsigned threads, SatResult* verdict) {
  ExprFactory f;
  auto solver = make_solver(f, Backend::Native);
  solver->set_threads(threads);
  solver->set_deterministic(true);
  for (ExprId c : pigeonhole(f, 8, 7)) solver->add(c);
  *verdict = solver->check();
  return solver->solve_stats();
}

TEST(ParallelDeterminism, SameThreadCountTwiceIsBitIdentical) {
  // Determinism mode contract: for a fixed problem and thread count, two
  // runs give the same verdict AND the same SolveStats — the schedule is
  // a pure function of the input (static cube partition, no exchange, no
  // early cancellation).
  SatResult v1 = SatResult::Unknown;
  SatResult v2 = SatResult::Unknown;
  const SolveStats a = run_deterministic_php(8, &v1);
  const SolveStats b = run_deterministic_php(8, &v2);
  EXPECT_EQ(v1, SatResult::Unsat);
  EXPECT_EQ(v2, SatResult::Unsat);
  EXPECT_EQ(a.threads, 8u);
  EXPECT_GT(a.conflicts, 1000u) << "must outgrow the cube-probe budget so "
                                   "parallel workers actually ran";
  EXPECT_EQ(a.conflicts, b.conflicts);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.propagations, b.propagations);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.learned_clauses, b.learned_clauses);
  EXPECT_EQ(a.learned_hits, b.learned_hits);
  EXPECT_EQ(a.theory_pivots, b.theory_pivots);
  // Determinism mode disables the exchange entirely.
  EXPECT_EQ(a.clauses_exported, 0u);
  EXPECT_EQ(a.clauses_imported, 0u);
}

TEST(ParallelDeterminism, ThreadCountsAgreeOnPigeonhole) {
  SatResult v1 = SatResult::Unknown;
  SatResult v8 = SatResult::Unknown;
  (void)run_deterministic_php(1, &v1);
  (void)run_deterministic_php(8, &v8);
  EXPECT_EQ(v1, SatResult::Unsat);
  EXPECT_EQ(v8, SatResult::Unsat);
}

TEST(ParallelDeterminism, PortfolioModeAgreesToo) {
  ScopedEnv mode("ADVOCAT_PARALLEL", "portfolio");
  ExprFactory f;
  auto solver = make_solver(f, Backend::Native);
  solver->set_threads(4);
  for (ExprId c : pigeonhole(f, 8, 7)) solver->add(c);
  EXPECT_EQ(solver->check(), SatResult::Unsat);
  // A satisfiable follow-up on the same session (drop one at-most-one
  // constraint by adding a fresh relaxed instance) keeps working.
  ExprFactory f2;
  auto solver2 = make_solver(f2, Backend::Native);
  solver2->set_threads(4);
  for (ExprId c : pigeonhole(f2, 7, 7)) solver2->add(c);
  EXPECT_EQ(solver2->check(), SatResult::Sat);
}

TEST(ParallelSolve, SatVerdictsCarryAConsistentModel) {
  // PHP(7,7) is satisfiable (a permutation); the parallel Sat model must
  // assign every pigeon a hole, no hole twice — whichever worker found it.
  ExprFactory f;
  auto solver = make_solver(f, Backend::Native);
  solver->set_threads(8);
  for (ExprId c : pigeonhole(f, 7, 7)) solver->add(c);
  ASSERT_EQ(solver->check(), SatResult::Sat);
  for (int p = 0; p < 7; ++p) {
    int holes = 0;
    for (int h = 0; h < 7; ++h) {
      holes += solver->model().bool_value("pl_p" + std::to_string(p) + "h" +
                                          std::to_string(h))
                   ? 1
                   : 0;
    }
    EXPECT_GE(holes, 1) << "pigeon " << p << " lost its hole";
  }
  for (int h = 0; h < 7; ++h) {
    int pigeons = 0;
    for (int p = 0; p < 7; ++p) {
      pigeons += solver->model().bool_value("pl_p" + std::to_string(p) + "h" +
                                            std::to_string(h))
                     ? 1
                     : 0;
    }
    EXPECT_LE(pigeons, 1) << "hole " << h << " double-booked";
  }
}

// --------------------------------------------- differential fuzz, N vs 1

TEST(ParallelDifferential, ThreadCountsAgreeOnRandomBoundedSessions) {
  // N=1 vs N=8 verdict agreement on random bounded-arithmetic sessions:
  // bounded domains keep the native solver complete, so both must return
  // the same definite verdict on every check. The 8-thread twin runs in
  // the default (non-deterministic) mode so the exchange and early
  // cancellation paths get fuzzed — and TSan'd — too.
  std::mt19937_64 master(20260808);
  int definite = 0;
  for (int round = 0; round < 40; ++round) {
    std::mt19937_64 rng(master());
    ExprFactory f;
    std::vector<ExprId> ivars, bvars;
    for (int i = 0; i < 4; ++i) {
      ivars.push_back(f.int_var("pf_x" + std::to_string(i)));
    }
    for (int i = 0; i < 3; ++i) {
      bvars.push_back(f.bool_var("pf_p" + std::to_string(i)));
    }
    std::uniform_int_distribution<int> coeff(-3, 3);
    std::uniform_int_distribution<int> constd(-8, 8);
    std::uniform_int_distribution<std::size_t> pick_i(0, ivars.size() - 1);
    std::uniform_int_distribution<std::size_t> pick_b(0, bvars.size() - 1);
    std::function<ExprId(int)> formula = [&](int depth) -> ExprId {
      switch (std::uniform_int_distribution<int>(0, depth > 0 ? 5 : 1)(rng)) {
        case 0: {
          std::vector<ExprId> terms;
          const int n = std::uniform_int_distribution<int>(1, 3)(rng);
          for (int i = 0; i < n; ++i) {
            int c = coeff(rng);
            if (c == 0) c = 1;
            terms.push_back(f.mul_const(c, ivars[pick_i(rng)]));
          }
          const ExprId lhs = f.add(terms);
          const ExprId rhs = f.int_const(constd(rng));
          return (rng() & 1) != 0 ? f.le(lhs, rhs) : f.eq(lhs, rhs);
        }
        case 1: return bvars[pick_b(rng)];
        case 2: return f.not_(formula(depth - 1));
        case 3: return f.and_({formula(depth - 1), formula(depth - 1)});
        case 4: return f.or_({formula(depth - 1), formula(depth - 1)});
        default: return f.implies(formula(depth - 1), formula(depth - 1));
      }
    };
    auto seq = make_solver(f, Backend::Native);
    auto par = make_solver(f, Backend::Native);
    seq->set_threads(1);
    par->set_threads(8);
    auto add_all = [&](ExprId e) {
      seq->add(e);
      par->add(e);
    };
    for (ExprId v : ivars) {
      add_all(f.le(f.int_const(-6), v));
      add_all(f.le(v, f.int_const(6)));
    }
    // A couple of rounds mix in a hard pigeonhole block so the parallel
    // twin genuinely cubes; the rest stay light and fuzz the probe path.
    if (round % 16 == 0) {
      for (ExprId c : pigeonhole(f, 8, 7)) add_all(c);
    }
    const int asserts = std::uniform_int_distribution<int>(1, 3)(rng);
    for (int i = 0; i < asserts; ++i) add_all(formula(3));
    const int checks = std::uniform_int_distribution<int>(2, 4)(rng);
    for (int i = 0; i < checks; ++i) {
      const ExprId a = formula(2);
      const SatResult rs = seq->check_assuming({a});
      const SatResult rp = par->check_assuming({a});
      if (rs != SatResult::Unknown && rp != SatResult::Unknown) {
        ASSERT_EQ(rs, rp) << "thread-count divergence, round " << round;
        ++definite;
      }
    }
  }
  EXPECT_GT(definite, 40) << "fuzz degenerated: too few definite verdicts";
}

// ------------------------------------------------ parallel probe scheduler

TEST(ParallelSizing, ProbeThreadsAgreeWithSequentialAndAreDeterministic) {
  auto make = [](std::size_t cap) {
    coh::MiAbstractConfig config;
    config.queue_capacity = cap;
    return std::move(coh::build_mi_abstract(config).net);
  };
  core::QueueSizingOptions o;
  o.min_capacity = 1;
  o.max_capacity = 16;
  o.verify.backend = Backend::Native;
  const core::QueueSizingResult seq = core::find_minimal_queue_size(make, o);

  o.probe_threads = 4;
  const core::QueueSizingResult par = core::find_minimal_queue_size(make, o);
  const core::QueueSizingResult par2 = core::find_minimal_queue_size(make, o);

  EXPECT_EQ(seq.minimal_capacity, 3u);  // the paper's 2x2 value
  EXPECT_EQ(par.minimal_capacity, 3u);
  EXPECT_TRUE(par.incremental);
  EXPECT_EQ(par.unknown_probes, 0u);
  // Fixed thread count → identical probe sequence (capacities and
  // verdicts), run to run.
  EXPECT_EQ(par.probes, par2.probes);
  // Every accepted capacity rests on its own definite Unsat.
  for (const auto& [cap, verdict] : par.probes) {
    if (verdict == SatResult::Unsat) EXPECT_GE(cap, 3u);
    else EXPECT_LT(cap, 3u);
  }
}

}  // namespace
}  // namespace advocat
