// Packed clause arena behavior of the native solver: mid-search GC /
// compaction actually fires, survives the deep invariant auditor, keeps
// verdicts and statistics deterministic, and keeps incremental sessions
// (assumption probes across compactions) sound.
//
// The whole suite runs with ADVOCAT_AUDIT=1 (deep state checks at every
// backjump, restart, and check boundary — including the arena walk,
// watch-blocker, and waste-accounting invariants in smt/audit.cpp) and an
// artificially tiny ADVOCAT_REDUCE_BASE so clause-DB reductions — and with
// them tombstoning and arena compaction — trigger on test-sized inputs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "smt/expr.hpp"
#include "smt/solver.hpp"

namespace advocat::smt {
namespace {

const int kEnvSetup = [] {
  ::setenv("ADVOCAT_AUDIT", "1", /*overwrite=*/0);
  // Reduce the learned DB every ~32 surviving clauses: test-sized runs
  // then perform many reductions, each tombstoning into the arena, which
  // makes the 50%-waste compaction trigger fire repeatedly.
  ::setenv("ADVOCAT_REDUCE_BASE", "32", /*overwrite=*/0);
  ::setenv("ADVOCAT_REDUCE_INC", "32", /*overwrite=*/0);
  return 0;
}();

// Pigeonhole PHP(p, h): unsat for p > h and resolution-hard, so it
// generates thousands of learned clauses — the arena churn workload.
std::vector<ExprId> pigeonhole(ExprFactory& f, int pigeons, int holes) {
  std::vector<ExprId> constraints;
  std::vector<std::vector<ExprId>> in(
      static_cast<std::size_t>(pigeons),
      std::vector<ExprId>(static_cast<std::size_t>(holes)));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) {
      in[static_cast<std::size_t>(p)][static_cast<std::size_t>(h)] =
          f.bool_var("ar_p" + std::to_string(p) + "h" + std::to_string(h));
    }
  }
  for (int p = 0; p < pigeons; ++p) {
    constraints.push_back(f.or_(in[static_cast<std::size_t>(p)]));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        constraints.push_back(
            f.or_({f.not_(in[static_cast<std::size_t>(p1)]
                            [static_cast<std::size_t>(h)]),
                   f.not_(in[static_cast<std::size_t>(p2)]
                            [static_cast<std::size_t>(h)])}));
      }
    }
  }
  return constraints;
}

TEST(Arena, CompactionFiresUnderChurnAndAuditStaysGreen) {
  ExprFactory f;
  auto solver = make_solver(f, Backend::Native);
  for (ExprId c : pigeonhole(f, 7, 6)) solver->add(c);
  ASSERT_EQ(solver->check(), SatResult::Unsat);

  const SolveStats& s = solver->solve_stats();
  EXPECT_GT(s.conflicts, 0u);
  EXPECT_GT(s.deleted_clauses, 0u)
      << "tiny ADVOCAT_REDUCE_BASE should force clause-DB reductions";
  EXPECT_GT(s.arena_compactions, 0u)
      << "reductions tombstone into the arena; crossing 50% waste must GC";
  EXPECT_GT(s.arena_bytes, 0u) << "the problem clauses alone occupy words";
}

TEST(Arena, GcRoundTripIsDeterministic) {
  // Two independent sessions over the same formula must agree on the
  // verdict AND every counter — compaction rewrites refs but may not
  // change which clauses exist, their order, or the search trajectory.
  SolveStats runs[2];
  for (SolveStats& out : runs) {
    ExprFactory f;
    auto solver = make_solver(f, Backend::Native);
    for (ExprId c : pigeonhole(f, 7, 6)) solver->add(c);
    ASSERT_EQ(solver->check(), SatResult::Unsat);
    out = solver->solve_stats();
  }
  EXPECT_EQ(runs[0].conflicts, runs[1].conflicts);
  EXPECT_EQ(runs[0].decisions, runs[1].decisions);
  EXPECT_EQ(runs[0].propagations, runs[1].propagations);
  EXPECT_EQ(runs[0].restarts, runs[1].restarts);
  EXPECT_EQ(runs[0].learned_clauses, runs[1].learned_clauses);
  EXPECT_EQ(runs[0].deleted_clauses, runs[1].deleted_clauses);
  EXPECT_EQ(runs[0].learned_kept, runs[1].learned_kept);
  EXPECT_EQ(runs[0].arena_compactions, runs[1].arena_compactions);
  EXPECT_EQ(runs[0].arena_bytes, runs[1].arena_bytes);
}

TEST(Arena, IncrementalProbesSurviveCompaction) {
  // Assumption probes across checks: clauses learned before a compaction
  // must still propagate afterwards (refs remapped, not dropped), and a
  // final satisfiable probe must produce a correct model.
  ExprFactory f;
  auto solver = make_solver(f, Backend::Native);
  for (ExprId c : pigeonhole(f, 7, 6)) solver->add(c);
  const ExprId guard = f.bool_var("ar_guard");

  ASSERT_EQ(solver->check_assuming({guard}), SatResult::Unsat);
  const SolveStats first = solver->solve_stats();
  ASSERT_EQ(solver->check_assuming({f.not_(guard)}), SatResult::Unsat);
  const SolveStats second = solver->solve_stats();
  EXPECT_GT(second.learned_hits, 0u)
      << "clauses learned before the check boundary (which rebuilds the "
         "arena) must still fire in the next probe";
  EXPECT_LT(second.conflicts - first.conflicts, first.conflicts)
      << "probe 2 should be much cheaper than probe 1 via clause reuse";

  // A satisfiable query on the same session: deletion/compaction churn
  // must never lose the ability to answer Sat with a sound model.
  ExprFactory f2;
  auto solver2 = make_solver(f2, Backend::Native);
  for (ExprId c : pigeonhole(f2, 6, 6)) solver2->add(c);
  ASSERT_EQ(solver2->check(), SatResult::Sat);
}

TEST(Arena, CompactionPreservedAcrossPushPop) {
  // Scoped variant: learn + compact inside a scope, pop it, and re-solve.
  // The boundary rebuild drops tainted clauses and rewrites the arena; the
  // re-run must be cheaper (clause reuse) and still correct.
  ExprFactory f;
  auto solver = make_solver(f, Backend::Native);

  solver->push();
  for (ExprId c : pigeonhole(f, 7, 6)) solver->add(c);
  ASSERT_EQ(solver->check(), SatResult::Unsat);
  const SolveStats first = solver->solve_stats();
  EXPECT_GT(first.arena_compactions, 0u);
  solver->pop();

  solver->push();
  for (ExprId c : pigeonhole(f, 7, 6)) solver->add(c);
  ASSERT_EQ(solver->check(), SatResult::Unsat);
  const SolveStats second = solver->solve_stats();
  EXPECT_LT(second.conflicts - first.conflicts, first.conflicts);
  solver->pop();
}

}  // namespace
}  // namespace advocat::smt
