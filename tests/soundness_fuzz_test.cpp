// Soundness fuzzing: on randomly generated small xMAS networks, a
// "deadlock-free" verdict from the SMT pipeline must never contradict
// exhaustive explicit-state exploration.
//
// This is the library's central meta-property (the paper: "a
// 'deadlock-free' result ensures a deadlock-free system"); false negatives
// (candidates on free systems) are allowed, missed deadlocks are not.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "advocat/verifier.hpp"
#include "proof_check.hpp"
#include "sim/explorer.hpp"
#include "sim/simulator.hpp"
#include "xmas/network.hpp"

namespace advocat {
namespace {

// The fuzzer always runs with the solver invariant auditor on (unless the
// caller set ADVOCAT_AUDIT explicitly): a wrong verdict caught here is
// much easier to debug when the broken invariant aborts at its source.
const int kAuditOn = [] {
  ::setenv("ADVOCAT_AUDIT", "1", /*overwrite=*/0);
  return 0;
}();

using xmas::ColorId;
using xmas::Network;
using xmas::PrimId;

// Generates a random layered pipeline network: a source level, a shuffle of
// queues / functions / switches+merges / forks+joins, and a sink level with
// random fairness. Always structurally valid by construction.
Network random_network(std::mt19937_64& rng, bool* all_sources_fair) {
  Network net;
  auto& colors = net.colors();
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> pick(0, 4);
  std::uniform_int_distribution<int> qcap(1, 3);

  const ColorId a = colors.intern("a");
  const ColorId b = colors.intern("b");

  // Open producer ports to be terminated; start with 1-2 sources.
  std::vector<std::pair<PrimId, int>> open;
  const int num_sources = 1 + coin(rng);
  *all_sources_fair = true;
  for (int i = 0; i < num_sources; ++i) {
    xmas::ColorSet cs = coin(rng) ? xmas::ColorSet{a} : xmas::ColorSet{a, b};
    const bool fair = coin(rng) != 0;
    *all_sources_fair &= fair;
    open.emplace_back(net.add_source("src" + std::to_string(i), cs, fair), 0);
  }

  std::uniform_int_distribution<std::size_t> which(0, 100);
  int id = 0;
  const int layers = 2 + pick(rng);
  for (int layer = 0; layer < layers; ++layer) {
    const std::size_t at = which(rng) % open.size();
    auto [prim, port] = open[at];
    open.erase(open.begin() + static_cast<std::ptrdiff_t>(at));
    const std::string name = "p" + std::to_string(id++);
    switch (pick(rng)) {
      case 0: {
        const PrimId q = net.add_queue(name, static_cast<std::size_t>(qcap(rng)),
                                       coin(rng) != 0);
        net.connect(prim, port, q, 0);
        open.emplace_back(q, 0);
        break;
      }
      case 1: {
        const PrimId fn = net.add_function(
            name, [a, b, swap = coin(rng)](ColorId c) {
              return swap ? (c == a ? b : a) : c;
            });
        net.connect(prim, port, fn, 0);
        open.emplace_back(fn, 0);
        break;
      }
      case 2: {
        const PrimId sw = net.add_switch(
            name, 2, [a](ColorId c) { return c == a ? 0 : 1; });
        net.connect(prim, port, sw, 0);
        open.emplace_back(sw, 0);
        open.emplace_back(sw, 1);
        break;
      }
      case 3: {
        // Fork branches are always buffered: two fork outputs that
        // reconverge *combinationally* at one merge could never transfer
        // (the merge grants one input at a time while the fork needs both
        // accepted in the same cycle) — a structural pathology real
        // designs avoid and the block/idle equations do not model.
        const PrimId fork = net.add_fork(name);
        net.connect(prim, port, fork, 0);
        for (int branch = 0; branch < 2; ++branch) {
          const PrimId q = net.add_queue(
              name + "_q" + std::to_string(branch),
              static_cast<std::size_t>(qcap(rng)));
          net.connect(fork, branch, q, 0);
          open.emplace_back(q, 0);
        }
        break;
      }
      case 4: {
        // Merge two open producers when possible.
        if (open.empty()) {
          const PrimId q = net.add_queue(name, 1, true);
          net.connect(prim, port, q, 0);
          open.emplace_back(q, 0);
          break;
        }
        const std::size_t other = which(rng) % open.size();
        auto [prim2, port2] = open[other];
        open.erase(open.begin() + static_cast<std::ptrdiff_t>(other));
        const PrimId mg = net.add_merge(name, 2);
        net.connect(prim, port, mg, 0);
        net.connect(prim2, port2, mg, 1);
        open.emplace_back(mg, 0);
        break;
      }
    }
  }
  // Terminate every open producer with a queue+sink (mostly fair).
  int k = 0;
  for (auto [prim, port] : open) {
    const PrimId q =
        net.add_queue("tq" + std::to_string(k), static_cast<std::size_t>(qcap(rng)));
    net.connect(prim, port, q, 0);
    const bool fair = which(rng) < 85;  // some dead sinks => some deadlocks
    net.connect(q, 0, net.add_sink("t" + std::to_string(k), fair), 0);
    ++k;
  }
  return net;
}

// Rounds per seed. The default keeps one seed's runtime in CI to a few
// hundred milliseconds; ADVOCAT_FUZZ_ROUNDS overrides for longer local
// soaks. The rng is seeded from the test parameter only, so every run
// (including --gtest_repeat) explores the identical network sequence.
int fuzz_rounds() {
  if (const char* env = std::getenv("ADVOCAT_FUZZ_ROUNDS")) {
    const int rounds = std::atoi(env);
    if (rounds > 0) return rounds;
  }
  return 12;
}

class SoundnessFuzz : public ::testing::TestWithParam<int> {};

TEST_P(SoundnessFuzz, NoMissedDeadlocks) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  int free_verdicts = 0;
  int deadlock_verdicts = 0;
  const int rounds = fuzz_rounds();
  for (int round = 0; round < rounds; ++round) {
    bool all_sources_fair = false;
    const Network net = random_network(rng, &all_sources_fair);
    ASSERT_TRUE(net.validate().empty());

    const core::VerifyResult verdict = core::verify(net);

    sim::Simulator simulator(net);
    sim::ExploreOptions options;
    options.max_states = 60'000;
    const sim::ExploreResult ground = sim::explore(simulator, options);

    if (verdict.deadlock_free()) {
      ++free_verdicts;
      EXPECT_FALSE(ground.deadlock.has_value())
          << "UNSOUND: SMT said free, explorer found a reachable deadlock "
          << "(seed " << GetParam() << " round " << round << ")";
    } else {
      ++deadlock_verdicts;
    }
    // The reverse direction is deliberately NOT asserted: candidates on
    // deadlock-free systems are the method's documented false negatives
    // (Section 1 of the paper), e.g. bag-queue occupancy patterns the
    // counts abstraction cannot refute.
    (void)all_sources_fair;
  }
  // The generator must exercise both verdicts across rounds.
  EXPECT_GT(free_verdicts + deadlock_verdicts, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessFuzz,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808));

// ------------------------------------------------------------ certification
// Every Unsat ("deadlock-free") verdict the fuzzer produces must come with
// a certificate that the standalone checker accepts — across sequential,
// parallel (clause exchange on), and budget-degraded configurations.

struct CaptureSink : smt::ProofSink {
  void on_unsat_certificate(const smt::Certificate& cert) override {
    certs.push_back(cert);
  }
  std::vector<smt::Certificate> certs;
};

// When ADVOCAT_PROOF_DIR is set (the CI certification step), every
// captured certificate is also serialized so the standalone advocat-check
// binary revalidates the same refutations out of process.
void dump_certs(const CaptureSink& sink) {
  static const char* dir = std::getenv("ADVOCAT_PROOF_DIR");
  if (dir == nullptr) return;
  static std::size_t serial = 0;
  for (const smt::Certificate& cert : sink.certs) {
    std::ofstream out(std::string(dir) + "/fuzz_" + std::to_string(serial++) +
                      ".proof");
    out << cert.text;
  }
}

// Runs the checker over every captured certificate. Complete certificates
// must validate as replayable native proofs; incomplete ones must say why
// and still parse as (attested) certificates.
void expect_all_certified(const CaptureSink& sink, const std::string& where) {
  dump_certs(sink);
  for (std::size_t i = 0; i < sink.certs.size(); ++i) {
    const smt::Certificate& cert = sink.certs[i];
    const proofcheck::CheckResult res = proofcheck::check_proof_text(cert.text);
    if (cert.complete) {
      EXPECT_TRUE(res.ok) << where << " cert " << i << " rejected: "
                          << res.reason << " (" << res.detail << ")";
      EXPECT_EQ(res.mode, "native") << where << " cert " << i;
    } else {
      EXPECT_FALSE(cert.reason.empty())
          << where << " cert " << i << " incomplete without a reason";
    }
    EXPECT_GT(cert.proof_bytes, 0u) << where << " cert " << i;
  }
}

TEST_P(SoundnessFuzz, EveryUnsatVerdictCertified) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) ^ 0x9e3779b9u);
  int certified = 0;
  const int rounds = fuzz_rounds();
  for (int round = 0; round < rounds; ++round) {
    bool all_sources_fair = false;
    const Network net = random_network(rng, &all_sources_fair);
    ASSERT_TRUE(net.validate().empty());
    (void)all_sources_fair;

    // Rotate thread counts across rounds: 1 (sequential), 2, 4 (cube /
    // portfolio search with clause exchange on, the default).
    const unsigned threads[] = {1, 2, 4};
    for (unsigned t : threads) {
      CaptureSink sink;
      core::VerifyOptions vo;
      vo.backend = smt::Backend::Native;  // Z3 certificates are attested-only
      vo.threads = t;
      vo.proof_sink = &sink;
      const core::VerifyResult verdict = core::verify(net, vo);
      if (verdict.deadlock_free()) {
        EXPECT_FALSE(sink.certs.empty())
            << "Unsat verdict without a certificate (seed " << GetParam()
            << " round " << round << " threads " << t << ")";
        certified += static_cast<int>(sink.certs.size());
      } else {
        EXPECT_TRUE(sink.certs.empty())
            << "certificate emitted on a non-Unsat verdict (seed "
            << GetParam() << " round " << round << " threads " << t << ")";
      }
      expect_all_certified(sink, "threads=" + std::to_string(t));
    }

    // Budget-degraded pass: a tight conflict ceiling may degrade the
    // verdict to Unknown (then no certificate is owed), but an Unsat that
    // still completes under the ceiling must certify like any other.
    {
      CaptureSink sink;
      core::VerifyOptions vo;
      vo.backend = smt::Backend::Native;
      vo.proof_sink = &sink;
      vo.budget.max_conflicts = 15;
      const core::VerifyResult verdict = core::verify(net, vo);
      if (verdict.deadlock_free()) {
        EXPECT_FALSE(sink.certs.empty())
            << "budget-degraded Unsat without a certificate (seed "
            << GetParam() << " round " << round << ")";
      }
      expect_all_certified(sink, "budgeted");
    }
  }
  // The generator must have produced at least one certified refutation;
  // otherwise this test silently checked nothing.
  EXPECT_GT(certified, 0) << "seed " << GetParam()
                          << " never produced an Unsat verdict";
}

// Installing a proof sink must not perturb the verdict or the
// determinism-mode solver statistics: logging reads the search, it never
// steers it.
TEST(ProofLogging, DoesNotPerturbVerdictsOrDeterministicStats) {
  std::mt19937_64 rng(4242);
  for (int round = 0; round < 4; ++round) {
    bool all_sources_fair = false;
    const Network net = random_network(rng, &all_sources_fair);
    ASSERT_TRUE(net.validate().empty());
    (void)all_sources_fair;

    core::VerifyOptions base;
    base.backend = smt::Backend::Native;
    base.threads = 2;
    base.deterministic = true;

    const core::VerifyResult plain = core::verify(net, base);

    CaptureSink sink;
    core::VerifyOptions logged = base;
    logged.proof_sink = &sink;
    const core::VerifyResult with_log = core::verify(net, logged);

    EXPECT_EQ(plain.report.result, with_log.report.result)
        << "round " << round;
    EXPECT_EQ(plain.solve_stats.decisions, with_log.solve_stats.decisions)
        << "round " << round;
    EXPECT_EQ(plain.solve_stats.conflicts, with_log.solve_stats.conflicts)
        << "round " << round;
    EXPECT_EQ(plain.solve_stats.propagations,
              with_log.solve_stats.propagations)
        << "round " << round;
    EXPECT_EQ(plain.solve_stats.restarts, with_log.solve_stats.restarts)
        << "round " << round;
    EXPECT_EQ(plain.solve_stats.learned_clauses,
              with_log.solve_stats.learned_clauses)
        << "round " << round;
    expect_all_certified(sink, "determinism round " + std::to_string(round));
  }
}

}  // namespace
}  // namespace advocat
