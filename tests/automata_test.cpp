// AutomatonBuilder: the fluent protocol-definition DSL.
#include <gtest/gtest.h>

#include "automata/builder.hpp"

namespace advocat::aut {
namespace {

TEST(AutomatonBuilder, BuildsStatesAndTransitions) {
  AutomatonBuilder b("m", {"a", "b"});
  b.in_ports(2).out_ports(1).initial("b");
  b.on("a", 0, 7).emit(0, 9).go("b").label("t0");
  b.on("b", 1, 8).go("a");
  const Automaton m = b.build();
  EXPECT_EQ(m.num_states(), 2);
  EXPECT_EQ(m.initial, 1);
  ASSERT_EQ(m.transitions.size(), 2u);
  EXPECT_EQ(m.transitions[0].label, "t0");
  EXPECT_EQ(m.transitions[0].from, 0);
  EXPECT_EQ(m.transitions[0].to, 1);
  EXPECT_TRUE(m.transitions[0].guard(0, 7));
  EXPECT_FALSE(m.transitions[0].guard(1, 7));
  EXPECT_FALSE(m.transitions[0].guard(0, 8));
  const auto em = m.transitions[0].transform(0, 7);
  ASSERT_TRUE(em.has_value());
  EXPECT_EQ(em->first, 0);
  EXPECT_EQ(em->second, 9);
  // Second transition: no emission, defaults applied.
  EXPECT_FALSE(m.transitions[1].transform(1, 8).has_value());
}

TEST(AutomatonBuilder, DefaultsToSelfLoop) {
  AutomatonBuilder b("m", {"a"});
  b.on("a", 0, 1);
  const Automaton m = b.build();
  EXPECT_EQ(m.transitions[0].to, 0);
}

TEST(AutomatonBuilder, OnAnyMatchesSet) {
  AutomatonBuilder b("m", {"a"});
  b.on_any("a", 0, xmas::ColorSet{2, 5, 9});
  const Automaton m = b.build();
  EXPECT_TRUE(m.transitions[0].guard(0, 5));
  EXPECT_FALSE(m.transitions[0].guard(0, 3));
  EXPECT_FALSE(m.transitions[0].guard(1, 5));
}

TEST(AutomatonBuilder, EmitFnComputesFromConsumed) {
  AutomatonBuilder b("m", {"a"});
  b.on_any("a", 0, xmas::ColorSet{1, 2})
      .emit_fn(0, [](xmas::ColorId d) { return d + 10; });
  const Automaton m = b.build();
  EXPECT_EQ(m.transitions[0].transform(0, 2)->second, 12);
}

TEST(AutomatonBuilder, OnPredFullGenerality) {
  AutomatonBuilder b("m", {"a"});
  b.on_pred("a", [](int i, xmas::ColorId d) { return i + d > 4; }, "pred");
  const Automaton m = b.build();
  EXPECT_TRUE(m.transitions[0].guard(2, 3));
  EXPECT_FALSE(m.transitions[0].guard(0, 3));
}

TEST(AutomatonBuilder, Validation) {
  EXPECT_THROW(AutomatonBuilder("m", {}), std::invalid_argument);
  AutomatonBuilder b("m", {"a"});
  EXPECT_THROW(b.on("nope", 0, 1), std::out_of_range);
  b.out_ports(1);
  b.on("a", 0, 1).emit(5, 2);  // port 5 out of range
  EXPECT_THROW(b.build(), std::logic_error);
}

TEST(Automaton, TransitionsFromFiltersBySource) {
  AutomatonBuilder b("m", {"a", "b"});
  b.on("a", 0, 1).go("b");
  b.on("b", 0, 2).go("a");
  b.on("a", 0, 3);
  const Automaton m = b.build();
  EXPECT_EQ(m.transitions_from(0), (std::vector<int>{0, 2}));
  EXPECT_EQ(m.transitions_from(1), (std::vector<int>{1}));
}

}  // namespace
}  // namespace advocat::aut
