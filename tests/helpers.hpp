// Shared test fixtures: the paper's Fig. 1 running example and small
// utility builders.
#pragma once

#include "automata/builder.hpp"
#include "xmas/network.hpp"

namespace advocat::testing {

/// Fig. 1 of the paper: automata S and T connected by queues q0 (requests)
/// and q1 (acknowledgments). Both automata act on fair local token sources
/// (S injects req on a token, T answers ack on a token).
struct RunningExample {
  xmas::Network net;
  xmas::ColorId req, ack, tok_s, tok_t;
  xmas::PrimId q0, q1, aut_s, aut_t;

  RunningExample(std::size_t q0_capacity = 2, std::size_t q1_capacity = 2) {
    auto& colors = net.colors();
    req = colors.intern("req");
    ack = colors.intern("ack");
    tok_s = colors.intern("tokS");
    tok_t = colors.intern("tokT");

    aut::AutomatonBuilder bs("S", {"s0", "s1"});
    bs.in_ports(2).out_ports(1).initial("s0");
    // port 0: network input (acks), port 1: token source.
    bs.on("s0", 1, tok_s).emit(0, req).go("s1").label("s0:req!");
    bs.on("s1", 0, ack).go("s0").label("s1:ack?");
    aut_s = net.add_automaton(bs.build());

    aut::AutomatonBuilder bt("T", {"t0", "t1"});
    bt.in_ports(2).out_ports(1).initial("t0");
    bt.on("t0", 0, req).go("t1").label("t0:req?");
    bt.on("t1", 1, tok_t).emit(0, ack).go("t0").label("t1:ack!");
    aut_t = net.add_automaton(bt.build());

    q0 = net.add_queue("q0", q0_capacity);
    q1 = net.add_queue("q1", q1_capacity);

    const xmas::PrimId src_s = net.add_source("srcS", {tok_s});
    const xmas::PrimId src_t = net.add_source("srcT", {tok_t});

    net.connect(aut_s, 0, q0, 0);   // S -> q0
    net.connect(q0, 0, aut_t, 0);   // q0 -> T
    net.connect(aut_t, 0, q1, 0);   // T -> q1
    net.connect(q1, 0, aut_s, 0);   // q1 -> S
    net.connect(src_s, 0, aut_s, 1);
    net.connect(src_t, 0, aut_t, 1);
  }
};

}  // namespace advocat::testing
