// Expression factory, SMT-LIB printing, evaluator, and the Z3 backend.
#include <gtest/gtest.h>

#include "smt/eval.hpp"
#include "smt/expr.hpp"
#include "smt/smtlib.hpp"
#include "smt/solver.hpp"

namespace advocat::smt {
namespace {

TEST(ExprFactory, HashConsing) {
  ExprFactory f;
  const ExprId a = f.int_var("a");
  const ExprId b = f.int_var("b");
  EXPECT_EQ(f.add({a, b}), f.add({b, a}));  // sorted kids
  EXPECT_EQ(f.int_var("a"), a);
  EXPECT_THROW(f.bool_var("a"), std::logic_error);  // sort clash
}

TEST(ExprFactory, BooleanSimplification) {
  ExprFactory f;
  const ExprId p = f.bool_var("p");
  EXPECT_EQ(f.and_({p, f.bool_const(true)}), p);
  EXPECT_EQ(f.and_({p, f.bool_const(false)}), f.bool_const(false));
  EXPECT_EQ(f.or_({p, f.bool_const(false)}), p);
  EXPECT_EQ(f.or_({p, f.bool_const(true)}), f.bool_const(true));
  EXPECT_EQ(f.not_(f.not_(p)), p);
  EXPECT_EQ(f.and_({}), f.bool_const(true));
  EXPECT_EQ(f.or_({}), f.bool_const(false));
  EXPECT_EQ(f.and_({p, p}), p);  // dedup
}

TEST(ExprFactory, ArithmeticFolding) {
  ExprFactory f;
  const ExprId x = f.int_var("x");
  EXPECT_EQ(f.add({f.int_const(2), f.int_const(3)}), f.int_const(5));
  EXPECT_EQ(f.mul_const(0, x), f.int_const(0));
  EXPECT_EQ(f.mul_const(1, x), x);
  EXPECT_EQ(f.mul_const(2, f.mul_const(3, x)), f.mul_const(6, x));
  EXPECT_EQ(f.le(f.int_const(1), f.int_const(2)), f.bool_const(true));
  EXPECT_EQ(f.eq(f.int_const(1), f.int_const(2)), f.bool_const(false));
}

TEST(Eval, MatchesExpectedSemantics) {
  ExprFactory f;
  Model m;
  m.set_int("x", 3);
  m.set_bool("p", true);
  const ExprId x = f.int_var("x");
  const ExprId p = f.bool_var("p");
  EXPECT_EQ(eval_int(f, m, f.add({x, f.mul_const(2, x)})), 9);
  EXPECT_TRUE(eval_bool(f, m, f.and_({p, f.le(x, f.int_const(3))})));
  EXPECT_FALSE(eval_bool(f, m, f.not_(p)));
  EXPECT_TRUE(eval_bool(f, m, f.implies(f.not_(p), f.bool_const(false))));
  EXPECT_TRUE(eval_bool(f, m, f.iff(p, f.eq(x, f.int_const(3)))));
  EXPECT_THROW((void)eval_bool(f, m, x), std::logic_error);
}

TEST(SmtLib, DeclaresAndAsserts) {
  ExprFactory f;
  const ExprId x = f.int_var("x");
  const ExprId p = f.bool_var("p[a:b]");  // needs quoting
  const ExprId a = f.and_({p, f.le(f.int_const(0), x)});
  const std::string text = to_smtlib(f, {a});
  EXPECT_NE(text.find("(declare-const x Int)"), std::string::npos);
  EXPECT_NE(text.find("|p[a:b]|"), std::string::npos);
  EXPECT_NE(text.find("(assert"), std::string::npos);
  EXPECT_NE(text.find("(check-sat)"), std::string::npos);
}

TEST(SmtLib, NegativeConstants) {
  ExprFactory f;
  const std::string text =
      to_smtlib(f, {f.eq(f.int_var("x"), f.int_const(-5))});
  EXPECT_NE(text.find("(- 5)"), std::string::npos);
}

TEST(Z3Solver, SatWithModel) {
  ExprFactory f;
  const ExprId x = f.int_var("x");
  const ExprId y = f.int_var("y");
  auto solver = make_z3_solver(f);
  solver->add(f.eq(f.add({x, y}), f.int_const(7)));
  solver->add(f.le(f.int_const(3), x));
  solver->add(f.le(x, f.int_const(3)));
  ASSERT_EQ(solver->check(), SatResult::Sat);
  EXPECT_EQ(solver->model().int_value("x"), 3);
  EXPECT_EQ(solver->model().int_value("y"), 4);
}

TEST(Z3Solver, Unsat) {
  ExprFactory f;
  const ExprId x = f.int_var("x");
  auto solver = make_z3_solver(f);
  solver->add(f.le(x, f.int_const(1)));
  solver->add(f.le(f.int_const(2), x));
  EXPECT_EQ(solver->check(), SatResult::Unsat);
}

TEST(Z3Solver, BooleanStructure) {
  ExprFactory f;
  const ExprId p = f.bool_var("p");
  const ExprId q = f.bool_var("q");
  auto solver = make_z3_solver(f);
  solver->add(f.iff(p, f.not_(q)));
  solver->add(p);
  ASSERT_EQ(solver->check(), SatResult::Sat);
  EXPECT_TRUE(solver->model().bool_value("p"));
  EXPECT_FALSE(solver->model().bool_value("q"));
}

// Round-trip: every model returned by Z3 satisfies the asserted formula
// under our reference evaluator.
class Z3RoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(Z3RoundTrip, ModelSatisfiesAssertions) {
  ExprFactory f;
  const int n = GetParam();
  std::vector<ExprId> assertions;
  std::vector<ExprId> vars;
  for (int i = 0; i < n; ++i) {
    vars.push_back(f.int_var("v" + std::to_string(i)));
    assertions.push_back(f.le(f.int_const(0), vars.back()));
    assertions.push_back(f.le(vars.back(), f.int_const(i + 1)));
  }
  assertions.push_back(f.eq(f.add(vars), f.int_const(n)));
  auto solver = make_z3_solver(f);
  for (ExprId a : assertions) solver->add(a);
  ASSERT_EQ(solver->check(), SatResult::Sat);
  for (ExprId a : assertions) {
    EXPECT_TRUE(eval_bool(f, solver->model(), a));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Z3RoundTrip, ::testing::Values(1, 3, 8, 20));

}  // namespace
}  // namespace advocat::smt
