// Expression factory, SMT-LIB printing, evaluator, and the solver
// backends (native always; Z3 when compiled in — both must agree).
#include <gtest/gtest.h>

#include "backend_fixture.hpp"
#include "smt/eval.hpp"
#include "smt/expr.hpp"
#include "smt/smtlib.hpp"
#include "smt/solver.hpp"

namespace advocat::smt {
namespace {

TEST(ExprFactory, HashConsing) {
  ExprFactory f;
  const ExprId a = f.int_var("a");
  const ExprId b = f.int_var("b");
  EXPECT_EQ(f.add({a, b}), f.add({b, a}));  // sorted kids
  EXPECT_EQ(f.int_var("a"), a);
  EXPECT_THROW(f.bool_var("a"), std::logic_error);  // sort clash
}

TEST(ExprFactory, BooleanSimplification) {
  ExprFactory f;
  const ExprId p = f.bool_var("p");
  EXPECT_EQ(f.and_({p, f.bool_const(true)}), p);
  EXPECT_EQ(f.and_({p, f.bool_const(false)}), f.bool_const(false));
  EXPECT_EQ(f.or_({p, f.bool_const(false)}), p);
  EXPECT_EQ(f.or_({p, f.bool_const(true)}), f.bool_const(true));
  EXPECT_EQ(f.not_(f.not_(p)), p);
  EXPECT_EQ(f.and_({}), f.bool_const(true));
  EXPECT_EQ(f.or_({}), f.bool_const(false));
  EXPECT_EQ(f.and_({p, p}), p);  // dedup
}

TEST(ExprFactory, ArithmeticFolding) {
  ExprFactory f;
  const ExprId x = f.int_var("x");
  EXPECT_EQ(f.add({f.int_const(2), f.int_const(3)}), f.int_const(5));
  EXPECT_EQ(f.mul_const(0, x), f.int_const(0));
  EXPECT_EQ(f.mul_const(1, x), x);
  EXPECT_EQ(f.mul_const(2, f.mul_const(3, x)), f.mul_const(6, x));
  EXPECT_EQ(f.le(f.int_const(1), f.int_const(2)), f.bool_const(true));
  EXPECT_EQ(f.eq(f.int_const(1), f.int_const(2)), f.bool_const(false));
}

TEST(Eval, MatchesExpectedSemantics) {
  ExprFactory f;
  Model m;
  m.set_int("x", 3);
  m.set_bool("p", true);
  const ExprId x = f.int_var("x");
  const ExprId p = f.bool_var("p");
  EXPECT_EQ(eval_int(f, m, f.add({x, f.mul_const(2, x)})), 9);
  EXPECT_TRUE(eval_bool(f, m, f.and_({p, f.le(x, f.int_const(3))})));
  EXPECT_FALSE(eval_bool(f, m, f.not_(p)));
  EXPECT_TRUE(eval_bool(f, m, f.implies(f.not_(p), f.bool_const(false))));
  EXPECT_TRUE(eval_bool(f, m, f.iff(p, f.eq(x, f.int_const(3)))));
  EXPECT_THROW((void)eval_bool(f, m, x), std::logic_error);
}

TEST(SmtLib, DeclaresAndAsserts) {
  ExprFactory f;
  const ExprId x = f.int_var("x");
  const ExprId p = f.bool_var("p[a:b]");  // needs quoting
  const ExprId a = f.and_({p, f.le(f.int_const(0), x)});
  const std::string text = to_smtlib(f, {a});
  EXPECT_NE(text.find("(declare-const x Int)"), std::string::npos);
  EXPECT_NE(text.find("|p[a:b]|"), std::string::npos);
  EXPECT_NE(text.find("(assert"), std::string::npos);
  EXPECT_NE(text.find("(check-sat)"), std::string::npos);
}

TEST(SmtLib, NegativeConstants) {
  ExprFactory f;
  const std::string text =
      to_smtlib(f, {f.eq(f.int_var("x"), f.int_const(-5))});
  EXPECT_NE(text.find("(- 5)"), std::string::npos);
}

// Documented Model behavior: variables the solver left unconstrained
// read as 0 / false, and explicitly set values win.
TEST(Model, UnconstrainedVariablesReadAsZeroAndFalse) {
  Model m;
  EXPECT_EQ(m.int_value("never_mentioned"), 0);
  EXPECT_FALSE(m.bool_value("never_mentioned"));
  m.set_int("x", -7);
  m.set_bool("p", true);
  m.set_bool("q", false);
  EXPECT_EQ(m.int_value("x"), -7);
  EXPECT_TRUE(m.bool_value("p"));
  EXPECT_FALSE(m.bool_value("q"));
  EXPECT_EQ(m.ints().size(), 1u);
  EXPECT_EQ(m.bools().size(), 2u);
}

class SolverBackend : public advocat::testing::BackendTest {};
ADVOCAT_INSTANTIATE_BACKENDS(SolverBackend);

TEST_P(SolverBackend, SatWithModel) {
  ExprFactory f;
  const ExprId x = f.int_var("x");
  const ExprId y = f.int_var("y");
  auto solver = make_solver(f, GetParam());
  solver->add(f.eq(f.add({x, y}), f.int_const(7)));
  solver->add(f.le(f.int_const(3), x));
  solver->add(f.le(x, f.int_const(3)));
  ASSERT_EQ(solver->check(), SatResult::Sat);
  EXPECT_EQ(solver->model().int_value("x"), 3);
  EXPECT_EQ(solver->model().int_value("y"), 4);
}

TEST_P(SolverBackend, Unsat) {
  ExprFactory f;
  const ExprId x = f.int_var("x");
  auto solver = make_solver(f, GetParam());
  solver->add(f.le(x, f.int_const(1)));
  solver->add(f.le(f.int_const(2), x));
  EXPECT_EQ(solver->check(), SatResult::Unsat);
}

TEST_P(SolverBackend, BooleanStructure) {
  ExprFactory f;
  const ExprId p = f.bool_var("p");
  const ExprId q = f.bool_var("q");
  auto solver = make_solver(f, GetParam());
  solver->add(f.iff(p, f.not_(q)));
  solver->add(p);
  ASSERT_EQ(solver->check(), SatResult::Sat);
  EXPECT_TRUE(solver->model().bool_value("p"));
  EXPECT_FALSE(solver->model().bool_value("q"));
}

TEST_P(SolverBackend, NegativeCoefficientsAndDisequalities) {
  ExprFactory f;
  const ExprId x = f.int_var("x");
  const ExprId y = f.int_var("y");
  auto solver = make_solver(f, GetParam());
  // 0 <= x,y <= 3, 2x - y = 4, x != 2  →  x = 3, y = 2.
  solver->add(f.le(f.int_const(0), x));
  solver->add(f.le(x, f.int_const(3)));
  solver->add(f.le(f.int_const(0), y));
  solver->add(f.le(y, f.int_const(3)));
  solver->add(f.eq(f.add({f.mul_const(2, x), f.mul_const(-1, y)}),
                   f.int_const(4)));
  solver->add(f.not_(f.eq(x, f.int_const(2))));
  ASSERT_EQ(solver->check(), SatResult::Sat);
  EXPECT_EQ(solver->model().int_value("x"), 3);
  EXPECT_EQ(solver->model().int_value("y"), 2);
}

TEST_P(SolverBackend, CanonicalSignEqualityDedupIsSemantics) {
  // The native atom translation canonicalizes equality signs (Σ = b and
  // −Σ = −b dedup to one theory atom). Pin the semantics around that
  // dedup key: the two renderings must be equivalent (asserting one and
  // the negation of the other is Unsat) ...
  ExprFactory f;
  const ExprId x = f.int_var("x");
  const ExprId y = f.int_var("y");
  auto solver = make_solver(f, GetParam());
  const ExprId pos = f.eq(f.add({f.mul_const(3, x), f.mul_const(-2, y)}),
                          f.int_const(6));
  const ExprId flip = f.eq(f.add({f.mul_const(-3, x), f.mul_const(2, y)}),
                           f.int_const(-6));
  solver->push();
  solver->add(pos);
  solver->add(f.not_(flip));
  EXPECT_EQ(solver->check(), SatResult::Unsat);
  solver->pop();
  solver->add(pos);
  solver->add(flip);
  EXPECT_EQ(solver->check(), SatResult::Sat);
}

TEST_P(SolverBackend, RowAndItsNegationDoNotCollide) {
  // ... while a ≤-row and its sign-flipped counterpart are *different*
  // constraints and must never collide in the dedup: x ≤ 3 and −x ≤ −3
  // (x ≥ 3) intersect exactly at x = 3, and x ≤ 3 with −x ≤ −4 (the
  // negation ¬(x ≤ 3)) is Unsat. A key collision between a row and its
  // negation would flip one of these verdicts.
  ExprFactory f;
  const ExprId x = f.int_var("x");
  auto solver = make_solver(f, GetParam());
  solver->push();
  solver->add(f.le(x, f.int_const(3)));
  solver->add(f.le(f.mul_const(-1, x), f.int_const(-3)));
  ASSERT_EQ(solver->check(), SatResult::Sat);
  EXPECT_EQ(solver->model().int_value("x"), 3);
  solver->pop();
  solver->add(f.le(x, f.int_const(3)));
  solver->add(f.le(f.mul_const(-1, x), f.int_const(-4)));
  EXPECT_EQ(solver->check(), SatResult::Unsat);
}

TEST_P(SolverBackend, UnconstrainedVariableDefaultsToZeroInModel) {
  ExprFactory f;
  const ExprId x = f.int_var("x");
  (void)f.int_var("free");   // declared, never asserted
  (void)f.bool_var("loose");
  auto solver = make_solver(f, GetParam());
  solver->add(f.eq(x, f.int_const(5)));
  ASSERT_EQ(solver->check(), SatResult::Sat);
  EXPECT_EQ(solver->model().int_value("x"), 5);
  EXPECT_EQ(solver->model().int_value("free"), 0);
  EXPECT_FALSE(solver->model().bool_value("loose"));
}

// Round-trip: every model returned by a backend satisfies the asserted
// formula under our reference evaluator.
class SolverRoundTrip
    : public ::testing::TestWithParam<std::tuple<Backend, int>> {};

TEST_P(SolverRoundTrip, ModelSatisfiesAssertions) {
  ExprFactory f;
  const auto [backend, n] = GetParam();
  std::vector<ExprId> assertions;
  std::vector<ExprId> vars;
  for (int i = 0; i < n; ++i) {
    vars.push_back(f.int_var("v" + std::to_string(i)));
    assertions.push_back(f.le(f.int_const(0), vars.back()));
    assertions.push_back(f.le(vars.back(), f.int_const(i + 1)));
  }
  assertions.push_back(f.eq(f.add(vars), f.int_const(n)));
  auto solver = make_solver(f, backend);
  for (ExprId a : assertions) solver->add(a);
  ASSERT_EQ(solver->check(), SatResult::Sat);
  for (ExprId a : assertions) {
    EXPECT_TRUE(eval_bool(f, solver->model(), a));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, SolverRoundTrip,
    ::testing::Combine(
        ::testing::ValuesIn(advocat::testing::solver_backends()),
        ::testing::Values(1, 3, 8, 20)),
    [](const ::testing::TestParamInfo<std::tuple<Backend, int>>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace advocat::smt
