// Sparse rows and the sweeping eliminator.
#include <gtest/gtest.h>

#include <random>

#include "linalg/eliminator.hpp"
#include "linalg/sparse_row.hpp"

namespace advocat::linalg {
namespace {

using util::BigInt;

SparseRow row_of(std::initializer_list<std::pair<int, int>> entries,
                 int constant = 0) {
  SparseRow r;
  for (const auto& [col, coeff] : entries) r.add(col, Rational(coeff));
  r.add_constant(Rational(constant));
  return r;
}

TEST(SparseRow, AddMergesAndCancels) {
  SparseRow r;
  r.add(3, Rational(2));
  r.add(1, Rational(5));
  r.add(3, Rational(-2));  // cancels
  EXPECT_EQ(r.coeff(3), Rational(0));
  EXPECT_EQ(r.coeff(1), Rational(5));
  EXPECT_EQ(r.min_col(), 1);
  EXPECT_EQ(r.entries().size(), 1u);
}

TEST(SparseRow, AddScaledMergesSortedEntries) {
  SparseRow a = row_of({{0, 1}, {2, 3}}, 5);
  const SparseRow b = row_of({{1, 2}, {2, -3}}, -5);
  a.add_scaled(b, Rational(1));
  EXPECT_EQ(a.coeff(0), Rational(1));
  EXPECT_EQ(a.coeff(1), Rational(2));
  EXPECT_EQ(a.coeff(2), Rational(0));
  EXPECT_TRUE(a.constant().is_zero());
}

TEST(SparseRow, NormalizeIntegerClearsDenominators) {
  SparseRow r;
  r.add(0, Rational(BigInt(1), BigInt(2)));
  r.add(1, Rational(BigInt(-1), BigInt(3)));
  r.add_constant(Rational(BigInt(1), BigInt(6)));
  r.normalize_integer();
  EXPECT_EQ(r.coeff(0), Rational(3));
  EXPECT_EQ(r.coeff(1), Rational(-2));
  EXPECT_EQ(r.constant(), Rational(1));
}

TEST(SparseRow, NormalizeIntegerForcesPositiveLead) {
  SparseRow r = row_of({{0, -2}, {1, 4}});
  r.normalize_integer();
  EXPECT_EQ(r.coeff(0), Rational(1));
  EXPECT_EQ(r.coeff(1), Rational(-2));
}

TEST(SparseRow, ToStringRendering) {
  const SparseRow r = row_of({{0, 1}, {1, -2}}, 3);
  const auto name = [](std::int32_t c) { return "x" + std::to_string(c); };
  EXPECT_EQ(r.to_string(name), "x0 - 2*x1 + 3 = 0");
}

TEST(Eliminator, SimpleSweep) {
  // x0 + x1 - k = 0 ; k - x2 = 0 (eliminate k) => x0 + x1 - x2 = 0.
  std::vector<SparseRow> rows;
  rows.push_back(row_of({{0, 1}, {1, 1}, {9, -1}}));
  rows.push_back(row_of({{9, 1}, {2, -1}}));
  auto result = Eliminator::eliminate(
      rows, [](std::int32_t c) { return c >= 9; });
  ASSERT_EQ(result.equalities.size(), 1u);
  const SparseRow& inv = result.equalities[0];
  EXPECT_EQ(inv.coeff(0), Rational(1));
  EXPECT_EQ(inv.coeff(1), Rational(1));
  EXPECT_EQ(inv.coeff(2), Rational(-1));
  EXPECT_FALSE(result.inconsistent);
}

TEST(Eliminator, DetectsInconsistency) {
  std::vector<SparseRow> rows;
  rows.push_back(row_of({{9, 1}}, 1));   // k + 1 = 0
  rows.push_back(row_of({{9, 1}}, -1));  // k - 1 = 0
  auto result = Eliminator::eliminate(
      rows, [](std::int32_t c) { return c >= 9; });
  EXPECT_TRUE(result.inconsistent);
}

TEST(Eliminator, KeepsRowsWithoutEliminatedColumns) {
  std::vector<SparseRow> rows;
  rows.push_back(row_of({{0, 1}, {1, 1}}, -1));
  auto result = Eliminator::eliminate(
      rows, [](std::int32_t c) { return c >= 9; });
  ASSERT_EQ(result.equalities.size(), 1u);
  EXPECT_EQ(result.equalities[0].coeff(0), Rational(1));
}

TEST(Eliminator, DerivesSameSignInequalities) {
  // k0 + k1 + x0 - 2 = 0 with k0,k1 >= 0  =>  x0 - 2 <= 0.
  std::vector<SparseRow> rows;
  rows.push_back(row_of({{9, 1}, {10, 1}, {0, 1}}, -2));
  auto result = Eliminator::eliminate(
      rows, [](std::int32_t c) { return c >= 9; },
      /*derive_inequalities=*/true);
  ASSERT_EQ(result.inequalities.size(), 1u);
  EXPECT_EQ(result.inequalities[0].coeff(0), Rational(1));
  EXPECT_EQ(result.inequalities[0].constant(), Rational(-2));
}

TEST(Eliminator, RrefIsCanonical) {
  std::vector<SparseRow> rows;
  rows.push_back(row_of({{0, 2}, {1, 4}}, 2));
  rows.push_back(row_of({{0, 1}, {1, 1}}, 0));
  ASSERT_TRUE(Eliminator::reduce_rref(rows));
  ASSERT_EQ(rows.size(), 2u);
  // RREF: x0 = 1, x1 = -1 (leading ones, zero elsewhere).
  EXPECT_EQ(rows[0].coeff(0), Rational(1));
  EXPECT_EQ(rows[0].coeff(1), Rational(0));
  EXPECT_EQ(rows[1].coeff(0), Rational(0));
  EXPECT_EQ(rows[1].coeff(1), Rational(1));
}

// Property: eliminating a random consistent system never reports
// inconsistency, and every surviving equality is a valid consequence (the
// designated solution satisfies it).
class EliminatorProperty : public ::testing::TestWithParam<int> {};

TEST_P(EliminatorProperty, SolutionsSurviveProjection) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_int_distribution<int> coeff(-3, 3);
  std::uniform_int_distribution<int> val(0, 4);
  const int num_vars = 12;
  const int num_elim = 6;
  // Designated solution.
  std::vector<int> solution(num_vars);
  for (auto& v : solution) v = val(rng);
  // Random rows through the solution.
  std::vector<SparseRow> rows;
  for (int i = 0; i < 10; ++i) {
    SparseRow r;
    int dot = 0;
    for (int c = 0; c < num_vars; ++c) {
      const int a = coeff(rng);
      if (a != 0) {
        r.add(c, Rational(a));
        dot += a * solution[static_cast<std::size_t>(c)];
      }
    }
    r.add_constant(Rational(-dot));
    rows.push_back(std::move(r));
  }
  auto result = Eliminator::eliminate(
      rows, [num_elim](std::int32_t c) { return c < num_elim; },
      /*derive_inequalities=*/false);
  EXPECT_FALSE(result.inconsistent);
  for (const SparseRow& inv : result.equalities) {
    Rational acc = inv.constant();
    for (const auto& e : inv.entries()) {
      EXPECT_GE(e.col, num_elim) << "eliminated column survived";
      acc += e.coeff * Rational(solution[static_cast<std::size_t>(e.col)]);
    }
    EXPECT_TRUE(acc.is_zero()) << "projected equality violated by solution";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EliminatorProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace advocat::linalg
