// Sparse rows, the sweeping eliminator, and the incremental simplex.
#include <gtest/gtest.h>

#include <map>
#include <random>
#include <utility>
#include <vector>

#include "linalg/eliminator.hpp"
#include "linalg/simplex.hpp"
#include "linalg/sparse_row.hpp"

namespace advocat::linalg {
namespace {

using util::BigInt;

SparseRow row_of(std::initializer_list<std::pair<int, int>> entries,
                 int constant = 0) {
  SparseRow r;
  for (const auto& [col, coeff] : entries) r.add(col, Rational(coeff));
  r.add_constant(Rational(constant));
  return r;
}

TEST(SparseRow, AddMergesAndCancels) {
  SparseRow r;
  r.add(3, Rational(2));
  r.add(1, Rational(5));
  r.add(3, Rational(-2));  // cancels
  EXPECT_EQ(r.coeff(3), Rational(0));
  EXPECT_EQ(r.coeff(1), Rational(5));
  EXPECT_EQ(r.min_col(), 1);
  EXPECT_EQ(r.entries().size(), 1u);
}

TEST(SparseRow, AddScaledMergesSortedEntries) {
  SparseRow a = row_of({{0, 1}, {2, 3}}, 5);
  const SparseRow b = row_of({{1, 2}, {2, -3}}, -5);
  a.add_scaled(b, Rational(1));
  EXPECT_EQ(a.coeff(0), Rational(1));
  EXPECT_EQ(a.coeff(1), Rational(2));
  EXPECT_EQ(a.coeff(2), Rational(0));
  EXPECT_TRUE(a.constant().is_zero());
}

TEST(SparseRow, NormalizeIntegerClearsDenominators) {
  SparseRow r;
  r.add(0, Rational(BigInt(1), BigInt(2)));
  r.add(1, Rational(BigInt(-1), BigInt(3)));
  r.add_constant(Rational(BigInt(1), BigInt(6)));
  r.normalize_integer();
  EXPECT_EQ(r.coeff(0), Rational(3));
  EXPECT_EQ(r.coeff(1), Rational(-2));
  EXPECT_EQ(r.constant(), Rational(1));
}

TEST(SparseRow, NormalizeIntegerForcesPositiveLead) {
  SparseRow r = row_of({{0, -2}, {1, 4}});
  r.normalize_integer();
  EXPECT_EQ(r.coeff(0), Rational(1));
  EXPECT_EQ(r.coeff(1), Rational(-2));
}

TEST(SparseRow, ToStringRendering) {
  const SparseRow r = row_of({{0, 1}, {1, -2}}, 3);
  const auto name = [](std::int32_t c) { return "x" + std::to_string(c); };
  EXPECT_EQ(r.to_string(name), "x0 - 2*x1 + 3 = 0");
}

TEST(Eliminator, SimpleSweep) {
  // x0 + x1 - k = 0 ; k - x2 = 0 (eliminate k) => x0 + x1 - x2 = 0.
  std::vector<SparseRow> rows;
  rows.push_back(row_of({{0, 1}, {1, 1}, {9, -1}}));
  rows.push_back(row_of({{9, 1}, {2, -1}}));
  auto result = Eliminator::eliminate(
      rows, [](std::int32_t c) { return c >= 9; });
  ASSERT_EQ(result.equalities.size(), 1u);
  const SparseRow& inv = result.equalities[0];
  EXPECT_EQ(inv.coeff(0), Rational(1));
  EXPECT_EQ(inv.coeff(1), Rational(1));
  EXPECT_EQ(inv.coeff(2), Rational(-1));
  EXPECT_FALSE(result.inconsistent);
}

TEST(Eliminator, DetectsInconsistency) {
  std::vector<SparseRow> rows;
  rows.push_back(row_of({{9, 1}}, 1));   // k + 1 = 0
  rows.push_back(row_of({{9, 1}}, -1));  // k - 1 = 0
  auto result = Eliminator::eliminate(
      rows, [](std::int32_t c) { return c >= 9; });
  EXPECT_TRUE(result.inconsistent);
}

TEST(Eliminator, KeepsRowsWithoutEliminatedColumns) {
  std::vector<SparseRow> rows;
  rows.push_back(row_of({{0, 1}, {1, 1}}, -1));
  auto result = Eliminator::eliminate(
      rows, [](std::int32_t c) { return c >= 9; });
  ASSERT_EQ(result.equalities.size(), 1u);
  EXPECT_EQ(result.equalities[0].coeff(0), Rational(1));
}

TEST(Eliminator, DerivesSameSignInequalities) {
  // k0 + k1 + x0 - 2 = 0 with k0,k1 >= 0  =>  x0 - 2 <= 0.
  std::vector<SparseRow> rows;
  rows.push_back(row_of({{9, 1}, {10, 1}, {0, 1}}, -2));
  auto result = Eliminator::eliminate(
      rows, [](std::int32_t c) { return c >= 9; },
      /*derive_inequalities=*/true);
  ASSERT_EQ(result.inequalities.size(), 1u);
  EXPECT_EQ(result.inequalities[0].coeff(0), Rational(1));
  EXPECT_EQ(result.inequalities[0].constant(), Rational(-2));
}

TEST(Eliminator, RrefIsCanonical) {
  std::vector<SparseRow> rows;
  rows.push_back(row_of({{0, 2}, {1, 4}}, 2));
  rows.push_back(row_of({{0, 1}, {1, 1}}, 0));
  ASSERT_TRUE(Eliminator::reduce_rref(rows));
  ASSERT_EQ(rows.size(), 2u);
  // RREF: x0 = 1, x1 = -1 (leading ones, zero elsewhere).
  EXPECT_EQ(rows[0].coeff(0), Rational(1));
  EXPECT_EQ(rows[0].coeff(1), Rational(0));
  EXPECT_EQ(rows[1].coeff(0), Rational(0));
  EXPECT_EQ(rows[1].coeff(1), Rational(1));
}

// Property: eliminating a random consistent system never reports
// inconsistency, and every surviving equality is a valid consequence (the
// designated solution satisfies it).
class EliminatorProperty : public ::testing::TestWithParam<int> {};

TEST_P(EliminatorProperty, SolutionsSurviveProjection) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_int_distribution<int> coeff(-3, 3);
  std::uniform_int_distribution<int> val(0, 4);
  const int num_vars = 12;
  const int num_elim = 6;
  // Designated solution.
  std::vector<int> solution(num_vars);
  for (auto& v : solution) v = val(rng);
  // Random rows through the solution.
  std::vector<SparseRow> rows;
  for (int i = 0; i < 10; ++i) {
    SparseRow r;
    int dot = 0;
    for (int c = 0; c < num_vars; ++c) {
      const int a = coeff(rng);
      if (a != 0) {
        r.add(c, Rational(a));
        dot += a * solution[static_cast<std::size_t>(c)];
      }
    }
    r.add_constant(Rational(-dot));
    rows.push_back(std::move(r));
  }
  auto result = Eliminator::eliminate(
      rows, [num_elim](std::int32_t c) { return c < num_elim; },
      /*derive_inequalities=*/false);
  EXPECT_FALSE(result.inconsistent);
  for (const SparseRow& inv : result.equalities) {
    Rational acc = inv.constant();
    for (const auto& e : inv.entries()) {
      EXPECT_GE(e.col, num_elim) << "eliminated column survived";
      acc += e.coeff * Rational(solution[static_cast<std::size_t>(e.col)]);
    }
    EXPECT_TRUE(acc.is_zero()) << "projected equality violated by solution";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EliminatorProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ----------------------------------------------------------------- simplex

// Test-side ledger of asserted constraints, each as a ≤-form over problem
// columns, so Farkas certificates can be validated by exact
// re-substitution: Σ mult·lhs must cancel every column and Σ mult·rhs
// must come out negative (i.e. the combination reads 0 ≤ negative).
class FarkasLedger {
 public:
  void upper(int tag, const SparseRow& lhs, const Rational& b) {
    forms_.emplace(tag, std::make_pair(lhs, b));
  }
  void lower(int tag, const SparseRow& lhs, const Rational& b) {
    SparseRow neg = lhs;
    neg.scale(Rational(-1));
    forms_.emplace(tag, std::make_pair(std::move(neg), -b));
  }

  void expect_valid(const std::vector<FarkasTerm>& cert) const {
    ASSERT_FALSE(cert.empty());
    SparseRow lhs;
    Rational rhs;
    for (const FarkasTerm& t : cert) {
      EXPECT_GT(t.mult, Rational(0)) << "multipliers must be positive";
      const auto it = forms_.find(t.tag);
      ASSERT_NE(it, forms_.end()) << "certificate cites unknown tag " << t.tag;
      lhs.add_scaled(it->second.first, t.mult);
      rhs += it->second.second * t.mult;
    }
    EXPECT_FALSE(lhs.has_variables())
        << "Farkas combination must cancel every variable";
    EXPECT_LT(rhs, Rational(0)) << "combination must read 0 <= negative";
  }

 private:
  std::map<int, std::pair<SparseRow, Rational>> forms_;
};

SparseRow form_of(std::initializer_list<std::pair<int, int>> entries) {
  SparseRow r;
  for (const auto& [col, coeff] : entries) r.add(col, Rational(coeff));
  return r;
}

TEST(Simplex, FeasibleVertexSatisfiesAllBoundsAndDefinitions) {
  // x + y <= 4, x - y <= 0, x >= 1: feasible.
  Simplex s;
  const int x = s.var(0);
  const int y = s.var(1);
  const int sum = s.add_slack({{0, 1}, {1, 1}});
  const int diff = s.add_slack({{0, 1}, {1, -1}});
  ASSERT_TRUE(s.assert_upper(sum, Rational(4), 1));
  ASSERT_TRUE(s.assert_upper(diff, Rational(0), 2));
  ASSERT_TRUE(s.assert_lower(x, Rational(1), 3));
  ASSERT_TRUE(s.check());
  const Rational vx = s.value(x);
  const Rational vy = s.value(y);
  EXPECT_LE(vx + vy, Rational(4));
  EXPECT_LE(vx - vy, Rational(0));
  EXPECT_GE(vx, Rational(1));
  // Slack values track their defining forms exactly through pivoting.
  EXPECT_EQ(s.value(sum), vx + vy);
  EXPECT_EQ(s.value(diff), vx - vy);
}

TEST(Simplex, SolvesEqualitySystemsExactly) {
  // x + y = 10 and x - y = 4 (equalities = upper+lower on one slack each)
  // have the unique solution x = 7, y = 3 — pivoting must land on it.
  Simplex s;
  const int x = s.var(0);
  const int y = s.var(1);
  const int sum = s.add_slack({{0, 1}, {1, 1}});
  const int diff = s.add_slack({{0, 1}, {1, -1}});
  ASSERT_TRUE(s.assert_upper(sum, Rational(10), 1));
  ASSERT_TRUE(s.assert_lower(sum, Rational(10), 2));
  ASSERT_TRUE(s.assert_upper(diff, Rational(4), 3));
  ASSERT_TRUE(s.assert_lower(diff, Rational(4), 4));
  ASSERT_TRUE(s.check());
  EXPECT_EQ(s.value(x), Rational(7));
  EXPECT_EQ(s.value(y), Rational(3));
  EXPECT_GT(s.stats().pivots, 0u);
}

TEST(Simplex, FarkasCertificateOfCyclicSystemResubstitutes) {
  // x - y <= -1, y - z <= -1, z - x <= -1: the cycle sums to 0 <= -3.
  Simplex s;
  FarkasLedger ledger;
  const std::vector<std::pair<int, int>> edges = {{0, 1}, {1, 2}, {2, 0}};
  int tag = 10;
  for (const auto& [a, b] : edges) {
    const int sl = s.add_slack({{a, 1}, {b, -1}});
    ledger.upper(tag, form_of({{a, 1}, {b, -1}}), Rational(-1));
    ASSERT_TRUE(s.assert_upper(sl, Rational(-1), tag));
    ++tag;
  }
  ASSERT_FALSE(s.check());
  ledger.expect_valid(s.farkas());
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(Simplex, CrossingBoundsConflictImmediately) {
  // x <= 2 then x >= 5 contradict at assertion time; the certificate is
  // the two bounds, multiplier 1 each.
  Simplex s;
  FarkasLedger ledger;
  const int x = s.var(7);
  ledger.upper(1, form_of({{7, 1}}), Rational(2));
  ledger.lower(2, form_of({{7, 1}}), Rational(5));
  ASSERT_TRUE(s.assert_upper(x, Rational(2), 1));
  ASSERT_FALSE(s.assert_lower(x, Rational(5), 2));
  ledger.expect_valid(s.farkas());
}

TEST(Simplex, RetractRestoresFeasibilityAndReusesBasis) {
  // Incremental contract: bounds retract in LIFO order; the tableau and
  // basis persist, so the re-check after a retract needs no new slacks
  // and the certificate machinery keeps working on the same instance.
  Simplex s;
  FarkasLedger ledger;
  const int x = s.var(0);
  const int y = s.var(1);
  const int sum = s.add_slack({{0, 1}, {1, 1}});
  ledger.upper(1, form_of({{0, 1}, {1, 1}}), Rational(3));
  ledger.lower(2, form_of({{0, 1}}), Rational(0));
  ledger.lower(3, form_of({{1, 1}}), Rational(0));
  ASSERT_TRUE(s.assert_upper(sum, Rational(3), 1));
  ASSERT_TRUE(s.assert_lower(x, Rational(0), 2));
  ASSERT_TRUE(s.assert_lower(y, Rational(0), 3));
  ASSERT_TRUE(s.check());

  const std::size_t mark = s.mark();
  ledger.lower(4, form_of({{0, 1}}), Rational(5));
  ASSERT_TRUE(s.assert_lower(x, Rational(5), 4));
  ASSERT_FALSE(s.check());  // x >= 5 vs x + y <= 3, y >= 0
  ledger.expect_valid(s.farkas());

  s.retract_to(mark);
  ASSERT_TRUE(s.check()) << "retracting the probe restores feasibility";
  ASSERT_TRUE(s.assert_lower(x, Rational(2), 5));
  ASSERT_TRUE(s.check());
  EXPECT_GE(s.value(x), Rational(2));
  EXPECT_LE(s.value(x) + s.value(y), Rational(3));
}

TEST(Simplex, RetractOnEmptyTrailAndPastMarkIsSafe) {
  // Edge cases of the bound-trail retraction: an empty trail, a mark
  // beyond the trail end (pop "past the first mark"), and repeated
  // retraction to zero must all be exact no-ops — and a full retraction
  // must restore the had-no-bound state, not leave a stale bound behind.
  Simplex s;
  const int x = s.var(0);
  s.retract_to(0);  // empty trail: nothing to pop
  EXPECT_EQ(s.mark(), 0u);

  ASSERT_TRUE(s.assert_upper(x, Rational(4), 1));
  const std::size_t m = s.mark();
  s.retract_to(m + 100);  // mark beyond the trail: no-op, nothing popped
  EXPECT_EQ(s.mark(), m);

  s.retract_to(0);
  EXPECT_EQ(s.mark(), 0u);
  s.retract_to(0);  // idempotent on the now-empty trail
  EXPECT_EQ(s.mark(), 0u);

  // x is unbounded again: a bound far above the retracted upper bound
  // must be accepted without conflict...
  ASSERT_TRUE(s.assert_lower(x, Rational(10), 2));
  ASSERT_TRUE(s.check());
  EXPECT_GE(s.value(x), Rational(10));
  s.retract_to(0);
  // ...and after retracting that too, a bound crossing it must also be
  // accepted — a leaked lower bound of 10 would reject upper = -5 here.
  ASSERT_TRUE(s.assert_upper(x, Rational(-5), 3));
  ASSERT_TRUE(s.check());
  EXPECT_LE(s.value(x), Rational(-5));
}

// Property: random bound probes over a fixed tableau. Feasible checks
// must produce values inside every asserted bound; infeasible checks must
// produce a certificate that re-substitutes to 0 <= negative.
class SimplexProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplexProperty, VerdictsAreCertified) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  std::uniform_int_distribution<int> coeff(-3, 3);
  std::uniform_int_distribution<int> bound(-6, 6);
  const int num_vars = 5;
  Simplex s;
  FarkasLedger ledger;
  std::vector<std::pair<int, SparseRow>> slacks;  // (simplex var, form)
  for (int i = 0; i < 4; ++i) {
    std::vector<std::pair<std::int32_t, std::int64_t>> terms;
    SparseRow form;
    for (int c = 0; c < num_vars; ++c) {
      const int a = coeff(rng);
      if (a != 0) {
        terms.emplace_back(c, a);
        form.add(c, Rational(a));
      }
    }
    if (terms.empty()) continue;
    slacks.emplace_back(s.add_slack(terms), std::move(form));
  }
  for (int c = 0; c < num_vars; ++c) s.var(c);

  int tag = 0;
  std::vector<std::pair<int, bool>> asserted;  // (tag is upper?) per bound
  for (int round = 0; round < 40; ++round) {
    const bool on_slack = !slacks.empty() && (rng() & 1) != 0;
    const std::size_t pick =
        on_slack ? rng() % slacks.size()
                 : static_cast<std::size_t>(rng() % num_vars);
    const int var = on_slack ? slacks[pick].first
                             : s.var(static_cast<std::int32_t>(pick));
    const SparseRow form =
        on_slack ? slacks[pick].second
                 : form_of({{static_cast<int>(pick), 1}});
    const Rational b(bound(rng));
    const bool upper = (rng() & 1) != 0;
    ++tag;
    if (upper) ledger.upper(tag, form, b);
    else ledger.lower(tag, form, b);
    const bool ok = upper ? s.assert_upper(var, b, tag)
                          : s.assert_lower(var, b, tag);
    if (!ok || !s.check()) {
      ledger.expect_valid(s.farkas());
      return;  // certified infeasibility ends the probe sequence
    }
    // Feasible: the vertex satisfies every slack bound we asserted.
    for (const auto& [sv, sform] : slacks) {
      Rational acc;
      for (const Entry& e : sform.entries()) {
        acc += e.coeff * s.value(s.var(e.col));
      }
      EXPECT_EQ(acc, s.value(sv)) << "slack drifted from its definition";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16, 17, 18));

}  // namespace
}  // namespace advocat::linalg
