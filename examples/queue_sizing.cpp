// Example: compute the minimal deadlock-free queue size for a mesh — the
// paper's headline application (Fig. 4).
//
// Usage:   ./build/examples/queue_sizing [mesh_k=3] [directory_node=-1]
//
// Meshes of 3x3 and larger currently need the Z3 backend (builds with
// libz3 found); the native solver handles 2x2 in seconds but does not yet
// scale past it (clause learning — see ROADMAP.md).
#include <cstdio>
#include <cstdlib>

#include "advocat/verifier.hpp"
#include "coherence/mi_abstract.hpp"

using namespace advocat;

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 3;
  const int dir = argc > 2 ? std::atoi(argv[2]) : -1;

  auto make = [k, dir](std::size_t cap) {
    coh::MiAbstractConfig config;
    config.width = k;
    config.height = k;
    config.queue_capacity = cap;
    config.directory_node = dir;
    return std::move(coh::build_mi_abstract(config).net);
  };

  core::QueueSizingOptions options;
  options.min_capacity = 1;
  options.max_capacity = 256;
  const core::QueueSizingResult result =
      core::find_minimal_queue_size(make, options);

  std::printf("%dx%d mesh, directory node %d\n", k, k,
              dir < 0 ? k * k - 1 : dir);
  for (const auto& [cap, free] : result.probes) {
    std::printf("  capacity %3zu: %s\n", cap,
                free ? "deadlock-free" : "deadlock");
  }
  if (result.minimal_capacity == 0) {
    std::printf("no safe capacity within [1, %zu]\n", options.max_capacity);
    return 1;
  }
  std::printf("minimal safe queue capacity: %zu  (%.2fs, %zu probes)\n",
              result.minimal_capacity, result.seconds, result.probes.size());
  std::printf("pipeline stages: %zu validation(s), %zu invariant "
              "generation(s), %zu encode(s), %zu solver checks%s\n",
              result.validations, result.invariant_generations,
              result.encodes, result.solver_checks,
              result.incremental ? " (one incremental session)" : "");
  return 0;
}
