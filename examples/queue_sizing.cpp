// Example: compute the minimal deadlock-free queue size for a mesh — the
// paper's headline application (Fig. 4).
//
// Usage:   ./build/examples/queue_sizing [mesh_k=3] [directory_node=-1]
//
// Both backends handle the 3x3 and 4x4 meshes in seconds: the native
// solver's CDCL core (PR 4) keeps learned clauses across the capacity
// probes, so each probe re-solves only what actually changed.
#include <cstdio>
#include <cstdlib>

#include "advocat/verifier.hpp"
#include "coherence/mi_abstract.hpp"

using namespace advocat;

int main(int argc, char** argv) {
  const int k = argc > 1 ? std::atoi(argv[1]) : 3;
  const int dir = argc > 2 ? std::atoi(argv[2]) : -1;

  auto make = [k, dir](std::size_t cap) {
    coh::MiAbstractConfig config;
    config.width = k;
    config.height = k;
    config.queue_capacity = cap;
    config.directory_node = dir;
    return std::move(coh::build_mi_abstract(config).net);
  };

  core::QueueSizingOptions options;
  options.min_capacity = 1;
  options.max_capacity = 256;
  const core::QueueSizingResult result =
      core::find_minimal_queue_size(make, options);

  std::printf("%dx%d mesh, directory node %d\n", k, k,
              dir < 0 ? k * k - 1 : dir);
  for (const auto& [cap, verdict] : result.probes) {
    const char* text = verdict == smt::SatResult::Unsat
                           ? "deadlock-free"
                           : (verdict == smt::SatResult::Sat ? "deadlock"
                                                             : "unknown");
    std::printf("  capacity %3zu: %s\n", cap, text);
  }
  if (result.minimal_capacity == 0) {
    std::printf("no safe capacity within [1, %zu]%s\n", options.max_capacity,
                result.unknown_probes > 0
                    ? " (some probes returned unknown)"
                    : "");
    return 1;
  }
  if (result.unknown_probes > 0) {
    std::printf("note: %zu probe(s) returned unknown; the minimum below is "
                "sound but may be over-sized\n",
                result.unknown_probes);
  }
  std::printf("minimal safe queue capacity: %zu  (%.2fs, %zu probes)\n",
              result.minimal_capacity, result.seconds, result.probes.size());
  std::printf("pipeline stages: %zu validation(s), %zu invariant "
              "generation(s), %zu encode(s), %zu solver checks%s\n",
              result.validations, result.invariant_generations,
              result.encodes, result.solver_checks,
              result.incremental ? " (one incremental session)" : "");
  return 0;
}
