// Example: verify a user-defined protocol on a user-defined fabric with the
// public API — a credit-based producer/consumer ring.
//
// Two stations exchange work items around a ring of queues; the consumer
// grants credits back. The system deadlocks iff the credit queue is
// undersized relative to the number of in-flight items the producer may
// emit; ADVOCAT finds the boundary.
//
// Usage:   ./build/examples/custom_protocol
#include <cstdio>

#include "advocat/verifier.hpp"
#include "automata/builder.hpp"
#include "sim/explorer.hpp"
#include "sim/simulator.hpp"
#include "xmas/network.hpp"

using namespace advocat;

namespace {

// Producer: may emit up to two items before needing a credit back.
xmas::Network build_ring(std::size_t item_capacity,
                         std::size_t credit_capacity) {
  xmas::Network net;
  auto& colors = net.colors();
  const xmas::ColorId item = colors.intern("item");
  const xmas::ColorId credit = colors.intern("credit");
  const xmas::ColorId tick = colors.intern("tick");
  const xmas::ColorId tock = colors.intern("tock");

  // Producer: c0 (2 credits) -> c1 (1 credit) -> c2 (0 credits, must wait).
  aut::AutomatonBuilder producer("producer", {"c2", "c1", "c0"});
  producer.in_ports(2).out_ports(1).initial("c2");
  producer.on("c2", 1, tick).emit(0, item).go("c1").label("send1");
  producer.on("c1", 1, tick).emit(0, item).go("c0").label("send2");
  producer.on("c1", 0, credit).go("c2").label("credit1");
  producer.on("c0", 0, credit).go("c1").label("credit0");

  // Consumer: consumes an item, then returns a credit on the next tock.
  aut::AutomatonBuilder consumer("consumer", {"idle", "owe"});
  consumer.in_ports(2).out_ports(1).initial("idle");
  consumer.on("idle", 0, item).go("owe").label("recv");
  consumer.on("owe", 1, tock).emit(0, credit).go("idle").label("grant");

  const xmas::PrimId p = net.add_automaton(producer.build());
  const xmas::PrimId c = net.add_automaton(consumer.build());
  const xmas::PrimId items = net.add_queue("items", item_capacity);
  const xmas::PrimId credits = net.add_queue("credits", credit_capacity);
  net.connect(p, 0, items, 0);
  net.connect(items, 0, c, 0);
  net.connect(c, 0, credits, 0);
  net.connect(credits, 0, p, 0);
  net.connect(net.add_source("clock_p", {tick}), 0, p, 1);
  net.connect(net.add_source("clock_c", {tock}), 0, c, 1);
  return net;
}

}  // namespace

int main() {
  std::puts("credit-based ring: sweep queue capacities");
  for (std::size_t items = 1; items <= 3; ++items) {
    for (std::size_t credits = 1; credits <= 3; ++credits) {
      const xmas::Network net = build_ring(items, credits);
      const core::VerifyResult result = core::verify(net);

      // Cross-check with exhaustive exploration (the system is tiny).
      sim::Simulator simulator(net);
      const sim::ExploreResult ground = sim::explore(simulator);
      const bool really_free = ground.complete && !ground.deadlock;
      const char* advocat_verdict =
          result.deadlock_free()
              ? "deadlock-free"
              : (result.report.result == smt::SatResult::Sat ? "candidate"
                                                             : "unknown");
      std::printf("  items=%zu credits=%zu: advocat=%-13s explorer=%s\n",
                  items, credits, advocat_verdict,
                  really_free ? "deadlock-free" : "deadlock");
      // Soundness: a deadlock-free verdict must match ground truth.
      if (result.deadlock_free() && !really_free) {
        std::puts("SOUNDNESS VIOLATION");
        return 1;
      }
    }
  }
  std::puts("done; ADVOCAT verdicts are sound (no free verdict on a "
            "deadlocking configuration).");
  return 0;
}
