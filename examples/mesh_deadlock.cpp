// Example: find a cross-layer deadlock on a mesh, confirm it is reachable,
// and print the event trace that leads to it.
//
// Usage:   ./build/examples/mesh_deadlock [queue_capacity=2]
#include <cstdio>
#include <cstdlib>

#include "advocat/verifier.hpp"
#include "coherence/mi_abstract.hpp"
#include "sim/explorer.hpp"
#include "sim/simulator.hpp"

using namespace advocat;

int main(int argc, char** argv) {
  coh::MiAbstractConfig config;
  config.queue_capacity =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 2;
  std::printf("2x2 mesh, abstract MI protocol, queue capacity %zu\n",
              config.queue_capacity);

  coh::MiAbstractSystem sys = coh::build_mi_abstract(config);
  const core::VerifyResult result = core::verify(sys.net);
  std::printf("%s", result.to_string().c_str());
  if (result.deadlock_free()) return 0;
  if (result.report.result == smt::SatResult::Unknown) {
    std::printf("verdict: unknown (solver timeout or degraded search) — "
                "nothing to confirm\n");
    return 0;  // inconclusive, not a disagreement
  }

  // ADVOCAT found a candidate; confirm reachability with the explorer.
  sim::Simulator simulator(sys.net);
  sim::ExploreOptions options;
  options.max_states = 500'000;
  const sim::ExploreResult reach = sim::explore(simulator, options);
  if (!reach.deadlock.has_value()) {
    std::printf("candidate not confirmed within %zu states (a false "
                "negative of the abstraction)\n",
                reach.states_visited);
    return 2;
  }
  std::printf("\nreachable deadlock after %zu explored states; trace:\n",
              reach.states_visited);
  for (const auto& label : reach.trace) std::printf("  %s\n", label.c_str());
  std::printf("\ndeadlocked state:\n%s",
              simulator.describe(*reach.deadlock).c_str());
  return 1;
}
