// Quickstart: model the paper's running example (Fig. 1), derive the
// cross-layer invariants, and prove deadlock freedom.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "advocat/verifier.hpp"
#include "automata/builder.hpp"
#include "invariants/generator.hpp"
#include "xmas/network.hpp"
#include "xmas/typing.hpp"

using namespace advocat;

int main() {
  // 1. Build the network: two automata S and T exchanging req/ack through
  //    two queues, driven by fair token sources.
  xmas::Network net;
  auto& colors = net.colors();
  const xmas::ColorId req = colors.intern("req");
  const xmas::ColorId ack = colors.intern("ack");
  const xmas::ColorId tok_s = colors.intern("tokS");
  const xmas::ColorId tok_t = colors.intern("tokT");

  aut::AutomatonBuilder bs("S", {"s0", "s1"});
  bs.in_ports(2).out_ports(1).initial("s0");
  bs.on("s0", 1, tok_s).emit(0, req).go("s1").label("req!");
  bs.on("s1", 0, ack).go("s0").label("ack?");
  const xmas::PrimId s = net.add_automaton(bs.build());

  aut::AutomatonBuilder bt("T", {"t0", "t1"});
  bt.in_ports(2).out_ports(1).initial("t0");
  bt.on("t0", 0, req).go("t1").label("req?");
  bt.on("t1", 1, tok_t).emit(0, ack).go("t0").label("ack!");
  const xmas::PrimId t = net.add_automaton(bt.build());

  const xmas::PrimId q0 = net.add_queue("q0", 2);
  const xmas::PrimId q1 = net.add_queue("q1", 2);
  net.connect(s, 0, q0, 0);
  net.connect(q0, 0, t, 0);
  net.connect(t, 0, q1, 0);
  net.connect(q1, 0, s, 0);
  net.connect(net.add_source("srcS", {tok_s}), 0, s, 1);
  net.connect(net.add_source("srcT", {tok_t}), 0, t, 1);

  // 2. Derive per-channel colors and the cross-layer invariants.
  const xmas::Typing typing = xmas::Typing::derive(net);
  inv::InvariantSet invariants = inv::generate(net, typing);
  std::puts("derived invariants:");
  for (const auto& line : invariants.to_strings()) {
    std::printf("  %s\n", line.c_str());
  }

  // 3. Prove deadlock freedom (and show what happens without invariants).
  auto verdict = [](const core::VerifyResult& r) {
    switch (r.report.result) {
      case smt::SatResult::Unsat: return "deadlock-free";
      case smt::SatResult::Sat: return "deadlock candidate";
      case smt::SatResult::Unknown: return "unknown (no verdict)";
    }
    return "unknown (no verdict)";
  };
  core::VerifyOptions no_inv;
  no_inv.use_invariants = false;
  const core::VerifyResult plain = core::verify(net, no_inv);
  std::printf("\nwithout invariants: %s\n", verdict(plain));

  const core::VerifyResult full = core::verify(net);
  std::printf("with invariants:    %s\n", verdict(full));
  // Non-zero only for a definite wrong answer (the paper proves this
  // network free); an Unknown verdict is inconclusive, not a failure.
  return full.report.result == smt::SatResult::Sat ? 1 : 0;
}
