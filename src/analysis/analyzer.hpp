// Static analysis of xMAS networks — the lint layer in front of the
// verification pipeline.
//
// `analyze` checks a network *before* any encoding and returns structured
// diagnostics instead of letting a miswired or semantically ill-formed net
// reach the solver (where it would produce a confusing verdict, or worse,
// undefined behaviour when a routing function indexes a port that does not
// exist). Rules, by id:
//
//   port-connectivity   (error)   every in/out-port wired exactly once;
//                                 channel endpoints resolve to primitives
//   duplicate-name      (error)   primitive names are unique
//   parameters          (error)   kind-specific parameters present and sane
//                                 (queue capacity, source colors, function
//                                 mapping, switch routing, automaton shape)
//   combinational-cycle (error)   no cycle through combinational primitives
//                                 only (function/fork/join/switch/merge) —
//                                 the synchronous transfer relation of such
//                                 a net has no least fixed point, so the
//                                 xMAS semantics the paper builds on is
//                                 undefined for it
//   type-consistency    (error)   over the derived per-channel color sets:
//                                 switch routes stay within the out-ports,
//                                 function images and automaton emissions
//                                 stay within the color table / port range
//   dead-channel        (warning) T(c) = ∅: no packet can ever appear
//   unreachable-sink    (warning) a typed channel whose packets can never
//                                 reach a consumer (sink, join token port,
//                                 or automaton)
//
// Errors reject the network (core::Verifier throws std::invalid_argument
// carrying them); warnings are surfaced through VerifyResult and logged.
//
// `prune_idle` removes provably-idle components — connected components in
// which every channel is dead and that contain neither a source nor an
// automaton — producing a smaller network with the same deadlock verdict
// and the same minimal capacities (idle components contribute no blocked
// packet, no fair-source refusal, and no dead automaton to the encoding).
#pragma once

#include <string>
#include <vector>

#include "xmas/network.hpp"

namespace advocat::analysis {

enum class Severity { Warning, Error };

[[nodiscard]] const char* to_string(Severity severity);

/// One analyzer finding. `component` names the primitive and `channel` the
/// channel the finding anchors to; either may be empty when the rule has no
/// such anchor.
struct Diagnostic {
  Severity severity = Severity::Error;
  std::string rule;       ///< stable rule id, e.g. "port-connectivity"
  std::string component;  ///< primitive name, empty when not applicable
  std::string channel;    ///< channel display name, empty when not applicable
  std::string message;

  /// Rendering like "error[type-consistency] sw: route(req) = 7 ...".
  [[nodiscard]] std::string to_string() const;
};

struct AnalysisResult {
  std::vector<Diagnostic> diagnostics;
  /// Channels with an empty derived color set, ascending. Only populated
  /// when the network has no errors (the sets are meaningless otherwise).
  std::vector<xmas::ChanId> dead_channels;
  /// Primitives of provably-idle components (see prune_idle), ascending.
  std::vector<xmas::PrimId> prunable_prims;

  [[nodiscard]] bool has_errors() const;
  [[nodiscard]] std::size_t num_errors() const;
  [[nodiscard]] std::size_t num_warnings() const;
  /// One diagnostic per line, errors first.
  [[nodiscard]] std::string to_string() const;
};

/// Runs every rule. Structural errors (connectivity, parameters) suppress
/// the semantic passes, which need a fully wired net to make sense.
[[nodiscard]] AnalysisResult analyze(const xmas::Network& net);

/// Returns a copy of `net` without `analysis.prunable_prims` (and the
/// channels among them). Primitive ids are compacted; names, parameters,
/// colors, and all surviving wiring are preserved. `analysis` must come
/// from `analyze(net)` and carry no errors.
[[nodiscard]] xmas::Network prune_idle(const xmas::Network& net,
                                       const AnalysisResult& analysis);

}  // namespace advocat::analysis
