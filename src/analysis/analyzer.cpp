#include "analysis/analyzer.hpp"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <utility>

#include "util/strings.hpp"
#include "xmas/typing.hpp"

namespace advocat::analysis {

using xmas::ChanId;
using xmas::ColorId;
using xmas::ColorSet;
using xmas::set_insert;
using xmas::set_union;
using xmas::kNoChan;
using xmas::Network;
using xmas::Primitive;
using xmas::PrimId;
using xmas::PrimKind;

const char* to_string(Severity severity) {
  return severity == Severity::Error ? "error" : "warning";
}

std::string Diagnostic::to_string() const {
  std::string loc;
  if (!component.empty()) loc = component;
  if (!channel.empty()) {
    if (!loc.empty()) loc += ", ";
    loc += "channel " + channel;
  }
  return util::cat(analysis::to_string(severity), "[", rule, "] ",
                   loc.empty() ? "" : loc + ": ", message);
}

bool AnalysisResult::has_errors() const { return num_errors() > 0; }

std::size_t AnalysisResult::num_errors() const {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::Error) ++n;
  }
  return n;
}

std::size_t AnalysisResult::num_warnings() const {
  return diagnostics.size() - num_errors();
}

std::string AnalysisResult::to_string() const {
  std::string out;
  for (int pass = 0; pass < 2; ++pass) {
    const Severity want = pass == 0 ? Severity::Error : Severity::Warning;
    for (const Diagnostic& d : diagnostics) {
      if (d.severity != want) continue;
      if (!out.empty()) out += "\n";
      out += d.to_string();
    }
  }
  return out;
}

namespace {

/// True for the stateless primitives whose output transfer happens in the
/// same synchronous step as the input transfer; queues, sources, sinks and
/// automata break combinational paths.
bool combinational(PrimKind kind) {
  switch (kind) {
    case PrimKind::Function:
    case PrimKind::Fork:
    case PrimKind::Join:
    case PrimKind::Switch:
    case PrimKind::Merge:
      return true;
    default:
      return false;
  }
}

void emit(AnalysisResult& result, Severity severity, std::string rule,
          std::string component, std::string channel, std::string message) {
  result.diagnostics.push_back(Diagnostic{severity, std::move(rule),
                                          std::move(component),
                                          std::move(channel),
                                          std::move(message)});
}

/// port-connectivity + duplicate-name + parameters: the structural rules.
/// Mirrors Network::validate (kept for API compatibility) but reports
/// structured diagnostics. Returns true when the net is structurally sound
/// enough for the semantic passes.
bool check_structure(const Network& net, AnalysisResult& result) {
  const std::size_t before = result.diagnostics.size();
  std::unordered_set<std::string> names;
  for (const Primitive& p : net.prims()) {
    if (!names.insert(p.name).second) {
      emit(result, Severity::Error, "duplicate-name", p.name, "",
           "duplicate primitive name");
    }
    for (std::size_t port = 0; port < p.in.size(); ++port) {
      if (p.in[port] == kNoChan) {
        emit(result, Severity::Error, "port-connectivity", p.name, "",
             util::cat("in-port ", port, " unconnected"));
      }
    }
    for (std::size_t port = 0; port < p.out.size(); ++port) {
      if (p.out[port] == kNoChan) {
        emit(result, Severity::Error, "port-connectivity", p.name, "",
             util::cat("out-port ", port, " unconnected"));
      }
    }
    switch (p.kind) {
      case PrimKind::Queue:
        if (p.capacity == 0) {
          emit(result, Severity::Error, "parameters", p.name, "",
               "queue with zero capacity");
        }
        break;
      case PrimKind::Source:
        if (p.source_colors.empty()) {
          emit(result, Severity::Error, "parameters", p.name, "",
               "source without colors");
        }
        break;
      case PrimKind::Function:
        if (!p.func) {
          emit(result, Severity::Error, "parameters", p.name, "",
               "function without mapping");
        }
        break;
      case PrimKind::Switch:
        if (!p.route) {
          emit(result, Severity::Error, "parameters", p.name, "",
               "switch without routing");
        }
        break;
      case PrimKind::Automaton: {
        if (p.automaton < 0 ||
            static_cast<std::size_t>(p.automaton) >= net.automata().size()) {
          emit(result, Severity::Error, "parameters", p.name, "",
               "bad automaton index");
          break;
        }
        const xmas::Automaton& a = net.automaton_of(p);
        if (a.states.empty()) {
          emit(result, Severity::Error, "parameters", p.name, "",
               "automaton without states");
        }
        if (a.initial < 0 || a.initial >= a.num_states()) {
          emit(result, Severity::Error, "parameters", p.name, "",
               "bad initial state");
        }
        for (const xmas::AutTransition& t : a.transitions) {
          if (t.from < 0 || t.from >= a.num_states() || t.to < 0 ||
              t.to >= a.num_states()) {
            emit(result, Severity::Error, "parameters", p.name, "",
                 "transition with bad state: " + t.label);
          }
          if (!t.guard || !t.transform) {
            emit(result, Severity::Error, "parameters", p.name, "",
                 "transition missing guard/transform: " + t.label);
          }
        }
        break;
      }
      default:
        break;
    }
  }
  for (std::size_t c = 0; c < net.channels().size(); ++c) {
    const xmas::Channel& ch = net.channels()[c];
    if (ch.initiator < 0 ||
        static_cast<std::size_t>(ch.initiator) >= net.num_prims() ||
        ch.target < 0 ||
        static_cast<std::size_t>(ch.target) >= net.num_prims()) {
      emit(result, Severity::Error, "port-connectivity", "", "",
           util::cat("channel ", c, ": dangling endpoint"));
    }
  }
  return result.diagnostics.size() == before;
}

/// combinational-cycle: DFS over the channel graph restricted to edges
/// through combinational primitives. Reports each back edge once, with the
/// cycle spelled out channel by channel.
void check_combinational_cycles(const Network& net, AnalysisResult& result) {
  const std::size_t n = net.num_channels();
  // adj[c] = out-channels reachable from c in the same synchronous step.
  std::vector<std::vector<ChanId>> adj(n);
  for (const Primitive& p : net.prims()) {
    if (!combinational(p.kind)) continue;
    for (ChanId in : p.in) {
      if (in == kNoChan) continue;
      for (ChanId out : p.out) {
        if (out == kNoChan) continue;
        adj[static_cast<std::size_t>(in)].push_back(out);
      }
    }
  }
  enum : char { kWhite, kGray, kBlack };
  std::vector<char> state(n, kWhite);
  std::vector<ChanId> parent(n, kNoChan);
  for (std::size_t root = 0; root < n; ++root) {
    if (state[root] != kWhite) continue;
    // (channel, next adjacency index) DFS stack.
    std::vector<std::pair<ChanId, std::size_t>> stack;
    stack.emplace_back(static_cast<ChanId>(root), 0);
    state[root] = kGray;
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      const auto& out = adj[static_cast<std::size_t>(u)];
      if (next == out.size()) {
        state[static_cast<std::size_t>(u)] = kBlack;
        stack.pop_back();
        continue;
      }
      const ChanId v = out[next++];
      if (state[static_cast<std::size_t>(v)] == kWhite) {
        state[static_cast<std::size_t>(v)] = kGray;
        parent[static_cast<std::size_t>(v)] = u;
        stack.emplace_back(v, 0);
      } else if (state[static_cast<std::size_t>(v)] == kGray) {
        // Back edge u -> v: the cycle is v ... u v, via the parent chain.
        std::vector<ChanId> cycle{v};
        for (ChanId w = u; w != v; w = parent[static_cast<std::size_t>(w)]) {
          cycle.push_back(w);
        }
        std::reverse(cycle.begin() + 1, cycle.end());
        std::string path;
        for (ChanId c : cycle) path += net.channel_name(c) + " -> ";
        path += net.channel_name(v);
        emit(result, Severity::Error, "combinational-cycle",
             net.prim(net.channel(v).target).name, net.channel_name(v),
             "combinational cycle (no queue breaks it): " + path);
      }
    }
  }
}

/// The guarded T-derivation: the same forward fixpoint as Typing::derive,
/// but every std::function-valued parameter is range-checked before its
/// result is used — Typing::derive (and the encoder after it) index ports
/// and colors with those results, so an out-of-range route or emission
/// must be caught here, before anything downstream runs.
std::vector<ColorSet> derive_checked(const Network& net,
                                     AnalysisResult& result) {
  std::vector<ColorSet> T(net.num_channels());
  // Violations are collected keyed by message so the fixpoint's repeated
  // visits do not repeat diagnostics, and emission order is deterministic.
  std::map<std::string, Diagnostic> violations;
  auto violation = [&](const Primitive& p, std::string message) {
    Diagnostic d{Severity::Error, "type-consistency", p.name, "",
                 std::move(message)};
    violations.emplace(d.component + "|" + d.message, std::move(d));
  };
  const auto num_colors = static_cast<ColorId>(net.colors().size());
  auto color_name = [&](ColorId d) { return net.colors().name(d); };

  bool changed = true;
  while (changed) {
    changed = false;
    for (const Primitive& p : net.prims()) {
      auto in = [&](std::size_t port) -> const ColorSet& {
        return T[static_cast<std::size_t>(p.in[port])];
      };
      auto out = [&](std::size_t port) -> ColorSet& {
        return T[static_cast<std::size_t>(p.out[port])];
      };
      switch (p.kind) {
        case PrimKind::Source:
          for (ColorId d : p.source_colors) {
            if (d < 0 || d >= num_colors) {
              violation(p, util::cat("source color ", d,
                                     " outside the color table"));
              continue;
            }
            changed |= set_insert(out(0), d);
          }
          break;
        case PrimKind::Queue:
          changed |= set_union(out(0), in(0));
          break;
        case PrimKind::Function:
          for (ColorId d : in(0)) {
            const ColorId f = p.func(d);
            if (f < 0 || f >= num_colors) {
              violation(p, util::cat("func(", color_name(d), ") = ", f,
                                     " outside the color table [0, ",
                                     num_colors, ")"));
              continue;
            }
            changed |= set_insert(out(0), f);
          }
          break;
        case PrimKind::Fork:
          changed |= set_union(out(0), in(0));
          changed |= set_union(out(1), in(0));
          break;
        case PrimKind::Join:
          changed |= set_union(out(0), in(0));
          break;
        case PrimKind::Switch:
          for (ColorId d : in(0)) {
            const int port = p.route(d);
            if (port < 0 || static_cast<std::size_t>(port) >= p.out.size()) {
              violation(p, util::cat("route(", color_name(d), ") = ", port,
                                     " outside the out-ports [0, ",
                                     p.out.size(), ")"));
              continue;
            }
            changed |= set_insert(out(static_cast<std::size_t>(port)), d);
          }
          break;
        case PrimKind::Merge:
          for (std::size_t port = 0; port < p.in.size(); ++port) {
            changed |= set_union(out(0), in(port));
          }
          break;
        case PrimKind::Automaton: {
          const xmas::Automaton& a = net.automaton_of(p);
          for (std::size_t ti = 0; ti < a.transitions.size(); ++ti) {
            const xmas::AutTransition& t = a.transitions[ti];
            for (int i = 0; i < a.num_in; ++i) {
              for (ColorId d : in(static_cast<std::size_t>(i))) {
                if (!t.guard(i, d)) continue;
                const auto em = t.transform(i, d);
                if (!em) continue;
                const auto [o, d2] = *em;
                if (o < 0 || static_cast<std::size_t>(o) >= p.out.size()) {
                  violation(p, util::cat("transition ", t.label, " emits on ",
                                         "out-port ", o,
                                         " outside [0, ", p.out.size(), ")"));
                  continue;
                }
                if (d2 < 0 || d2 >= num_colors) {
                  violation(p, util::cat("transition ", t.label, " emits ",
                                         "color ", d2,
                                         " outside the color table"));
                  continue;
                }
                changed |= set_insert(out(static_cast<std::size_t>(o)), d2);
              }
            }
          }
          break;
        }
        case PrimKind::Sink:
          break;
      }
    }
  }
  for (auto& [key, d] : violations) result.diagnostics.push_back(std::move(d));
  return T;
}

/// dead-channel + unreachable-sink warnings, plus the prunable-component
/// computation over the checked typing.
void check_liveness(const Network& net, const std::vector<ColorSet>& T,
                    AnalysisResult& result) {
  const std::size_t n = net.num_channels();
  for (std::size_t c = 0; c < n; ++c) {
    if (T[c].empty()) {
      result.dead_channels.push_back(static_cast<ChanId>(c));
      emit(result, Severity::Warning, "dead-channel", "",
           net.channel_name(static_cast<ChanId>(c)),
           "no color can ever appear here (T(c) = ∅)");
    }
  }

  // May-reach-a-consumer: a channel is drained at a sink, an automaton, or
  // a join token port; elsewhere its packets must be able to flow onward.
  std::vector<char> reaches(n, 0);
  for (std::size_t c = 0; c < n; ++c) {
    const xmas::Channel& ch = net.channels()[c];
    const Primitive& tgt = net.prim(ch.target);
    if (tgt.kind == PrimKind::Sink || tgt.kind == PrimKind::Automaton ||
        (tgt.kind == PrimKind::Join && ch.tgt_port == 1)) {
      reaches[c] = 1;
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t c = 0; c < n; ++c) {
      if (reaches[c] != 0) continue;
      const Primitive& tgt = net.prim(net.channels()[c].target);
      for (ChanId out : tgt.out) {
        if (out != kNoChan && reaches[static_cast<std::size_t>(out)] != 0) {
          reaches[c] = 1;
          changed = true;
          break;
        }
      }
    }
  }
  for (std::size_t c = 0; c < n; ++c) {
    if (reaches[c] == 0 && !T[c].empty()) {
      emit(result, Severity::Warning, "unreachable-sink", "",
           net.channel_name(static_cast<ChanId>(c)),
           "packets here can never reach a sink or automaton");
    }
  }

  // Prunable components: undirected connected components (primitives
  // joined by channels) in which every channel is dead and that contain no
  // source and no automaton. Such a component contributes no deadlock
  // disjunct — no packet can be stuck, no fair source refused, no
  // automaton starved — so removing it preserves the verdict. Automata
  // are excluded because an automaton that can never fire *is* reported
  // dead by the encoding; pruning one would flip a deadlock to free.
  std::vector<int> comp(net.num_prims(), -1);
  int num_comps = 0;
  for (std::size_t p = 0; p < net.num_prims(); ++p) {
    if (comp[p] != -1) continue;
    std::vector<PrimId> frontier{static_cast<PrimId>(p)};
    comp[p] = num_comps;
    while (!frontier.empty()) {
      const PrimId u = frontier.back();
      frontier.pop_back();
      const Primitive& prim = net.prim(u);
      auto visit = [&](ChanId c) {
        if (c == kNoChan) return;
        const xmas::Channel& ch = net.channel(c);
        for (PrimId v : {ch.initiator, ch.target}) {
          if (comp[static_cast<std::size_t>(v)] == -1) {
            comp[static_cast<std::size_t>(v)] = num_comps;
            frontier.push_back(v);
          }
        }
      };
      for (ChanId c : prim.in) visit(c);
      for (ChanId c : prim.out) visit(c);
    }
    ++num_comps;
  }
  std::vector<char> prunable(static_cast<std::size_t>(num_comps), 1);
  for (std::size_t p = 0; p < net.num_prims(); ++p) {
    const PrimKind kind = net.prims()[p].kind;
    if (kind == PrimKind::Source || kind == PrimKind::Automaton) {
      prunable[static_cast<std::size_t>(comp[p])] = 0;
    }
  }
  for (std::size_t c = 0; c < n; ++c) {
    if (!T[c].empty()) {
      const PrimId owner = net.channels()[c].initiator;
      prunable[static_cast<std::size_t>(comp[static_cast<std::size_t>(
          owner)])] = 0;
    }
  }
  for (std::size_t p = 0; p < net.num_prims(); ++p) {
    if (prunable[static_cast<std::size_t>(comp[p])] != 0) {
      result.prunable_prims.push_back(static_cast<PrimId>(p));
    }
  }
}

}  // namespace

AnalysisResult analyze(const Network& net) {
  AnalysisResult result;
  const bool wired = check_structure(net, result);
  check_combinational_cycles(net, result);
  if (!wired || result.has_errors()) return result;
  const std::size_t before = result.diagnostics.size();
  const std::vector<ColorSet> T = derive_checked(net, result);
  if (result.diagnostics.size() != before) return result;  // type errors
  check_liveness(net, T, result);
  return result;
}

Network prune_idle(const Network& net, const AnalysisResult& analysis) {
  Network out;
  out.colors() = net.colors();
  std::vector<char> drop(net.num_prims(), 0);
  for (PrimId p : analysis.prunable_prims) {
    drop[static_cast<std::size_t>(p)] = 1;
  }
  std::vector<PrimId> remap(net.num_prims(), -1);
  for (std::size_t i = 0; i < net.num_prims(); ++i) {
    if (drop[i] != 0) continue;
    const Primitive& p = net.prims()[i];
    switch (p.kind) {
      case PrimKind::Source:
        remap[i] = out.add_source(p.name, p.source_colors, p.fair);
        break;
      case PrimKind::Sink:
        remap[i] = out.add_sink(p.name, p.fair);
        break;
      case PrimKind::Queue:
        remap[i] = out.add_queue(p.name, p.capacity, p.fifo);
        break;
      case PrimKind::Function:
        remap[i] = out.add_function(p.name, p.func);
        break;
      case PrimKind::Fork:
        remap[i] = out.add_fork(p.name);
        break;
      case PrimKind::Join:
        remap[i] = out.add_join(p.name);
        break;
      case PrimKind::Switch:
        remap[i] = out.add_switch(p.name, static_cast<int>(p.out.size()),
                                  p.route);
        break;
      case PrimKind::Merge:
        remap[i] = out.add_merge(p.name, static_cast<int>(p.in.size()));
        break;
      case PrimKind::Automaton:
        remap[i] = out.add_automaton(net.automaton_of(p));
        break;
    }
  }
  for (std::size_t c = 0; c < net.num_channels(); ++c) {
    const xmas::Channel& ch = net.channels()[c];
    const PrimId from = remap[static_cast<std::size_t>(ch.initiator)];
    const PrimId to = remap[static_cast<std::size_t>(ch.target)];
    // Channels never straddle a component boundary, so a dropped endpoint
    // implies the whole channel was pruned with its component.
    if (from == -1 || to == -1) continue;
    out.connect(from, ch.init_port, to, ch.tgt_port, ch.name);
  }
  return out;
}

}  // namespace advocat::analysis
