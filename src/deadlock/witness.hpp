// Certified Sat verdicts: counterexample replay on the simulator.
//
// A Sat model of the block/idle query is only a deadlock *candidate* — the
// encoding over-approximates reachability, and the boolean fixpoint can
// mark cycles blocked that a concrete scheduler would drain. This module
// turns the model into a concrete sim::State and *replays* it on the
// executable semantics (src/sim):
//
//  1. decode    — read queue occupancies and automaton states out of the
//                 model via the shared variable-naming convention
//                 (varnames.hpp) and check the state is self-consistent
//                 (occupancy within capacity, exactly one active state per
//                 automaton).
//  2. replay    — for every fired deadlock disjunct, exhaustively explore
//                 the states reachable from the decoded state (bounded
//                 BFS) and confirm the claimed ingredient is genuinely
//                 wedged: a `source_blocked` source never initiates an
//                 injection, a `packet_stuck` queue holds a color that no
//                 reachable event pops, a `dead` automaton never moves.
//                 Confirmation requires the exploration to be exhaustive
//                 within the budget; a single reachable counter-event
//                 refutes a claim regardless of the budget.
//  3. minimize  — greedily empty queues whose contents are not needed for
//                 the blockage, re-replaying after each removal, until the
//                 witness is inclusion-minimal: it is still blocked, and
//                 emptying any single remaining blocking queue un-blocks
//                 it.
//
// The result is attached to core::VerifyResult as the Sat-side
// counterpart of the Unsat proof certificate (docs/PROOFS.md).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "smt/solver.hpp"
#include "xmas/network.hpp"
#include "xmas/typing.hpp"

namespace advocat::deadlock {

enum class ClaimStatus {
  Confirmed,     ///< exhaustively verified from the witness state
  Refuted,       ///< a reachable event contradicts the claim
  Inconclusive,  ///< state budget exhausted before a verdict
};

[[nodiscard]] const char* to_string(ClaimStatus s);

/// One fired deadlock disjunct (Report::fired tag) and its replay verdict.
struct WitnessClaim {
  std::string tag;
  ClaimStatus status = ClaimStatus::Inconclusive;
  /// Human-readable evidence: the refuting event label, the stuck color,
  /// or the budget note.
  std::string note;
};

struct WitnessOptions {
  /// Reachable-state budget per replay (the minimization pass re-replays
  /// once per removed-queue probe, each under the same budget).
  std::size_t max_states = 50'000;
  /// Run the greedy blocking-queue-set minimization after a confirmed
  /// replay.
  bool minimize = true;
};

/// A decoded, replayed, and (when blocked) minimized deadlock witness.
struct Witness {
  /// The concrete state decoded from the model. After minimization this is
  /// the *minimized* state (non-essential queues emptied).
  sim::State state;
  /// Simulator::describe of `state`.
  std::string state_text;

  /// Model/state decode agreed: occupancies within [0, capacity], one
  /// active state per automaton. Replay is skipped when false.
  bool consistent = false;
  /// Decode problems when !consistent.
  std::vector<std::string> inconsistencies;

  bool replayed = false;
  /// The replay BFS covered every state reachable from `state` within the
  /// budget. Claims can only be Confirmed on an exhaustive exploration.
  bool exhaustive = false;
  std::size_t states_explored = 0;

  /// Every fired disjunct's replay verdict.
  std::vector<WitnessClaim> claims;
  /// All claims Confirmed (and at least one claim): the candidate is a
  /// genuine blocked execution of the simulator semantics.
  bool blocked = false;

  /// Names of the queues whose contents the blockage needs, after greedy
  /// minimization (only populated when blocked).
  std::vector<std::string> blocking_queues;
  /// The minimization ran to a fixpoint: emptying any single queue in
  /// blocking_queues breaks the blockage.
  bool minimal = false;

  [[nodiscard]] std::string to_string() const;
  /// JSON object per the schema in docs/PROOFS.md.
  [[nodiscard]] std::string to_json() const;
};

/// Replays `state` against the given fired-disjunct tags: bounded BFS over
/// the states reachable from `state`, returning per-claim verdicts.
/// Exposed separately so tests can verify minimality directly (empty one
/// blocking queue, re-replay, expect a broken claim).
[[nodiscard]] std::vector<WitnessClaim> replay_claims(
    const xmas::Network& net, const sim::State& state,
    const std::vector<std::string>& tags, std::size_t max_states,
    std::size_t* states_explored = nullptr, bool* exhaustive = nullptr);

/// Decodes the model, replays every fired claim, and minimizes the
/// blocking queue set (see file comment). `fired` is Report::fired.
[[nodiscard]] Witness build_witness(const xmas::Network& net,
                                    const xmas::Typing& typing,
                                    const smt::Model& model,
                                    const std::vector<std::string>& fired,
                                    const WitnessOptions& options = {});

}  // namespace advocat::deadlock
