#include "deadlock/encoder.hpp"

#include <stdexcept>

#include "deadlock/varnames.hpp"

namespace advocat::deadlock {

using xmas::ChanId;
using xmas::ColorId;
using xmas::ColorSet;
using xmas::PrimId;
using xmas::PrimKind;
using xmas::Primitive;

namespace {

std::uint64_t key(ChanId c, ColorId d) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c)) << 32) |
         static_cast<std::uint32_t>(d);
}

}  // namespace

Encoder::Encoder(const xmas::Network& net, const xmas::Typing& typing,
                 smt::ExprFactory& factory, EncoderOptions options)
    : net_(net), typing_(typing), f_(factory), options_(options) {}

smt::ExprId Encoder::capacity_expr(PrimId queue) {
  if (options_.symbolic_capacities) {
    return f_.int_var(cap_var_name(net_, queue));
  }
  return f_.int_const(
      static_cast<std::int64_t>(net_.prim(queue).capacity));
}

smt::ExprId Encoder::occ(PrimId queue, ColorId d) {
  return f_.int_var(occ_var_name(net_, queue, d));
}

smt::ExprId Encoder::nonneg(smt::ExprId v) {
  return f_.ge(v, f_.int_const(0));
}

smt::ExprId Encoder::state(int automaton_index, int s) {
  return f_.int_var(state_var_name(net_, automaton_index, s));
}

smt::ExprId Encoder::block(ChanId c, ColorId d) {
  const std::uint64_t k = key(c, d);
  auto it = block_vars_.find(k);
  if (it != block_vars_.end()) return it->second;
  const smt::ExprId var = f_.bool_var(
      "Blk[" + net_.channel_name(c) + ":" + net_.colors().name(d) + "]");
  block_vars_.emplace(k, var);  // insert before recursing (cycles)
  defs_.push_back(f_.iff(var, block_rhs(c, d)));
  return var;
}

smt::ExprId Encoder::idle(ChanId c, ColorId d) {
  const std::uint64_t k = key(c, d);
  auto it = idle_vars_.find(k);
  if (it != idle_vars_.end()) return it->second;
  const smt::ExprId var = f_.bool_var(
      "Idl[" + net_.channel_name(c) + ":" + net_.colors().name(d) + "]");
  idle_vars_.emplace(k, var);
  defs_.push_back(f_.iff(var, idle_rhs(c, d)));
  return var;
}

smt::ExprId Encoder::dead(int automaton_index) {
  auto it = dead_vars_.find(automaton_index);
  if (it != dead_vars_.end()) return it->second;
  const xmas::Automaton& a =
      net_.automata().at(static_cast<std::size_t>(automaton_index));
  const smt::ExprId var = f_.bool_var("Dead[" + a.name + "]");
  dead_vars_.emplace(automaton_index, var);
  defs_.push_back(f_.iff(var, dead_rhs(automaton_index)));
  return var;
}

smt::ExprId Encoder::idle_all(ChanId c) {
  std::vector<smt::ExprId> parts;
  for (ColorId d : typing_.of(c)) parts.push_back(idle(c, d));
  return f_.and_(std::move(parts));
}

smt::ExprId Encoder::block_of_emission(
    const Primitive& prim, const std::optional<xmas::Emission>& em) {
  if (!em.has_value()) return f_.bool_const(false);  // block(⊥) = False
  const auto [port, color] = *em;
  return block(prim.out.at(static_cast<std::size_t>(port)), color);
}

smt::ExprId Encoder::block_rhs(ChanId c, ColorId d) {
  const xmas::Channel& ch = net_.channel(c);
  const Primitive& p = net_.prim(ch.target);
  const int port = ch.tgt_port;
  switch (p.kind) {
    case PrimKind::Queue: {
      const PrimId q = ch.target;
      const ColorSet& stored = typing_.of(p.in[0]);
      // full: Σ_d' #q.d' = capacity
      std::vector<smt::ExprId> occs;
      for (ColorId d2 : stored) occs.push_back(occ(q, d2));
      const smt::ExprId full = f_.eq(f_.add(occs), capacity_expr(q));
      const ColorSet& out_colors = typing_.of(p.out[0]);
      if (p.fifo) {
        // FIFO: blocked iff full and some stored packet (potentially at the
        // head) is permanently stuck.
        std::vector<smt::ExprId> some_stuck;
        for (ColorId d2 : out_colors) {
          some_stuck.push_back(f_.and_(
              {f_.ge(occ(q, d2), f_.int_const(1)), block(p.out[0], d2)}));
        }
        return f_.and_({full, f_.or_(std::move(some_stuck))});
      }
      // Bag ("stall & requeue"): blocked iff full and *every* stored packet
      // is permanently stuck (any consumable packet eventually frees space).
      std::vector<smt::ExprId> all_stuck;
      for (ColorId d2 : out_colors) {
        all_stuck.push_back(f_.or_(
            {f_.eq(occ(q, d2), f_.int_const(0)), block(p.out[0], d2)}));
      }
      return f_.and_({full, f_.and_(std::move(all_stuck))});
    }
    case PrimKind::Sink:
      return f_.bool_const(!p.fair);  // fair sink never blocks; dead always
    case PrimKind::Function:
      return block(p.out[0], p.func(d));
    case PrimKind::Fork:
      // Both outputs must be ready; blocked if either is blocked.
      return f_.or_({block(p.out[0], d), block(p.out[1], d)});
    case PrimKind::Join: {
      const ChanId data_in = p.in[0];
      const ChanId token_in = p.in[1];
      if (port == 0) {
        // Data side: output stuck, or the token never arrives.
        return f_.or_({block(p.out[0], d), idle_all(token_in)});
      }
      // Token side: stuck iff for every data color, it never arrives or the
      // output is blocked for it.
      std::vector<smt::ExprId> parts;
      for (ColorId d2 : typing_.of(data_in)) {
        parts.push_back(f_.or_({idle(data_in, d2), block(p.out[0], d2)}));
      }
      return f_.and_(std::move(parts));
    }
    case PrimKind::Switch: {
      const int out_port = p.route(d);
      if (out_port < 0 || static_cast<std::size_t>(out_port) >= p.out.size())
        return f_.bool_const(true);  // unroutable colors are never accepted
      return block(p.out[static_cast<std::size_t>(out_port)], d);
    }
    case PrimKind::Merge:
      // Fair arbitration: an input is permanently refused only if the
      // output is permanently blocked.
      return block(p.out[0], d);
    case PrimKind::Automaton: {
      const xmas::Automaton& a = net_.automaton_of(p);
      bool some_guard = false;
      for (const auto& t : a.transitions) {
        if (t.guard(port, d)) {
          some_guard = true;
          break;
        }
      }
      // Paper: block(i,d) = (∀t. ¬ε(i,d)) ∨ dead_A.
      if (!some_guard) return f_.bool_const(true);
      return dead(p.automaton);
    }
    case PrimKind::Source:
      break;  // sources have no in-ports
  }
  throw std::logic_error("block_rhs: bad target primitive");
}

smt::ExprId Encoder::idle_rhs(ChanId c, ColorId d) {
  const xmas::Channel& ch = net_.channel(c);
  const Primitive& p = net_.prim(ch.initiator);
  const int port = ch.init_port;
  switch (p.kind) {
    case PrimKind::Source:
      // Fair sources always eventually offer each of their colors.
      return f_.bool_const(!(p.fair && xmas::set_contains(p.source_colors, d)));
    case PrimKind::Queue: {
      // d never leaves the queue iff it is not stored and it can stop
      // *entering* forever — either the initiator stops offering it (idle)
      // or the queue input is permanently refused (blocked) while d waits
      // upstream. Omitting the blocked disjunct makes the encoding miss
      // real deadlocks where a packet is wedged behind a saturated queue.
      const PrimId q = ch.initiator;
      return f_.and_({f_.eq(occ(q, d), f_.int_const(0)),
                      f_.or_({idle(p.in[0], d), block(p.in[0], d)})});
    }
    case PrimKind::Function: {
      // Idle iff every preimage is idle (no preimage -> never produced).
      std::vector<smt::ExprId> parts;
      for (ColorId d0 : typing_.of(p.in[0])) {
        if (p.func(d0) == d) parts.push_back(idle(p.in[0], d0));
      }
      return f_.and_(std::move(parts));
    }
    case PrimKind::Fork: {
      // This output sees d iff the input offers it and the *other* output
      // can accept it (fork transfers are simultaneous).
      const ChanId other = p.out[port == 0 ? 1 : 0];
      return f_.or_({idle(p.in[0], d), block(other, d)});
    }
    case PrimKind::Join:
      // Output data comes from in-port 0; needs the token too.
      return f_.or_({idle(p.in[0], d), idle_all(p.in[1])});
    case PrimKind::Switch: {
      if (p.route(d) != port) return f_.bool_const(true);
      return idle(p.in[0], d);
    }
    case PrimKind::Merge: {
      std::vector<smt::ExprId> parts;
      for (ChanId in : p.in) {
        if (xmas::set_contains(typing_.of(in), d)) parts.push_back(idle(in, d));
      }
      return f_.and_(std::move(parts));
    }
    case PrimKind::Automaton: {
      const xmas::Automaton& a = net_.automaton_of(p);
      // Paper: idle(o,d') = (∀t,i,d. ε(i,d) -> φ(i,d) ≠ (o,d')) ∨ dead_A.
      bool some_producer = false;
      for (const auto& t : a.transitions) {
        for (int i = 0; i < a.num_in && !some_producer; ++i) {
          for (ColorId d0 : typing_.of(p.in[static_cast<std::size_t>(i)])) {
            if (!t.guard(i, d0)) continue;
            auto em = t.transform(i, d0);
            if (em.has_value() && em->first == port && em->second == d) {
              some_producer = true;
              break;
            }
          }
        }
        if (some_producer) break;
      }
      if (!some_producer) return f_.bool_const(true);
      return dead(p.automaton);
    }
    case PrimKind::Sink:
      break;  // sinks have no out-ports
  }
  throw std::logic_error("idle_rhs: bad initiator primitive");
}

smt::ExprId Encoder::dead_rhs(int automaton_index) {
  const xmas::Automaton& a =
      net_.automata().at(static_cast<std::size_t>(automaton_index));
  const Primitive& p = net_.prim(net_.automaton_prim(automaton_index));
  std::vector<smt::ExprId> per_state;
  for (int s = 0; s < a.num_states(); ++s) {
    std::vector<smt::ExprId> all_transitions_dead;
    for (const auto& t : a.transitions) {
      if (t.from != s) continue;
      // A transition is dead iff every packet that could trigger it either
      // never arrives (idle) or cannot be forwarded (block of φ).
      std::vector<smt::ExprId> parts;
      for (int i = 0; i < a.num_in; ++i) {
        const ChanId in = p.in[static_cast<std::size_t>(i)];
        for (ColorId d : typing_.of(in)) {
          if (!t.guard(i, d)) continue;
          parts.push_back(f_.or_(
              {block_of_emission(p, t.transform(i, d)), idle(in, d)}));
        }
      }
      all_transitions_dead.push_back(f_.and_(std::move(parts)));
    }
    per_state.push_back(
        f_.and_({f_.eq(state(automaton_index, s), f_.int_const(1)),
                 f_.and_(std::move(all_transitions_dead))}));
  }
  return f_.or_(std::move(per_state));
}

Encoding Encoder::encode() {
  if (encoded_) throw std::logic_error("Encoder::encode called twice");
  encoded_ = true;
  Encoding enc;

  // Structural constraints for every queue and automaton — each emitted
  // in the canonical theory-row shape (variables left, constant right),
  // so the solver's interval and simplex layers consume them directly.
  for (PrimId qid : net_.prims_of_kind(PrimKind::Queue)) {
    const Primitive& q = net_.prim(qid);
    const smt::ExprId cap = capacity_expr(qid);
    if (options_.symbolic_capacities) {
      enc.capacity_vars.emplace_back(qid, cap);
      enc.structural.push_back(nonneg(cap));
    }
    const ColorSet& stored = typing_.of(q.in[0]);
    std::vector<smt::ExprId> occs;
    for (ColorId d : stored) {
      const smt::ExprId v = occ(qid, d);
      enc.structural.push_back(nonneg(v));
      occs.push_back(v);
    }
    if (!occs.empty()) {
      enc.structural.push_back(f_.le(f_.add(occs), cap));
    }
  }
  for (std::size_t ai = 0; ai < net_.automata().size(); ++ai) {
    const xmas::Automaton& a = net_.automata()[ai];
    std::vector<smt::ExprId> states;
    for (int s = 0; s < a.num_states(); ++s) {
      const smt::ExprId v = state(static_cast<int>(ai), s);
      enc.structural.push_back(nonneg(v));
      enc.structural.push_back(f_.le(v, f_.int_const(1)));
      states.push_back(v);
    }
    enc.structural.push_back(f_.eq(f_.add(states), f_.int_const(1)));
  }

  // Deadlock disjuncts.
  std::vector<smt::ExprId> disjuncts;
  for (PrimId sid : net_.prims_of_kind(PrimKind::Source)) {
    const Primitive& s = net_.prim(sid);
    if (!s.fair) continue;
    std::vector<smt::ExprId> parts;
    for (ColorId d : s.source_colors) parts.push_back(block(s.out[0], d));
    const smt::ExprId e = f_.or_(std::move(parts));
    enc.disjuncts.emplace_back("source_blocked:" + s.name, e);
    disjuncts.push_back(e);
  }
  for (PrimId qid : net_.prims_of_kind(PrimKind::Queue)) {
    const Primitive& q = net_.prim(qid);
    std::vector<smt::ExprId> parts;
    for (ColorId d : typing_.of(q.out[0])) {
      parts.push_back(
          f_.and_({f_.ge(occ(qid, d), f_.int_const(1)), block(q.out[0], d)}));
    }
    const smt::ExprId e = f_.or_(std::move(parts));
    enc.disjuncts.emplace_back("packet_stuck:" + q.name, e);
    disjuncts.push_back(e);
  }
  for (std::size_t ai = 0; ai < net_.automata().size(); ++ai) {
    const smt::ExprId e = dead(static_cast<int>(ai));
    enc.disjuncts.emplace_back("dead:" + net_.automata()[ai].name, e);
    disjuncts.push_back(e);
  }
  enc.deadlock = f_.or_(std::move(disjuncts));
  enc.definitions = defs_;
  return enc;
}

}  // namespace advocat::deadlock
