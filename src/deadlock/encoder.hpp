// Deadlock detection via block/idle equations (Section 3 of the paper,
// after Gotmanov, Chatterjee & Kishinevsky, VMCAI'11).
//
// A channel is permanently *blocked* for color d when its trdy can stay low
// forever while the initiator wants to transfer d; it is permanently *idle*
// for d when d can stop arriving forever. Both relations are given
// definitional equations per primitive kind; an automaton is *dead* when it
// sits in a state whose outgoing transitions are all permanently disabled.
//
// The encoder instantiates boolean variables Blk[c:d], Idl[c:d], Dead[A]
// lazily (only the cone of the deadlock condition), asserts their
// definitions as <->, and produces the deadlock condition
//     (some fair source permanently refused)
//  \/ (some queue holds a packet that can never leave)
//  \/ (some automaton dead).
// SAT models are deadlock *candidates* (the encoding over-approximates
// reachability); conjoining flow invariants (src/invariants) prunes
// unreachable candidates, and UNSAT proves deadlock freedom.
//
// Structural precondition (standard for block/idle reasoning): two fork
// outputs must not reconverge combinationally at one merge or join-input
// pair — such a fork can never transfer (the merge grants one input per
// cycle while the fork needs both accepted simultaneously), which the
// equations do not model. Buffer fork branches with queues, as real
// designs do.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "smt/expr.hpp"
#include "xmas/network.hpp"
#include "xmas/typing.hpp"

namespace advocat::deadlock {

struct EncoderOptions {
  /// Encode each queue's capacity as a fresh integer variable (see
  /// cap_var_name in varnames.hpp) instead of baking in the
  /// Primitive::capacity constant. The encoding then contains no capacity
  /// constants at all; a session binds the variables per check via solver
  /// assumptions `C[q] = k` (Encoding::capacity_vars), which is what makes
  /// capacity probing a sequence of assumption flips instead of a
  /// re-encode.
  bool symbolic_capacities = false;
};

struct Encoding {
  /// Domain constraints: occupancy bounds, Σ_d #q.d <= capacity,
  /// Σ_s A.s = 1 with 0 <= A.s <= 1.
  std::vector<smt::ExprId> structural;
  /// Definitional equivalences for every instantiated Blk/Idl/Dead variable.
  std::vector<smt::ExprId> definitions;
  /// The deadlock candidate condition (assert this and check SAT).
  smt::ExprId deadlock = smt::kNoExpr;
  /// Tagged disjuncts of `deadlock` for witness reporting.
  std::vector<std::pair<std::string, smt::ExprId>> disjuncts;
  /// (queue, capacity variable) per queue, in network order; populated only
  /// under EncoderOptions::symbolic_capacities. The encoding leaves these
  /// variables unbounded above — every check must assume a binding for each
  /// or the query is vacuously Sat.
  std::vector<std::pair<xmas::PrimId, smt::ExprId>> capacity_vars;

  [[nodiscard]] std::vector<smt::ExprId> all_assertions() const {
    std::vector<smt::ExprId> out = structural;
    out.insert(out.end(), definitions.begin(), definitions.end());
    out.push_back(deadlock);
    return out;
  }
};

class Encoder {
 public:
  Encoder(const xmas::Network& net, const xmas::Typing& typing,
          smt::ExprFactory& factory, EncoderOptions options = {});

  /// Builds the full encoding. Idempotent per instance.
  Encoding encode();

  // Exposed for tests and witness decoding.
  [[nodiscard]] smt::ExprId occ(xmas::PrimId queue, xmas::ColorId d);
  [[nodiscard]] smt::ExprId state(int automaton_index, int state);

 private:
  using ChanId = xmas::ChanId;
  using ColorId = xmas::ColorId;

  smt::ExprId block(ChanId c, ColorId d);
  smt::ExprId idle(ChanId c, ColorId d);
  smt::ExprId dead(int automaton_index);
  /// AND over all colors of c: idle(c, d)  ("no packet ever arrives").
  smt::ExprId idle_all(ChanId c);

  smt::ExprId block_rhs(ChanId c, ColorId d);
  smt::ExprId idle_rhs(ChanId c, ColorId d);
  smt::ExprId dead_rhs(int automaton_index);

  /// The queue's capacity as an expression: the symbolic variable under
  /// EncoderOptions::symbolic_capacities, the baked-in constant otherwise.
  smt::ExprId capacity_expr(xmas::PrimId queue);

  /// `0 ≤ v` in the canonical single-variable theory-row shape (see
  /// smt/rows.hpp): every structural constraint the encoder emits is a
  /// row the solver's theory layers consume directly.
  smt::ExprId nonneg(smt::ExprId v);

  /// Block of a transformation result: block(o, d') or false for ⊥.
  smt::ExprId block_of_emission(const xmas::Primitive& prim,
                                const std::optional<xmas::Emission>& em);

  const xmas::Network& net_;
  const xmas::Typing& typing_;
  smt::ExprFactory& f_;
  EncoderOptions options_;

  // Memoization keyed by (channel|automaton, color). Definitions are
  // appended to defs_ on first creation; a key present in the map with a
  // pending definition is fine because the variable already exists.
  std::unordered_map<std::uint64_t, smt::ExprId> block_vars_;
  std::unordered_map<std::uint64_t, smt::ExprId> idle_vars_;
  std::unordered_map<int, smt::ExprId> dead_vars_;
  std::vector<smt::ExprId> defs_;
  bool encoded_ = false;
};

}  // namespace advocat::deadlock
