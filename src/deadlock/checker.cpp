#include "deadlock/checker.hpp"

#include <sstream>

#include "deadlock/encoder.hpp"
#include "deadlock/varnames.hpp"
#include "smt/eval.hpp"
#include "util/stopwatch.hpp"

namespace advocat::deadlock {

std::string Report::to_string() const {
  std::ostringstream os;
  os << "verdict: "
     << (deadlock_free() ? "deadlock-free"
                         : (result == smt::SatResult::Sat ? "deadlock candidate"
                                                          : "unknown"))
     << " (encode " << encode_seconds << "s, solve " << solve_seconds << "s, "
     << num_definitions << " definitions)\n";
  if (result == smt::SatResult::Sat) {
    for (const auto& t : fired) os << "  fired: " << t << "\n";
    for (const auto& q : queue_contents) os << "  " << q << "\n";
    for (const auto& a : automaton_states) os << "  " << a << "\n";
  }
  return os.str();
}

void decode_witness(const xmas::Network& net, const xmas::Typing& typing,
                    const smt::ExprFactory& factory, const Encoding& enc,
                    const smt::Model& model, Report& report) {
  for (const auto& [tag, expr] : enc.disjuncts) {
    if (smt::eval_bool(factory, model, expr)) report.fired.push_back(tag);
  }
  for (xmas::PrimId qid : net.prims_of_kind(xmas::PrimKind::Queue)) {
    const xmas::Primitive& q = net.prim(qid);
    std::string line;
    for (xmas::ColorId d : typing.of(q.in[0])) {
      const std::int64_t n = model.int_value(occ_var_name(net, qid, d));
      if (n > 0) {
        if (!line.empty()) line += ", ";
        line += std::to_string(n) + " x " + net.colors().name(d);
      }
    }
    if (!line.empty()) report.queue_contents.push_back(q.name + ": " + line);
  }
  for (std::size_t ai = 0; ai < net.automata().size(); ++ai) {
    const xmas::Automaton& a = net.automata()[ai];
    for (int s = 0; s < a.num_states(); ++s) {
      if (model.int_value(state_var_name(net, static_cast<int>(ai), s)) == 1) {
        report.automaton_states.push_back(a.name + ": " + a.states[static_cast<std::size_t>(s)]);
      }
    }
  }
}

Report check(const xmas::Network& net, const xmas::Typing& typing,
             smt::ExprFactory& factory,
             const std::vector<smt::ExprId>& extra_assertions,
             unsigned timeout_ms, smt::Backend backend, unsigned threads) {
  Report report;
  util::Stopwatch watch;

  Encoder encoder(net, typing, factory);
  Encoding enc = encoder.encode();
  report.num_definitions = enc.definitions.size();
  report.encode_seconds = watch.seconds();

  auto solver = smt::make_solver(factory, backend);
  if (threads != 0) solver->set_threads(threads);
  for (smt::ExprId e : enc.structural) solver->add(e);
  for (smt::ExprId e : enc.definitions) solver->add(e);
  for (smt::ExprId e : extra_assertions) solver->add(e);
  solver->add(enc.deadlock);

  watch.reset();
  report.result = solver->check(timeout_ms);
  report.solve_seconds = watch.seconds();
  report.solve_stats = solver->solve_stats();

  if (report.result != smt::SatResult::Sat) return report;
  decode_witness(net, typing, factory, enc, solver->model(), report);
  return report;
}

}  // namespace advocat::deadlock
