// End-to-end deadlock check: encode, assert optional invariants, solve,
// decode the witness.
#pragma once

#include <string>
#include <vector>

#include "deadlock/encoder.hpp"
#include "smt/expr.hpp"
#include "smt/solver.hpp"
#include "xmas/network.hpp"
#include "xmas/typing.hpp"

namespace advocat::deadlock {

struct Report {
  smt::SatResult result = smt::SatResult::Unknown;
  /// Human-readable verdict: result == Unsat means deadlock-free.
  [[nodiscard]] bool deadlock_free() const {
    return result == smt::SatResult::Unsat;
  }

  /// Disjunct tags that evaluate true in the model (Sat only).
  std::vector<std::string> fired;
  /// "queue: k x color" occupancy lines of the candidate (Sat only).
  std::vector<std::string> queue_contents;
  /// "automaton: state" lines of the candidate (Sat only).
  std::vector<std::string> automaton_states;

  double encode_seconds = 0.0;
  double solve_seconds = 0.0;
  std::size_t num_definitions = 0;
  /// Session-cumulative solver effort at the time of this check (see
  /// smt::SolveStats; exact for the native backend, best-effort for Z3).
  smt::SolveStats solve_stats;

  [[nodiscard]] std::string to_string() const;
};

/// Runs the block/idle deadlock query. `extra_assertions` (typically the
/// generated invariants) are conjoined; they must come from `factory`.
/// `timeout_ms` 0 = no limit. `backend` selects the solver (Auto = Z3 when
/// compiled in, native otherwise). `threads` requests parallel search
/// workers inside the solver check (see smt::Solver::set_threads); 0 keeps
/// the ADVOCAT_THREADS environment default.
Report check(const xmas::Network& net, const xmas::Typing& typing,
             smt::ExprFactory& factory,
             const std::vector<smt::ExprId>& extra_assertions = {},
             unsigned timeout_ms = 0,
             smt::Backend backend = smt::Backend::Auto,
             unsigned threads = 0);

/// Decodes a Sat model into the witness fields of `report` (fired
/// disjuncts, queue contents, automaton states). Shared between the
/// one-shot check() above and the incremental core::Verifier session.
void decode_witness(const xmas::Network& net, const xmas::Typing& typing,
                    const smt::ExprFactory& factory, const Encoding& enc,
                    const smt::Model& model, Report& report);

}  // namespace advocat::deadlock
