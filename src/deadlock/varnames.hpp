// Shared variable-naming convention for state variables.
//
// The deadlock encoder (src/deadlock) and the invariant generator
// (src/invariants) must agree on SMT variable names so that invariants can
// be asserted into the deadlock query:
//   occupancy  #q.d     ->  "N[<queue>.<color>]"      (Int, >= 0)
//   automaton  A.s      ->  "S[<automaton>.<state>]"  (Int, 0/1)
//   capacity   cap(q)   ->  "C[<queue>]"              (Int, >= 0; only under
//                            symbolic-capacity encodings, bound per check by
//                            solver assumptions)
#pragma once

#include <string>

#include "xmas/network.hpp"

namespace advocat {

[[nodiscard]] inline std::string occ_var_name(const xmas::Network& net,
                                              xmas::PrimId queue,
                                              xmas::ColorId color) {
  return "N[" + net.prim(queue).name + "." + net.colors().name(color) + "]";
}

[[nodiscard]] inline std::string cap_var_name(const xmas::Network& net,
                                              xmas::PrimId queue) {
  return "C[" + net.prim(queue).name + "]";
}

[[nodiscard]] inline std::string state_var_name(const xmas::Network& net,
                                                int automaton_index,
                                                int state) {
  const xmas::Automaton& a =
      net.automata().at(static_cast<std::size_t>(automaton_index));
  return "S[" + a.name + "." + a.states.at(static_cast<std::size_t>(state)) + "]";
}

}  // namespace advocat
