#include "deadlock/witness.hpp"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>
#include <unordered_set>

#include "deadlock/varnames.hpp"

namespace advocat::deadlock {

namespace {

using xmas::ColorId;
using xmas::PrimId;
using xmas::PrimKind;

/// A parsed fired-disjunct tag (see Encoder::encode's tag construction).
struct Claim {
  enum class Kind { SourceBlocked, PacketStuck, Dead, Unknown };
  Kind kind = Kind::Unknown;
  std::string tag;
  PrimId source = -1;      ///< SourceBlocked
  int queue_ordinal = -1;  ///< PacketStuck
  int automaton = -1;      ///< Dead
};

Claim parse_tag(const xmas::Network& net, const sim::Simulator& sim,
                const std::string& tag) {
  Claim c;
  c.tag = tag;
  const auto colon = tag.find(':');
  if (colon == std::string::npos) return c;
  const std::string kind = tag.substr(0, colon);
  const std::string name = tag.substr(colon + 1);
  if (kind == "source_blocked") {
    for (PrimId s : net.prims_of_kind(PrimKind::Source)) {
      if (net.prim(s).name == name) {
        c.kind = Claim::Kind::SourceBlocked;
        c.source = s;
        return c;
      }
    }
  } else if (kind == "packet_stuck") {
    for (PrimId q : net.prims_of_kind(PrimKind::Queue)) {
      if (net.prim(q).name == name) {
        c.kind = Claim::Kind::PacketStuck;
        c.queue_ordinal = sim.ordinal_of(q);
        return c;
      }
    }
  } else if (kind == "dead") {
    for (std::size_t ai = 0; ai < net.automata().size(); ++ai) {
      if (net.automata()[ai].name == name) {
        c.kind = Claim::Kind::Dead;
        c.automaton = static_cast<int>(ai);
        return c;
      }
    }
  }
  return c;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    if (ch == '\n') {
      out += "\\n";
      continue;
    }
    out += ch;
  }
  return out;
}

}  // namespace

const char* to_string(ClaimStatus s) {
  switch (s) {
    case ClaimStatus::Confirmed:
      return "confirmed";
    case ClaimStatus::Refuted:
      return "refuted";
    case ClaimStatus::Inconclusive:
      return "inconclusive";
  }
  return "?";
}

std::vector<WitnessClaim> replay_claims(const xmas::Network& net,
                                        const sim::State& state,
                                        const std::vector<std::string>& tags,
                                        std::size_t max_states,
                                        std::size_t* states_explored,
                                        bool* exhaustive) {
  const sim::Simulator sim(net);
  std::vector<Claim> claims;
  claims.reserve(tags.size());
  for (const std::string& t : tags) claims.push_back(parse_tag(net, sim, t));

  // Per-claim refutation evidence gathered during the sweep.
  std::vector<std::string> refuted_by(claims.size());
  // PacketStuck: the colors stored at the witness state, minus every color
  // a reachable event pops from that queue. A survivor is a stuck packet.
  std::vector<std::set<ColorId>> stuck(claims.size());
  for (std::size_t i = 0; i < claims.size(); ++i) {
    if (claims[i].kind == Claim::Kind::PacketStuck) {
      const auto& content =
          state.queues[static_cast<std::size_t>(claims[i].queue_ordinal)];
      stuck[i].insert(content.begin(), content.end());
    }
  }

  std::unordered_set<sim::State, sim::StateHash> visited{state};
  std::deque<sim::State> frontier{state};
  bool truncated = false;
  std::size_t explored = 0;
  while (!frontier.empty()) {
    const sim::State cur = std::move(frontier.front());
    frontier.pop_front();
    ++explored;
    for (const sim::Event& e : sim.events(cur)) {
      for (std::size_t i = 0; i < claims.size(); ++i) {
        const Claim& c = claims[i];
        switch (c.kind) {
          case Claim::Kind::SourceBlocked:
            if (e.initiator == c.source && refuted_by[i].empty()) {
              refuted_by[i] = "reachable injection: " + e.label;
            }
            break;
          case Claim::Kind::PacketStuck:
            for (const auto& [qo, pos] : e.effects.pops) {
              if (qo == c.queue_ordinal) {
                stuck[i].erase(
                    cur.queues[static_cast<std::size_t>(qo)]
                              [static_cast<std::size_t>(pos)]);
              }
            }
            break;
          case Claim::Kind::Dead:
            if (refuted_by[i].empty()) {
              for (const auto& [ai, to] : e.effects.moves) {
                (void)to;  // a self-loop transition still fires
                if (ai == c.automaton) {
                  refuted_by[i] = "reachable transition: " + e.label;
                  break;
                }
              }
            }
            break;
          case Claim::Kind::Unknown:
            break;
        }
      }
      if (visited.count(e.next) == 0) {
        if (visited.size() >= max_states) {
          truncated = true;
          continue;
        }
        visited.insert(e.next);
        frontier.push_back(e.next);
      }
    }
  }
  if (states_explored != nullptr) *states_explored = explored;
  if (exhaustive != nullptr) *exhaustive = !truncated;

  std::vector<WitnessClaim> out;
  out.reserve(claims.size());
  for (std::size_t i = 0; i < claims.size(); ++i) {
    WitnessClaim w;
    w.tag = claims[i].tag;
    switch (claims[i].kind) {
      case Claim::Kind::SourceBlocked:
      case Claim::Kind::Dead:
        if (!refuted_by[i].empty()) {
          w.status = ClaimStatus::Refuted;
          w.note = refuted_by[i];
        } else if (truncated) {
          w.status = ClaimStatus::Inconclusive;
          w.note = "state budget exhausted";
        } else {
          w.status = ClaimStatus::Confirmed;
        }
        break;
      case Claim::Kind::PacketStuck:
        if (!stuck[i].empty()) {
          // A color no reachable event pops: stuck under every scheduler.
          // Valid only if we saw the whole reachable space.
          w.status =
              truncated ? ClaimStatus::Inconclusive : ClaimStatus::Confirmed;
          w.note = truncated
                       ? "state budget exhausted"
                       : "stuck color: " + net.colors().name(*stuck[i].begin());
        } else {
          w.status = ClaimStatus::Refuted;
          w.note = "every stored color has a reachable pop";
        }
        break;
      case Claim::Kind::Unknown:
        w.status = ClaimStatus::Inconclusive;
        w.note = "unrecognized claim tag";
        break;
    }
    out.push_back(std::move(w));
  }
  return out;
}

namespace {

bool all_confirmed(const std::vector<WitnessClaim>& claims) {
  if (claims.empty()) return false;
  return std::all_of(claims.begin(), claims.end(), [](const WitnessClaim& c) {
    return c.status == ClaimStatus::Confirmed;
  });
}

/// Tags still applicable to `state`: packet_stuck claims for queues that
/// are now empty make no assertion and are dropped.
std::vector<std::string> applicable_tags(const xmas::Network& net,
                                         const sim::Simulator& sim,
                                         const sim::State& state,
                                         const std::vector<std::string>& tags) {
  std::vector<std::string> out;
  for (const std::string& t : tags) {
    const Claim c = parse_tag(net, sim, t);
    if (c.kind == Claim::Kind::PacketStuck &&
        state.queues[static_cast<std::size_t>(c.queue_ordinal)].empty()) {
      continue;
    }
    out.push_back(t);
  }
  return out;
}

}  // namespace

Witness build_witness(const xmas::Network& net, const xmas::Typing& typing,
                      const smt::Model& model,
                      const std::vector<std::string>& fired,
                      const WitnessOptions& options) {
  Witness w;
  const sim::Simulator sim(net);

  // ---- decode: model -> sim::State, with consistency checks.
  w.state.queues.resize(sim.num_queues());
  w.consistent = true;
  for (std::size_t qi = 0; qi < sim.num_queues(); ++qi) {
    const PrimId qid = sim.queue_prim(static_cast<int>(qi));
    const xmas::Primitive& q = net.prim(qid);
    std::size_t total = 0;
    for (ColorId d : typing.of(q.in[0])) {
      const std::int64_t n = model.int_value(occ_var_name(net, qid, d));
      if (n < 0) {
        w.consistent = false;
        w.inconsistencies.push_back(q.name + ": negative occupancy of " +
                                    net.colors().name(d));
        continue;
      }
      total += static_cast<std::size_t>(n);
      // The model constrains the occupancy multiset, not the order; any
      // linearization is faithful to the counts-based encoding (bag
      // queues consume in any order, and the block/idle equations never
      // inspect FIFO positions).
      for (std::int64_t k = 0; k < n; ++k) w.state.queues[qi].push_back(d);
    }
    if (total > q.capacity) {
      w.consistent = false;
      w.inconsistencies.push_back(q.name + ": occupancy " +
                                  std::to_string(total) + " > capacity " +
                                  std::to_string(q.capacity));
    }
  }
  for (std::size_t ai = 0; ai < net.automata().size(); ++ai) {
    const xmas::Automaton& a = net.automata()[ai];
    int active = -1;
    int count = 0;
    for (int s = 0; s < a.num_states(); ++s) {
      if (model.int_value(state_var_name(net, static_cast<int>(ai), s)) == 1) {
        active = s;
        ++count;
      }
    }
    if (count != 1) {
      w.consistent = false;
      w.inconsistencies.push_back(a.name + ": " + std::to_string(count) +
                                  " active states");
      active = active < 0 ? a.initial : active;
    }
    w.state.aut_states.push_back(active);
  }
  w.state_text = sim.describe(w.state);
  if (!w.consistent) return w;

  // ---- replay: verify every fired claim from the decoded state.
  std::vector<std::string> tags = applicable_tags(net, sim, w.state, fired);
  w.claims =
      replay_claims(net, w.state, tags, options.max_states,
                    &w.states_explored, &w.exhaustive);
  w.replayed = true;
  w.blocked = all_confirmed(w.claims);
  if (!w.blocked || !options.minimize) {
    if (w.blocked) {
      for (std::size_t qi = 0; qi < sim.num_queues(); ++qi) {
        if (!w.state.queues[qi].empty()) {
          w.blocking_queues.push_back(
              net.prim(sim.queue_prim(static_cast<int>(qi))).name);
        }
      }
    }
    return w;
  }

  // ---- minimize: greedily empty queues whose contents the blockage does
  // not need. Passes repeat until none can be removed, so the final set is
  // inclusion-minimal: every single-queue removal was re-replayed against
  // the final state and broke a claim.
  bool removed = true;
  while (removed) {
    removed = false;
    for (std::size_t qi = 0; qi < sim.num_queues(); ++qi) {
      if (w.state.queues[qi].empty()) continue;
      sim::State probe = w.state;
      probe.queues[qi].clear();
      const std::vector<std::string> probe_tags =
          applicable_tags(net, sim, probe, tags);
      if (probe_tags.empty()) continue;  // nothing left to claim: essential
      bool probe_exhaustive = false;
      const std::vector<WitnessClaim> verdicts = replay_claims(
          net, probe, probe_tags, options.max_states, nullptr,
          &probe_exhaustive);
      if (probe_exhaustive && all_confirmed(verdicts)) {
        w.state = std::move(probe);
        w.claims = verdicts;
        tags = probe_tags;
        removed = true;
      }
    }
  }
  w.minimal = true;
  w.state_text = sim.describe(w.state);
  for (std::size_t qi = 0; qi < sim.num_queues(); ++qi) {
    if (!w.state.queues[qi].empty()) {
      w.blocking_queues.push_back(
          net.prim(sim.queue_prim(static_cast<int>(qi))).name);
    }
  }
  return w;
}

std::string Witness::to_string() const {
  std::ostringstream os;
  os << "witness: "
     << (!consistent ? "inconsistent model decode"
         : blocked   ? "confirmed blocked execution"
                     : "not confirmed")
     << " (" << states_explored << " states"
     << (exhaustive ? ", exhaustive" : ", truncated") << ")\n";
  for (const std::string& p : inconsistencies) os << "  decode: " << p << "\n";
  for (const WitnessClaim& c : claims) {
    os << "  " << c.tag << ": " << deadlock::to_string(c.status);
    if (!c.note.empty()) os << " (" << c.note << ")";
    os << "\n";
  }
  if (blocked) {
    os << "  blocking queues:";
    for (const std::string& q : blocking_queues) os << " " << q;
    os << (minimal ? " (minimal)" : "") << "\n";
  }
  return os.str();
}

std::string Witness::to_json() const {
  std::ostringstream os;
  os << "{\"consistent\":" << (consistent ? "true" : "false")
     << ",\"replayed\":" << (replayed ? "true" : "false")
     << ",\"blocked\":" << (blocked ? "true" : "false")
     << ",\"exhaustive\":" << (exhaustive ? "true" : "false")
     << ",\"states_explored\":" << states_explored << ",\"claims\":[";
  for (std::size_t i = 0; i < claims.size(); ++i) {
    if (i != 0) os << ",";
    os << "{\"tag\":\"" << json_escape(claims[i].tag) << "\",\"status\":\""
       << deadlock::to_string(claims[i].status) << "\",\"note\":\""
       << json_escape(claims[i].note) << "\"}";
  }
  os << "],\"blocking_queues\":[";
  for (std::size_t i = 0; i < blocking_queues.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"" << json_escape(blocking_queues[i]) << "\"";
  }
  os << "],\"minimal\":" << (minimal ? "true" : "false") << ",\"state\":\""
     << json_escape(state_text) << "\"}";
  return os.str();
}

}  // namespace advocat::deadlock
