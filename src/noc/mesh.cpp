#include "noc/mesh.hpp"

#include <memory>
#include <stdexcept>

#include "util/strings.hpp"

namespace advocat::noc {

using xmas::ChanId;
using xmas::ColorId;
using xmas::Network;
using xmas::PrimId;

namespace {

constexpr const char* kDirNames[kNumDirs] = {"E", "W", "N", "S"};

int opposite(int d) {
  switch (d) {
    case East: return West;
    case West: return East;
    case North: return South;
    case South: return North;
  }
  return -1;
}

/// Neighbor node id in direction d, or -1 outside the mesh.
int neighbor(int width, int height, int n, int d) {
  const int x = n % width;
  const int y = n / width;
  switch (d) {
    case East: return x + 1 < width ? node_id(width, x + 1, y) : -1;
    case West: return x - 1 >= 0 ? node_id(width, x - 1, y) : -1;
    case North: return y - 1 >= 0 ? node_id(width, x, y - 1) : -1;
    case South: return y + 1 < height ? node_id(width, x, y + 1) : -1;
  }
  return -1;
}

}  // namespace

int xy_next_hop(int width, int from, int dst) {
  const int fx = from % width;
  const int fy = from / width;
  const int dx = dst % width;
  const int dy = dst / width;
  if (fx < dx) return East;
  if (fx > dx) return West;
  if (fy > dy) return North;
  if (fy < dy) return South;
  return -1;  // local
}

MeshStats build_mesh(Network& net, const MeshConfig& config,
                     const std::vector<NodeHook>& hooks) {
  const int w = config.width;
  const int h = config.height;
  const int nodes = w * h;
  const int vcs = config.num_vcs;
  if (static_cast<int>(hooks.size()) != nodes)
    throw std::invalid_argument("build_mesh: one hook per node required");
  if (vcs > 1 && !config.vc_of)
    throw std::invalid_argument("build_mesh: vc_of required with VCs");

  MeshStats stats;
  // Snapshot per-color routing data. The routing closures stored inside
  // switch primitives must not reference the Network, the MeshConfig, or
  // any other local (the network may be moved and the config dies with this
  // call). Colors interned after the mesh is built are unroutable, which is
  // the right default.
  auto color_dst = std::make_shared<std::vector<int>>();
  auto color_vc = std::make_shared<std::vector<int>>();
  for (std::size_t c = 0; c < net.colors().size(); ++c) {
    const xmas::ColorData& data = net.colors().get(static_cast<ColorId>(c));
    color_dst->push_back(data.dst);
    color_vc->push_back(vcs == 1 ? 0 : config.vc_of(data));
  }
  auto vc_class = [color_vc](ColorId d) {
    return static_cast<std::size_t>(d) < color_vc->size()
               ? (*color_vc)[static_cast<std::size_t>(d)]
               : 0;
  };

  // Per node: existing directions in canonical order.
  std::vector<std::vector<int>> dirs(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    for (int d = 0; d < kNumDirs; ++d) {
      if (neighbor(w, h, n, d) != -1) dirs[static_cast<std::size_t>(n)].push_back(d);
    }
  }
  // 1. Link input queues in_q[n][d][v] (packets arriving from direction d)
  //    and ejection bags.
  std::vector<std::vector<std::vector<PrimId>>> in_q(
      static_cast<std::size_t>(nodes),
      std::vector<std::vector<PrimId>>(kNumDirs));
  std::vector<PrimId> eject(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    for (int d : dirs[static_cast<std::size_t>(n)]) {
      for (int v = 0; v < vcs; ++v) {
        std::string name = util::cat("q_", n, "_", kDirNames[d]);
        if (vcs > 1) name += util::cat("_v", v);
        in_q[static_cast<std::size_t>(n)][static_cast<std::size_t>(d)].push_back(
            net.add_queue(name, config.link_capacity, config.link_fifo));
        ++stats.queues;
      }
    }
    if (config.eject_capacity > 0) {
      eject[static_cast<std::size_t>(n)] =
          net.add_queue(util::cat("q_", n, "_ej"), config.eject_capacity,
                        /*fifo=*/false);
      ++stats.queues;
    } else {
      eject[static_cast<std::size_t>(n)] = -1;
    }
  }

  // 2. Routing switches. A link input queue arriving from direction dd can
  //    continue to any *other* existing direction or terminate locally (XY
  //    routing never U-turns), so its switch has ports
  //    [dirs(n) \ {dd}..., local]. The injection switch fans out to
  //    (direction, vc) pairs plus local.
  struct LinkSwitch {
    PrimId prim = -1;
    std::vector<int> out_dirs;  // port index -> direction
    int local_port = 0;
  };
  // Builds the color->port map for a switch with the given direction ports.
  // Self-contained: captures only the color snapshot vectors (by shared
  // ownership) and plain values.
  auto make_route = [color_dst, color_vc, w](int n, std::vector<int> out_dirs,
                                             int local_port, int stride,
                                             bool add_vc_offset) {
    return [color_dst, color_vc, w, n, out_dirs = std::move(out_dirs),
            local_port, stride, add_vc_offset](ColorId c) {
      if (static_cast<std::size_t>(c) >= color_dst->size()) return -1;
      const int dst = (*color_dst)[static_cast<std::size_t>(c)];
      const int hop = xy_next_hop(w, n, dst);
      if (hop == -1) return local_port;
      for (std::size_t i = 0; i < out_dirs.size(); ++i) {
        if (out_dirs[i] == hop) {
          const int offset =
              add_vc_offset ? (*color_vc)[static_cast<std::size_t>(c)] : 0;
          return static_cast<int>(i) * stride + offset;
        }
      }
      return -1;  // unroutable from this input: never transfers
    };
  };

  std::vector<std::vector<std::vector<LinkSwitch>>> link_sw(
      static_cast<std::size_t>(nodes),
      std::vector<std::vector<LinkSwitch>>(kNumDirs));
  std::vector<LinkSwitch> inj_sw(static_cast<std::size_t>(nodes));
  // Queues that bypass a switch entirely (single-neighbor nodes: all
  // arriving traffic is local) feed the ejection merge directly.
  std::vector<std::vector<std::pair<PrimId, int>>> extra_eject_inputs(
      static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    for (int dd : dirs[static_cast<std::size_t>(n)]) {
      std::vector<int> out_dirs;
      for (int d : dirs[static_cast<std::size_t>(n)]) {
        if (d != dd) out_dirs.push_back(d);
      }
      for (int v = 0; v < vcs; ++v) {
        const PrimId q =
            in_q[static_cast<std::size_t>(n)][static_cast<std::size_t>(dd)][static_cast<std::size_t>(v)];
        LinkSwitch ls;
        if (out_dirs.empty()) {
          // Dead-end node: everything arriving is local; no switch needed.
          extra_eject_inputs[static_cast<std::size_t>(n)].emplace_back(q, 0);
          link_sw[static_cast<std::size_t>(n)][static_cast<std::size_t>(dd)].push_back(ls);
          continue;
        }
        ls.out_dirs = out_dirs;
        ls.local_port = static_cast<int>(out_dirs.size());
        std::string name = util::cat("sw_", n, "_", kDirNames[dd]);
        if (vcs > 1) name += util::cat("_v", v);
        ls.prim = net.add_switch(
            name, static_cast<int>(out_dirs.size()) + 1,
            make_route(n, out_dirs, ls.local_port, 1, false));
        net.connect(q, 0, ls.prim, 0);
        ++stats.switches;
        link_sw[static_cast<std::size_t>(n)][static_cast<std::size_t>(dd)].push_back(ls);
      }
    }
    // Injection switch: ports (dir index * vcs + vc), then local.
    {
      const std::vector<int>& out_dirs = dirs[static_cast<std::size_t>(n)];
      LinkSwitch ls;
      ls.out_dirs = out_dirs;
      ls.local_port = static_cast<int>(out_dirs.size()) * vcs;
      ls.prim = net.add_switch(
          util::cat("sw_", n, "_inj"),
          static_cast<int>(out_dirs.size()) * vcs + 1,
          make_route(n, out_dirs, ls.local_port, vcs, vcs > 1));
      net.connect(hooks[static_cast<std::size_t>(n)].automaton,
                  hooks[static_cast<std::size_t>(n)].net_out_port, ls.prim, 0);
      ++stats.switches;
      inj_sw[static_cast<std::size_t>(n)] = ls;
    }
  }
  auto switch_port_toward = [](const LinkSwitch& ls, int d, int stride,
                               int vc) {
    for (std::size_t i = 0; i < ls.out_dirs.size(); ++i) {
      if (ls.out_dirs[i] == d) return static_cast<int>(i) * stride + vc;
    }
    return -1;
  };

  // 3. Output links: merge (through traffic + injection) into the
  //    neighbor's input queue.
  for (int n = 0; n < nodes; ++n) {
    for (int d : dirs[static_cast<std::size_t>(n)]) {
      const int m = neighbor(w, h, n, d);
      for (int v = 0; v < vcs; ++v) {
        // Producers offering packets toward direction d in class v.
        std::vector<std::pair<PrimId, int>> producers;
        for (int dd : dirs[static_cast<std::size_t>(n)]) {
          if (dd == d) continue;  // XY routing never U-turns
          const LinkSwitch& ls =
              link_sw[static_cast<std::size_t>(n)][static_cast<std::size_t>(dd)][static_cast<std::size_t>(v)];
          if (ls.prim == -1) continue;
          const int port = switch_port_toward(ls, d, 1, 0);
          if (port >= 0) producers.emplace_back(ls.prim, port);
        }
        {
          const LinkSwitch& ls = inj_sw[static_cast<std::size_t>(n)];
          producers.emplace_back(ls.prim, switch_port_toward(ls, d, vcs, v));
        }
        const PrimId dest_q =
            in_q[static_cast<std::size_t>(m)][static_cast<std::size_t>(opposite(d))][static_cast<std::size_t>(v)];
        if (producers.size() == 1) {
          net.connect(producers[0].first, producers[0].second, dest_q, 0);
        } else {
          std::string name = util::cat("mg_", n, "_", kDirNames[d]);
          if (vcs > 1) name += util::cat("_v", v);
          const PrimId mg =
              net.add_merge(name, static_cast<int>(producers.size()));
          for (std::size_t i = 0; i < producers.size(); ++i) {
            net.connect(producers[i].first, producers[i].second, mg,
                        static_cast<int>(i));
          }
          net.connect(mg, 0, dest_q, 0);
          ++stats.merges;
        }
      }
    }
    // Ejection: local ports of all switches into the bag.
    std::vector<std::pair<PrimId, int>> locals =
        extra_eject_inputs[static_cast<std::size_t>(n)];
    for (int dd : dirs[static_cast<std::size_t>(n)]) {
      for (int v = 0; v < vcs; ++v) {
        const LinkSwitch& ls =
            link_sw[static_cast<std::size_t>(n)][static_cast<std::size_t>(dd)][static_cast<std::size_t>(v)];
        if (ls.prim == -1) continue;
        locals.emplace_back(ls.prim, ls.local_port);
      }
    }
    locals.emplace_back(inj_sw[static_cast<std::size_t>(n)].prim,
                        inj_sw[static_cast<std::size_t>(n)].local_port);
    // Consumer side: either the optional ejection bag or the automaton
    // in-port directly.
    PrimId consumer = hooks[static_cast<std::size_t>(n)].automaton;
    int consumer_port = hooks[static_cast<std::size_t>(n)].net_in_port;
    if (eject[static_cast<std::size_t>(n)] != -1) {
      net.connect(eject[static_cast<std::size_t>(n)], 0, consumer,
                  consumer_port);
      consumer = eject[static_cast<std::size_t>(n)];
      consumer_port = 0;
    }
    if (locals.size() == 1) {
      net.connect(locals[0].first, locals[0].second, consumer, consumer_port);
    } else {
      const PrimId mg = net.add_merge(util::cat("mg_", n, "_ej"),
                                      static_cast<int>(locals.size()));
      for (std::size_t i = 0; i < locals.size(); ++i) {
        net.connect(locals[i].first, locals[i].second, mg, static_cast<int>(i));
      }
      net.connect(mg, 0, consumer, consumer_port);
      ++stats.merges;
    }
  }
  return stats;
}

}  // namespace advocat::noc
