// 2D-mesh network-on-chip generator (the paper's case-study fabric).
//
// Store-and-forward wormhole-free switching: every directed link terminates
// in a FIFO input queue at the receiving router; XY (dimension-ordered)
// routing picks the next hop; fair merges arbitrate each output link.
// Protocol packets are delivered into a per-node *bag* ejection queue — the
// protocol automaton may consume any stored packet, which models the
// paper's "stall and move to the end of the queue" semantics. Injection has
// no private queue: an automaton's emission must win space in the first-hop
// link queue directly (this is what makes the paper's Fig. 3 cross-layer
// deadlock possible).
//
// With num_vcs > 1 every link input queue is replicated per virtual-channel
// class and `vc_of` assigns message colors to classes; the ejection bag is
// shared (consumption order at the protocol is already free).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "xmas/network.hpp"

namespace advocat::noc {

/// Direction encoding used throughout the mesh builder.
enum Dir : int { East = 0, West = 1, North = 2, South = 3 };
inline constexpr int kNumDirs = 4;

struct MeshConfig {
  int width = 2;
  int height = 2;
  std::size_t link_capacity = 2;  ///< per link input queue
  /// Link queues are bags by default ("stall and move to the end of the
  /// queue", the paper's semantics): a packet whose next hop or consumer is
  /// unavailable does not block packets behind it. Set true for strict
  /// FIFO links (ablation).
  bool link_fifo = false;
  /// Optional per-node ejection bag between the local-delivery merge and
  /// the protocol automaton. 0 (default) = none: the automaton consumes
  /// straight from the link bags, which matches the paper's model and
  /// keeps the counts-based SMT abstraction precise. >0 = bag capacity
  /// (ablation; adds a FIFO-blind indirection that can cost precision).
  std::size_t eject_capacity = 0;
  int num_vcs = 1;  ///< 1 = no virtual channels
  /// Maps a color to its VC class in [0, num_vcs); required when
  /// num_vcs > 1.
  std::function<int(const xmas::ColorData&)> vc_of;
};

/// Protocol-side attachment point of one node, created by the protocol
/// layer before the mesh is built.
struct NodeHook {
  xmas::PrimId automaton = -1;
  int net_in_port = 0;   ///< automaton in-port fed by the ejection bag
  int net_out_port = 0;  ///< automaton out-port that injects packets
};

struct MeshStats {
  std::size_t queues = 0;
  std::size_t switches = 0;
  std::size_t merges = 0;
};

/// Node id of (x, y): y * width + x.
[[nodiscard]] inline int node_id(int width, int x, int y) {
  return y * width + x;
}

/// XY next hop from `from` toward `dst`: a Dir, or -1 when from == dst
/// (local delivery).
[[nodiscard]] int xy_next_hop(int width, int from, int dst);

/// Wires the mesh around `hooks` (one per node, node-id order). Colors
/// routed by the mesh must carry a valid dst field. Returns counts of the
/// fabric primitives added.
MeshStats build_mesh(xmas::Network& net, const MeshConfig& config,
                     const std::vector<NodeHook>& hooks);

}  // namespace advocat::noc
