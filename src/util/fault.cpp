#include "util/fault.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

namespace advocat::util::fault {

namespace {

constexpr unsigned kNumSites = static_cast<unsigned>(Site::kCount);

const char* const kSiteNames[kNumSites] = {
    "worker_kill",    "arena_alloc",       "bigint_alloc",
    "exchange_stall", "exchange_overflow", "theory_timeout",
};

struct SiteState {
  std::atomic<std::uint64_t> count{0};
  // Written only by configure() (which must not race active solves),
  // read by fire() under the g_enabled acquire.
  std::vector<std::uint64_t> oneshots;  // sorted arrival numbers
  std::uint64_t repeat_from = 0;        // fire from this arrival on (0 = off)
};

SiteState g_sites[kNumSites];
std::atomic<bool> g_enabled{false};
std::atomic<bool> g_deferred{false};
std::once_flag g_env_once;

int site_index(const std::string& name) {
  for (unsigned i = 0; i < kNumSites; ++i) {
    if (name == kSiteNames[i]) return static_cast<int>(i);
  }
  return -1;
}

// Parses and installs `spec`; returns false when any token was skipped.
bool install(const char* spec) {
  bool any = false;
  bool clean = true;
  for (SiteState& s : g_sites) {
    s.count.store(0, std::memory_order_relaxed);
    s.oneshots.clear();
    s.repeat_from = 0;
  }
  g_deferred.store(false, std::memory_order_relaxed);
  const std::string text = spec != nullptr ? spec : "";
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    std::string token = text.substr(pos, end - pos);
    pos = end + 1;
    // Trim surrounding whitespace.
    const std::size_t b = token.find_first_not_of(" \t");
    const std::size_t e = token.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    token = token.substr(b, e - b + 1);

    const std::size_t at = token.find('@');
    const int site = at == std::string::npos
                         ? -1
                         : site_index(token.substr(0, at));
    bool ok = site >= 0 && at + 1 < token.size();
    std::uint64_t n = 0;
    bool repeat = false;
    if (ok) {
      std::string num = token.substr(at + 1);
      if (!num.empty() && num.back() == '+') {
        repeat = true;
        num.pop_back();
      }
      ok = !num.empty() &&
           num.find_first_not_of("0123456789") == std::string::npos;
      if (ok) {
        errno = 0;
        char* parse_end = nullptr;
        n = std::strtoull(num.c_str(), &parse_end, 10);
        ok = errno == 0 && parse_end != nullptr && *parse_end == '\0' && n > 0;
      }
    }
    if (!ok) {
      std::fprintf(stderr,
                   "advocat: ADVOCAT_FAULTS: ignoring bad token \"%s\" "
                   "(want site@count or site@count+)\n",
                   token.c_str());
      clean = false;
      continue;
    }
    SiteState& s = g_sites[site];
    if (repeat) {
      s.repeat_from = s.repeat_from == 0 ? n : std::min(s.repeat_from, n);
    } else {
      s.oneshots.push_back(n);
    }
    any = true;
  }
  for (SiteState& s : g_sites) {
    std::sort(s.oneshots.begin(), s.oneshots.end());
    s.oneshots.erase(std::unique(s.oneshots.begin(), s.oneshots.end()),
                     s.oneshots.end());
  }
  // Release: schedules above happen-before any fire() that sees `true`.
  g_enabled.store(any, std::memory_order_release);
  return clean;
}

void init_from_env() { (void)install(std::getenv("ADVOCAT_FAULTS")); }

}  // namespace

bool enabled() {
  std::call_once(g_env_once, init_from_env);
  return g_enabled.load(std::memory_order_acquire);
}

bool fire(Site site) {
  if (!enabled()) return false;
  SiteState& s = g_sites[static_cast<unsigned>(site)];
  const std::uint64_t n = s.count.fetch_add(1, std::memory_order_relaxed) + 1;
  if (s.repeat_from != 0 && n >= s.repeat_from) return true;
  return std::binary_search(s.oneshots.begin(), s.oneshots.end(), n);
}

void defer(Site site) {
  if (fire(site)) g_deferred.store(true, std::memory_order_relaxed);
}

bool take_deferred() {
  if (!g_deferred.load(std::memory_order_relaxed)) return false;
  return g_deferred.exchange(false, std::memory_order_relaxed);
}

bool configure(const char* spec) {
  std::call_once(g_env_once, [] {});  // suppress a later env re-read
  return install(spec);
}

std::uint64_t arrivals(Site site) {
  return g_sites[static_cast<unsigned>(site)].count.load(
      std::memory_order_relaxed);
}

const char* name(Site site) { return kSiteNames[static_cast<unsigned>(site)]; }

}  // namespace advocat::util::fault
