// Exact rational numbers on top of BigInt.
//
// Invariant: denominator > 0 and gcd(|num|, den) == 1 at all times (the
// constructor and every arithmetic operator re-normalize), so equality is
// structural.
#pragma once

#include <compare>
#include <string>

#include "util/bigint.hpp"

namespace advocat::util {

class Rational {
 public:
  Rational() : num_(0), den_(1) {}
  Rational(std::int64_t v) : num_(v), den_(1) {}  // NOLINT(google-explicit-constructor)
  Rational(BigInt num) : num_(std::move(num)), den_(1) {}  // NOLINT(google-explicit-constructor)
  /// Throws std::domain_error if den is zero.
  Rational(BigInt num, BigInt den);

  [[nodiscard]] const BigInt& num() const { return num_; }
  [[nodiscard]] const BigInt& den() const { return den_; }

  [[nodiscard]] bool is_zero() const { return num_.is_zero(); }
  [[nodiscard]] bool is_negative() const { return num_.is_negative(); }
  [[nodiscard]] bool is_integer() const { return den_.is_one(); }
  [[nodiscard]] bool is_one() const { return num_.is_one() && den_.is_one(); }

  Rational operator-() const;
  Rational operator+(const Rational& rhs) const;
  Rational operator-(const Rational& rhs) const;
  Rational operator*(const Rational& rhs) const;
  /// Throws std::domain_error on division by zero.
  Rational operator/(const Rational& rhs) const;
  [[nodiscard]] Rational reciprocal() const;

  Rational& operator+=(const Rational& rhs) { return *this = *this + rhs; }
  Rational& operator-=(const Rational& rhs) { return *this = *this - rhs; }
  Rational& operator*=(const Rational& rhs) { return *this = *this * rhs; }
  Rational& operator/=(const Rational& rhs) { return *this = *this / rhs; }

  bool operator==(const Rational& rhs) const = default;
  std::strong_ordering operator<=>(const Rational& rhs) const;

  /// "3", "-3", or "3/4".
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t hash() const {
    return num_.hash() * 31 + den_.hash();
  }

 private:
  void normalize();

  BigInt num_;
  BigInt den_;  // always > 0
};

}  // namespace advocat::util
