// Minimal deterministic fork/join helpers for the parallel layers.
//
// No persistent thread pool: the parallel sections (cube solving,
// portfolio racing, probe rounds, bench position sweeps) are coarse —
// each task runs for milliseconds to minutes — so std::thread spawn cost
// is noise, and joining at the end of every section keeps the shared
// problem state trivially immutable while workers run.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace advocat::util {

/// Runs fn(i) for i in [0, n) on up to `threads` worker threads and joins.
/// Work is pulled from a shared atomic-free index under a mutex (tasks are
/// coarse). With threads <= 1 everything runs inline on the caller, in
/// order. The first exception thrown by any task is rethrown on the caller
/// after all workers have joined.
inline void parallel_for(std::size_t n, unsigned threads,
                         const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::mutex mu;
  std::size_t next = 0;
  std::exception_ptr first_error;
  auto worker = [&] {
    for (;;) {
      std::size_t i;
      {
        std::lock_guard<std::mutex> lock(mu);
        if (next >= n || first_error) return;
        i = next++;
      }
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  const std::size_t width = std::min<std::size_t>(threads, n);
  pool.reserve(width);
  for (std::size_t t = 0; t < width; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

/// Static variant: task i always runs on worker i % width, and each worker
/// processes its tasks in increasing order — the schedule (not just the
/// result) is a pure function of (n, threads), which is what the solver's
/// determinism mode needs for reproducible per-worker statistics.
///
/// Error semantics match parallel_for: every worker is joined, exactly one
/// exception (the first captured) is rethrown on the caller, and workers
/// stop picking up new tasks once any task has thrown. The early stop
/// cannot perturb determinism mode because solver tasks never throw — a
/// worker's SearchContext::solve catches every governed unwind internally.
inline void parallel_for_static(std::size_t n, unsigned threads,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t width = std::min<std::size_t>(threads, n);
  std::mutex mu;
  std::exception_ptr first_error;
  std::atomic<bool> failed{false};
  std::vector<std::thread> pool;
  pool.reserve(width);
  for (std::size_t t = 0; t < width; ++t) {
    pool.emplace_back([&, t] {
      try {
        for (std::size_t i = t; i < n; i += width) {
          if (failed.load(std::memory_order_relaxed)) return;
          fn(i);
        }
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace advocat::util
