#include "util/rational.hpp"

#include <stdexcept>
#include <utility>

namespace advocat::util {

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  if (den_.is_zero()) throw std::domain_error("Rational: zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_.is_negative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::gcd(num_, den_);
  if (!g.is_one()) {
    num_ = num_ / g;
    den_ = den_ / g;
  }
}

Rational Rational::operator-() const {
  Rational r = *this;
  r.num_ = -r.num_;
  return r;
}

Rational Rational::operator+(const Rational& rhs) const {
  return Rational(num_ * rhs.den_ + rhs.num_ * den_, den_ * rhs.den_);
}

Rational Rational::operator-(const Rational& rhs) const {
  return Rational(num_ * rhs.den_ - rhs.num_ * den_, den_ * rhs.den_);
}

Rational Rational::operator*(const Rational& rhs) const {
  return Rational(num_ * rhs.num_, den_ * rhs.den_);
}

Rational Rational::operator/(const Rational& rhs) const {
  if (rhs.is_zero()) throw std::domain_error("Rational: division by zero");
  return Rational(num_ * rhs.den_, den_ * rhs.num_);
}

Rational Rational::reciprocal() const {
  if (is_zero()) throw std::domain_error("Rational: reciprocal of zero");
  return Rational(den_, num_);
}

std::strong_ordering Rational::operator<=>(const Rational& rhs) const {
  return (num_ * rhs.den_) <=> (rhs.num_ * den_);
}

std::string Rational::to_string() const {
  if (den_.is_one()) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

}  // namespace advocat::util
