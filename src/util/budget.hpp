// Unified resource governance: one budget type and one stop-reason
// taxonomy shared by every layer (solver, simplex, verifier, bench).
//
// A ResourceBudget is a set of independent ceilings (0 = unlimited). The
// consumer polls them at its cooperative cancellation point — the native
// solver's SearchContext::bump_ops(), which the simplex pivot loop and the
// integer leaf search already tick into — and unwinds with a structured
// reason instead of crashing or silently returning Unknown. Every degraded
// verdict therefore carries a machine-readable StopReason: Unknown is
// never silent.
#pragma once

#include <cstdint>

namespace advocat::util {

/// Why a check (or a whole verification / sizing run) stopped early.
/// kNone means the result is definite (Sat/Unsat) — a degraded result must
/// always carry a non-kNone reason.
enum class StopReason : std::uint8_t {
  kNone = 0,           ///< definite result, nothing was cut short
  kDeadline,           ///< wall-clock deadline (timeout_ms or budget)
  kConflictBudget,     ///< ResourceBudget::max_conflicts exhausted
  kDecisionBudget,     ///< ResourceBudget::max_decisions exhausted
  kPropagationBudget,  ///< ResourceBudget::max_propagations exhausted
  kMemoryCeiling,      ///< ResourceBudget::max_memory_bytes exceeded
  kCancelled,          ///< Solver::cancel() (or stop flag) observed
  kFaultInjected,      ///< a deterministic fault (ADVOCAT_FAULTS) fired
  kDegraded,           ///< incomplete theory search (integer-open leaf)
};

/// Stable machine-readable name; kNone maps to "" so emitters can test
/// emptiness instead of comparing enums.
[[nodiscard]] constexpr const char* to_string(StopReason r) {
  switch (r) {
    case StopReason::kNone: return "";
    case StopReason::kDeadline: return "deadline";
    case StopReason::kConflictBudget: return "conflict_budget";
    case StopReason::kDecisionBudget: return "decision_budget";
    case StopReason::kPropagationBudget: return "propagation_budget";
    case StopReason::kMemoryCeiling: return "memory_ceiling";
    case StopReason::kCancelled: return "cancelled";
    case StopReason::kFaultInjected: return "fault_injected";
    case StopReason::kDegraded: return "degraded";
  }
  return "";
}

/// Combines reasons from multiple workers / probes into the one most worth
/// reporting. Ordering: an injected fault or explicit cancellation beats a
/// resource ceiling, hard ceilings beat soft search budgets, and any real
/// reason beats kDegraded/kNone.
[[nodiscard]] constexpr StopReason combine(StopReason a, StopReason b) {
  constexpr auto rank = [](StopReason r) {
    switch (r) {
      case StopReason::kFaultInjected: return 8;
      case StopReason::kCancelled: return 7;
      case StopReason::kMemoryCeiling: return 6;
      case StopReason::kDeadline: return 5;
      case StopReason::kConflictBudget: return 4;
      case StopReason::kDecisionBudget: return 3;
      case StopReason::kPropagationBudget: return 2;
      case StopReason::kDegraded: return 1;
      case StopReason::kNone: return 0;
    }
    return 0;
  };
  return rank(a) >= rank(b) ? a : b;
}

/// Per-check resource ceilings. Every field is independent and 0 means
/// unlimited; a default-constructed budget changes nothing. The memory
/// ceiling governs the solver-owned pools: clause arena bytes + BigInt
/// heap bytes + CSR/simplex pool bytes (see docs/ROBUSTNESS.md).
struct ResourceBudget {
  unsigned deadline_ms = 0;            ///< wall clock per check (0 = none)
  std::uint64_t max_conflicts = 0;     ///< CDCL conflicts per check
  std::uint64_t max_decisions = 0;     ///< CDCL decisions per check
  std::uint64_t max_propagations = 0;  ///< unit propagations per check
  std::uint64_t max_memory_bytes = 0;  ///< arena + BigInt heap + pools

  [[nodiscard]] constexpr bool unlimited() const {
    return deadline_ms == 0 && max_conflicts == 0 && max_decisions == 0 &&
           max_propagations == 0 && max_memory_bytes == 0;
  }
};

/// Thrown (from a cooperative cancellation point) when a budget ceiling is
/// hit; callers catch it at the check boundary and surface the reason.
/// Intentionally not a std::exception: nothing between the cancellation
/// point and the check boundary is allowed to swallow it.
struct Stop {
  StopReason reason = StopReason::kNone;
};

}  // namespace advocat::util
