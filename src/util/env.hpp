// Validated environment-variable parsing for the runtime knobs.
//
// The knobs (ADVOCAT_THREADS, ADVOCAT_TEST_TIMEOUT_MS, ...) are read in
// several layers — solver, verifier, benches, test fixtures — so the
// validation lives here once: garbage, negative, and overflowing values
// are rejected with a one-line stderr warning and fall back to a sane
// default instead of feeding raw strtoul bits into thread counts or
// std::chrono::milliseconds.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace advocat::util {

/// Parses environment variable `name` as a non-negative integer clamped
/// to [min, max]. Returns `fallback` (unclamped) when the variable is
/// unset; warns on stderr and returns `fallback` when the value is not a
/// number (garbage, trailing junk, negative); warns and clamps when it
/// parses but lies outside [min, max].
inline unsigned long env_uint(const char* name, unsigned long fallback,
                              unsigned long min_value,
                              unsigned long max_value) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE || v < 0) {
    std::fprintf(stderr,
                 "advocat: ignoring %s=\"%s\" (expected an integer in "
                 "[%lu, %lu]); using %lu\n",
                 name, s, min_value, max_value, fallback);
    return fallback;
  }
  const auto u = static_cast<unsigned long long>(v);
  if (u < min_value || u > max_value) {
    const unsigned long clamped =
        u < min_value ? min_value : max_value;
    std::fprintf(stderr,
                 "advocat: clamping %s=%s to %lu (valid range [%lu, %lu])\n",
                 name, s, clamped, min_value, max_value);
    return clamped;
  }
  return static_cast<unsigned long>(u);
}

/// ADVOCAT_THREADS: worker threads for the parallel solver / probe
/// scheduler. Unset or 1 = the bit-identical single-threaded path.
inline unsigned env_threads(unsigned fallback = 1) {
  return static_cast<unsigned>(
      env_uint("ADVOCAT_THREADS", fallback, 1, 256));
}

/// ADVOCAT_TEST_TIMEOUT_MS: global override for per-query test timeouts
/// (0 disables the timeout entirely; capped at one hour).
inline unsigned env_test_timeout_ms(unsigned fallback) {
  return static_cast<unsigned>(
      env_uint("ADVOCAT_TEST_TIMEOUT_MS", fallback, 0, 3'600'000));
}

// Build-time default for the solver invariant auditor (set by the
// ADVOCAT_AUDIT CMake option for debug builds); the environment variable
// of the same name always wins.
#ifndef ADVOCAT_AUDIT_DEFAULT
#define ADVOCAT_AUDIT_DEFAULT 0
#endif

/// ADVOCAT_AUDIT: when set (nonzero), the native solver runs deep
/// invariant audits over its own data structures at restarts, after
/// backjumps, and at check boundaries (see smt/audit.hpp and
/// docs/ANALYSIS.md). A violation aborts the process naming the broken
/// invariant. Expensive — meant for tests, fuzzing, and debugging.
inline bool env_audit() {
  return env_uint("ADVOCAT_AUDIT", ADVOCAT_AUDIT_DEFAULT, 0, 1) != 0;
}

/// ADVOCAT_DETERMINISTIC: when set (nonzero), parallel solving trades
/// speed for reproducibility — static cube partition, no mid-search
/// clause exchange, no early cancellation — so identical runs produce
/// identical verdicts *and* identical SolveStats.
inline bool env_deterministic() {
  return env_uint("ADVOCAT_DETERMINISTIC", 0, 0, 1) != 0;
}

}  // namespace advocat::util
