// Arbitrary-precision signed integers with a small-value fast path.
//
// Gaussian elimination over the flow matrix (src/invariants) multiplies and
// adds rational coefficients whose numerators/denominators can outgrow any
// fixed-width type on large meshes, so exact verification needs
// arbitrary-precision arithmetic. Almost all coefficients that actually occur
// in flow encodings are tiny (±1, small queue capacities), so the
// representation is dual:
//
//  - small form: the value lives inline in an int64 and `mag_` stays empty —
//    arithmetic on small operands allocates nothing;
//  - heap form: sign + little-endian base-2^32 magnitude, used only when the
//    value does not fit in int64.
//
// The form is canonical: a value fits int64 if and only if it is stored in
// the small form (every operation demotes results that fit back inline), so
// the defaulted operator== stays a plain member comparison. All operations
// are value-semantic.
#pragma once

#include <cstdint>
#include <compare>
#include <string>
#include <vector>

namespace advocat::util {

class BigInt {
 public:
  BigInt() = default;
  // NOLINTNEXTLINE(google-explicit-constructor) numeric literal convenience
  BigInt(std::int64_t v) : negative_(v < 0), small_(v) {}

  // Rule of five: the special members exist only to keep the process-wide
  // heap-bytes gauge (heap_bytes_in_use) exact. Small-form values pay one
  // predictable `mag_.empty()` branch and never touch the gauge.
  BigInt(const BigInt& o);
  BigInt(BigInt&& o) noexcept;
  BigInt& operator=(const BigInt& o);
  BigInt& operator=(BigInt&& o) noexcept;
  ~BigInt();

  /// Parses a base-10 string with optional leading '-'. Throws
  /// std::invalid_argument on malformed input.
  static BigInt from_string(const std::string& s);

  [[nodiscard]] bool is_zero() const { return mag_.empty() && small_ == 0; }
  [[nodiscard]] bool is_negative() const { return negative_; }
  [[nodiscard]] bool is_one() const { return mag_.empty() && small_ == 1; }

  /// Value as int64 if it fits; throws std::overflow_error otherwise.
  [[nodiscard]] std::int64_t to_int64() const;
  /// True exactly when the value is held in the inline small form (the
  /// representation is canonical, so this is also "fits in int64").
  [[nodiscard]] bool fits_int64() const { return mag_.empty(); }

  [[nodiscard]] std::string to_string() const;

  BigInt operator-() const;
  [[nodiscard]] BigInt abs() const;

  BigInt operator+(const BigInt& rhs) const;
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;
  /// Truncated division (C++ semantics: rounds toward zero).
  BigInt operator/(const BigInt& rhs) const;
  /// Remainder matching operator/ (same sign as dividend).
  BigInt operator%(const BigInt& rhs) const;

  BigInt& operator+=(const BigInt& rhs) { return *this = *this + rhs; }
  BigInt& operator-=(const BigInt& rhs) { return *this = *this - rhs; }
  BigInt& operator*=(const BigInt& rhs) { return *this = *this * rhs; }
  BigInt& operator/=(const BigInt& rhs) { return *this = *this / rhs; }

  bool operator==(const BigInt& rhs) const = default;
  std::strong_ordering operator<=>(const BigInt& rhs) const;

  static BigInt gcd(BigInt a, BigInt b);

  /// Number of base-2^32 limbs (0 for zero); used by tests and heuristics.
  /// Computed as-if for small-form values so the answer matches the heap
  /// representation of the same value.
  [[nodiscard]] std::size_t limb_count() const;

  [[nodiscard]] std::size_t hash() const;

  /// Debug builds count every heap-magnitude materialization produced by
  /// the arithmetic paths (the small-value fast path never touches it), so
  /// tests can assert that small-coefficient pivoting stays allocation-free.
  /// Always 0 in NDEBUG builds. The counter is process-global and relaxed;
  /// it is a diagnostic, not a synchronization point.
  static std::uint64_t debug_heap_allocations();
  static void debug_reset_heap_allocations();

  /// Live bytes held by heap-form magnitudes across every BigInt in the
  /// process, maintained in all build types (it feeds the solver's memory
  /// ceiling, see util::ResourceBudget). Relaxed process-global gauge:
  /// exact when read quiescently, monotonic-consistent enough for a
  /// ceiling check when read concurrently.
  static std::uint64_t heap_bytes_in_use();

 private:
  [[nodiscard]] bool is_small() const { return mag_.empty(); }
  /// Materializes the base-2^32 magnitude (copy for heap form).
  [[nodiscard]] std::vector<std::uint32_t> magnitude() const;
  /// Builds a canonical BigInt from sign + magnitude, demoting to the small
  /// form whenever the value fits int64.
  static BigInt from_parts(bool negative, std::vector<std::uint32_t> mag);
  static std::uint64_t abs_u64(std::int64_t v) {
    // Negate in unsigned space: well-defined for INT64_MIN.
    return v < 0 ? ~static_cast<std::uint64_t>(v) + 1
                 : static_cast<std::uint64_t>(v);
  }

  // Compares magnitudes only.
  static int cmp_mag(const std::vector<std::uint32_t>& a,
                     const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> add_mag(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<std::uint32_t> sub_mag(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mul_mag(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b);
  // Divides magnitude by magnitude; returns {quotient, remainder}.
  static std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>> divmod_mag(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  static void trim(std::vector<std::uint32_t>& mag);

  bool negative_ = false;           // small form keeps this == (small_ < 0)
  std::int64_t small_ = 0;          // authoritative value when mag_ is empty
  std::vector<std::uint32_t> mag_;  // little-endian limbs, no trailing zeros;
                                    // non-empty only when the value does not
                                    // fit int64 (small_ is then 0)
};

}  // namespace advocat::util
