// Arbitrary-precision signed integers.
//
// Gaussian elimination over the flow matrix (src/invariants) multiplies and
// adds rational coefficients whose numerators/denominators can outgrow any
// fixed-width type on large meshes, so exact verification needs
// arbitrary-precision arithmetic. The representation is sign + little-endian
// base-2^32 magnitude; all operations are value-semantic.
#pragma once

#include <cstdint>
#include <compare>
#include <string>
#include <vector>

namespace advocat::util {

class BigInt {
 public:
  BigInt() = default;
  BigInt(std::int64_t v);  // NOLINT(google-explicit-constructor) numeric literal convenience

  /// Parses a base-10 string with optional leading '-'. Throws
  /// std::invalid_argument on malformed input.
  static BigInt from_string(const std::string& s);

  [[nodiscard]] bool is_zero() const { return mag_.empty(); }
  [[nodiscard]] bool is_negative() const { return negative_; }
  [[nodiscard]] bool is_one() const;

  /// Value as int64 if it fits; throws std::overflow_error otherwise.
  [[nodiscard]] std::int64_t to_int64() const;
  [[nodiscard]] bool fits_int64() const;

  [[nodiscard]] std::string to_string() const;

  BigInt operator-() const;
  [[nodiscard]] BigInt abs() const;

  BigInt operator+(const BigInt& rhs) const;
  BigInt operator-(const BigInt& rhs) const;
  BigInt operator*(const BigInt& rhs) const;
  /// Truncated division (C++ semantics: rounds toward zero).
  BigInt operator/(const BigInt& rhs) const;
  /// Remainder matching operator/ (same sign as dividend).
  BigInt operator%(const BigInt& rhs) const;

  BigInt& operator+=(const BigInt& rhs) { return *this = *this + rhs; }
  BigInt& operator-=(const BigInt& rhs) { return *this = *this - rhs; }
  BigInt& operator*=(const BigInt& rhs) { return *this = *this * rhs; }
  BigInt& operator/=(const BigInt& rhs) { return *this = *this / rhs; }

  bool operator==(const BigInt& rhs) const = default;
  std::strong_ordering operator<=>(const BigInt& rhs) const;

  static BigInt gcd(BigInt a, BigInt b);

  /// Number of base-2^32 limbs (0 for zero); used by tests and heuristics.
  [[nodiscard]] std::size_t limb_count() const { return mag_.size(); }

  [[nodiscard]] std::size_t hash() const;

 private:
  // Compares magnitudes only.
  static int cmp_mag(const std::vector<std::uint32_t>& a,
                     const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> add_mag(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<std::uint32_t> sub_mag(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b);
  static std::vector<std::uint32_t> mul_mag(const std::vector<std::uint32_t>& a,
                                            const std::vector<std::uint32_t>& b);
  // Divides magnitude by magnitude; returns {quotient, remainder}.
  static std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>> divmod_mag(
      const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b);
  static void trim(std::vector<std::uint32_t>& mag);

  void normalize();

  bool negative_ = false;
  std::vector<std::uint32_t> mag_;  // little-endian limbs, no trailing zeros
};

}  // namespace advocat::util
