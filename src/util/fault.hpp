// Deterministic fault injection for robustness soak tests.
//
// A fault *site* is an instrumented point in the solver stack; each call
// to fire() counts one arrival at that site, and a configured schedule
// says which arrival numbers fault. Schedules come from the
// ADVOCAT_FAULTS environment variable (read once, on first use) or from
// configure() in tests. With no schedule configured every site is a
// single relaxed atomic load on an already-slow path — the instrumented
// build is behaviorally and statistically identical to an uninstrumented
// one, which is what keeps determinism-mode runs bit-identical when
// ADVOCAT_FAULTS is unset.
//
// Spec grammar (see docs/ROBUSTNESS.md):
//   spec   := token (',' token)*
//   token  := site '@' count ['+']
//   site   := worker_kill | arena_alloc | bigint_alloc
//           | exchange_stall | exchange_overflow | theory_timeout
//   count  := 1-based arrival number; a trailing '+' means "this arrival
//             and every later one" instead of exactly once.
// Example: ADVOCAT_FAULTS="worker_kill@3,bigint_alloc@100+"
//
// Delivery discipline: sites that sit inside mutating code (arena and
// BigInt allocations) must not throw in place — a mid-pivot or
// mid-learning unwind could leave the tableau or watch lists
// half-updated. Those sites call defer(), which latches the fault;
// the solver's cooperative cancellation point (SearchContext::bump_ops)
// consumes the latch via take_deferred() and throws FaultInjected from
// exactly the same program points a deadline can, so every fault unwind
// rides the Timeout-proven exception-safety path.
#pragma once

#include <cstdint>

namespace advocat::util::fault {

enum class Site : unsigned {
  kWorkerKill = 0,     ///< kill a parallel worker mid-cube
  kArenaAlloc,         ///< fail a clause-arena allocation
  kBigIntAlloc,        ///< fail a BigInt heap materialization
  kExchangeStall,      ///< stall a clause-exchange shard operation
  kExchangeOverflow,   ///< force a clause-exchange shard to drop (full)
  kTheoryTimeout,      ///< time out a theory (simplex) call
  kCount,
};

/// Thrown when an injected fault fires; callers catch it at the check
/// boundary and report Unknown with StopReason::kFaultInjected.
struct FaultInjected {};

/// True when any fault schedule is active. First call reads
/// ADVOCAT_FAULTS; after that it is one relaxed atomic load.
[[nodiscard]] bool enabled();

/// Counts one arrival at `site`; returns true when the schedule says this
/// arrival faults. Never throws — the caller chooses the failure action
/// (throw, drop, stall, or defer()).
[[nodiscard]] bool fire(Site site);

/// fire() + latch: for sites inside mutating code. The latched fault is
/// delivered later, at a safe point, via take_deferred().
void defer(Site site);

/// Consumes a latched fault (one per defer); the caller should throw
/// FaultInjected. Cheap no-op when nothing is latched.
[[nodiscard]] bool take_deferred();

/// Installs a schedule programmatically (tests); nullptr or "" disables
/// injection. Resets all arrival counters and the deferred latch. Returns
/// false when the spec had unparsable tokens (they are skipped with a
/// stderr warning, matching the env-knob convention). Must not race
/// active solves.
bool configure(const char* spec);

/// Arrivals counted at `site` since the last configure().
[[nodiscard]] std::uint64_t arrivals(Site site);

/// Stable site name used by the spec grammar.
[[nodiscard]] const char* name(Site site);

}  // namespace advocat::util::fault
