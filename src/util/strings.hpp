// Small string helpers shared across modules.
#pragma once

#include <sstream>
#include <string>
#include <vector>

namespace advocat::util {

/// Joins the elements of `parts` with `sep`.
inline std::string join(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

/// printf-free concatenation of stream-printable values.
template <typename... Ts>
std::string cat(const Ts&... vs) {
  std::ostringstream os;
  (os << ... << vs);
  return os.str();
}

}  // namespace advocat::util
