#include "util/bigint.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

namespace advocat::util {

namespace {
constexpr std::uint64_t kBase = 1ull << 32;
}  // namespace

BigInt::BigInt(std::int64_t v) {
  if (v == 0) return;
  negative_ = v < 0;
  // Avoid UB on INT64_MIN: negate in unsigned space.
  std::uint64_t mag = negative_ ? ~static_cast<std::uint64_t>(v) + 1
                                : static_cast<std::uint64_t>(v);
  mag_.push_back(static_cast<std::uint32_t>(mag & 0xffffffffu));
  if (mag >> 32) mag_.push_back(static_cast<std::uint32_t>(mag >> 32));
}

BigInt BigInt::from_string(const std::string& s) {
  if (s.empty()) throw std::invalid_argument("BigInt: empty string");
  std::size_t i = 0;
  bool neg = false;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    i = 1;
    if (s.size() == 1) throw std::invalid_argument("BigInt: sign only");
  }
  BigInt r;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') throw std::invalid_argument("BigInt: bad digit");
    r = r * BigInt(10) + BigInt(s[i] - '0');
  }
  if (neg) r = -r;
  return r;
}

bool BigInt::is_one() const {
  return !negative_ && mag_.size() == 1 && mag_[0] == 1;
}

bool BigInt::fits_int64() const {
  if (mag_.size() > 2) return false;
  if (mag_.size() < 2) return true;
  std::uint64_t v = (static_cast<std::uint64_t>(mag_[1]) << 32) | mag_[0];
  return negative_ ? v <= (1ull << 63) : v < (1ull << 63);
}

std::int64_t BigInt::to_int64() const {
  if (!fits_int64()) throw std::overflow_error("BigInt::to_int64");
  std::uint64_t v = 0;
  if (!mag_.empty()) v = mag_[0];
  if (mag_.size() == 2) v |= static_cast<std::uint64_t>(mag_[1]) << 32;
  // Negate in the unsigned domain: for the INT64_MIN magnitude (2^63),
  // signed negation would overflow, while 0 - v wraps to the right bits.
  return static_cast<std::int64_t>(negative_ ? 0 - v : v);
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  // Repeated division by 10^9 to produce decimal chunks.
  std::vector<std::uint32_t> mag = mag_;
  std::string out;
  while (!mag.empty()) {
    std::uint64_t rem = 0;
    for (std::size_t i = mag.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | mag[i];
      mag[i] = static_cast<std::uint32_t>(cur / 1000000000u);
      rem = cur % 1000000000u;
    }
    trim(mag);
    std::string chunk = std::to_string(rem);
    if (!mag.empty()) chunk.insert(0, 9 - chunk.size(), '0');
    out.insert(0, chunk);
  }
  if (negative_) out.insert(0, 1, '-');
  return out;
}

BigInt BigInt::operator-() const {
  BigInt r = *this;
  if (!r.is_zero()) r.negative_ = !r.negative_;
  return r;
}

BigInt BigInt::abs() const {
  BigInt r = *this;
  r.negative_ = false;
  return r;
}

int BigInt::cmp_mag(const std::vector<std::uint32_t>& a,
                    const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

void BigInt::trim(std::vector<std::uint32_t>& mag) {
  while (!mag.empty() && mag.back() == 0) mag.pop_back();
}

void BigInt::normalize() {
  trim(mag_);
  if (mag_.empty()) negative_ = false;
}

std::vector<std::uint32_t> BigInt::add_mag(const std::vector<std::uint32_t>& a,
                                           const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> r;
  r.reserve(std::max(a.size(), b.size()) + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
    std::uint64_t sum = carry;
    if (i < a.size()) sum += a[i];
    if (i < b.size()) sum += b[i];
    r.push_back(static_cast<std::uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry) r.push_back(static_cast<std::uint32_t>(carry));
  return r;
}

std::vector<std::uint32_t> BigInt::sub_mag(const std::vector<std::uint32_t>& a,
                                           const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> r;
  r.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    r.push_back(static_cast<std::uint32_t>(diff));
  }
  trim(r);
  return r;
}

std::vector<std::uint32_t> BigInt::mul_mag(const std::vector<std::uint32_t>& a,
                                           const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint32_t> r(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cur = static_cast<std::uint64_t>(a[i]) * b[j] + r[i + j] + carry;
      r[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry) {
      std::uint64_t cur = r[k] + carry;
      r[k] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  trim(r);
  return r;
}

std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>> BigInt::divmod_mag(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (b.empty()) throw std::domain_error("BigInt: division by zero");
  if (cmp_mag(a, b) < 0) return {{}, a};
  if (b.size() == 1) {
    // Fast path: single-limb divisor.
    std::vector<std::uint32_t> q(a.size());
    std::uint64_t rem = 0;
    for (std::size_t i = a.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | a[i];
      q[i] = static_cast<std::uint32_t>(cur / b[0]);
      rem = cur % b[0];
    }
    trim(q);
    std::vector<std::uint32_t> r;
    if (rem) r.push_back(static_cast<std::uint32_t>(rem));
    return {q, r};
  }
  // Schoolbook long division, bit by bit. Slow but simple; divisor sizes in
  // the invariant engine stay small because rationals normalize by gcd.
  std::vector<std::uint32_t> q(a.size(), 0);
  std::vector<std::uint32_t> rem;
  for (std::size_t bit = a.size() * 32; bit-- > 0;) {
    // rem = rem*2 + bit(a, bit)
    std::uint32_t carry = 0;
    for (auto& limb : rem) {
      std::uint32_t next = limb >> 31;
      limb = (limb << 1) | carry;
      carry = next;
    }
    if (carry) rem.push_back(carry);
    if ((a[bit / 32] >> (bit % 32)) & 1u) {
      if (rem.empty()) rem.push_back(1u);
      else {
        std::uint64_t cur = static_cast<std::uint64_t>(rem[0]) + 1;
        rem[0] = static_cast<std::uint32_t>(cur);
        std::size_t k = 1;
        while (cur >> 32) {
          if (k == rem.size()) rem.push_back(0);
          cur = static_cast<std::uint64_t>(rem[k]) + 1;
          rem[k] = static_cast<std::uint32_t>(cur);
          ++k;
        }
      }
    }
    if (cmp_mag(rem, b) >= 0) {
      rem = sub_mag(rem, b);
      q[bit / 32] |= 1u << (bit % 32);
    }
  }
  trim(q);
  return {q, rem};
}

BigInt BigInt::operator+(const BigInt& rhs) const {
  BigInt r;
  if (negative_ == rhs.negative_) {
    r.mag_ = add_mag(mag_, rhs.mag_);
    r.negative_ = negative_;
  } else {
    int c = cmp_mag(mag_, rhs.mag_);
    if (c == 0) return BigInt();
    if (c > 0) {
      r.mag_ = sub_mag(mag_, rhs.mag_);
      r.negative_ = negative_;
    } else {
      r.mag_ = sub_mag(rhs.mag_, mag_);
      r.negative_ = rhs.negative_;
    }
  }
  r.normalize();
  return r;
}

BigInt BigInt::operator-(const BigInt& rhs) const { return *this + (-rhs); }

BigInt BigInt::operator*(const BigInt& rhs) const {
  BigInt r;
  r.mag_ = mul_mag(mag_, rhs.mag_);
  r.negative_ = !r.mag_.empty() && (negative_ != rhs.negative_);
  return r;
}

BigInt BigInt::operator/(const BigInt& rhs) const {
  auto [q, rem] = divmod_mag(mag_, rhs.mag_);
  BigInt r;
  r.mag_ = std::move(q);
  r.negative_ = !r.mag_.empty() && (negative_ != rhs.negative_);
  return r;
}

BigInt BigInt::operator%(const BigInt& rhs) const {
  auto [q, rem] = divmod_mag(mag_, rhs.mag_);
  BigInt r;
  r.mag_ = std::move(rem);
  r.negative_ = !r.mag_.empty() && negative_;
  return r;
}

std::strong_ordering BigInt::operator<=>(const BigInt& rhs) const {
  if (negative_ != rhs.negative_)
    return negative_ ? std::strong_ordering::less : std::strong_ordering::greater;
  int c = cmp_mag(mag_, rhs.mag_);
  if (negative_) c = -c;
  if (c < 0) return std::strong_ordering::less;
  if (c > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt t = a % b;
    a = std::move(b);
    b = std::move(t);
  }
  return a;
}

std::size_t BigInt::hash() const {
  std::size_t h = negative_ ? 0x9e3779b97f4a7c15ull : 0;
  for (std::uint32_t limb : mag_) h = h * 1099511628211ull + limb;
  return h;
}

}  // namespace advocat::util
