#include "util/bigint.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <utility>

#include "util/fault.hpp"

namespace advocat::util {

namespace {
constexpr std::uint64_t kBase = 1ull << 32;
// Magnitude of INT64_MIN (2^63): the one int64 value whose negation needs
// the heap form.
constexpr std::uint64_t kInt64MinMag = 1ull << 63;

#ifndef NDEBUG
std::atomic<std::uint64_t> g_heap_allocations{0};
#endif

// Live heap-magnitude bytes across all BigInts (feeds the memory ceiling).
std::atomic<std::uint64_t> g_heap_bytes{0};

inline std::uint64_t mag_bytes(const std::vector<std::uint32_t>& mag) {
  return static_cast<std::uint64_t>(mag.size()) * sizeof(std::uint32_t);
}
}  // namespace

BigInt::BigInt(const BigInt& o)
    : negative_(o.negative_), small_(o.small_), mag_(o.mag_) {
  if (!mag_.empty()) {
    g_heap_bytes.fetch_add(mag_bytes(mag_), std::memory_order_relaxed);
  }
}

BigInt::BigInt(BigInt&& o) noexcept
    : negative_(o.negative_), small_(o.small_), mag_(std::move(o.mag_)) {
  // Ownership of the counted bytes moves with the limbs; clear the source
  // (a moved-from vector's state is unspecified) so its destructor cannot
  // double-subtract.
  o.mag_.clear();
}

BigInt& BigInt::operator=(const BigInt& o) {
  if (this == &o) return *this;
  const std::uint64_t old_bytes = mag_bytes(mag_);
  negative_ = o.negative_;
  small_ = o.small_;
  mag_ = o.mag_;
  const std::uint64_t new_bytes = mag_bytes(mag_);
  if (new_bytes != old_bytes) {
    g_heap_bytes.fetch_add(new_bytes - old_bytes, std::memory_order_relaxed);
  }
  return *this;
}

BigInt& BigInt::operator=(BigInt&& o) noexcept {
  if (this == &o) return *this;
  if (!mag_.empty()) {
    g_heap_bytes.fetch_sub(mag_bytes(mag_), std::memory_order_relaxed);
  }
  negative_ = o.negative_;
  small_ = o.small_;
  mag_ = std::move(o.mag_);
  o.mag_.clear();
  return *this;
}

BigInt::~BigInt() {
  if (!mag_.empty()) {
    g_heap_bytes.fetch_sub(mag_bytes(mag_), std::memory_order_relaxed);
  }
}

std::uint64_t BigInt::heap_bytes_in_use() {
  return g_heap_bytes.load(std::memory_order_relaxed);
}

std::uint64_t BigInt::debug_heap_allocations() {
#ifndef NDEBUG
  return g_heap_allocations.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}

void BigInt::debug_reset_heap_allocations() {
#ifndef NDEBUG
  g_heap_allocations.store(0, std::memory_order_relaxed);
#endif
}

std::vector<std::uint32_t> BigInt::magnitude() const {
  if (!is_small()) return mag_;
  std::vector<std::uint32_t> m;
  const std::uint64_t v = abs_u64(small_);
  if (v != 0) {
    m.push_back(static_cast<std::uint32_t>(v & 0xffffffffu));
    if (v >> 32) m.push_back(static_cast<std::uint32_t>(v >> 32));
  }
  return m;
}

BigInt BigInt::from_parts(bool negative, std::vector<std::uint32_t> mag) {
  trim(mag);
  BigInt r;
  if (mag.size() <= 2) {
    std::uint64_t v = 0;
    if (!mag.empty()) v = mag[0];
    if (mag.size() == 2) v |= static_cast<std::uint64_t>(mag[1]) << 32;
    if (v < kInt64MinMag || (negative && v == kInt64MinMag)) {
      // Negate in the unsigned domain so the INT64_MIN magnitude wraps to
      // the right bits instead of overflowing.
      r.small_ = static_cast<std::int64_t>(negative ? 0 - v : v);
      r.negative_ = r.small_ < 0;
      return r;
    }
  }
  r.negative_ = negative;
  r.mag_ = std::move(mag);
  g_heap_bytes.fetch_add(mag_bytes(r.mag_), std::memory_order_relaxed);
  // Latched (never thrown here): a mid-expression unwind could leave a
  // caller's row half-combined, so delivery waits for the solver's
  // cooperative cancellation point.
  fault::defer(fault::Site::kBigIntAlloc);
#ifndef NDEBUG
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
#endif
  return r;
}

BigInt BigInt::from_string(const std::string& s) {
  if (s.empty()) throw std::invalid_argument("BigInt: empty string");
  std::size_t i = 0;
  bool neg = false;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    i = 1;
    if (s.size() == 1) throw std::invalid_argument("BigInt: sign only");
  }
  BigInt r;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') throw std::invalid_argument("BigInt: bad digit");
    r = r * BigInt(10) + BigInt(s[i] - '0');
  }
  if (neg) r = -r;
  return r;
}

std::int64_t BigInt::to_int64() const {
  if (!is_small()) throw std::overflow_error("BigInt::to_int64");
  return small_;
}

std::string BigInt::to_string() const {
  if (is_small()) return std::to_string(small_);
  // Repeated division by 10^9 to produce decimal chunks.
  std::vector<std::uint32_t> mag = mag_;
  std::string out;
  while (!mag.empty()) {
    std::uint64_t rem = 0;
    for (std::size_t i = mag.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | mag[i];
      mag[i] = static_cast<std::uint32_t>(cur / 1000000000u);
      rem = cur % 1000000000u;
    }
    trim(mag);
    std::string chunk = std::to_string(rem);
    if (!mag.empty()) chunk.insert(0, 9 - chunk.size(), '0');
    out.insert(0, chunk);
  }
  if (negative_) out.insert(0, 1, '-');
  return out;
}

BigInt BigInt::operator-() const {
  if (is_small()) {
    if (small_ == std::numeric_limits<std::int64_t>::min()) {
      return from_parts(false, {0u, 0x80000000u});
    }
    return BigInt(-small_);
  }
  // A positive heap magnitude of exactly 2^63 demotes to INT64_MIN here.
  return from_parts(!negative_, mag_);
}

BigInt BigInt::abs() const {
  if (is_small()) return small_ < 0 ? -*this : *this;
  return from_parts(false, mag_);
}

int BigInt::cmp_mag(const std::vector<std::uint32_t>& a,
                    const std::vector<std::uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

void BigInt::trim(std::vector<std::uint32_t>& mag) {
  while (!mag.empty() && mag.back() == 0) mag.pop_back();
}

std::vector<std::uint32_t> BigInt::add_mag(const std::vector<std::uint32_t>& a,
                                           const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> r;
  r.reserve(std::max(a.size(), b.size()) + 1);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < std::max(a.size(), b.size()); ++i) {
    std::uint64_t sum = carry;
    if (i < a.size()) sum += a[i];
    if (i < b.size()) sum += b[i];
    r.push_back(static_cast<std::uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry) r.push_back(static_cast<std::uint32_t>(carry));
  return r;
}

std::vector<std::uint32_t> BigInt::sub_mag(const std::vector<std::uint32_t>& a,
                                           const std::vector<std::uint32_t>& b) {
  std::vector<std::uint32_t> r;
  r.reserve(a.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(a[i]) - borrow -
                        (i < b.size() ? static_cast<std::int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    r.push_back(static_cast<std::uint32_t>(diff));
  }
  trim(r);
  return r;
}

std::vector<std::uint32_t> BigInt::mul_mag(const std::vector<std::uint32_t>& a,
                                           const std::vector<std::uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<std::uint32_t> r(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      std::uint64_t cur = static_cast<std::uint64_t>(a[i]) * b[j] + r[i + j] + carry;
      r[i + j] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    std::size_t k = i + b.size();
    while (carry) {
      std::uint64_t cur = r[k] + carry;
      r[k] = static_cast<std::uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  trim(r);
  return r;
}

std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>> BigInt::divmod_mag(
    const std::vector<std::uint32_t>& a, const std::vector<std::uint32_t>& b) {
  if (b.empty()) throw std::domain_error("BigInt: division by zero");
  if (cmp_mag(a, b) < 0) return {{}, a};
  if (b.size() == 1) {
    // Fast path: single-limb divisor.
    std::vector<std::uint32_t> q(a.size());
    std::uint64_t rem = 0;
    for (std::size_t i = a.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | a[i];
      q[i] = static_cast<std::uint32_t>(cur / b[0]);
      rem = cur % b[0];
    }
    trim(q);
    std::vector<std::uint32_t> r;
    if (rem) r.push_back(static_cast<std::uint32_t>(rem));
    return {q, r};
  }
  // Schoolbook long division, bit by bit. Slow but simple; divisor sizes in
  // the invariant engine stay small because rationals normalize by gcd.
  std::vector<std::uint32_t> q(a.size(), 0);
  std::vector<std::uint32_t> rem;
  for (std::size_t bit = a.size() * 32; bit-- > 0;) {
    // rem = rem*2 + bit(a, bit)
    std::uint32_t carry = 0;
    for (auto& limb : rem) {
      std::uint32_t next = limb >> 31;
      limb = (limb << 1) | carry;
      carry = next;
    }
    if (carry) rem.push_back(carry);
    if ((a[bit / 32] >> (bit % 32)) & 1u) {
      if (rem.empty()) rem.push_back(1u);
      else {
        std::uint64_t cur = static_cast<std::uint64_t>(rem[0]) + 1;
        rem[0] = static_cast<std::uint32_t>(cur);
        std::size_t k = 1;
        while (cur >> 32) {
          if (k == rem.size()) rem.push_back(0);
          cur = static_cast<std::uint64_t>(rem[k]) + 1;
          rem[k] = static_cast<std::uint32_t>(cur);
          ++k;
        }
      }
    }
    if (cmp_mag(rem, b) >= 0) {
      rem = sub_mag(rem, b);
      q[bit / 32] |= 1u << (bit % 32);
    }
  }
  trim(q);
  return {q, rem};
}

BigInt BigInt::operator+(const BigInt& rhs) const {
  if (is_small() && rhs.is_small()) {
    std::int64_t r = 0;
    if (!__builtin_add_overflow(small_, rhs.small_, &r)) return BigInt(r);
  }
  const std::vector<std::uint32_t> a = magnitude();
  const std::vector<std::uint32_t> b = rhs.magnitude();
  if (negative_ == rhs.negative_) return from_parts(negative_, add_mag(a, b));
  const int c = cmp_mag(a, b);
  if (c == 0) return BigInt();
  if (c > 0) return from_parts(negative_, sub_mag(a, b));
  return from_parts(rhs.negative_, sub_mag(b, a));
}

BigInt BigInt::operator-(const BigInt& rhs) const {
  if (is_small() && rhs.is_small()) {
    std::int64_t r = 0;
    if (!__builtin_sub_overflow(small_, rhs.small_, &r)) return BigInt(r);
  }
  return *this + (-rhs);
}

BigInt BigInt::operator*(const BigInt& rhs) const {
  if (is_small() && rhs.is_small()) {
    std::int64_t r = 0;
    if (!__builtin_mul_overflow(small_, rhs.small_, &r)) return BigInt(r);
  }
  return from_parts(negative_ != rhs.negative_,
                    mul_mag(magnitude(), rhs.magnitude()));
}

BigInt BigInt::operator/(const BigInt& rhs) const {
  if (rhs.is_zero()) throw std::domain_error("BigInt: division by zero");
  if (is_small() && rhs.is_small()) {
    // INT64_MIN / -1 is the only small/small quotient that overflows.
    if (!(small_ == std::numeric_limits<std::int64_t>::min() &&
          rhs.small_ == -1)) {
      return BigInt(small_ / rhs.small_);
    }
  }
  auto [q, rem] = divmod_mag(magnitude(), rhs.magnitude());
  return from_parts(negative_ != rhs.negative_, std::move(q));
}

BigInt BigInt::operator%(const BigInt& rhs) const {
  if (rhs.is_zero()) throw std::domain_error("BigInt: division by zero");
  if (is_small() && rhs.is_small()) {
    if (small_ == std::numeric_limits<std::int64_t>::min() &&
        rhs.small_ == -1) {
      return BigInt();  // quotient overflows but the remainder is exactly 0
    }
    return BigInt(small_ % rhs.small_);
  }
  auto [q, rem] = divmod_mag(magnitude(), rhs.magnitude());
  return from_parts(negative_, std::move(rem));
}

std::strong_ordering BigInt::operator<=>(const BigInt& rhs) const {
  if (is_small() && rhs.is_small()) return small_ <=> rhs.small_;
  if (negative_ != rhs.negative_)
    return negative_ ? std::strong_ordering::less : std::strong_ordering::greater;
  int c = 0;
  if (is_small() != rhs.is_small()) {
    // Exactly one operand is heap form; by canonicality its magnitude is
    // strictly larger than any small-form magnitude.
    c = is_small() ? -1 : 1;
  } else {
    c = cmp_mag(mag_, rhs.mag_);
  }
  if (negative_) c = -c;
  if (c < 0) return std::strong_ordering::less;
  if (c > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  if (a.is_small() && b.is_small()) {
    std::uint64_t x = abs_u64(a.small_);
    std::uint64_t y = abs_u64(b.small_);
    while (y != 0) {
      const std::uint64_t t = x % y;
      x = y;
      y = t;
    }
    if (x <= static_cast<std::uint64_t>(
                 std::numeric_limits<std::int64_t>::max())) {
      return BigInt(static_cast<std::int64_t>(x));
    }
    return from_parts(false, {0u, 0x80000000u});  // gcd(INT64_MIN, INT64_MIN)
  }
  a = a.abs();
  b = b.abs();
  while (!b.is_zero()) {
    BigInt t = a % b;
    a = std::move(b);
    b = std::move(t);
  }
  return a;
}

std::size_t BigInt::limb_count() const {
  if (!is_small()) return mag_.size();
  const std::uint64_t v = abs_u64(small_);
  if (v == 0) return 0;
  return (v >> 32) != 0 ? 2 : 1;
}

std::size_t BigInt::hash() const {
  // Hashes the as-if limb representation so small and heap forms of the
  // same value (which cannot coexist, but tests compare against history)
  // keep the historical hash values.
  std::size_t h = negative_ ? 0x9e3779b97f4a7c15ull : 0;
  if (is_small()) {
    const std::uint64_t v = abs_u64(small_);
    if (v != 0) {
      h = h * 1099511628211ull + static_cast<std::uint32_t>(v & 0xffffffffu);
      if (v >> 32) h = h * 1099511628211ull + static_cast<std::uint32_t>(v >> 32);
    }
    return h;
  }
  for (std::uint32_t limb : mag_) h = h * 1099511628211ull + limb;
  return h;
}

}  // namespace advocat::util
