#include "xmas/color.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace advocat::xmas {

std::size_t ColorTable::Hash::operator()(const ColorData& c) const {
  std::size_t h = std::hash<std::string>{}(c.type);
  h = h * 31 + static_cast<std::size_t>(c.src + 2);
  h = h * 31 + static_cast<std::size_t>(c.dst + 2);
  h = h * 31 + static_cast<std::size_t>(c.tag + 2);
  return h;
}

ColorId ColorTable::intern(const ColorData& data) {
  auto it = index_.find(data);
  if (it != index_.end()) return it->second;
  const ColorId id = static_cast<ColorId>(colors_.size());
  colors_.push_back(data);
  index_.emplace(data, id);
  return id;
}

ColorId ColorTable::intern(const std::string& type, int src, int dst, int tag) {
  return intern(ColorData{type, static_cast<std::int16_t>(src),
                          static_cast<std::int16_t>(dst),
                          static_cast<std::int16_t>(tag)});
}

std::string ColorTable::name(ColorId id) const {
  const ColorData& c = get(id);
  std::string out = c.type;
  if (c.src >= 0 || c.dst >= 0) {
    out += util::cat("(", static_cast<int>(c.src), "->", static_cast<int>(c.dst), ")");
  }
  if (c.tag >= 0) out += util::cat("#", static_cast<int>(c.tag));
  return out;
}

bool set_insert(ColorSet& set, ColorId id) {
  auto it = std::lower_bound(set.begin(), set.end(), id);
  if (it != set.end() && *it == id) return false;
  set.insert(it, id);
  return true;
}

bool set_contains(const ColorSet& set, ColorId id) {
  return std::binary_search(set.begin(), set.end(), id);
}

bool set_union(ColorSet& dst, const ColorSet& src) {
  bool grew = false;
  for (ColorId id : src) grew |= set_insert(dst, id);
  return grew;
}

}  // namespace advocat::xmas
