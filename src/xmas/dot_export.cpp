#include "xmas/dot_export.hpp"

#include <sstream>

namespace advocat::xmas {

namespace {

const char* shape_of(PrimKind kind) {
  switch (kind) {
    case PrimKind::Queue: return "box3d";
    case PrimKind::Source: return "invtriangle";
    case PrimKind::Sink: return "triangle";
    case PrimKind::Automaton: return "doubleoctagon";
    case PrimKind::Switch: return "diamond";
    case PrimKind::Merge: return "invtrapezium";
    case PrimKind::Fork: return "trapezium";
    case PrimKind::Join: return "house";
    case PrimKind::Function: return "ellipse";
  }
  return "box";
}

}  // namespace

std::string to_dot(const Network& net, const Typing* typing) {
  std::ostringstream os;
  os << "digraph xmas {\n  rankdir=LR;\n  node [fontsize=10];\n";
  for (std::size_t i = 0; i < net.prims().size(); ++i) {
    const Primitive& p = net.prims()[i];
    os << "  p" << i << " [label=\"" << p.name;
    if (p.kind == PrimKind::Queue) os << "\\ncap=" << p.capacity << (p.fifo ? "" : " bag");
    os << "\" shape=" << shape_of(p.kind) << "];\n";
  }
  for (std::size_t c = 0; c < net.channels().size(); ++c) {
    const Channel& ch = net.channels()[c];
    os << "  p" << ch.initiator << " -> p" << ch.target;
    if (typing != nullptr) {
      os << " [label=\"";
      const ColorSet& set = typing->of(static_cast<ChanId>(c));
      for (std::size_t k = 0; k < set.size(); ++k) {
        if (k) os << ",";
        if (k == 4 && set.size() > 5) {
          os << "+" << set.size() - 4;
          break;
        }
        os << net.colors().name(set[k]);
      }
      os << "\" fontsize=8]";
    }
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace advocat::xmas
