#include "xmas/network.hpp"

#include <stdexcept>
#include <unordered_set>

#include "util/strings.hpp"

namespace advocat::xmas {

const char* to_string(PrimKind kind) {
  switch (kind) {
    case PrimKind::Source: return "source";
    case PrimKind::Sink: return "sink";
    case PrimKind::Queue: return "queue";
    case PrimKind::Function: return "function";
    case PrimKind::Fork: return "fork";
    case PrimKind::Join: return "join";
    case PrimKind::Switch: return "switch";
    case PrimKind::Merge: return "merge";
    case PrimKind::Automaton: return "automaton";
  }
  return "?";
}

PrimId Network::add_prim(Primitive p, int n_in, int n_out) {
  p.in.assign(static_cast<std::size_t>(n_in), kNoChan);
  p.out.assign(static_cast<std::size_t>(n_out), kNoChan);
  prims_.push_back(std::move(p));
  return static_cast<PrimId>(prims_.size() - 1);
}

PrimId Network::add_source(const std::string& name, ColorSet colors, bool fair) {
  Primitive p;
  p.kind = PrimKind::Source;
  p.name = name;
  p.source_colors = std::move(colors);
  p.fair = fair;
  return add_prim(std::move(p), 0, 1);
}

PrimId Network::add_sink(const std::string& name, bool fair) {
  Primitive p;
  p.kind = PrimKind::Sink;
  p.name = name;
  p.fair = fair;
  return add_prim(std::move(p), 1, 0);
}

PrimId Network::add_queue(const std::string& name, std::size_t capacity,
                          bool fifo) {
  if (capacity == 0) throw std::invalid_argument("queue capacity must be > 0");
  Primitive p;
  p.kind = PrimKind::Queue;
  p.name = name;
  p.capacity = capacity;
  p.fifo = fifo;
  return add_prim(std::move(p), 1, 1);
}

PrimId Network::add_function(const std::string& name,
                             std::function<ColorId(ColorId)> func) {
  Primitive p;
  p.kind = PrimKind::Function;
  p.name = name;
  p.func = std::move(func);
  return add_prim(std::move(p), 1, 1);
}

PrimId Network::add_fork(const std::string& name) {
  Primitive p;
  p.kind = PrimKind::Fork;
  p.name = name;
  return add_prim(std::move(p), 1, 2);
}

PrimId Network::add_join(const std::string& name) {
  Primitive p;
  p.kind = PrimKind::Join;
  p.name = name;
  return add_prim(std::move(p), 2, 1);
}

PrimId Network::add_switch(const std::string& name, int n_outputs,
                           std::function<int(ColorId)> route) {
  if (n_outputs < 2) throw std::invalid_argument("switch needs >= 2 outputs");
  Primitive p;
  p.kind = PrimKind::Switch;
  p.name = name;
  p.route = std::move(route);
  return add_prim(std::move(p), 1, n_outputs);
}

PrimId Network::add_merge(const std::string& name, int n_inputs) {
  if (n_inputs < 2) throw std::invalid_argument("merge needs >= 2 inputs");
  Primitive p;
  p.kind = PrimKind::Merge;
  p.name = name;
  return add_prim(std::move(p), n_inputs, 1);
}

PrimId Network::add_automaton(Automaton automaton) {
  Primitive p;
  p.kind = PrimKind::Automaton;
  p.name = automaton.name;
  p.automaton = static_cast<int>(automata_.size());
  const int n_in = automaton.num_in;
  const int n_out = automaton.num_out;
  automata_.push_back(std::move(automaton));
  const PrimId id = add_prim(std::move(p), n_in, n_out);
  automaton_prims_.push_back(id);
  return id;
}

ChanId Network::connect(PrimId from, int out_port, PrimId to, int in_port,
                        std::string name) {
  Primitive& src = prims_.at(static_cast<std::size_t>(from));
  Primitive& dst = prims_.at(static_cast<std::size_t>(to));
  if (out_port < 0 || static_cast<std::size_t>(out_port) >= src.out.size())
    throw std::out_of_range("connect: bad out-port on " + src.name);
  if (in_port < 0 || static_cast<std::size_t>(in_port) >= dst.in.size())
    throw std::out_of_range("connect: bad in-port on " + dst.name);
  if (src.out[static_cast<std::size_t>(out_port)] != kNoChan)
    throw std::logic_error("connect: out-port already wired on " + src.name);
  if (dst.in[static_cast<std::size_t>(in_port)] != kNoChan)
    throw std::logic_error("connect: in-port already wired on " + dst.name);
  Channel c;
  c.initiator = from;
  c.init_port = out_port;
  c.target = to;
  c.tgt_port = in_port;
  c.name = std::move(name);
  const ChanId id = static_cast<ChanId>(chans_.size());
  chans_.push_back(std::move(c));
  src.out[static_cast<std::size_t>(out_port)] = id;
  dst.in[static_cast<std::size_t>(in_port)] = id;
  return id;
}

std::vector<PrimId> Network::prims_of_kind(PrimKind kind) const {
  std::vector<PrimId> out;
  for (std::size_t i = 0; i < prims_.size(); ++i) {
    if (prims_[i].kind == kind) out.push_back(static_cast<PrimId>(i));
  }
  return out;
}

std::string Network::channel_name(ChanId id) const {
  const Channel& c = channel(id);
  if (!c.name.empty()) return c.name;
  return util::cat(prim(c.initiator).name, ".", c.init_port, ">",
                   prim(c.target).name, ".", c.tgt_port);
}

std::vector<std::string> Network::validate() const {
  std::vector<std::string> errors;
  std::unordered_set<std::string> names;
  for (std::size_t i = 0; i < prims_.size(); ++i) {
    const Primitive& p = prims_[i];
    if (!names.insert(p.name).second)
      errors.push_back("duplicate primitive name: " + p.name);
    for (std::size_t port = 0; port < p.in.size(); ++port) {
      if (p.in[port] == kNoChan)
        errors.push_back(util::cat(p.name, ": in-port ", port, " unconnected"));
    }
    for (std::size_t port = 0; port < p.out.size(); ++port) {
      if (p.out[port] == kNoChan)
        errors.push_back(util::cat(p.name, ": out-port ", port, " unconnected"));
    }
    switch (p.kind) {
      case PrimKind::Queue:
        if (p.capacity == 0) errors.push_back(p.name + ": zero capacity");
        break;
      case PrimKind::Source:
        if (p.source_colors.empty())
          errors.push_back(p.name + ": source without colors");
        break;
      case PrimKind::Function:
        if (!p.func) errors.push_back(p.name + ": function without mapping");
        break;
      case PrimKind::Switch:
        if (!p.route) errors.push_back(p.name + ": switch without routing");
        break;
      case PrimKind::Automaton: {
        if (p.automaton < 0 ||
            static_cast<std::size_t>(p.automaton) >= automata_.size()) {
          errors.push_back(p.name + ": bad automaton index");
          break;
        }
        const Automaton& a = automata_[static_cast<std::size_t>(p.automaton)];
        if (a.states.empty()) errors.push_back(p.name + ": automaton without states");
        if (a.initial < 0 || a.initial >= a.num_states())
          errors.push_back(p.name + ": bad initial state");
        for (const auto& t : a.transitions) {
          if (t.from < 0 || t.from >= a.num_states() || t.to < 0 ||
              t.to >= a.num_states()) {
            errors.push_back(p.name + ": transition with bad state: " + t.label);
          }
          if (!t.guard || !t.transform)
            errors.push_back(p.name + ": transition missing guard/transform: " +
                             t.label);
        }
        break;
      }
      default:
        break;
    }
  }
  for (std::size_t c = 0; c < chans_.size(); ++c) {
    const Channel& ch = chans_[c];
    if (ch.initiator < 0 ||
        static_cast<std::size_t>(ch.initiator) >= prims_.size() ||
        ch.target < 0 || static_cast<std::size_t>(ch.target) >= prims_.size()) {
      errors.push_back(util::cat("channel ", c, ": dangling endpoint"));
    }
  }
  return errors;
}

std::size_t Network::num_prims_desugared() const {
  std::size_t n = 0;
  for (const Primitive& p : prims_) {
    switch (p.kind) {
      case PrimKind::Switch:
        // An N-way switch is a chain of N-1 binary switches.
        n += p.out.size() - 1;
        break;
      case PrimKind::Merge:
        n += p.in.size() - 1;
        break;
      default:
        n += 1;
        break;
    }
  }
  return n;
}

}  // namespace advocat::xmas
