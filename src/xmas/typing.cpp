#include "xmas/typing.hpp"

namespace advocat::xmas {

Typing Typing::derive(const Network& net) {
  Typing typing;
  typing.sets_.assign(net.num_channels(), {});
  auto& T = typing.sets_;

  bool changed = true;
  while (changed) {
    changed = false;
    for (const Primitive& p : net.prims()) {
      switch (p.kind) {
        case PrimKind::Source:
          changed |= set_union(T[static_cast<std::size_t>(p.out[0])], p.source_colors);
          break;
        case PrimKind::Queue:
          changed |= set_union(T[static_cast<std::size_t>(p.out[0])],
                               T[static_cast<std::size_t>(p.in[0])]);
          break;
        case PrimKind::Function:
          for (ColorId d : T[static_cast<std::size_t>(p.in[0])]) {
            changed |= set_insert(T[static_cast<std::size_t>(p.out[0])], p.func(d));
          }
          break;
        case PrimKind::Fork:
          changed |= set_union(T[static_cast<std::size_t>(p.out[0])],
                               T[static_cast<std::size_t>(p.in[0])]);
          changed |= set_union(T[static_cast<std::size_t>(p.out[1])],
                               T[static_cast<std::size_t>(p.in[0])]);
          break;
        case PrimKind::Join:
          changed |= set_union(T[static_cast<std::size_t>(p.out[0])],
                               T[static_cast<std::size_t>(p.in[0])]);
          break;
        case PrimKind::Switch:
          for (ColorId d : T[static_cast<std::size_t>(p.in[0])]) {
            const int port = p.route(d);
            if (port >= 0 && static_cast<std::size_t>(port) < p.out.size()) {
              changed |= set_insert(T[static_cast<std::size_t>(p.out[static_cast<std::size_t>(port)])], d);
            }
          }
          break;
        case PrimKind::Merge:
          for (ChanId in : p.in) {
            changed |= set_union(T[static_cast<std::size_t>(p.out[0])],
                                 T[static_cast<std::size_t>(in)]);
          }
          break;
        case PrimKind::Automaton: {
          const Automaton& a = net.automaton_of(p);
          for (const AutTransition& t : a.transitions) {
            for (int i = 0; i < a.num_in; ++i) {
              for (ColorId d : T[static_cast<std::size_t>(p.in[static_cast<std::size_t>(i)])]) {
                if (!t.guard(i, d)) continue;
                if (auto em = t.transform(i, d)) {
                  const auto [o, d2] = *em;
                  changed |= set_insert(
                      T[static_cast<std::size_t>(p.out[static_cast<std::size_t>(o)])], d2);
                }
              }
            }
          }
          break;
        }
        case PrimKind::Sink:
          break;
      }
    }
  }
  return typing;
}

std::size_t Typing::num_pairs() const {
  std::size_t n = 0;
  for (const ColorSet& s : sets_) n += s.size();
  return n;
}

}  // namespace advocat::xmas
