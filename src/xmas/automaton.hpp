// xMAS IO automata (Definition 1 of the paper).
//
// An automaton is a finite state machine with an xMAS channel interface: it
// owns a number of in-ports and out-ports that are wired to channels of the
// surrounding network. Every transition is labelled with
//   * an event ε(i, d): is the automaton willing to consume packet d from
//     in-port i in this transition, and
//   * a transformation φ(i, d): either ⊥ (consume without producing) or a
//     pair (o, d') — emit packet d' on out-port o in the same step.
//
// The automaton type lives in the xmas module because the paper treats
// automata as first-class xMAS primitives; the fluent builder for writing
// protocols is in src/automata.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "xmas/color.hpp"

namespace advocat::xmas {

/// φ result: out-port index and emitted color.
using Emission = std::pair<int, ColorId>;

struct AutTransition {
  int from = 0;
  int to = 0;
  /// ε — true when the transition can consume color `d` from in-port `i`.
  std::function<bool(int i, ColorId d)> guard;
  /// φ — emission triggered by consuming (i, d); std::nullopt encodes ⊥.
  std::function<std::optional<Emission>(int i, ColorId d)> transform;
  std::string label;
};

struct Automaton {
  std::string name;
  std::vector<std::string> states;
  int initial = 0;
  int num_in = 0;   ///< in-ports (indices 0..num_in-1)
  int num_out = 0;  ///< out-ports
  std::vector<AutTransition> transitions;

  [[nodiscard]] int num_states() const { return static_cast<int>(states.size()); }

  /// Indices of transitions leaving state `s`.
  [[nodiscard]] std::vector<int> transitions_from(int s) const {
    std::vector<int> out;
    for (std::size_t t = 0; t < transitions.size(); ++t) {
      if (transitions[t].from == s) out.push_back(static_cast<int>(t));
    }
    return out;
  }
};

}  // namespace advocat::xmas
