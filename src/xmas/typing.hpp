// Per-channel color derivation — the paper's "T-derivation".
//
// T(c) over-approximates the set of colors that can ever appear on channel
// c. It is the least fixpoint of the forward propagation rules:
//   source.out  ⊇ declared colors
//   queue.out   ⊇ T(queue.in)
//   function.out⊇ f(T(in))
//   fork.a/b    ⊇ T(in)
//   join.out    ⊇ T(data-in)        (token input contributes no data)
//   switch.out_k⊇ {d ∈ T(in) | route(d) = k}
//   merge.out   ⊇ ∪_j T(in_j)
//   automaton out-port o ⊇ {d' | ∃ transition t, in-port i, d ∈ T(in_i):
//                                ε_t(i,d) ∧ φ_t(i,d) = (o,d')}
#pragma once

#include <vector>

#include "xmas/network.hpp"

namespace advocat::xmas {

class Typing {
 public:
  /// Runs the fixpoint; O(iterations × channels × colors).
  static Typing derive(const Network& net);

  [[nodiscard]] const ColorSet& of(ChanId c) const { return sets_.at(static_cast<std::size_t>(c)); }
  [[nodiscard]] std::size_t num_channels() const { return sets_.size(); }

  /// Total number of (channel, color) pairs — the analyses' variable budget.
  [[nodiscard]] std::size_t num_pairs() const;

 private:
  std::vector<ColorSet> sets_;
};

}  // namespace advocat::xmas
