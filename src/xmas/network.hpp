// xMAS networks.
//
// A network is a set of primitives wired by channels. Each channel connects
// exactly one initiator out-port to exactly one target in-port and carries
// the three xMAS signals irdy/trdy/data (the signals themselves only appear
// in the analyses; the network stores structure and parameters).
//
// Supported primitives: the eight basic xMAS primitives of the paper
// (queue, function, source, sink, fork, join, switch, merge) plus IO
// automata. Switch and merge are generalized to N ports, which desugars to
// the binary versions; analyses treat them natively.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "xmas/automaton.hpp"
#include "xmas/color.hpp"

namespace advocat::xmas {

using PrimId = std::int32_t;
using ChanId = std::int32_t;
inline constexpr ChanId kNoChan = -1;

enum class PrimKind {
  Source,
  Sink,
  Queue,
  Function,
  Fork,
  Join,
  Switch,
  Merge,
  Automaton,
};

[[nodiscard]] const char* to_string(PrimKind kind);

struct Primitive {
  PrimKind kind;
  std::string name;
  std::vector<ChanId> in;   ///< per in-port, kNoChan until connected
  std::vector<ChanId> out;  ///< per out-port, kNoChan until connected

  // --- kind-specific parameters ---
  std::size_t capacity = 0;  ///< Queue: number of packets it can store
  /// Queue: FIFO when true; when false the queue is a bag, modelling the
  /// paper's "stall and move to the end of the queue" consumption.
  bool fifo = true;
  ColorSet source_colors;   ///< Source: colors it may inject
  bool fair = true;         ///< Source/Sink: fair (live) vs dead
  std::function<ColorId(ColorId)> func;   ///< Function: data transform
  std::function<int(ColorId)> route;      ///< Switch: color -> out-port
  int automaton = -1;       ///< Automaton: index into Network::automata()
};

struct Channel {
  PrimId initiator = -1;
  int init_port = 0;
  PrimId target = -1;
  int tgt_port = 0;
  std::string name;
};

class Network {
 public:
  ColorTable& colors() { return colors_; }
  [[nodiscard]] const ColorTable& colors() const { return colors_; }

  // --- builders (names must be unique; used in reports and invariants) ---
  PrimId add_source(const std::string& name, ColorSet colors, bool fair = true);
  PrimId add_sink(const std::string& name, bool fair = true);
  PrimId add_queue(const std::string& name, std::size_t capacity,
                   bool fifo = true);
  PrimId add_function(const std::string& name,
                      std::function<ColorId(ColorId)> func);
  PrimId add_fork(const std::string& name);
  /// Join: in-port 0 is the data input (copied to the output), in-port 1 the
  /// token input.
  PrimId add_join(const std::string& name);
  PrimId add_switch(const std::string& name, int n_outputs,
                    std::function<int(ColorId)> route);
  PrimId add_merge(const std::string& name, int n_inputs);
  /// Adds an automaton primitive; ports come from the automaton definition.
  PrimId add_automaton(Automaton automaton);

  /// Wires (from, out_port) -> (to, in_port). Both ports must be free.
  ChanId connect(PrimId from, int out_port, PrimId to, int in_port,
                 std::string name = {});

  // --- accessors ---
  [[nodiscard]] const std::vector<Primitive>& prims() const { return prims_; }
  [[nodiscard]] const Primitive& prim(PrimId id) const { return prims_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] const std::vector<Channel>& channels() const { return chans_; }
  [[nodiscard]] const Channel& channel(ChanId id) const { return chans_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] const std::vector<Automaton>& automata() const { return automata_; }
  [[nodiscard]] const Automaton& automaton_of(const Primitive& p) const {
    return automata_.at(static_cast<std::size_t>(p.automaton));
  }
  /// Primitive that owns automaton index `a`.
  [[nodiscard]] PrimId automaton_prim(int a) const { return automaton_prims_.at(static_cast<std::size_t>(a)); }

  [[nodiscard]] std::vector<PrimId> prims_of_kind(PrimKind kind) const;
  [[nodiscard]] std::size_t num_prims() const { return prims_.size(); }
  [[nodiscard]] std::size_t num_channels() const { return chans_.size(); }
  [[nodiscard]] std::size_t num_queues() const { return prims_of_kind(PrimKind::Queue).size(); }

  /// Channel display name (explicit name or "initiator.port>target.port").
  [[nodiscard]] std::string channel_name(ChanId id) const;

  /// Structural validation: every port wired exactly once, parameters
  /// present, automaton indices in range, port counts consistent. Returns a
  /// list of human-readable problems (empty = valid).
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Counts all primitives after desugaring N-way switches/merges into
  /// binary trees — the convention the paper's "2844 primitives" uses.
  [[nodiscard]] std::size_t num_prims_desugared() const;

 private:
  PrimId add_prim(Primitive p, int n_in, int n_out);

  ColorTable colors_;
  std::vector<Primitive> prims_;
  std::vector<Channel> chans_;
  std::vector<Automaton> automata_;
  std::vector<PrimId> automaton_prims_;
};

}  // namespace advocat::xmas
