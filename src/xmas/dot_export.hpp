// Graphviz export of xMAS networks (debugging/documentation aid).
#pragma once

#include <string>

#include "xmas/network.hpp"
#include "xmas/typing.hpp"

namespace advocat::xmas {

/// Renders the network as a Graphviz digraph. When `typing` is non-null,
/// channel edges are annotated with their derived color sets.
[[nodiscard]] std::string to_dot(const Network& net,
                                 const Typing* typing = nullptr);

}  // namespace advocat::xmas
