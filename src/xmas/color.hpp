// Packet colors.
//
// Following the paper's use of "colors" (in the colored-Petri-net sense), a
// color is the message-type abstraction of a packet: a type name plus
// optional source/destination node ids and a free tag (used e.g. for the
// virtual-channel class). Colors are interned into dense ids so that color
// sets are small sorted vectors and per-channel typing ("T-derivation") is a
// cheap fixpoint.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace advocat::xmas {

using ColorId = std::int32_t;
inline constexpr ColorId kNoColor = -1;

struct ColorData {
  std::string type;
  std::int16_t src = -1;  ///< originating node id, -1 when unused
  std::int16_t dst = -1;  ///< destination node id, -1 when unused
  std::int16_t tag = -1;  ///< free field (e.g. VC class), -1 when unused

  bool operator==(const ColorData&) const = default;
};

/// Interns ColorData values to dense ColorIds. Owned by a Network; ids are
/// only meaningful relative to their table.
class ColorTable {
 public:
  ColorId intern(const ColorData& data);
  /// Convenience: intern {type, src, dst, tag}.
  ColorId intern(const std::string& type, int src = -1, int dst = -1,
                 int tag = -1);

  [[nodiscard]] const ColorData& get(ColorId id) const { return colors_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] std::size_t size() const { return colors_.size(); }

  /// Rendering like "get(0->3)" or "token".
  [[nodiscard]] std::string name(ColorId id) const;

 private:
  struct Hash {
    std::size_t operator()(const ColorData& c) const;
  };
  std::vector<ColorData> colors_;
  std::unordered_map<ColorData, ColorId, Hash> index_;
};

/// Sorted, duplicate-free vector of color ids.
using ColorSet = std::vector<ColorId>;

/// Inserts `id` keeping the set sorted; returns true if it was new.
bool set_insert(ColorSet& set, ColorId id);
[[nodiscard]] bool set_contains(const ColorSet& set, ColorId id);
/// dst := dst ∪ src; returns true if dst grew.
bool set_union(ColorSet& dst, const ColorSet& src);

}  // namespace advocat::xmas
