// Column space of the flow matrix.
//
// Four variable families, laid out in one dense column index space:
//   λ(c,d)   transfer counters per (channel, color)      — eliminated
//   κ(A,t)   firing counters per (automaton, transition) — eliminated
//   #q.d     occupancy per (queue, color)                — kept
//   A.s      state indicator per (automaton, state)      — kept
// The eliminated families come first so `is_eliminated` is one comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xmas/network.hpp"
#include "xmas/typing.hpp"

namespace advocat::inv {

class VarSpace {
 public:
  VarSpace(const xmas::Network& net, const xmas::Typing& typing);

  [[nodiscard]] std::int32_t lambda(xmas::ChanId c, xmas::ColorId d) const;
  [[nodiscard]] std::int32_t kappa(int automaton_index, int transition) const;
  [[nodiscard]] std::int32_t occ(xmas::PrimId queue, xmas::ColorId d) const;
  [[nodiscard]] std::int32_t state(int automaton_index, int s) const;

  [[nodiscard]] bool is_eliminated(std::int32_t col) const {
    return col < first_kept_;
  }
  [[nodiscard]] std::int32_t num_cols() const { return num_cols_; }
  [[nodiscard]] std::int32_t num_kept() const { return num_cols_ - first_kept_; }

  /// Paper-style rendering: "lam[q0.out:req]", "kap[S.t0]", "#q0.req",
  /// "S.s0".
  [[nodiscard]] std::string name(std::int32_t col) const;
  /// SMT variable name for kept columns (matches deadlock/varnames.hpp).
  [[nodiscard]] std::string smt_name(std::int32_t col) const;

 private:
  const xmas::Network& net_;
  const xmas::Typing& typing_;

  std::vector<std::int32_t> lambda_base_;  // per channel
  std::vector<std::int32_t> kappa_base_;   // per automaton
  std::vector<std::int32_t> occ_base_;     // per prim (queues only, else -1)
  std::vector<std::int32_t> state_base_;   // per automaton
  std::vector<xmas::PrimId> queue_ids_;    // queues in occ layout order
  std::int32_t first_kept_ = 0;
  std::int32_t num_cols_ = 0;
};

}  // namespace advocat::inv
