#include "invariants/varspace.hpp"

#include <algorithm>
#include <stdexcept>

#include "deadlock/varnames.hpp"

namespace advocat::inv {

using xmas::ChanId;
using xmas::ColorId;
using xmas::ColorSet;
using xmas::PrimId;
using xmas::PrimKind;

namespace {

// Position of d within the sorted set; -1 if absent.
std::int32_t color_index(const ColorSet& set, ColorId d) {
  auto it = std::lower_bound(set.begin(), set.end(), d);
  if (it == set.end() || *it != d) return -1;
  return static_cast<std::int32_t>(it - set.begin());
}

}  // namespace

VarSpace::VarSpace(const xmas::Network& net, const xmas::Typing& typing)
    : net_(net), typing_(typing) {
  std::int32_t next = 0;
  lambda_base_.resize(net.num_channels());
  for (std::size_t c = 0; c < net.num_channels(); ++c) {
    lambda_base_[c] = next;
    next += static_cast<std::int32_t>(typing.of(static_cast<ChanId>(c)).size());
  }
  kappa_base_.resize(net.automata().size());
  for (std::size_t a = 0; a < net.automata().size(); ++a) {
    kappa_base_[a] = next;
    next += static_cast<std::int32_t>(net.automata()[a].transitions.size());
  }
  first_kept_ = next;
  occ_base_.assign(net.num_prims(), -1);
  for (PrimId q : net.prims_of_kind(PrimKind::Queue)) {
    occ_base_[static_cast<std::size_t>(q)] = next;
    queue_ids_.push_back(q);
    next += static_cast<std::int32_t>(typing.of(net.prim(q).in[0]).size());
  }
  state_base_.resize(net.automata().size());
  for (std::size_t a = 0; a < net.automata().size(); ++a) {
    state_base_[a] = next;
    next += net.automata()[a].num_states();
  }
  num_cols_ = next;
}

std::int32_t VarSpace::lambda(ChanId c, ColorId d) const {
  const std::int32_t i = color_index(typing_.of(c), d);
  if (i < 0)
    throw std::out_of_range("VarSpace::lambda: color not in T(" +
                            net_.channel_name(c) + ")");
  return lambda_base_[static_cast<std::size_t>(c)] + i;
}

std::int32_t VarSpace::kappa(int automaton_index, int transition) const {
  return kappa_base_.at(static_cast<std::size_t>(automaton_index)) + transition;
}

std::int32_t VarSpace::occ(PrimId queue, ColorId d) const {
  const std::int32_t base = occ_base_.at(static_cast<std::size_t>(queue));
  if (base < 0) throw std::out_of_range("VarSpace::occ: not a queue");
  const std::int32_t i =
      color_index(typing_.of(net_.prim(queue).in[0]), d);
  if (i < 0) throw std::out_of_range("VarSpace::occ: color not stored");
  return base + i;
}

std::int32_t VarSpace::state(int automaton_index, int s) const {
  return state_base_.at(static_cast<std::size_t>(automaton_index)) + s;
}

std::string VarSpace::name(std::int32_t col) const {
  // Linear scan over family bases; only used for printing.
  for (std::size_t c = 0; c < lambda_base_.size(); ++c) {
    const ColorSet& set = typing_.of(static_cast<ChanId>(c));
    if (col >= lambda_base_[c] &&
        col < lambda_base_[c] + static_cast<std::int32_t>(set.size())) {
      return "lam[" + net_.channel_name(static_cast<ChanId>(c)) + ":" +
             net_.colors().name(set[static_cast<std::size_t>(col - lambda_base_[c])]) + "]";
    }
  }
  for (std::size_t a = 0; a < kappa_base_.size(); ++a) {
    const auto& aut = net_.automata()[a];
    if (col >= kappa_base_[a] &&
        col < kappa_base_[a] + static_cast<std::int32_t>(aut.transitions.size())) {
      return "kap[" + aut.name + "." +
             aut.transitions[static_cast<std::size_t>(col - kappa_base_[a])].label + "]";
    }
  }
  for (PrimId q : queue_ids_) {
    const ColorSet& set = typing_.of(net_.prim(q).in[0]);
    const std::int32_t base = occ_base_[static_cast<std::size_t>(q)];
    if (col >= base && col < base + static_cast<std::int32_t>(set.size())) {
      return "#" + net_.prim(q).name + "." +
             net_.colors().name(set[static_cast<std::size_t>(col - base)]);
    }
  }
  for (std::size_t a = 0; a < state_base_.size(); ++a) {
    const auto& aut = net_.automata()[a];
    if (col >= state_base_[a] &&
        col < state_base_[a] + aut.num_states()) {
      return aut.name + "." + aut.states[static_cast<std::size_t>(col - state_base_[a])];
    }
  }
  return "col" + std::to_string(col);
}

std::string VarSpace::smt_name(std::int32_t col) const {
  for (PrimId q : queue_ids_) {
    const ColorSet& set = typing_.of(net_.prim(q).in[0]);
    const std::int32_t base = occ_base_[static_cast<std::size_t>(q)];
    if (col >= base && col < base + static_cast<std::int32_t>(set.size())) {
      return occ_var_name(net_, q, set[static_cast<std::size_t>(col - base)]);
    }
  }
  for (std::size_t a = 0; a < state_base_.size(); ++a) {
    const auto& aut = net_.automata()[a];
    if (col >= state_base_[a] && col < state_base_[a] + aut.num_states()) {
      return state_var_name(net_, static_cast<int>(a), col - state_base_[a]);
    }
  }
  throw std::out_of_range("VarSpace::smt_name: eliminated column");
}

}  // namespace advocat::inv
