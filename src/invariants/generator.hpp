// Cross-layer invariant generation (Section 4 of the paper).
//
// Extends the flow-invariant method of Chatterjee & Kishinevsky (CAV'10)
// with the paper's four automaton equation families:
//   (0) Σ_s A.s = 1                       (one-hot state encoding)
//   (1) Σ_{t into s} κ_t = Σ_{t out of s} κ_t + A.s − [s = s₀]
//   (2) per in-channel equivalence class I:  Σ_{(i,d)∈I} λ = Σ_{t∈T(I)} κ_t
//   (3) per out-channel equivalence class O: Σ_{(o,d')∈O} λ = Σ_{t∈T(O)} κ_t
// plus the standard per-primitive flow equations (queue, function, fork,
// join, switch, merge). Sweeping the λ and κ columns by exact Gaussian
// elimination leaves linear equations over queue occupancies #q.d and state
// indicators A.s — the cross-layer invariants. Rows whose eliminated
// coefficients all share a sign additionally yield ≤-inequalities (λ, κ are
// nonnegative counters).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "linalg/sparse_row.hpp"
#include "smt/expr.hpp"
#include "invariants/varspace.hpp"

namespace advocat::inv {

struct InvariantSet {
  /// Equalities Σ c·x + k = 0 over kept columns, canonical RREF.
  std::vector<linalg::SparseRow> equalities;
  /// Inequalities Σ c·x + k ≤ 0 over kept columns.
  std::vector<linalg::SparseRow> inequalities;
  /// Column space used by the rows. References `net` and `typing` passed to
  /// generate(); the InvariantSet must not outlive them.
  std::unique_ptr<VarSpace> vars;

  std::size_t rows_built = 0;
  double seconds = 0.0;

  [[nodiscard]] std::vector<std::string> to_strings() const;
  /// Renders every invariant as an SMT assertion over the shared variable
  /// names (see deadlock/varnames.hpp).
  [[nodiscard]] std::vector<smt::ExprId> to_smt(smt::ExprFactory& f) const;
};

/// Builds the flow matrix for `net` and sweeps λ/κ.
InvariantSet generate(const xmas::Network& net, const xmas::Typing& typing,
                      bool derive_inequalities = true);

/// The raw equation rows before elimination; exposed for tests.
std::vector<linalg::SparseRow> build_flow_rows(const xmas::Network& net,
                                               const xmas::Typing& typing,
                                               const VarSpace& vars);

/// Flow-completion constraints: asserts the *unprojected* flow system into
/// `f`, with fresh nonnegative integer variables for every λ/κ column tied
/// to the shared occupancy/state variables. A state satisfies these iff a
/// nonnegative flow count assignment explains it — strictly stronger
/// pruning than the projected equalities (which discard λ, κ ≥ 0), at the
/// cost of a larger SMT query. Extension over the paper's method.
std::vector<smt::ExprId> flow_completion_smt(const xmas::Network& net,
                                             const xmas::Typing& typing,
                                             smt::ExprFactory& f);

}  // namespace advocat::inv
