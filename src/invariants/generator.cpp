#include "invariants/generator.hpp"

#include <numeric>
#include <unordered_map>

#include "linalg/eliminator.hpp"
#include "smt/rows.hpp"
#include "util/stopwatch.hpp"

namespace advocat::inv {

using linalg::Rational;
using linalg::SparseRow;
using xmas::ChanId;
using xmas::ColorId;
using xmas::ColorSet;
using xmas::PrimId;
using xmas::PrimKind;
using xmas::Primitive;

namespace {

/// Minimal union-find over dense indices.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

/// Flow equations of one automaton: families (0)–(3) of the header comment.
void build_automaton_rows(const xmas::Network& net, const xmas::Typing& typing,
                          const VarSpace& vars, int ai,
                          std::vector<SparseRow>& rows) {
  const xmas::Automaton& a = net.automata()[static_cast<std::size_t>(ai)];
  const Primitive& p = net.prim(net.automaton_prim(ai));

  // (0) one-hot: Σ_s A.s − 1 = 0.
  {
    SparseRow row;
    for (int s = 0; s < a.num_states(); ++s) row.add(vars.state(ai, s), 1);
    row.add_constant(-1);
    rows.push_back(std::move(row));
  }

  // (1) state balance: Σ_in κ − Σ_out κ − A.s + [s = s₀] = 0.
  for (int s = 0; s < a.num_states(); ++s) {
    SparseRow row;
    for (std::size_t t = 0; t < a.transitions.size(); ++t) {
      if (a.transitions[t].to == s) row.add(vars.kappa(ai, static_cast<int>(t)), 1);
      if (a.transitions[t].from == s) row.add(vars.kappa(ai, static_cast<int>(t)), -1);
    }
    row.add(vars.state(ai, s), -1);
    if (s == a.initial) row.add_constant(1);
    rows.push_back(std::move(row));
  }

  // Enumerate consumable tuples (i, d).
  struct InTuple {
    int port;
    ColorId d;
  };
  std::vector<InTuple> in_tuples;
  for (int i = 0; i < a.num_in; ++i) {
    for (ColorId d : typing.of(p.in[static_cast<std::size_t>(i)])) {
      in_tuples.push_back({i, d});
    }
  }

  // (2) in-channel classes: union tuples that can enable one transition.
  {
    UnionFind uf(in_tuples.size());
    std::vector<std::vector<std::size_t>> enablers(a.transitions.size());
    for (std::size_t k = 0; k < in_tuples.size(); ++k) {
      for (std::size_t t = 0; t < a.transitions.size(); ++t) {
        if (a.transitions[t].guard(in_tuples[k].port, in_tuples[k].d)) {
          enablers[t].push_back(k);
        }
      }
    }
    for (const auto& group : enablers) {
      for (std::size_t j = 1; j < group.size(); ++j) uf.unite(group[0], group[j]);
    }
    // class root -> (tuples, transitions)
    std::unordered_map<std::size_t, SparseRow> class_rows;
    for (std::size_t k = 0; k < in_tuples.size(); ++k) {
      class_rows[uf.find(k)].add(
          vars.lambda(p.in[static_cast<std::size_t>(in_tuples[k].port)], in_tuples[k].d), 1);
    }
    for (std::size_t t = 0; t < a.transitions.size(); ++t) {
      if (enablers[t].empty()) continue;  // never-firing transition: κ free
      class_rows[uf.find(enablers[t][0])].add(
          vars.kappa(ai, static_cast<int>(t)), -1);
    }
    for (auto& [root, row] : class_rows) rows.push_back(std::move(row));
    // κ of a transition no tuple can enable is identically zero.
    for (std::size_t t = 0; t < a.transitions.size(); ++t) {
      if (!enablers[t].empty()) continue;
      SparseRow row;
      row.add(vars.kappa(ai, static_cast<int>(t)), 1);
      rows.push_back(std::move(row));
    }
  }

  // (3) out-channel classes: union tuples producible by one transition.
  {
    struct OutTuple {
      int port;
      ColorId d;
    };
    std::vector<OutTuple> out_tuples;
    std::unordered_map<std::uint64_t, std::size_t> out_index;
    auto out_key = [](int port, ColorId d) {
      return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(port)) << 32) |
             static_cast<std::uint32_t>(d);
    };
    // productions[t] = set of out-tuple indices; bot_possible[t] = t can
    // fire without producing.
    std::vector<std::vector<std::size_t>> productions(a.transitions.size());
    std::vector<bool> bot_possible(a.transitions.size(), false);
    std::vector<bool> fires(a.transitions.size(), false);
    for (std::size_t t = 0; t < a.transitions.size(); ++t) {
      for (const auto& [port, d] : in_tuples) {
        if (!a.transitions[t].guard(port, d)) continue;
        fires[t] = true;
        auto em = a.transitions[t].transform(port, d);
        if (!em.has_value()) {
          bot_possible[t] = true;
          continue;
        }
        const std::uint64_t k = out_key(em->first, em->second);
        auto it = out_index.find(k);
        std::size_t idx;
        if (it == out_index.end()) {
          idx = out_tuples.size();
          out_tuples.push_back({em->first, em->second});
          out_index.emplace(k, idx);
        } else {
          idx = it->second;
        }
        productions[t].push_back(idx);
      }
    }
    UnionFind uf(out_tuples.size());
    for (const auto& group : productions) {
      for (std::size_t j = 1; j < group.size(); ++j) uf.unite(group[0], group[j]);
    }
    // Σ λ(class) = Σ κ(t) is only valid when every contributing transition
    // *always* produces into the class; a ⊥-capable transition breaks the
    // accounting, so its class is skipped (fewer invariants, still sound).
    std::unordered_map<std::size_t, bool> class_valid;
    std::unordered_map<std::size_t, SparseRow> class_rows;
    for (std::size_t k = 0; k < out_tuples.size(); ++k) {
      const std::size_t root = uf.find(k);
      class_valid.emplace(root, true);
      class_rows[root].add(
          vars.lambda(p.out[static_cast<std::size_t>(out_tuples[k].port)], out_tuples[k].d), 1);
    }
    for (std::size_t t = 0; t < a.transitions.size(); ++t) {
      if (!fires[t] || productions[t].empty()) continue;
      const std::size_t root = uf.find(productions[t][0]);
      if (bot_possible[t]) {
        class_valid[root] = false;
        continue;
      }
      class_rows[root].add(vars.kappa(ai, static_cast<int>(t)), -1);
    }
    for (auto& [root, row] : class_rows) {
      if (class_valid[root]) rows.push_back(std::move(row));
    }
  }
}

}  // namespace

std::vector<SparseRow> build_flow_rows(const xmas::Network& net,
                                       const xmas::Typing& typing,
                                       const VarSpace& vars) {
  std::vector<SparseRow> rows;
  for (std::size_t pi = 0; pi < net.num_prims(); ++pi) {
    const Primitive& p = net.prims()[pi];
    switch (p.kind) {
      case PrimKind::Queue: {
        // λ(in,d) − λ(out,d) − #q.d = 0 (queues start empty).
        for (ColorId d : typing.of(p.in[0])) {
          SparseRow row;
          row.add(vars.lambda(p.in[0], d), 1);
          row.add(vars.lambda(p.out[0], d), -1);
          row.add(vars.occ(static_cast<PrimId>(pi), d), -1);
          rows.push_back(std::move(row));
        }
        break;
      }
      case PrimKind::Function: {
        for (ColorId d2 : typing.of(p.out[0])) {
          SparseRow row;
          row.add(vars.lambda(p.out[0], d2), 1);
          for (ColorId d : typing.of(p.in[0])) {
            if (p.func(d) == d2) row.add(vars.lambda(p.in[0], d), -1);
          }
          rows.push_back(std::move(row));
        }
        break;
      }
      case PrimKind::Fork: {
        for (ColorId d : typing.of(p.in[0])) {
          for (int k = 0; k < 2; ++k) {
            SparseRow row;
            row.add(vars.lambda(p.in[0], d), 1);
            row.add(vars.lambda(p.out[static_cast<std::size_t>(k)], d), -1);
            rows.push_back(std::move(row));
          }
        }
        break;
      }
      case PrimKind::Join: {
        for (ColorId d : typing.of(p.in[0])) {
          SparseRow row;
          row.add(vars.lambda(p.out[0], d), 1);
          row.add(vars.lambda(p.in[0], d), -1);
          rows.push_back(std::move(row));
        }
        // Token transfers pair with data transfers one-to-one.
        SparseRow tok;
        for (ColorId d : typing.of(p.in[1])) tok.add(vars.lambda(p.in[1], d), 1);
        for (ColorId d : typing.of(p.in[0])) tok.add(vars.lambda(p.in[0], d), -1);
        rows.push_back(std::move(tok));
        break;
      }
      case PrimKind::Switch: {
        for (ColorId d : typing.of(p.in[0])) {
          SparseRow row;
          row.add(vars.lambda(p.in[0], d), 1);
          const int port = p.route(d);
          if (port >= 0 && static_cast<std::size_t>(port) < p.out.size()) {
            row.add(vars.lambda(p.out[static_cast<std::size_t>(port)], d), -1);
          }
          // Unroutable colors never transfer: λ(in,d) = 0.
          rows.push_back(std::move(row));
        }
        break;
      }
      case PrimKind::Merge: {
        for (ColorId d : typing.of(p.out[0])) {
          SparseRow row;
          row.add(vars.lambda(p.out[0], d), 1);
          for (ChanId in : p.in) {
            if (xmas::set_contains(typing.of(in), d)) {
              row.add(vars.lambda(in, d), -1);
            }
          }
          rows.push_back(std::move(row));
        }
        break;
      }
      case PrimKind::Automaton:
        build_automaton_rows(net, typing, vars, p.automaton, rows);
        break;
      case PrimKind::Source:
      case PrimKind::Sink:
        break;  // λ at sources/sinks is unconstrained
    }
  }
  return rows;
}

std::vector<std::string> InvariantSet::to_strings() const {
  std::vector<std::string> out;
  auto name = [this](std::int32_t col) { return vars->name(col); };
  for (const auto& row : equalities) out.push_back(row.to_string(name));
  for (const auto& row : inequalities) {
    std::string s = row.to_string(name);
    // SparseRow prints "... = 0"; these rows mean "... <= 0".
    s.replace(s.rfind("= 0"), 3, "<= 0");
    out.push_back(s);
  }
  return out;
}

std::vector<smt::ExprId> InvariantSet::to_smt(smt::ExprFactory& f) const {
  // Canonical theory-row shape (smt/rows.hpp): a row shared with the
  // flow-completion system hash-conses to the same expression and lands
  // on the same theory atom in the native backend.
  std::vector<smt::ExprId> out;
  auto var_of = [&](std::int32_t col) {
    return f.int_var(vars->smt_name(col));
  };
  for (const auto& row : equalities) {
    out.push_back(smt::row_expr(f, row, var_of, /*is_eq=*/true));
  }
  for (const auto& row : inequalities) {
    out.push_back(smt::row_expr(f, row, var_of, /*is_eq=*/false));
  }
  return out;
}

std::vector<smt::ExprId> flow_completion_smt(const xmas::Network& net,
                                             const xmas::Typing& typing,
                                             smt::ExprFactory& f) {
  const VarSpace vars(net, typing);
  const std::vector<SparseRow> rows = build_flow_rows(net, typing, vars);
  std::vector<smt::ExprId> out;
  auto col_var = [&](std::int32_t col) {
    if (vars.is_eliminated(col)) return f.int_var("Flow[" + std::to_string(col) + "]");
    return f.int_var(vars.smt_name(col));
  };
  // λ and κ are event counters: nonnegative.
  for (std::int32_t col = 0; col < vars.num_cols(); ++col) {
    if (vars.is_eliminated(col)) {
      out.push_back(f.ge(col_var(col), f.int_const(0)));
    }
  }
  for (const SparseRow& row : rows) {
    out.push_back(smt::row_expr(f, row, col_var, /*is_eq=*/true));
  }
  return out;
}

InvariantSet generate(const xmas::Network& net, const xmas::Typing& typing,
                      bool derive_inequalities) {
  util::Stopwatch watch;
  InvariantSet set;
  set.vars = std::make_unique<VarSpace>(net, typing);
  std::vector<SparseRow> rows = build_flow_rows(net, typing, *set.vars);
  set.rows_built = rows.size();
  const VarSpace& vars = *set.vars;
  linalg::EliminationResult res = linalg::Eliminator::eliminate(
      std::move(rows),
      [&vars](std::int32_t col) { return vars.is_eliminated(col); },
      derive_inequalities);
  set.equalities = std::move(res.equalities);
  set.inequalities = std::move(res.inequalities);
  set.seconds = watch.seconds();
  return set;
}

}  // namespace advocat::inv
