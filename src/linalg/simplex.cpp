#include "linalg/simplex.hpp"

#include <algorithm>

namespace advocat::linalg {

int Simplex::new_var() {
  vars_.emplace_back();
  return static_cast<int>(vars_.size()) - 1;
}

int Simplex::var(std::int32_t col) {
  const auto it = std::lower_bound(
      col_index_.begin(), col_index_.end(), col,
      [](const auto& entry, std::int32_t c) { return entry.first < c; });
  if (it != col_index_.end() && it->first == col) return it->second;
  const int v = new_var();
  col_index_.insert(it, {col, v});
  return v;
}

int Simplex::add_slack(
    const std::vector<std::pair<std::int32_t, std::int64_t>>& terms) {
  // Expand the form over the *current* non-basic variables: a problem
  // variable that is basic is replaced by its row, so the new row respects
  // the tableau invariant from the start.
  SparseRow expr;
  Rational beta;
  for (const auto& [col, coeff] : terms) {
    const int x = var(col);
    const Rational c(coeff);
    const VarState& vs = vars_[static_cast<std::size_t>(x)];
    if (vs.basic_row >= 0) {
      expr.add_scaled(
          tab_.to_sparse(static_cast<std::size_t>(vs.basic_row)), c);
    } else {
      expr.add(x, c);
    }
    beta += c * vs.beta;
  }
  const int s = new_var();
  vars_[static_cast<std::size_t>(s)].beta = std::move(beta);
  vars_[static_cast<std::size_t>(s)].basic_row =
      static_cast<int>(tab_.num_rows());
  tab_.add_row(s, expr);
  return s;
}

void Simplex::retract_to(std::size_t mark) {
  while (trail_.size() > mark) {
    TrailEntry& e = trail_.back();
    VarState& vs = vars_[static_cast<std::size_t>(e.var)];
    if (e.is_hi) {
      vs.has_hi = e.had;
      vs.hi = std::move(e.old_bound);
      vs.hi_tag = e.old_tag;
    } else {
      vs.has_lo = e.had;
      vs.lo = std::move(e.old_bound);
      vs.lo_tag = e.old_tag;
    }
    trail_.pop_back();
  }
  // Bounds only loosened: non-basic variables remain inside theirs, so the
  // current vertex is still a valid starting point for the next check().
}

bool Simplex::assert_upper(int x, const Rational& b, int tag) {
  VarState& vs = vars_[static_cast<std::size_t>(x)];
  if (vs.has_hi && vs.hi <= b) return true;  // keep the tighter bound
  if (vs.has_lo && b < vs.lo) {
    farkas_ = {{tag, Rational(1)}, {vs.lo_tag, Rational(1)}};
    ++stats_.conflicts;
    return false;
  }
  trail_.push_back(TrailEntry{x, true, vs.has_hi, vs.hi, vs.hi_tag});
  vs.has_hi = true;
  vs.hi = b;
  vs.hi_tag = tag;
  if (vs.basic_row < 0 && vs.beta > b) update(x, b);
  return true;
}

bool Simplex::assert_lower(int x, const Rational& b, int tag) {
  VarState& vs = vars_[static_cast<std::size_t>(x)];
  if (vs.has_lo && vs.lo >= b) return true;
  if (vs.has_hi && vs.hi < b) {
    farkas_ = {{tag, Rational(1)}, {vs.hi_tag, Rational(1)}};
    ++stats_.conflicts;
    return false;
  }
  trail_.push_back(TrailEntry{x, false, vs.has_lo, vs.lo, vs.lo_tag});
  vs.has_lo = true;
  vs.lo = b;
  vs.lo_tag = tag;
  if (vs.basic_row < 0 && vs.beta < b) update(x, b);
  return true;
}

void Simplex::update(int x, const Rational& v) {
  const Rational delta = v - vars_[static_cast<std::size_t>(x)].beta;
  for (std::size_t r = 0; r < tab_.num_rows(); ++r) {
    const Rational c = tab_.coeff(r, x);
    if (!c.is_zero()) {
      vars_[static_cast<std::size_t>(tab_.owner(r))].beta += c * delta;
    }
  }
  vars_[static_cast<std::size_t>(x)].beta = v;
}

void Simplex::pivot_and_update(int leave, int enter, const Rational& v) {
  if (tick_) tick_();  // deadline poll before any mutation
  ++stats_.pivots;
  const std::size_t ri =
      static_cast<std::size_t>(vars_[static_cast<std::size_t>(leave)].basic_row);
  const Rational a = tab_.coeff(ri, enter);

  // Value update (DdM pivotAndUpdate): leave moves to its bound, enter
  // absorbs the change, every other basic row follows.
  const Rational theta =
      (v - vars_[static_cast<std::size_t>(leave)].beta) / a;
  vars_[static_cast<std::size_t>(leave)].beta = v;
  vars_[static_cast<std::size_t>(enter)].beta += theta;
  for (std::size_t r = 0; r < tab_.num_rows(); ++r) {
    if (tab_.owner(r) == leave) continue;
    const Rational c = tab_.coeff(r, enter);
    if (!c.is_zero()) {
      vars_[static_cast<std::size_t>(tab_.owner(r))].beta += c * theta;
    }
  }

  // Row pivot: from  leave = a·enter + rest  derive
  // enter = (1/a)·leave − rest/a  and substitute in every other row.
  SparseRow nr = tab_.to_sparse(ri);
  nr.add(enter, -a);            // rest
  nr.scale(-a.reciprocal());    // −rest/a
  nr.add(leave, a.reciprocal());
  for (std::size_t r = 0; r < tab_.num_rows(); ++r) {
    if (tab_.owner(r) == leave) continue;
    const Rational c = tab_.coeff(r, enter);
    if (!c.is_zero()) tab_.pivot_merge(r, enter, c, nr);
  }
  tab_.replace_row(ri, nr.entries());
  tab_.set_owner(ri, enter);
  vars_[static_cast<std::size_t>(enter)].basic_row = static_cast<int>(ri);
  vars_[static_cast<std::size_t>(leave)].basic_row = -1;
}

void Simplex::explain_row(int x, bool below) {
  // x is basic, stuck outside its bound: every non-basic in its row is at
  // the binding bound of the blocking sign. The certificate is the row
  // variable's violated bound (multiplier 1) plus those binding bounds
  // weighted by |coefficient| — summing the ≤-forms cancels all variables
  // (the tableau row is an identity) and leaves 0 ≤ βx − bound < 0.
  farkas_.clear();
  const VarState& vs = vars_[static_cast<std::size_t>(x)];
  farkas_.push_back(
      {below ? vs.lo_tag : vs.hi_tag, Rational(1)});
  const std::size_t ri = static_cast<std::size_t>(vs.basic_row);
  const std::int32_t* cols = tab_.row_cols(ri);
  const Rational* coeffs = tab_.row_coeffs(ri);
  for (std::uint32_t i = 0; i < tab_.row_len(ri); ++i) {
    const VarState& u = vars_[static_cast<std::size_t>(cols[i])];
    const Rational& c = coeffs[i];
    const bool at_hi = below ? !c.is_negative() : c.is_negative();
    farkas_.push_back({at_hi ? u.hi_tag : u.lo_tag,
                       c.is_negative() ? -c : c});
  }
  ++stats_.conflicts;
}

std::string Simplex::audit() const {
  const auto bad = [](const std::string& what) { return what; };
  // CSR span bookkeeping first: everything below trusts the spans.
  if (std::string what = tab_.audit(); !what.empty()) return bad(what);
  const int nv = static_cast<int>(vars_.size());
  // Basis/nonbasis partition, both directions.
  for (std::size_t r = 0; r < tab_.num_rows(); ++r) {
    const int owner = tab_.owner(r);
    if (owner < 0 || owner >= nv) {
      return bad("row " + std::to_string(r) + ": owner " +
                 std::to_string(owner) + " out of range");
    }
    if (vars_[static_cast<std::size_t>(owner)].basic_row !=
        static_cast<int>(r)) {
      return bad("row " + std::to_string(r) + ": owner " +
                 std::to_string(owner) + " does not point back (basic_row = " +
                 std::to_string(
                     vars_[static_cast<std::size_t>(owner)].basic_row) +
                 ")");
    }
  }
  for (int v = 0; v < nv; ++v) {
    const VarState& vs = vars_[static_cast<std::size_t>(v)];
    if (vs.basic_row >= 0) {
      if (static_cast<std::size_t>(vs.basic_row) >= tab_.num_rows() ||
          tab_.owner(static_cast<std::size_t>(vs.basic_row)) != v) {
        return bad("var " + std::to_string(v) + ": basic_row " +
                   std::to_string(vs.basic_row) + " does not own it");
      }
    }
    // Bounds never cross (assert_upper/lower refuse crossing asserts).
    if (vs.has_lo && vs.has_hi && vs.hi < vs.lo) {
      return bad("var " + std::to_string(v) + ": crossed bounds");
    }
    // Non-basic variables sit inside their bounds at all times (the core
    // Dutertre–de Moura invariant; only basic variables may violate).
    if (vs.basic_row < 0) {
      if ((vs.has_lo && vs.beta < vs.lo) || (vs.has_hi && vs.beta > vs.hi)) {
        return bad("non-basic var " + std::to_string(v) +
                   " outside its bounds");
      }
    }
  }
  // Rows mention only non-basic variables, and the row identity
  // β(owner) = expr(β) holds exactly.
  for (std::size_t r = 0; r < tab_.num_rows(); ++r) {
    Rational sum;
    const std::int32_t* cols = tab_.row_cols(r);
    const Rational* coeffs = tab_.row_coeffs(r);
    for (std::uint32_t i = 0; i < tab_.row_len(r); ++i) {
      if (cols[i] < 0 || cols[i] >= nv) {
        return bad("row " + std::to_string(r) + ": column " +
                   std::to_string(cols[i]) + " out of range");
      }
      if (vars_[static_cast<std::size_t>(cols[i])].basic_row >= 0) {
        return bad("row " + std::to_string(r) + ": mentions basic var " +
                   std::to_string(cols[i]));
      }
      if (coeffs[i].is_zero()) {
        return bad("row " + std::to_string(r) + ": explicit zero coefficient");
      }
      sum += coeffs[i] * vars_[static_cast<std::size_t>(cols[i])].beta;
    }
    if (!(sum == vars_[static_cast<std::size_t>(tab_.owner(r))].beta)) {
      return bad("row " + std::to_string(r) + ": beta(owner) != expr(beta)");
    }
  }
  for (std::size_t t = 0; t < trail_.size(); ++t) {
    if (trail_[t].var < 0 || trail_[t].var >= nv) {
      return bad("trail entry " + std::to_string(t) + ": var out of range");
    }
  }
  return {};
}

bool Simplex::check() {
  ++stats_.checks;
  for (;;) {
    if (tick_) tick_();
    // Bland's rule: smallest violating basic variable.
    int x = -1;
    bool below = false;
    for (std::size_t v = 0; v < vars_.size(); ++v) {
      const VarState& vs = vars_[v];
      if (vs.basic_row < 0) continue;
      if (vs.has_lo && vs.beta < vs.lo) {
        x = static_cast<int>(v);
        below = true;
        break;
      }
      if (vs.has_hi && vs.beta > vs.hi) {
        x = static_cast<int>(v);
        below = false;
        break;
      }
    }
    if (x < 0) return true;

    const VarState& vs = vars_[static_cast<std::size_t>(x)];
    const std::size_t ri = static_cast<std::size_t>(vs.basic_row);
    // Smallest suitable entering variable (columns are sorted by id).
    const std::int32_t* cols = tab_.row_cols(ri);
    const Rational* coeffs = tab_.row_coeffs(ri);
    int enter = -1;
    for (std::uint32_t i = 0; i < tab_.row_len(ri); ++i) {
      const VarState& u = vars_[static_cast<std::size_t>(cols[i])];
      const bool want_up = below == !coeffs[i].is_negative();
      const bool can = want_up ? (!u.has_hi || u.beta < u.hi)
                               : (!u.has_lo || u.beta > u.lo);
      if (can) {
        enter = cols[i];
        break;
      }
    }
    if (enter < 0) {
      explain_row(x, below);
      return false;
    }
    pivot_and_update(x, enter, below ? vs.lo : vs.hi);
  }
}

}  // namespace advocat::linalg
