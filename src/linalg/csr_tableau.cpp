#include "linalg/csr_tableau.hpp"

#include <algorithm>
#include <string>

namespace advocat::linalg {

std::size_t CsrTableau::add_row(int owner, const SparseRow& expr) {
  Span s;
  s.off = static_cast<std::uint32_t>(cols_.size());
  s.len = static_cast<std::uint32_t>(expr.entries().size());
  s.cap = s.len;
  cols_.reserve(cols_.size() + s.len);
  coeffs_.reserve(coeffs_.size() + s.len);
  for (const Entry& e : expr.entries()) {
    cols_.push_back(e.col);
    coeffs_.push_back(e.coeff);
  }
  owners_.push_back(owner);
  spans_.push_back(s);
  return spans_.size() - 1;
}

Rational CsrTableau::coeff(std::size_t r, std::int32_t col) const {
  const Span& s = spans_[r];
  const std::int32_t* begin = cols_.data() + s.off;
  const std::int32_t* end = begin + s.len;
  const std::int32_t* it = std::lower_bound(begin, end, col);
  if (it != end && *it == col) {
    return coeffs_[s.off + static_cast<std::size_t>(it - begin)];
  }
  return Rational(0);
}

SparseRow CsrTableau::to_sparse(std::size_t r) const {
  const Span& s = spans_[r];
  std::vector<Entry> entries;
  entries.reserve(s.len);
  for (std::uint32_t i = 0; i < s.len; ++i) {
    entries.push_back(Entry{cols_[s.off + i], coeffs_[s.off + i]});
  }
  return SparseRow::from_sorted(std::move(entries));
}

void CsrTableau::write_row(Span& s, const std::vector<Entry>& entries) {
  if (entries.size() <= s.cap) {
    for (std::size_t i = 0; i < entries.size(); ++i) {
      cols_[s.off + i] = entries[i].col;
      coeffs_[s.off + i] = entries[i].coeff;
    }
    // Clear abandoned coefficient slots so they don't pin heap rationals.
    for (std::size_t i = entries.size(); i < s.len; ++i) {
      coeffs_[s.off + i] = Rational(0);
    }
    s.len = static_cast<std::uint32_t>(entries.size());
    return;
  }
  // Relocate to the end of the pools with growth slack; the old span
  // becomes waste until the next compaction.
  wasted_ += s.cap;
  for (std::uint32_t i = 0; i < s.len; ++i) {
    coeffs_[s.off + i] = Rational(0);
  }
  s.off = static_cast<std::uint32_t>(cols_.size());
  s.len = static_cast<std::uint32_t>(entries.size());
  s.cap = s.len + s.len / 2;
  cols_.resize(cols_.size() + s.cap, 0);
  coeffs_.resize(coeffs_.size() + s.cap);
  for (std::size_t i = 0; i < entries.size(); ++i) {
    cols_[s.off + i] = entries[i].col;
    coeffs_[s.off + i] = entries[i].coeff;
  }
}

void CsrTableau::replace_row(std::size_t r, const std::vector<Entry>& entries) {
  write_row(spans_[r], entries);
  maybe_compact();
}

void CsrTableau::pivot_merge(std::size_t r, std::int32_t enter,
                             const Rational& factor, const SparseRow& nr) {
  const Span s = spans_[r];  // copy: scratch_ growth never touches pools
  const std::vector<Entry>& other = nr.entries();
  scratch_.clear();
  scratch_.reserve(s.len + other.size());
  // Same two-list merge (and the same per-entry arithmetic, in the same
  // order) as SparseRow::add_scaled, with row(r)'s `enter` entry skipped —
  // its coefficient is exactly `factor` and cancels by construction.
  std::uint32_t i = 0;
  std::size_t j = 0;
  while (i < s.len || j < other.size()) {
    const std::int32_t ci =
        i < s.len ? cols_[s.off + i] : 0;
    if (i < s.len && ci == enter) {
      ++i;
      continue;
    }
    if (j == other.size() || (i < s.len && ci < other[j].col)) {
      scratch_.push_back(Entry{ci, coeffs_[s.off + i]});
      ++i;
    } else if (i == s.len || other[j].col < ci) {
      Rational c = other[j].coeff * factor;
      if (!c.is_zero()) scratch_.push_back(Entry{other[j].col, std::move(c)});
      ++j;
    } else {
      Rational c = coeffs_[s.off + i] + other[j].coeff * factor;
      if (!c.is_zero()) scratch_.push_back(Entry{ci, std::move(c)});
      ++i;
      ++j;
    }
  }
  replace_row(r, scratch_);
}

void CsrTableau::maybe_compact() {
  if (wasted_ * 2 < cols_.size() || wasted_ == 0) return;
  std::vector<std::int32_t> nc;
  std::vector<Rational> nf;
  nc.reserve(cols_.size() - wasted_);
  nf.reserve(cols_.size() - wasted_);
  for (Span& s : spans_) {
    const std::uint32_t off = static_cast<std::uint32_t>(nc.size());
    for (std::uint32_t i = 0; i < s.len; ++i) {
      nc.push_back(cols_[s.off + i]);
      nf.push_back(std::move(coeffs_[s.off + i]));
    }
    s.off = off;
    s.cap = s.len;
  }
  cols_ = std::move(nc);
  coeffs_ = std::move(nf);
  wasted_ = 0;
}

std::string CsrTableau::audit() const {
  if (owners_.size() != spans_.size()) return "csr: owners/spans mismatch";
  if (cols_.size() != coeffs_.size()) return "csr: cols/coeffs mismatch";
  std::size_t live_cap = 0;
  for (std::size_t r = 0; r < spans_.size(); ++r) {
    const Span& s = spans_[r];
    if (s.len > s.cap) {
      return "csr row " + std::to_string(r) + ": len exceeds cap";
    }
    if (static_cast<std::size_t>(s.off) + s.cap > cols_.size()) {
      return "csr row " + std::to_string(r) + ": span out of pool bounds";
    }
    live_cap += s.cap;
    for (std::uint32_t i = 0; i + 1 < s.len; ++i) {
      if (cols_[s.off + i] >= cols_[s.off + i + 1]) {
        return "csr row " + std::to_string(r) + ": columns not increasing";
      }
    }
    for (std::uint32_t i = 0; i < s.len; ++i) {
      if (coeffs_[s.off + i].is_zero()) {
        return "csr row " + std::to_string(r) + ": stored zero coefficient";
      }
    }
  }
  if (live_cap + wasted_ > cols_.size()) {
    return "csr: live capacity + waste exceeds pool";
  }
  return {};
}

}  // namespace advocat::linalg
