// Gaussian elimination that sweeps a designated set of columns.
//
// The invariant generator (src/invariants) builds a system of affine
// equations over three kinds of variables: flow counters (λ), transition
// counters (κ) and state variables (#q.d occupancies and A.s indicators).
// Following Chatterjee & Kishinevsky, the λ/κ columns are eliminated; every
// row that survives with only state columns is an inductive invariant.
//
// All arithmetic is exact (rational); pivots are chosen with a minimum
// row-degree heuristic to limit fill-in on the sparse, mostly-local flow
// matrices.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "linalg/sparse_row.hpp"

namespace advocat::linalg {

struct EliminationResult {
  /// Equations Σ b_j·k_j + c = 0 over keep columns only, in reduced row
  /// echelon form with coprime integer coefficients.
  std::vector<SparseRow> equalities;
  /// Inequalities Σ b_j·k_j + c ≤ 0 over keep columns, derived from pivot
  /// rows whose eliminated coefficients all share one sign (eliminated
  /// variables are counters, hence nonnegative).
  std::vector<SparseRow> inequalities;
  /// True when elimination produced the row "nonzero constant = 0", i.e.
  /// the input system was inconsistent. Never expected for flow matrices.
  bool inconsistent = false;
  std::size_t pivot_count = 0;
};

class Eliminator {
 public:
  /// `is_eliminated(col)` selects the columns to sweep. All eliminated
  /// variables are assumed nonnegative when `derive_inequalities` is set.
  static EliminationResult eliminate(std::vector<SparseRow> rows,
                                     const std::function<bool(std::int32_t)>&
                                         is_eliminated,
                                     bool derive_inequalities = true);

  /// In-place Gauss–Jordan over every column; used to canonicalize the
  /// surviving invariant rows. Returns false on inconsistency.
  static bool reduce_rref(std::vector<SparseRow>& rows);
};

}  // namespace advocat::linalg
