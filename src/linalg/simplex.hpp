// Incremental rational simplex in the Dutertre–de Moura style ("A Fast
// Linear-Arithmetic Solver for DPLL(T)", CAV'06), over exact rationals.
//
// The solver decides feasibility of a conjunction of bounds on *extended*
// variables: problem columns plus slack variables, where each slack is
// defined to equal a linear form over problem columns. A caller encodes the
// constraint Σ c_i·x_i ≤ b by creating the slack s = Σ c_i·x_i once and
// asserting the bound s ≤ b; the matching ≥ constraint is a lower bound on
// the *same* slack, so complementary atom polarities share one tableau row.
//
// The API is incremental in both directions that matter to a CDCL(T) loop:
//
//  - structurally: slacks accumulate (the tableau is never rebuilt), and
//    the basis persists across check() calls, so a re-check after a few
//    bound flips usually needs only a handful of pivots;
//  - assertionally: bounds are trailed — mark() / retract_to() undo them
//    in LIFO order without touching the tableau or the current vertex
//    (retracting only loosens bounds, so the non-basic variables stay
//    inside theirs and the next check() starts from a consistent state).
//
// Every asserted bound carries a caller-chosen *tag*. When check() (or an
// assert on a crossing pair of bounds) reports infeasibility, the solver
// exposes a Farkas certificate: the tags of the contradicting bounds with
// exact positive rational multipliers such that the multiplier-weighted sum
// of the tagged inequalities (each read as a ≤-form) cancels every variable
// and leaves `0 ≤ negative`. Certificates are minimal in the standard
// simplex sense — one violated row plus the binding bounds of its non-basic
// variables — and are what the SMT layer turns into learned theory clauses.
//
// Pivot selection uses Bland's rule (smallest extended-variable index for
// both the leaving and the entering variable), so check() terminates on
// every input without perturbation; the solver is fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "linalg/csr_tableau.hpp"
#include "linalg/sparse_row.hpp"

namespace advocat::linalg {

/// One term of a Farkas infeasibility certificate: the tag of an asserted
/// bound and its exact positive multiplier.
struct FarkasTerm {
  int tag = 0;
  Rational mult;
};

/// Cumulative effort/result counters for one Simplex instance.
struct SimplexStats {
  std::uint64_t pivots = 0;     ///< pivot-and-update steps performed
  std::uint64_t checks = 0;     ///< check() calls
  std::uint64_t conflicts = 0;  ///< Farkas certificates extracted
};

class Simplex {
 public:
  /// Extended variable backing problem column `col` (created on demand;
  /// stable across calls).
  int var(std::int32_t col);

  /// Creates a slack variable defined as Σ coeff·x_col over problem
  /// columns. The definition is permanent; constraints on the form are
  /// asserted as bounds on the returned variable. The caller is expected
  /// to deduplicate forms (one slack per distinct row).
  int add_slack(const std::vector<std::pair<std::int32_t, std::int64_t>>& terms);

  /// Bound-trail mark for retract_to().
  [[nodiscard]] std::size_t mark() const { return trail_.size(); }
  /// Retracts every bound asserted since `mark` (LIFO). Slack definitions
  /// and the current basis are untouched.
  void retract_to(std::size_t mark);

  /// Asserts x ≤ b (resp. x ≥ b) with explanation tag `tag`. Returns false
  /// when the new bound immediately crosses the opposite one — the Farkas
  /// certificate is then the two tags, multiplier 1 each. A bound looser
  /// than the current one is a no-op.
  bool assert_upper(int x, const Rational& b, int tag);
  bool assert_lower(int x, const Rational& b, int tag);

  /// Decides feasibility of the asserted bounds. True: every extended
  /// variable holds a value (value()) satisfying its bounds and all slack
  /// definitions. False: farkas() holds the infeasibility certificate.
  bool check();

  /// Certificate of the most recent infeasibility (check() == false or a
  /// failed assert); meaningless otherwise.
  [[nodiscard]] const std::vector<FarkasTerm>& farkas() const {
    return farkas_;
  }

  /// Current value of extended variable `x` (a satisfying vertex after a
  /// true check()).
  [[nodiscard]] const Rational& value(int x) const {
    return vars_[static_cast<std::size_t>(x)].beta;
  }

  [[nodiscard]] const SimplexStats& stats() const { return stats_; }

  /// Number of extended variables (problem columns + slacks) so far.
  [[nodiscard]] std::size_t num_vars() const { return vars_.size(); }

  /// Deep self-audit of the tableau invariants (basis/nonbasis partition,
  /// rows over non-basic variables only, row identities βs = expr(β),
  /// non-crossing bounds, non-basic variables inside their bounds, trail
  /// well-formedness). Returns "" when every invariant holds, else a
  /// description of the first violation. O(rows × entries); meant for the
  /// ADVOCAT_AUDIT harness (smt/audit.hpp), not for production paths.
  [[nodiscard]] std::string audit() const;

  /// Hook polled at every pivot step (and check() iteration); lets a host
  /// solver enforce deadlines by throwing — the tableau is only mutated
  /// after the poll, so an exception leaves the solver consistent and a
  /// later retract_to()/check() recovers.
  void set_tick(std::function<void()> tick) { tick_ = std::move(tick); }

  /// Inline bytes held by the tableau pools (CSR entries, variable states,
  /// bound trail). Feeds the solver's memory ceiling; BigInt limbs that
  /// spill to the heap are gauged separately (util::BigInt
  /// heap_bytes_in_use), so the two add without double counting the
  /// inline representation.
  [[nodiscard]] std::size_t pool_bytes() const {
    return tab_.pool_size() * (sizeof(std::int32_t) + sizeof(Rational)) +
           vars_.size() * sizeof(VarState) + trail_.size() * sizeof(TrailEntry);
  }

 private:
  struct VarState {
    Rational beta;          // current value
    Rational lo, hi;        // meaningful only when has_lo / has_hi
    bool has_lo = false;
    bool has_hi = false;
    int lo_tag = 0;
    int hi_tag = 0;
    int basic_row = -1;     // index into rows_ when basic
  };

  // One restorable bound change (assert_upper/lower push these).
  struct TrailEntry {
    int var;
    bool is_hi;
    bool had;
    Rational old_bound;
    int old_tag;
  };

  int new_var();
  // Sets non-basic `x` to v and updates every basic variable's value.
  void update(int x, const Rational& v);
  // Pivots basic `leave` against non-basic `enter` and moves `leave` to v.
  void pivot_and_update(int leave, int enter, const Rational& v);
  // Farkas certificate for basic variable `x` stuck outside its bound.
  void explain_row(int x, bool below);

  std::vector<VarState> vars_;
  // Tableau rows: x_owner(r) = row(r), where each row mentions non-basic
  // extended variables only (constants never occur — callers fold them into
  // bounds). Stored in packed CSR form so the per-pivot full-tableau sweeps
  // walk contiguous memory; VarState::basic_row indexes into it.
  CsrTableau tab_;
  std::vector<std::pair<std::int32_t, int>> col_index_;  // sorted col → var
  std::vector<TrailEntry> trail_;
  std::vector<FarkasTerm> farkas_;
  SimplexStats stats_;
  std::function<void()> tick_;
};

}  // namespace advocat::linalg
