#include "linalg/eliminator.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

namespace advocat::linalg {

namespace {

// Index from column to the rows that (possibly) contain it. Entries go
// stale when elimination removes a column from a row; readers re-check.
using ColIndex = std::unordered_map<std::int32_t, std::vector<std::size_t>>;

void register_row(ColIndex& index, const SparseRow& row, std::size_t row_idx,
                  const std::function<bool(std::int32_t)>& is_eliminated) {
  for (const auto& e : row.entries()) {
    if (is_eliminated(e.col)) index[e.col].push_back(row_idx);
  }
}

}  // namespace

EliminationResult Eliminator::eliminate(
    std::vector<SparseRow> rows,
    const std::function<bool(std::int32_t)>& is_eliminated,
    bool derive_inequalities) {
  EliminationResult result;

  std::vector<bool> active(rows.size(), true);
  ColIndex col_rows;
  std::unordered_set<std::int32_t> pending_cols;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    register_row(col_rows, rows[r], r, is_eliminated);
  }
  for (const auto& [col, _] : col_rows) pending_cols.insert(col);

  std::vector<std::size_t> pivot_rows;

  while (!pending_cols.empty()) {
    // Pick the pending column with the fewest live rows (min-degree).
    std::int32_t best_col = -1;
    std::size_t best_degree = std::numeric_limits<std::size_t>::max();
    for (std::int32_t col : pending_cols) {
      auto it = col_rows.find(col);
      std::size_t degree = 0;
      if (it != col_rows.end()) {
        auto& vec = it->second;
        vec.erase(std::remove_if(vec.begin(), vec.end(),
                                 [&](std::size_t r) {
                                   return !active[r] ||
                                          rows[r].coeff(col).is_zero();
                                 }),
                  vec.end());
        degree = vec.size();
      }
      if (degree < best_degree) {
        best_degree = degree;
        best_col = col;
        if (degree <= 1) break;
      }
    }
    if (best_degree == 0) {
      pending_cols.erase(best_col);
      continue;
    }

    // Pivot on the sparsest row containing the column.
    auto& candidates = col_rows[best_col];
    std::size_t pivot = candidates.front();
    for (std::size_t r : candidates) {
      if (rows[r].entries().size() < rows[pivot].entries().size()) pivot = r;
    }
    const Rational pivot_coeff = rows[pivot].coeff(best_col);
    for (std::size_t r : candidates) {
      if (r == pivot) continue;
      const Rational c = rows[r].coeff(best_col);
      if (c.is_zero()) continue;
      rows[r].add_scaled(rows[pivot], -(c / pivot_coeff));
      register_row(col_rows, rows[r], r, is_eliminated);
    }
    active[pivot] = false;
    pivot_rows.push_back(pivot);
    pending_cols.erase(best_col);
    ++result.pivot_count;
  }

  // Surviving active rows mention keep columns only.
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (!active[r] || rows[r].empty()) continue;
    if (!rows[r].has_variables()) {
      // constant = 0 with nonzero constant: inconsistent input.
      result.inconsistent = true;
      continue;
    }
    result.equalities.push_back(std::move(rows[r]));
  }
  if (!reduce_rref(result.equalities)) result.inconsistent = true;
  for (auto& row : result.equalities) row.normalize_integer();
  std::sort(result.equalities.begin(), result.equalities.end(),
            [](const SparseRow& a, const SparseRow& b) {
              return a.min_col() < b.min_col();
            });

  if (derive_inequalities) {
    for (std::size_t r : pivot_rows) {
      const SparseRow& row = rows[r];
      int sign = 0;  // common sign of eliminated coefficients
      bool uniform = true;
      SparseRow keep_part;
      for (const auto& e : row.entries()) {
        if (is_eliminated(e.col)) {
          const int s = e.coeff.is_negative() ? -1 : 1;
          if (sign == 0) sign = s;
          else if (sign != s) { uniform = false; break; }
        } else {
          keep_part.add(e.col, e.coeff);
        }
      }
      if (!uniform || sign == 0) continue;
      keep_part.add_constant(row.constant());
      if (keep_part.empty() || !keep_part.has_variables()) continue;
      // Σ a·e + keep = 0 with a·sign > 0 and e ≥ 0  ⇒  sign·keep ≤ 0.
      if (sign < 0) keep_part.scale(Rational(-1));
      keep_part.make_integral();
      result.inequalities.push_back(std::move(keep_part));
    }
    std::sort(result.inequalities.begin(), result.inequalities.end(),
              [](const SparseRow& a, const SparseRow& b) {
                return a.min_col() < b.min_col();
              });
    result.inequalities.erase(
        std::unique(result.inequalities.begin(), result.inequalities.end()),
        result.inequalities.end());
  }
  return result;
}

bool Eliminator::reduce_rref(std::vector<SparseRow>& rows) {
  bool consistent = true;
  std::vector<SparseRow> done;
  std::vector<SparseRow> todo = std::move(rows);
  while (!todo.empty()) {
    // Pick the row whose leading column is smallest.
    std::size_t best = 0;
    for (std::size_t i = 1; i < todo.size(); ++i) {
      if (todo[i].min_col() != -1 &&
          (todo[best].min_col() == -1 ||
           todo[i].min_col() < todo[best].min_col())) {
        best = i;
      }
    }
    SparseRow pivot = std::move(todo[best]);
    todo.erase(todo.begin() + static_cast<std::ptrdiff_t>(best));
    if (!pivot.has_variables()) {
      if (!pivot.constant().is_zero()) consistent = false;
      continue;
    }
    const std::int32_t col = pivot.min_col();
    pivot.scale(pivot.coeff(col).reciprocal());
    for (auto& row : todo) {
      const Rational c = row.coeff(col);
      if (!c.is_zero()) row.add_scaled(pivot, -c);
    }
    for (auto& row : done) {
      const Rational c = row.coeff(col);
      if (!c.is_zero()) row.add_scaled(pivot, -c);
    }
    done.push_back(std::move(pivot));
  }
  done.erase(std::remove_if(done.begin(), done.end(),
                            [](const SparseRow& r) { return r.empty(); }),
             done.end());
  rows = std::move(done);
  return consistent;
}

}  // namespace advocat::linalg
