#include "linalg/sparse_row.hpp"

#include <algorithm>

#include "util/bigint.hpp"

namespace advocat::linalg {

using util::BigInt;

void SparseRow::add(std::int32_t col, const Rational& c) {
  if (c.is_zero()) return;
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), col,
      [](const Entry& e, std::int32_t c2) { return e.col < c2; });
  if (it != entries_.end() && it->col == col) {
    it->coeff += c;
    if (it->coeff.is_zero()) entries_.erase(it);
  } else {
    entries_.insert(it, Entry{col, c});
  }
}

Rational SparseRow::coeff(std::int32_t col) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), col,
      [](const Entry& e, std::int32_t c2) { return e.col < c2; });
  if (it != entries_.end() && it->col == col) return it->coeff;
  return Rational(0);
}

void SparseRow::add_scaled(const SparseRow& other, const Rational& factor) {
  if (factor.is_zero()) return;
  // Merge two sorted entry lists into a reused scratch buffer: elimination
  // calls this in a tight loop, and reusing one buffer's capacity avoids a
  // fresh allocation (plus the discarded old list) per call.
  static thread_local std::vector<Entry> merged;
  merged.clear();
  merged.reserve(entries_.size() + other.entries_.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    if (j == other.entries_.size() ||
        (i < entries_.size() && entries_[i].col < other.entries_[j].col)) {
      merged.push_back(entries_[i++]);
    } else if (i == entries_.size() || other.entries_[j].col < entries_[i].col) {
      Rational c = other.entries_[j].coeff * factor;
      if (!c.is_zero()) merged.push_back(Entry{other.entries_[j].col, std::move(c)});
      ++j;
    } else {
      Rational c = entries_[i].coeff + other.entries_[j].coeff * factor;
      if (!c.is_zero()) merged.push_back(Entry{entries_[i].col, std::move(c)});
      ++i;
      ++j;
    }
  }
  // Swap rather than move so the scratch keeps (and grows) its capacity.
  entries_.swap(merged);
  constant_ += other.constant_ * factor;
}

void SparseRow::scale(const Rational& factor) {
  if (factor.is_zero()) {
    entries_.clear();
    constant_ = Rational(0);
    return;
  }
  for (auto& e : entries_) e.coeff *= factor;
  constant_ *= factor;
}

void SparseRow::make_integral() {
  if (entries_.empty() && constant_.is_zero()) return;
  // lcm of denominators.
  BigInt lcm(1);
  auto fold = [&lcm](const Rational& r) {
    const BigInt& d = r.den();
    lcm = lcm / BigInt::gcd(lcm, d) * d;
  };
  for (const auto& e : entries_) fold(e.coeff);
  fold(constant_);
  scale(Rational(lcm));
  // gcd of numerators.
  BigInt g(0);
  for (const auto& e : entries_) g = BigInt::gcd(g, e.coeff.num());
  g = BigInt::gcd(g, constant_.num());
  if (!g.is_zero() && !g.is_one()) scale(Rational(BigInt(1), g));
}

void SparseRow::normalize_integer() {
  make_integral();
  const Rational& lead =
      entries_.empty() ? constant_ : entries_.front().coeff;
  if (lead.is_negative()) scale(Rational(-1));
}

std::int32_t SparseRow::min_col() const {
  return entries_.empty() ? -1 : entries_.front().col;
}

std::string SparseRow::to_string(
    const std::function<std::string(std::int32_t)>& name) const {
  std::string out;
  bool first = true;
  for (const auto& e : entries_) {
    const bool neg = e.coeff.is_negative();
    Rational mag = neg ? -e.coeff : e.coeff;
    if (first) {
      if (neg) out += "-";
    } else {
      out += neg ? " - " : " + ";
    }
    if (!mag.is_one()) out += mag.to_string() + "*";
    out += name(e.col);
    first = false;
  }
  if (!constant_.is_zero() || first) {
    const bool neg = constant_.is_negative();
    Rational mag = neg ? -constant_ : constant_;
    if (first) {
      out += (neg ? "-" : "") + mag.to_string();
    } else {
      out += (neg ? " - " : " + ") + mag.to_string();
    }
  }
  out += " = 0";
  return out;
}

}  // namespace advocat::linalg
