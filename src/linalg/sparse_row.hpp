// Sparse linear expressions over rational coefficients.
//
// A row represents the affine equation  Σ coeff_i · x_{col_i} + constant = 0.
// Columns are kept sorted by index and never store explicit zeros.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/rational.hpp"

namespace advocat::linalg {

using util::Rational;

struct Entry {
  std::int32_t col = 0;
  Rational coeff;

  bool operator==(const Entry&) const = default;
};

class SparseRow {
 public:
  SparseRow() = default;

  /// Builds a row directly from entries that are already sorted by column
  /// and free of zero coefficients (the class invariant); used by the CSR
  /// tableau to rehydrate a packed row without per-entry insertion.
  static SparseRow from_sorted(std::vector<Entry> entries) {
    SparseRow r;
    r.entries_ = std::move(entries);
    return r;
  }

  /// Adds `c` to the coefficient of column `col` (drops the entry when the
  /// sum is zero).
  void add(std::int32_t col, const Rational& c);
  void add_constant(const Rational& c) { constant_ += c; }

  [[nodiscard]] Rational coeff(std::int32_t col) const;
  [[nodiscard]] const Rational& constant() const { return constant_; }
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] bool empty() const {
    return entries_.empty() && constant_.is_zero();
  }
  [[nodiscard]] bool has_variables() const { return !entries_.empty(); }

  /// row += factor * other (including the constant term).
  void add_scaled(const SparseRow& other, const Rational& factor);
  void scale(const Rational& factor);

  /// Multiplies by the least common multiple of all denominators and divides
  /// by the gcd of all numerators, so coefficients become coprime integers.
  /// Never flips the sign (safe for inequalities).
  void make_integral();

  /// make_integral() plus a sign flip so the leading nonzero coefficient is
  /// positive; canonical form for equalities.
  void normalize_integer();

  /// Lowest column index present, or -1 when the row has no variables.
  [[nodiscard]] std::int32_t min_col() const;

  bool operator==(const SparseRow&) const = default;

  /// Human-readable rendering, e.g. "x3 - 2*x7 + 1 = 0"; `name` maps a
  /// column index to a variable name.
  [[nodiscard]] std::string to_string(
      const std::function<std::string(std::int32_t)>& name) const;

 private:
  std::vector<Entry> entries_;  // sorted by col, no zero coefficients
  Rational constant_;
};

}  // namespace advocat::linalg
