// Packed CSR-style storage for the simplex tableau.
//
// The Dutertre–de Moura pivot loops in simplex.cpp touch every tableau row
// per update (binary-searching each row for the entering column), so the
// row entries' memory layout dominates the solver's cache behaviour. A
// vector-of-SparseRow layout scatters each row's entries behind two levels
// of indirection; this class stores every row's columns and coefficients in
// two contiguous pools addressed by per-row {offset, length, capacity}
// spans, so a full-tableau sweep walks memory forward.
//
// Rows are addressed by a stable index (the same index VarState::basic_row
// uses). Rewriting a row with more entries than its span capacity relocates
// the span to the end of the pools and marks the old words as waste; when
// waste exceeds half the pool the pools are compacted in row order. Neither
// relocation nor compaction is observable through the accessors — callers
// must simply not hold raw entry pointers across a mutation.
//
// All arithmetic on coefficients is performed by the caller; this class
// only moves values, so switching Simplex onto it cannot change results.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/sparse_row.hpp"

namespace advocat::linalg {

class CsrTableau {
 public:
  /// Appends a new row owned by extended variable `owner`, copying the
  /// (sorted, zero-free) entries of `expr`. Returns the row index.
  std::size_t add_row(int owner, const SparseRow& expr);

  [[nodiscard]] std::size_t num_rows() const { return spans_.size(); }
  [[nodiscard]] int owner(std::size_t r) const { return owners_[r]; }
  void set_owner(std::size_t r, int owner) { owners_[r] = owner; }

  [[nodiscard]] std::uint32_t row_len(std::size_t r) const {
    return spans_[r].len;
  }
  /// Contiguous column / coefficient views of row `r`; invalidated by any
  /// mutation of the tableau.
  [[nodiscard]] const std::int32_t* row_cols(std::size_t r) const {
    return cols_.data() + spans_[r].off;
  }
  [[nodiscard]] const Rational* row_coeffs(std::size_t r) const {
    return coeffs_.data() + spans_[r].off;
  }

  /// Coefficient of column `col` in row `r` (binary search over the sorted
  /// span); zero when absent.
  [[nodiscard]] Rational coeff(std::size_t r, std::int32_t col) const;

  /// Copies row `r` out into SparseRow form (for the cold paths that reuse
  /// SparseRow's merge arithmetic, e.g. slack expansion and row pivoting).
  [[nodiscard]] SparseRow to_sparse(std::size_t r) const;

  /// Replaces row `r`'s entries with `entries` (sorted, zero-free),
  /// relocating the span when it outgrows its capacity.
  void replace_row(std::size_t r, const std::vector<Entry>& entries);

  /// row(r) := (row(r) without column `enter`) + factor·nr, computed with
  /// exactly SparseRow::add_scaled's merge arithmetic. `nr` must not
  /// mention `enter`; the caller guarantees row(r)'s coefficient of
  /// `enter` cancels exactly (the Bland pivot property).
  void pivot_merge(std::size_t r, std::int32_t enter, const Rational& factor,
                   const SparseRow& nr);

  /// Pool words currently wasted by relocated spans (audit/bench hook).
  [[nodiscard]] std::size_t wasted() const { return wasted_; }
  [[nodiscard]] std::size_t pool_size() const { return cols_.size(); }

  /// Structural self-check of the span bookkeeping (spans in bounds,
  /// columns strictly increasing, no stored zeros, waste accounting).
  /// Returns "" when consistent, else a description of the violation.
  [[nodiscard]] std::string audit() const;

 private:
  struct Span {
    std::uint32_t off = 0;
    std::uint32_t len = 0;
    std::uint32_t cap = 0;
  };

  void write_row(Span& s, const std::vector<Entry>& entries);
  void maybe_compact();

  std::vector<int> owners_;
  std::vector<Span> spans_;
  std::vector<std::int32_t> cols_;   // all rows' columns, span-addressed
  std::vector<Rational> coeffs_;     // parallel coefficient pool
  std::size_t wasted_ = 0;           // words abandoned by span relocation
  std::vector<Entry> scratch_;       // pivot_merge merge buffer, reused
};

}  // namespace advocat::linalg
