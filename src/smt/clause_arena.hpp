// Packed clause storage for the native CDCL(T) solver.
//
// Every clause of one SearchContext — problem copies and learned material
// alike — lives in a single flat std::vector<std::uint32_t> and is
// addressed by ClauseRef, a 32-bit word offset into that vector. This
// replaces the former one-heap-object-per-clause layout (a std::vector
// inside a Clause struct): propagation now chases one pointer into one
// contiguous allocation instead of two per clause visit, and clause refs
// are half the size of pointers in the watch lists.
//
// Layout per clause (word offsets relative to its ClauseRef):
//
//   word 0   size (bits 0..27) | learned (28) | tainted (29) |
//            deleted (30) | prior (31)
//   word 1   LBD (int32 bit pattern); forwarding ref during compaction
//   word 2   activity, low 32 bits  }  IEEE double split across two
//   word 3   activity, high 32 bits }  words via memcpy — bit-exact
//   word 4.. the literals (size of them)
//
// Refs are handed out in allocation order and compaction preserves the
// relative order of live clauses, so `ref_a < ref_b` iff clause a was
// created first — the property the reduce-db tie-break relies on for
// determinism (it replaces the old arena-index comparison).
//
// Deletion is a tombstone: the deleted bit is set and the words are
// accounted as waste, but the size field (and the literals) stay intact so
// sequential walks and lazily-dropped watch entries keep working. Waste is
// reclaimed by the two-phase compaction:
//
//   begin_compact()   copies live clauses into fresh storage and stashes
//                     each one's forwarding ref in word 1 of its old
//                     header (kClauseRefUndef for tombstones);
//   reloc(old_ref)    maps an old ref to its new home;
//   finish_compact()  discards the old storage.
//
// Between begin and finish the caller rewrites every stored ref (watch
// lists, reason slots) through reloc(); the arena itself has no idea where
// refs are held.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace advocat::smt::native {

using ClauseRef = std::int32_t;
inline constexpr ClauseRef kClauseRefUndef = -1;

class ClauseArena {
 public:
  static constexpr std::uint32_t kHeaderWords = 4;
  static constexpr std::uint32_t kSizeMask = (1u << 28) - 1;
  static constexpr std::uint32_t kLearnedFlag = 1u << 28;
  static constexpr std::uint32_t kTaintedFlag = 1u << 29;
  static constexpr std::uint32_t kDeletedFlag = 1u << 30;
  static constexpr std::uint32_t kPriorFlag = 1u << 31;

  ClauseRef alloc(const std::int32_t* lits, std::uint32_t n, bool learned,
                  bool tainted, bool prior, std::int32_t lbd, double act) {
    const auto ref = static_cast<ClauseRef>(data_.size());
    std::uint32_t w0 = n & kSizeMask;
    if (learned) w0 |= kLearnedFlag;
    if (tainted) w0 |= kTaintedFlag;
    if (prior) w0 |= kPriorFlag;
    data_.push_back(w0);
    data_.push_back(static_cast<std::uint32_t>(lbd));
    data_.push_back(0);
    data_.push_back(0);
    set_act(ref, act);
    data_.insert(data_.end(), lits, lits + n);
    return ref;
  }

  [[nodiscard]] std::uint32_t size(ClauseRef r) const {
    return data_[static_cast<std::size_t>(r)] & kSizeMask;
  }
  [[nodiscard]] bool learned(ClauseRef r) const {
    return (data_[static_cast<std::size_t>(r)] & kLearnedFlag) != 0;
  }
  [[nodiscard]] bool tainted(ClauseRef r) const {
    return (data_[static_cast<std::size_t>(r)] & kTaintedFlag) != 0;
  }
  [[nodiscard]] bool deleted(ClauseRef r) const {
    return (data_[static_cast<std::size_t>(r)] & kDeletedFlag) != 0;
  }
  [[nodiscard]] bool prior(ClauseRef r) const {
    return (data_[static_cast<std::size_t>(r)] & kPriorFlag) != 0;
  }
  void set_prior(ClauseRef r, bool on) {
    if (on) data_[static_cast<std::size_t>(r)] |= kPriorFlag;
    else data_[static_cast<std::size_t>(r)] &= ~kPriorFlag;
  }
  [[nodiscard]] std::int32_t lbd(ClauseRef r) const {
    return static_cast<std::int32_t>(data_[static_cast<std::size_t>(r) + 1]);
  }
  [[nodiscard]] std::int32_t* lits(ClauseRef r) {
    return reinterpret_cast<std::int32_t*>(
        data_.data() + static_cast<std::size_t>(r) + kHeaderWords);
  }
  [[nodiscard]] const std::int32_t* lits(ClauseRef r) const {
    return reinterpret_cast<const std::int32_t*>(
        data_.data() + static_cast<std::size_t>(r) + kHeaderWords);
  }
  [[nodiscard]] double act(ClauseRef r) const {
    const std::uint64_t u =
        static_cast<std::uint64_t>(data_[static_cast<std::size_t>(r) + 2]) |
        (static_cast<std::uint64_t>(data_[static_cast<std::size_t>(r) + 3])
         << 32);
    double d;
    std::memcpy(&d, &u, sizeof d);
    return d;
  }
  void set_act(ClauseRef r, double d) {
    std::uint64_t u;
    std::memcpy(&u, &d, sizeof u);
    data_[static_cast<std::size_t>(r) + 2] = static_cast<std::uint32_t>(u);
    data_[static_cast<std::size_t>(r) + 3] =
        static_cast<std::uint32_t>(u >> 32);
  }

  /// Tombstones the clause. The size field and literals are preserved so
  /// walks (and stale watch entries) stay valid; the words count as waste.
  void mark_deleted(ClauseRef r) {
    data_[static_cast<std::size_t>(r)] |= kDeletedFlag;
    wasted_ += kHeaderWords + size(r);
  }

  /// Sequential walk in allocation order; kClauseRefUndef terminates.
  [[nodiscard]] ClauseRef first() const {
    return data_.empty() ? kClauseRefUndef : 0;
  }
  [[nodiscard]] ClauseRef next(ClauseRef r) const {
    const std::size_t n = static_cast<std::size_t>(r) + kHeaderWords + size(r);
    return n >= data_.size() ? kClauseRefUndef
                             : static_cast<ClauseRef>(n);
  }

  [[nodiscard]] std::size_t words() const { return data_.size(); }
  [[nodiscard]] std::size_t bytes() const {
    return data_.size() * sizeof(std::uint32_t);
  }
  [[nodiscard]] std::size_t wasted_words() const { return wasted_; }

  void clear() {
    data_.clear();
    wasted_ = 0;
  }

  /// Phase 1 of compaction: copies live clauses (relative order preserved)
  /// into fresh storage and writes each one's forwarding ref into word 1
  /// of its *old* header (kClauseRefUndef for tombstones). Until
  /// finish_compact(), reloc() maps old refs; all other accessors already
  /// see the new storage.
  void begin_compact() {
    old_.swap(data_);
    data_.clear();
    data_.reserve(old_.size() - wasted_);
    std::size_t r = 0;
    while (r < old_.size()) {
      const std::uint32_t w0 = old_[r];
      const std::size_t total = kHeaderWords + (w0 & kSizeMask);
      if ((w0 & kDeletedFlag) != 0) {
        old_[r + 1] = static_cast<std::uint32_t>(kClauseRefUndef);
      } else {
        const auto nref = static_cast<ClauseRef>(data_.size());
        data_.push_back(w0);
        data_.insert(data_.end(), old_.begin() + static_cast<std::ptrdiff_t>(r) + 1,
                     old_.begin() + static_cast<std::ptrdiff_t>(r + total));
        old_[r + 1] = static_cast<std::uint32_t>(nref);
      }
      r += total;
    }
  }

  /// New home of old ref `r` (kClauseRefUndef if it was a tombstone).
  /// Valid only between begin_compact() and finish_compact().
  [[nodiscard]] ClauseRef reloc(ClauseRef r) const {
    return static_cast<ClauseRef>(old_[static_cast<std::size_t>(r) + 1]);
  }

  /// Phase 2: drops the old storage; every stored ref must have been
  /// rewritten through reloc() by now.
  void finish_compact() {
    old_.clear();
    wasted_ = 0;
  }

 private:
  std::vector<std::uint32_t> data_;
  std::vector<std::uint32_t> old_;  // previous storage during compaction
  std::size_t wasted_ = 0;          // words held by tombstones
};

}  // namespace advocat::smt::native
