#include "smt/simplex_theory.hpp"

#include <algorithm>
#include <limits>

#include "util/fault.hpp"

namespace advocat::smt {

using linalg::Rational;
using util::BigInt;

namespace {

// Internal tag space: rows keep their index (>= 0), pin p becomes -1-p,
// and branch-on-vertex cut bounds use a reserved tag that is filtered out
// of every explanation (over the integers the two branch bounds form a
// tautology, so a refutation of both branches refutes the node without
// them).
constexpr int kBranchTag = std::numeric_limits<int>::min();
inline int pin_tag(int p) { return -1 - p; }
inline bool tag_is_pin(int t) { return t < 0 && t != kBranchTag; }

// Branch-and-bound node budget per integer-complete check. Each node costs
// one simplex re-check; an exhausted budget keeps the honest `Feasible`
// (integer-open) verdict, which the solver degrades to Unknown as before.
constexpr std::uint64_t kBranchBudget = 128;

// floor of an exact rational as a BigInt (BigInt division truncates toward
// zero, so negative non-integral quotients need the -1 adjustment).
BigInt floor_big(const Rational& v) {
  BigInt q = v.num() / v.den();
  if (v.is_negative() && !(v.num() % v.den()).is_zero()) q -= BigInt(1);
  return q;
}

}  // namespace

SimplexTheory::SlackRef SimplexTheory::slack_for(const theory::Row& row) {
  // Hot path: rows are stable immutable atom members, so re-activation
  // across checks resolves by pointer with no string traffic.
  const auto it = row_slack_.find(&row);
  if (it != row_slack_.end()) return it->second;
  const SlackRef ref = intern_slack(row);
  row_slack_.emplace(&row, ref);
  return ref;
}

SimplexTheory::SlackRef SimplexTheory::intern_slack(const theory::Row& row) {
  // Canonical sign: leading coefficient positive. A negated form asserts
  // mirrored bounds on the canonical slack, so an equality's ≤/≥ pair and
  // every re-activation share one tableau row.
  const bool negated = row.terms.front().second < 0;
  std::string key;
  for (const auto& [v, c] : row.terms) {
    key += std::to_string(v) + "*" + std::to_string(negated ? -c : c) + ",";
  }
  auto it = slack_index_.find(key);
  if (it != slack_index_.end()) return {it->second.var, negated};
  std::vector<std::pair<std::int32_t, std::int64_t>> terms;
  terms.reserve(row.terms.size());
  for (const auto& [v, c] : row.terms) {
    terms.emplace_back(static_cast<std::int32_t>(v), negated ? -c : c);
  }
  const SlackRef ref{spx_.add_slack(terms), false};
  slack_index_.emplace(std::move(key), ref);
  return {ref.var, negated};
}

bool SimplexTheory::assert_row(const theory::Row& row, int tag) {
  if (row.terms.empty()) {  // constant row: 0 ≤ bound
    return row.bound >= 0;  // on conflict the caller's tag alone explains
  }
  const SlackRef s = slack_for(row);
  // Σ terms ≤ b  ⇔  canonical ≤ b   (positive sign)
  //            ⇔  canonical ≥ −b   (negated sign)
  return s.negated ? spx_.assert_lower(s.var, Rational(-row.bound), tag)
                   : spx_.assert_upper(s.var, Rational(row.bound), tag);
}

void SimplexTheory::collect_farkas_tags(std::vector<int>& used) const {
  for (const linalg::FarkasTerm& t : spx_.farkas()) {
    if (t.tag != kBranchTag) used.push_back(t.tag);
  }
}

void SimplexTheory::capture_farkas(Result& out) const {
  // Only a refutation free of branch-cut bounds is a single Farkas
  // combination of the caller's rows/pins; a branch-tagged term means the
  // contradiction needs that cut as a premise, so no flat multiplier list
  // certifies it.
  for (const linalg::FarkasTerm& t : spx_.farkas()) {
    if (t.tag == kBranchTag) {
      out.farkas.clear();
      return;
    }
  }
  out.farkas = spx_.farkas();
}

SimplexTheory::Verdict SimplexTheory::branch(const std::vector<int>& int_vars,
                                             int depth,
                                             std::vector<int>& used,
                                             Result& out) {
  // Precondition: bounds feasible over the rationals (spx_.check() held).
  int frac = -1;
  for (const int v : int_vars) {
    if (!spx_.value(spx_.var(v)).is_integer()) {
      frac = v;
      break;
    }
  }
  if (frac < 0) {
    out.model.clear();
    for (const int v : int_vars) {
      const Rational& val = spx_.value(spx_.var(v));
      if (!val.num().fits_int64()) return Verdict::Feasible;  // honest open
      out.model.push_back(theory::Pin{v, val.num().to_int64()});
    }
    return Verdict::IntegerModel;
  }
  if (branch_budget_ == 0 || depth > 64) return Verdict::Feasible;
  --branch_budget_;

  const int ext = spx_.var(frac);
  const Rational f(floor_big(spx_.value(ext)));
  auto probe = [&](bool upper_branch) {
    const std::size_t mark = spx_.mark();
    Verdict v;
    const bool ok = upper_branch
                        ? spx_.assert_lower(ext, f + Rational(1), kBranchTag)
                        : spx_.assert_upper(ext, f, kBranchTag);
    if (!ok || !spx_.check()) {
      collect_farkas_tags(used);
      v = Verdict::Infeasible;
    } else {
      v = branch(int_vars, depth + 1, used, out);
    }
    spx_.retract_to(mark);
    return v;
  };
  const Verdict lo = probe(false);
  if (lo == Verdict::IntegerModel) return lo;
  const Verdict hi = probe(true);
  if (hi == Verdict::IntegerModel) return hi;
  if (lo == Verdict::Infeasible && hi == Verdict::Infeasible) {
    return Verdict::Infeasible;  // x ≤ ⌊v⌋ ∨ x ≥ ⌊v⌋+1 is an integer tautology
  }
  return Verdict::Feasible;
}

std::string SimplexTheory::audit() const {
  // Canonical-sign uniqueness: every canonical form owns exactly one
  // slack, every cached slack is canonical (never stored negated), and
  // slack ids are valid tableau variables.
  std::unordered_map<int, const std::string*> owner_of;
  for (const auto& [key, ref] : slack_index_) {
    if (ref.negated) {
      return "slack_index_[" + key + "]: stored negated (non-canonical)";
    }
    if (ref.var < 0 || static_cast<std::size_t>(ref.var) >= spx_.num_vars()) {
      return "slack_index_[" + key + "]: slack var " +
             std::to_string(ref.var) + " out of range";
    }
    const auto [it, fresh] = owner_of.emplace(ref.var, &key);
    if (!fresh) {
      return "slack var " + std::to_string(ref.var) +
             " owned by two canonical forms: " + *it->second + " and " + key;
    }
  }
  // The by-pointer row cache must agree with the canonical index.
  for (const auto& [row, ref] : row_slack_) {
    const bool negated = row->terms.front().second < 0;
    std::string key;
    for (const auto& [v, c] : row->terms) {
      key += std::to_string(v) + "*" + std::to_string(negated ? -c : c) + ",";
    }
    const auto it = slack_index_.find(key);
    if (it == slack_index_.end()) {
      return "row_slack_ entry with no canonical form: " + key;
    }
    if (it->second.var != ref.var || ref.negated != negated) {
      return "row_slack_ entry disagrees with canonical index: " + key;
    }
  }
  return spx_.audit();
}

SimplexTheory::Result SimplexTheory::check(
    const std::vector<const theory::Row*>& rows,
    const std::vector<theory::Pin>& pins, bool integer_complete) {
  // Injected theory timeout. Thrown before any bound is (re)asserted, so
  // it unwinds exactly like a deadline tick fired on the first pivot —
  // the host's established recovery path.
  if (util::fault::enabled() &&
      util::fault::fire(util::fault::Site::kTheoryTimeout)) {
    throw util::fault::FaultInjected{};
  }
  spx_.retract_to(0);
  Result out;
  std::vector<int> used;
  bool conflict = false;

  for (std::size_t i = 0; i < rows.size() && !conflict; ++i) {
    if (!assert_row(*rows[i], static_cast<int>(i))) {
      if (rows[i]->terms.empty()) {
        used.push_back(static_cast<int>(i));  // 0 ≤ negative, alone
      } else {
        collect_farkas_tags(used);
        capture_farkas(out);
      }
      conflict = true;
    }
  }
  for (std::size_t p = 0; p < pins.size() && !conflict; ++p) {
    const int ext = spx_.var(pins[p].var);
    const Rational v(pins[p].value);
    if (!spx_.assert_upper(ext, v, pin_tag(static_cast<int>(p))) ||
        !spx_.assert_lower(ext, v, pin_tag(static_cast<int>(p)))) {
      collect_farkas_tags(used);
      capture_farkas(out);
      conflict = true;
    }
  }

  if (!conflict) {
    if (spx_.check()) {
      if (!integer_complete) return out;  // Feasible
      std::vector<int> int_vars;
      for (const theory::Row* r : rows) {
        for (const auto& [v, c] : r->terms) {
          (void)c;
          int_vars.push_back(v);
        }
      }
      for (const theory::Pin& p : pins) int_vars.push_back(p.var);
      std::sort(int_vars.begin(), int_vars.end());
      int_vars.erase(std::unique(int_vars.begin(), int_vars.end()),
                     int_vars.end());
      branch_budget_ = kBranchBudget;
      out.verdict = branch(int_vars, 0, used, out);
      if (out.verdict != Verdict::Infeasible) return out;
    } else {
      collect_farkas_tags(used);
      capture_farkas(out);
    }
  }

  // Infeasible: map the internal tags back onto the caller's rows/pins.
  out.verdict = Verdict::Infeasible;
  std::sort(used.begin(), used.end());
  used.erase(std::unique(used.begin(), used.end()), used.end());
  for (const int t : used) {
    if (tag_is_pin(t)) out.conflict_pins.push_back(-1 - t);
    else out.conflict_rows.push_back(t);
  }
  ++explanations_;
  return out;
}

}  // namespace advocat::smt
