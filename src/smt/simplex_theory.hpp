// Exact linear-arithmetic theory layer: bridges the native solver's active
// row/pin state onto the incremental rational simplex (linalg/simplex.hpp).
//
// The bridge owns one persistent Simplex per solver session. Tableau
// structure is permanent and deduplicated: each distinct linear form gets
// one slack variable, keyed by its canonical sign (leading coefficient
// positive), so the ≤ and ≥ rows of one equality atom — and re-activations
// of the same row across checks and probes — all land on the same slack.
// Per check() call only the *bounds* are (re)asserted, and the basis
// persists, so repeated calls pivot from the previous vertex.
//
// Verdicts are exact or honest: `Infeasible` comes with a Farkas
// explanation mapped back to row/pin tags (the SMT layer learns it as a
// theory clause); `IntegerModel` is a full integer assignment for every
// variable the active system mentions; `Feasible` means rationally
// feasible but integer-openness remains (rational-only mode, or the
// branch budget ran out) — the caller keeps its Unknown degradation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "linalg/simplex.hpp"
#include "smt/theory.hpp"

namespace advocat::smt {

class SimplexTheory {
 public:
  enum class Verdict {
    Feasible,      ///< rationally feasible; integers not decided
    Infeasible,    ///< exact refutation; conflict_rows/conflict_pins set
    IntegerModel,  ///< integer witness; model set
  };

  struct Result {
    Verdict verdict = Verdict::Feasible;
    /// Infeasible: indices into the `rows` argument the refutation used.
    std::vector<int> conflict_rows;
    /// Infeasible: indices into the `pins` argument the refutation used.
    std::vector<int> conflict_pins;
    /// Infeasible via one rational Farkas combination (no branch cuts
    /// involved): the exact positive multipliers, in the internal tag
    /// space (row index >= 0, pin p as -1-p). Summing multiplier-scaled
    /// rows cancels every variable and leaves a contradictory constant —
    /// an independently checkable certificate of the refutation. Empty
    /// when the refutation composed several branch-and-bound leaves (no
    /// single combination exists) or a constant row refuted alone.
    std::vector<linalg::FarkasTerm> farkas;
    /// IntegerModel: value per integer variable the system mentions.
    std::vector<theory::Pin> model;
  };

  /// Decides the conjunction of the active rows (Σ terms ≤ bound each) and
  /// pins (var = value each). With `integer_complete`, a rationally
  /// feasible system is further decided over the integers by
  /// branch-on-rational-vertex cuts under a node budget; without it the
  /// rational verdict is returned as-is (cheap mode for mid-search calls).
  Result check(const std::vector<const theory::Row*>& rows,
               const std::vector<theory::Pin>& pins, bool integer_complete);

  /// Cumulative counters, session-lifetime (mirrors SolveStats).
  [[nodiscard]] std::uint64_t pivots() const { return spx_.stats().pivots; }
  [[nodiscard]] std::uint64_t explanations() const { return explanations_; }

  /// Deadline poll forwarded to every pivot (may throw; see Simplex).
  void set_tick(std::function<void()> tick) { spx_.set_tick(std::move(tick)); }

  /// Inline tableau pool bytes (memory-ceiling input; see Simplex).
  [[nodiscard]] std::size_t pool_bytes() const { return spx_.pool_bytes(); }

  /// Deep self-audit: slack interning consistency (canonical-sign
  /// uniqueness — one slack per canonical form, row cache in agreement
  /// with the canonical index) plus the underlying tableau's own audit.
  /// Returns "" when every invariant holds, else a description of the
  /// first violation (see smt/audit.hpp).
  [[nodiscard]] std::string audit() const;

 private:
  // Slack handle for a canonical form: negated forms assert mirrored
  // bounds on the positively-signed slack.
  struct SlackRef {
    int var = -1;
    bool negated = false;
  };

  SlackRef slack_for(const theory::Row& row);
  SlackRef intern_slack(const theory::Row& row);
  // Asserts row/pin bounds; returns false on immediate conflict.
  bool assert_row(const theory::Row& row, int tag);
  // Branch-on-rational-vertex integer completion; appends used non-branch
  // tags to `used`. Returns the verdict for the current bound state.
  Verdict branch(const std::vector<int>& int_vars, int depth,
                 std::vector<int>& used, Result& out);
  void collect_farkas_tags(std::vector<int>& used) const;
  // Copies the tableau's current Farkas terms into `out.farkas` when they
  // form a single branch-free combination (see Result::farkas).
  void capture_farkas(Result& out) const;

  linalg::Simplex spx_;
  // Two-level interning: by row identity (rows are stable, immutable atom
  // members — re-activation across checks is the hot case and stays
  // string-free), then by canonical form (distinct Row objects with the
  // same form, e.g. the ≤/≥ halves of an equality, share one slack).
  std::unordered_map<const theory::Row*, SlackRef> row_slack_;
  std::unordered_map<std::string, SlackRef> slack_index_;
  std::uint64_t explanations_ = 0;
  std::uint64_t branch_budget_ = 0;  // per-check node budget (see .cpp)
};

}  // namespace advocat::smt
