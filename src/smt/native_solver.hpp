// Portable in-tree SMT backend — no external solver dependency.
//
// The ADVOCAT encodings are boolean combinations of linear integer
// constraints where every integer is bounded: queue occupancies by the
// queue capacity, one-hot state indicators by 1, and the flow-completion
// counters by the equalities tying them to occupancies. That makes a
// small finite-domain solver sound and complete for them:
//
//   1. Tseitin-encode the boolean skeleton of the assertion DAG; each
//      distinct linear atom (Σ c·x ≤ k, Σ c·x = k) becomes one
//      propositional variable.
//   2. CDCL over the skeleton: two-watched-literal unit propagation,
//      first-UIP clause learning with minimization, non-chronological
//      backjumping, an EVSIDS activity heuristic, Luby restarts, and an
//      LBD/activity-managed learned-clause database. Learned clauses
//      persist across check() calls *and* across push()/pop(): scoped
//      assertions and per-check assumptions are solved on assumption-style
//      decision levels, so every learned clause is entailed by the
//      permanent material alone and never has to be discarded.
//   3. Every assigned atom activates interval rows; bounds propagation
//      runs to fixpoint after each boolean step, prunes on conflict, and
//      explains entailed atoms to the conflict analyzer.
//   4. At a full boolean assignment, fail-first branch-and-bound over the
//      remaining integer domains completes (or refutes) the assignment;
//      refuted leaves are learned as blocking clauses over the theory
//      atoms, so shared substructure is never re-refuted.
//   5. Where intervals are structurally weak — tightening exhausts its
//      budget with unbounded variables in play, or a leaf degrades — an
//      exact rational simplex (smt/simplex_theory.hpp over
//      linalg/simplex.hpp) decides the active rows outright: Farkas
//      infeasibility explanations become learned theory clauses, and
//      divisibility plus branch-on-rational-vertex cuts extend the
//      refutations to the integers, so infeasible *unbounded* flow
//      systems are refuted instead of degraded.
//
// When neither theory concludes (e.g. the simplex branch budget runs out
// on a rationally feasible, integer-open system) the solver degrades the
// verdict to Unknown instead of claiming Unsat — Sat answers and models
// are always exact.
#pragma once

#include <memory>

#include "smt/expr.hpp"
#include "smt/solver.hpp"

namespace advocat::smt {

/// Creates the native solver over `factory`'s expressions. The factory
/// must outlive the solver.
std::unique_ptr<Solver> make_native_solver(const ExprFactory& factory);

}  // namespace advocat::smt
