// Portable in-tree SMT backend — no external solver dependency.
//
// The ADVOCAT encodings are boolean combinations of linear integer
// constraints where every integer is bounded: queue occupancies by the
// queue capacity, one-hot state indicators by 1, and the flow-completion
// counters by the equalities tying them to occupancies. That makes a
// small finite-domain solver sound and complete for them:
//
//   1. Tseitin-encode the boolean skeleton of the assertion DAG; each
//      distinct linear atom (Σ c·x ≤ k, Σ c·x = k) becomes one
//      propositional variable.
//   2. DPLL over the skeleton: two-watched-literal unit propagation,
//      chronological backtracking with decision flipping.
//   3. Every assigned atom activates interval rows; bounds propagation
//      runs to fixpoint after each boolean step and prunes on conflict.
//   4. At a full boolean assignment, fail-first branch-and-bound over the
//      remaining integer domains completes (or refutes) the assignment.
//
// When a variable is never bounded by the active constraints the solver
// probes a finite window and degrades an exhausted search to Unknown
// instead of claiming Unsat — Sat answers and models are always exact.
#pragma once

#include <memory>

#include "smt/expr.hpp"
#include "smt/solver.hpp"

namespace advocat::smt {

/// Creates the native solver over `factory`'s expressions. The factory
/// must outlive the solver.
std::unique_ptr<Solver> make_native_solver(const ExprFactory& factory);

}  // namespace advocat::smt
