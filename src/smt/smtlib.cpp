#include "smt/smtlib.hpp"

#include <sstream>

namespace advocat::smt {

namespace {

// SMT-LIB symbols may not contain most punctuation; wrap anything unusual
// in |...| quoting.
std::string symbol(const std::string& name) {
  bool simple = !name.empty();
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
          c == '-')) {
      simple = false;
      break;
    }
  }
  if (simple) return name;
  return "|" + name + "|";
}

void emit(const ExprFactory& f, ExprId id, std::ostream& os) {
  const Node& n = f.node(id);
  auto emit_nary = [&](const char* op) {
    os << "(" << op;
    for (ExprId k : n.kids) {
      os << " ";
      emit(f, k, os);
    }
    os << ")";
  };
  switch (n.op) {
    case Op::BoolConst: os << (n.value ? "true" : "false"); break;
    case Op::IntConst:
      if (n.value < 0) os << "(- " << -n.value << ")";
      else os << n.value;
      break;
    case Op::BoolVar:
    case Op::IntVar: os << symbol(n.name); break;
    case Op::And: emit_nary("and"); break;
    case Op::Or: emit_nary("or"); break;
    case Op::Not: emit_nary("not"); break;
    case Op::Implies: emit_nary("=>"); break;
    case Op::Iff: emit_nary("="); break;
    case Op::Eq: emit_nary("="); break;
    case Op::Le: emit_nary("<="); break;
    case Op::Add: emit_nary("+"); break;
    case Op::MulConst:
      os << "(* ";
      if (n.value < 0) os << "(- " << -n.value << ")";
      else os << n.value;
      os << " ";
      emit(f, n.kids[0], os);
      os << ")";
      break;
  }
}

}  // namespace

std::string to_smtlib(const ExprFactory& factory,
                      const std::vector<ExprId>& assertions) {
  std::ostringstream os;
  os << "(set-logic QF_LIA)\n";
  for (const auto& [name, is_bool] : factory.variables()) {
    os << "(declare-const " << symbol(name) << (is_bool ? " Bool" : " Int")
       << ")\n";
  }
  for (ExprId a : assertions) {
    os << "(assert ";
    emit(factory, a, os);
    os << ")\n";
  }
  os << "(check-sat)\n";
  return os.str();
}

}  // namespace advocat::smt
