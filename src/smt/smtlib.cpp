#include "smt/smtlib.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

namespace advocat::smt {

namespace {

// SMT-LIB symbols may not contain most punctuation; wrap anything unusual
// in |...| quoting.
std::string symbol(const std::string& name) {
  bool simple = !name.empty();
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
          c == '-')) {
      simple = false;
      break;
    }
  }
  if (simple) return name;
  return "|" + name + "|";
}

void emit(const ExprFactory& f, ExprId id, std::ostream& os) {
  const Node& n = f.node(id);
  auto emit_nary = [&](const char* op) {
    os << "(" << op;
    for (ExprId k : n.kids) {
      os << " ";
      emit(f, k, os);
    }
    os << ")";
  };
  switch (n.op) {
    case Op::BoolConst: os << (n.value ? "true" : "false"); break;
    case Op::IntConst:
      if (n.value < 0) os << "(- " << -n.value << ")";
      else os << n.value;
      break;
    case Op::BoolVar:
    case Op::IntVar: os << symbol(n.name); break;
    case Op::And: emit_nary("and"); break;
    case Op::Or: emit_nary("or"); break;
    case Op::Not: emit_nary("not"); break;
    case Op::Implies: emit_nary("=>"); break;
    case Op::Iff: emit_nary("="); break;
    case Op::Eq: emit_nary("="); break;
    case Op::Le: emit_nary("<="); break;
    case Op::Add: emit_nary("+"); break;
    case Op::MulConst:
      os << "(* ";
      if (n.value < 0) os << "(- " << -n.value << ")";
      else os << n.value;
      os << " ";
      emit(f, n.kids[0], os);
      os << ")";
      break;
  }
}

void emit_prelude(const ExprFactory& factory, std::ostream& os) {
  os << "(set-logic QF_LIA)\n";
  for (const auto& [name, is_bool] : factory.variables()) {
    os << "(declare-const " << symbol(name) << (is_bool ? " Bool" : " Int")
       << ")\n";
  }
}

void emit_assert(const ExprFactory& factory, ExprId a, std::ostream& os) {
  os << "(assert ";
  emit(factory, a, os);
  os << ")\n";
}

}  // namespace

std::string to_smtlib(const ExprFactory& factory,
                      const std::vector<ExprId>& assertions) {
  std::ostringstream os;
  emit_prelude(factory, os);
  for (ExprId a : assertions) emit_assert(factory, a, os);
  os << "(check-sat)\n";
  return os.str();
}

void Script::add(ExprId assertion) {
  commands_.push_back({Command::Kind::Assert, assertion, {}});
}

void Script::push() {
  commands_.push_back({Command::Kind::Push, kNoExpr, {}});
  ++open_scopes_;
}

void Script::pop() {
  if (open_scopes_ == 0) {
    throw std::logic_error("Script::pop: no open scope");
  }
  commands_.push_back({Command::Kind::Pop, kNoExpr, {}});
  --open_scopes_;
}

void Script::check_sat(std::vector<ExprId> assumptions) {
  commands_.push_back({Command::Kind::CheckSat, kNoExpr,
                       std::move(assumptions)});
  ++num_checks_;
}

std::string Script::to_smtlib(const ExprFactory& factory) const {
  std::ostringstream os;
  emit_prelude(factory, os);
  for (const Command& c : commands_) {
    switch (c.kind) {
      case Command::Kind::Assert:
        emit_assert(factory, c.expr, os);
        break;
      case Command::Kind::Push:
        os << "(push 1)\n";
        break;
      case Command::Kind::Pop:
        os << "(pop 1)\n";
        break;
      case Command::Kind::CheckSat:
        if (c.assumptions.empty()) {
          os << "(check-sat)\n";
        } else {
          os << "(push 1)\n";
          for (ExprId a : c.assumptions) emit_assert(factory, a, os);
          os << "(check-sat)\n(pop 1)\n";
        }
        break;
    }
  }
  return os.str();
}

std::vector<SatResult> Script::replay(Solver& solver,
                                      unsigned timeout_ms) const {
  std::vector<SatResult> verdicts;
  for (const Command& c : commands_) {
    switch (c.kind) {
      case Command::Kind::Assert: solver.add(c.expr); break;
      case Command::Kind::Push: solver.push(); break;
      case Command::Kind::Pop: solver.pop(); break;
      case Command::Kind::CheckSat:
        verdicts.push_back(solver.check_assuming(c.assumptions, timeout_ms));
        break;
    }
  }
  return verdicts;
}

namespace {

class RecordingSolver final : public Solver {
 public:
  RecordingSolver(std::unique_ptr<Solver> inner, Script& script)
      : inner_(std::move(inner)), script_(script) {}

  void add(ExprId assertion) override {
    script_.add(assertion);
    inner_->add(assertion);
  }

  void push() override {
    script_.push();
    inner_->push();
  }

  void pop() override {
    inner_->pop();  // throws before the script is touched when unbalanced
    script_.pop();
  }

  [[nodiscard]] std::size_t num_scopes() const override {
    return inner_->num_scopes();
  }

  void set_threads(unsigned n) override { inner_->set_threads(n); }

  void set_deterministic(bool on) override { inner_->set_deterministic(on); }

  void set_proof_sink(ProofSink* sink) override {
    inner_->set_proof_sink(sink);
  }

  void set_budget(const util::ResourceBudget& budget) override {
    inner_->set_budget(budget);
  }

  void cancel() override { inner_->cancel(); }

  [[nodiscard]] const SolveStats& solve_stats() const override {
    return inner_->solve_stats();
  }

  [[nodiscard]] const std::vector<ExprId>& unsat_core() const override {
    return inner_->unsat_core();
  }

 protected:
  SatResult do_check(const std::vector<ExprId>& assumptions,
                     unsigned timeout_ms) override {
    script_.check_sat(assumptions);
    const SatResult r = inner_->check_assuming(assumptions, timeout_ms);
    if (r == SatResult::Sat) store_model(inner_->model());
    return r;
  }

 private:
  std::unique_ptr<Solver> inner_;
  Script& script_;
};

}  // namespace

std::unique_ptr<Solver> make_recording_solver(std::unique_ptr<Solver> inner,
                                              Script& script) {
  return std::make_unique<RecordingSolver>(std::move(inner), script);
}

}  // namespace advocat::smt
