// Rendering linalg rows as theory-consumable SMT expressions.
//
// The native backend's atom translation maps the comparison
// `Σ c_i·x_i ⋈ k` (variables summed on the left, the constant alone on
// the right) 1:1 onto one theory::Row — and the simplex layer onto one
// tableau slack. Emitting that canonical shape uniformly from every
// encoder matters beyond taste: the invariant generator and the
// flow-completion encoder frequently produce the *same* row, and with one
// shape the expression hash-conses to one node, one theory atom, and one
// slack instead of a family of equivalent variants that each pay their
// own translation, activation, and learned-clause vocabulary.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "linalg/sparse_row.hpp"
#include "smt/expr.hpp"

namespace advocat::smt {

/// Renders the linalg row `Σ c_i·x_i + k  ⋈  0` (⋈ is `=` when `is_eq`,
/// `≤` otherwise) as the canonical comparison `Σ c_i·x_i ⋈ −k`.
/// `var_of` supplies the expression for a column. Coefficients and the
/// constant must be integral — normalize the row first.
inline ExprId row_expr(ExprFactory& f, const linalg::SparseRow& row,
                       const std::function<ExprId(std::int32_t)>& var_of,
                       bool is_eq) {
  std::vector<ExprId> terms;
  terms.reserve(row.entries().size());
  for (const linalg::Entry& e : row.entries()) {
    terms.push_back(f.mul_const(e.coeff.num().to_int64(), var_of(e.col)));
  }
  const ExprId lhs =
      terms.empty() ? f.int_const(0) : f.add(std::move(terms));
  const ExprId rhs = f.int_const(-row.constant().num().to_int64());
  return is_eq ? f.eq(lhs, rhs) : f.le(lhs, rhs);
}

}  // namespace advocat::smt
