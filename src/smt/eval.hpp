// Reference evaluator for expressions under a model.
//
// Used to decode witnesses (which deadlock disjunct fired) and by tests to
// cross-check encodings without trusting the solver.
#pragma once

#include <cstdint>

#include "smt/expr.hpp"
#include "smt/solver.hpp"

namespace advocat::smt {

/// Evaluates a boolean expression; throws std::logic_error on sort mismatch.
[[nodiscard]] bool eval_bool(const ExprFactory& f, const Model& m, ExprId e);

/// Evaluates an integer expression.
[[nodiscard]] std::int64_t eval_int(const ExprFactory& f, const Model& m,
                                    ExprId e);

}  // namespace advocat::smt
