// Z3 backend. The only translation unit that includes z3++.h.
#include <z3++.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "smt/solver.hpp"
#include "util/budget.hpp"

namespace advocat::smt {

namespace {

class Z3Solver final : public Solver {
 public:
  explicit Z3Solver(const ExprFactory& factory)
      : factory_(factory), solver_(ctx_) {}

  void add(ExprId assertion) override { solver_.add(translate(assertion)); }

  void push() override {
    solver_.push();
    ++num_scopes_;
  }

  void pop() override {
    if (num_scopes_ == 0) {
      throw std::logic_error("Z3Solver::pop: no open scope");
    }
    solver_.pop(1);
    --num_scopes_;
  }

  [[nodiscard]] std::size_t num_scopes() const override { return num_scopes_; }

  /// Asynchronous cancellation: raises the base flag (for the StopReason
  /// mapping) and interrupts the Z3 context, which aborts the in-flight
  /// check at its next internal poll. Z3 clears the interrupt at the start
  /// of the next query, matching the one-shot contract.
  void cancel() override {
    Solver::cancel();
    cancel_seen_.store(true, std::memory_order_relaxed);
    try {
      ctx_.interrupt();
    } catch (const z3::exception&) {
      // Nothing in flight to interrupt; the flag alone is enough.
    }
  }

 protected:
  SatResult do_check(const std::vector<ExprId>& assumptions,
                     unsigned timeout_ms) override {
    cancel_seen_.store(false, std::memory_order_relaxed);
    // Z3 parameters persist on the solver object, so a limit set for one
    // check of the session must be cleared for the next (0 = no limit is
    // Z3's UINT_MAX default). The session budget composes with the
    // per-call timeout as the tighter of the two, and the discrete
    // ceilings map best-effort onto Z3's abstract rlimit / max_memory —
    // both backends then degrade through the same StopReason taxonomy
    // even though Z3's counters are not exactly ours.
    const util::ResourceBudget& b = budget();
    unsigned effective_ms = timeout_ms;
    if (b.deadline_ms != 0 &&
        (effective_ms == 0 || b.deadline_ms < effective_ms)) {
      effective_ms = b.deadline_ms;
    }
    z3::params p(ctx_);
    p.set("timeout", effective_ms > 0 ? effective_ms : 4294967295u);
    // rlimit: Z3's abstract resource counter ticks roughly per
    // propagation; a conflict costs orders of magnitude more. Scale the
    // conflict/decision ceilings accordingly and take the tightest.
    std::uint64_t rlimit = 0;
    auto tighten = [&rlimit](std::uint64_t v) {
      if (v != 0 && (rlimit == 0 || v < rlimit)) rlimit = v;
    };
    tighten(b.max_conflicts == 0 ? 0 : b.max_conflicts * 1000);
    tighten(b.max_decisions == 0 ? 0 : b.max_decisions * 1000);
    tighten(b.max_propagations);
    p.set("rlimit", static_cast<unsigned>(
                        std::min<std::uint64_t>(rlimit, 4294967295u)));
    if (b.max_memory_bytes != 0) {
      const std::uint64_t mb = std::max<std::uint64_t>(
          1, b.max_memory_bytes >> 20);
      p.set("max_memory", static_cast<unsigned>(
                              std::min<std::uint64_t>(mb, 4294967295u)));
    }
    solver_.set(p);

    z3::check_result r;
    if (assumptions.empty()) {
      r = solver_.check();
    } else {
      // z3::solver::check(expr_vector) treats the vector as assumptions:
      // they hold for this call only, exactly the Solver contract.
      z3::expr_vector av(ctx_);
      for (ExprId a : assumptions) av.push_back(translate(a));
      r = solver_.check(av);
      if (r == z3::unsat) extract_core(assumptions, av);
    }
    import_statistics();
    switch (r) {
      case z3::sat: {
        extract_model();
        mutable_stats().stop_reason = util::StopReason::kNone;
        return SatResult::Sat;
      }
      case z3::unsat:
        mutable_stats().stop_reason = util::StopReason::kNone;
        if (proof_sink() != nullptr) {
          // The Z3 backend produces no advocat-checkable refutation; the
          // certificate is an attestation record — the checker accepts it
          // as such, and downstream tooling can tell the two modes apart.
          Certificate cert;
          cert.mode = "attested";
          cert.complete = false;
          cert.reason = "z3 backend: verdict attested, not replayable";
          cert.text = "advocat-proof 1\nmode attested z3\nqed\n";
          cert.proof_bytes = cert.text.size();
          proof_sink()->on_unsat_certificate(cert);
        }
        return SatResult::Unsat;
      default:
        mutable_stats().stop_reason = map_unknown_reason(effective_ms);
        return SatResult::Unknown;
    }
  }

 private:
  /// Classifies an Unknown via z3::solver::reason_unknown() so both
  /// backends degrade through the same StopReason taxonomy. Z3's strings
  /// vary across versions ("timeout", "canceled", "max. resource limit
  /// exceeded", "max. memory exceeded", "(incomplete ...)"), so the match
  /// is substring-based, with our own cancel flag disambiguating
  /// "canceled" (which Z3 also uses for timeouts).
  util::StopReason map_unknown_reason(unsigned effective_ms) {
    std::string why;
    try {
      why = solver_.reason_unknown();
    } catch (const z3::exception&) {
      // fall through to the generic mapping
    }
    for (char& c : why) {
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    const auto has = [&why](const char* s) {
      return why.find(s) != std::string::npos;
    };
    if (cancel_seen_.load(std::memory_order_relaxed) &&
        (has("cancel") || has("interrupt") || why.empty())) {
      return util::StopReason::kCancelled;
    }
    if (has("memory")) return util::StopReason::kMemoryCeiling;
    if (has("resource") || has("rlimit")) {
      // Which ceiling produced the rlimit is our own bookkeeping: report
      // the tightest field the user actually set.
      const util::ResourceBudget& b = budget();
      if (b.max_conflicts != 0) return util::StopReason::kConflictBudget;
      if (b.max_decisions != 0) return util::StopReason::kDecisionBudget;
      if (b.max_propagations != 0) {
        return util::StopReason::kPropagationBudget;
      }
      return util::StopReason::kConflictBudget;
    }
    if (has("timeout") || has("cancel")) {
      return util::StopReason::kDeadline;
    }
    if (effective_ms != 0 && why.empty()) {
      // Old libz3 builds report an empty reason for a timed-out check.
      return util::StopReason::kDeadline;
    }
    return util::StopReason::kDegraded;
  }

  z3::expr translate(ExprId id) {
    auto it = cache_.find(id);
    if (it != cache_.end()) return it->second;
    const Node& n = factory_.node(id);
    auto kid = [&](std::size_t i) { return translate(n.kids[i]); };
    z3::expr result(ctx_);
    switch (n.op) {
      case Op::BoolConst: result = ctx_.bool_val(n.value != 0); break;
      case Op::IntConst: result = ctx_.int_val(static_cast<std::int64_t>(n.value)); break;
      case Op::BoolVar: result = ctx_.bool_const(n.name.c_str()); break;
      case Op::IntVar: result = ctx_.int_const(n.name.c_str()); break;
      case Op::Not: result = !kid(0); break;
      case Op::Implies: result = z3::implies(kid(0), kid(1)); break;
      case Op::Iff: result = kid(0) == kid(1); break;
      case Op::Eq: result = kid(0) == kid(1); break;
      case Op::Le: result = kid(0) <= kid(1); break;
      case Op::MulConst:
        result = ctx_.int_val(static_cast<std::int64_t>(n.value)) * kid(0);
        break;
      case Op::And: {
        z3::expr_vector v(ctx_);
        for (std::size_t i = 0; i < n.kids.size(); ++i) v.push_back(kid(i));
        result = z3::mk_and(v);
        break;
      }
      case Op::Or: {
        z3::expr_vector v(ctx_);
        for (std::size_t i = 0; i < n.kids.size(); ++i) v.push_back(kid(i));
        result = z3::mk_or(v);
        break;
      }
      case Op::Add: {
        z3::expr_vector v(ctx_);
        for (std::size_t i = 0; i < n.kids.size(); ++i) v.push_back(kid(i));
        result = z3::sum(v);
        break;
      }
    }
    cache_.emplace(id, result);
    return result;
  }

  // Best-effort mapping of libz3's per-solver statistics onto SolveStats.
  // Z3 reports counters for the engines a check actually used (the key
  // names differ between the SAT and SMT cores), and the values already
  // accumulate over the solver object's lifetime, so they are assigned —
  // not added — to keep the session-cumulative contract. Learned-clause
  // counts are not exposed through the stable API and stay 0.
  void import_statistics() {
    try {
      const z3::stats st = solver_.statistics();
      std::uint64_t conflicts = 0, decisions = 0, propagations = 0,
                    restarts = 0;
      for (unsigned i = 0; i < st.size(); ++i) {
        if (!st.is_uint(i)) continue;
        const std::string key = st.key(i);
        const std::uint64_t v = st.uint_value(i);
        if (key == "conflicts" || key == "sat conflicts") {
          conflicts += v;
        } else if (key == "decisions" || key == "sat decisions") {
          decisions += v;
        } else if (key == "propagations" || key == "sat propagations 2ary" ||
                   key == "sat propagations nary") {
          propagations += v;  // the SAT core splits binary/n-ary counters
        } else if (key == "restarts" || key == "sat restarts") {
          restarts += v;
        }
      }
      // Z3's counters already accumulate over the solver's lifetime, so
      // each snapshot replaces the last (monotone via max in case an
      // engine resets its block).
      SolveStats& out = mutable_stats();
      out.conflicts = std::max(out.conflicts, conflicts);
      out.decisions = std::max(out.decisions, decisions);
      out.propagations = std::max(out.propagations, propagations);
      out.restarts = std::max(out.restarts, restarts);
    } catch (const z3::exception&) {
      // Statistics are diagnostics; never let them fail a check.
    }
  }

  // Maps Z3's unsat core (a subset of the assumption terms) back onto the
  // caller's ExprIds. Z3 hash-conses ASTs per context, so membership is a
  // pointer comparison between each translated assumption and the core
  // terms. Duplicate assumptions translating to one term are all reported
  // (each was genuinely assumed).
  void extract_core(const std::vector<ExprId>& assumptions,
                    const z3::expr_vector& av) {
    try {
      const z3::expr_vector z3core = solver_.unsat_core();
      std::vector<ExprId> core;
      for (unsigned i = 0; i < av.size(); ++i) {
        const Z3_ast ai = static_cast<Z3_ast>(av[i]);
        for (unsigned k = 0; k < z3core.size(); ++k) {
          if (static_cast<Z3_ast>(z3core[k]) == ai) {
            core.push_back(assumptions[i]);
            break;
          }
        }
      }
      store_core(std::move(core));
    } catch (const z3::exception&) {
      // A missing core is diagnostics lost, never a failed check.
    }
  }

  void extract_model() {
    Model out;
    z3::model m = solver_.get_model();
    for (const auto& [name, is_bool] : factory_.variables()) {
      if (is_bool) {
        z3::expr v = m.eval(ctx_.bool_const(name.c_str()), true);
        out.set_bool(name, v.is_true());
      } else {
        z3::expr v = m.eval(ctx_.int_const(name.c_str()), true);
        std::int64_t value = 0;
        if (v.is_numeral_i64(value)) out.set_int(name, value);
      }
    }
    store_model(std::move(out));
  }

  const ExprFactory& factory_;
  z3::context ctx_;
  z3::solver solver_;
  std::size_t num_scopes_ = 0;
  // Whether cancel() fired during the in-flight check — distinguishes a
  // user interrupt from a timeout (Z3 reports both as "canceled").
  std::atomic<bool> cancel_seen_{false};
  // Translation cache. z3::expr handles are owned by ctx_, not by the
  // solver's assertion stack, so cached terms stay valid across pop().
  std::unordered_map<ExprId, z3::expr> cache_;
};

}  // namespace

std::unique_ptr<Solver> make_z3_solver(const ExprFactory& factory) {
  return std::make_unique<Z3Solver>(factory);
}

}  // namespace advocat::smt
