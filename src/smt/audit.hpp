// Solver invariant auditor: deep self-checks over the native CDCL(T)
// solver's mutable state, run at quiet points of the search when the
// ADVOCAT_AUDIT environment variable (or the ADVOCAT_AUDIT CMake option)
// turns them on.
//
// The auditor is a pure observer — it never mutates solver state (the one
// exception is taking shard locks to read the clause exchange) — and a
// violation is a *hard* failure: the process aborts with a message naming
// the check site and the broken invariant. Tests and the soundness fuzzer
// run with the auditor enabled, so any drift between the solver's
// documented invariants and its actual behaviour dies loudly instead of
// surfacing as a wrong verdict three layers up.
//
// What is checked where (see docs/ANALYSIS.md for the full catalog):
//
//  - check_search (every backjump): trail/decision-level well-formedness,
//    propagation-head bounds, assumption-prefix bookkeeping, EVSIDS heap
//    property and heap-position inverse.
//  - check_deep (restarts, check begin/end): all of the above, plus
//    clause-arena consistency (tombstone discipline, learned/tainted
//    counters), the exactly-once two-watched-literal invariant, reason
//    validity for every implied trail literal, active-row/occurrence
//    agreement, interval-bound sanity, and the exact simplex layer's own
//    audit (basis partition, row identities, slack-interning canonicity).
//  - check_exchange (import points, after the parallel harvest): shard
//    caps respected and every published clause well-formed (non-empty,
//    in-range distinct variables) — i.e. nothing a vetting importer would
//    have to reject.
//
// Audit sites marked `bounds_settled` additionally require lo ≤ hi on
// every integer interval and an empty branch-and-bound pin trail; a check
// boundary reached through a Timeout is *not* settled (the exception can
// unwind past the leaf search's pops) and skips those two checks.
#pragma once

#include <string>

namespace advocat::smt::native {

class SearchContext;
class ClauseExchange;

/// True when the auditor is on for this process (ADVOCAT_AUDIT env var,
/// falling back to the ADVOCAT_AUDIT build option). Cached on first call.
bool audit_enabled();

/// Reports a broken invariant and aborts. `site` names the audit point
/// ("backjump", "restart", ...), `invariant` the check that failed, and
/// `detail` the offending values.
[[noreturn]] void audit_fail(const char* site, const char* invariant,
                             const std::string& detail);

/// Static deep-check passes over the solver's data structures. A friend
/// of SearchContext and ClauseExchange; all entry points are no-ops when
/// the auditor is disabled, so call sites need no guard.
class Auditor {
 public:
  /// O(trail + vars) pass: trail, levels, prefix, heap.
  static void check_search(const SearchContext& ctx, const char* site);
  /// Full pass: check_search plus arena, watches, reasons, rows, bounds,
  /// and the simplex layer. `bounds_settled` additionally requires lo ≤ hi
  /// everywhere and no in-flight branch-and-bound pins.
  static void check_deep(const SearchContext& ctx, const char* site,
                         bool bounds_settled);
  /// Exchange pass (takes shard locks): caps and clause well-formedness
  /// against `num_bvars` variables.
  static void check_exchange(ClauseExchange& ex, int num_bvars,
                             const char* site);
};

}  // namespace advocat::smt::native
