#include "smt/audit.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "smt/clause_exchange.hpp"
#include "smt/search_context.hpp"
#include "util/env.hpp"

namespace advocat::smt::native {

bool audit_enabled() {
  static const bool on = util::env_audit();
  return on;
}

void audit_fail(const char* site, const char* invariant,
                const std::string& detail) {
  std::fprintf(stderr,
               "advocat: AUDIT FAILURE at %s: invariant '%s' violated: %s\n",
               site, invariant, detail.c_str());
  std::abort();
}

namespace {

std::string lit_str(Lit l) {
  return (is_neg(l) ? "~v" : "v") + std::to_string(var_of(l));
}

}  // namespace

void Auditor::check_search(const SearchContext& ctx, const char* site) {
  if (!audit_enabled()) return;
  const auto fail = [site](const char* invariant, const std::string& detail) {
    audit_fail(site, invariant, detail);
  };
  const std::size_t nv = ctx.assign_.size();
  const std::size_t nt = ctx.trail_.size();

  // Propagation heads never outrun the trail.
  if (ctx.qhead_ > nt || ctx.theory_head_ > nt) {
    fail("propagation-heads",
         "qhead " + std::to_string(ctx.qhead_) + ", theory_head " +
             std::to_string(ctx.theory_head_) + ", trail size " +
             std::to_string(nt));
  }

  // Level marks are monotone and point inside their containers.
  std::size_t prev_trail = 0;
  for (std::size_t i = 0; i < ctx.levels_.size(); ++i) {
    const SearchContext::LevelMark& m = ctx.levels_[i];
    if (m.trail < prev_trail || m.trail > nt || m.rows > ctx.active_rows_.size() ||
        m.diseqs > ctx.active_diseqs_.size() || m.undo > ctx.undo_.size() ||
        m.expl > ctx.expl_pool_.size() || m.blog > ctx.blog_.size()) {
      fail("level-marks", "level " + std::to_string(i + 1) +
                              ": mark out of range or non-monotone");
    }
    prev_trail = m.trail;
  }

  // Assumption-prefix bookkeeping: placed literals and prefix levels move
  // in lockstep (each placed prefix literal owns exactly one level) and
  // never exceed the queue or the current level stack.
  if (ctx.prefix_placed_ != ctx.prefix_levels_ || ctx.prefix_placed_ < 0 ||
      ctx.prefix_placed_ > static_cast<int>(ctx.assume_q_.size()) ||
      ctx.prefix_levels_ > static_cast<int>(ctx.levels_.size())) {
    fail("assumption-prefix",
         "placed " + std::to_string(ctx.prefix_placed_) + ", levels " +
             std::to_string(ctx.prefix_levels_) + ", queue " +
             std::to_string(ctx.assume_q_.size()) + ", level stack " +
             std::to_string(ctx.levels_.size()));
  }

  // Trail well-formedness: every entry assigned with the matching
  // polarity, no variable twice, and the recorded decision level equal to
  // the number of level marks at or before the entry's position.
  std::vector<char> on_trail(nv, 0);
  std::size_t li = 0;
  for (std::size_t p = 0; p < nt; ++p) {
    const Lit l = ctx.trail_[p];
    const auto v = static_cast<std::size_t>(var_of(l));
    if (v >= nv) fail("trail-var-range", lit_str(l) + " at position " +
                                             std::to_string(p));
    if (on_trail[v]) {
      fail("trail-duplicate", lit_str(l) + " at position " + std::to_string(p));
    }
    on_trail[v] = 1;
    if (ctx.assign_[v] != (is_neg(l) ? kFalse : kTrue)) {
      fail("trail-assignment", lit_str(l) + " at position " +
                                   std::to_string(p) + " not assigned true");
    }
    while (li < ctx.levels_.size() && ctx.levels_[li].trail <= p) ++li;
    if (ctx.level_[v] != static_cast<int>(li)) {
      fail("trail-level", lit_str(l) + ": recorded level " +
                              std::to_string(ctx.level_[v]) +
                              ", trail position implies " + std::to_string(li));
    }
  }
  std::size_t assigned = 0;
  for (std::size_t v = 0; v < nv; ++v) {
    if (ctx.assign_[v] != kUndef) ++assigned;
  }
  if (assigned != nt) {
    fail("assigned-count", std::to_string(assigned) + " assigned vars vs " +
                               std::to_string(nt) + " trail entries");
  }

  // EVSIDS heap: every unassigned variable present, positions inverse to
  // the heap array, and the max-heap property on activities.
  if (ctx.heap_pos_.size() != nv) {
    fail("heap-size", "heap_pos size " + std::to_string(ctx.heap_pos_.size()) +
                          " vs " + std::to_string(nv) + " vars");
  }
  for (std::size_t i = 0; i < ctx.heap_.size(); ++i) {
    const int v = ctx.heap_[i];
    if (v < 0 || static_cast<std::size_t>(v) >= nv ||
        ctx.heap_pos_[static_cast<std::size_t>(v)] != static_cast<int>(i)) {
      fail("heap-inverse", "heap[" + std::to_string(i) + "] = v" +
                               std::to_string(v) + " with heap_pos " +
                               std::to_string(
                                   v >= 0 && static_cast<std::size_t>(v) < nv
                                       ? ctx.heap_pos_[static_cast<std::size_t>(
                                             v)]
                                       : -1));
    }
    if (i > 0) {
      const auto parent = static_cast<std::size_t>(ctx.heap_[(i - 1) / 2]);
      if (ctx.activity_[parent] <
          ctx.activity_[static_cast<std::size_t>(v)]) {
        fail("heap-property", "heap[" + std::to_string(i) + "] = v" +
                                  std::to_string(v) +
                                  " more active than its parent");
      }
    }
  }
  for (std::size_t v = 0; v < nv; ++v) {
    const int hp = ctx.heap_pos_[v];
    if (hp >= 0 && (static_cast<std::size_t>(hp) >= ctx.heap_.size() ||
                    ctx.heap_[static_cast<std::size_t>(hp)] !=
                        static_cast<int>(v))) {
      fail("heap-inverse", "v" + std::to_string(v) + ": heap_pos " +
                               std::to_string(hp) + " does not point back");
    }
    if (ctx.assign_[v] == kUndef && hp < 0) {
      fail("heap-membership",
           "unassigned v" + std::to_string(v) + " missing from the heap");
    }
  }
}

void Auditor::check_deep(const SearchContext& ctx, const char* site,
                         bool bounds_settled) {
  if (!audit_enabled()) return;
  check_search(ctx, site);
  const auto fail = [site](const char* invariant, const std::string& detail) {
    audit_fail(site, invariant, detail);
  };
  const int nb = ctx.sh_.num_bvars;

  // Clause arena: header discipline, waste accounting, and the
  // learned/tainted counters. Tombstones keep their size field and
  // literals (sequential walks and stale watch entries depend on it).
  const ClauseArena& ar = ctx.arena_;
  std::vector<std::uint8_t> is_header(ar.words(), 0);
  std::size_t live_learned = 0;
  std::size_t live_tainted = 0;
  std::size_t tombstones = 0;
  std::size_t tombstone_words = 0;
  for (ClauseRef ci = ar.first(); ci != kClauseRefUndef; ci = ar.next(ci)) {
    is_header[static_cast<std::size_t>(ci)] = 1;
    const std::uint32_t n = ar.size(ci);
    const Lit* lits = ar.lits(ci);
    if (n < 2) {
      fail("arena-clause-size", "clause " + std::to_string(ci) + " has " +
                                    std::to_string(n) +
                                    " literals (units live elsewhere)");
    }
    for (std::uint32_t k = 0; k < n; ++k) {
      if (var_of(lits[k]) < 0 || var_of(lits[k]) >= nb) {
        fail("arena-var-range",
             "clause " + std::to_string(ci) + " mentions " + lit_str(lits[k]));
      }
    }
    if (ar.deleted(ci)) {
      ++tombstones;
      tombstone_words += ClauseArena::kHeaderWords + n;
      continue;
    }
    if (ar.learned(ci)) {
      ++live_learned;
      for (std::uint32_t a = 0; a < n; ++a) {
        for (std::uint32_t b = a + 1; b < n; ++b) {
          if (var_of(lits[a]) == var_of(lits[b])) {
            fail("arena-duplicate-var", "learned clause " + std::to_string(ci) +
                                            " mentions v" +
                                            std::to_string(var_of(lits[a])) +
                                            " twice");
          }
        }
      }
    }
    if (ar.tainted(ci)) {
      ++live_tainted;
      if (!ar.learned(ci)) {
        fail("arena-tainted-problem",
             "clause " + std::to_string(ci) + " tainted but not learned");
      }
    }
  }
  if (tombstone_words != ar.wasted_words()) {
    fail("arena-waste-accounting",
         std::to_string(tombstone_words) + " tombstone words vs wasted() " +
             std::to_string(ar.wasted_words()));
  }
  if (live_learned != ctx.num_learned_live_) {
    fail("arena-learned-count", std::to_string(live_learned) +
                                    " live learned clauses vs counter " +
                                    std::to_string(ctx.num_learned_live_));
  }
  // reduce_db() does not retire the tainted counter with the clause, so
  // the counter over-approximates; compaction requires it never to drop
  // below the live population (a zero counter with live tainted clauses
  // would let an unentailed clause survive the next check boundary).
  if (live_tainted > ctx.num_tainted_) {
    fail("arena-tainted-count", std::to_string(live_tainted) +
                                    " live tainted clauses vs counter " +
                                    std::to_string(ctx.num_tainted_));
  }
  if (tombstones > 0 && !ctx.arena_has_tombstones_) {
    fail("arena-tombstone-flag",
         std::to_string(tombstones) +
             " tombstones with arena_has_tombstones_ unset");
  }
  for (const Lit l : ctx.learned_units_) {
    if (var_of(l) < 0 || var_of(l) >= nb) {
      fail("learned-unit-range", lit_str(l));
    }
  }

  // Two-watched literals, exactly once: a live clause is watched under
  // lits[0] and lits[1] and nowhere else (tombstoned entries linger in
  // the lists by design and are skipped). Each watcher's blocker must be
  // a literal of its clause — the blocker fast path is only sound then.
  std::vector<std::uint8_t> w0(ar.words(), 0);
  std::vector<std::uint8_t> w1(ar.words(), 0);
  for (std::size_t l = 0; l < ctx.watches_.size(); ++l) {
    for (const Watcher& w : ctx.watches_[l]) {
      if (w.ref < 0 || static_cast<std::size_t>(w.ref) >= ar.words() ||
          !is_header[static_cast<std::size_t>(w.ref)]) {
        fail("watch-clause-range", "watch list of " +
                                       lit_str(static_cast<Lit>(l)) +
                                       " holds ref " + std::to_string(w.ref));
      }
      if (ar.deleted(w.ref)) continue;  // lazily-dropped tombstone entry
      const Lit* lits = ar.lits(w.ref);
      const std::uint32_t n = ar.size(w.ref);
      bool blocker_in_clause = false;
      for (std::uint32_t k = 0; k < n; ++k) {
        if (lits[k] == w.blocker) {
          blocker_in_clause = true;
          break;
        }
      }
      if (!blocker_in_clause) {
        fail("watch-blocker", "clause " + std::to_string(w.ref) +
                                  " watched with blocker " +
                                  lit_str(w.blocker) +
                                  " which is not one of its literals");
      }
      const auto lit = static_cast<Lit>(l);
      if (lit == lits[0]) {
        ++w0[static_cast<std::size_t>(w.ref)];
      } else if (lit == lits[1]) {
        ++w1[static_cast<std::size_t>(w.ref)];
      } else {
        fail("watch-wrong-literal", "clause " + std::to_string(w.ref) +
                                        " watched under " + lit_str(lit) +
                                        " which is not lits[0] or lits[1]");
      }
    }
  }
  for (ClauseRef ci = ar.first(); ci != kClauseRefUndef; ci = ar.next(ci)) {
    if (ar.deleted(ci)) continue;
    const Lit* lits = ar.lits(ci);
    const bool same = lits[0] == lits[1];
    const auto cs = static_cast<std::size_t>(ci);
    const bool ok = same ? (w0[cs] == 2 && w1[cs] == 0)
                         : (w0[cs] == 1 && w1[cs] == 1);
    if (!ok) {
      fail("watch-exactly-once",
           "clause " + std::to_string(ci) + " watched " +
               std::to_string(w0[cs]) + "x under lits[0], " +
               std::to_string(w1[cs]) + "x under lits[1]");
    }
  }

  // Reason validity: an implied trail literal's reason clause asserts it
  // in slot 0 and every other literal is false at or below its level.
  for (const Lit l : ctx.trail_) {
    const auto v = static_cast<std::size_t>(var_of(l));
    const int r = ctx.reason_[v];
    if (r < 0) continue;  // decision, assumption, or theory propagation
    if (static_cast<std::size_t>(r) >= ar.words() ||
        !is_header[static_cast<std::size_t>(r)] || ar.deleted(r)) {
      fail("reason-clause", lit_str(l) + ": reason " + std::to_string(r) +
                                " out of range or tombstoned");
    }
    const Lit* lits = ar.lits(r);
    const std::uint32_t n = ar.size(r);
    if (lits[0] != l) {
      fail("reason-asserts", lit_str(l) + ": reason clause " +
                                 std::to_string(r) + " has " +
                                 lit_str(lits[0]) + " in slot 0");
    }
    for (std::uint32_t k = 1; k < n; ++k) {
      const Lit o = lits[k];
      const auto ov = static_cast<std::size_t>(var_of(o));
      if (ctx.assign_[ov] != (is_neg(o) ? kTrue : kFalse) ||
          ctx.level_[ov] > ctx.level_[v]) {
        fail("reason-antecedent",
             lit_str(l) + ": reason clause " + std::to_string(r) +
                 " literal " + lit_str(o) + " not false at or below level " +
                 std::to_string(ctx.level_[v]));
      }
    }
  }

  // Active theory rows and their occurrence lists agree.
  if (ctx.active_row_lit_.size() != ctx.active_rows_.size()) {
    fail("row-lit-size", std::to_string(ctx.active_row_lit_.size()) +
                             " activation literals vs " +
                             std::to_string(ctx.active_rows_.size()) +
                             " active rows");
  }
  for (std::size_t v = 0; v < ctx.row_occ_.size(); ++v) {
    for (const int ri : ctx.row_occ_[v]) {
      if (ri < 0 || static_cast<std::size_t>(ri) >= ctx.active_rows_.size()) {
        fail("row-occ-range", "int var " + std::to_string(v) +
                                  " occurs in row " + std::to_string(ri));
      }
      bool mentions = false;
      for (const auto& [tv, tc] : ctx.active_rows_[static_cast<std::size_t>(
               ri)]->terms) {
        (void)tc;
        if (tv == static_cast<int>(v)) {
          mentions = true;
          break;
        }
      }
      if (!mentions) {
        fail("row-occ-mentions", "int var " + std::to_string(v) +
                                     " listed for row " + std::to_string(ri) +
                                     " which does not mention it");
      }
    }
  }

  // Interval bounds and branch-and-bound pins: only meaningful at settled
  // sites — a Timeout can unwind past the leaf search's pops, leaving a
  // crossed interval or a non-empty pin trail until the next reset.
  if (bounds_settled) {
    for (std::size_t v = 0; v < ctx.lo_.size(); ++v) {
      if (ctx.lo_[v] > ctx.hi_[v]) {
        fail("interval-crossed", "int var " + std::to_string(v) + ": lo " +
                                     std::to_string(ctx.lo_[v]) + " > hi " +
                                     std::to_string(ctx.hi_[v]));
      }
    }
    if (!ctx.pin_trail_.empty()) {
      fail("pin-trail", std::to_string(ctx.pin_trail_.size()) +
                            " pins outside the integer leaf search");
    }
  }

  // The exact simplex layer audits itself (basis partition, row
  // identities, slack canonicity); its invariants hold at every site —
  // the deadline poll throws before any tableau mutation.
  const std::string spx = ctx.stx_.audit();
  if (!spx.empty()) fail("simplex", spx);
}

void Auditor::check_exchange(ClauseExchange& ex, int num_bvars,
                             const char* site) {
  if (!audit_enabled()) return;
  const auto fail = [site](const char* invariant, const std::string& detail) {
    audit_fail(site, invariant, detail);
  };
  for (std::size_t s = 0; s < ClauseExchange::kShards; ++s) {
    ClauseExchange::Shard& sh = ex.shards_[s];
    std::lock_guard<std::mutex> lock(sh.mu);
    if (sh.clauses.size() > ClauseExchange::kShardCap) {
      fail("exchange-shard-cap", "shard " + std::to_string(s) + " holds " +
                                     std::to_string(sh.clauses.size()) +
                                     " clauses");
    }
    for (std::size_t i = 0; i < sh.clauses.size(); ++i) {
      const ClauseExchange::Lits& lits = sh.clauses[i];
      if (lits.empty()) {
        fail("exchange-empty-clause",
             "shard " + std::to_string(s) + " clause " + std::to_string(i));
      }
      for (std::size_t a = 0; a < lits.size(); ++a) {
        const int v = var_of(lits[a]);
        if (v < 0 || v >= num_bvars) {
          fail("exchange-var-range", "shard " + std::to_string(s) +
                                         " clause " + std::to_string(i) +
                                         " mentions v" + std::to_string(v));
        }
        for (std::size_t b = a + 1; b < lits.size(); ++b) {
          if (var_of(lits[b]) == v) {
            fail("exchange-duplicate-var", "shard " + std::to_string(s) +
                                               " clause " + std::to_string(i) +
                                               " mentions v" +
                                               std::to_string(v) + " twice");
          }
        }
      }
    }
  }
}

}  // namespace advocat::smt::native
