// Search half of the native CDCL(T) solver — see search_context.hpp for
// the SharedProblem/SearchContext split and native_solver.cpp for the
// translation/orchestration half. The algorithm is unchanged from the
// pre-split solver: the bodies here are the former NativeSolver search
// methods reading the immutable problem through sh_ and counting into the
// context's own SolveStats, plus the parallel seams (stop-flag polling,
// clause export/import, seeding and harvesting).
#include "smt/search_context.hpp"

#include <algorithm>
#include <limits>

#include "smt/audit.hpp"
#include "smt/proof.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"

namespace advocat::smt::native {
namespace {

constexpr std::int64_t kNegInf = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kPosInf = std::numeric_limits<std::int64_t>::max();
// Derived bounds are clamped strictly inside the sentinels.
constexpr std::int64_t kBoundClamp = std::int64_t{1} << 60;
// Finite window probed for variables the constraints never bounded; an
// exhausted probe degrades Unsat to Unknown (Sat stays exact).
constexpr std::int64_t kUnboundedProbes = 4;
// Branch-and-bound node budget per boolean leaf; an exhausted budget
// degrades the leaf to Unknown so one pathological leaf cannot stall the
// whole search.
constexpr std::uint64_t kIntNodeBudget = 50'000;
// Widest finite domain enumerated exhaustively before the same degradation.
constexpr std::int64_t kEnumWindow = 1 << 16;

// CDCL tuning. Restarts follow the Luby sequence scaled by the per-worker
// restart base (SearchConfig::restart_base, default 192); learned-clause
// reduction triggers once the live learned set exceeds kReduceBase +
// kReduceInc per reduction already performed.
constexpr std::size_t kReduceBase = 2000;
constexpr std::size_t kReduceInc = 1000;

// ADVOCAT_REDUCE_BASE / ADVOCAT_REDUCE_INC override kReduceBase /
// kReduceInc (same values for every context in the process, read once) —
// the arena GC tests use tiny values to make reductions and compactions
// happen on small inputs.
std::size_t reduce_base() {
  static const std::size_t v =
      util::env_uint("ADVOCAT_REDUCE_BASE", kReduceBase, 4, 100'000'000);
  return v;
}
std::size_t reduce_inc() {
  static const std::size_t v =
      util::env_uint("ADVOCAT_REDUCE_INC", kReduceInc, 4, 100'000'000);
  return v;
}
constexpr double kVarActInc = 1.0 / 0.95;   // EVSIDS decay 0.95
constexpr double kClaActInc = 1.0 / 0.999;  // clause-activity decay 0.999
constexpr double kVarActRescale = 1e100;
constexpr double kClaActRescale = 1e20;

// Clause-exchange policy: only clauses likely to help another worker are
// published — binaries always, otherwise low-LBD and short.
constexpr int kExportLbdMax = 3;
constexpr std::size_t kExportLenMax = 30;

constexpr int kReasonNone = -1;    // decision / assumption / level-0 fact
constexpr int kReasonTheory = -2;  // entailed by the active interval rows

// Bound-provenance source codes: >= 0 is an active-row index, <= -2
// encodes a branch-and-bound pin of integer variable pin_var(src).
inline int pin_src(int var) { return -2 - var; }
inline bool src_is_pin(int src) { return src <= -2; }
inline int pin_var(int src) { return -2 - src; }

// floor(a / b) for b > 0, exact in __int128.
__int128 floor_div(__int128 a, std::int64_t b) {
  __int128 q = a / b;
  if (a % b != 0 && a < 0) --q;
  return q;
}

// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
std::uint64_t luby(std::uint64_t i) {
  std::uint64_t size = 1;
  while (size < i + 1) size = 2 * size + 1;
  while (size - 1 != i) {
    size = (size - 1) / 2;
    i %= size;
  }
  return (size + 1) / 2;
}

}  // namespace

SearchContext::SearchContext(const SharedProblem& shared, SearchConfig config)
    : sh_(shared), cfg_(config) {
  // The simplex layer honors the same deadline/stop polling as every
  // other loop. The callback pins this context's address, which is why
  // SearchContext is non-copyable.
  stx_.set_tick([this] { bump_ops(); });
  restart_limit_ = cfg_.restart_base;
}

// ---------------------------------------------------------------- plumbing

// The cooperative cancellation point. The deadline, the session-level
// cancel() flag, the cross-worker stop flag, the propagation/memory
// budgets, and deferred faults are all polled here — and bump_ops is
// called from *every* potentially long loop: boolean propagation,
// interval tightening, the entailed-atom rescan, value enumeration and
// node expansion in branch-and-bound, and (through the tick hook) the
// simplex pivot loop. Every governed unwind therefore originates from the
// same program points a deadline can, so one proven exception-safety path
// covers them all.
void SearchContext::bump_ops() {
  if ((++ops_ & 0x3ff) != 0) return;
  if (deadline_active_ && Clock::now() > deadline_) throw Timeout{};
  if (cfg_.stop != nullptr && cfg_.stop->load(std::memory_order_relaxed)) {
    throw Cancelled{};
  }
  ++slow_polls_;
  if (job_ != nullptr) {
    if (job_->cancel != nullptr &&
        job_->cancel->load(std::memory_order_relaxed)) {
      throw util::Stop{util::StopReason::kCancelled};
    }
    if (job_->budget != nullptr) {
      if (job_->budget->max_propagations != 0 &&
          stats_.propagations - check_prop_base_ >=
              job_->budget->max_propagations) {
        throw util::Stop{util::StopReason::kPropagationBudget};
      }
      // The memory gauge walks a few pool sizes; poll it at 1/16 of the
      // (already 1/1024) slow path.
      if (job_->budget->max_memory_bytes != 0 && (slow_polls_ & 0xf) == 0) {
        check_memory_ceiling();
      }
    }
  }
  if (util::fault::enabled()) {
    if (util::fault::take_deferred()) throw util::fault::FaultInjected{};
    if (cfg_.is_worker &&
        util::fault::fire(util::fault::Site::kWorkerKill)) {
      throw util::fault::FaultInjected{};
    }
  }
}

void SearchContext::check_search_budgets() const {
  if (job_ == nullptr || job_->budget == nullptr) return;
  if (job_->budget->max_conflicts != 0 &&
      stats_.conflicts - check_conflict_base_ >= job_->budget->max_conflicts) {
    throw util::Stop{util::StopReason::kConflictBudget};
  }
  if (job_->budget->max_decisions != 0 &&
      stats_.decisions - check_decision_base_ >= job_->budget->max_decisions) {
    throw util::Stop{util::StopReason::kDecisionBudget};
  }
}

void SearchContext::check_memory_ceiling() {
  const std::uint64_t arena = arena_.bytes();
  if (arena > stats_.peak_arena_bytes) stats_.peak_arena_bytes = arena;
  const std::uint64_t total = arena + util::BigInt::heap_bytes_in_use() +
                              static_cast<std::uint64_t>(stx_.pool_bytes());
  if (total >= job_->budget->max_memory_bytes) {
    throw util::Stop{util::StopReason::kMemoryCeiling};
  }
}

Val SearchContext::value_lit(Lit l) const {
  const Val v = assign_[static_cast<std::size_t>(var_of(l))];
  if (v == kUndef) return kUndef;
  return is_neg(l) ? (v == kTrue ? kFalse : kTrue) : v;
}

int SearchContext::current_level() const {
  return static_cast<int>(levels_.size());
}

bool SearchContext::enqueue(Lit l, int reason) {
  const int v = var_of(l);
  const Val want = is_neg(l) ? kFalse : kTrue;
  const Val cur = assign_[static_cast<std::size_t>(v)];
  if (cur != kUndef) return cur == want;
  assign_[static_cast<std::size_t>(v)] = want;
  reason_[static_cast<std::size_t>(v)] = reason;
  level_[static_cast<std::size_t>(v)] = current_level();
  trail_.push_back(l);
  if (reason != kReasonNone) ++stats_.propagations;
  return true;
}

// Copies problem clauses translated since this context last looked. The
// shared problem is append-only and frozen while workers run, so the copy
// needs no lock; appending at the arena end reproduces exactly the clause
// order the monolithic solver had (translation appended to the same
// arena between checks).
void SearchContext::sync_problem() {
  for (; clauses_synced_ < sh_.clauses.size(); ++clauses_synced_) {
    arena_.alloc(sh_.clauses.begin(clauses_synced_),
                 sh_.clauses.len(clauses_synced_), /*learned=*/false,
                 /*tainted=*/false, /*prior=*/false, /*lbd=*/0, /*act=*/0.0);
  }
}

// --------------------------------------------------------------- propagate

int SearchContext::propagate_bool() {
  while (qhead_ < trail_.size()) {
    bump_ops();
    const Lit l = trail_[qhead_++];
    const Lit fl = neg(l);
    auto& ws = watches_[static_cast<std::size_t>(fl)];
    std::size_t i = 0;
    std::size_t keep = 0;
    ClauseRef conflict = kClauseRefUndef;
    while (i < ws.size()) {
      const Watcher w = ws[i];
      // Blocker fast path: a true blocker proves the clause satisfied
      // without loading a single clause word from the arena.
      if (value_lit(w.blocker) == kTrue) {
        ws[keep++] = ws[i++];
        continue;
      }
      if (arena_.deleted(w.ref)) {  // lazily drop tombstoned watch entries
        ++i;
        continue;
      }
      Lit* c = arena_.lits(w.ref);
      const std::uint32_t n = arena_.size(w.ref);
      if (c[0] == fl) std::swap(c[0], c[1]);
      const Lit first = c[0];
      if (first != w.blocker && value_lit(first) == kTrue) {
        // Clause already satisfied by the other watch: keep the entry and
        // refresh the blocker to the literal that proved it.
        ws[keep++] = Watcher{w.ref, first};
        ++i;
        continue;
      }
      bool moved = false;
      for (std::uint32_t k = 2; k < n; ++k) {
        if (value_lit(c[k]) != kFalse) {
          std::swap(c[1], c[k]);
          watches_[static_cast<std::size_t>(c[1])].push_back(
              Watcher{w.ref, first});
          moved = true;
          break;
        }
      }
      if (moved) {
        ++i;  // watch migrated away from fl
        continue;
      }
      if (arena_.prior(w.ref)) ++stats_.learned_hits;  // cross-check reuse
      if (!enqueue(first, w.ref)) {  // unit clause contradicted
        conflict = w.ref;
        while (i < ws.size()) ws[keep++] = ws[i++];
        break;
      }
      ws[keep++] = Watcher{w.ref, first};
      ++i;
    }
    ws.resize(keep);
    if (conflict >= 0) return conflict;
  }
  return kClauseRefUndef;
}

// Undo entries are deduplicated per era (one per variable side between
// two restore points): interval propagation on an infeasible integer
// cycle can walk a bound by 1 for billions of steps, and logging every
// *value* would exhaust memory long before the tightening budget
// triggers. The provenance log (blog_) is NOT deduplicated — each
// derivation appends one entry so explanations can walk derivation
// time — but it is rewound in lockstep with every undo mark and its
// growth between marks is bounded by the same tightening budget.
void SearchContext::set_bound(int v, bool is_hi, std::int64_t val, int src) {
  auto& slot = is_hi ? hi_[static_cast<std::size_t>(v)]
                     : lo_[static_cast<std::size_t>(v)];
  auto& stamp = is_hi ? hi_stamp_[static_cast<std::size_t>(v)]
                      : lo_stamp_[static_cast<std::size_t>(v)];
  if (stamp != undo_era_) {
    stamp = undo_era_;
    undo_.push_back(UndoEntry{v, is_hi, slot});
  }
  slot = val;
  const int node = bnode(v, is_hi);
  blog_.push_back(BoundLog{node, src, bhead_[static_cast<std::size_t>(node)]});
  bhead_[static_cast<std::size_t>(node)] = static_cast<int>(blog_.size()) - 1;
  if (dirty_stamp_[static_cast<std::size_t>(v)] != dirty_gen_) {
    dirty_stamp_[static_cast<std::size_t>(v)] = dirty_gen_;
    dirty_vars_.push_back(v);
  }
}

void SearchContext::undo_to(std::size_t mark) {
  while (undo_.size() > mark) {
    const UndoEntry& u = undo_.back();
    (u.is_hi ? hi_[static_cast<std::size_t>(u.var)]
             : lo_[static_cast<std::size_t>(u.var)]) = u.old_bound;
    undo_.pop_back();
  }
  ++undo_era_;  // stamps from before the restore are no longer valid
}

void SearchContext::rewind_blog(std::size_t mark) {
  while (blog_.size() > mark) {
    bhead_[static_cast<std::size_t>(blog_.back().node)] = blog_.back().prev;
    blog_.pop_back();
  }
}

void SearchContext::activate_row(const StaticRow* r, Lit cause) {
  const int ri = static_cast<int>(active_rows_.size());
  active_rows_.push_back(r);
  active_row_lit_.push_back(cause);
  for (const auto& [v, c] : r->terms) {
    (void)c;
    row_occ_[static_cast<std::size_t>(v)].push_back(ri);
  }
  row_work_.push_back(ri);
}

void SearchContext::deactivate_rows_to(std::size_t mark) {
  while (active_rows_.size() > mark) {
    const StaticRow* r = active_rows_.back();
    for (const auto& [v, c] : r->terms) {
      (void)c;
      row_occ_[static_cast<std::size_t>(v)].pop_back();
    }
    active_rows_.pop_back();
    active_row_lit_.pop_back();
  }
}

// Final sweep after an exhausted tightening budget: the LIFO worklist can
// starve a row that is already violated by the walked bounds (the
// divergent lap keeps re-queuing itself on top), so check every active
// row once before giving up — a definite conflict beats an Unknown leaf.
bool SearchContext::scan_violated_row() {
  for (std::size_t ri = 0; ri < active_rows_.size(); ++ri) {
    bump_ops();
    const StaticRow& r = *active_rows_[ri];
    __int128 minsum = 0;
    bool finite = true;
    for (const auto& [v, c] : r.terms) {
      const std::int64_t b = c > 0 ? lo_[static_cast<std::size_t>(v)]
                                   : hi_[static_cast<std::size_t>(v)];
      if (b == kNegInf || b == kPosInf) {
        finite = false;
        break;
      }
      minsum += static_cast<__int128>(c) * b;
    }
    if (finite && minsum > r.bound) {
      conflict_row_ = static_cast<int>(ri);
      conflict_var_ = -1;
      return true;
    }
  }
  return false;
}

// Exact fallback for an exhausted tightening budget: on divergent systems
// — some active variable still unbounded; a bounded system's fixpoint
// always converges, it is merely large — the rational simplex decides the
// active rows (plus branch-and-bound pins) outright. An infeasibility
// lands its Farkas tags in sconf_rows_/sconf_pins_ and becomes the theory
// conflict, so an infeasible unbounded flow cycle is refuted in a handful
// of pivots instead of walked one unit at a time.
bool SearchContext::simplex_refute() {
  bool unbounded = false;
  for (const StaticRow* r : active_rows_) {
    for (const auto& [v, c] : r->terms) {
      (void)c;
      if (lo_[static_cast<std::size_t>(v)] == kNegInf ||
          hi_[static_cast<std::size_t>(v)] == kPosInf) {
        unbounded = true;
        break;
      }
    }
    if (unbounded) break;
  }
  if (!unbounded) return false;
  const SimplexTheory::Result res =
      stx_.check(active_rows_, pin_trail_, /*integer_complete=*/false);
  sync_theory_stats();
  if (res.verdict != SimplexTheory::Verdict::Infeasible) return false;
  sconf_rows_ = res.conflict_rows;
  sconf_pins_ = res.conflict_pins;
  conflict_row_ = -1;
  conflict_var_ = -1;
  return true;
}

void SearchContext::sync_theory_stats() {
  stats_.theory_pivots = stx_.pivots();
  stats_.farkas_explanations = stx_.explanations();
}

// Turns the pending simplex conflict into theory_conflict_ literals: the
// negated activating atoms of the Farkas rows. The ≤/≥ rows of one
// equality atom share a literal, hence the dedup.
void SearchContext::emit_simplex_conflict() {
  for (const int ri : sconf_rows_) {
    theory_conflict_.push_back(
        neg(active_row_lit_[static_cast<std::size_t>(ri)]));
  }
  std::sort(theory_conflict_.begin(), theory_conflict_.end());
  theory_conflict_.erase(
      std::unique(theory_conflict_.begin(), theory_conflict_.end()),
      theory_conflict_.end());
  sconf_rows_.clear();
  sconf_pins_.clear();
}

// Interval tightening to fixpoint over the worklist; true on conflict.
// Bounded: an infeasible integer cycle makes the fixpoint walk bounds one
// unit per lap (no finite convergence), so refinement stops after a
// budget proportional to the active system — sound, merely less pruning,
// and the leaf search degrades the verdict to Unknown.
bool SearchContext::propagate_rows() {
  std::uint64_t budget = 64 * active_rows_.size() + 1024;
  while (!row_work_.empty()) {
    if (budget == 0) {
      row_work_.clear();
      if (scan_violated_row()) return true;
      return simplex_refute();
    }
    bump_ops();
    const int ri = row_work_.back();
    row_work_.pop_back();
    const StaticRow& r = *active_rows_[static_cast<std::size_t>(ri)];

    __int128 minsum = 0;
    int ninf = 0;
    for (const auto& [v, c] : r.terms) {
      const std::int64_t b = c > 0 ? lo_[static_cast<std::size_t>(v)]
                                   : hi_[static_cast<std::size_t>(v)];
      if (b == kNegInf || b == kPosInf) ++ninf;
      else minsum += static_cast<__int128>(c) * b;
    }
    if (ninf == 0 && minsum > r.bound) {
      conflict_row_ = ri;
      conflict_var_ = -1;
      row_work_.clear();
      return true;
    }
    for (const auto& [v, c] : r.terms) {
      bump_ops();
      const std::int64_t b = c > 0 ? lo_[static_cast<std::size_t>(v)]
                                   : hi_[static_cast<std::size_t>(v)];
      const bool self_inf = (b == kNegInf || b == kPosInf);
      if (ninf - (self_inf ? 1 : 0) > 0) continue;  // another var unbounded
      const __int128 rest =
          self_inf ? minsum : minsum - static_cast<__int128>(c) * b;
      const __int128 slack = static_cast<__int128>(r.bound) - rest;
      // Derived bounds are clamped only toward looseness: a bound beyond
      // +/-kBoundClamp is either dropped (no information) or relaxed to
      // the clamp, never tightened past what the row entails — claiming
      // a tighter bound than entailed could turn Sat into Unsat.
      bool changed = false;
      if (c > 0) {  // c·v ≤ slack  →  v ≤ ⌊slack/c⌋
        const __int128 nb = floor_div(slack, c);
        if (nb <= kBoundClamp && nb < hi_[static_cast<std::size_t>(v)]) {
          set_bound(v, true,
                    nb < -kBoundClamp ? -kBoundClamp
                                      : static_cast<std::int64_t>(nb),
                    ri);
          changed = true;
        }
      } else {  // c·v ≤ slack, c<0  →  v ≥ ⌈slack/c⌉ = -⌊slack/(-c)⌋
        const __int128 nb = -floor_div(slack, -c);
        if (nb >= -kBoundClamp && nb > lo_[static_cast<std::size_t>(v)]) {
          set_bound(v, false,
                    nb > kBoundClamp ? kBoundClamp
                                     : static_cast<std::int64_t>(nb),
                    ri);
          changed = true;
        }
      }
      if (changed) {
        --budget;
        if (lo_[static_cast<std::size_t>(v)] >
            hi_[static_cast<std::size_t>(v)]) {
          conflict_row_ = -1;
          conflict_var_ = v;  // lo/hi crossing: both sides' entries explain
          row_work_.clear();
          return true;
        }
        for (int rj : row_occ_[static_cast<std::size_t>(v)]) {
          row_work_.push_back(rj);
        }
        if (budget == 0) break;
      }
    }
  }
  return false;
}

// Activates the theory rows of atoms assigned since the last call and
// re-runs bounds propagation; true on conflict.
bool SearchContext::activate_theory() {
  row_work_.clear();
  for (; theory_head_ < trail_.size(); ++theory_head_) {
    const Lit l = trail_[theory_head_];
    const int v = var_of(l);
    const int ai = sh_.atom_of_var[static_cast<std::size_t>(v)];
    if (ai < 0) continue;
    const Atom& a = sh_.atoms[static_cast<std::size_t>(ai)];
    const bool tv = !is_neg(l);
    for (const StaticRow& r : tv ? a.when_true : a.when_false) {
      activate_row(&r, l);
    }
    if (a.is_eq && !tv) active_diseqs_.push_back(ai);
  }
  return propagate_rows();
}

// ----------------------------------------------- provenance explanations
//
// A derivation's justification is a walk over the chronological bound
// log: entry e (row R derived this bound) is justified by R's activating
// atom plus, for each min-side input of R, that input's latest log entry
// OLDER than e. Walking derivation time — instead of a mutable
// current-source graph — keeps the proof DAG acyclic and grounded; see
// the pre-split solver history for the full rationale. Load-bearing for
// soundness: a conflict explained with too few atoms would learn a clause
// the theory does not entail.

int SearchContext::entry_before(int node, int before) const {
  int e = bhead_[static_cast<std::size_t>(node)];
  while (e >= before) e = blog_[static_cast<std::size_t>(e)].prev;
  return e;
}

void SearchContext::expl_begin() {
  if (row_seen_.size() < active_rows_.size()) {
    row_seen_.resize(active_rows_.size(), 0);
  }
  if (pin_seen_.size() < sh_.int_names.size()) {
    pin_seen_.resize(sh_.int_names.size(), 0);
  }
  if (entry_seen_.size() < blog_.size()) {
    entry_seen_.resize(blog_.size(), 0);
  }
  ++expl_gen_;
  expl_stack_.clear();
}

void SearchContext::emit_row_atom(int ri, std::vector<Lit>* atoms_out) {
  if (atoms_out == nullptr) return;
  if (row_seen_[static_cast<std::size_t>(ri)] == expl_gen_) return;
  row_seen_[static_cast<std::size_t>(ri)] = expl_gen_;
  atoms_out->push_back(neg(active_row_lit_[static_cast<std::size_t>(ri)]));
}

void SearchContext::collect_pin(int var, std::vector<int>* pins_out) {
  if (pins_out == nullptr) return;
  if (pin_seen_[static_cast<std::size_t>(var)] == expl_gen_) return;
  pin_seen_[static_cast<std::size_t>(var)] = expl_gen_;
  pins_out->push_back(var);
}

void SearchContext::expl_push(int e) {
  if (entry_seen_[static_cast<std::size_t>(e)] == expl_gen_) return;
  entry_seen_[static_cast<std::size_t>(e)] = expl_gen_;
  expl_stack_.push_back(e);
}

void SearchContext::expl_seed_row(int ri, int before,
                                  std::vector<Lit>* atoms_out) {
  emit_row_atom(ri, atoms_out);
  for (const auto& [u, c] : active_rows_[static_cast<std::size_t>(ri)]->terms) {
    const int e = entry_before(bnode(u, c < 0), before);
    if (e >= 0) expl_push(e);
  }
}

void SearchContext::expl_run(std::vector<Lit>* atoms_out,
                             std::vector<int>* pins_out) {
  while (!expl_stack_.empty()) {
    bump_ops();
    const int e = expl_stack_.back();
    expl_stack_.pop_back();
    const BoundLog& le = blog_[static_cast<std::size_t>(e)];
    if (src_is_pin(le.src)) {
      collect_pin(pin_var(le.src), pins_out);
      continue;
    }
    const StaticRow& r = *active_rows_[static_cast<std::size_t>(le.src)];
    emit_row_atom(le.src, atoms_out);
    const int out_var = le.node >> 1;
    for (const auto& [u, c] : r.terms) {
      // The derivation consumed the row's min-side inputs (lo for
      // positive coefficients, hi for negative) of every term except
      // the output variable itself — its own opposite bound never
      // enters the slack.
      if (u == out_var) continue;
      const int f = entry_before(bnode(u, c < 0), e);
      if (f >= 0) expl_push(f);
    }
  }
}

// Enqueues unassigned atom literals the current bounds entail, with an
// eagerly-stored provenance explanation (the few atoms whose rows
// produced the entailing bounds) so conflict analysis can resolve them;
// the boolean search then never has to rediscover them by conflict.
// Only atoms over variables whose bounds changed since the last scan
// are re-evaluated (set_bound records them in dirty_vars_).
bool SearchContext::propagate_entailed_atoms() {
  bool any = false;
  scan_stamp_.resize(sh_.atoms.size(), 0);
  ++scan_gen_;
  for (std::size_t at = 0; at < dirty_vars_.size(); ++at) {
    const int iv = dirty_vars_[at];
    if (static_cast<std::size_t>(iv) >= sh_.atom_occ.size()) continue;
    for (const int ai : sh_.atom_occ[static_cast<std::size_t>(iv)]) {
      bump_ops();
      if (scan_stamp_[static_cast<std::size_t>(ai)] == scan_gen_) continue;
      scan_stamp_[static_cast<std::size_t>(ai)] = scan_gen_;
      const int v = sh_.atom_var[static_cast<std::size_t>(ai)];
      if (assign_[static_cast<std::size_t>(v)] != kUndef) continue;
      const Atom& a = sh_.atoms[static_cast<std::size_t>(ai)];
      int entailed = 0;  // +1 atom true, -1 atom false
      expl_begin();
      const int now = static_cast<int>(blog_.size());
      // Seed the walk with the bound entries the decisive row status
      // read: min-side bounds for a forced-false row (its minimum
      // already exceeds the bound), max-side bounds for forced-true.
      auto seed_sides = [&](const StaticRow& r, bool min_side) {
        for (const auto& [u, c] : r.terms) {
          const int e = entry_before(bnode(u, min_side ? c < 0 : c > 0), now);
          if (e >= 0) expl_push(e);
        }
      };
      if (!a.is_eq) {
        entailed = row_status(a.when_true[0]);
        if (entailed != 0) seed_sides(a.when_true[0], entailed < 0);
      } else {
        const int s0 = row_status(a.when_true[0]);
        const int s1 = row_status(a.when_true[1]);
        if (s0 < 0 || s1 < 0) {
          entailed = -1;
          seed_sides(a.when_true[s0 < 0 ? 0 : 1], true);
        } else if (s0 > 0 && s1 > 0) {
          entailed = +1;
          seed_sides(a.when_true[0], false);
          seed_sides(a.when_true[1], false);
        }
      }
      if (entailed != 0) {
        // Explanation must be captured now: bounds keep tightening
        // after this enqueue, and a later snapshot could cite atoms
        // assigned *after* this literal, breaking the analyzer's
        // reverse-trail walk.
        expl_scratch_.clear();
        expl_run(&expl_scratch_, nullptr);
        expl_off_[static_cast<std::size_t>(v)] =
            static_cast<std::uint32_t>(expl_pool_.size());
        expl_len_[static_cast<std::size_t>(v)] =
            static_cast<std::uint32_t>(expl_scratch_.size());
        expl_pool_.insert(expl_pool_.end(), expl_scratch_.begin(),
                          expl_scratch_.end());
        if (plog_ != nullptr) {
          // The implicit reason clause of this theory propagation: the
          // enqueued literal plus its explanation (already in clause
          // form — expl_run emits negated antecedents).
          lemma_scratch_.assign(1, mk_lit(v, entailed < 0));
          lemma_scratch_.insert(lemma_scratch_.end(), expl_scratch_.begin(),
                                expl_scratch_.end());
          log_theory_lemma(lemma_scratch_);
        }
        const bool ok = enqueue(mk_lit(v, entailed < 0), kReasonTheory);
        (void)ok;  // the variable was unassigned
        any = true;
      }
    }
  }
  clear_dirty();
  return any;
}

void SearchContext::clear_dirty() {
  dirty_vars_.clear();
  ++dirty_gen_;
}

SearchContext::Conflict SearchContext::propagate_all() {
  for (;;) {
    const int ci = propagate_bool();
    if (ci >= 0) return {Conflict::kClause, ci};
    if (theory_head_ != trail_.size()) {
      if (activate_theory()) return {Conflict::kTheory, -1};
      continue;  // theory may tighten bounds; rescan atoms below
    }
    if (!propagate_entailed_atoms()) return {Conflict::kNone, -1};
  }
}

// Entailment of an atom's ≤-row under the current bounds: +1 forced true,
// -1 forced false, 0 open.
int SearchContext::row_status(const StaticRow& r) const {
  __int128 minsum = 0, maxsum = 0;
  int min_inf = 0, max_inf = 0;
  for (const auto& [v, c] : r.terms) {
    const std::int64_t lo = lo_[static_cast<std::size_t>(v)];
    const std::int64_t hi = hi_[static_cast<std::size_t>(v)];
    const std::int64_t toward_min = c > 0 ? lo : hi;
    const std::int64_t toward_max = c > 0 ? hi : lo;
    if (toward_min == kNegInf || toward_min == kPosInf) ++min_inf;
    else minsum += static_cast<__int128>(c) * toward_min;
    if (toward_max == kNegInf || toward_max == kPosInf) ++max_inf;
    else maxsum += static_cast<__int128>(c) * toward_max;
  }
  if (min_inf == 0 && minsum > r.bound) return -1;
  if (max_inf == 0 && maxsum <= r.bound) return +1;
  return 0;
}

// Phase for deciding a variable: for atoms, follow what the bounds
// already entail so the first branch is not an immediate theory conflict;
// otherwise the saved polarity (phase saving — seeded from the previous
// check's final assignment, updated on every unassign), defaulting to
// false — or true on portfolio workers diversified by inverted phase.
bool SearchContext::decide_phase_negated(int v) const {
  const int ai = sh_.atom_of_var[static_cast<std::size_t>(v)];
  if (ai >= 0) {
    const Atom& a = sh_.atoms[static_cast<std::size_t>(ai)];
    if (!a.is_eq) {
      const int s = row_status(a.when_true[0]);
      if (s != 0) return s < 0;
    } else {
      const int s0 = row_status(a.when_true[0]);
      const int s1 = row_status(a.when_true[1]);
      if (s0 < 0 || s1 < 0) return true;
      if (s0 > 0 && s1 > 0) return false;
    }
  }
  if (polarity_[static_cast<std::size_t>(v)] != kUndef) {
    return polarity_[static_cast<std::size_t>(v)] == kFalse;
  }
  return !cfg_.invert_default_phase;
}

// ---------------------------------------------- activity heap (VSIDS)

void SearchContext::heap_swap(std::size_t i, std::size_t j) {
  std::swap(heap_[i], heap_[j]);
  heap_pos_[static_cast<std::size_t>(heap_[i])] = static_cast<int>(i);
  heap_pos_[static_cast<std::size_t>(heap_[j])] = static_cast<int>(j);
}

void SearchContext::heap_up(std::size_t i) {
  while (i > 0) {
    const std::size_t p = (i - 1) / 2;
    if (activity_[static_cast<std::size_t>(heap_[i])] <=
        activity_[static_cast<std::size_t>(heap_[p])]) {
      break;
    }
    heap_swap(i, p);
    i = p;
  }
}

void SearchContext::heap_down(std::size_t i) {
  for (;;) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = l + 1;
    std::size_t best = i;
    if (l < heap_.size() &&
        activity_[static_cast<std::size_t>(heap_[l])] >
            activity_[static_cast<std::size_t>(heap_[best])]) {
      best = l;
    }
    if (r < heap_.size() &&
        activity_[static_cast<std::size_t>(heap_[r])] >
            activity_[static_cast<std::size_t>(heap_[best])]) {
      best = r;
    }
    if (best == i) break;
    heap_swap(i, best);
    i = best;
  }
}

void SearchContext::heap_insert(int v) {
  if (heap_pos_[static_cast<std::size_t>(v)] >= 0) return;
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_up(heap_.size() - 1);
}

int SearchContext::heap_pop() {
  const int v = heap_[0];
  heap_pos_[static_cast<std::size_t>(v)] = -1;
  if (heap_.size() > 1) {
    heap_[0] = heap_.back();
    heap_pos_[static_cast<std::size_t>(heap_[0])] = 0;
  }
  heap_.pop_back();
  if (!heap_.empty()) heap_down(0);
  return v;
}

void SearchContext::bump_var(int v) {
  activity_[static_cast<std::size_t>(v)] += var_inc_;
  if (activity_[static_cast<std::size_t>(v)] > kVarActRescale) {
    for (double& a : activity_) a *= 1.0 / kVarActRescale;
    var_inc_ *= 1.0 / kVarActRescale;
  }
  if (heap_pos_[static_cast<std::size_t>(v)] >= 0) {
    heap_up(static_cast<std::size_t>(heap_pos_[static_cast<std::size_t>(v)]));
  }
}

void SearchContext::bump_clause(ClauseRef ci) {
  if (!arena_.learned(ci)) return;
  const double a = arena_.act(ci) + cla_inc_;
  arena_.set_act(ci, a);
  if (a > kClaActRescale) {
    // Rescale every learned clause — tombstones included, exactly like
    // the old per-object arena, so activity orderings stay bit-identical.
    for (ClauseRef r = arena_.first(); r != kClauseRefUndef;
         r = arena_.next(r)) {
      if (arena_.learned(r)) {
        arena_.set_act(r, arena_.act(r) * (1.0 / kClaActRescale));
      }
    }
    cla_inc_ *= 1.0 / kClaActRescale;
  }
}

int SearchContext::pick_branch() {
  while (!heap_.empty()) {
    const int v = heap_pop();
    if (assign_[static_cast<std::size_t>(v)] == kUndef) return v;
  }
  return -1;
}

// ------------------------------------------------------ levels, backjump

void SearchContext::push_level() {
  ++undo_era_;
  levels_.push_back(LevelMark{trail_.size(), active_rows_.size(),
                              active_diseqs_.size(), undo_.size(),
                              expl_pool_.size(), blog_.size()});
}

void SearchContext::backjump(int target) {
  if (current_level() <= target) return;
  const LevelMark mark = levels_[static_cast<std::size_t>(target)];
  for (std::size_t i = trail_.size(); i > mark.trail; --i) {
    const int v = var_of(trail_[i - 1]);
    polarity_[static_cast<std::size_t>(v)] =
        assign_[static_cast<std::size_t>(v)];
    assign_[static_cast<std::size_t>(v)] = kUndef;
    reason_[static_cast<std::size_t>(v)] = kReasonNone;
    heap_insert(v);
  }
  trail_.resize(mark.trail);
  qhead_ = mark.trail;
  theory_head_ = mark.trail;
  deactivate_rows_to(mark.rows);
  active_diseqs_.resize(mark.diseqs);
  undo_to(mark.undo);
  rewind_blog(mark.blog);
  expl_pool_.resize(mark.expl);
  row_work_.clear();
  clear_dirty();  // loosened bounds cannot newly entail anything
  levels_.resize(static_cast<std::size_t>(target));
  prefix_placed_ = std::min(prefix_placed_, target);
  prefix_levels_ = std::min(prefix_levels_, target);
  if (audit_enabled()) Auditor::check_search(*this, "backjump");
}

// -------------------------------------------------- learning (first UIP)

void SearchContext::collect_theory_lits(bool with_diseqs, std::size_t limit,
                                        std::vector<Lit>& out) const {
  for (std::size_t i = 0; i < limit; ++i) {
    const Lit l = trail_[i];
    const int v = var_of(l);
    if (level_[static_cast<std::size_t>(v)] == 0) continue;  // permanent
    const int ai = sh_.atom_of_var[static_cast<std::size_t>(v)];
    if (ai < 0) continue;
    const Atom& a = sh_.atoms[static_cast<std::size_t>(ai)];
    const bool tv = !is_neg(l);
    const bool activates = !(tv ? a.when_true : a.when_false).empty();
    const bool diseq = a.is_eq && !tv;
    if (activates || (with_diseqs && diseq)) out.push_back(neg(l));
  }
}

// Records a theory-valid clause in the proof trace. The recorded context
// is every atom literal asserted at level 0 right now: leaf blocking
// clauses (collect_theory_lits) skip level-0 literals as permanent, so
// the clause alone need not be theory-valid — the checker re-derives each
// context literal by unit propagation and adds it to the premise set.
void SearchContext::log_theory_lemma(const std::vector<Lit>& clause) {
  if (plog_ == nullptr) return;
  proof_scratch_.clear();
  const std::size_t l0 =
      levels_.empty() ? trail_.size() : levels_.front().trail;
  for (std::size_t i = 0; i < l0; ++i) {
    const int v = var_of(trail_[i]);
    if (sh_.atom_of_var[static_cast<std::size_t>(v)] >= 0) {
      proof_scratch_.push_back(trail_[i]);
    }
  }
  plog_->log_lemma(clause.data(), clause.size(), proof_scratch_.data(),
                   proof_scratch_.size());
}

// First-UIP conflict analysis; see the pre-split solver for the full
// commentary. Produces learnt_ (learnt_[0] the asserting literal,
// learnt_[1] — when present — the backjump-level watch) and returns the
// backjump level; lbd_out gets the clause's LBD.
int SearchContext::analyze(const Lit* conflict, std::size_t nconf,
                           ClauseRef conflict_ci, int& lbd_out) {
  const int clevel = current_level();
  learnt_.assign(1, 0);  // slot 0: asserting literal, filled at the end
  int counter = 0;
  auto consider = [&](Lit q) {
    const int v = var_of(q);
    if (seen_[static_cast<std::size_t>(v)] ||
        level_[static_cast<std::size_t>(v)] == 0) {
      return;
    }
    seen_[static_cast<std::size_t>(v)] = 1;
    to_clear_.push_back(v);
    bump_var(v);
    if (level_[static_cast<std::size_t>(v)] >= clevel) ++counter;
    else learnt_.push_back(q);
  };
  for (std::size_t qi = 0; qi < nconf; ++qi) consider(conflict[qi]);
  if (conflict_ci >= 0) bump_clause(conflict_ci);

  Lit p = 0;
  std::size_t idx = trail_.size();
  for (;;) {
    while (!seen_[static_cast<std::size_t>(var_of(trail_[idx - 1]))]) --idx;
    p = trail_[--idx];
    const int v = var_of(p);
    seen_[static_cast<std::size_t>(v)] = 0;
    if (--counter == 0) break;
    const int r = reason_[static_cast<std::size_t>(v)];
    if (r == kReasonTheory) {
      // The eagerly-stored provenance explanation captured at enqueue
      // time: the negated atoms whose rows entailed this literal.
      const std::uint32_t off = expl_off_[static_cast<std::size_t>(v)];
      const std::uint32_t len = expl_len_[static_cast<std::size_t>(v)];
      for (std::uint32_t i = 0; i < len; ++i) consider(expl_pool_[off + i]);
    } else {
      // r >= 0: counter > 0 guarantees a resolvable (propagated) literal.
      bump_clause(r);
      const Lit* rl = arena_.lits(r);
      const std::uint32_t rn = arena_.size(r);
      for (std::uint32_t i = 0; i < rn; ++i) {
        if (rl[i] != p) consider(rl[i]);
      }
    }
  }
  learnt_[0] = neg(p);

  // Clause minimization: a literal is redundant when its reason clause
  // is subsumed by the rest of the learnt clause (every other reason
  // literal is already in the clause or permanent). Theory-propagated
  // and decision literals are conservatively kept.
  std::size_t j = 1;
  for (std::size_t i = 1; i < learnt_.size(); ++i) {
    const Lit q = learnt_[i];
    const int v = var_of(q);
    const int r = reason_[static_cast<std::size_t>(v)];
    bool redundant = r >= 0;
    if (redundant) {
      const Lit* rl = arena_.lits(r);
      const std::uint32_t rn = arena_.size(r);
      for (std::uint32_t k = 0; k < rn; ++k) {
        const int uv = var_of(rl[k]);
        if (uv == v) continue;
        if (!seen_[static_cast<std::size_t>(uv)] &&
            level_[static_cast<std::size_t>(uv)] > 0) {
          redundant = false;
          break;
        }
      }
    }
    if (!redundant) learnt_[j++] = q;
  }
  learnt_.resize(j);

  for (const int v : to_clear_) seen_[static_cast<std::size_t>(v)] = 0;
  to_clear_.clear();

  // Backjump level: the highest level below the asserting literal's;
  // that literal moves to slot 1 as the second watch.
  int bt = 0;
  if (learnt_.size() > 1) {
    std::size_t at = 1;
    for (std::size_t i = 2; i < learnt_.size(); ++i) {
      if (level_[static_cast<std::size_t>(var_of(learnt_[i]))] >
          level_[static_cast<std::size_t>(var_of(learnt_[at]))]) {
        at = i;
      }
    }
    std::swap(learnt_[1], learnt_[at]);
    bt = level_[static_cast<std::size_t>(var_of(learnt_[1]))];
  }

  // LBD: number of distinct decision levels in the clause.
  lbd_levels_.clear();
  for (const Lit q : learnt_) {
    lbd_levels_.push_back(level_[static_cast<std::size_t>(var_of(q))]);
  }
  std::sort(lbd_levels_.begin(), lbd_levels_.end());
  lbd_out =
      static_cast<int>(std::unique(lbd_levels_.begin(), lbd_levels_.end()) -
                       lbd_levels_.begin());
  return bt;
}

// Conflict analysis over the assumption prefix (MiniSat analyzeFinal):
// prefix literal `p` (entry `p_at` of assume_q_) came up false during
// placement. Walks the implication trail backwards from ¬p, collects
// every prefix literal the derivation rests on, and maps the involved
// literals back to this check's assumption expressions as the unsat core
// (scoped-root and cube prefix entries carry no assumption index and are
// not reported).
void SearchContext::analyze_final(Lit p, int p_at) {
  core_.clear();
  std::vector<char> used(assume_src_.size(), 0);
  auto add_source = [&](Lit q, int upto) {
    // Several prefix entries can share one literal (duplicate or
    // entailed assumptions); every matching assumption up to the failing
    // entry was genuinely placed, so each is part of the refutation.
    for (int i = 0; i <= upto && i < static_cast<int>(assume_q_.size());
         ++i) {
      if (assume_q_[static_cast<std::size_t>(i)] != q ||
          used[static_cast<std::size_t>(i)] != 0) {
        continue;
      }
      used[static_cast<std::size_t>(i)] = 1;
      const int src = assume_src_[static_cast<std::size_t>(i)];
      if (src >= 0 && job_->assumptions != nullptr) {
        core_.push_back(job_->assumptions->at(static_cast<std::size_t>(src)));
      }
    }
  };
  add_source(p, p_at);  // the failing assumption itself
  if (level_[static_cast<std::size_t>(var_of(p))] > 0) {
    seen_[static_cast<std::size_t>(var_of(p))] = 1;
    for (std::size_t i = trail_.size(); i-- > 0;) {
      const int v = var_of(trail_[i]);
      if (!seen_[static_cast<std::size_t>(v)]) continue;
      seen_[static_cast<std::size_t>(v)] = 0;
      const int r = reason_[static_cast<std::size_t>(v)];
      if (r == kReasonNone) {
        // Level > 0 with no reason: during prefix placement every such
        // literal is a placed prefix entry (heuristic decisions cannot
        // precede an unplaced prefix literal).
        add_source(trail_[i], p_at);
      } else if (r == kReasonTheory) {
        const std::uint32_t off = expl_off_[static_cast<std::size_t>(v)];
        const std::uint32_t len = expl_len_[static_cast<std::size_t>(v)];
        for (std::uint32_t k = 0; k < len; ++k) {
          const int u = var_of(expl_pool_[off + k]);
          if (level_[static_cast<std::size_t>(u)] > 0) {
            seen_[static_cast<std::size_t>(u)] = 1;
          }
        }
      } else {
        const Lit* rl = arena_.lits(r);
        const std::uint32_t rn = arena_.size(r);
        for (std::uint32_t k = 0; k < rn; ++k) {
          const int u = var_of(rl[k]);
          if (u != v && level_[static_cast<std::size_t>(u)] > 0) {
            seen_[static_cast<std::size_t>(u)] = 1;
          }
        }
      }
    }
  }
}

// Learns from a conflict (clause index `ci`, or a theory conflict when
// ci < 0): analyzes, backjumps, attaches the learnt clause and asserts
// its first literal. Returns false when the conflict is at level 0 — the
// check is decided. Clauses learned after this check saw an
// Unknown-degraded leaf are tainted: any of them may transitively depend
// on an unproven refutation, so they all die at the next check boundary
// and are never exported to other workers.
bool SearchContext::resolve_conflict(const Lit* conflict, std::size_t nconf,
                                     ClauseRef ci) {
  ++stats_.conflicts;
  int clevel = 0;
  for (std::size_t qi = 0; qi < nconf; ++qi) {
    clevel = std::max(
        clevel, level_[static_cast<std::size_t>(var_of(conflict[qi]))]);
  }
  if (clevel == 0) return false;
  // Leaf/theory conflicts may not involve the innermost decisions (e.g.
  // a pure gate-variable decision after the last atom): analyze at the
  // highest level that actually participates.
  backjump(clevel);
  int lbd = 0;
  // `conflict` may point into the arena (clause conflicts); it is consumed
  // entirely by analyze(), before the learnt clause is allocated below.
  const int bt = analyze(conflict, nconf, ci, lbd);
  backjump(bt);
  const bool tainted = saw_unknown_;
  ++stats_.learned_clauses;
  // Logged before the clause can be exported: the exchange entry carries
  // this stamp as its origin proof id, so an importer's use of the clause
  // always postdates its appearance in the merged session trace. Tainted
  // clauses are never logged — they may rest on an unproven refutation.
  std::uint64_t proof_stamp = 0;
  if (plog_ != nullptr && !tainted) {
    proof_stamp = plog_->log_rup(learnt_.data(), learnt_.size());
  }
  if (learnt_.size() == 1) {
    // Unit consequence: permanent — re-asserted at level 0 of every
    // later check — unless tainted, in which case it lives only on this
    // check's trail and dies with it.
    if (!tainted) learned_units_.push_back(learnt_[0]);
    const bool ok = enqueue(learnt_[0], kReasonNone);
    (void)ok;  // unassigned: its level was above the backjump target
  } else {
    // Fault site: each learned-clause allocation is one arena_alloc
    // arrival. A scheduled failure is latched (defer) and thrown at the
    // next bump_ops — never here, where the watch lists are mid-update.
    util::fault::defer(util::fault::Site::kArenaAlloc);
    const ClauseRef lci = arena_.alloc(
        learnt_.data(), static_cast<std::uint32_t>(learnt_.size()),
        /*learned=*/true, tainted, /*prior=*/false, lbd, cla_inc_);
    ++num_learned_live_;
    num_tainted_ += tainted ? 1 : 0;
    watches_[static_cast<std::size_t>(learnt_[0])].push_back(
        Watcher{lci, learnt_[1]});
    watches_[static_cast<std::size_t>(learnt_[1])].push_back(
        Watcher{lci, learnt_[0]});
    const bool ok = enqueue(learnt_[0], lci);
    (void)ok;
  }
  if (!tainted) export_learnt(lbd, proof_stamp);
  var_inc_ *= kVarActInc;
  cla_inc_ *= kClaActInc;
  ++conflicts_since_restart_;
  return true;
}

// Publishes the just-learnt clause when it is worth another worker's
// attention. Sound because a non-tainted learnt clause is entailed by the
// permanent material alone (the assumption-level invariant).
void SearchContext::export_learnt(int lbd, std::uint64_t proof_stamp) {
  if (cfg_.exchange == nullptr) return;
  if (learnt_.size() > 2 && (lbd > kExportLbdMax ||
                             learnt_.size() > kExportLenMax)) {
    return;
  }
  if (cfg_.exchange->publish(learnt_, cfg_.id, proof_stamp)) {
    ++stats_.clauses_exported;
  }
}

// Adopts clauses other workers published since the last import. Called at
// restart points only: the backjump to the prefix makes attachment cases
// simple. Vetting keeps the watch invariant intact — the two watches are
// non-false when possible, otherwise the highest-level false literal
// backs up an undef first watch (last to unassign); clauses false under
// the current assignment are skipped outright (a lost import is only lost
// learning, never unsoundness). Units are deferred to learned_units_ and
// take effect at the next solve on this context.
void SearchContext::import_clauses() {
  if (cfg_.exchange == nullptr) return;
  import_scratch_.clear();
  cfg_.exchange->drain(import_cursor_, import_scratch_,
                       cfg_.id % ClauseExchange::kShards);
  for (ClauseExchange::Lits& lits : import_scratch_) {
    bool valid = !lits.empty();
    for (const Lit l : lits) {
      const int v = var_of(l);
      if (v < 0 || v >= sh_.num_bvars) {
        valid = false;
        break;
      }
    }
    if (!valid) continue;
    if (lits.size() == 1) {
      if (std::find(learned_units_.begin(), learned_units_.end(), lits[0]) ==
          learned_units_.end()) {
        learned_units_.push_back(lits[0]);
        ++stats_.clauses_imported;
      }
      continue;
    }
    // Non-false literals first; ties among the false tail broken toward
    // the highest decision level in slot 1.
    std::size_t nf = 0;
    for (std::size_t i = 0; i < lits.size(); ++i) {
      if (value_lit(lits[i]) != kFalse) std::swap(lits[nf++], lits[i]);
    }
    if (nf == 0) continue;  // conflicting right now: skip, stay simple
    if (nf == 1) {
      std::size_t at = 1;
      for (std::size_t i = 2; i < lits.size(); ++i) {
        if (level_[static_cast<std::size_t>(var_of(lits[i]))] >
            level_[static_cast<std::size_t>(var_of(lits[at]))]) {
          at = i;
        }
      }
      std::swap(lits[1], lits[at]);
    }
    // Cross-worker material: prior, so reuse counts as learned hits.
    const ClauseRef ci = arena_.alloc(
        lits.data(), static_cast<std::uint32_t>(lits.size()),
        /*learned=*/true, /*tainted=*/false, /*prior=*/true,
        static_cast<std::int32_t>(lits.size()), cla_inc_);
    ++num_learned_live_;
    watches_[static_cast<std::size_t>(lits[0])].push_back(
        Watcher{ci, lits[1]});
    watches_[static_cast<std::size_t>(lits[1])].push_back(
        Watcher{ci, lits[0]});
    ++stats_.clauses_imported;
  }
}

// Luby-scheduled restart (back to the assumption prefix — re-deciding
// assumptions would only redo identical propagation) and LBD/activity
// clause-database reduction. Restarts are also the clause-import points:
// the solver is at its quietest and the attachment rules stay simple.
void SearchContext::maybe_restart_or_reduce() {
  if (conflicts_since_restart_ >= restart_limit_) {
    ++stats_.restarts;
    conflicts_since_restart_ = 0;
    restart_limit_ = luby(++restart_seq_) * cfg_.restart_base;
    backjump(std::min(prefix_levels_, current_level()));
    import_clauses();
    if (audit_enabled()) {
      Auditor::check_deep(*this, "restart", /*bounds_settled=*/true);
      if (cfg_.exchange != nullptr) {
        Auditor::check_exchange(*cfg_.exchange, sh_.num_bvars, "import");
      }
    }
  }
  if (num_learned_live_ >= reduce_base() + reduce_inc() * num_reductions_) {
    reduce_db();
  }
}

// Deletes the worst half of the deletable learned clauses (kept: small
// LBD, binary, and locked clauses — those currently acting as a reason).
// Deletion is a tombstone; watch entries drop lazily. When tombstones hold
// half the arena it is compacted on the spot (watch and reason refs are
// rewritten through the forwarding map); whatever waste remains is swept
// at the next check boundary.
void SearchContext::reduce_db() {
  ++num_reductions_;
  arena_has_tombstones_ = true;
  reduce_order_.clear();
  for (ClauseRef ci = arena_.first(); ci != kClauseRefUndef;
       ci = arena_.next(ci)) {
    if (!arena_.learned(ci) || arena_.deleted(ci) || arena_.lbd(ci) <= 2 ||
        arena_.size(ci) <= 2) {
      continue;
    }
    const int v = var_of(arena_.lits(ci)[0]);
    const bool locked = assign_[static_cast<std::size_t>(v)] != kUndef &&
                        reason_[static_cast<std::size_t>(v)] == ci;
    if (!locked) reduce_order_.push_back(ci);
  }
  // Worst first: highest LBD, then lowest activity; delete half. Refs are
  // monotone in creation order, so the ref tie-break reproduces the old
  // arena-index tie-break exactly.
  std::sort(reduce_order_.begin(), reduce_order_.end(), [this](int a, int b) {
    const std::int32_t la = arena_.lbd(a);
    const std::int32_t lb = arena_.lbd(b);
    if (la != lb) return la > lb;
    const double aa = arena_.act(a);
    const double ab = arena_.act(b);
    if (aa != ab) return aa < ab;
    return a < b;  // deterministic tie-break
  });
  const std::size_t victims = reduce_order_.size() / 2;
  for (std::size_t i = 0; i < victims; ++i) {
    if (plog_ != nullptr) {
      // Advisory only: the checker never applies deletions (a deletion
      // holds for this worker's copy, not for every context that
      // imported the clause), but the trace records them so certificate
      // consumers can reconstruct the live database if they care to.
      plog_->log_delete(arena_.lits(reduce_order_[i]),
                        arena_.size(reduce_order_[i]));
    }
    arena_.mark_deleted(reduce_order_[i]);
    --num_learned_live_;
    ++stats_.deleted_clauses;
  }
  if (arena_.wasted_words() > 0 &&
      arena_.wasted_words() * 2 >= arena_.words()) {
    compact_arena();
  }
}

// In-place arena GC at a reduction point: live clauses slide down (order
// preserved, so refs stay monotone in creation order), and every stored
// ref — watch lists and the reason slots of assigned variables — is
// rewritten through the forwarding map. Watch entries of tombstoned
// clauses are dropped here instead of lazily.
void SearchContext::compact_arena() {
  // The arena is at a local maximum right before a compaction — fold it
  // into the session peak so the gauge reflects mid-search high water,
  // not just check boundaries.
  const std::uint64_t now = arena_.bytes();
  if (now > stats_.peak_arena_bytes) stats_.peak_arena_bytes = now;
  arena_.begin_compact();
  for (auto& ws : watches_) {
    std::size_t keep = 0;
    for (const Watcher& w : ws) {
      const ClauseRef nr = arena_.reloc(w.ref);
      if (nr == kClauseRefUndef) continue;  // tombstone entry dropped
      ws[keep++] = Watcher{nr, w.blocker};
    }
    ws.resize(keep);
  }
  for (const Lit l : trail_) {
    int& r = reason_[static_cast<std::size_t>(var_of(l))];
    if (r >= 0) r = arena_.reloc(r);  // locked clauses are never victims
  }
  arena_.finish_compact();
  arena_has_tombstones_ = false;
  ++stats_.arena_compactions;
}

// ------------------------------------------------------------ leaf search

void SearchContext::capture_model() {
  Model m;
  for (const auto& [v, name] : sh_.named_bools) {
    if (assign_[static_cast<std::size_t>(v)] != kUndef) {
      m.set_bool(name, assign_[static_cast<std::size_t>(v)] == kTrue);
    }
  }
  for (std::size_t v = 0; v < sh_.int_names.size(); ++v) {
    if (lo_[v] != kNegInf && lo_[v] == hi_[v]) {
      m.set_int(sh_.int_names[v], lo_[v]);
    }
  }
  model_ = std::move(m);
}

bool SearchContext::pins_contain(const std::vector<int>& pins, int v) {
  return std::find(pins.begin(), pins.end(), v) != pins.end();
}

// Queues the justification of the conflict propagate_rows just reported,
// evaluated at the current end of the provenance log.
void SearchContext::seed_row_conflict() {
  const int now = static_cast<int>(blog_.size());
  if (conflict_row_ >= 0) {
    expl_seed_row(conflict_row_, now, nullptr);
  } else {
    for (const bool hi : {false, true}) {
      const int e = entry_before(bnode(conflict_var_, hi), now);
      if (e >= 0) expl_push(e);
    }
  }
}

// Branch-and-bound completion of the integer domains at a full boolean
// assignment, with conflict-directed backjumping; see the pre-split
// solver for the full commentary. Sat captures the model before
// returning; `conflict_pins` accumulates the pin set on Unsat.
SatResult SearchContext::int_branch(const std::vector<int>& branch_vars,
                                    std::vector<int>& conflict_pins) {
  bump_ops();
  if (int_budget_ == 0) return SatResult::Unknown;
  --int_budget_;
  int best = -1;
  std::int64_t best_width = kPosInf;
  for (int v : branch_vars) {
    const std::int64_t lo = lo_[static_cast<std::size_t>(v)];
    const std::int64_t hi = hi_[static_cast<std::size_t>(v)];
    if (lo == hi) continue;
    const std::int64_t width =
        (lo == kNegInf || hi == kPosInf) ? kPosInf - 1 : hi - lo;
    if (width < best_width) {
      best_width = width;
      best = v;
    }
  }
  if (best < 0) {  // every constrained variable is fixed
    for (int ai : active_diseqs_) {
      const Atom& a = sh_.atoms[static_cast<std::size_t>(ai)];
      __int128 sum = 0;
      for (const auto& [v, c] : a.terms) {
        sum += static_cast<__int128>(c) * lo_[static_cast<std::size_t>(v)];
      }
      if (sum == a.bound) {  // disequality violated by the fixed values
        expl_begin();
        const int now = static_cast<int>(blog_.size());
        for (const auto& [v, c] : a.terms) {
          (void)c;
          for (const bool hi : {false, true}) {
            const int e = entry_before(bnode(v, hi), now);
            if (e >= 0) expl_push(e);
          }
        }
        expl_run(nullptr, &conflict_pins);
        return SatResult::Unsat;
      }
    }
    capture_model();
    return SatResult::Sat;
  }

  const std::int64_t lo = lo_[static_cast<std::size_t>(best)];
  const std::int64_t hi = hi_[static_cast<std::size_t>(best)];
  std::vector<std::int64_t> values;
  bool artificial = false;
  if (lo != kNegInf && hi != kPosInf && hi - lo <= kEnumWindow) {
    // Boundary-first: witnesses pin most variables at a domain endpoint
    // (empty queues, saturated blockers), so probe lo, hi, then walk the
    // interior outward from lo. Equality propagation usually fixes the
    // rest after the first few assignments.
    values.push_back(lo);
    if (hi != lo) values.push_back(hi);
    for (std::int64_t x = lo + 1; x < hi; ++x) {
      bump_ops();
      values.push_back(x);
    }
  } else if (lo != kNegInf) {
    artificial = true;
    for (std::int64_t x = lo; x < lo + kUnboundedProbes; ++x) {
      values.push_back(x);
    }
  } else if (hi != kPosInf) {
    artificial = true;
    for (std::int64_t x = hi; x > hi - kUnboundedProbes; --x) {
      values.push_back(x);
    }
  } else {
    artificial = true;
    values.push_back(0);
    for (std::int64_t x = 1; x <= kUnboundedProbes / 2; ++x) {
      values.push_back(x);
      values.push_back(-x);
    }
  }

  bool unknown = false;
  std::vector<int> node_pins;   // union of per-value conflicts, sans best
  std::vector<int> value_pins;  // per-value scratch
  for (const std::int64_t val : values) {
    bump_ops();
    const std::size_t mark = undo_.size();
    const std::size_t bmark = blog_.size();
    ++undo_era_;
    set_bound(best, false, val, pin_src(best));
    set_bound(best, true, val, pin_src(best));
    pin_trail_.push_back(theory::Pin{best, val});
    row_work_.clear();
    for (int rj : row_occ_[static_cast<std::size_t>(best)]) {
      row_work_.push_back(rj);
    }
    value_pins.clear();
    bool refuted = false;
    if (propagate_rows()) {
      if (!sconf_rows_.empty() || !sconf_pins_.empty()) {
        // Simplex refutation: the Farkas certificate names the pins it
        // used directly — exactly the conflict set the backjumping
        // wants. The rows are boolean-level context covered by the
        // blocking clause learned at the leaf.
        for (const int pi : sconf_pins_) {
          const int pv = pin_trail_[static_cast<std::size_t>(pi)].var;
          if (!pins_contain(value_pins, pv)) value_pins.push_back(pv);
        }
        sconf_rows_.clear();
        sconf_pins_.clear();
      } else {
        expl_begin();
        seed_row_conflict();
        expl_run(nullptr, &value_pins);
      }
      refuted = true;
    } else {
      const SatResult r = int_branch(branch_vars, value_pins);
      if (r == SatResult::Sat) {
        undo_to(mark);
        rewind_blog(bmark);
        pin_trail_.pop_back();
        return SatResult::Sat;
      }
      if (r == SatResult::Unknown) unknown = true;
      else refuted = true;
    }
    undo_to(mark);
    rewind_blog(bmark);
    pin_trail_.pop_back();
    if (refuted && !pins_contain(value_pins, best)) {
      // The refutation never used best's pin: it holds for every value
      // of best (even ones probed earlier with an Unknown verdict) —
      // the whole node is refuted, skip the other values.
      for (int p : value_pins) {
        if (!pins_contain(conflict_pins, p)) conflict_pins.push_back(p);
      }
      return SatResult::Unsat;
    }
    for (int p : value_pins) {
      if (p != best && !pins_contain(node_pins, p)) node_pins.push_back(p);
    }
  }
  if (artificial) unknown = true;
  if (unknown) return SatResult::Unknown;
  for (int p : node_pins) {
    if (!pins_contain(conflict_pins, p)) conflict_pins.push_back(p);
  }
  // The enumerated domain itself rests on best's entry bounds, whose
  // provenance may reach ancestor pins through rows — collect them
  // transitively (the loop's rewinds restored the entry state).
  expl_begin();
  const int now = static_cast<int>(blog_.size());
  for (const bool hi : {false, true}) {
    const int e = entry_before(bnode(best, hi), now);
    if (e >= 0) expl_push(e);
  }
  expl_run(nullptr, &conflict_pins);
  return SatResult::Unsat;
}

// Final-check rescue for a leaf the branch-and-bound search degraded to
// Unknown: the simplex decides the active rows exactly — rationally and,
// via branch-on-rational-vertex cuts, over the integers. Unsat leaves the
// Farkas rows in sconf_rows_ for the caller's blocking clause; Sat pins
// the integer witness and captures the model; a blown branch budget (or
// an active disequality the witness misses — the simplex never sees
// disequalities) keeps the honest Unknown.
SatResult SearchContext::simplex_rescue() {
  const SimplexTheory::Result res =
      stx_.check(active_rows_, /*pins=*/{}, /*integer_complete=*/true);
  sync_theory_stats();
  switch (res.verdict) {
    case SimplexTheory::Verdict::Infeasible:
      sconf_rows_ = res.conflict_rows;
      sconf_pins_.clear();  // no pins were passed
      return SatResult::Unsat;
    case SimplexTheory::Verdict::IntegerModel: {
      const std::size_t mark = undo_.size();
      const std::size_t bmark = blog_.size();
      ++undo_era_;
      for (const theory::Pin& p : res.model) {
        set_bound(p.var, false, p.value, pin_src(p.var));
        set_bound(p.var, true, p.value, pin_src(p.var));
      }
      bool diseqs_ok = true;
      for (const int ai : active_diseqs_) {
        const Atom& a = sh_.atoms[static_cast<std::size_t>(ai)];
        __int128 sum = 0;
        bool fixed = true;
        for (const auto& [v, c] : a.terms) {
          const std::int64_t lo = lo_[static_cast<std::size_t>(v)];
          if (lo == kNegInf || lo != hi_[static_cast<std::size_t>(v)]) {
            fixed = false;  // variable outside the active rows: unknown
            break;
          }
          sum += static_cast<__int128>(c) * lo;
        }
        if (!fixed || sum == a.bound) {
          diseqs_ok = false;
          break;
        }
      }
      if (diseqs_ok) {
        capture_model();
        return SatResult::Sat;
      }
      undo_to(mark);
      rewind_blog(bmark);
      return SatResult::Unknown;
    }
    case SimplexTheory::Verdict::Feasible:
      break;  // rationally feasible, integer-open: stay Unknown
  }
  return SatResult::Unknown;
}

SatResult SearchContext::int_complete() {
  std::vector<int> branch_vars;
  std::vector<char> seen(sh_.int_names.size(), 0);
  auto mark_var = [&](int v) {
    if (!seen[static_cast<std::size_t>(v)]) {
      seen[static_cast<std::size_t>(v)] = 1;
      branch_vars.push_back(v);
    }
  };
  for (const StaticRow* r : active_rows_) {
    for (const auto& [v, c] : r->terms) {
      (void)c;
      mark_var(v);
    }
  }
  for (int ai : active_diseqs_) {
    for (const auto& [v, c] : sh_.atoms[static_cast<std::size_t>(ai)].terms) {
      (void)c;
      mark_var(v);
    }
  }
  const std::size_t mark = undo_.size();
  const std::size_t bmark = blog_.size();
  ++undo_era_;
  int_budget_ = kIntNodeBudget;
  std::vector<int> conflict_pins;  // top-level pins: none to report to
  const SatResult r = int_branch(branch_vars, conflict_pins);
  if (r != SatResult::Sat) {
    undo_to(mark);
    rewind_blog(bmark);
  }
  return r;
}

// ---------------------------------------------------------- check driving

// Prepares the search state for a fresh check while keeping everything
// that is expensive to rebuild: the clause database (problem *and*
// learned clauses) and the bounds-undo machinery. Tainted clauses from a
// previous check's Unknown-degraded leaves are purged here — they are the
// only learned material that is not entailed — and the arena is compacted
// over clauses tombstoned by reduce_db() before the watch lists are
// rebuilt.
void SearchContext::reset_search() {
  // Unwind the previous check: restore every bound changed since scope 0
  // (Sat leaves bounds pinned for model capture) and unassign the trail,
  // saving its polarities as the next check's phase hints.
  levels_.clear();
  deactivate_rows_to(0);
  undo_to(0);
  rewind_blog(0);
  polarity_.resize(static_cast<std::size_t>(sh_.num_bvars), kUndef);
  for (Lit l : trail_) {
    const auto v = static_cast<std::size_t>(var_of(l));
    polarity_[v] = assign_[v];
    assign_[v] = kUndef;
  }
  trail_.clear();
  qhead_ = theory_head_ = 0;
  active_diseqs_.clear();
  row_work_.clear();
  pin_trail_.clear();  // a Timeout can unwind past the leaf search's pops
  sconf_rows_.clear();
  sconf_pins_.clear();
  clear_dirty();

  // Compact the clause arena: drop tombstones and tainted clauses. Safe
  // only here — the trail is empty, so no clause is locked as a reason
  // and the watch invariant is vacuous (the lists are rebuilt below).
  if (num_tainted_ > 0 || arena_has_tombstones_) {
    ClauseArena fresh;
    for (ClauseRef ci = arena_.first(); ci != kClauseRefUndef;
         ci = arena_.next(ci)) {
      if (arena_.deleted(ci)) continue;
      if (arena_.tainted(ci)) {
        --num_learned_live_;
        ++stats_.deleted_clauses;
        continue;
      }
      fresh.alloc(arena_.lits(ci), arena_.size(ci), arena_.learned(ci),
                  /*tainted=*/false, arena_.prior(ci), arena_.lbd(ci),
                  arena_.act(ci));
    }
    arena_ = std::move(fresh);
    num_tainted_ = 0;
    arena_has_tombstones_ = false;
    ++stats_.arena_compactions;
  }

  // Grow per-variable structures for material translated since the last
  // check, then rebuild the watch lists from scratch (cheap relative to
  // a solver call, and it sweeps the lazily-dropped watch entries).
  const auto nv = static_cast<std::size_t>(sh_.num_bvars);
  assign_.resize(nv, kUndef);
  reason_.resize(nv, kReasonNone);
  level_.resize(nv, 0);
  seen_.resize(nv, 0);
  // Activities restart fresh each check, with a tiny edge for theory
  // atoms: deciding atoms first lets bounds propagation fix the gate
  // variables instead of the other way around (measured ~50x on the 4x4
  // sizing probes vs. deciding in creation order). Stale activity from
  // a previous check pointed at that check's conflicts, not this one's,
  // so it is deliberately not carried over — phase saving and the
  // learned clauses carry the cross-check memory instead. Portfolio
  // workers may flip the bias to gate variables as diversification.
  activity_.clear();
  while (activity_.size() < nv) {
    const auto v = activity_.size();
    const bool hot = (sh_.atom_of_var[v] >= 0) != cfg_.reverse_atom_bias;
    activity_.push_back(hot ? 1e-6 : 0.0);
  }
  var_inc_ = 1.0;
  heap_pos_.assign(nv, -1);
  heap_.clear();
  for (int v = 0; v < sh_.num_bvars; ++v) heap_insert(v);
  watches_.assign(2 * nv, {});
  for (ClauseRef ci = arena_.first(); ci != kClauseRefUndef;
       ci = arena_.next(ci)) {
    // Everything learned before this boundary counts as cross-check
    // material from here on (learned_hits tracks its reuse).
    arena_.set_prior(ci, arena_.learned(ci));
    const Lit* c = arena_.lits(ci);
    watches_[static_cast<std::size_t>(c[0])].push_back(Watcher{ci, c[1]});
    watches_[static_cast<std::size_t>(c[1])].push_back(Watcher{ci, c[0]});
  }
  const std::size_t n = sh_.int_names.size();
  lo_.resize(n, kNegInf);
  hi_.resize(n, kPosInf);
  bhead_.resize(2 * n, -1);
  lo_stamp_.resize(n, 0);
  hi_stamp_.resize(n, 0);
  row_occ_.resize(n);
  dirty_stamp_.resize(n, 0);
  scan_stamp_.resize(sh_.atoms.size(), 0);
  expl_pool_.clear();
  expl_off_.resize(nv, 0);
  expl_len_.resize(nv, 0);
  saw_unknown_ = false;
  prefix_placed_ = prefix_levels_ = 0;
  conflicts_since_restart_ = 0;
  restart_seq_ = 0;
  restart_limit_ = luby(restart_seq_) * cfg_.restart_base;
}

Outcome SearchContext::finish_unsat() const {
  return saw_unknown_ ? Outcome::Unknown : Outcome::Unsat;
}

// Top-activity variables still open above the assumption prefix — the
// cube-and-conquer splitter. Collected at the Budget exit of the primary
// probe, where the EVSIDS activities reflect where the conflicts are.
void SearchContext::collect_hot_vars(std::size_t k) {
  hot_vars_.clear();
  if (k == 0) return;
  for (int v = 0; v < sh_.num_bvars; ++v) {
    if (v == sh_.true_var) continue;
    const auto sv = static_cast<std::size_t>(v);
    if (assign_[sv] != kUndef && level_[sv] <= prefix_levels_) continue;
    hot_vars_.push_back(v);
  }
  std::sort(hot_vars_.begin(), hot_vars_.end(), [this](int a, int b) {
    const double aa = activity_[static_cast<std::size_t>(a)];
    const double ab = activity_[static_cast<std::size_t>(b)];
    if (aa != ab) return aa > ab;
    return a < b;  // deterministic tie-break
  });
  if (hot_vars_.size() > k) hot_vars_.resize(k);
}

Outcome SearchContext::run_check() {
  reset_search();
  if (audit_enabled()) {
    Auditor::check_deep(*this, "check-begin", /*bounds_settled=*/true);
  }

  // Level 0 holds only *permanent* facts: definitional units, learned
  // unit consequences, and the scope-0 roots, which no pop() can ever
  // retract. Conflict analysis silently drops level-0 literals, so
  // everything placed here must stay true for the session's lifetime.
  for (Lit l : sh_.def_units) {
    if (!enqueue(l, kReasonNone)) return finish_unsat();
  }
  for (Lit l : learned_units_) {
    if (!enqueue(l, kReasonNone)) return finish_unsat();
  }
  if (job_->permanent_roots != nullptr) {
    for (Lit l : *job_->permanent_roots) {
      if (!enqueue(l, kReasonNone)) return finish_unsat();
    }
  }
  // Scoped roots, this check's assumptions, and the worker's cube form
  // the assumption prefix: each gets its own decision level (MiniSat
  // style), so learned clauses can only depend on them by mentioning
  // their negations — the clauses stay valid after any pop(), after the
  // assumptions are retracted, and on workers solving a different cube.
  assume_q_.clear();
  assume_src_.clear();
  if (job_->scoped_roots != nullptr) {
    for (Lit l : *job_->scoped_roots) {
      assume_q_.push_back(l);
      assume_src_.push_back(-1);  // scoped root, not a per-check assumption
    }
  }
  if (job_->assumption_lits != nullptr) {
    for (std::size_t i = 0; i < job_->assumption_lits->size(); ++i) {
      assume_q_.push_back((*job_->assumption_lits)[i]);
      assume_src_.push_back(static_cast<int>(i));
    }
  }
  if (job_->cube != nullptr) {
    for (Lit l : *job_->cube) {
      assume_q_.push_back(l);
      assume_src_.push_back(-1);  // cube literal: never part of a core
    }
  }

  for (;;) {
    const Conflict confl = propagate_all();
    if (confl.kind != Conflict::kNone) {
      theory_conflict_.clear();
      if (confl.kind == Conflict::kTheory) {
        if (!sconf_rows_.empty() || !sconf_pins_.empty()) {
          // Farkas conflict: the refutation names its rows directly (no
          // pins can exist during boolean search — the pin trail is
          // empty outside the integer leaf search).
          emit_simplex_conflict();
        } else {
          // Provenance expansion of the conflict: the negated atoms
          // whose rows actually produced the contradiction.
          expl_begin();
          const int now = static_cast<int>(blog_.size());
          if (conflict_row_ >= 0) {
            expl_seed_row(conflict_row_, now, &theory_conflict_);
          } else {
            for (const bool hi : {false, true}) {
              const int e = entry_before(bnode(conflict_var_, hi), now);
              if (e >= 0) expl_push(e);
            }
          }
          expl_run(&theory_conflict_, nullptr);
        }
        if (plog_ != nullptr) log_theory_lemma(theory_conflict_);
      }
      const bool is_clause = confl.kind == Conflict::kClause;
      const Lit* lits = is_clause ? arena_.lits(confl.ci)
                                  : theory_conflict_.data();
      const std::size_t nlits = is_clause
                                    ? arena_.size(confl.ci)
                                    : theory_conflict_.size();
      if (!resolve_conflict(lits, nlits, is_clause ? confl.ci : -1)) {
        return finish_unsat();
      }
      maybe_restart_or_reduce();
      check_search_budgets();
      if (job_->conflict_budget != 0 &&
          stats_.conflicts - check_conflict_base_ >= job_->conflict_budget) {
        collect_hot_vars(job_->hot_k);
        return Outcome::Budget;
      }
      continue;
    }
    if (prefix_placed_ < static_cast<int>(assume_q_.size())) {
      const Lit p = assume_q_[static_cast<std::size_t>(prefix_placed_)];
      if (value_lit(p) == kFalse) {
        analyze_final(p, prefix_placed_);
        return finish_unsat();
      }
      push_level();  // pseudo level when p already holds: keeps the
                     // prefix 1:1 with levels across backjumps
      ++prefix_placed_;
      prefix_levels_ = current_level();
      if (value_lit(p) == kUndef) {
        const bool ok = enqueue(p, kReasonNone);
        (void)ok;
      }
      continue;
    }
    // Budgets are polled *before* pick_branch: the pick pops its variable
    // off the VSIDS heap, and a throw between the pop and the enqueue
    // would orphan an unassigned variable outside the heap.
    check_search_budgets();
    const int v = pick_branch();
    if (v >= 0) {
      ++stats_.decisions;
      push_level();
      const bool ok = enqueue(mk_lit(v, decide_phase_negated(v)), kReasonNone);
      (void)ok;  // unassigned by construction
      continue;
    }
    // Full boolean assignment: complete (or refute) the integer domains;
    // a degraded leaf gets the exact simplex as a second opinion.
    SatResult leaf = int_complete();
    if (leaf == SatResult::Unknown) leaf = simplex_rescue();
    if (leaf == SatResult::Sat) return Outcome::Sat;
    if (leaf == SatResult::Unknown) saw_unknown_ = true;
    // Block this combination of theory atoms. For a refuted leaf the
    // blocking clause is a theory lemma — the exact Farkas atoms when
    // the simplex produced the refutation, the full asserted-atom set
    // otherwise; for an Unknown leaf it is *not* entailed — it (and
    // everything learned after it) is tainted and the final Unsat
    // degrades to Unknown.
    theory_conflict_.clear();
    if (!sconf_rows_.empty() || !sconf_pins_.empty()) {
      emit_simplex_conflict();
    } else {
      collect_theory_lits(true, trail_.size(), theory_conflict_);
    }
    if (plog_ != nullptr && leaf == SatResult::Unsat) {
      // Only a refuted leaf's blocking clause is theory-entailed; an
      // Unknown leaf's clause is a search heuristic and taints the run.
      log_theory_lemma(theory_conflict_);
    }
    if (!resolve_conflict(theory_conflict_.data(), theory_conflict_.size(),
                          -1)) {
      return finish_unsat();
    }
    maybe_restart_or_reduce();
    check_search_budgets();
    if (job_->conflict_budget != 0 &&
        stats_.conflicts - check_conflict_base_ >= job_->conflict_budget) {
      collect_hot_vars(job_->hot_k);
      return Outcome::Budget;
    }
  }
}

Outcome SearchContext::solve(const CheckJob& job) {
  job_ = &job;
  deadline_active_ = job.deadline_active;
  deadline_ = job.deadline;
  ops_ = 0;
  slow_polls_ = 0;
  check_conflict_base_ = stats_.conflicts;
  check_decision_base_ = stats_.decisions;
  check_prop_base_ = stats_.propagations;
  units_base_ = learned_units_.size();
  hot_vars_.clear();
  core_.clear();
  last_stop_ = util::StopReason::kNone;
  sync_problem();
  Outcome out = Outcome::Unknown;
  // Every governed unwind — deadline, cancel, budget ceiling, injected
  // fault — originates at a cancellation point (bump_ops / the simplex
  // tick / the theory-check entry), so they all ride the same
  // exception-safety path and leave the context reusable: the next
  // run_check starts with reset_search().
  try {
    out = run_check();
  } catch (const Timeout&) {
    out = Outcome::Unknown;
    last_stop_ = util::StopReason::kDeadline;
  } catch (const Cancelled&) {
    out = Outcome::Cancelled;
    last_stop_ = util::StopReason::kCancelled;
  } catch (const util::Stop& s) {
    out = s.reason == util::StopReason::kCancelled ? Outcome::Cancelled
                                                   : Outcome::Unknown;
    last_stop_ = s.reason;
  } catch (const util::fault::FaultInjected&) {
    out = Outcome::Unknown;
    last_stop_ = util::StopReason::kFaultInjected;
  }
  if (out == Outcome::Unknown && last_stop_ == util::StopReason::kNone) {
    // Honest degradation (integer-open leaves): still never silent.
    last_stop_ = util::StopReason::kDegraded;
  }
  if (audit_enabled()) {
    // A Timeout can unwind past the leaf search's pin pops and leave a
    // transiently crossed interval until the next reset — checked relaxed.
    Auditor::check_deep(*this, "check-boundary", /*bounds_settled=*/false);
  }
  stats_.learned_kept = num_learned_live_;
  stats_.arena_bytes = arena_.bytes();  // gauge, like learned_kept
  if (stats_.arena_bytes > stats_.peak_arena_bytes) {
    stats_.peak_arena_bytes = stats_.arena_bytes;
  }
  // Transient per-check state is reset on *every* exit path: a stale
  // deadline or job pointer leaking into the next solve would spuriously
  // time out an untimed check (or dangle into freed assumptions).
  deadline_active_ = false;
  deadline_ = Clock::time_point{};
  ops_ = 0;
  job_ = nullptr;
  return out;
}

// -------------------------------------------------- seeding & harvesting

void SearchContext::seed_from(const SearchContext& primary) {
  arena_.clear();
  num_learned_live_ = 0;
  num_tainted_ = 0;
  arena_has_tombstones_ = false;
  for (ClauseRef ci = primary.arena_.first(); ci != kClauseRefUndef;
       ci = primary.arena_.next(ci)) {
    if (primary.arena_.deleted(ci) || primary.arena_.tainted(ci)) continue;
    const bool learned = primary.arena_.learned(ci);
    arena_.alloc(primary.arena_.lits(ci), primary.arena_.size(ci), learned,
                 /*tainted=*/false, /*prior=*/learned,
                 primary.arena_.lbd(ci), /*act=*/0.0);
    if (learned) ++num_learned_live_;
  }
  clauses_synced_ = primary.clauses_synced_;
  learned_units_ = primary.learned_units_;
  polarity_ = primary.polarity_;
}

void SearchContext::harvest_into(std::vector<std::vector<Lit>>& out,
                                 std::size_t max) const {
  std::size_t taken = 0;
  for (ClauseRef ci = arena_.first(); ci != kClauseRefUndef;
       ci = arena_.next(ci)) {
    if (taken >= max) break;
    if (!arena_.learned(ci) || arena_.prior(ci) || arena_.tainted(ci) ||
        arena_.deleted(ci)) {
      continue;
    }
    const std::uint32_t n = arena_.size(ci);
    if (n > 2 && (arena_.lbd(ci) > kExportLbdMax || n > kExportLenMax)) {
      continue;
    }
    const Lit* c = arena_.lits(ci);
    out.emplace_back(c, c + n);
    ++taken;
  }
}

void SearchContext::harvest_units_into(std::vector<Lit>& out) const {
  for (std::size_t i = units_base_; i < learned_units_.size(); ++i) {
    out.push_back(learned_units_[i]);
  }
}

// Adoption happens between checks (trail empty, no watch lists attached):
// the clauses are appended as prior learned material and the next
// reset_search() builds their watches along with everything else.
void SearchContext::adopt_clauses(
    const std::vector<std::vector<Lit>>& clauses) {
  for (const std::vector<Lit>& lits : clauses) {
    if (lits.size() < 2) continue;
    arena_.alloc(lits.data(), static_cast<std::uint32_t>(lits.size()),
                 /*learned=*/true, /*tainted=*/false, /*prior=*/true,
                 static_cast<std::int32_t>(lits.size()), /*act=*/0.0);
    ++num_learned_live_;
  }
}

void SearchContext::adopt_units(const std::vector<Lit>& units) {
  for (const Lit l : units) {
    if (std::find(learned_units_.begin(), learned_units_.end(), l) ==
        learned_units_.end()) {
      learned_units_.push_back(l);
    }
  }
}

}  // namespace advocat::smt::native
