// Per-worker search engine of the native CDCL(T) solver.
//
// PR 6 split the former monolithic NativeSolver into two halves:
//
//  - SharedProblem: the immutable encoded problem — Tseitin variables,
//    deduplicated linear atoms with their static theory rows, problem
//    clauses and definitional units. Owned by NativeSolver, extended only
//    by translation *between* checks, and read-only while any worker is
//    searching, so workers share it without synchronization.
//  - SearchContext: everything mutable — trail, watch lists, EVSIDS
//    activity heap, phase array, the learned-clause arena, interval
//    bounds with their undo/provenance machinery, the exact simplex
//    theory state, and the ops/deadline polling — one instance per
//    worker. The primary context lives for the solver session (learned
//    clauses persist across checks exactly as before); cube/portfolio
//    workers are seeded from it per parallel check and harvested back.
//
// A SearchContext solves one CheckJob at a time: permanent roots at level
// 0, then the assumption prefix (scoped roots, per-check assumptions, and
// an optional cube) each on its own decision level, then CDCL(T) search.
// The single-threaded path is the primary context solving the job with no
// cube, no exchange, and no stop flag — the same deterministic algorithm
// as the pre-split solver.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "smt/clause_arena.hpp"
#include "smt/clause_exchange.hpp"
#include "smt/expr.hpp"
#include "smt/simplex_theory.hpp"
#include "smt/solver.hpp"
#include "smt/theory.hpp"

namespace advocat::smt::native {

using Clock = std::chrono::steady_clock;

// Literal encoding: variable v -> positive literal 2v, negated 2v+1.
using Lit = std::int32_t;
inline Lit mk_lit(int v, bool negated) {
  return static_cast<Lit>(2 * v + (negated ? 1 : 0));
}
inline Lit neg(Lit l) { return l ^ 1; }
inline int var_of(Lit l) { return l >> 1; }
inline bool is_neg(Lit l) { return (l & 1) != 0; }

enum Val : std::int8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

// Σ terms ≤ bound over integer-variable indices — the shared theory-seam
// row type (smt/theory.hpp).
using StaticRow = theory::Row;

struct Atom {
  std::vector<std::pair<int, std::int64_t>> terms;
  std::int64_t bound = 0;
  bool is_eq = false;
  std::vector<StaticRow> when_true;   // Le: {≤}; Eq: {≤, ≥}
  std::vector<StaticRow> when_false;  // Le: {>}; Eq: empty (disequality)
};

// One watch-list entry: the watching clause plus a *blocker* literal — a
// literal of the clause (usually the other watch at the time the entry was
// pushed) whose truth proves the clause satisfied without touching the
// clause words at all. Propagation checks the blocker first; only on a
// miss does it load the clause from the arena (the MiniSat trick that
// removes most cache misses from the hot loop).
struct Watcher {
  ClauseRef ref = kClauseRefUndef;
  Lit blocker = 0;
};

/// Problem clauses packed into one literal pool with a CSR-style offset
/// table — the shared, read-only mirror of the per-worker clause arena.
/// Append-only, like everything else in SharedProblem.
class PackedClauses {
 public:
  void push(const std::vector<Lit>& lits) {
    pool_.insert(pool_.end(), lits.begin(), lits.end());
    off_.push_back(static_cast<std::uint32_t>(pool_.size()));
  }
  [[nodiscard]] std::size_t size() const { return off_.size() - 1; }
  [[nodiscard]] const Lit* begin(std::size_t i) const {
    return pool_.data() + off_[i];
  }
  [[nodiscard]] std::uint32_t len(std::size_t i) const {
    return off_[i + 1] - off_[i];
  }

 private:
  std::vector<Lit> pool_;
  std::vector<std::uint32_t> off_{0};
};

struct Timeout {};    // deadline exceeded (thrown from bump_ops)
struct Cancelled {};  // another worker decided the check (stop flag)

/// The immutable encoded problem, shared read-only across workers.
/// Append-only: translation (between checks, single-threaded) grows it;
/// nothing is ever removed or reordered, so a worker syncs by remembering
/// how many clauses it has already copied.
struct SharedProblem {
  int num_bvars = 0;
  int true_var = -1;
  std::vector<int> atom_of_var;             // bool var -> atom index or -1
  std::vector<int> atom_var;                // atom index -> bool var
  std::vector<std::vector<int>> atom_occ;   // int var -> atom indices
  std::vector<Atom> atoms;
  std::vector<std::string> int_names;
  std::vector<std::pair<int, std::string>> named_bools;
  PackedClauses clauses;                    // problem clauses (size >= 2)
  std::vector<Lit> def_units;               // translation units
};

/// Per-worker knobs. The defaults are the deterministic single-threaded
/// configuration; portfolio mode diversifies restart pacing, default
/// phase, and the branching tie-break between atoms and gate variables.
struct SearchConfig {
  unsigned id = 0;                      ///< worker id (exchange sharding)
  std::uint64_t restart_base = 192;     ///< Luby scale (kRestartBase)
  bool invert_default_phase = false;    ///< unseen vars decide true first
  bool reverse_atom_bias = false;       ///< seed gate vars (not atoms) hot
  ClauseExchange* exchange = nullptr;   ///< learned-clause exchange, or null
  const std::atomic<bool>* stop = nullptr;  ///< cooperative cancellation
  bool is_worker = false;  ///< parallel worker (worker_kill fault target)
};

/// Verdict of one SearchContext::solve call. Budget and Cancelled are
/// orchestration-internal: Budget means the conflict budget expired (used
/// by the cube probe), Cancelled that the stop flag fired.
enum class Outcome { Sat, Unsat, Unknown, Budget, Cancelled };

/// One check, as seen by a worker. All pointed-to data is owned by the
/// orchestrating NativeSolver and outlives the solve call; everything but
/// the job-specific cube is identical across the workers of one check.
struct CheckJob {
  const std::vector<Lit>* permanent_roots = nullptr;  ///< level-0 roots
  const std::vector<Lit>* scoped_roots = nullptr;     ///< prefix, no core id
  const std::vector<Lit>* assumption_lits = nullptr;  ///< prefix, core id = index
  const std::vector<ExprId>* assumptions = nullptr;   ///< for core mapping
  const std::vector<Lit>* cube = nullptr;             ///< prefix, no core id
  bool deadline_active = false;
  Clock::time_point deadline{};
  std::uint64_t conflict_budget = 0;  ///< 0 = unlimited (cube-probe internal)
  std::size_t hot_k = 0;              ///< hot vars to report at Budget exit
  /// User-facing resource ceilings (conflicts/decisions/propagations/
  /// memory), polled at the cooperative cancellation point. Null when the
  /// session has no budget — the polls then cost one pointer test.
  /// Distinct from conflict_budget above, which is the orchestration-
  /// internal cube-probe budget (Outcome::Budget, not a degraded verdict).
  const util::ResourceBudget* budget = nullptr;
  /// Session-level cancel() flag (Solver::cancel_flag), observed at the
  /// cancellation point with bounded latency. Distinct from
  /// SearchConfig::stop, the intra-check worker stop used when a sibling
  /// already decided the verdict.
  const std::atomic<bool>* cancel = nullptr;
};

class Auditor;
class ProofLog;

class SearchContext {
 public:
  SearchContext(const SharedProblem& shared, SearchConfig config);

  SearchContext(const SearchContext&) = delete;
  SearchContext& operator=(const SearchContext&) = delete;

  /// Solves one job. Transient per-check state (deadline, ops counter,
  /// job pointers) is fully reset on every exit path — a timed-out check
  /// cannot leak a stale deadline into the next solve on this context.
  Outcome solve(const CheckJob& job);

  /// Model captured by the last Sat solve on this context.
  [[nodiscard]] const Model& model() const { return model_; }
  /// Failed-assumption subset of the last Unsat solve (may be empty).
  [[nodiscard]] const std::vector<ExprId>& core() const { return core_; }
  /// Cumulative counters over this context's lifetime.
  [[nodiscard]] const SolveStats& stats() const { return stats_; }
  /// Why the last solve() on this context stopped early (kNone after a
  /// definite Sat/Unsat); see util::StopReason.
  [[nodiscard]] util::StopReason stop_reason() const { return last_stop_; }
  /// Learned clauses currently live in this context's arena.
  [[nodiscard]] std::size_t learned_live() const { return num_learned_live_; }
  /// Top-activity undecided variables collected at the last Budget exit.
  [[nodiscard]] const std::vector<int>& hot_vars() const { return hot_vars_; }

  /// Copies `primary`'s clause arena (problem + non-tainted learned
  /// clauses, as prior material) and saved phases into this freshly
  /// constructed worker, so cube/portfolio workers start from everything
  /// the session has learned.
  void seed_from(const SearchContext& primary);

  /// Appends this context's exportable learned clauses (non-tainted,
  /// short or low-LBD, at most `max`) to `out` — used to harvest worker
  /// learning back into the primary context in deterministic worker order.
  void harvest_into(std::vector<std::vector<Lit>>& out, std::size_t max) const;
  /// Appends this context's learned unit literals to `out`.
  void harvest_units_into(std::vector<Lit>& out) const;

  /// Adopts harvested clauses/units as prior learned material (entailed by
  /// the permanent problem, so sound on any context sharing the problem).
  void adopt_clauses(const std::vector<std::vector<Lit>>& clauses);
  void adopt_units(const std::vector<Lit>& units);

  /// Attaches (or detaches, with nullptr) a proof log: while set,
  /// non-tainted learned clauses, theory lemmas, and deletions are
  /// recorded for certificate generation. Logging touches no SolveStats
  /// field and makes no search decision, so verdicts and determinism-mode
  /// stats are identical with and without a log.
  void set_proof_log(ProofLog* log) { plog_ = log; }

 private:
  // Read-only deep invariant checks under ADVOCAT_AUDIT (smt/audit.hpp).
  friend class Auditor;

  // ------------------------------------------------------------- plumbing
  void bump_ops();
  // Conflict/decision ceilings of job_->budget; throws util::Stop when one
  // is exhausted. Called where the counters advance (cheap compares).
  void check_search_budgets() const;
  // Memory ceiling: arena + BigInt heap + simplex pools vs the budget;
  // polled at a coarse cadence from bump_ops. Also maintains the
  // peak_arena_bytes gauge.
  void check_memory_ceiling();
  [[nodiscard]] Val value_lit(Lit l) const;
  [[nodiscard]] int current_level() const;
  bool enqueue(Lit l, int reason);
  void sync_problem();

  // ------------------------------------------------------------ propagate
  int propagate_bool();
  void set_bound(int v, bool is_hi, std::int64_t val, int src);
  void undo_to(std::size_t mark);
  void rewind_blog(std::size_t mark);
  void activate_row(const StaticRow* r, Lit cause);
  void deactivate_rows_to(std::size_t mark);
  bool scan_violated_row();
  bool simplex_refute();
  void sync_theory_stats();
  void emit_simplex_conflict();
  bool propagate_rows();
  bool activate_theory();

  // ------------------------------------------- provenance explanations
  static int bnode(int v, bool is_hi) { return 2 * v + (is_hi ? 1 : 0); }
  [[nodiscard]] int entry_before(int node, int before) const;
  void expl_begin();
  void emit_row_atom(int ri, std::vector<Lit>* atoms_out);
  void collect_pin(int var, std::vector<int>* pins_out);
  void expl_push(int e);
  void expl_seed_row(int ri, int before, std::vector<Lit>* atoms_out);
  void expl_run(std::vector<Lit>* atoms_out, std::vector<int>* pins_out);
  bool propagate_entailed_atoms();
  void clear_dirty();

  struct Conflict {
    enum Kind { kNone, kClause, kTheory } kind = kNone;
    int ci = -1;  // kClause only
  };
  Conflict propagate_all();
  [[nodiscard]] int row_status(const StaticRow& r) const;
  [[nodiscard]] bool decide_phase_negated(int v) const;

  // ------------------------------------------------- activity heap (VSIDS)
  void heap_swap(std::size_t i, std::size_t j);
  void heap_up(std::size_t i);
  void heap_down(std::size_t i);
  void heap_insert(int v);
  int heap_pop();
  void bump_var(int v);
  void bump_clause(ClauseRef ci);
  int pick_branch();

  // ----------------------------------------------------- levels, backjump
  struct LevelMark {
    std::size_t trail, rows, diseqs, undo, expl, blog;
  };
  void push_level();
  void backjump(int target);

  // ------------------------------------------------- learning (first UIP)
  void collect_theory_lits(bool with_diseqs, std::size_t limit,
                           std::vector<Lit>& out) const;
  // Conflict literals arrive as a raw span: clause conflicts point straight
  // into the arena (no copy), theory conflicts into theory_conflict_. The
  // span is consumed before any arena allocation can invalidate it.
  int analyze(const Lit* conflict, std::size_t nconf, ClauseRef conflict_ci,
              int& lbd_out);
  void analyze_final(Lit p, int p_at);
  bool resolve_conflict(const Lit* conflict, std::size_t nconf, ClauseRef ci);
  void export_learnt(int lbd, std::uint64_t proof_stamp);
  // Records `clause` as a theory lemma (with the level-0 atom context in
  // force, which leaf blocking clauses omit as permanent). No-op while no
  // proof log is attached.
  void log_theory_lemma(const std::vector<Lit>& clause);
  void import_clauses();
  void maybe_restart_or_reduce();
  void reduce_db();
  void compact_arena();

  // ---------------------------------------------------------- leaf search
  void capture_model();
  static bool pins_contain(const std::vector<int>& pins, int v);
  void seed_row_conflict();
  SatResult int_branch(const std::vector<int>& branch_vars,
                       std::vector<int>& conflict_pins);
  SatResult simplex_rescue();
  SatResult int_complete();

  // -------------------------------------------------------- check driving
  void reset_search();
  [[nodiscard]] Outcome finish_unsat() const;
  void collect_hot_vars(std::size_t k);
  Outcome run_check();

  const SharedProblem& sh_;
  SearchConfig cfg_;

  // Clause database (persists across solve() calls on this context): one
  // packed arena addressed by 32-bit refs; see clause_arena.hpp.
  ClauseArena arena_;
  std::size_t clauses_synced_ = 0;  // prefix of sh_.clauses already copied
  std::vector<Lit> learned_units_;  // permanent learned unit consequences
  std::size_t num_learned_live_ = 0;
  std::size_t num_tainted_ = 0;
  bool arena_has_tombstones_ = false;
  std::size_t num_reductions_ = 0;

  // Search state (reset — but not reallocated — by reset_search()).
  std::vector<Val> assign_;
  std::vector<int> reason_;             // var -> clause ref / kReason*
  std::vector<int> level_;              // var -> decision level
  std::vector<std::vector<Watcher>> watches_;  // literal -> watchers
  std::vector<Lit> trail_;
  std::size_t qhead_ = 0;
  std::size_t theory_head_ = 0;
  std::vector<LevelMark> levels_;
  std::vector<Lit> assume_q_;    // scoped roots + assumptions + cube
  std::vector<int> assume_src_;  // per entry: assumption index or -1
  int prefix_placed_ = 0;        // prefix literals placed (1:1 with levels)
  int prefix_levels_ = 0;        // levels occupied by the placed prefix
  std::vector<std::int64_t> lo_, hi_;
  std::vector<std::uint64_t> lo_stamp_, hi_stamp_;
  std::uint64_t undo_era_ = 1;
  struct UndoEntry {
    int var;
    bool is_hi;
    std::int64_t old_bound;
  };
  std::vector<UndoEntry> undo_;
  std::vector<const StaticRow*> active_rows_;
  std::vector<Lit> active_row_lit_;  // activating atom literal, per row
  std::vector<std::vector<int>> row_occ_;  // int var -> active row indices
  std::vector<int> active_diseqs_;         // atom indices asserted ≠
  std::vector<int> row_work_;
  std::vector<Val> polarity_;    // saved phases
  std::vector<int> dirty_vars_;  // int vars with bound changes to rescan
  std::vector<std::uint64_t> dirty_stamp_;
  std::uint64_t dirty_gen_ = 1;
  std::vector<std::uint64_t> scan_stamp_;  // atom index -> last scan
  std::uint64_t scan_gen_ = 0;
  bool saw_unknown_ = false;
  std::uint64_t int_budget_ = 0;

  // Exact theory layer (tableau, basis and slack dedup persist with the
  // context — the incremental half of the simplex).
  SimplexTheory stx_;
  std::vector<theory::Pin> pin_trail_;  // branch-and-bound pins in effect
  std::vector<int> sconf_rows_;  // pending simplex conflict: row indices
  std::vector<int> sconf_pins_;  // pending simplex conflict: pin indices

  // CDCL working state.
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;
  std::vector<int> heap_;      // activity max-heap of variables
  std::vector<int> heap_pos_;  // var -> heap index or -1
  std::vector<char> seen_;     // analysis scratch
  std::vector<int> to_clear_;
  std::vector<Lit> learnt_;
  std::vector<Lit> theory_conflict_;
  std::vector<int> lbd_levels_;
  ProofLog* plog_ = nullptr;        // proof trace, nullptr = logging off
  std::vector<Lit> proof_scratch_;  // level-0 ctx assembly scratch
  std::vector<Lit> lemma_scratch_;  // lemma-clause assembly scratch
  std::vector<int> reduce_order_;
  // Provenance-explanation machinery (see the .cpp section comment).
  struct BoundLog {
    int node;  // 2*var + (is_hi ? 1 : 0)
    int src;   // active-row index or pin code
    int prev;  // previous log entry for `node`, or -1
  };
  std::vector<BoundLog> blog_;  // chronological bound-derivation log
  std::vector<int> bhead_;      // bound node -> latest log entry or -1
  int conflict_row_ = -1;       // set by propagate_rows on conflict
  int conflict_var_ = -1;
  std::vector<int> expl_stack_;            // justification worklist
  std::vector<std::uint64_t> entry_seen_;  // per log entry, stamped
  std::vector<std::uint64_t> row_seen_;    // per active row: atom emitted
  std::vector<std::uint64_t> pin_seen_;    // per int var: pin collected
  std::uint64_t expl_gen_ = 0;
  std::vector<Lit> expl_pool_;  // stored explanations, level-scoped
  std::vector<Lit> expl_scratch_;
  std::vector<std::uint32_t> expl_off_, expl_len_;  // per var, theory reason
  std::uint64_t conflicts_since_restart_ = 0;
  std::uint64_t restart_seq_ = 0;
  std::uint64_t restart_limit_ = 0;

  // Per-check transients (valid only inside solve(); reset on every exit).
  const CheckJob* job_ = nullptr;
  std::uint64_t check_conflict_base_ = 0;
  std::uint64_t check_decision_base_ = 0;
  std::uint64_t check_prop_base_ = 0;
  std::size_t units_base_ = 0;  // learned_units_ size at solve() entry
  bool deadline_active_ = false;
  Clock::time_point deadline_;
  std::uint64_t ops_ = 0;
  std::uint64_t slow_polls_ = 0;  // bump_ops slow-path count (memory cadence)

  // Clause-exchange state.
  ClauseExchange::Cursor import_cursor_{};
  std::vector<ClauseExchange::Lits> import_scratch_;

  // Results of the last solve + lifetime counters.
  SolveStats stats_;
  util::StopReason last_stop_ = util::StopReason::kNone;
  Model model_;
  std::vector<ExprId> core_;
  std::vector<int> hot_vars_;
};

}  // namespace advocat::smt::native
