// Proof logging and certificate generation for the native CDCL(T) solver.
//
// While a ProofSink is installed, every SearchContext appends ProofRecords
// to a ProofLog as it learns: non-tainted learned clauses (RUP steps),
// theory lemmas (the implicit reason clauses of theory propagations,
// theory-conflict clauses, and leaf blocking clauses), and clause
// deletions. Records carry globally ordered stamps from one atomic counter
// shared by every worker, so the per-worker logs merge into one coherent
// session trace: a clause is always stamped before any worker that
// imported it can use it.
//
// At an Unsat check boundary NativeSolver serializes the trace into a
// Certificate (grammar in docs/PROOFS.md): the translated problem clauses
// and theory-atom table, this check's assumption units, the stamped
// rup/lem/del trace — each theory lemma carrying an inline branch-and-cut
// proof (Farkas combinations, Chvátal–Gomory interval tightening, single-
// variable splits, disequality steps) produced here by re-deriving the
// lemma's integer infeasibility with the exact rational simplex — and a
// closing `qed`. tools/proof_check.cpp validates the result with zero
// dependencies on solver code.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "smt/search_context.hpp"
#include "smt/solver.hpp"

namespace advocat::smt::native {

/// One entry of the session proof trace.
struct ProofRecord {
  enum class Kind : std::uint8_t {
    kRup,     ///< learned clause, checkable by reverse unit propagation
    kLemma,   ///< theory-valid clause, checkable by its inline proof
    kDelete,  ///< advisory deletion (the checker keeps every clause: a
              ///< deletion applies to one worker's copy, not the session)
  };
  Kind kind = Kind::kRup;
  std::uint64_t stamp = 0;  ///< global emission order across all workers
  std::vector<Lit> lits;    ///< the clause
  /// kLemma only: atom literals asserted at level 0 when the lemma was
  /// produced. Leaf blocking clauses and conflict explanations omit
  /// level-0 literals (they are permanent), so the lemma clause alone
  /// need not be theory-valid — the checker re-derives each ctx literal
  /// by unit propagation and adds it to the lemma's premise set.
  std::vector<Lit> ctx;
};

/// Per-context proof log. Near-zero overhead: SearchContext holds a
/// nullable pointer and logs only while a sink is installed; no SolveStats
/// field is touched, so determinism-mode stats are bit-identical with and
/// without logging.
class ProofLog {
 public:
  explicit ProofLog(std::atomic<std::uint64_t>* stamp) : stamp_(stamp) {}

  /// Logs a learned clause; returns its stamp (exchanged clauses carry it
  /// as their origin proof id).
  std::uint64_t log_rup(const Lit* lits, std::size_t n) {
    ProofRecord r;
    r.kind = ProofRecord::Kind::kRup;
    r.stamp = stamp_->fetch_add(1, std::memory_order_relaxed);
    r.lits.assign(lits, lits + n);
    records_.push_back(std::move(r));
    return records_.back().stamp;
  }

  /// Logs a theory lemma with its level-0 atom context; deduplicated by
  /// literal set (theory propagations re-derive the same implication many
  /// times per check).
  void log_lemma(const Lit* lits, std::size_t n, const Lit* ctx,
                 std::size_t nctx) {
    std::string key;
    key.reserve(8 * n);
    std::vector<Lit> sorted(lits, lits + n);
    std::sort(sorted.begin(), sorted.end());
    for (const Lit l : sorted) {
      key += std::to_string(l);
      key += ',';
    }
    if (!lemma_seen_.insert(key).second) return;
    ProofRecord r;
    r.kind = ProofRecord::Kind::kLemma;
    r.stamp = stamp_->fetch_add(1, std::memory_order_relaxed);
    r.lits.assign(lits, lits + n);
    r.ctx.assign(ctx, ctx + nctx);
    records_.push_back(std::move(r));
  }

  void log_delete(const Lit* lits, std::size_t n) {
    ProofRecord r;
    r.kind = ProofRecord::Kind::kDelete;
    r.stamp = stamp_->fetch_add(1, std::memory_order_relaxed);
    r.lits.assign(lits, lits + n);
    records_.push_back(std::move(r));
  }

  /// Moves this log's records out (used when merging worker logs into the
  /// session trace at harvest/join points).
  void drain_into(std::vector<ProofRecord>& out) {
    for (ProofRecord& r : records_) out.push_back(std::move(r));
    records_.clear();
  }

  [[nodiscard]] std::size_t size() const { return records_.size(); }

 private:
  std::atomic<std::uint64_t>* stamp_;
  std::vector<ProofRecord> records_;
  std::unordered_set<std::string> lemma_seen_;
};

/// Everything build_certificate needs from the solver session.
struct CertificateInputs {
  const SharedProblem* sh = nullptr;
  /// Session trace, already merged and stamp-sorted.
  const std::vector<ProofRecord>* trace = nullptr;
  /// Permanent roots + scoped roots + this check's assumption literals:
  /// serialized as `assume` units, the hypotheses of the refutation.
  std::vector<Lit> assume_lits;
  /// Cube-mode Unsat: the refuted cubes (all sign combinations of the
  /// split variables). Empty for sequential/portfolio Unsat.
  std::vector<std::vector<Lit>> cubes;
  bool trivially_unsat = false;
  /// True when the sink was attached after checks had already run: the
  /// earlier learned material cannot be reconstructed, so the certificate
  /// is honest about being unverifiable.
  bool attached_mid_session = false;
};

/// Serializes (and theory-certifies) one Unsat check. `lemma_cache` maps a
/// lemma's literal key to its certified proof body across calls — sizing
/// sessions re-certify the same session trace once per Unsat probe, and
/// the expensive branch-and-cut re-derivation is per-lemma cacheable.
Certificate build_certificate(
    const CertificateInputs& in,
    std::unordered_map<std::string, std::string>& lemma_cache);

/// Writes every certificate to `dir/proof_<n>.proof` (numbered in arrival
/// order). Used by the bench harness and the CI certification step;
/// ADVOCAT_PROOF_DIR points the fuzz suites here.
class FileProofSink : public ProofSink {
 public:
  explicit FileProofSink(std::string dir) : dir_(std::move(dir)) {}

  // Thread-safe: parallel capacity probing drives several solver sessions
  // into one sink concurrently (see core::VerifyOptions::proof_sink).
  void on_unsat_certificate(const Certificate& cert) override {
    const std::lock_guard<std::mutex> lock(mu_);
    const std::string path =
        dir_ + "/proof_" + std::to_string(count_++) + ".proof";
    std::ofstream out(path);
    out << cert.text;
    total_bytes_ += cert.proof_bytes;
    total_ms_ += cert.proof_ms;
    if (!cert.complete) ++incomplete_;
  }

  [[nodiscard]] std::size_t count() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
  [[nodiscard]] std::size_t incomplete() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return incomplete_;
  }
  [[nodiscard]] std::size_t total_bytes() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return total_bytes_;
  }
  [[nodiscard]] double total_ms() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return total_ms_;
  }

 private:
  mutable std::mutex mu_;
  std::string dir_;
  std::size_t count_ = 0;
  std::size_t incomplete_ = 0;
  std::size_t total_bytes_ = 0;
  double total_ms_ = 0.0;
};

/// Renders a literal in the certificate's DIMACS-signed form: variable v
/// is ±(v+1), negative when the literal is negated.
[[nodiscard]] inline std::int64_t proof_lit(Lit l) {
  const std::int64_t v = var_of(l) + 1;
  return is_neg(l) ? -v : v;
}

}  // namespace advocat::smt::native
