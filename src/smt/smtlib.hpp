// SMT-LIB2 serialization of assertions (solver-independent escape hatch).
#pragma once

#include <string>
#include <vector>

#include "smt/expr.hpp"

namespace advocat::smt {

/// Emits declarations for every variable in `factory`, one (assert ...) per
/// element of `assertions`, and a final (check-sat).
[[nodiscard]] std::string to_smtlib(const ExprFactory& factory,
                                    const std::vector<ExprId>& assertions);

}  // namespace advocat::smt
