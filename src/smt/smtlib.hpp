// SMT-LIB2 serialization of assertions and of incremental solver sessions
// (solver-independent escape hatch).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "smt/expr.hpp"
#include "smt/solver.hpp"

namespace advocat::smt {

/// Emits declarations for every variable in `factory`, one (assert ...) per
/// element of `assertions`, and a final (check-sat).
[[nodiscard]] std::string to_smtlib(const ExprFactory& factory,
                                    const std::vector<ExprId>& assertions);

/// One recorded session command.
struct Command {
  enum class Kind { Assert, Push, Pop, CheckSat };
  Kind kind = Kind::Assert;
  ExprId expr = kNoExpr;           ///< Assert only
  std::vector<ExprId> assumptions; ///< CheckSat only (may be empty)
};

/// Recorded incremental session: the sequence of assert/push/pop/check-sat
/// commands issued against a Solver, replayable onto any backend and
/// serializable as an SMT-LIB2 script.
class Script {
 public:
  void add(ExprId assertion);
  void push();
  /// Throws std::logic_error when no scope is open (an unbalanced script
  /// would not be replayable).
  void pop();
  void check_sat(std::vector<ExprId> assumptions = {});

  [[nodiscard]] const std::vector<Command>& commands() const {
    return commands_;
  }
  [[nodiscard]] std::size_t num_scopes() const { return open_scopes_; }
  [[nodiscard]] std::size_t num_checks() const { return num_checks_; }

  /// Serializes the session: (set-logic), declarations for every variable
  /// in `factory`, then the commands in order. push/pop emit `(push 1)` /
  /// `(pop 1)`; a check-sat with assumptions is emitted as the equivalent
  ///   (push 1) (assert a)... (check-sat) (pop 1)
  /// bracket, since the encoders' assumptions (e.g. capacity bindings
  /// `(= C[q] k)`) are arbitrary formulas, not the bare literals SMT-LIB's
  /// check-sat-assuming requires.
  [[nodiscard]] std::string to_smtlib(const ExprFactory& factory) const;

  /// Replays the session onto a live solver; returns one verdict per
  /// recorded check-sat. The solver must be over the same factory the
  /// recorded ExprIds came from.
  std::vector<SatResult> replay(Solver& solver, unsigned timeout_ms = 0) const;

 private:
  std::vector<Command> commands_;
  std::size_t open_scopes_ = 0;
  std::size_t num_checks_ = 0;
};

/// Wraps `inner` so every add/push/pop/check is mirrored into `script`
/// (which must outlive the returned solver). Verdicts, models, and solve
/// statistics pass through unchanged.
std::unique_ptr<Solver> make_recording_solver(std::unique_ptr<Solver> inner,
                                              Script& script);

}  // namespace advocat::smt
