#include "smt/expr.hpp"

#include <algorithm>
#include <stdexcept>

namespace advocat::smt {

namespace {

std::uint64_t hash_node(const Node& n) {
  std::uint64_t h = static_cast<std::uint64_t>(n.op) * 0x9e3779b97f4a7c15ull;
  h ^= static_cast<std::uint64_t>(n.value) + (h << 6) + (h >> 2);
  for (char c : n.name) h = h * 131 + static_cast<unsigned char>(c);
  for (ExprId k : n.kids) h = h * 1099511628211ull + static_cast<std::uint64_t>(k);
  return h;
}

bool same_node(const Node& a, const Node& b) {
  return a.op == b.op && a.value == b.value && a.name == b.name &&
         a.kids == b.kids;
}

}  // namespace

ExprId ExprFactory::intern(Node n) {
  const std::uint64_t h = hash_node(n);
  for (ExprId id : hash_index_[h]) {
    if (same_node(nodes_[static_cast<std::size_t>(id)], n)) return id;
  }
  const ExprId id = static_cast<ExprId>(nodes_.size());
  nodes_.push_back(std::move(n));
  hash_index_[h].push_back(id);
  return id;
}

ExprId ExprFactory::bool_const(bool v) {
  return intern(Node{Op::BoolConst, v ? 1 : 0, {}, {}});
}

ExprId ExprFactory::int_const(std::int64_t v) {
  return intern(Node{Op::IntConst, v, {}, {}});
}

ExprId ExprFactory::bool_var(const std::string& name) {
  auto it = var_index_.find(name);
  if (it != var_index_.end()) {
    if (nodes_[static_cast<std::size_t>(it->second)].op != Op::BoolVar)
      throw std::logic_error("variable redeclared with other sort: " + name);
    return it->second;
  }
  const ExprId id = intern(Node{Op::BoolVar, 0, name, {}});
  var_index_.emplace(name, id);
  vars_.emplace_back(name, true);
  return id;
}

ExprId ExprFactory::int_var(const std::string& name) {
  auto it = var_index_.find(name);
  if (it != var_index_.end()) {
    if (nodes_[static_cast<std::size_t>(it->second)].op != Op::IntVar)
      throw std::logic_error("variable redeclared with other sort: " + name);
    return it->second;
  }
  const ExprId id = intern(Node{Op::IntVar, 0, name, {}});
  var_index_.emplace(name, id);
  vars_.emplace_back(name, false);
  return id;
}

ExprId ExprFactory::and_(std::vector<ExprId> kids) {
  std::vector<ExprId> flat;
  for (ExprId k : kids) {
    const Node& n = node(k);
    if (n.op == Op::BoolConst) {
      if (n.value == 0) return bool_const(false);
      continue;  // drop true
    }
    if (n.op == Op::And) {
      flat.insert(flat.end(), n.kids.begin(), n.kids.end());
    } else {
      flat.push_back(k);
    }
  }
  std::sort(flat.begin(), flat.end());
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  if (flat.empty()) return bool_const(true);
  if (flat.size() == 1) return flat[0];
  return intern(Node{Op::And, 0, {}, std::move(flat)});
}

ExprId ExprFactory::or_(std::vector<ExprId> kids) {
  std::vector<ExprId> flat;
  for (ExprId k : kids) {
    const Node& n = node(k);
    if (n.op == Op::BoolConst) {
      if (n.value == 1) return bool_const(true);
      continue;  // drop false
    }
    if (n.op == Op::Or) {
      flat.insert(flat.end(), n.kids.begin(), n.kids.end());
    } else {
      flat.push_back(k);
    }
  }
  std::sort(flat.begin(), flat.end());
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  if (flat.empty()) return bool_const(false);
  if (flat.size() == 1) return flat[0];
  return intern(Node{Op::Or, 0, {}, std::move(flat)});
}

ExprId ExprFactory::not_(ExprId e) {
  const Node& n = node(e);
  if (n.op == Op::BoolConst) return bool_const(n.value == 0);
  if (n.op == Op::Not) return n.kids[0];
  return intern(Node{Op::Not, 0, {}, {e}});
}

ExprId ExprFactory::implies(ExprId a, ExprId b) {
  const Node& na = node(a);
  const Node& nb = node(b);
  if (na.op == Op::BoolConst) return na.value ? b : bool_const(true);
  if (nb.op == Op::BoolConst && nb.value == 1) return bool_const(true);
  if (nb.op == Op::BoolConst && nb.value == 0) return not_(a);
  return intern(Node{Op::Implies, 0, {}, {a, b}});
}

ExprId ExprFactory::iff(ExprId a, ExprId b) {
  if (a == b) return bool_const(true);
  const Node& na = node(a);
  const Node& nb = node(b);
  if (na.op == Op::BoolConst) return na.value ? b : not_(b);
  if (nb.op == Op::BoolConst) return nb.value ? a : not_(a);
  if (a > b) std::swap(a, b);
  return intern(Node{Op::Iff, 0, {}, {a, b}});
}

ExprId ExprFactory::eq(ExprId a, ExprId b) {
  const Node& na = node(a);
  const Node& nb = node(b);
  if (na.op == Op::IntConst && nb.op == Op::IntConst)
    return bool_const(na.value == nb.value);
  if (a == b) return bool_const(true);
  if (a > b) std::swap(a, b);
  return intern(Node{Op::Eq, 0, {}, {a, b}});
}

ExprId ExprFactory::le(ExprId a, ExprId b) {
  const Node& na = node(a);
  const Node& nb = node(b);
  if (na.op == Op::IntConst && nb.op == Op::IntConst)
    return bool_const(na.value <= nb.value);
  if (a == b) return bool_const(true);
  return intern(Node{Op::Le, 0, {}, {a, b}});
}

ExprId ExprFactory::add(std::vector<ExprId> kids) {
  std::vector<ExprId> flat;
  std::int64_t acc = 0;
  for (ExprId k : kids) {
    const Node& n = node(k);
    if (n.op == Op::IntConst) {
      acc += n.value;
    } else if (n.op == Op::Add) {
      for (ExprId kk : n.kids) {
        const Node& nn = node(kk);
        if (nn.op == Op::IntConst) acc += nn.value;
        else flat.push_back(kk);
      }
    } else {
      flat.push_back(k);
    }
  }
  if (acc != 0 || flat.empty()) flat.push_back(int_const(acc));
  if (flat.size() == 1) return flat[0];
  std::sort(flat.begin(), flat.end());
  return intern(Node{Op::Add, 0, {}, std::move(flat)});
}

ExprId ExprFactory::mul_const(std::int64_t c, ExprId e) {
  if (c == 0) return int_const(0);
  if (c == 1) return e;
  const Node& n = node(e);
  if (n.op == Op::IntConst) return int_const(c * n.value);
  if (n.op == Op::MulConst) return mul_const(c * n.value, n.kids[0]);
  return intern(Node{Op::MulConst, c, {}, {e}});
}

std::string ExprFactory::to_string(ExprId id) const {
  const Node& n = node(id);
  auto join_kids = [&](const char* sep) {
    std::string out;
    for (std::size_t i = 0; i < n.kids.size(); ++i) {
      if (i) out += sep;
      out += to_string(n.kids[i]);
    }
    return out;
  };
  switch (n.op) {
    case Op::BoolConst: return n.value ? "true" : "false";
    case Op::IntConst: return std::to_string(n.value);
    case Op::BoolVar:
    case Op::IntVar: return n.name;
    case Op::And: return "(" + join_kids(" & ") + ")";
    case Op::Or: return "(" + join_kids(" | ") + ")";
    case Op::Not: return "!" + to_string(n.kids[0]);
    case Op::Implies: return "(" + join_kids(" -> ") + ")";
    case Op::Iff: return "(" + join_kids(" <-> ") + ")";
    case Op::Eq: return "(" + join_kids(" = ") + ")";
    case Op::Le: return "(" + join_kids(" <= ") + ")";
    case Op::Add: return "(" + join_kids(" + ") + ")";
    case Op::MulConst:
      return std::to_string(n.value) + "*" + to_string(n.kids[0]);
  }
  return "?";
}

}  // namespace advocat::smt
