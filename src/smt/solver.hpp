// Solver-facing interface.
//
// Two interchangeable backends implement it: Z3 (z3_solver.cpp, compiled
// only when libz3 is available) and the portable in-tree solver
// (native_solver.cpp, always available). make_solver() picks one at
// runtime; to_smtlib() in smtlib.hpp serializes the same assertions for
// external solvers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "smt/expr.hpp"

namespace advocat::smt {

enum class SatResult { Sat, Unsat, Unknown };

[[nodiscard]] inline const char* to_string(SatResult r) {
  switch (r) {
    case SatResult::Sat: return "sat";
    case SatResult::Unsat: return "unsat";
    case SatResult::Unknown: return "unknown";
  }
  return "?";
}

/// Variable assignment extracted from a satisfiable check.
class Model {
 public:
  void set_int(const std::string& name, std::int64_t v) { ints_[name] = v; }
  void set_bool(const std::string& name, bool v) { bools_[name] = v; }

  /// Returns 0 / false for variables the solver left unconstrained.
  [[nodiscard]] std::int64_t int_value(const std::string& name) const;
  [[nodiscard]] bool bool_value(const std::string& name) const;

  [[nodiscard]] const std::unordered_map<std::string, std::int64_t>& ints() const { return ints_; }
  [[nodiscard]] const std::unordered_map<std::string, bool>& bools() const { return bools_; }

 private:
  std::unordered_map<std::string, std::int64_t> ints_;
  std::unordered_map<std::string, bool> bools_;
};

class Solver {
 public:
  virtual ~Solver() = default;

  virtual void add(ExprId assertion) = 0;
  /// Checks all added assertions; `timeout_ms` 0 means no limit.
  virtual SatResult check(unsigned timeout_ms = 0) = 0;
  /// Valid only after check() returned Sat.
  [[nodiscard]] virtual const Model& model() const = 0;
};

/// Selects the solver implementation behind make_solver().
enum class Backend {
  Auto,    ///< Z3 when compiled in, otherwise the native solver.
  Native,  ///< In-tree DPLL + bounded-integer branch-and-bound.
  Z3,      ///< libz3 (only when built with ADVOCAT_WITH_Z3).
};

[[nodiscard]] const char* to_string(Backend b);

/// Whether `b` can actually be instantiated in this build.
[[nodiscard]] bool backend_available(Backend b);

/// Creates a solver over `factory`'s expressions. The factory must outlive
/// the solver. Throws std::runtime_error for an unavailable backend.
std::unique_ptr<Solver> make_solver(const ExprFactory& factory,
                                    Backend backend = Backend::Auto);

/// Creates the Z3-backed solver over `factory`'s expressions. The factory
/// must outlive the solver. Throws std::runtime_error when this build has
/// no Z3 support.
std::unique_ptr<Solver> make_z3_solver(const ExprFactory& factory);

}  // namespace advocat::smt
