// Solver-facing interface.
//
// The default backend is Z3 (see z3_solver.hpp); to_smtlib() in
// smtlib.hpp serializes the same assertions for external solvers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "smt/expr.hpp"

namespace advocat::smt {

enum class SatResult { Sat, Unsat, Unknown };

[[nodiscard]] inline const char* to_string(SatResult r) {
  switch (r) {
    case SatResult::Sat: return "sat";
    case SatResult::Unsat: return "unsat";
    case SatResult::Unknown: return "unknown";
  }
  return "?";
}

/// Variable assignment extracted from a satisfiable check.
class Model {
 public:
  void set_int(const std::string& name, std::int64_t v) { ints_[name] = v; }
  void set_bool(const std::string& name, bool v) { bools_[name] = v; }

  /// Returns 0 / false for variables the solver left unconstrained.
  [[nodiscard]] std::int64_t int_value(const std::string& name) const;
  [[nodiscard]] bool bool_value(const std::string& name) const;

  [[nodiscard]] const std::unordered_map<std::string, std::int64_t>& ints() const { return ints_; }
  [[nodiscard]] const std::unordered_map<std::string, bool>& bools() const { return bools_; }

 private:
  std::unordered_map<std::string, std::int64_t> ints_;
  std::unordered_map<std::string, bool> bools_;
};

class Solver {
 public:
  virtual ~Solver() = default;

  virtual void add(ExprId assertion) = 0;
  /// Checks all added assertions; `timeout_ms` 0 means no limit.
  virtual SatResult check(unsigned timeout_ms = 0) = 0;
  /// Valid only after check() returned Sat.
  [[nodiscard]] virtual const Model& model() const = 0;
};

/// Creates the Z3-backed solver over `factory`'s expressions. The factory
/// must outlive the solver.
std::unique_ptr<Solver> make_z3_solver(const ExprFactory& factory);

}  // namespace advocat::smt
