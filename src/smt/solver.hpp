// Solver-facing interface.
//
// Two interchangeable backends implement it: Z3 (z3_solver.cpp, compiled
// only when libz3 is available) and the portable in-tree solver
// (native_solver.cpp, always available). make_solver() picks one at
// runtime; smtlib.hpp serializes the same sessions for external solvers.
//
// The interface is *incremental*: a solver is a live session. Assertions
// accumulate across check() calls, push()/pop() open and discard assertion
// scopes, and check(assumptions) solves under temporary hypotheses that are
// retracted automatically when the call returns. Declarations (variables,
// and each backend's internal translation of expressions) are persistent —
// they survive pop() — so repeated checks over the same expression DAG
// never pay the translation cost twice. This is what makes capacity
// probing (core::Verifier::probe_capacity) a sequence of assumption flips
// instead of a rebuild of the whole pipeline.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "smt/expr.hpp"
#include "util/budget.hpp"

namespace advocat::smt {

enum class SatResult { Sat, Unsat, Unknown };

/// Cumulative search-effort counters for a solver session. The native
/// backend fills every field exactly; the Z3 backend maps what libz3's
/// statistics expose (the learned-clause fields stay 0 there — Z3 does not
/// report its clause database through the stable API). Counters are
/// *session-cumulative*: a snapshot taken after check k includes checks
/// 1..k, so per-check deltas are snapshot differences.
struct SolveStats {
  std::uint64_t conflicts = 0;     ///< conflicts analyzed (incl. theory/leaf)
  std::uint64_t decisions = 0;     ///< branching decisions
  std::uint64_t propagations = 0;  ///< literals enqueued by propagation
  std::uint64_t restarts = 0;      ///< search restarts (Luby schedule)
  std::uint64_t learned_clauses = 0;  ///< clauses learned, cumulative
  std::uint64_t deleted_clauses = 0;  ///< learned clauses deleted, cumulative
  std::size_t learned_kept = 0;       ///< learned clauses live in the DB now
  /// Times a clause learned in an *earlier* check propagated or conflicted
  /// in a later one — the direct measure of refutation reuse across
  /// incremental probes (capacity sizing). 0 means the learned clauses are
  /// dead weight; the sizing loops show millions.
  std::uint64_t learned_hits = 0;
  /// Pivot steps performed by the exact simplex theory layer (native
  /// backend only; see docs/SOLVER.md). Stays 0 on workloads the interval
  /// theory decides alone — the simplex runs only where intervals are
  /// structurally weak (unbounded flow systems, degraded leaves).
  std::uint64_t theory_pivots = 0;
  /// Farkas infeasibility explanations the simplex layer produced; each
  /// one became a learned theory clause (or a conflict-directed backjump
  /// inside the integer leaf search).
  std::uint64_t farkas_explanations = 0;
  /// Configured worker count for parallel checks (native backend; see
  /// set_threads). 1 means the sequential solver — no thread is ever
  /// spawned and no parallel-only code runs.
  unsigned threads = 1;
  /// Learned clauses a parallel worker published to the cross-worker
  /// exchange (short or low-LBD, never tainted). 0 with threads == 1 or
  /// in determinism mode, where the exchange is disabled.
  std::uint64_t clauses_exported = 0;
  /// Exchange clauses a worker attached into its own database after
  /// vetting (variable-range check; all-false clauses are skipped).
  std::uint64_t clauses_imported = 0;
  /// Bytes held by the primary context's packed clause arena (gauge, like
  /// learned_kept: the size at the last check boundary, not a cumulative
  /// total). Native backend only.
  std::uint64_t arena_bytes = 0;
  /// Arena compactions performed, cumulative: mid-search GCs at
  /// reduction points (tombstones reclaimed, refs rewritten) plus the
  /// rebuild at check boundaries that had tombstones or tainted clauses.
  std::uint64_t arena_compactions = 0;
  /// Why the most recent check stopped early. kNone after a definite
  /// (Sat/Unsat) verdict; every Unknown carries a non-kNone reason — a
  /// degraded result is never silent (see docs/ROBUSTNESS.md).
  util::StopReason stop_reason = util::StopReason::kNone;
  /// High-water mark of arena_bytes across the session (gauge; native
  /// backend only). The live value can shrink at compactions, so the peak
  /// is what the memory ceiling and capacity planning care about.
  std::uint64_t peak_arena_bytes = 0;
};

/// An independently checkable refutation of one Unsat check. `text` is the
/// full certificate in the line-oriented grammar of docs/PROOFS.md: the
/// serialized problem clauses and theory-atom table, this check's
/// assumption units, and the stamped session trace of learned clauses
/// (RUP steps) and theory lemmas with inline Farkas/branch-and-cut
/// justifications, closed by `qed`. `advocat-check` (tools/) validates it
/// with zero dependencies on solver code.
struct Certificate {
  std::string text;       ///< the certificate body (see docs/PROOFS.md)
  std::string mode;       ///< "native", or "attested <backend>"
  bool complete = true;   ///< false when some ingredient could not be
                          ///< certified (reason says which); the checker
                          ///< will reject an incomplete certificate
  std::string reason;     ///< why complete is false ("" when complete)
  double proof_ms = 0.0;  ///< wall time spent certifying + serializing
  std::size_t proof_bytes = 0;  ///< text.size(), for BENCH_JSON tracking
};

/// Receives one Certificate per Unsat check. Install with
/// Solver::set_proof_sink *before the first check* — material learned
/// before the sink is attached cannot be reconstructed, so certificates
/// emitted after a mid-session attach are marked incomplete.
class ProofSink {
 public:
  virtual ~ProofSink() = default;
  virtual void on_unsat_certificate(const Certificate& cert) = 0;
};

[[nodiscard]] inline const char* to_string(SatResult r) {
  switch (r) {
    case SatResult::Sat: return "sat";
    case SatResult::Unsat: return "unsat";
    case SatResult::Unknown: return "unknown";
  }
  return "?";
}

/// Variable assignment extracted from a satisfiable check.
class Model {
 public:
  void set_int(const std::string& name, std::int64_t v) { ints_[name] = v; }
  void set_bool(const std::string& name, bool v) { bools_[name] = v; }

  /// Returns 0 / false for variables the solver left unconstrained.
  [[nodiscard]] std::int64_t int_value(const std::string& name) const;
  [[nodiscard]] bool bool_value(const std::string& name) const;

  [[nodiscard]] const std::unordered_map<std::string, std::int64_t>& ints() const { return ints_; }
  [[nodiscard]] const std::unordered_map<std::string, bool>& bools() const { return bools_; }

 private:
  std::unordered_map<std::string, std::int64_t> ints_;
  std::unordered_map<std::string, bool> bools_;
};

/// Incremental solver session. Backends implement the protected virtuals;
/// the public surface (check overloads, model storage, counters) is shared.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Asserts `assertion` in the current scope: it stays active until the
  /// enclosing push() is popped (or forever at scope 0).
  virtual void add(ExprId assertion) = 0;

  /// Opens an assertion scope.
  virtual void push() = 0;
  /// Discards every assertion added since the matching push(). Throws
  /// std::logic_error when no scope is open. Declarations and the last
  /// model survive.
  virtual void pop() = 0;
  /// Number of open scopes.
  [[nodiscard]] virtual std::size_t num_scopes() const = 0;

  /// Requests `n` parallel workers for subsequent checks; 0 restores the
  /// environment default (ADVOCAT_THREADS, itself defaulting to 1).
  /// Backends without parallel search ignore this (default no-op).
  virtual void set_threads(unsigned n) { (void)n; }
  /// Forces (true) or clears (false) determinism mode for parallel
  /// checks: static cube partition, no clause exchange, no early
  /// cancellation — verdicts *and* SolveStats become a pure function of
  /// the problem and thread count. Overrides ADVOCAT_DETERMINISTIC.
  /// No-op on backends without parallel search.
  virtual void set_deterministic(bool on) { (void)on; }

  /// Installs per-check resource ceilings (see util::ResourceBudget) for
  /// every subsequent check on this session; a default-constructed budget
  /// clears them. Exhausting any ceiling returns Unknown with the matching
  /// StopReason on solve_stats() — state stays consistent and the session
  /// remains usable, exactly like a timeout. The native backend enforces
  /// all fields; Z3 maps deadline/conflicts/propagations/memory onto its
  /// timeout/rlimit/max_memory parameters (best effort, same taxonomy).
  virtual void set_budget(const util::ResourceBudget& budget) {
    budget_ = budget;
  }
  [[nodiscard]] const util::ResourceBudget& budget() const { return budget_; }

  /// Installs a proof sink: every subsequent Unsat check emits an
  /// independently checkable Certificate to it (see ProofSink). Pass
  /// nullptr to detach. Logging is off entirely while no sink is
  /// installed — the fast path stays untouched and SolveStats are
  /// bit-identical with and without a sink. Attach before the first
  /// check: certificates after a mid-session attach are marked
  /// incomplete. Default no-op for backends without proof support.
  virtual void set_proof_sink(ProofSink* sink) { proof_sink_ = sink; }

  /// Asynchronous cancellation: may be called from another thread while a
  /// check is in flight; the check returns Unknown(kCancelled) at its next
  /// cancellation point (bounded latency). The flag is one-shot — it is
  /// re-armed (cleared) when the *next* check starts, so a cancelled
  /// session stays fully reusable.
  virtual void cancel() { cancel_.store(true, std::memory_order_relaxed); }

  /// Checks all active assertions; `timeout_ms` 0 means no limit.
  SatResult check(unsigned timeout_ms = 0);
  /// Checks all active assertions conjoined with `assumptions`, which are
  /// retracted when the call returns (they never leak into later checks).
  /// Unsat means unsat *under these assumptions*. A distinct name — not a
  /// check() overload — so a braced assumption list can never silently
  /// bind to the timeout parameter.
  SatResult check_assuming(const std::vector<ExprId>& assumptions,
                           unsigned timeout_ms = 0);

  /// Model of the most recent Sat check. Survives push()/pop() and later
  /// non-Sat checks; throws std::logic_error when no check ever was Sat.
  [[nodiscard]] const Model& model() const;
  /// Alias of model() emphasizing the retraction-survival contract.
  [[nodiscard]] const Model& last_model() const { return model(); }
  /// Whether any check so far returned Sat (i.e. model() is valid).
  [[nodiscard]] bool has_model() const { return has_model_; }

  /// Total check() calls on this session (instrumentation hook).
  [[nodiscard]] std::size_t num_checks() const { return num_checks_; }

  /// Session-cumulative search statistics (see SolveStats). Virtual so
  /// wrappers (e.g. the recording solver) can forward to the wrapped
  /// backend's counters.
  [[nodiscard]] virtual const SolveStats& solve_stats() const {
    return stats_;
  }

  /// After a check_assuming() that returned Unsat: the subset of that
  /// call's assumptions the refutation actually used. Order is
  /// backend-defined, and an assumption passed several times may appear
  /// once per occurrence — treat the core as a set. An empty core after
  /// Unsat means the
  /// active assertions are unsatisfiable on their own. Reset by every
  /// check; meaningless (empty) after Sat or Unknown. Both backends fill
  /// it (the native solver from conflict analysis over the assumption
  /// levels, Z3 from its native unsat_core()); cores are minimal-ish, not
  /// guaranteed minimal — every reported assumption was used, but a
  /// smaller refutation may exist.
  [[nodiscard]] virtual const std::vector<ExprId>& unsat_core() const {
    return core_;
  }

 protected:
  /// Backend hook behind both check() overloads.
  virtual SatResult do_check(const std::vector<ExprId>& assumptions,
                             unsigned timeout_ms) = 0;
  /// Backends store each Sat model here.
  void store_model(Model m) {
    model_ = std::move(m);
    has_model_ = true;
  }
  /// Backends update their counters through this.
  [[nodiscard]] SolveStats& mutable_stats() { return stats_; }
  /// Backends report the failed-assumption subset of an Unsat
  /// check_assuming() here; the shared check plumbing clears it first.
  void store_core(std::vector<ExprId> core) { core_ = std::move(core); }
  /// The live cancellation flag backends poll during a check. The shared
  /// check plumbing re-arms it at every check entry.
  [[nodiscard]] const std::atomic<bool>* cancel_flag() const {
    return &cancel_;
  }
  /// The installed proof sink (nullptr when none): backends emit each
  /// Unsat certificate here.
  [[nodiscard]] ProofSink* proof_sink() const { return proof_sink_; }

 private:
  Model model_;
  bool has_model_ = false;
  std::size_t num_checks_ = 0;
  SolveStats stats_;
  std::vector<ExprId> core_;
  util::ResourceBudget budget_;
  std::atomic<bool> cancel_{false};
  ProofSink* proof_sink_ = nullptr;
};

/// Selects the solver implementation behind make_solver().
enum class Backend {
  Auto,    ///< Z3 when compiled in, otherwise the native solver.
  Native,  ///< In-tree DPLL + bounded-integer branch-and-bound.
  Z3,      ///< libz3 (only when built with ADVOCAT_WITH_Z3).
};

[[nodiscard]] const char* to_string(Backend b);

/// Whether `b` can actually be instantiated in this build.
[[nodiscard]] bool backend_available(Backend b);

/// Creates a solver over `factory`'s expressions. The factory must outlive
/// the solver. Throws std::runtime_error for an unavailable backend.
std::unique_ptr<Solver> make_solver(const ExprFactory& factory,
                                    Backend backend = Backend::Auto);

/// Creates the Z3-backed solver over `factory`'s expressions. The factory
/// must outlive the solver. Throws std::runtime_error when this build has
/// no Z3 support.
std::unique_ptr<Solver> make_z3_solver(const ExprFactory& factory);

}  // namespace advocat::smt
