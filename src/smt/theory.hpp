// The theory seam of the native CDCL(T) solver.
//
// Both theory layers — interval propagation (in native_solver.cpp) and the
// exact rational simplex (simplex_theory.hpp) — consume the *same* stream
// of asserted linear rows and speak the same provenance language back to
// the boolean search:
//
//  - A `Row` is the canonical constraint form  Σ coeff·var ≤ bound  over
//    integer-variable indices. Atom translation produces one or two Rows
//    per atom (an equality asserts the ≤ and ≥ Rows; a negated ≤ asserts
//    the strict complement as  −Σ ≤ −bound−1, exact over integers), and
//    activating a row is always justified by exactly one atom literal.
//  - Every theory deduction is explained as a set of *tags* naming the
//    asserted facts it used: row tags (indices into the activation order,
//    mapping back to the activating atom literals) and pin tags (indices
//    into the branch-and-bound pin trail). First-UIP conflict analysis
//    resolves those atoms exactly like clause antecedents, which is what
//    lets refutations learned from either theory persist across checks.
//
// The layers divide the work by strength and cost: interval propagation is
// cheap, runs to a budget on every assertion batch, and carries per-bound
// provenance for eager atom entailment; the simplex is exact and complete
// over the rationals (plus an integer completion by divisibility and
// branch-on-rational-vertex cuts), and runs where intervals are
// structurally weak — when tightening exhausts its budget with unbounded
// variables in play, and as the final-check rescue for leaves the
// branch-and-bound search would otherwise degrade to Unknown.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace advocat::smt::theory {

/// Canonical asserted constraint: Σ terms ≤ bound. Terms are (integer
/// variable index, coefficient), sorted by variable, no zero coefficients.
struct Row {
  std::vector<std::pair<int, std::int64_t>> terms;
  std::int64_t bound = 0;
};

/// A branch-and-bound pin in effect: integer variable fixed to a value.
struct Pin {
  int var = 0;
  std::int64_t value = 0;
};

}  // namespace advocat::smt::theory
