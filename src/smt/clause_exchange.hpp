// Sharded learned-clause exchange between parallel search workers.
//
// Soundness rests on the assumption-level invariant from the sequential
// solver (see native_solver.hpp): every non-tainted learned clause is
// entailed by the *permanent* material alone (translation gates, scope-0
// assertions), never by scoped roots, per-check assumptions, or cube
// literals — those can only appear inside a clause as explicit negated
// literals. All workers of one NativeSolver share the same variable
// numbering (the translation is done before workers spawn), so a clause
// learned by any worker is a valid permanent clause for every other
// worker, and for the primary context that persists it across checks.
//
// Tainted clauses (descended from an Unknown-degraded leaf) are NOT
// entailed and must never be exported; the exporters filter them.
//
// The structure is a handful of mutex-guarded append-only shards:
// publishers append to the shard keyed by their worker id, consumers keep
// a private cursor per shard and drain only the suffix they have not seen.
// Contention is negligible — exchange traffic is a tiny fraction of
// propagation work — and the mutex keeps the type trivially correct under
// ThreadSanitizer, which is worth more here than a lock-free ring.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "util/fault.hpp"

namespace advocat::smt::native {

class Auditor;

class ClauseExchange {
 public:
  static constexpr std::size_t kShards = 8;
  /// Per-shard clause cap: a runaway exporter degrades to dropping its
  /// clauses (counted) instead of growing without bound.
  static constexpr std::size_t kShardCap = 1u << 14;

  using Lits = std::vector<std::int32_t>;
  using Cursor = std::array<std::size_t, kShards>;

  /// Publishes a clause from worker `source`. While proof logging is on,
  /// `proof_stamp` is the clause's origin id in the session proof trace —
  /// the exporter logs before publishing, so an importer's first use of
  /// the clause always postdates the clause's trace entry. Returns false
  /// (and counts a drop) when the shard is full.
  bool publish(const Lits& lits, unsigned source,
               std::uint64_t proof_stamp = 0) {
    if (util::fault::enabled()) {
      // Fault sites act locally, never throw: the exchange is best-effort
      // by design, so a stalled publisher (descheduled thread) or a forced
      // drop (full shard) exercises paths that must already be correct.
      if (util::fault::fire(util::fault::Site::kExchangeStall)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      if (util::fault::fire(util::fault::Site::kExchangeOverflow)) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
    }
    Shard& sh = shards_[source % kShards];
    {
      std::lock_guard<std::mutex> lock(sh.mu);
      if (sh.clauses.size() >= kShardCap) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      sh.clauses.push_back(lits);
      sh.stamps.push_back(proof_stamp);
    }
    published_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  /// Copies every clause published since `cursor` into `out` (appending)
  /// and advances the cursor; each consumer sees each clause exactly
  /// once. `skip_shard` excludes one shard — a worker passes its own
  /// publish shard so it never re-imports its own exports (with more
  /// workers than shards this also skips shard-mates' clauses, which is
  /// merely lost sharing, never unsoundness).
  void drain(Cursor& cursor, std::vector<Lits>& out,
             std::size_t skip_shard = kShards) {
    if (util::fault::enabled() &&
        util::fault::fire(util::fault::Site::kExchangeStall)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    for (std::size_t s = 0; s < kShards; ++s) {
      if (s == skip_shard) continue;
      Shard& sh = shards_[s];
      std::lock_guard<std::mutex> lock(sh.mu);
      for (; cursor[s] < sh.clauses.size(); ++cursor[s]) {
        out.push_back(sh.clauses[cursor[s]]);
      }
    }
  }

  [[nodiscard]] std::uint64_t published() const {
    return published_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  // Reads the shards (under their locks) under ADVOCAT_AUDIT.
  friend class Auditor;

  struct Shard {
    std::mutex mu;
    std::vector<Lits> clauses;
    std::vector<std::uint64_t> stamps;  // 1:1 origin proof ids (0 = none)
  };
  std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> published_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace advocat::smt::native
