// In-tree CDCL(T) solver for the linear-integer encodings.
// See native_solver.hpp for the algorithm overview and smt/theory.hpp for
// the seam between the two theory layers (interval propagation here, the
// exact rational simplex in smt/simplex_theory.hpp).
//
// Search core (since PR 4): conflict-driven clause learning in the
// MiniSat lineage — first-UIP conflict analysis with clause minimization,
// non-chronological backjumping, an EVSIDS activity heap, Luby restarts,
// and a learned-clause database with LBD/activity-based deletion. The
// solver is fully deterministic (no randomness), so identical sessions
// produce identical statistics.
//
// Learned clauses persist across check() calls AND across push()/pop():
// scoped root assertions and per-check assumptions are placed on their own
// decision levels (MiniSat assumption style) instead of level 0, so a
// learned clause can only depend on them by *mentioning* their negations.
// Every learned clause is therefore entailed by the permanent material
// alone (translation gates, scope-0 assertions) and stays valid after any
// pop — nothing ever has to be discarded on pop. The one exception is
// clauses learned after a leaf degraded to Unknown in the same check
// (budget/window exhaustion): those may block satisfying assignments, so
// they are marked tainted, degrade this check's Unsat to Unknown exactly
// like before, and are purged before the next check starts.
#include "smt/native_solver.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <numeric>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "smt/simplex_theory.hpp"
#include "smt/theory.hpp"

namespace advocat::smt {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::int64_t kNegInf = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kPosInf = std::numeric_limits<std::int64_t>::max();
// Derived bounds are clamped strictly inside the sentinels.
constexpr std::int64_t kBoundClamp = std::int64_t{1} << 60;
// Finite window probed for variables the constraints never bounded; an
// exhausted probe degrades Unsat to Unknown (Sat stays exact). Small on
// purpose: genuinely free variables (flow circulations) are either pinned
// by equality propagation or accept their lower bound, so wide windows
// only slow refutation down.
constexpr std::int64_t kUnboundedProbes = 4;
// Branch-and-bound node budget per boolean leaf; an exhausted budget
// degrades the leaf to Unknown so one pathological leaf cannot stall the
// whole search.
constexpr std::uint64_t kIntNodeBudget = 50'000;
// Widest finite domain enumerated exhaustively before the same degradation.
constexpr std::int64_t kEnumWindow = 1 << 16;

// CDCL tuning. Restarts follow the Luby sequence scaled by kRestartBase
// conflicts; learned-clause reduction triggers once the live learned set
// exceeds kReduceBase + kReduceInc per reduction already performed.
constexpr std::uint64_t kRestartBase = 192;
constexpr std::size_t kReduceBase = 2000;
constexpr std::size_t kReduceInc = 1000;
constexpr double kVarActInc = 1.0 / 0.95;    // EVSIDS decay 0.95
constexpr double kClaActInc = 1.0 / 0.999;   // clause-activity decay 0.999
constexpr double kVarActRescale = 1e100;
constexpr double kClaActRescale = 1e20;

// Literal encoding: variable v -> positive literal 2v, negated 2v+1.
using Lit = std::int32_t;
inline Lit mk_lit(int v, bool negated) {
  return static_cast<Lit>(2 * v + (negated ? 1 : 0));
}
inline Lit neg(Lit l) { return l ^ 1; }
inline int var_of(Lit l) { return l >> 1; }
inline bool is_neg(Lit l) { return (l & 1) != 0; }

enum Val : std::int8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

// Σ terms ≤ bound over integer-variable indices — the shared theory-seam
// row type (smt/theory.hpp): interval propagation and the simplex layer
// consume the same activation stream and explain in the same tag space.
using StaticRow = theory::Row;

struct Atom {
  std::vector<std::pair<int, std::int64_t>> terms;
  std::int64_t bound = 0;
  bool is_eq = false;
  std::vector<StaticRow> when_true;   // Le: {≤}; Eq: {≤, ≥}
  std::vector<StaticRow> when_false;  // Le: {>}; Eq: empty (disequality)
};

// One clause in the arena: problem clauses (from Tseitin translation,
// permanent) and learned clauses share it so watch lists and reasons are
// plain indices. Deletion is lazy — a deleted clause keeps its slot (lits
// freed) until the next check boundary compacts the arena, because watch
// lists cannot be rebuilt mid-search without breaking the invariant that
// a false watch is the last literal of the clause to unassign.
struct Clause {
  std::vector<Lit> lits;
  double act = 0.0;
  std::int32_t lbd = 0;
  bool learned = false;
  bool tainted = false;  // depends on an Unknown-degraded leaf: not entailed
  bool deleted = false;
  bool prior = false;  // learned in an earlier check (learned_hits bookkeeping)
};

struct Timeout {};

constexpr int kReasonNone = -1;    // decision / assumption / level-0 fact
constexpr int kReasonTheory = -2;  // entailed by the active interval rows

// One restorable bound change.
struct UndoEntry {
  int var;
  bool is_hi;
  std::int64_t old_bound;
};

// Bound-provenance source codes: >= 0 is an active-row index, <= -2
// encodes a branch-and-bound pin of integer variable pin_var(src).
inline int pin_src(int var) { return -2 - var; }
inline bool src_is_pin(int src) { return src <= -2; }
inline int pin_var(int src) { return -2 - src; }

// One bound derivation, appended to the chronological provenance log.
// Entries for one (variable, side) node form a linked list through
// `prev`, so "the bound this derivation consumed" is the input node's
// latest entry *older than this one* — walking derivation time instead of
// the mutable current-source graph keeps justifications acyclic and
// grounded even when self-referential tightening laps overwrite bounds.
struct BoundLog {
  int node;  // 2*var + (is_hi ? 1 : 0)
  int src;   // active-row index or pin code
  int prev;  // previous log entry for `node`, or -1
};

// floor(a / b) for b > 0, exact in __int128.
__int128 floor_div(__int128 a, std::int64_t b) {
  __int128 q = a / b;
  if (a % b != 0 && a < 0) --q;
  return q;
}

// Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... (0-based:
// luby(0) = luby(1) = 1, luby(2) = 2, ...).
std::uint64_t luby(std::uint64_t i) {
  std::uint64_t size = 1;
  while (size < i + 1) size = 2 * size + 1;
  while (size - 1 != i) {
    size = (size - 1) / 2;
    i %= size;
  }
  return (size + 1) / 2;
}

class NativeSolver final : public Solver {
 public:
  explicit NativeSolver(const ExprFactory& factory) : f_(factory) {
    true_var_ = new_bvar();
    def_units_.push_back(mk_lit(true_var_, false));
    // The simplex layer honors the same deadline as every other loop.
    stx_.set_tick([this] { bump_ops(); });
  }

  void add(ExprId assertion) override { roots_.push_back(assertion); }

  // Scopes are marks into roots_. Translation artifacts (Tseitin gate
  // clauses, atoms, variables) are *definitional* — for any assignment of
  // the original variables there is a consistent assignment of the gates —
  // so they are sound to keep forever; pop() only retracts the unit
  // literals that assert the scoped roots. Learned clauses survive pop()
  // too: scoped roots are solved on assumption-style decision levels, so
  // any learned clause depending on one mentions its negation explicitly
  // and remains a valid (vacuously satisfiable) clause after the pop.
  void push() override { scopes_.push_back(roots_.size()); }

  void pop() override {
    if (scopes_.empty()) {
      throw std::logic_error("NativeSolver::pop: no open scope");
    }
    const std::size_t mark = scopes_.back();
    scopes_.pop_back();
    roots_.resize(mark);
    if (translated_roots_ > mark) {
      translated_roots_ = mark;
      root_lits_.resize(mark);
    }
  }

  [[nodiscard]] std::size_t num_scopes() const override {
    return scopes_.size();
  }

 protected:
  SatResult do_check(const std::vector<ExprId>& assumptions,
                     unsigned timeout_ms) override {
    deadline_active_ = timeout_ms > 0;
    if (deadline_active_) {
      deadline_ = Clock::now() + std::chrono::milliseconds(timeout_ms);
    }
    ops_ = 0;
    const SolveStats before = solve_stats();
    SatResult result;
    try {
      result = run_check(assumptions);
    } catch (const Timeout&) {
      result = SatResult::Unknown;
    }
    mutable_stats().learned_kept = num_learned_live_;
    if (std::getenv("ADVOCAT_NATIVE_STATS") != nullptr) {
      const SolveStats& s = solve_stats();
      std::fprintf(
          stderr,
          "[native] %s: +%llu decisions, +%llu conflicts, +%llu propagations, "
          "+%llu restarts, +%llu learned (%zu live, %llu deleted), "
          "+%llu prior-clause hits, %d bool vars, %zu atoms, %zu clauses\n",
          smt::to_string(result),
          static_cast<unsigned long long>(s.decisions - before.decisions),
          static_cast<unsigned long long>(s.conflicts - before.conflicts),
          static_cast<unsigned long long>(s.propagations -
                                          before.propagations),
          static_cast<unsigned long long>(s.restarts - before.restarts),
          static_cast<unsigned long long>(s.learned_clauses -
                                          before.learned_clauses),
          s.learned_kept,
          static_cast<unsigned long long>(s.deleted_clauses),
          static_cast<unsigned long long>(s.learned_hits -
                                          before.learned_hits),
          num_bvars_, atoms_.size(), cls_.size());
    }
    return result;
  }

 private:
  // ------------------------------------------------------------ translation

  int new_bvar() {
    atom_of_var_.push_back(-1);
    return num_bvars_++;
  }

  int int_var(ExprId id, const std::string& name) {
    auto it = int_index_.find(id);
    if (it != int_index_.end()) return it->second;
    const int v = static_cast<int>(int_names_.size());
    int_names_.push_back(name);
    int_index_.emplace(id, v);
    return v;
  }

  void add_clause(std::vector<Lit> c) {
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    for (std::size_t i = 0; i + 1 < c.size(); ++i) {
      if (c[i + 1] == (c[i] ^ 1)) return;  // tautology: l and ¬l adjacent
    }
    if (c.empty()) {
      trivially_unsat_ = true;
    } else if (c.size() == 1) {
      def_units_.push_back(c[0]);
    } else {
      Clause cl;
      cl.lits = std::move(c);
      cls_.push_back(std::move(cl));
    }
  }

  void linearize(ExprId id, std::int64_t scale,
                 std::map<int, std::int64_t>& coeffs, std::int64_t& constant) {
    const Node& n = f_.node(id);
    switch (n.op) {
      case Op::IntConst: constant += scale * n.value; break;
      case Op::IntVar: coeffs[int_var(id, n.name)] += scale; break;
      case Op::Add:
        for (ExprId k : n.kids) linearize(k, scale, coeffs, constant);
        break;
      case Op::MulConst: linearize(n.kids[0], scale * n.value, coeffs, constant); break;
      default:
        throw std::logic_error("native solver: expected integer expression");
    }
  }

  Lit translate_atom(const Node& n) {
    std::map<int, std::int64_t> coeffs;
    std::int64_t constant = 0;
    linearize(n.kids[0], 1, coeffs, constant);
    linearize(n.kids[1], -1, coeffs, constant);

    Atom a;
    a.is_eq = n.op == Op::Eq;
    for (const auto& [v, c] : coeffs) {
      if (c != 0) a.terms.emplace_back(v, c);
    }
    a.bound = -constant;
    if (a.terms.empty()) {
      const bool truth = a.is_eq ? (a.bound == 0) : (0 <= a.bound);
      return mk_lit(true_var_, !truth);
    }
    if (a.is_eq) {
      // Divisibility cut at translation time: Σ c·x = b with gcd(c) ∤ b
      // has no integer solution, so the atom is the constant false (and
      // its negation, the disequality, the constant true) — no search
      // ever has to discover it.
      std::int64_t g = 0;
      for (const auto& [v, c] : a.terms) g = std::gcd(g, c < 0 ? -c : c);
      if (g > 1 && a.bound % g != 0) return mk_lit(true_var_, true);
    }
    if (a.is_eq && a.terms[0].second < 0) {  // canonical sign for dedup
      for (auto& t : a.terms) t.second = -t.second;
      a.bound = -a.bound;
    }
    std::string key(a.is_eq ? "=" : "<");
    for (const auto& [v, c] : a.terms) {
      key += std::to_string(v) + "*" + std::to_string(c) + ",";
    }
    key += std::to_string(a.bound);
    auto it = atom_index_.find(key);
    if (it != atom_index_.end()) return mk_lit(it->second, false);

    const StaticRow le{a.terms, a.bound};
    StaticRow flipped;
    flipped.terms = a.terms;
    for (auto& t : flipped.terms) t.second = -t.second;
    if (a.is_eq) {
      flipped.bound = -a.bound;
      a.when_true = {le, flipped};  // when_false stays empty: disequality
    } else {
      flipped.bound = -a.bound - 1;  // ¬(Σ ≤ b)  ⇔  -Σ ≤ -b-1
      a.when_true = {le};
      a.when_false = {flipped};
    }
    const int v = new_bvar();
    const int ai = static_cast<int>(atoms_.size());
    atom_of_var_[v] = ai;
    atom_var_.push_back(v);
    for (const auto& [iv, c] : a.terms) {
      (void)c;
      if (static_cast<std::size_t>(iv) >= atom_occ_.size()) {
        atom_occ_.resize(static_cast<std::size_t>(iv) + 1);
      }
      atom_occ_[static_cast<std::size_t>(iv)].push_back(ai);
    }
    atoms_.push_back(std::move(a));
    atom_index_.emplace(std::move(key), v);
    return mk_lit(v, false);
  }

  Lit translate_bool(ExprId id) {
    auto memo = lit_memo_.find(id);
    if (memo != lit_memo_.end()) return memo->second;
    const Node& n = f_.node(id);
    Lit res = 0;
    switch (n.op) {
      case Op::BoolConst: res = mk_lit(true_var_, n.value == 0); break;
      case Op::BoolVar: {
        const int v = new_bvar();
        named_bools_.emplace_back(v, n.name);
        res = mk_lit(v, false);
        break;
      }
      case Op::Not: res = neg(translate_bool(n.kids[0])); break;
      case Op::And: {
        const Lit g = mk_lit(new_bvar(), false);
        std::vector<Lit> big{g};
        for (ExprId kid : n.kids) {
          const Lit k = translate_bool(kid);
          add_clause({neg(g), k});
          big.push_back(neg(k));
        }
        add_clause(std::move(big));
        res = g;
        break;
      }
      case Op::Or: {
        const Lit g = mk_lit(new_bvar(), false);
        std::vector<Lit> big{neg(g)};
        for (ExprId kid : n.kids) {
          const Lit k = translate_bool(kid);
          add_clause({g, neg(k)});
          big.push_back(k);
        }
        add_clause(std::move(big));
        res = g;
        break;
      }
      case Op::Implies: {
        const Lit a = translate_bool(n.kids[0]);
        const Lit b = translate_bool(n.kids[1]);
        const Lit g = mk_lit(new_bvar(), false);  // g ↔ (¬a ∨ b)
        add_clause({neg(g), neg(a), b});
        add_clause({g, a});
        add_clause({g, neg(b)});
        res = g;
        break;
      }
      case Op::Iff: {
        const Lit a = translate_bool(n.kids[0]);
        const Lit b = translate_bool(n.kids[1]);
        const Lit g = mk_lit(new_bvar(), false);  // g ↔ (a ↔ b)
        add_clause({neg(g), neg(a), b});
        add_clause({neg(g), a, neg(b)});
        add_clause({g, a, b});
        add_clause({g, neg(a), neg(b)});
        res = g;
        break;
      }
      case Op::Eq:
      case Op::Le:
        res = translate_atom(n);
        break;
      default:
        throw std::logic_error("native solver: expected boolean expression");
    }
    lit_memo_.emplace(id, res);
    return res;
  }

  // ----------------------------------------------------------------- search

  // The deadline is polled in *every* potentially long loop — boolean
  // propagation, interval tightening, the entailed-atom rescan, value
  // enumeration and node expansion in branch-and-bound — so timeout_ms is
  // honored promptly even on divergent flow systems whose interval
  // fixpoint walks bounds one unit at a time.
  void bump_ops() {
    if (deadline_active_ && (++ops_ & 0x3ff) == 0 && Clock::now() > deadline_) {
      throw Timeout{};
    }
  }

  [[nodiscard]] Val value_lit(Lit l) const {
    const Val v = assign_[static_cast<std::size_t>(var_of(l))];
    if (v == kUndef) return kUndef;
    return is_neg(l) ? (v == kTrue ? kFalse : kTrue) : v;
  }

  [[nodiscard]] int current_level() const {
    return static_cast<int>(levels_.size());
  }

  bool enqueue(Lit l, int reason) {
    const int v = var_of(l);
    const Val want = is_neg(l) ? kFalse : kTrue;
    const Val cur = assign_[static_cast<std::size_t>(v)];
    if (cur != kUndef) return cur == want;
    assign_[static_cast<std::size_t>(v)] = want;
    reason_[static_cast<std::size_t>(v)] = reason;
    level_[static_cast<std::size_t>(v)] = current_level();
    trail_.push_back(l);
    if (reason != kReasonNone) ++mutable_stats().propagations;
    return true;
  }

  /// Unit propagation over the watch lists; returns the index of a
  /// conflicting clause, or -1 at fixpoint.
  int propagate_bool() {
    while (qhead_ < trail_.size()) {
      bump_ops();
      const Lit l = trail_[qhead_++];
      const Lit fl = neg(l);
      auto& ws = watches_[static_cast<std::size_t>(fl)];
      std::size_t i = 0;
      std::size_t keep = 0;
      int conflict = -1;
      while (i < ws.size()) {
        const int ci = ws[i];
        Clause& cl = cls_[static_cast<std::size_t>(ci)];
        if (cl.deleted) {  // lazily drop tombstoned watch entries
          ++i;
          continue;
        }
        auto& c = cl.lits;
        if (c[0] == fl) std::swap(c[0], c[1]);
        if (value_lit(c[0]) == kTrue) {  // clause already satisfied
          ws[keep++] = ws[i++];
          continue;
        }
        bool moved = false;
        for (std::size_t k = 2; k < c.size(); ++k) {
          if (value_lit(c[k]) != kFalse) {
            std::swap(c[1], c[k]);
            watches_[static_cast<std::size_t>(c[1])].push_back(ci);
            moved = true;
            break;
          }
        }
        if (moved) {
          ++i;  // watch migrated away from fl
          continue;
        }
        if (cl.prior) ++mutable_stats().learned_hits;  // cross-check reuse
        if (!enqueue(c[0], ci)) {  // unit clause contradicted
          conflict = ci;
          while (i < ws.size()) ws[keep++] = ws[i++];
          break;
        }
        ws[keep++] = ws[i++];
      }
      ws.resize(keep);
      if (conflict >= 0) return conflict;
    }
    return -1;
  }

  // Undo entries are deduplicated per era (one per variable side between
  // two restore points): interval propagation on an infeasible integer
  // cycle can walk a bound by 1 for billions of steps, and logging every
  // *value* would exhaust memory long before the tightening budget
  // triggers. The provenance log (blog_) is NOT deduplicated — each
  // derivation appends one entry so explanations can walk derivation
  // time — but it is rewound in lockstep with every undo mark and its
  // growth between marks is bounded by the same tightening budget.
  void set_bound(int v, bool is_hi, std::int64_t val, int src) {
    auto& slot = is_hi ? hi_[static_cast<std::size_t>(v)]
                       : lo_[static_cast<std::size_t>(v)];
    auto& stamp = is_hi ? hi_stamp_[static_cast<std::size_t>(v)]
                        : lo_stamp_[static_cast<std::size_t>(v)];
    if (stamp != undo_era_) {
      stamp = undo_era_;
      undo_.push_back(UndoEntry{v, is_hi, slot});
    }
    slot = val;
    const int node = bnode(v, is_hi);
    blog_.push_back(BoundLog{node, src,
                             bhead_[static_cast<std::size_t>(node)]});
    bhead_[static_cast<std::size_t>(node)] =
        static_cast<int>(blog_.size()) - 1;
    if (dirty_stamp_[static_cast<std::size_t>(v)] != dirty_gen_) {
      dirty_stamp_[static_cast<std::size_t>(v)] = dirty_gen_;
      dirty_vars_.push_back(v);
    }
  }

  void undo_to(std::size_t mark) {
    while (undo_.size() > mark) {
      const UndoEntry& u = undo_.back();
      (u.is_hi ? hi_[static_cast<std::size_t>(u.var)]
               : lo_[static_cast<std::size_t>(u.var)]) = u.old_bound;
      undo_.pop_back();
    }
    ++undo_era_;  // stamps from before the restore are no longer valid
  }

  void rewind_blog(std::size_t mark) {
    while (blog_.size() > mark) {
      bhead_[static_cast<std::size_t>(blog_.back().node)] = blog_.back().prev;
      blog_.pop_back();
    }
  }

  void activate_row(const StaticRow* r, Lit cause) {
    const int ri = static_cast<int>(active_rows_.size());
    active_rows_.push_back(r);
    active_row_lit_.push_back(cause);
    for (const auto& [v, c] : r->terms) {
      (void)c;
      row_occ_[static_cast<std::size_t>(v)].push_back(ri);
    }
    row_work_.push_back(ri);
  }

  void deactivate_rows_to(std::size_t mark) {
    while (active_rows_.size() > mark) {
      const StaticRow* r = active_rows_.back();
      for (const auto& [v, c] : r->terms) {
        (void)c;
        row_occ_[static_cast<std::size_t>(v)].pop_back();
      }
      active_rows_.pop_back();
      active_row_lit_.pop_back();
    }
  }

  /// Interval tightening to fixpoint over the worklist; true on conflict.
  /// Bounded: an infeasible integer cycle makes the fixpoint walk bounds
  /// one unit per lap (no finite convergence), so refinement stops after a
  /// budget proportional to the active system — sound, merely less
  /// pruning, and the leaf search degrades the verdict to Unknown.
  /// Final sweep after an exhausted tightening budget: the LIFO worklist
  /// can starve a row that is already violated by the walked bounds (the
  /// divergent lap keeps re-queuing itself on top), so check every active
  /// row once before giving up — a definite conflict beats an Unknown
  /// leaf.
  bool scan_violated_row() {
    for (std::size_t ri = 0; ri < active_rows_.size(); ++ri) {
      bump_ops();
      const StaticRow& r = *active_rows_[ri];
      __int128 minsum = 0;
      bool finite = true;
      for (const auto& [v, c] : r.terms) {
        const std::int64_t b = c > 0 ? lo_[static_cast<std::size_t>(v)]
                                     : hi_[static_cast<std::size_t>(v)];
        if (b == kNegInf || b == kPosInf) {
          finite = false;
          break;
        }
        minsum += static_cast<__int128>(c) * b;
      }
      if (finite && minsum > r.bound) {
        conflict_row_ = static_cast<int>(ri);
        conflict_var_ = -1;
        return true;
      }
    }
    return false;
  }

  /// Exact fallback for an exhausted tightening budget: on divergent
  /// systems — some active variable still unbounded; a bounded system's
  /// fixpoint always converges, it is merely large — the rational simplex
  /// decides the active rows (plus branch-and-bound pins) outright. An
  /// infeasibility lands its Farkas tags in sconf_rows_/sconf_pins_ and
  /// becomes the theory conflict, so an infeasible unbounded flow cycle is
  /// refuted in a handful of pivots instead of walked one unit at a time.
  bool simplex_refute() {
    bool unbounded = false;
    for (const StaticRow* r : active_rows_) {
      for (const auto& [v, c] : r->terms) {
        (void)c;
        if (lo_[static_cast<std::size_t>(v)] == kNegInf ||
            hi_[static_cast<std::size_t>(v)] == kPosInf) {
          unbounded = true;
          break;
        }
      }
      if (unbounded) break;
    }
    if (!unbounded) return false;
    const SimplexTheory::Result res =
        stx_.check(active_rows_, pin_trail_, /*integer_complete=*/false);
    sync_theory_stats();
    if (res.verdict != SimplexTheory::Verdict::Infeasible) return false;
    sconf_rows_ = res.conflict_rows;
    sconf_pins_ = res.conflict_pins;
    conflict_row_ = -1;
    conflict_var_ = -1;
    return true;
  }

  void sync_theory_stats() {
    mutable_stats().theory_pivots = stx_.pivots();
    mutable_stats().farkas_explanations = stx_.explanations();
  }

  /// Turns the pending simplex conflict into theory_conflict_ literals:
  /// the negated activating atoms of the Farkas rows. The ≤/≥ rows of one
  /// equality atom share a literal, hence the dedup.
  void emit_simplex_conflict() {
    for (const int ri : sconf_rows_) {
      theory_conflict_.push_back(
          neg(active_row_lit_[static_cast<std::size_t>(ri)]));
    }
    std::sort(theory_conflict_.begin(), theory_conflict_.end());
    theory_conflict_.erase(
        std::unique(theory_conflict_.begin(), theory_conflict_.end()),
        theory_conflict_.end());
    sconf_rows_.clear();
    sconf_pins_.clear();
  }

  bool propagate_rows() {
    std::uint64_t budget = 64 * active_rows_.size() + 1024;
    while (!row_work_.empty()) {
      if (budget == 0) {
        row_work_.clear();
        if (scan_violated_row()) return true;
        return simplex_refute();
      }
      bump_ops();
      const int ri = row_work_.back();
      row_work_.pop_back();
      const StaticRow& r = *active_rows_[static_cast<std::size_t>(ri)];

      __int128 minsum = 0;
      int ninf = 0;
      for (const auto& [v, c] : r.terms) {
        const std::int64_t b =
            c > 0 ? lo_[static_cast<std::size_t>(v)] : hi_[static_cast<std::size_t>(v)];
        if (b == kNegInf || b == kPosInf) ++ninf;
        else minsum += static_cast<__int128>(c) * b;
      }
      if (ninf == 0 && minsum > r.bound) {
        conflict_row_ = ri;
        conflict_var_ = -1;
        row_work_.clear();
        return true;
      }
      for (const auto& [v, c] : r.terms) {
        bump_ops();
        const std::int64_t b =
            c > 0 ? lo_[static_cast<std::size_t>(v)] : hi_[static_cast<std::size_t>(v)];
        const bool self_inf = (b == kNegInf || b == kPosInf);
        if (ninf - (self_inf ? 1 : 0) > 0) continue;  // another var unbounded
        const __int128 rest =
            self_inf ? minsum : minsum - static_cast<__int128>(c) * b;
        const __int128 slack = static_cast<__int128>(r.bound) - rest;
        // Derived bounds are clamped only toward looseness: a bound beyond
        // +/-kBoundClamp is either dropped (no information) or relaxed to
        // the clamp, never tightened past what the row entails — claiming
        // a tighter bound than entailed could turn Sat into Unsat.
        bool changed = false;
        if (c > 0) {  // c·v ≤ slack  →  v ≤ ⌊slack/c⌋
          const __int128 nb = floor_div(slack, c);
          if (nb <= kBoundClamp && nb < hi_[static_cast<std::size_t>(v)]) {
            set_bound(v, true,
                      nb < -kBoundClamp ? -kBoundClamp
                                        : static_cast<std::int64_t>(nb),
                      ri);
            changed = true;
          }
        } else {  // c·v ≤ slack, c<0  →  v ≥ ⌈slack/c⌉ = -⌊slack/(-c)⌋
          const __int128 nb = -floor_div(slack, -c);
          if (nb >= -kBoundClamp && nb > lo_[static_cast<std::size_t>(v)]) {
            set_bound(v, false,
                      nb > kBoundClamp ? kBoundClamp
                                       : static_cast<std::int64_t>(nb),
                      ri);
            changed = true;
          }
        }
        if (changed) {
          --budget;
          if (lo_[static_cast<std::size_t>(v)] > hi_[static_cast<std::size_t>(v)]) {
            conflict_row_ = -1;
            conflict_var_ = v;  // lo/hi crossing: both sides' entries explain
            row_work_.clear();
            return true;
          }
          for (int rj : row_occ_[static_cast<std::size_t>(v)]) {
            row_work_.push_back(rj);
          }
          if (budget == 0) break;
        }
      }
    }
    return false;
  }

  /// Activates the theory rows of atoms assigned since the last call and
  /// re-runs bounds propagation; true on conflict.
  bool activate_theory() {
    row_work_.clear();
    for (; theory_head_ < trail_.size(); ++theory_head_) {
      const Lit l = trail_[theory_head_];
      const int v = var_of(l);
      const int ai = atom_of_var_[static_cast<std::size_t>(v)];
      if (ai < 0) continue;
      const Atom& a = atoms_[static_cast<std::size_t>(ai)];
      const bool tv = !is_neg(l);
      for (const StaticRow& r : tv ? a.when_true : a.when_false) {
        activate_row(&r, l);
      }
      if (a.is_eq && !tv) active_diseqs_.push_back(ai);
    }
    return propagate_rows();
  }

  // ---------------------------------------------- provenance explanations
  //
  // A derivation's justification is a walk over the chronological bound
  // log: entry e (row R derived this bound) is justified by R's
  // activating atom plus, for each min-side input of R, that input's
  // latest log entry OLDER than e. Walking derivation time — instead of
  // a mutable current-source graph — keeps the proof DAG acyclic and
  // grounded: self-referential tightening laps (row A tightens x from y,
  // row B re-tightens y from x) overwrite *current* sources and lose the
  // seed bound that grounded the lap, but the log still holds the full
  // chronology, so the seed's atoms are always recovered. The result is
  // a small, exact set of atoms (plus branch-and-bound pins) for every
  // theory deduction — the difference between re-refuting shared
  // substructure once per probe and learning it once, and load-bearing
  // for soundness: a conflict explained with too few atoms would learn a
  // clause the theory does not entail.

  // Provenance-graph node: bound side `is_hi` of integer variable v.
  static int bnode(int v, bool is_hi) { return 2 * v + (is_hi ? 1 : 0); }

  /// Latest log entry for `node` strictly older than entry `before`
  /// (pass blog_.size() for "now"); -1 when none.
  [[nodiscard]] int entry_before(int node, int before) const {
    int e = bhead_[static_cast<std::size_t>(node)];
    while (e >= before) e = blog_[static_cast<std::size_t>(e)].prev;
    return e;
  }

  void expl_begin() {
    if (row_seen_.size() < active_rows_.size()) {
      row_seen_.resize(active_rows_.size(), 0);
    }
    if (pin_seen_.size() < int_names_.size()) {
      pin_seen_.resize(int_names_.size(), 0);
    }
    if (entry_seen_.size() < blog_.size()) {
      entry_seen_.resize(blog_.size(), 0);
    }
    ++expl_gen_;
    expl_stack_.clear();
  }

  /// Appends `ri`'s negated activating atom once per explanation pass.
  void emit_row_atom(int ri, std::vector<Lit>* atoms_out) {
    if (atoms_out == nullptr) return;
    if (row_seen_[static_cast<std::size_t>(ri)] == expl_gen_) return;
    row_seen_[static_cast<std::size_t>(ri)] = expl_gen_;
    atoms_out->push_back(neg(active_row_lit_[static_cast<std::size_t>(ri)]));
  }

  void collect_pin(int var, std::vector<int>* pins_out) {
    if (pins_out == nullptr) return;
    if (pin_seen_[static_cast<std::size_t>(var)] == expl_gen_) return;
    pin_seen_[static_cast<std::size_t>(var)] = expl_gen_;
    pins_out->push_back(var);
  }

  /// Queues log entry `e` (>= 0) for justification.
  void expl_push(int e) {
    if (entry_seen_[static_cast<std::size_t>(e)] == expl_gen_) return;
    entry_seen_[static_cast<std::size_t>(e)] = expl_gen_;
    expl_stack_.push_back(e);
  }

  /// Queues the justification of row `ri` evaluated at log time `before`:
  /// its atom plus its min-side inputs' entries older than `before`.
  void expl_seed_row(int ri, int before, std::vector<Lit>* atoms_out) {
    emit_row_atom(ri, atoms_out);
    for (const auto& [u, c] :
         active_rows_[static_cast<std::size_t>(ri)]->terms) {
      const int e = entry_before(bnode(u, c < 0), before);
      if (e >= 0) expl_push(e);
    }
  }

  /// Drains the justification queue. Emits the negated activating atoms
  /// of every row encountered into `atoms_out` (skipped when null) and
  /// the pinned variables the derivations rest on into `pins_out`
  /// (skipped when null — pins cannot occur during boolean search).
  void expl_run(std::vector<Lit>* atoms_out, std::vector<int>* pins_out) {
    while (!expl_stack_.empty()) {
      bump_ops();
      const int e = expl_stack_.back();
      expl_stack_.pop_back();
      const BoundLog& le = blog_[static_cast<std::size_t>(e)];
      if (src_is_pin(le.src)) {
        collect_pin(pin_var(le.src), pins_out);
        continue;
      }
      const StaticRow& r = *active_rows_[static_cast<std::size_t>(le.src)];
      emit_row_atom(le.src, atoms_out);
      const int out_var = le.node >> 1;
      for (const auto& [u, c] : r.terms) {
        // The derivation consumed the row's min-side inputs (lo for
        // positive coefficients, hi for negative) of every term except
        // the output variable itself — its own opposite bound never
        // enters the slack.
        if (u == out_var) continue;
        const int f = entry_before(bnode(u, c < 0), e);
        if (f >= 0) expl_push(f);
      }
    }
  }

  /// Enqueues unassigned atom literals the current bounds entail, with an
  /// eagerly-stored provenance explanation (the few atoms whose rows
  /// produced the entailing bounds) so conflict analysis can resolve them;
  /// the boolean search then never has to rediscover them by conflict.
  /// Only atoms over variables whose bounds changed since the last scan
  /// are re-evaluated (set_bound records them in dirty_vars_).
  bool propagate_entailed_atoms() {
    bool any = false;
    scan_stamp_.resize(atoms_.size(), 0);
    ++scan_gen_;
    for (std::size_t at = 0; at < dirty_vars_.size(); ++at) {
      const int iv = dirty_vars_[at];
      if (static_cast<std::size_t>(iv) >= atom_occ_.size()) continue;
      for (const int ai : atom_occ_[static_cast<std::size_t>(iv)]) {
        bump_ops();
        if (scan_stamp_[static_cast<std::size_t>(ai)] == scan_gen_) continue;
        scan_stamp_[static_cast<std::size_t>(ai)] = scan_gen_;
        const int v = atom_var_[static_cast<std::size_t>(ai)];
        if (assign_[static_cast<std::size_t>(v)] != kUndef) continue;
        const Atom& a = atoms_[static_cast<std::size_t>(ai)];
        int entailed = 0;  // +1 atom true, -1 atom false
        expl_begin();
        const int now = static_cast<int>(blog_.size());
        // Seed the walk with the bound entries the decisive row status
        // read: min-side bounds for a forced-false row (its minimum
        // already exceeds the bound), max-side bounds for forced-true.
        auto seed_sides = [&](const StaticRow& r, bool min_side) {
          for (const auto& [u, c] : r.terms) {
            const int e = entry_before(bnode(u, min_side ? c < 0 : c > 0), now);
            if (e >= 0) expl_push(e);
          }
        };
        if (!a.is_eq) {
          entailed = row_status(a.when_true[0]);
          if (entailed != 0) seed_sides(a.when_true[0], entailed < 0);
        } else {
          const int s0 = row_status(a.when_true[0]);
          const int s1 = row_status(a.when_true[1]);
          if (s0 < 0 || s1 < 0) {
            entailed = -1;
            seed_sides(a.when_true[s0 < 0 ? 0 : 1], true);
          } else if (s0 > 0 && s1 > 0) {
            entailed = +1;
            seed_sides(a.when_true[0], false);
            seed_sides(a.when_true[1], false);
          }
        }
        if (entailed != 0) {
          // Explanation must be captured now: bounds keep tightening
          // after this enqueue, and a later snapshot could cite atoms
          // assigned *after* this literal, breaking the analyzer's
          // reverse-trail walk.
          expl_scratch_.clear();
          expl_run(&expl_scratch_, nullptr);
          expl_off_[static_cast<std::size_t>(v)] =
              static_cast<std::uint32_t>(expl_pool_.size());
          expl_len_[static_cast<std::size_t>(v)] =
              static_cast<std::uint32_t>(expl_scratch_.size());
          expl_pool_.insert(expl_pool_.end(), expl_scratch_.begin(),
                            expl_scratch_.end());
          const bool ok = enqueue(mk_lit(v, entailed < 0), kReasonTheory);
          (void)ok;  // the variable was unassigned
          any = true;
        }
      }
    }
    clear_dirty();
    return any;
  }

  void clear_dirty() {
    dirty_vars_.clear();
    ++dirty_gen_;
  }

  struct Conflict {
    enum Kind { kNone, kClause, kTheory } kind = kNone;
    int ci = -1;  // kClause only
  };

  Conflict propagate_all() {
    for (;;) {
      const int ci = propagate_bool();
      if (ci >= 0) return {Conflict::kClause, ci};
      if (theory_head_ != trail_.size()) {
        if (activate_theory()) return {Conflict::kTheory, -1};
        continue;  // theory may tighten bounds; rescan atoms below
      }
      if (!propagate_entailed_atoms()) return {Conflict::kNone, -1};
    }
  }

  /// Entailment of an atom's ≤-row under the current bounds: +1 forced
  /// true, -1 forced false, 0 open.
  int row_status(const StaticRow& r) const {
    __int128 minsum = 0, maxsum = 0;
    int min_inf = 0, max_inf = 0;
    for (const auto& [v, c] : r.terms) {
      const std::int64_t lo = lo_[static_cast<std::size_t>(v)];
      const std::int64_t hi = hi_[static_cast<std::size_t>(v)];
      const std::int64_t toward_min = c > 0 ? lo : hi;
      const std::int64_t toward_max = c > 0 ? hi : lo;
      if (toward_min == kNegInf || toward_min == kPosInf) ++min_inf;
      else minsum += static_cast<__int128>(c) * toward_min;
      if (toward_max == kNegInf || toward_max == kPosInf) ++max_inf;
      else maxsum += static_cast<__int128>(c) * toward_max;
    }
    if (min_inf == 0 && minsum > r.bound) return -1;
    if (max_inf == 0 && maxsum <= r.bound) return +1;
    return 0;
  }

  /// Phase for deciding a variable: for atoms, follow what the bounds
  /// already entail so the first branch is not an immediate theory
  /// conflict; otherwise the saved polarity (phase saving — seeded from
  /// the previous check's final assignment, updated on every unassign),
  /// defaulting to false.
  bool decide_phase_negated(int v) const {
    const int ai = atom_of_var_[static_cast<std::size_t>(v)];
    if (ai >= 0) {
      const Atom& a = atoms_[static_cast<std::size_t>(ai)];
      if (!a.is_eq) {
        const int s = row_status(a.when_true[0]);
        if (s != 0) return s < 0;
      } else {
        const int s0 = row_status(a.when_true[0]);
        const int s1 = row_status(a.when_true[1]);
        if (s0 < 0 || s1 < 0) return true;
        if (s0 > 0 && s1 > 0) return false;
      }
    }
    if (polarity_[static_cast<std::size_t>(v)] != kUndef) {
      return polarity_[static_cast<std::size_t>(v)] == kFalse;
    }
    return true;
  }

  // -------------------------------------------------- activity heap (VSIDS)

  void heap_swap(std::size_t i, std::size_t j) {
    std::swap(heap_[i], heap_[j]);
    heap_pos_[static_cast<std::size_t>(heap_[i])] = static_cast<int>(i);
    heap_pos_[static_cast<std::size_t>(heap_[j])] = static_cast<int>(j);
  }

  void heap_up(std::size_t i) {
    while (i > 0) {
      const std::size_t p = (i - 1) / 2;
      if (activity_[static_cast<std::size_t>(heap_[i])] <=
          activity_[static_cast<std::size_t>(heap_[p])]) {
        break;
      }
      heap_swap(i, p);
      i = p;
    }
  }

  void heap_down(std::size_t i) {
    for (;;) {
      const std::size_t l = 2 * i + 1;
      const std::size_t r = l + 1;
      std::size_t best = i;
      if (l < heap_.size() &&
          activity_[static_cast<std::size_t>(heap_[l])] >
              activity_[static_cast<std::size_t>(heap_[best])]) {
        best = l;
      }
      if (r < heap_.size() &&
          activity_[static_cast<std::size_t>(heap_[r])] >
              activity_[static_cast<std::size_t>(heap_[best])]) {
        best = r;
      }
      if (best == i) break;
      heap_swap(i, best);
      i = best;
    }
  }

  void heap_insert(int v) {
    if (heap_pos_[static_cast<std::size_t>(v)] >= 0) return;
    heap_pos_[static_cast<std::size_t>(v)] = static_cast<int>(heap_.size());
    heap_.push_back(v);
    heap_up(heap_.size() - 1);
  }

  int heap_pop() {
    const int v = heap_[0];
    heap_pos_[static_cast<std::size_t>(v)] = -1;
    if (heap_.size() > 1) {
      heap_[0] = heap_.back();
      heap_pos_[static_cast<std::size_t>(heap_[0])] = 0;
    }
    heap_.pop_back();
    if (!heap_.empty()) heap_down(0);
    return v;
  }

  void bump_var(int v) {
    activity_[static_cast<std::size_t>(v)] += var_inc_;
    if (activity_[static_cast<std::size_t>(v)] > kVarActRescale) {
      for (double& a : activity_) a *= 1.0 / kVarActRescale;
      var_inc_ *= 1.0 / kVarActRescale;
    }
    if (heap_pos_[static_cast<std::size_t>(v)] >= 0) {
      heap_up(static_cast<std::size_t>(heap_pos_[static_cast<std::size_t>(v)]));
    }
  }

  void bump_clause(int ci) {
    Clause& c = cls_[static_cast<std::size_t>(ci)];
    if (!c.learned) return;
    c.act += cla_inc_;
    if (c.act > kClaActRescale) {
      for (Clause& cl : cls_) {
        if (cl.learned) cl.act *= 1.0 / kClaActRescale;
      }
      cla_inc_ *= 1.0 / kClaActRescale;
    }
  }

  int pick_branch() {
    while (!heap_.empty()) {
      const int v = heap_pop();
      if (assign_[static_cast<std::size_t>(v)] == kUndef) return v;
    }
    return -1;
  }

  // ------------------------------------------------------- levels, backjump

  struct LevelMark {
    std::size_t trail, rows, diseqs, undo, expl, blog;
  };

  void push_level() {
    ++undo_era_;
    levels_.push_back(LevelMark{trail_.size(), active_rows_.size(),
                                active_diseqs_.size(), undo_.size(),
                                expl_pool_.size(), blog_.size()});
  }

  /// Unwinds to `target` decision levels, saving polarities and
  /// re-inserting unassigned variables into the activity heap.
  void backjump(int target) {
    if (current_level() <= target) return;
    const LevelMark mark = levels_[static_cast<std::size_t>(target)];
    for (std::size_t i = trail_.size(); i > mark.trail; --i) {
      const int v = var_of(trail_[i - 1]);
      polarity_[static_cast<std::size_t>(v)] =
          assign_[static_cast<std::size_t>(v)];
      assign_[static_cast<std::size_t>(v)] = kUndef;
      reason_[static_cast<std::size_t>(v)] = kReasonNone;
      heap_insert(v);
    }
    trail_.resize(mark.trail);
    qhead_ = mark.trail;
    theory_head_ = mark.trail;
    deactivate_rows_to(mark.rows);
    active_diseqs_.resize(mark.diseqs);
    undo_to(mark.undo);
    rewind_blog(mark.blog);
    expl_pool_.resize(mark.expl);
    row_work_.clear();
    clear_dirty();  // loosened bounds cannot newly entail anything
    levels_.resize(static_cast<std::size_t>(target));
    prefix_placed_ = std::min(prefix_placed_, target);
    prefix_levels_ = std::min(prefix_levels_, target);
  }

  // --------------------------------------------------- learning (first UIP)

  /// Collects the negations of the assigned theory-atom literals that can
  /// participate in a theory deduction: row-activating literals always;
  /// disequality literals only when `with_diseqs` (they prune leaves, not
  /// bounds). `limit` bounds the trail prefix (explanations of an entailed
  /// atom may only use literals assigned before it).
  void collect_theory_lits(bool with_diseqs, std::size_t limit,
                           std::vector<Lit>& out) const {
    for (std::size_t i = 0; i < limit; ++i) {
      const Lit l = trail_[i];
      const int v = var_of(l);
      if (level_[static_cast<std::size_t>(v)] == 0) continue;  // permanent
      const int ai = atom_of_var_[static_cast<std::size_t>(v)];
      if (ai < 0) continue;
      const Atom& a = atoms_[static_cast<std::size_t>(ai)];
      const bool tv = !is_neg(l);
      const bool activates = !(tv ? a.when_true : a.when_false).empty();
      const bool diseq = a.is_eq && !tv;
      if (activates || (with_diseqs && diseq)) out.push_back(neg(l));
    }
  }

  /// First-UIP conflict analysis. `conflict` holds currently-false
  /// literals whose conjunction of negations is refuted; at least one must
  /// be at the current decision level. Produces learnt_ (learnt_[0] is the
  /// asserting literal, learnt_[1] — when present — the backjump-level
  /// watch) and returns the backjump level; lbd_out gets the clause's LBD.
  ///
  /// Resolution walks the trail in reverse. Clause-propagated literals
  /// resolve with their reason clause; theory-propagated literals resolve
  /// with the explanation "the row-activating atoms assigned before me
  /// entail me" (a valid theory lemma); decisions and assumption-level
  /// literals stay in the clause. Level-0 literals are dropped — level 0
  /// holds only permanent material, so the drop never hides a retractable
  /// dependency.
  int analyze(const std::vector<Lit>& conflict, int conflict_ci,
              int& lbd_out) {
    const int clevel = current_level();
    learnt_.assign(1, 0);  // slot 0: asserting literal, filled at the end
    int counter = 0;
    auto consider = [&](Lit q) {
      const int v = var_of(q);
      if (seen_[static_cast<std::size_t>(v)] ||
          level_[static_cast<std::size_t>(v)] == 0) {
        return;
      }
      seen_[static_cast<std::size_t>(v)] = 1;
      to_clear_.push_back(v);
      bump_var(v);
      if (level_[static_cast<std::size_t>(v)] >= clevel) ++counter;
      else learnt_.push_back(q);
    };
    for (Lit q : conflict) consider(q);
    if (conflict_ci >= 0) bump_clause(conflict_ci);

    Lit p = 0;
    std::size_t idx = trail_.size();
    for (;;) {
      while (!seen_[static_cast<std::size_t>(var_of(trail_[idx - 1]))]) --idx;
      p = trail_[--idx];
      const int v = var_of(p);
      seen_[static_cast<std::size_t>(v)] = 0;
      if (--counter == 0) break;
      const int r = reason_[static_cast<std::size_t>(v)];
      if (r == kReasonTheory) {
        // The eagerly-stored provenance explanation captured at enqueue
        // time: the negated atoms whose rows entailed this literal.
        const std::uint32_t off = expl_off_[static_cast<std::size_t>(v)];
        const std::uint32_t len = expl_len_[static_cast<std::size_t>(v)];
        for (std::uint32_t i = 0; i < len; ++i) consider(expl_pool_[off + i]);
      } else {
        // r >= 0: counter > 0 guarantees a resolvable (propagated) literal.
        bump_clause(r);
        for (Lit q : cls_[static_cast<std::size_t>(r)].lits) {
          if (q != p) consider(q);
        }
      }
    }
    learnt_[0] = neg(p);

    // Clause minimization: a literal is redundant when its reason clause
    // is subsumed by the rest of the learnt clause (every other reason
    // literal is already in the clause or permanent). Theory-propagated
    // and decision literals are conservatively kept.
    std::size_t j = 1;
    for (std::size_t i = 1; i < learnt_.size(); ++i) {
      const Lit q = learnt_[i];
      const int v = var_of(q);
      const int r = reason_[static_cast<std::size_t>(v)];
      bool redundant = r >= 0;
      if (redundant) {
        for (Lit u : cls_[static_cast<std::size_t>(r)].lits) {
          const int uv = var_of(u);
          if (uv == v) continue;
          if (!seen_[static_cast<std::size_t>(uv)] &&
              level_[static_cast<std::size_t>(uv)] > 0) {
            redundant = false;
            break;
          }
        }
      }
      if (!redundant) learnt_[j++] = q;
    }
    learnt_.resize(j);

    for (const int v : to_clear_) seen_[static_cast<std::size_t>(v)] = 0;
    to_clear_.clear();

    // Backjump level: the highest level below the asserting literal's;
    // that literal moves to slot 1 as the second watch.
    int bt = 0;
    if (learnt_.size() > 1) {
      std::size_t at = 1;
      for (std::size_t i = 2; i < learnt_.size(); ++i) {
        if (level_[static_cast<std::size_t>(var_of(learnt_[i]))] >
            level_[static_cast<std::size_t>(var_of(learnt_[at]))]) {
          at = i;
        }
      }
      std::swap(learnt_[1], learnt_[at]);
      bt = level_[static_cast<std::size_t>(var_of(learnt_[1]))];
    }

    // LBD: number of distinct decision levels in the clause.
    lbd_levels_.clear();
    for (const Lit q : learnt_) {
      lbd_levels_.push_back(level_[static_cast<std::size_t>(var_of(q))]);
    }
    std::sort(lbd_levels_.begin(), lbd_levels_.end());
    lbd_out = static_cast<int>(
        std::unique(lbd_levels_.begin(), lbd_levels_.end()) -
        lbd_levels_.begin());
    return bt;
  }

  /// Conflict analysis over the assumption prefix (MiniSat analyzeFinal):
  /// prefix literal `p` (entry `p_at` of assume_q_) came up false during
  /// placement, so the active assertions refute the already-placed prefix
  /// plus p. Walks the implication trail backwards from ¬p and collects
  /// every prefix literal the derivation rests on, then maps the involved
  /// literals back to this check's assumption expressions and stores them
  /// as the unsat core (scoped-root prefix entries are assertions, not
  /// assumptions, and are not reported).
  void analyze_final(Lit p, int p_at) {
    std::vector<ExprId> core;
    std::vector<char> used(assume_src_.size(), 0);
    auto add_source = [&](Lit q, int upto) {
      // Several prefix entries can share one literal (duplicate or
      // entailed assumptions); every matching assumption up to the failing
      // entry was genuinely placed, so each is part of the refutation.
      for (int i = 0; i <= upto && i < static_cast<int>(assume_q_.size());
           ++i) {
        if (assume_q_[static_cast<std::size_t>(i)] != q ||
            used[static_cast<std::size_t>(i)] != 0) {
          continue;
        }
        used[static_cast<std::size_t>(i)] = 1;
        if (assume_src_[static_cast<std::size_t>(i)] >= 0) {
          core.push_back(check_assumptions_->at(
              static_cast<std::size_t>(assume_src_[static_cast<std::size_t>(i)])));
        }
      }
    };
    add_source(p, p_at);  // the failing assumption itself
    if (level_[static_cast<std::size_t>(var_of(p))] > 0) {
      seen_[static_cast<std::size_t>(var_of(p))] = 1;
      for (std::size_t i = trail_.size(); i-- > 0;) {
        const int v = var_of(trail_[i]);
        if (!seen_[static_cast<std::size_t>(v)]) continue;
        seen_[static_cast<std::size_t>(v)] = 0;
        const int r = reason_[static_cast<std::size_t>(v)];
        if (r == kReasonNone) {
          // Level > 0 with no reason: during prefix placement every such
          // literal is a placed prefix entry (heuristic decisions cannot
          // precede an unplaced prefix literal).
          add_source(trail_[i], p_at);
        } else if (r == kReasonTheory) {
          const std::uint32_t off = expl_off_[static_cast<std::size_t>(v)];
          const std::uint32_t len = expl_len_[static_cast<std::size_t>(v)];
          for (std::uint32_t k = 0; k < len; ++k) {
            const int u = var_of(expl_pool_[off + k]);
            if (level_[static_cast<std::size_t>(u)] > 0) {
              seen_[static_cast<std::size_t>(u)] = 1;
            }
          }
        } else {
          for (const Lit q : cls_[static_cast<std::size_t>(r)].lits) {
            const int u = var_of(q);
            if (u != v && level_[static_cast<std::size_t>(u)] > 0) {
              seen_[static_cast<std::size_t>(u)] = 1;
            }
          }
        }
      }
    }
    store_core(std::move(core));
  }

  /// Learns from a conflict (clause index `ci`, or a theory conflict when
  /// ci < 0): analyzes, backjumps, attaches the learnt clause and asserts
  /// its first literal. Returns false when the conflict is at level 0 —
  /// the check is decided. Clauses learned after this check saw an
  /// Unknown-degraded leaf are tainted: any of them may transitively
  /// depend on an unproven refutation, so they all die at the next check.
  bool resolve_conflict(const std::vector<Lit>& conflict, int ci) {
    ++mutable_stats().conflicts;
    int clevel = 0;
    for (const Lit q : conflict) {
      clevel = std::max(clevel, level_[static_cast<std::size_t>(var_of(q))]);
    }
    if (clevel == 0) return false;
    // Leaf/theory conflicts may not involve the innermost decisions (e.g.
    // a pure gate-variable decision after the last atom): analyze at the
    // highest level that actually participates.
    backjump(clevel);
    int lbd = 0;
    const int bt = analyze(conflict, ci, lbd);
    backjump(bt);
    const bool tainted = saw_unknown_;
    ++mutable_stats().learned_clauses;
    if (learnt_.size() == 1) {
      // Unit consequence: permanent — re-asserted at level 0 of every
      // later check via def_units_ — unless tainted, in which case it
      // lives only on this check's trail and dies with it.
      if (!tainted) def_units_.push_back(learnt_[0]);
      const bool ok = enqueue(learnt_[0], kReasonNone);
      (void)ok;  // unassigned: its level was above the backjump target
    } else {
      Clause cl;
      cl.lits = learnt_;
      cl.act = cla_inc_;
      cl.lbd = lbd;
      cl.learned = true;
      cl.tainted = tainted;
      const int lci = static_cast<int>(cls_.size());
      cls_.push_back(std::move(cl));
      ++num_learned_live_;
      num_tainted_ += tainted ? 1 : 0;
      watches_[static_cast<std::size_t>(cls_.back().lits[0])].push_back(lci);
      watches_[static_cast<std::size_t>(cls_.back().lits[1])].push_back(lci);
      const bool ok = enqueue(learnt_[0], lci);
      (void)ok;
    }
    var_inc_ *= kVarActInc;
    cla_inc_ *= kClaActInc;
    ++conflicts_since_restart_;
    return true;
  }

  /// Luby-scheduled restart (back to the assumption prefix — re-deciding
  /// assumptions would only redo identical propagation) and LBD/activity
  /// clause-database reduction.
  void maybe_restart_or_reduce() {
    if (conflicts_since_restart_ >= restart_limit_) {
      ++mutable_stats().restarts;
      conflicts_since_restart_ = 0;
      restart_limit_ = luby(++restart_seq_) * kRestartBase;
      backjump(std::min(prefix_levels_, current_level()));
    }
    if (num_learned_live_ >= kReduceBase + kReduceInc * num_reductions_) {
      reduce_db();
    }
  }

  /// Deletes the worst half of the deletable learned clauses (kept: small
  /// LBD, binary, and locked clauses — those currently acting as a reason).
  /// Deletion is a tombstone; watch entries drop lazily and the arena is
  /// compacted at the next check boundary.
  void reduce_db() {
    ++num_reductions_;
    arena_has_tombstones_ = true;
    reduce_order_.clear();
    for (std::size_t ci = 0; ci < cls_.size(); ++ci) {
      const Clause& c = cls_[ci];
      if (!c.learned || c.deleted || c.lbd <= 2 || c.lits.size() <= 2) {
        continue;
      }
      const int v = var_of(c.lits[0]);
      const bool locked =
          assign_[static_cast<std::size_t>(v)] != kUndef &&
          reason_[static_cast<std::size_t>(v)] == static_cast<int>(ci);
      if (!locked) reduce_order_.push_back(static_cast<int>(ci));
    }
    // Worst first: highest LBD, then lowest activity; delete half.
    std::sort(reduce_order_.begin(), reduce_order_.end(),
              [this](int a, int b) {
                const Clause& ca = cls_[static_cast<std::size_t>(a)];
                const Clause& cb = cls_[static_cast<std::size_t>(b)];
                if (ca.lbd != cb.lbd) return ca.lbd > cb.lbd;
                if (ca.act != cb.act) return ca.act < cb.act;
                return a < b;  // deterministic tie-break
              });
    const std::size_t victims = reduce_order_.size() / 2;
    for (std::size_t i = 0; i < victims; ++i) {
      Clause& c = cls_[static_cast<std::size_t>(reduce_order_[i])];
      c.deleted = true;
      c.lits.clear();
      c.lits.shrink_to_fit();
      --num_learned_live_;
      ++mutable_stats().deleted_clauses;
    }
  }

  // ------------------------------------------------------------ leaf search

  void capture_model() {
    Model m;
    for (const auto& [v, name] : named_bools_) {
      if (assign_[static_cast<std::size_t>(v)] != kUndef) {
        m.set_bool(name, assign_[static_cast<std::size_t>(v)] == kTrue);
      }
    }
    for (std::size_t v = 0; v < int_names_.size(); ++v) {
      if (lo_[v] != kNegInf && lo_[v] == hi_[v]) {
        m.set_int(int_names_[v], lo_[v]);
      }
    }
    store_model(std::move(m));
  }

  /// Expands provenance seeds transitively and collects the *pinned*
  static bool pins_contain(const std::vector<int>& pins, int v) {
    return std::find(pins.begin(), pins.end(), v) != pins.end();
  }

  /// Queues the justification of the conflict propagate_rows just
  /// reported, evaluated at the current end of the provenance log.
  void seed_row_conflict() {
    const int now = static_cast<int>(blog_.size());
    if (conflict_row_ >= 0) {
      expl_seed_row(conflict_row_, now, nullptr);
    } else {
      for (const bool hi : {false, true}) {
        const int e = entry_before(bnode(conflict_var_, hi), now);
        if (e >= 0) expl_push(e);
      }
    }
  }

  /// Branch-and-bound completion of the integer domains at a full boolean
  /// assignment, with conflict-directed backjumping: every refutation
  /// reports which pinned variables it actually used, and a subtree whose
  /// refutation does not involve the variable branched on here refutes the
  /// *whole* node — the remaining values are skipped and the conflict set
  /// is passed up, which collapses the classic thrash over variables
  /// irrelevant to the infeasible core. Sat captures the model before
  /// returning; `conflict_pins` accumulates the pin set on Unsat.
  SatResult int_branch(const std::vector<int>& branch_vars,
                       std::vector<int>& conflict_pins) {
    bump_ops();
    if (int_budget_ == 0) return SatResult::Unknown;
    --int_budget_;
    int best = -1;
    std::int64_t best_width = kPosInf;
    for (int v : branch_vars) {
      const std::int64_t lo = lo_[static_cast<std::size_t>(v)];
      const std::int64_t hi = hi_[static_cast<std::size_t>(v)];
      if (lo == hi) continue;
      const std::int64_t width =
          (lo == kNegInf || hi == kPosInf) ? kPosInf - 1 : hi - lo;
      if (width < best_width) {
        best_width = width;
        best = v;
      }
    }
    if (best < 0) {  // every constrained variable is fixed
      for (int ai : active_diseqs_) {
        const Atom& a = atoms_[static_cast<std::size_t>(ai)];
        __int128 sum = 0;
        for (const auto& [v, c] : a.terms) {
          sum += static_cast<__int128>(c) * lo_[static_cast<std::size_t>(v)];
        }
        if (sum == a.bound) {  // disequality violated by the fixed values
          expl_begin();
          const int now = static_cast<int>(blog_.size());
          for (const auto& [v, c] : a.terms) {
            (void)c;
            for (const bool hi : {false, true}) {
              const int e = entry_before(bnode(v, hi), now);
              if (e >= 0) expl_push(e);
            }
          }
          expl_run(nullptr, &conflict_pins);
          return SatResult::Unsat;
        }
      }
      capture_model();
      return SatResult::Sat;
    }

    const std::int64_t lo = lo_[static_cast<std::size_t>(best)];
    const std::int64_t hi = hi_[static_cast<std::size_t>(best)];
    std::vector<std::int64_t> values;
    bool artificial = false;
    if (lo != kNegInf && hi != kPosInf && hi - lo <= kEnumWindow) {
      // Boundary-first: witnesses pin most variables at a domain endpoint
      // (empty queues, saturated blockers), so probe lo, hi, then walk the
      // interior outward from lo. Equality propagation usually fixes the
      // rest after the first few assignments.
      values.push_back(lo);
      if (hi != lo) values.push_back(hi);
      for (std::int64_t x = lo + 1; x < hi; ++x) {
        bump_ops();
        values.push_back(x);
      }
    } else if (lo != kNegInf) {
      artificial = true;
      for (std::int64_t x = lo; x < lo + kUnboundedProbes; ++x) values.push_back(x);
    } else if (hi != kPosInf) {
      artificial = true;
      for (std::int64_t x = hi; x > hi - kUnboundedProbes; --x) values.push_back(x);
    } else {
      artificial = true;
      values.push_back(0);
      for (std::int64_t x = 1; x <= kUnboundedProbes / 2; ++x) {
        values.push_back(x);
        values.push_back(-x);
      }
    }

    bool unknown = false;
    std::vector<int> node_pins;   // union of per-value conflicts, sans best
    std::vector<int> value_pins;  // per-value scratch
    for (const std::int64_t val : values) {
      bump_ops();
      const std::size_t mark = undo_.size();
      const std::size_t bmark = blog_.size();
      ++undo_era_;
      set_bound(best, false, val, pin_src(best));
      set_bound(best, true, val, pin_src(best));
      pin_trail_.push_back(theory::Pin{best, val});
      row_work_.clear();
      for (int rj : row_occ_[static_cast<std::size_t>(best)]) {
        row_work_.push_back(rj);
      }
      value_pins.clear();
      bool refuted = false;
      if (propagate_rows()) {
        if (!sconf_rows_.empty() || !sconf_pins_.empty()) {
          // Simplex refutation: the Farkas certificate names the pins it
          // used directly — exactly the conflict set the backjumping
          // wants. The rows are boolean-level context covered by the
          // blocking clause learned at the leaf.
          for (const int pi : sconf_pins_) {
            const int pv = pin_trail_[static_cast<std::size_t>(pi)].var;
            if (!pins_contain(value_pins, pv)) value_pins.push_back(pv);
          }
          sconf_rows_.clear();
          sconf_pins_.clear();
        } else {
          expl_begin();
          seed_row_conflict();
          expl_run(nullptr, &value_pins);
        }
        refuted = true;
      } else {
        const SatResult r = int_branch(branch_vars, value_pins);
        if (r == SatResult::Sat) {
          undo_to(mark);
          rewind_blog(bmark);
          pin_trail_.pop_back();
          return SatResult::Sat;
        }
        if (r == SatResult::Unknown) unknown = true;
        else refuted = true;
      }
      undo_to(mark);
      rewind_blog(bmark);
      pin_trail_.pop_back();
      if (refuted && !pins_contain(value_pins, best)) {
        // The refutation never used best's pin: it holds for every value
        // of best (even ones probed earlier with an Unknown verdict) —
        // the whole node is refuted, skip the other values.
        for (int p : value_pins) {
          if (!pins_contain(conflict_pins, p)) conflict_pins.push_back(p);
        }
        return SatResult::Unsat;
      }
      for (int p : value_pins) {
        if (p != best && !pins_contain(node_pins, p)) node_pins.push_back(p);
      }
    }
    if (artificial) unknown = true;
    if (unknown) return SatResult::Unknown;
    for (int p : node_pins) {
      if (!pins_contain(conflict_pins, p)) conflict_pins.push_back(p);
    }
    // The enumerated domain itself rests on best's entry bounds, whose
    // provenance may reach ancestor pins through rows — collect them
    // transitively (the loop's rewinds restored the entry state).
    expl_begin();
    const int now = static_cast<int>(blog_.size());
    for (const bool hi : {false, true}) {
      const int e = entry_before(bnode(best, hi), now);
      if (e >= 0) expl_push(e);
    }
    expl_run(nullptr, &conflict_pins);
    return SatResult::Unsat;
  }

  /// Final-check rescue for a leaf the branch-and-bound search degraded to
  /// Unknown: the simplex decides the active rows exactly — rationally
  /// and, via branch-on-rational-vertex cuts, over the integers. Unsat
  /// leaves the Farkas rows in sconf_rows_ for the caller's blocking
  /// clause; Sat pins the integer witness and captures the model; a blown
  /// branch budget (or an active disequality the witness misses — the
  /// simplex never sees disequalities) keeps the honest Unknown.
  SatResult simplex_rescue() {
    const SimplexTheory::Result res =
        stx_.check(active_rows_, /*pins=*/{}, /*integer_complete=*/true);
    sync_theory_stats();
    switch (res.verdict) {
      case SimplexTheory::Verdict::Infeasible:
        sconf_rows_ = res.conflict_rows;
        sconf_pins_.clear();  // no pins were passed
        return SatResult::Unsat;
      case SimplexTheory::Verdict::IntegerModel: {
        const std::size_t mark = undo_.size();
        const std::size_t bmark = blog_.size();
        ++undo_era_;
        for (const theory::Pin& p : res.model) {
          set_bound(p.var, false, p.value, pin_src(p.var));
          set_bound(p.var, true, p.value, pin_src(p.var));
        }
        bool diseqs_ok = true;
        for (const int ai : active_diseqs_) {
          const Atom& a = atoms_[static_cast<std::size_t>(ai)];
          __int128 sum = 0;
          bool fixed = true;
          for (const auto& [v, c] : a.terms) {
            const std::int64_t lo = lo_[static_cast<std::size_t>(v)];
            if (lo == kNegInf || lo != hi_[static_cast<std::size_t>(v)]) {
              fixed = false;  // variable outside the active rows: unknown
              break;
            }
            sum += static_cast<__int128>(c) * lo;
          }
          if (!fixed || sum == a.bound) {
            diseqs_ok = false;
            break;
          }
        }
        if (diseqs_ok) {
          capture_model();
          return SatResult::Sat;
        }
        undo_to(mark);
        rewind_blog(bmark);
        return SatResult::Unknown;
      }
      case SimplexTheory::Verdict::Feasible:
        break;  // rationally feasible, integer-open: stay Unknown
    }
    return SatResult::Unknown;
  }

  SatResult int_complete() {
    std::vector<int> branch_vars;
    std::vector<char> seen(int_names_.size(), 0);
    auto mark_var = [&](int v) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        branch_vars.push_back(v);
      }
    };
    for (const StaticRow* r : active_rows_) {
      for (const auto& [v, c] : r->terms) {
        (void)c;
        mark_var(v);
      }
    }
    for (int ai : active_diseqs_) {
      for (const auto& [v, c] : atoms_[static_cast<std::size_t>(ai)].terms) {
        (void)c;
        mark_var(v);
      }
    }
    const std::size_t mark = undo_.size();
    const std::size_t bmark = blog_.size();
    ++undo_era_;
    int_budget_ = kIntNodeBudget;
    std::vector<int> conflict_pins;  // top-level pins: none to report to
    const SatResult r = int_branch(branch_vars, conflict_pins);
    if (r != SatResult::Sat) {
      undo_to(mark);
      rewind_blog(bmark);
    }
    return r;
  }

  // --------------------------------------------------------- per-check prep

  /// Prepares the search state for a fresh check while keeping everything
  /// that is expensive to rebuild: the clause database (problem *and*
  /// learned clauses), the Tseitin/atom translation caches, and the
  /// bounds-undo machinery. Tainted clauses from a previous check's
  /// Unknown-degraded leaves are purged here — they are the only learned
  /// material that is not entailed — and the arena is compacted over
  /// clauses tombstoned by reduce_db() before the watch lists are rebuilt.
  void reset_search() {
    // Unwind the previous check: restore every bound changed since scope 0
    // (Sat leaves bounds pinned for model capture) and unassign the trail,
    // saving its polarities as the next check's phase hints.
    levels_.clear();
    deactivate_rows_to(0);
    undo_to(0);
    rewind_blog(0);
    polarity_.resize(static_cast<std::size_t>(num_bvars_), kUndef);
    for (Lit l : trail_) {
      const auto v = static_cast<std::size_t>(var_of(l));
      polarity_[v] = assign_[v];
      assign_[v] = kUndef;
    }
    trail_.clear();
    qhead_ = theory_head_ = 0;
    active_diseqs_.clear();
    row_work_.clear();
    pin_trail_.clear();  // a Timeout can unwind past the leaf search's pops
    sconf_rows_.clear();
    sconf_pins_.clear();
    clear_dirty();

    // Compact the clause arena: drop tombstones and tainted clauses. Safe
    // only here — the trail is empty, so no clause is locked as a reason
    // and the watch invariant is vacuous.
    if (num_tainted_ > 0 || arena_has_tombstones_) {
      std::size_t w = 0;
      for (std::size_t ci = 0; ci < cls_.size(); ++ci) {
        Clause& c = cls_[ci];
        if (c.deleted) continue;
        if (c.tainted) {
          --num_learned_live_;
          ++mutable_stats().deleted_clauses;
          continue;
        }
        if (w != ci) cls_[w] = std::move(c);
        ++w;
      }
      cls_.resize(w);
      num_tainted_ = 0;
      arena_has_tombstones_ = false;
    }

    // Grow per-variable structures for material translated since the last
    // check, then rebuild the watch lists from scratch (cheap relative to
    // a solver call, and it sweeps the lazily-dropped watch entries).
    const auto nv = static_cast<std::size_t>(num_bvars_);
    assign_.resize(nv, kUndef);
    reason_.resize(nv, kReasonNone);
    level_.resize(nv, 0);
    seen_.resize(nv, 0);
    // Activities restart fresh each check, with a tiny edge for theory
    // atoms: deciding atoms first lets bounds propagation fix the gate
    // variables instead of the other way around (measured ~50x on the 4x4
    // sizing probes vs. deciding in creation order). Stale activity from
    // a previous check pointed at that check's conflicts, not this one's,
    // so it is deliberately not carried over — phase saving and the
    // learned clauses carry the cross-check memory instead.
    activity_.clear();
    while (activity_.size() < nv) {
      const auto v = activity_.size();
      activity_.push_back(atom_of_var_[v] >= 0 ? 1e-6 : 0.0);
    }
    var_inc_ = 1.0;
    heap_pos_.assign(nv, -1);
    heap_.clear();
    for (int v = 0; v < num_bvars_; ++v) heap_insert(v);
    watches_.assign(2 * nv, {});
    for (std::size_t ci = 0; ci < cls_.size(); ++ci) {
      // Everything learned before this boundary counts as cross-check
      // material from here on (learned_hits tracks its reuse).
      cls_[ci].prior = cls_[ci].learned;
      const auto& c = cls_[ci].lits;
      watches_[static_cast<std::size_t>(c[0])].push_back(static_cast<int>(ci));
      watches_[static_cast<std::size_t>(c[1])].push_back(static_cast<int>(ci));
    }
    const std::size_t n = int_names_.size();
    lo_.resize(n, kNegInf);
    hi_.resize(n, kPosInf);
    bhead_.resize(2 * n, -1);
    lo_stamp_.resize(n, 0);
    hi_stamp_.resize(n, 0);
    row_occ_.resize(n);
    dirty_stamp_.resize(n, 0);
    scan_stamp_.resize(atoms_.size(), 0);
    expl_pool_.clear();
    expl_off_.resize(nv, 0);
    expl_len_.resize(nv, 0);
    saw_unknown_ = false;
    prefix_placed_ = prefix_levels_ = 0;
    conflicts_since_restart_ = 0;
    restart_seq_ = 0;
    restart_limit_ = luby(restart_seq_) * kRestartBase;
  }

  [[nodiscard]] SatResult finish_unsat() const {
    return saw_unknown_ ? SatResult::Unknown : SatResult::Unsat;
  }

  SatResult run_check(const std::vector<ExprId>& assumptions) {
    for (; translated_roots_ < roots_.size(); ++translated_roots_) {
      root_lits_.push_back(translate_bool(roots_[translated_roots_]));
    }
    // Assumption literals reuse the same memoized translation, so repeated
    // probes over the same expressions add no clauses after the first.
    std::vector<Lit> assumption_lits;
    assumption_lits.reserve(assumptions.size());
    for (ExprId a : assumptions) assumption_lits.push_back(translate_bool(a));
    if (trivially_unsat_) return SatResult::Unsat;
    reset_search();

    // Level 0 holds only *permanent* facts: definitional units and the
    // scope-0 roots, which no pop() can ever retract. Conflict analysis
    // silently drops level-0 literals, so everything placed here must
    // stay true for the session's lifetime.
    for (Lit l : def_units_) {
      if (!enqueue(l, kReasonNone)) return finish_unsat();
    }
    const std::size_t permanent =
        scopes_.empty() ? root_lits_.size() : scopes_.front();
    for (std::size_t i = 0; i < std::min(permanent, root_lits_.size()); ++i) {
      if (!enqueue(root_lits_[i], kReasonNone)) return finish_unsat();
    }
    // Scoped roots and this check's assumptions form the assumption
    // prefix: each gets its own decision level (MiniSat style), so learned
    // clauses can only depend on them by mentioning their negations — the
    // clauses stay valid after any pop() and after the assumptions are
    // retracted at the end of this check.
    assume_q_.clear();
    assume_src_.clear();
    for (std::size_t i = permanent; i < root_lits_.size(); ++i) {
      assume_q_.push_back(root_lits_[i]);
      assume_src_.push_back(-1);  // scoped root, not a per-check assumption
    }
    for (std::size_t i = 0; i < assumption_lits.size(); ++i) {
      assume_q_.push_back(assumption_lits[i]);
      assume_src_.push_back(static_cast<int>(i));
    }
    check_assumptions_ = &assumptions;

    for (;;) {
      const Conflict confl = propagate_all();
      if (confl.kind != Conflict::kNone) {
        theory_conflict_.clear();
        if (confl.kind == Conflict::kTheory) {
          if (!sconf_rows_.empty() || !sconf_pins_.empty()) {
            // Farkas conflict: the refutation names its rows directly (no
            // pins can exist during boolean search — the pin trail is
            // empty outside the integer leaf search).
            emit_simplex_conflict();
          } else {
            // Provenance expansion of the conflict: the negated atoms
            // whose rows actually produced the contradiction.
            expl_begin();
            const int now = static_cast<int>(blog_.size());
            if (conflict_row_ >= 0) {
              expl_seed_row(conflict_row_, now, &theory_conflict_);
            } else {
              for (const bool hi : {false, true}) {
                const int e = entry_before(bnode(conflict_var_, hi), now);
                if (e >= 0) expl_push(e);
              }
            }
            expl_run(&theory_conflict_, nullptr);
          }
        }
        const std::vector<Lit>& lits =
            confl.kind == Conflict::kClause
                ? cls_[static_cast<std::size_t>(confl.ci)].lits
                : theory_conflict_;
        if (!resolve_conflict(lits, confl.kind == Conflict::kClause
                                        ? confl.ci
                                        : -1)) {
          return finish_unsat();
        }
        maybe_restart_or_reduce();
        continue;
      }
      if (prefix_placed_ < static_cast<int>(assume_q_.size())) {
        const Lit p = assume_q_[static_cast<std::size_t>(prefix_placed_)];
        if (value_lit(p) == kFalse) {
          analyze_final(p, prefix_placed_);
          return finish_unsat();
        }
        push_level();  // pseudo level when p already holds: keeps the
                       // prefix 1:1 with levels across backjumps
        ++prefix_placed_;
        prefix_levels_ = current_level();
        if (value_lit(p) == kUndef) {
          const bool ok = enqueue(p, kReasonNone);
          (void)ok;
        }
        continue;
      }
      const int v = pick_branch();
      if (v >= 0) {
        ++mutable_stats().decisions;
        push_level();
        const bool ok = enqueue(mk_lit(v, decide_phase_negated(v)),
                                kReasonNone);
        (void)ok;  // unassigned by construction
        continue;
      }
      // Full boolean assignment: complete (or refute) the integer domains;
      // a degraded leaf gets the exact simplex as a second opinion.
      SatResult leaf = int_complete();
      if (leaf == SatResult::Unknown) leaf = simplex_rescue();
      if (leaf == SatResult::Sat) return SatResult::Sat;
      if (leaf == SatResult::Unknown) saw_unknown_ = true;
      // Block this combination of theory atoms. For a refuted leaf the
      // blocking clause is a theory lemma — the exact Farkas atoms when
      // the simplex produced the refutation, the full asserted-atom set
      // otherwise; for an Unknown leaf it is *not* entailed — it (and
      // everything learned after it) is tainted and the final Unsat
      // degrades to Unknown.
      theory_conflict_.clear();
      if (!sconf_rows_.empty() || !sconf_pins_.empty()) {
        emit_simplex_conflict();
      } else {
        collect_theory_lits(true, trail_.size(), theory_conflict_);
      }
      if (!resolve_conflict(theory_conflict_, -1)) return finish_unsat();
      maybe_restart_or_reduce();
    }
  }

  const ExprFactory& f_;

  // Translation state (persists across check() calls and pop()).
  std::vector<ExprId> roots_;
  std::vector<std::size_t> scopes_;  // push() marks into roots_
  std::size_t translated_roots_ = 0;
  std::vector<Lit> root_lits_;  // per translated root, aligned with roots_
  std::unordered_map<ExprId, Lit> lit_memo_;
  int num_bvars_ = 0;
  int true_var_ = -1;
  std::vector<std::pair<int, std::string>> named_bools_;
  std::unordered_map<ExprId, int> int_index_;
  std::vector<std::string> int_names_;
  std::vector<int> atom_of_var_;  // bool var -> atom index or -1
  std::vector<int> atom_var_;     // atom index -> bool var
  std::vector<std::vector<int>> atom_occ_;  // int var -> atom indices
  std::vector<Atom> atoms_;
  std::unordered_map<std::string, int> atom_index_;
  bool trivially_unsat_ = false;

  // Clause database (persists across check() calls and pop()): problem
  // clauses from translation plus the learned clauses.
  std::vector<Clause> cls_;
  std::vector<Lit> def_units_;      // permanent units (incl. learned units)
  std::size_t num_learned_live_ = 0;
  std::size_t num_tainted_ = 0;
  bool arena_has_tombstones_ = false;
  std::size_t num_reductions_ = 0;

  // Search state (reset — but not reallocated — by reset_search()).
  std::vector<Val> assign_;
  std::vector<int> reason_;             // var -> clause / kReason*
  std::vector<int> level_;              // var -> decision level
  std::vector<std::vector<int>> watches_;  // literal -> watching clauses
  std::vector<Lit> trail_;
  std::size_t qhead_ = 0;
  std::size_t theory_head_ = 0;
  std::vector<LevelMark> levels_;
  std::vector<Lit> assume_q_;  // scoped roots + assumptions, this check
  std::vector<int> assume_src_;  // per entry: assumption index or -1 (root)
  const std::vector<ExprId>* check_assumptions_ = nullptr;  // this check's
  int prefix_placed_ = 0;      // prefix literals placed (1:1 with levels)
  int prefix_levels_ = 0;      // levels occupied by the placed prefix
  std::vector<std::int64_t> lo_, hi_;
  std::vector<std::uint64_t> lo_stamp_, hi_stamp_;
  std::uint64_t undo_era_ = 1;
  std::vector<UndoEntry> undo_;
  std::vector<const StaticRow*> active_rows_;
  std::vector<Lit> active_row_lit_;  // activating atom literal, per row
  std::vector<std::vector<int>> row_occ_;  // int var -> active row indices
  std::vector<int> active_diseqs_;         // atom indices asserted ≠
  std::vector<int> row_work_;
  std::vector<Val> polarity_;    // saved phases (previous check + unassigns)
  std::vector<int> dirty_vars_;  // int vars with bound changes to rescan
  std::vector<std::uint64_t> dirty_stamp_;
  std::uint64_t dirty_gen_ = 1;
  std::vector<std::uint64_t> scan_stamp_;  // atom index -> last scan
  std::uint64_t scan_gen_ = 0;
  bool saw_unknown_ = false;
  std::uint64_t int_budget_ = 0;

  // Exact theory layer (tableau, basis and slack dedup persist for the
  // session — the incremental half of the simplex; see simplex_theory.hpp).
  SimplexTheory stx_;
  std::vector<theory::Pin> pin_trail_;  // branch-and-bound pins in effect
  std::vector<int> sconf_rows_;  // pending simplex conflict: row indices
  std::vector<int> sconf_pins_;  // pending simplex conflict: pin indices

  // CDCL working state.
  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;
  std::vector<int> heap_;      // activity max-heap of variables
  std::vector<int> heap_pos_;  // var -> heap index or -1
  std::vector<char> seen_;     // analysis scratch
  std::vector<int> to_clear_;
  std::vector<Lit> learnt_;
  std::vector<Lit> theory_conflict_;
  std::vector<int> lbd_levels_;
  std::vector<int> reduce_order_;
  // Provenance-explanation machinery (see "provenance explanations").
  std::vector<BoundLog> blog_;  // chronological bound-derivation log
  std::vector<int> bhead_;      // bound node -> latest log entry or -1
  int conflict_row_ = -1;       // set by propagate_rows on conflict
  int conflict_var_ = -1;
  std::vector<int> expl_stack_;            // justification worklist
  std::vector<std::uint64_t> entry_seen_;  // per log entry, stamped
  std::vector<std::uint64_t> row_seen_;  // per active row: atom emitted
  std::vector<std::uint64_t> pin_seen_;  // per int var: pin collected
  std::uint64_t expl_gen_ = 0;
  std::vector<Lit> expl_pool_;     // stored explanations, level-scoped
  std::vector<Lit> expl_scratch_;
  std::vector<std::uint32_t> expl_off_, expl_len_;  // per var, theory reason
  std::uint64_t conflicts_since_restart_ = 0;
  std::uint64_t restart_seq_ = 0;
  std::uint64_t restart_limit_ = kRestartBase;

  bool deadline_active_ = false;
  Clock::time_point deadline_;
  std::uint64_t ops_ = 0;
};

}  // namespace

std::unique_ptr<Solver> make_native_solver(const ExprFactory& factory) {
  return std::make_unique<NativeSolver>(factory);
}

}  // namespace advocat::smt
