// In-tree CDCL(T) solver for the linear-integer encodings.
// See native_solver.hpp for the algorithm overview and smt/theory.hpp for
// the seam between the two theory layers.
//
// Since PR 6 this file holds the *translation and orchestration* half of
// the solver: Tseitin translation of the assertion DAG into the shared
// problem (native::SharedProblem) and the dispatch of checks onto
// per-worker search engines (native::SearchContext). The search
// algorithm itself — CDCL with first-UIP learning, EVSIDS, Luby
// restarts, interval propagation with provenance explanations, the exact
// simplex — lives in search_context.cpp.
//
// Learned clauses persist across check() calls AND across push()/pop():
// scoped root assertions and per-check assumptions are placed on their own
// decision levels (MiniSat assumption style) instead of level 0, so a
// learned clause can only depend on them by *mentioning* their negations.
// Every learned clause is therefore entailed by the permanent material
// alone and stays valid after any pop — and, by the same argument, valid
// on every parallel worker sharing the translation, which is what makes
// cross-worker clause exchange and harvest-back sound. Tainted clauses
// (learned after an Unknown-degraded leaf) are the one exception; they
// are purged at check boundaries and never exported.
//
// Parallel modes (threads > 1, default ADVOCAT_THREADS):
//  - cube-and-conquer: the primary context probes under a conflict
//    budget; if undecided, the top-EVSIDS undecided variables split the
//    search into 2^k cubes solved by seeded ephemeral workers on a
//    static, deterministic schedule.
//  - portfolio (ADVOCAT_PARALLEL=portfolio): diversified workers race on
//    the whole problem (restart pacing, default phase, branching bias).
// Workers share short/low-LBD learned clauses through a sharded exchange
// and their learning is harvested back into the primary context, so the
// PR4 cross-check persistence survives parallel checks. With
// ADVOCAT_DETERMINISTIC=1 the exchange and early cancellation are
// disabled and the cube partition is static, making parallel verdicts
// *and* statistics reproducible run to run. threads == 1 never spawns a
// thread and is bit-identical to the sequential solver.
#include "smt/native_solver.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "smt/audit.hpp"
#include "smt/clause_exchange.hpp"
#include "smt/proof.hpp"
#include "smt/search_context.hpp"
#include "util/budget.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"

namespace advocat::smt {
namespace {

using native::Atom;
using native::Auditor;
using native::CertificateInputs;
using native::CheckJob;
using native::ClauseExchange;
using native::Clock;
using native::Lit;
using native::Outcome;
using native::ProofLog;
using native::ProofRecord;
using native::SearchConfig;
using native::SearchContext;
using native::SharedProblem;
using native::StaticRow;
using native::audit_enabled;
using native::mk_lit;
using native::neg;

// Conflict budget for the cube-probe run on the primary context: easy
// checks (the common incremental-probe case) finish inside the budget
// without ever spawning a thread; hard ones exit with hot EVSIDS
// variables to cube on.
constexpr std::uint64_t kCubeProbeConflicts = 1000;
// At most 2^kMaxCubeVars cubes.
constexpr std::size_t kMaxCubeVars = 8;
// Per-worker cap on clauses harvested back into the primary context.
constexpr std::size_t kHarvestCap = 4096;

// Portfolio diversification: per-worker restart pacing (Luby scale).
constexpr std::uint64_t kPortfolioRestartBase[] = {192, 96, 384, 768};

class NativeSolver final : public Solver {
 public:
  explicit NativeSolver(const ExprFactory& factory) : f_(factory) {
    sh_.true_var = new_bvar();
    sh_.def_units.push_back(mk_lit(sh_.true_var, false));
    primary_ = std::make_unique<SearchContext>(sh_, SearchConfig{});
    threads_ = util::env_threads(1);
    deterministic_ = util::env_deterministic();
    const char* mode = std::getenv("ADVOCAT_PARALLEL");
    portfolio_ = mode != nullptr && std::strcmp(mode, "portfolio") == 0;
  }

  void add(ExprId assertion) override { roots_.push_back(assertion); }

  // Scopes are marks into roots_. Translation artifacts (Tseitin gate
  // clauses, atoms, variables) are *definitional* — for any assignment of
  // the original variables there is a consistent assignment of the gates —
  // so they are sound to keep forever; pop() only retracts the unit
  // literals that assert the scoped roots. Learned clauses survive pop()
  // too: scoped roots are solved on assumption-style decision levels, so
  // any learned clause depending on one mentions its negation explicitly
  // and remains a valid (vacuously satisfiable) clause after the pop.
  void push() override { scopes_.push_back(roots_.size()); }

  void pop() override {
    if (scopes_.empty()) {
      throw std::logic_error("NativeSolver::pop: no open scope");
    }
    const std::size_t mark = scopes_.back();
    scopes_.pop_back();
    roots_.resize(mark);
    if (translated_roots_ > mark) {
      translated_roots_ = mark;
      root_lits_.resize(mark);
    }
  }

  [[nodiscard]] std::size_t num_scopes() const override {
    return scopes_.size();
  }

  void set_threads(unsigned n) override {
    threads_ = n == 0 ? util::env_threads(1) : std::min(n, 256u);
  }

  void set_deterministic(bool on) override { deterministic_ = on; }

  // Turns proof logging on (or off) for every subsequent check. The stamp
  // counter, session trace, and lemma cache live for the solver's
  // lifetime, so a sink attached before the first check certifies every
  // later Unsat; attaching after checks have run yields certificates
  // honestly marked incomplete (the earlier learning was never logged).
  void set_proof_sink(ProofSink* sink) override {
    Solver::set_proof_sink(sink);
    if (sink != nullptr && primary_log_ == nullptr) {
      primary_log_ = std::make_unique<ProofLog>(&proof_stamp_);
    }
    primary_->set_proof_log(sink != nullptr ? primary_log_.get() : nullptr);
  }

 protected:
  SatResult do_check(const std::vector<ExprId>& assumptions,
                     unsigned timeout_ms) override {
    const SolveStats before = solve_stats();
    CheckJob job;
    // The per-call timeout and the session budget's deadline compose as
    // the tighter of the two; both surface as Unknown(kDeadline).
    unsigned effective_ms = timeout_ms;
    const unsigned budget_ms = budget().deadline_ms;
    if (budget_ms != 0 && (effective_ms == 0 || budget_ms < effective_ms)) {
      effective_ms = budget_ms;
    }
    job.deadline_active = effective_ms > 0;
    if (job.deadline_active) {
      job.deadline = Clock::now() + std::chrono::milliseconds(effective_ms);
    }
    // Null budget pointer when the session has no ceilings: the search's
    // cancellation point then pays one pointer test, and verdicts and
    // statistics stay bit-identical to a build without governance.
    job.budget = budget().unlimited() ? nullptr : &budget();
    job.cancel = cancel_flag();
    last_stop_ = util::StopReason::kNone;
    for (; translated_roots_ < roots_.size(); ++translated_roots_) {
      root_lits_.push_back(translate_bool(roots_[translated_roots_]));
    }
    // Assumption literals reuse the same memoized translation, so repeated
    // probes over the same expressions add no clauses after the first.
    std::vector<Lit> assumption_lits;
    assumption_lits.reserve(assumptions.size());
    for (ExprId a : assumptions) assumption_lits.push_back(translate_bool(a));
    last_cubes_.clear();
    SatResult result = SatResult::Unsat;
    std::vector<Lit> permanent_roots;
    std::vector<Lit> scoped_roots;
    if (!trivially_unsat_) {
      // Level-0 permanent roots vs. the retractable scoped prefix.
      const std::size_t permanent = std::min(
          scopes_.empty() ? root_lits_.size() : scopes_.front(),
          root_lits_.size());
      permanent_roots.assign(root_lits_.begin(),
                             root_lits_.begin() +
                                 static_cast<std::ptrdiff_t>(permanent));
      scoped_roots.assign(root_lits_.begin() +
                              static_cast<std::ptrdiff_t>(permanent),
                          root_lits_.end());
      job.permanent_roots = &permanent_roots;
      job.scoped_roots = &scoped_roots;
      job.assumption_lits = &assumption_lits;
      job.assumptions = &assumptions;
      try {
        result = threads_ <= 1 ? adopt(*primary_, primary_->solve(job))
                               : solve_parallel(job);
      } catch (const util::fault::FaultInjected&) {
        // Safety net for injected faults delivered outside a solve() (the
        // search catches its own); the session state is untouched at those
        // points, so degrade to Unknown and stay usable.
        result = SatResult::Unknown;
        last_stop_ = util::StopReason::kFaultInjected;
      }
      // A check that ran unlogged leaves learned material the trace
      // cannot reconstruct: every later certificate is marked incomplete.
      if (proof_sink() == nullptr || primary_log_ == nullptr) {
        unlogged_checks_ = true;
      }
    }
    if (result == SatResult::Unsat && proof_sink() != nullptr) {
      emit_certificate(permanent_roots, scoped_roots, assumption_lits);
    }
    refresh_stats();
    if (std::getenv("ADVOCAT_NATIVE_STATS") != nullptr) {
      const SolveStats& s = solve_stats();
      std::fprintf(
          stderr,
          "[native] %s: +%llu decisions, +%llu conflicts, +%llu propagations, "
          "+%llu restarts, +%llu learned (%zu live, %llu deleted), "
          "+%llu prior-clause hits, %u threads, %d bool vars, %zu atoms, "
          "%zu clauses\n",
          smt::to_string(result),
          static_cast<unsigned long long>(s.decisions - before.decisions),
          static_cast<unsigned long long>(s.conflicts - before.conflicts),
          static_cast<unsigned long long>(s.propagations -
                                          before.propagations),
          static_cast<unsigned long long>(s.restarts - before.restarts),
          static_cast<unsigned long long>(s.learned_clauses -
                                          before.learned_clauses),
          s.learned_kept,
          static_cast<unsigned long long>(s.deleted_clauses),
          static_cast<unsigned long long>(s.learned_hits -
                                          before.learned_hits),
          s.threads, sh_.num_bvars, sh_.atoms.size(), sh_.clauses.size());
    }
    return result;
  }

 private:
  // ------------------------------------------------------------ translation

  int new_bvar() {
    sh_.atom_of_var.push_back(-1);
    return sh_.num_bvars++;
  }

  int int_var(ExprId id, const std::string& name) {
    auto it = int_index_.find(id);
    if (it != int_index_.end()) return it->second;
    const int v = static_cast<int>(sh_.int_names.size());
    sh_.int_names.push_back(name);
    int_index_.emplace(id, v);
    return v;
  }

  void add_clause(std::vector<Lit> c) {
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    for (std::size_t i = 0; i + 1 < c.size(); ++i) {
      if (c[i + 1] == (c[i] ^ 1)) return;  // tautology: l and ¬l adjacent
    }
    if (c.empty()) {
      trivially_unsat_ = true;
    } else if (c.size() == 1) {
      sh_.def_units.push_back(c[0]);
    } else {
      sh_.clauses.push(c);
    }
  }

  void linearize(ExprId id, std::int64_t scale,
                 std::map<int, std::int64_t>& coeffs, std::int64_t& constant) {
    const Node& n = f_.node(id);
    switch (n.op) {
      case Op::IntConst: constant += scale * n.value; break;
      case Op::IntVar: coeffs[int_var(id, n.name)] += scale; break;
      case Op::Add:
        for (ExprId k : n.kids) linearize(k, scale, coeffs, constant);
        break;
      case Op::MulConst:
        linearize(n.kids[0], scale * n.value, coeffs, constant);
        break;
      default:
        throw std::logic_error("native solver: expected integer expression");
    }
  }

  Lit translate_atom(const Node& n) {
    std::map<int, std::int64_t> coeffs;
    std::int64_t constant = 0;
    linearize(n.kids[0], 1, coeffs, constant);
    linearize(n.kids[1], -1, coeffs, constant);

    Atom a;
    a.is_eq = n.op == Op::Eq;
    for (const auto& [v, c] : coeffs) {
      if (c != 0) a.terms.emplace_back(v, c);
    }
    a.bound = -constant;
    if (a.terms.empty()) {
      const bool truth = a.is_eq ? (a.bound == 0) : (0 <= a.bound);
      return mk_lit(sh_.true_var, !truth);
    }
    if (a.is_eq) {
      // Divisibility cut at translation time: Σ c·x = b with gcd(c) ∤ b
      // has no integer solution, so the atom is the constant false (and
      // its negation, the disequality, the constant true) — no search
      // ever has to discover it.
      std::int64_t g = 0;
      for (const auto& [v, c] : a.terms) g = std::gcd(g, c < 0 ? -c : c);
      if (g > 1 && a.bound % g != 0) return mk_lit(sh_.true_var, true);
    }
    if (a.is_eq && a.terms[0].second < 0) {  // canonical sign for dedup
      for (auto& t : a.terms) t.second = -t.second;
      a.bound = -a.bound;
    }
    std::string key(a.is_eq ? "=" : "<");
    for (const auto& [v, c] : a.terms) {
      key += std::to_string(v) + "*" + std::to_string(c) + ",";
    }
    key += std::to_string(a.bound);
    auto it = atom_index_.find(key);
    if (it != atom_index_.end()) return mk_lit(it->second, false);

    const StaticRow le{a.terms, a.bound};
    StaticRow flipped;
    flipped.terms = a.terms;
    for (auto& t : flipped.terms) t.second = -t.second;
    if (a.is_eq) {
      flipped.bound = -a.bound;
      a.when_true = {le, flipped};  // when_false stays empty: disequality
    } else {
      flipped.bound = -a.bound - 1;  // ¬(Σ ≤ b)  ⇔  -Σ ≤ -b-1
      a.when_true = {le};
      a.when_false = {flipped};
    }
    const int v = new_bvar();
    const int ai = static_cast<int>(sh_.atoms.size());
    sh_.atom_of_var[static_cast<std::size_t>(v)] = ai;
    sh_.atom_var.push_back(v);
    for (const auto& [iv, c] : a.terms) {
      (void)c;
      if (static_cast<std::size_t>(iv) >= sh_.atom_occ.size()) {
        sh_.atom_occ.resize(static_cast<std::size_t>(iv) + 1);
      }
      sh_.atom_occ[static_cast<std::size_t>(iv)].push_back(ai);
    }
    sh_.atoms.push_back(std::move(a));
    atom_index_.emplace(std::move(key), v);
    return mk_lit(v, false);
  }

  Lit translate_bool(ExprId id) {
    auto memo = lit_memo_.find(id);
    if (memo != lit_memo_.end()) return memo->second;
    const Node& n = f_.node(id);
    Lit res = 0;
    switch (n.op) {
      case Op::BoolConst: res = mk_lit(sh_.true_var, n.value == 0); break;
      case Op::BoolVar: {
        const int v = new_bvar();
        sh_.named_bools.emplace_back(v, n.name);
        res = mk_lit(v, false);
        break;
      }
      case Op::Not: res = neg(translate_bool(n.kids[0])); break;
      case Op::And: {
        const Lit g = mk_lit(new_bvar(), false);
        std::vector<Lit> big{g};
        for (ExprId kid : n.kids) {
          const Lit k = translate_bool(kid);
          add_clause({neg(g), k});
          big.push_back(neg(k));
        }
        add_clause(std::move(big));
        res = g;
        break;
      }
      case Op::Or: {
        const Lit g = mk_lit(new_bvar(), false);
        std::vector<Lit> big{neg(g)};
        for (ExprId kid : n.kids) {
          const Lit k = translate_bool(kid);
          add_clause({g, neg(k)});
          big.push_back(k);
        }
        add_clause(std::move(big));
        res = g;
        break;
      }
      case Op::Implies: {
        const Lit a = translate_bool(n.kids[0]);
        const Lit b = translate_bool(n.kids[1]);
        const Lit g = mk_lit(new_bvar(), false);  // g ↔ (¬a ∨ b)
        add_clause({neg(g), neg(a), b});
        add_clause({g, a});
        add_clause({g, neg(b)});
        res = g;
        break;
      }
      case Op::Iff: {
        const Lit a = translate_bool(n.kids[0]);
        const Lit b = translate_bool(n.kids[1]);
        const Lit g = mk_lit(new_bvar(), false);  // g ↔ (a ↔ b)
        add_clause({neg(g), neg(a), b});
        add_clause({neg(g), a, neg(b)});
        add_clause({g, a, b});
        add_clause({g, neg(a), neg(b)});
        res = g;
        break;
      }
      case Op::Eq:
      case Op::Le:
        res = translate_atom(n);
        break;
      default:
        throw std::logic_error("native solver: expected boolean expression");
    }
    lit_memo_.emplace(id, res);
    return res;
  }

  // ---------------------------------------------------------- orchestration

  static SatResult from_outcome(Outcome out) {
    switch (out) {
      case Outcome::Sat: return SatResult::Sat;
      case Outcome::Unsat: return SatResult::Unsat;
      default: return SatResult::Unknown;  // Unknown / Budget / Cancelled
    }
  }

  /// Publishes a context's result (model or core) into the Solver base.
  SatResult adopt(const SearchContext& ctx, Outcome out) {
    if (out == Outcome::Sat) {
      store_model(Model(ctx.model()));
    } else if (out == Outcome::Unsat && !ctx.core().empty()) {
      store_core(std::vector<ExprId>(ctx.core()));
    }
    const SatResult r = from_outcome(out);
    if (r == SatResult::Unknown) {
      // A Budget outcome reaching adoption means a conflict ceiling ended
      // the check; otherwise the context recorded why it stopped.
      last_stop_ = util::combine(last_stop_,
                                 out == Outcome::Budget
                                     ? util::StopReason::kConflictBudget
                                     : ctx.stop_reason());
      if (last_stop_ == util::StopReason::kNone) {
        last_stop_ = util::StopReason::kDegraded;
      }
    }
    return r;
  }

  /// Serializes (and theory-certifies) the refutation this check just
  /// produced and hands it to the sink. The session trace is cumulative —
  /// learned clauses persist across checks, so every certificate replays
  /// the whole session's logged learning; stamps restore one coherent
  /// order over the merged per-worker logs.
  void emit_certificate(const std::vector<Lit>& permanent_roots,
                        const std::vector<Lit>& scoped_roots,
                        const std::vector<Lit>& assumption_lits) {
    if (primary_log_ != nullptr) primary_log_->drain_into(trace_);
    std::sort(trace_.begin(), trace_.end(),
              [](const ProofRecord& a, const ProofRecord& b) {
                return a.stamp < b.stamp;
              });
    CertificateInputs in;
    in.sh = &sh_;
    in.trace = &trace_;
    in.assume_lits = permanent_roots;
    in.assume_lits.insert(in.assume_lits.end(), scoped_roots.begin(),
                          scoped_roots.end());
    in.assume_lits.insert(in.assume_lits.end(), assumption_lits.begin(),
                          assumption_lits.end());
    in.cubes = std::move(last_cubes_);
    last_cubes_.clear();
    in.trivially_unsat = trivially_unsat_;
    in.attached_mid_session = unlogged_checks_;
    Certificate cert;
    try {
      cert = native::build_certificate(in, lemma_cache_);
    } catch (...) {
      // Certification is best-effort under fault injection / allocation
      // pressure: the verdict stands (it was reached before this point),
      // so report an honestly unverifiable certificate rather than let
      // the failure masquerade as an Unknown check result.
      cert = Certificate{};
      cert.mode = "attested";
      cert.complete = false;
      cert.reason = "native certificate construction aborted";
      cert.text = "advocat-proof 1\nmode attested native-aborted\nqed\n";
      cert.proof_bytes = cert.text.size();
    }
    proof_sink()->on_unsat_certificate(cert);
  }

  /// Session stats = the primary context's lifetime counters plus the
  /// accumulated counters of every ephemeral worker that ever ran
  /// (extra_), with the gauges (learned_kept, threads) from the present.
  void refresh_stats() {
    SolveStats s = primary_->stats();
    s.decisions += extra_.decisions;
    s.conflicts += extra_.conflicts;
    s.propagations += extra_.propagations;
    s.restarts += extra_.restarts;
    s.learned_clauses += extra_.learned_clauses;
    s.deleted_clauses += extra_.deleted_clauses;
    s.learned_hits += extra_.learned_hits;
    s.theory_pivots += extra_.theory_pivots;
    s.farkas_explanations += extra_.farkas_explanations;
    s.clauses_exported += extra_.clauses_exported;
    s.clauses_imported += extra_.clauses_imported;
    s.arena_compactions += extra_.arena_compactions;
    s.learned_kept = primary_->learned_live();
    s.threads = threads_;
    // arena_bytes stays the primary's gauge (workers are ephemeral), but
    // the peak high-water mark covers every context that ever ran.
    if (extra_.peak_arena_bytes > s.peak_arena_bytes) {
      s.peak_arena_bytes = extra_.peak_arena_bytes;
    }
    s.stop_reason = last_stop_;
    mutable_stats() = s;
  }

  void accumulate(const SolveStats& w) {
    extra_.decisions += w.decisions;
    extra_.conflicts += w.conflicts;
    extra_.propagations += w.propagations;
    extra_.restarts += w.restarts;
    extra_.learned_clauses += w.learned_clauses;
    extra_.deleted_clauses += w.deleted_clauses;
    extra_.learned_hits += w.learned_hits;
    extra_.theory_pivots += w.theory_pivots;
    extra_.farkas_explanations += w.farkas_explanations;
    extra_.clauses_exported += w.clauses_exported;
    extra_.clauses_imported += w.clauses_imported;
    extra_.arena_compactions += w.arena_compactions;
    if (w.peak_arena_bytes > extra_.peak_arena_bytes) {
      extra_.peak_arena_bytes = w.peak_arena_bytes;  // gauge: max, not sum
    }
  }

  /// Harvests worker learning back into the primary context in worker
  /// order (deterministic when the workers were): exportable clauses,
  /// deduplicated against each other, plus learned unit consequences.
  /// Sound for the same reason the exchange is — non-tainted learned
  /// clauses are entailed by the permanent problem alone.
  void harvest(const std::vector<std::unique_ptr<SearchContext>>& workers) {
    std::vector<std::vector<Lit>> clauses;
    std::vector<Lit> units;
    for (const auto& w : workers) {
      w->harvest_into(clauses, kHarvestCap);
      w->harvest_units_into(units);
      accumulate(w->stats());
    }
    std::set<std::vector<Lit>> seen;
    std::vector<std::vector<Lit>> unique_clauses;
    unique_clauses.reserve(clauses.size());
    for (std::vector<Lit>& c : clauses) {
      std::vector<Lit> key = c;
      std::sort(key.begin(), key.end());
      if (seen.insert(std::move(key)).second) {
        unique_clauses.push_back(std::move(c));
      }
    }
    primary_->adopt_clauses(unique_clauses);
    primary_->adopt_units(units);
  }

  /// Builds a fresh worker seeded with everything the session learned.
  std::unique_ptr<SearchContext> make_worker(unsigned id,
                                             ClauseExchange* exchange,
                                             const std::atomic<bool>* stop,
                                             bool diversify) {
    SearchConfig cfg;
    cfg.id = id;
    cfg.exchange = exchange;
    cfg.stop = stop;
    cfg.is_worker = true;  // worker_kill fault site targets only these
    if (diversify && id > 0) {
      cfg.restart_base = kPortfolioRestartBase[id % 4];
      cfg.invert_default_phase = (id & 1) != 0;
      cfg.reverse_atom_bias = (id & 2) != 0;
    }
    auto w = std::make_unique<SearchContext>(sh_, cfg);
    w->seed_from(*primary_);
    return w;
  }

  /// Parallel check. Portfolio mode races diversified workers on the
  /// whole problem; cube mode (default) first probes on the primary
  /// context under a conflict budget — deciding easy checks without
  /// spawning anything — then splits on the hottest undecided variables.
  /// Verdict combination is order-independent (any Sat wins; Unsat needs
  /// every cube), so the verdict is reproducible even when the schedule
  /// is not; in determinism mode (no exchange, no early cancellation,
  /// static schedule) the statistics are reproducible too.
  SatResult solve_parallel(CheckJob& job) {
    ClauseExchange exchange;
    std::atomic<bool> stop{false};
    ClauseExchange* xch = deterministic_ ? nullptr : &exchange;
    const std::atomic<bool>* stop_flag = deterministic_ ? nullptr : &stop;

    std::vector<std::vector<Lit>> cubes;
    if (!portfolio_) {
      CheckJob probe = job;
      probe.conflict_budget = kCubeProbeConflicts;
      std::size_t want = 1;
      while ((std::size_t{1} << want) < threads_ && want < kMaxCubeVars) {
        ++want;
      }
      probe.hot_k = std::min(want + 1, kMaxCubeVars);
      const Outcome out = primary_->solve(probe);
      if (out != Outcome::Budget) return adopt(*primary_, out);
      const std::vector<int>& hot = primary_->hot_vars();
      for (std::size_t m = 0; m < (std::size_t{1} << hot.size()); ++m) {
        std::vector<Lit> cube;
        cube.reserve(hot.size());
        for (std::size_t b = 0; b < hot.size(); ++b) {
          cube.push_back(mk_lit(hot[b], (m >> b & 1) != 0));
        }
        cubes.push_back(std::move(cube));
      }
    }
    const bool cube_mode = !portfolio_ && cubes.size() > 1;
    if (!cube_mode && !portfolio_) {
      // Nothing to split on (the probe found no open variables): finish
      // the check on the primary context without a budget.
      return adopt(*primary_, primary_->solve(job));
    }

    const std::size_t tasks = cube_mode ? cubes.size() : threads_;
    const unsigned width =
        static_cast<unsigned>(std::min<std::size_t>(threads_, tasks));
    std::vector<std::unique_ptr<SearchContext>> workers;
    workers.reserve(width);
    const bool logging = proof_sink() != nullptr && primary_log_ != nullptr;
    std::vector<std::unique_ptr<ProofLog>> worker_logs;
    for (unsigned t = 0; t < width; ++t) {
      workers.push_back(make_worker(t, xch, stop_flag, /*diversify=*/
                                    portfolio_ || !deterministic_));
      if (logging) {
        // Each worker appends to its own log (no sharing, no locking);
        // the shared atomic stamp counter makes the logs merge into one
        // coherent order at the join below.
        worker_logs.push_back(std::make_unique<ProofLog>(&proof_stamp_));
        workers.back()->set_proof_log(worker_logs.back().get());
      }
    }
    std::vector<CheckJob> jobs(tasks, job);
    std::vector<Outcome> outcomes(tasks, Outcome::Unknown);
    std::vector<util::StopReason> reasons(tasks, util::StopReason::kNone);
    // parallel_for_static pins task i to pool worker i % width, and each
    // pool worker runs its tasks in order — so worker context i % width
    // is never shared between live tasks, and in determinism mode the
    // whole execution is a pure function of (problem, threads).
    util::parallel_for_static(tasks, width, [&](std::size_t i) {
      if (cube_mode) jobs[i].cube = &cubes[i];
      SearchContext& ctx = *workers[i % width];
      const Outcome out = ctx.solve(jobs[i]);
      outcomes[i] = out;
      // Captured per task, right here: the same context runs several
      // tasks, and reading ctx.stop_reason() after the join would only
      // see each worker's *last* reason (losing, e.g., an injected
      // worker kill that an uneventful later cube overwrote).
      reasons[i] = ctx.stop_reason();
      if (stop_flag != nullptr) {
        // Early cancellation: a Sat decides the whole check in cube
        // mode; any definitive verdict decides it in portfolio mode.
        if (out == Outcome::Sat ||
            (!cube_mode && out == Outcome::Unsat)) {
          stop.store(true, std::memory_order_relaxed);
        }
      }
    });
    // All workers joined: merge their proof logs into the session trace
    // (emit_certificate stamp-sorts before serializing).
    for (const auto& wl : worker_logs) wl->drain_into(trace_);

    // Combine: order-independent over the outcome multiset.
    SatResult verdict;
    std::size_t decider = tasks;
    if (cube_mode) {
      bool all_unsat = true;
      for (std::size_t i = 0; i < tasks; ++i) {
        if (outcomes[i] == Outcome::Sat) {
          decider = i;
          break;
        }
        if (outcomes[i] != Outcome::Unsat) all_unsat = false;
      }
      if (decider < tasks) {
        verdict = SatResult::Sat;
      } else if (all_unsat) {
        verdict = SatResult::Unsat;
        // The certificate must close the case split: record the refuted
        // cubes so the serializer can fold ¬cube clauses down to empty.
        last_cubes_ = std::move(cubes);
        // Union of the per-cube assumption cores, in cube order.
        std::vector<ExprId> core;
        std::set<ExprId> seen;
        for (std::size_t i = 0; i < tasks; ++i) {
          for (ExprId e : workers[i % width]->core()) {
            if (seen.insert(e).second) core.push_back(e);
          }
        }
        if (!core.empty()) store_core(std::move(core));
      } else {
        verdict = SatResult::Unknown;
      }
    } else {
      verdict = SatResult::Unknown;
      for (std::size_t i = 0; i < tasks; ++i) {
        if (outcomes[i] == Outcome::Sat) {
          verdict = SatResult::Sat;
          decider = i;
          break;
        }
        if (outcomes[i] == Outcome::Unsat && verdict != SatResult::Sat) {
          if (decider == tasks) decider = i;
          verdict = SatResult::Unsat;
        }
      }
      if (verdict == SatResult::Unsat &&
          !workers[decider % width]->core().empty()) {
        store_core(std::vector<ExprId>(workers[decider % width]->core()));
      }
    }
    if (verdict == SatResult::Sat) {
      store_model(Model(workers[decider % width]->model()));
    }
    if (verdict == SatResult::Unknown) {
      // Combine the reasons of every non-definite task (highest priority
      // wins) so the degraded verdict is never silent.
      util::StopReason why = util::StopReason::kNone;
      for (std::size_t i = 0; i < tasks; ++i) {
        if (outcomes[i] == Outcome::Sat || outcomes[i] == Outcome::Unsat) {
          continue;
        }
        why = util::combine(why, outcomes[i] == Outcome::Budget
                                     ? util::StopReason::kConflictBudget
                                     : reasons[i]);
      }
      if (why == util::StopReason::kNone) why = util::StopReason::kDegraded;
      last_stop_ = util::combine(last_stop_, why);
    }
    if (audit_enabled() && xch != nullptr) {
      // All workers have joined: everything published this check is
      // visible, so vet the whole exchange before harvesting it back.
      Auditor::check_exchange(*xch, sh_.num_bvars, "parallel-harvest");
    }
    harvest(workers);
    return verdict;
  }

  const ExprFactory& f_;

  // Translation state (persists across check() calls and pop()).
  std::vector<ExprId> roots_;
  std::vector<std::size_t> scopes_;  // push() marks into roots_
  std::size_t translated_roots_ = 0;
  std::vector<Lit> root_lits_;  // per translated root, aligned with roots_
  std::unordered_map<ExprId, Lit> lit_memo_;
  std::unordered_map<ExprId, int> int_index_;
  std::unordered_map<std::string, int> atom_index_;
  bool trivially_unsat_ = false;

  // The encoded problem, shared read-only by every search context, and
  // the primary context that persists learning across checks and pops.
  SharedProblem sh_;
  std::unique_ptr<SearchContext> primary_;
  SolveStats extra_;  // accumulated counters of completed workers

  // Proof logging state (alive for the session; empty until a sink is
  // attached). The stamp counter is shared by the primary context's log
  // and every ephemeral worker log so the merged trace totally orders all
  // learning; the lemma cache persists branch-and-cut re-derivations
  // across certificates (incremental sessions re-serialize the cumulative
  // trace on every Unsat).
  std::atomic<std::uint64_t> proof_stamp_{0};
  std::unique_ptr<ProofLog> primary_log_;
  std::vector<ProofRecord> trace_;
  std::vector<std::vector<Lit>> last_cubes_;
  std::unordered_map<std::string, std::string> lemma_cache_;
  bool unlogged_checks_ = false;

  unsigned threads_ = 1;
  bool deterministic_ = false;
  bool portfolio_ = false;
  // Why the in-flight check degraded (kNone while it is on track for a
  // definite verdict); published to SolveStats by refresh_stats().
  util::StopReason last_stop_ = util::StopReason::kNone;
};

}  // namespace

std::unique_ptr<Solver> make_native_solver(const ExprFactory& factory) {
  return std::make_unique<NativeSolver>(factory);
}

}  // namespace advocat::smt
