// In-tree DPLL(T) solver for the bounded linear-integer encodings.
// See native_solver.hpp for the algorithm overview.
#include "smt/native_solver.hpp"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace advocat::smt {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::int64_t kNegInf = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kPosInf = std::numeric_limits<std::int64_t>::max();
// Derived bounds are clamped strictly inside the sentinels.
constexpr std::int64_t kBoundClamp = std::int64_t{1} << 60;
// Finite window probed for variables the constraints never bounded; an
// exhausted probe degrades Unsat to Unknown (Sat stays exact). Small on
// purpose: genuinely free variables (flow circulations) are either pinned
// by equality propagation or accept their lower bound, so wide windows
// only slow refutation down.
constexpr std::int64_t kUnboundedProbes = 4;
// Branch-and-bound node budget per boolean leaf; an exhausted budget
// degrades the leaf to Unknown so one pathological leaf cannot stall the
// whole search.
constexpr std::uint64_t kIntNodeBudget = 50'000;
// Widest finite domain enumerated exhaustively before the same degradation.
constexpr std::int64_t kEnumWindow = 1 << 16;

// Literal encoding: variable v -> positive literal 2v, negated 2v+1.
using Lit = std::int32_t;
inline Lit mk_lit(int v, bool negated) {
  return static_cast<Lit>(2 * v + (negated ? 1 : 0));
}
inline Lit neg(Lit l) { return l ^ 1; }
inline int var_of(Lit l) { return l >> 1; }
inline bool is_neg(Lit l) { return (l & 1) != 0; }

enum Val : std::int8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

// Σ terms ≤ bound over integer-variable indices.
struct StaticRow {
  std::vector<std::pair<int, std::int64_t>> terms;
  std::int64_t bound = 0;
};

struct Atom {
  std::vector<std::pair<int, std::int64_t>> terms;
  std::int64_t bound = 0;
  bool is_eq = false;
  std::vector<StaticRow> when_true;   // Le: {≤}; Eq: {≤, ≥}
  std::vector<StaticRow> when_false;  // Le: {>}; Eq: empty (disequality)
};

struct Timeout {};

// floor(a / b) for b > 0, exact in __int128.
__int128 floor_div(__int128 a, std::int64_t b) {
  __int128 q = a / b;
  if (a % b != 0 && a < 0) --q;
  return q;
}

class NativeSolver final : public Solver {
 public:
  explicit NativeSolver(const ExprFactory& factory) : f_(factory) {
    true_var_ = new_bvar();
    def_units_.push_back(mk_lit(true_var_, false));
  }

  void add(ExprId assertion) override { roots_.push_back(assertion); }

  // Scopes are marks into roots_. Translation artifacts (Tseitin gate
  // clauses, atoms, variables) are *definitional* — for any assignment of
  // the original variables there is a consistent assignment of the gates —
  // so they are sound to keep forever; pop() only retracts the unit
  // literals that assert the scoped roots.
  void push() override { scopes_.push_back(roots_.size()); }

  void pop() override {
    if (scopes_.empty()) {
      throw std::logic_error("NativeSolver::pop: no open scope");
    }
    const std::size_t mark = scopes_.back();
    scopes_.pop_back();
    roots_.resize(mark);
    if (translated_roots_ > mark) {
      translated_roots_ = mark;
      root_lits_.resize(mark);
    }
  }

  [[nodiscard]] std::size_t num_scopes() const override {
    return scopes_.size();
  }

 protected:
  SatResult do_check(const std::vector<ExprId>& assumptions,
                     unsigned timeout_ms) override {
    deadline_active_ = timeout_ms > 0;
    if (deadline_active_) {
      deadline_ = Clock::now() + std::chrono::milliseconds(timeout_ms);
    }
    ops_ = 0;
    stat_decisions_ = stat_conflicts_ = stat_leaves_ = stat_int_nodes_ = 0;
    SatResult result;
    try {
      result = run_check(assumptions);
    } catch (const Timeout&) {
      result = SatResult::Unknown;
    }
    if (std::getenv("ADVOCAT_NATIVE_STATS") != nullptr) {
      std::fprintf(stderr,
                   "[native] %s: %llu decisions, %llu conflicts, %llu leaves, "
                   "%llu int nodes, %d bool vars, %zu atoms, %zu clauses\n",
                   smt::to_string(result),
                   static_cast<unsigned long long>(stat_decisions_),
                   static_cast<unsigned long long>(stat_conflicts_),
                   static_cast<unsigned long long>(stat_leaves_),
                   static_cast<unsigned long long>(stat_int_nodes_),
                   num_bvars_, atoms_.size(), clauses_.size());
    }
    return result;
  }

 private:
  // ------------------------------------------------------------ translation

  int new_bvar() {
    atom_of_var_.push_back(-1);
    return num_bvars_++;
  }

  int int_var(ExprId id, const std::string& name) {
    auto it = int_index_.find(id);
    if (it != int_index_.end()) return it->second;
    const int v = static_cast<int>(int_names_.size());
    int_names_.push_back(name);
    int_index_.emplace(id, v);
    return v;
  }

  void add_clause(std::vector<Lit> c) {
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    for (std::size_t i = 0; i + 1 < c.size(); ++i) {
      if (c[i + 1] == (c[i] ^ 1)) return;  // tautology: l and ¬l adjacent
    }
    if (c.empty()) {
      trivially_unsat_ = true;
    } else if (c.size() == 1) {
      def_units_.push_back(c[0]);
    } else {
      clauses_.push_back(std::move(c));
    }
  }

  void linearize(ExprId id, std::int64_t scale,
                 std::map<int, std::int64_t>& coeffs, std::int64_t& constant) {
    const Node& n = f_.node(id);
    switch (n.op) {
      case Op::IntConst: constant += scale * n.value; break;
      case Op::IntVar: coeffs[int_var(id, n.name)] += scale; break;
      case Op::Add:
        for (ExprId k : n.kids) linearize(k, scale, coeffs, constant);
        break;
      case Op::MulConst: linearize(n.kids[0], scale * n.value, coeffs, constant); break;
      default:
        throw std::logic_error("native solver: expected integer expression");
    }
  }

  Lit translate_atom(const Node& n) {
    std::map<int, std::int64_t> coeffs;
    std::int64_t constant = 0;
    linearize(n.kids[0], 1, coeffs, constant);
    linearize(n.kids[1], -1, coeffs, constant);

    Atom a;
    a.is_eq = n.op == Op::Eq;
    for (const auto& [v, c] : coeffs) {
      if (c != 0) a.terms.emplace_back(v, c);
    }
    a.bound = -constant;
    if (a.terms.empty()) {
      const bool truth = a.is_eq ? (a.bound == 0) : (0 <= a.bound);
      return mk_lit(true_var_, !truth);
    }
    if (a.is_eq && a.terms[0].second < 0) {  // canonical sign for dedup
      for (auto& t : a.terms) t.second = -t.second;
      a.bound = -a.bound;
    }
    std::string key(a.is_eq ? "=" : "<");
    for (const auto& [v, c] : a.terms) {
      key += std::to_string(v) + "*" + std::to_string(c) + ",";
    }
    key += std::to_string(a.bound);
    auto it = atom_index_.find(key);
    if (it != atom_index_.end()) return mk_lit(it->second, false);

    const StaticRow le{a.terms, a.bound};
    StaticRow flipped;
    flipped.terms = a.terms;
    for (auto& t : flipped.terms) t.second = -t.second;
    if (a.is_eq) {
      flipped.bound = -a.bound;
      a.when_true = {le, flipped};  // when_false stays empty: disequality
    } else {
      flipped.bound = -a.bound - 1;  // ¬(Σ ≤ b)  ⇔  -Σ ≤ -b-1
      a.when_true = {le};
      a.when_false = {flipped};
    }
    const int v = new_bvar();
    const int ai = static_cast<int>(atoms_.size());
    atom_of_var_[v] = ai;
    atom_var_.push_back(v);
    for (const auto& [iv, c] : a.terms) {
      (void)c;
      if (static_cast<std::size_t>(iv) >= atom_occ_.size()) {
        atom_occ_.resize(static_cast<std::size_t>(iv) + 1);
      }
      atom_occ_[static_cast<std::size_t>(iv)].push_back(ai);
    }
    atoms_.push_back(std::move(a));
    atom_index_.emplace(std::move(key), v);
    return mk_lit(v, false);
  }

  Lit translate_bool(ExprId id) {
    auto memo = lit_memo_.find(id);
    if (memo != lit_memo_.end()) return memo->second;
    const Node& n = f_.node(id);
    Lit res = 0;
    switch (n.op) {
      case Op::BoolConst: res = mk_lit(true_var_, n.value == 0); break;
      case Op::BoolVar: {
        const int v = new_bvar();
        named_bools_.emplace_back(v, n.name);
        res = mk_lit(v, false);
        break;
      }
      case Op::Not: res = neg(translate_bool(n.kids[0])); break;
      case Op::And: {
        const Lit g = mk_lit(new_bvar(), false);
        std::vector<Lit> big{g};
        for (ExprId kid : n.kids) {
          const Lit k = translate_bool(kid);
          add_clause({neg(g), k});
          big.push_back(neg(k));
        }
        add_clause(std::move(big));
        res = g;
        break;
      }
      case Op::Or: {
        const Lit g = mk_lit(new_bvar(), false);
        std::vector<Lit> big{neg(g)};
        for (ExprId kid : n.kids) {
          const Lit k = translate_bool(kid);
          add_clause({g, neg(k)});
          big.push_back(k);
        }
        add_clause(std::move(big));
        res = g;
        break;
      }
      case Op::Implies: {
        const Lit a = translate_bool(n.kids[0]);
        const Lit b = translate_bool(n.kids[1]);
        const Lit g = mk_lit(new_bvar(), false);  // g ↔ (¬a ∨ b)
        add_clause({neg(g), neg(a), b});
        add_clause({g, a});
        add_clause({g, neg(b)});
        res = g;
        break;
      }
      case Op::Iff: {
        const Lit a = translate_bool(n.kids[0]);
        const Lit b = translate_bool(n.kids[1]);
        const Lit g = mk_lit(new_bvar(), false);  // g ↔ (a ↔ b)
        add_clause({neg(g), neg(a), b});
        add_clause({neg(g), a, neg(b)});
        add_clause({g, a, b});
        add_clause({g, neg(a), neg(b)});
        res = g;
        break;
      }
      case Op::Eq:
      case Op::Le:
        res = translate_atom(n);
        break;
      default:
        throw std::logic_error("native solver: expected boolean expression");
    }
    lit_memo_.emplace(id, res);
    return res;
  }

  // ----------------------------------------------------------------- search

  void bump_ops() {
    if (deadline_active_ && (++ops_ & 0xfff) == 0 && Clock::now() > deadline_) {
      throw Timeout{};
    }
  }

  [[nodiscard]] Val value_lit(Lit l) const {
    const Val v = assign_[static_cast<std::size_t>(var_of(l))];
    if (v == kUndef) return kUndef;
    return is_neg(l) ? (v == kTrue ? kFalse : kTrue) : v;
  }

  bool enqueue(Lit l) {
    const int v = var_of(l);
    const Val want = is_neg(l) ? kFalse : kTrue;
    const Val cur = assign_[static_cast<std::size_t>(v)];
    if (cur != kUndef) return cur == want;
    assign_[static_cast<std::size_t>(v)] = want;
    trail_.push_back(l);
    return true;
  }

  bool propagate_bool() {
    while (qhead_ < trail_.size()) {
      bump_ops();
      const Lit l = trail_[qhead_++];
      const Lit fl = neg(l);
      auto& ws = watches_[static_cast<std::size_t>(fl)];
      std::size_t i = 0;
      std::size_t keep = 0;
      bool conflict = false;
      while (i < ws.size()) {
        const int ci = ws[i];
        auto& c = clauses_[static_cast<std::size_t>(ci)];
        if (c[0] == fl) std::swap(c[0], c[1]);
        if (value_lit(c[0]) == kTrue) {  // clause already satisfied
          ws[keep++] = ws[i++];
          continue;
        }
        bool moved = false;
        for (std::size_t k = 2; k < c.size(); ++k) {
          if (value_lit(c[k]) != kFalse) {
            std::swap(c[1], c[k]);
            watches_[static_cast<std::size_t>(c[1])].push_back(ci);
            moved = true;
            break;
          }
        }
        if (moved) {
          ++i;  // watch migrated away from fl
          continue;
        }
        if (!enqueue(c[0])) {  // unit clause contradicted
          conflict = true;
          while (i < ws.size()) ws[keep++] = ws[i++];
          break;
        }
        ws[keep++] = ws[i++];
      }
      ws.resize(keep);
      if (conflict) return true;
    }
    return false;
  }

  // Undo entries are deduplicated per era (one per variable side between
  // two restore points): interval propagation on an infeasible integer
  // cycle can walk a bound by 1 for billions of steps, and logging every
  // step would exhaust memory long before the tightening budget triggers.
  void set_bound(int v, bool is_hi, std::int64_t val) {
    auto& slot = is_hi ? hi_[static_cast<std::size_t>(v)]
                       : lo_[static_cast<std::size_t>(v)];
    auto& stamp = is_hi ? hi_stamp_[static_cast<std::size_t>(v)]
                        : lo_stamp_[static_cast<std::size_t>(v)];
    if (stamp != undo_era_) {
      stamp = undo_era_;
      undo_.emplace_back(v, is_hi, slot);
    }
    slot = val;
    if (dirty_stamp_[static_cast<std::size_t>(v)] != dirty_gen_) {
      dirty_stamp_[static_cast<std::size_t>(v)] = dirty_gen_;
      dirty_vars_.push_back(v);
    }
  }

  void undo_to(std::size_t mark) {
    while (undo_.size() > mark) {
      const auto& [v, is_hi, old] = undo_.back();
      (is_hi ? hi_[static_cast<std::size_t>(v)]
             : lo_[static_cast<std::size_t>(v)]) = old;
      undo_.pop_back();
    }
    ++undo_era_;  // stamps from before the restore are no longer valid
  }

  void activate_row(const StaticRow* r) {
    const int ri = static_cast<int>(active_rows_.size());
    active_rows_.push_back(r);
    for (const auto& [v, c] : r->terms) {
      (void)c;
      row_occ_[static_cast<std::size_t>(v)].push_back(ri);
    }
    row_work_.push_back(ri);
  }

  void deactivate_rows_to(std::size_t mark) {
    while (active_rows_.size() > mark) {
      const StaticRow* r = active_rows_.back();
      for (const auto& [v, c] : r->terms) {
        (void)c;
        row_occ_[static_cast<std::size_t>(v)].pop_back();
      }
      active_rows_.pop_back();
    }
  }

  /// Interval tightening to fixpoint over the worklist; true on conflict.
  /// Bounded: an infeasible integer cycle makes the fixpoint walk bounds
  /// one unit per lap (no finite convergence), so refinement stops after a
  /// budget proportional to the active system — sound, merely less
  /// pruning, and the leaf search degrades the verdict to Unknown.
  bool propagate_rows() {
    std::uint64_t budget = 64 * active_rows_.size() + 1024;
    while (!row_work_.empty()) {
      if (budget == 0) {
        row_work_.clear();
        return false;
      }
      bump_ops();
      const int ri = row_work_.back();
      row_work_.pop_back();
      const StaticRow& r = *active_rows_[static_cast<std::size_t>(ri)];

      __int128 minsum = 0;
      int ninf = 0;
      for (const auto& [v, c] : r.terms) {
        const std::int64_t b =
            c > 0 ? lo_[static_cast<std::size_t>(v)] : hi_[static_cast<std::size_t>(v)];
        if (b == kNegInf || b == kPosInf) ++ninf;
        else minsum += static_cast<__int128>(c) * b;
      }
      if (ninf == 0 && minsum > r.bound) {
        row_work_.clear();
        return true;
      }
      for (const auto& [v, c] : r.terms) {
        const std::int64_t b =
            c > 0 ? lo_[static_cast<std::size_t>(v)] : hi_[static_cast<std::size_t>(v)];
        const bool self_inf = (b == kNegInf || b == kPosInf);
        if (ninf - (self_inf ? 1 : 0) > 0) continue;  // another var unbounded
        const __int128 rest =
            self_inf ? minsum : minsum - static_cast<__int128>(c) * b;
        const __int128 slack = static_cast<__int128>(r.bound) - rest;
        // Derived bounds are clamped only toward looseness: a bound beyond
        // +/-kBoundClamp is either dropped (no information) or relaxed to
        // the clamp, never tightened past what the row entails — claiming
        // a tighter bound than entailed could turn Sat into Unsat.
        bool changed = false;
        if (c > 0) {  // c·v ≤ slack  →  v ≤ ⌊slack/c⌋
          const __int128 nb = floor_div(slack, c);
          if (nb <= kBoundClamp && nb < hi_[static_cast<std::size_t>(v)]) {
            set_bound(v, true,
                      nb < -kBoundClamp ? -kBoundClamp
                                        : static_cast<std::int64_t>(nb));
            changed = true;
          }
        } else {  // c·v ≤ slack, c<0  →  v ≥ ⌈slack/c⌉ = -⌊slack/(-c)⌋
          const __int128 nb = -floor_div(slack, -c);
          if (nb >= -kBoundClamp && nb > lo_[static_cast<std::size_t>(v)]) {
            set_bound(v, false,
                      nb > kBoundClamp ? kBoundClamp
                                       : static_cast<std::int64_t>(nb));
            changed = true;
          }
        }
        if (changed) {
          --budget;
          if (lo_[static_cast<std::size_t>(v)] > hi_[static_cast<std::size_t>(v)]) {
            row_work_.clear();
            return true;
          }
          for (int rj : row_occ_[static_cast<std::size_t>(v)]) {
            row_work_.push_back(rj);
          }
          if (budget == 0) break;
        }
      }
    }
    return false;
  }

  /// Activates the theory rows of atoms assigned since the last call and
  /// re-runs bounds propagation; true on conflict.
  bool activate_theory() {
    row_work_.clear();
    for (; theory_head_ < trail_.size(); ++theory_head_) {
      const Lit l = trail_[theory_head_];
      const int v = var_of(l);
      const int ai = atom_of_var_[static_cast<std::size_t>(v)];
      if (ai < 0) continue;
      const Atom& a = atoms_[static_cast<std::size_t>(ai)];
      const bool tv = !is_neg(l);
      for (const StaticRow& r : tv ? a.when_true : a.when_false) {
        activate_row(&r);
      }
      if (a.is_eq && !tv) active_diseqs_.push_back(ai);
    }
    return propagate_rows();
  }

  /// Enqueues unassigned atom literals the current bounds entail; the
  /// boolean search then never has to rediscover them by conflict. Only
  /// atoms over variables whose bounds changed since the last scan are
  /// re-evaluated (set_bound records them in dirty_vars_).
  bool propagate_entailed_atoms() {
    bool any = false;
    scan_stamp_.resize(atoms_.size(), 0);
    ++scan_gen_;
    for (std::size_t at = 0; at < dirty_vars_.size(); ++at) {
      const int iv = dirty_vars_[at];
      if (static_cast<std::size_t>(iv) >= atom_occ_.size()) continue;
      for (const int ai : atom_occ_[static_cast<std::size_t>(iv)]) {
        if (scan_stamp_[static_cast<std::size_t>(ai)] == scan_gen_) continue;
        scan_stamp_[static_cast<std::size_t>(ai)] = scan_gen_;
        const int v = atom_var_[static_cast<std::size_t>(ai)];
        if (assign_[static_cast<std::size_t>(v)] != kUndef) continue;
        const Atom& a = atoms_[static_cast<std::size_t>(ai)];
        int entailed = 0;  // +1 atom true, -1 atom false
        if (!a.is_eq) {
          entailed = row_status(a.when_true[0]);
        } else {
          const int s0 = row_status(a.when_true[0]);
          const int s1 = row_status(a.when_true[1]);
          if (s0 < 0 || s1 < 0) entailed = -1;
          else if (s0 > 0 && s1 > 0) entailed = +1;
        }
        if (entailed != 0) {
          const bool ok = enqueue(mk_lit(v, entailed < 0));
          (void)ok;  // the variable was unassigned
          any = true;
        }
      }
    }
    clear_dirty();
    return any;
  }

  void clear_dirty() {
    dirty_vars_.clear();
    ++dirty_gen_;
  }

  bool propagate_all() {
    for (;;) {
      if (propagate_bool()) return true;
      if (theory_head_ != trail_.size()) {
        if (activate_theory()) return true;
        continue;  // theory may tighten bounds; rescan atoms below
      }
      if (!propagate_entailed_atoms()) return false;
    }
  }

  /// Entailment of an atom's ≤-row under the current bounds: +1 forced
  /// true, -1 forced false, 0 open.
  int row_status(const StaticRow& r) const {
    __int128 minsum = 0, maxsum = 0;
    int min_inf = 0, max_inf = 0;
    for (const auto& [v, c] : r.terms) {
      const std::int64_t lo = lo_[static_cast<std::size_t>(v)];
      const std::int64_t hi = hi_[static_cast<std::size_t>(v)];
      const std::int64_t toward_min = c > 0 ? lo : hi;
      const std::int64_t toward_max = c > 0 ? hi : lo;
      if (toward_min == kNegInf || toward_min == kPosInf) ++min_inf;
      else minsum += static_cast<__int128>(c) * toward_min;
      if (toward_max == kNegInf || toward_max == kPosInf) ++max_inf;
      else maxsum += static_cast<__int128>(c) * toward_max;
    }
    if (min_inf == 0 && minsum > r.bound) return -1;
    if (max_inf == 0 && maxsum <= r.bound) return +1;
    return 0;
  }

  /// Saved phase from the previous check (incremental-session heuristic):
  /// successive checks on one session usually differ by a few assumptions,
  /// so steering undetermined decisions toward the last check's assignment
  /// re-walks the unchanged part of the search space without conflicts.
  bool saved_phase_negated(int v, bool fallback) const {
    if (static_cast<std::size_t>(v) < saved_phase_.size() &&
        saved_phase_[static_cast<std::size_t>(v)] != kUndef) {
      return saved_phase_[static_cast<std::size_t>(v)] == kFalse;
    }
    return fallback;
  }

  /// Phase for deciding an atom variable: follow what the bounds already
  /// entail so the first branch is not an immediate theory conflict; when
  /// the bounds leave the atom open, fall back to the saved phase.
  bool decide_phase_negated(int v) const {
    const int ai = atom_of_var_[static_cast<std::size_t>(v)];
    if (ai < 0) return saved_phase_negated(v, true);  // plain boolean
    const Atom& a = atoms_[static_cast<std::size_t>(ai)];
    if (!a.is_eq) {
      const int s = row_status(a.when_true[0]);
      if (s != 0) return s < 0;
      return saved_phase_negated(v, true);
    }
    // Equality: forced false when the bound lies outside [min, max] of
    // either direction; forced true only when both rows are entailed.
    const int s0 = row_status(a.when_true[0]);
    const int s1 = row_status(a.when_true[1]);
    if (s0 < 0 || s1 < 0) return true;
    if (s0 > 0 && s1 > 0) return false;
    return saved_phase_negated(v, true);
  }

  struct LevelMark {
    Lit decision;
    std::size_t trail, rows, diseqs, undo;
    int cursor;
  };

  void push_level(Lit decision) {
    ++undo_era_;
    levels_.push_back(LevelMark{decision, trail_.size(), active_rows_.size(),
                                active_diseqs_.size(), undo_.size(), cursor_});
    const bool ok = enqueue(decision);
    (void)ok;  // the decision variable is unassigned by construction
  }

  void backtrack_flip() {
    const LevelMark mark = levels_.back();
    levels_.pop_back();
    while (trail_.size() > mark.trail) {
      assign_[static_cast<std::size_t>(var_of(trail_.back()))] = kUndef;
      trail_.pop_back();
    }
    qhead_ = mark.trail;
    theory_head_ = mark.trail;
    deactivate_rows_to(mark.rows);
    active_diseqs_.resize(mark.diseqs);
    undo_to(mark.undo);
    row_work_.clear();
    clear_dirty();  // loosened bounds cannot newly entail anything
    cursor_ = mark.cursor;
    const bool ok = enqueue(neg(mark.decision));
    (void)ok;  // unassigned after the pop
  }

  int next_unassigned() {
    while (cursor_ < num_bvars_ &&
           assign_[static_cast<std::size_t>(cursor_)] != kUndef) {
      ++cursor_;
    }
    return cursor_ < num_bvars_ ? cursor_ : -1;
  }

  void capture_model() {
    Model m;
    for (const auto& [v, name] : named_bools_) {
      if (assign_[static_cast<std::size_t>(v)] != kUndef) {
        m.set_bool(name, assign_[static_cast<std::size_t>(v)] == kTrue);
      }
    }
    for (std::size_t v = 0; v < int_names_.size(); ++v) {
      if (lo_[v] != kNegInf && lo_[v] == hi_[v]) {
        m.set_int(int_names_[v], lo_[v]);
      }
    }
    store_model(std::move(m));
  }

  /// Branch-and-bound completion of the integer domains at a full boolean
  /// assignment. Sat captures the model before returning.
  SatResult int_branch(const std::vector<int>& branch_vars) {
    bump_ops();
    ++stat_int_nodes_;
    if (int_budget_ == 0) return SatResult::Unknown;
    --int_budget_;
    int best = -1;
    std::int64_t best_width = kPosInf;
    for (int v : branch_vars) {
      const std::int64_t lo = lo_[static_cast<std::size_t>(v)];
      const std::int64_t hi = hi_[static_cast<std::size_t>(v)];
      if (lo == hi) continue;
      const std::int64_t width =
          (lo == kNegInf || hi == kPosInf) ? kPosInf - 1 : hi - lo;
      if (width < best_width) {
        best_width = width;
        best = v;
      }
    }
    if (best < 0) {  // every constrained variable is fixed
      for (int ai : active_diseqs_) {
        const Atom& a = atoms_[static_cast<std::size_t>(ai)];
        __int128 sum = 0;
        for (const auto& [v, c] : a.terms) {
          sum += static_cast<__int128>(c) * lo_[static_cast<std::size_t>(v)];
        }
        if (sum == a.bound) return SatResult::Unsat;  // disequality violated
      }
      capture_model();
      return SatResult::Sat;
    }

    const std::int64_t lo = lo_[static_cast<std::size_t>(best)];
    const std::int64_t hi = hi_[static_cast<std::size_t>(best)];
    std::vector<std::int64_t> values;
    bool artificial = false;
    if (lo != kNegInf && hi != kPosInf && hi - lo <= kEnumWindow) {
      // Descending: deadlock candidates live at high occupancy, and fuller
      // queues make more informative witnesses.
      for (std::int64_t x = hi; x >= lo; --x) values.push_back(x);
    } else if (lo != kNegInf) {
      artificial = true;
      for (std::int64_t x = lo; x < lo + kUnboundedProbes; ++x) values.push_back(x);
    } else if (hi != kPosInf) {
      artificial = true;
      for (std::int64_t x = hi; x > hi - kUnboundedProbes; --x) values.push_back(x);
    } else {
      artificial = true;
      values.push_back(0);
      for (std::int64_t x = 1; x <= kUnboundedProbes / 2; ++x) {
        values.push_back(x);
        values.push_back(-x);
      }
    }

    bool unknown = false;
    for (const std::int64_t val : values) {
      const std::size_t mark = undo_.size();
      ++undo_era_;
      set_bound(best, false, val);
      set_bound(best, true, val);
      row_work_.clear();
      for (int rj : row_occ_[static_cast<std::size_t>(best)]) {
        row_work_.push_back(rj);
      }
      if (!propagate_rows()) {
        const SatResult r = int_branch(branch_vars);
        if (r == SatResult::Sat) {
          undo_to(mark);
          return SatResult::Sat;
        }
        if (r == SatResult::Unknown) unknown = true;
      }
      undo_to(mark);
    }
    if (artificial) unknown = true;
    return unknown ? SatResult::Unknown : SatResult::Unsat;
  }

  SatResult int_complete() {
    std::vector<int> branch_vars;
    std::vector<char> seen(int_names_.size(), 0);
    auto mark_var = [&](int v) {
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        branch_vars.push_back(v);
      }
    };
    for (const StaticRow* r : active_rows_) {
      for (const auto& [v, c] : r->terms) {
        (void)c;
        mark_var(v);
      }
    }
    for (int ai : active_diseqs_) {
      for (const auto& [v, c] : atoms_[static_cast<std::size_t>(ai)].terms) {
        (void)c;
        mark_var(v);
      }
    }
    const std::size_t mark = undo_.size();
    ++undo_era_;
    int_budget_ = kIntNodeBudget;
    const SatResult r = int_branch(branch_vars);
    if (r != SatResult::Sat) undo_to(mark);
    return r;
  }

  /// Prepares the search state for a fresh check while keeping everything
  /// that is expensive to rebuild: the clause database and its watch lists
  /// (the two-watched-literal invariant is assignment-relative, and every
  /// assignment is unwound here), the Tseitin/atom translation caches, and
  /// the bounds-undo machinery. Per-variable and per-clause structures only
  /// ever *grow* for material translated since the previous check.
  void reset_search() {
    // Unwind the previous check: restore every bound changed since scope 0
    // (Sat leaves bounds pinned for model capture) and unassign the trail,
    // saving its polarities as the next check's phase hints.
    levels_.clear();
    deactivate_rows_to(0);
    undo_to(0);
    saved_phase_.resize(static_cast<std::size_t>(num_bvars_), kUndef);
    for (Lit l : trail_) {
      const auto v = static_cast<std::size_t>(var_of(l));
      saved_phase_[v] = assign_[v];
      assign_[v] = kUndef;
    }
    trail_.clear();
    qhead_ = theory_head_ = 0;
    active_diseqs_.clear();
    row_work_.clear();
    clear_dirty();

    // Grow for material translated since the last check.
    assign_.resize(static_cast<std::size_t>(num_bvars_), kUndef);
    watches_.resize(static_cast<std::size_t>(2 * num_bvars_));
    for (; watched_clauses_ < clauses_.size(); ++watched_clauses_) {
      const auto& c = clauses_[watched_clauses_];
      watches_[static_cast<std::size_t>(c[0])].push_back(
          static_cast<int>(watched_clauses_));
      watches_[static_cast<std::size_t>(c[1])].push_back(
          static_cast<int>(watched_clauses_));
    }
    const std::size_t n = int_names_.size();
    lo_.resize(n, kNegInf);
    hi_.resize(n, kPosInf);
    lo_stamp_.resize(n, 0);
    hi_stamp_.resize(n, 0);
    row_occ_.resize(n);
    dirty_stamp_.resize(n, 0);
    scan_stamp_.resize(atoms_.size(), 0);
    cursor_ = 0;
    saw_unknown_ = false;
  }

  SatResult run_check(const std::vector<ExprId>& assumptions) {
    for (; translated_roots_ < roots_.size(); ++translated_roots_) {
      root_lits_.push_back(translate_bool(roots_[translated_roots_]));
    }
    // Assumption literals reuse the same memoized translation, so repeated
    // probes over the same expressions add no clauses after the first.
    std::vector<Lit> assumption_lits;
    assumption_lits.reserve(assumptions.size());
    for (ExprId a : assumptions) assumption_lits.push_back(translate_bool(a));
    if (trivially_unsat_) return SatResult::Unsat;
    reset_search();
    for (Lit l : def_units_) {
      if (!enqueue(l)) return SatResult::Unsat;
    }
    for (Lit l : root_lits_) {
      if (!enqueue(l)) return SatResult::Unsat;
    }
    // Assumptions are forced at decision level 0: any conflict below the
    // first decision refutes the assertion set *under the assumptions*,
    // and the assignment dies with this check's trail — nothing persists.
    for (Lit l : assumption_lits) {
      if (!enqueue(l)) return SatResult::Unsat;
    }
    for (;;) {
      if (propagate_all()) {
        ++stat_conflicts_;
        if (levels_.empty()) {
          return saw_unknown_ ? SatResult::Unknown : SatResult::Unsat;
        }
        backtrack_flip();
        continue;
      }
      const int v = next_unassigned();
      if (v >= 0) {
        ++stat_decisions_;
        push_level(mk_lit(v, decide_phase_negated(v)));
        continue;
      }
      ++stat_leaves_;
      const SatResult leaf = int_complete();
      if (leaf == SatResult::Sat) return SatResult::Sat;
      if (leaf == SatResult::Unknown) saw_unknown_ = true;
      if (levels_.empty()) {
        return saw_unknown_ ? SatResult::Unknown : SatResult::Unsat;
      }
      backtrack_flip();
    }
  }

  const ExprFactory& f_;

  // Translation state (persists across check() calls and pop()).
  std::vector<ExprId> roots_;
  std::vector<std::size_t> scopes_;  // push() marks into roots_
  std::size_t translated_roots_ = 0;
  std::vector<Lit> root_lits_;  // per translated root, aligned with roots_
  std::unordered_map<ExprId, Lit> lit_memo_;
  int num_bvars_ = 0;
  int true_var_ = -1;
  std::vector<std::pair<int, std::string>> named_bools_;
  std::unordered_map<ExprId, int> int_index_;
  std::vector<std::string> int_names_;
  std::vector<int> atom_of_var_;  // bool var -> atom index or -1
  std::vector<int> atom_var_;     // atom index -> bool var
  std::vector<std::vector<int>> atom_occ_;  // int var -> atom indices
  std::vector<Atom> atoms_;
  std::unordered_map<std::string, int> atom_index_;
  std::vector<std::vector<Lit>> clauses_;
  std::size_t watched_clauses_ = 0;  // prefix of clauses_ with live watches
  std::vector<Lit> def_units_;  // definitional units (never retracted)
  bool trivially_unsat_ = false;

  // Search state (reset — but not reallocated — by reset_search()).
  std::vector<Val> assign_;
  std::vector<std::vector<int>> watches_;  // literal -> watching clauses
  std::vector<Lit> trail_;
  std::size_t qhead_ = 0;
  std::size_t theory_head_ = 0;
  std::vector<LevelMark> levels_;
  int cursor_ = 0;
  std::vector<std::int64_t> lo_, hi_;
  std::vector<std::uint64_t> lo_stamp_, hi_stamp_;
  std::uint64_t undo_era_ = 1;
  std::vector<std::tuple<int, bool, std::int64_t>> undo_;
  std::vector<const StaticRow*> active_rows_;
  std::vector<std::vector<int>> row_occ_;  // int var -> active row indices
  std::vector<int> active_diseqs_;         // atom indices asserted ≠
  std::vector<int> row_work_;
  std::vector<Val> saved_phase_;  // previous check's polarities (hints)
  std::vector<int> dirty_vars_;  // int vars with bound changes to rescan
  std::vector<std::uint64_t> dirty_stamp_;
  std::uint64_t dirty_gen_ = 1;
  std::vector<std::uint64_t> scan_stamp_;  // atom index -> last scan
  std::uint64_t scan_gen_ = 0;
  bool saw_unknown_ = false;
  std::uint64_t int_budget_ = 0;

  bool deadline_active_ = false;
  Clock::time_point deadline_;
  std::uint64_t ops_ = 0;
  std::uint64_t stat_decisions_ = 0, stat_conflicts_ = 0, stat_leaves_ = 0,
                 stat_int_nodes_ = 0;
};

}  // namespace

std::unique_ptr<Solver> make_native_solver(const ExprFactory& factory) {
  return std::make_unique<NativeSolver>(factory);
}

}  // namespace advocat::smt
