#include "smt/eval.hpp"

#include <stdexcept>

namespace advocat::smt {

bool eval_bool(const ExprFactory& f, const Model& m, ExprId e) {
  const Node& n = f.node(e);
  switch (n.op) {
    case Op::BoolConst: return n.value != 0;
    case Op::BoolVar: return m.bool_value(n.name);
    case Op::Not: return !eval_bool(f, m, n.kids[0]);
    case Op::And:
      for (ExprId k : n.kids) {
        if (!eval_bool(f, m, k)) return false;
      }
      return true;
    case Op::Or:
      for (ExprId k : n.kids) {
        if (eval_bool(f, m, k)) return true;
      }
      return false;
    case Op::Implies:
      return !eval_bool(f, m, n.kids[0]) || eval_bool(f, m, n.kids[1]);
    case Op::Iff: return eval_bool(f, m, n.kids[0]) == eval_bool(f, m, n.kids[1]);
    case Op::Eq: return eval_int(f, m, n.kids[0]) == eval_int(f, m, n.kids[1]);
    case Op::Le: return eval_int(f, m, n.kids[0]) <= eval_int(f, m, n.kids[1]);
    default:
      throw std::logic_error("eval_bool: integer expression");
  }
}

std::int64_t eval_int(const ExprFactory& f, const Model& m, ExprId e) {
  const Node& n = f.node(e);
  switch (n.op) {
    case Op::IntConst: return n.value;
    case Op::IntVar: return m.int_value(n.name);
    case Op::Add: {
      std::int64_t sum = 0;
      for (ExprId k : n.kids) sum += eval_int(f, m, k);
      return sum;
    }
    case Op::MulConst: return n.value * eval_int(f, m, n.kids[0]);
    default:
      throw std::logic_error("eval_int: boolean expression");
  }
}

}  // namespace advocat::smt
