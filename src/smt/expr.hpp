// Hash-consed expression AST for the SMT encodings.
//
// The deadlock detector builds boolean combinations of linear integer
// constraints. We keep our own small AST instead of building Z3 terms
// directly so that (a) encodings can be unit-tested and printed as SMT-LIB2
// without a solver, and (b) the solver backend stays swappable.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace advocat::smt {

using ExprId = std::int32_t;
inline constexpr ExprId kNoExpr = -1;

enum class Op : std::uint8_t {
  BoolConst,  // value: 0/1
  IntConst,   // value
  BoolVar,    // name
  IntVar,     // name
  And,        // kids...
  Or,         // kids...
  Not,        // kid
  Implies,    // kid0 -> kid1
  Eq,         // kid0 == kid1 (int)
  Le,         // kid0 <= kid1 (int)
  Add,        // sum of kids
  MulConst,   // value * kid0
  Iff,        // kid0 <-> kid1 (bool)
};

struct Node {
  Op op;
  std::int64_t value = 0;
  std::string name;           // variables only
  std::vector<ExprId> kids;
};

/// Arena of hash-consed nodes. All ExprIds are relative to one factory.
class ExprFactory {
 public:
  ExprId bool_const(bool v);
  ExprId int_const(std::int64_t v);
  ExprId bool_var(const std::string& name);
  ExprId int_var(const std::string& name);

  /// Flattens nested Ands, drops `true`, folds to `false` on any `false`.
  ExprId and_(std::vector<ExprId> kids);
  /// Flattens nested Ors, drops `false`, folds to `true` on any `true`.
  ExprId or_(std::vector<ExprId> kids);
  ExprId not_(ExprId e);
  ExprId implies(ExprId a, ExprId b);
  ExprId iff(ExprId a, ExprId b);
  ExprId eq(ExprId a, ExprId b);
  ExprId le(ExprId a, ExprId b);
  ExprId ge(ExprId a, ExprId b) { return le(b, a); }
  ExprId add(std::vector<ExprId> kids);
  ExprId mul_const(std::int64_t c, ExprId e);

  [[nodiscard]] const Node& node(ExprId id) const { return nodes_.at(static_cast<std::size_t>(id)); }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  /// All declared variables in creation order (name, is_bool).
  [[nodiscard]] const std::vector<std::pair<std::string, bool>>& variables() const {
    return vars_;
  }

  /// Pretty-printer for tests and debugging (infix, not SMT-LIB).
  [[nodiscard]] std::string to_string(ExprId id) const;

 private:
  ExprId intern(Node n);

  std::vector<Node> nodes_;
  std::unordered_map<std::string, ExprId> var_index_;
  std::unordered_map<std::uint64_t, std::vector<ExprId>> hash_index_;
  std::vector<std::pair<std::string, bool>> vars_;
};

}  // namespace advocat::smt
