// Certificate generation: re-derives each logged theory lemma's integer
// infeasibility as an explicit branch-and-cut proof tree (interval
// tightening with Chvátal–Gomory rounding, single-variable splits,
// disequality forcing, and exact Farkas combinations from a fresh rational
// simplex), then serializes the session trace into the line grammar the
// standalone checker (tools/proof_check.cpp) validates.
//
// The checker re-runs the *same* bound-tightening algorithm (tighten()
// below is duplicated there by design — the checker must not link solver
// code), so a proof step can reference derived bounds as `lo<v>` / `hi<v>`
// without serializing every intermediate derivation: both sides reach the
// identical bound state deterministically.
#include "smt/proof.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "linalg/simplex.hpp"
#include "util/bigint.hpp"
#include "util/rational.hpp"
#include "util/stopwatch.hpp"

namespace advocat::smt::native {
namespace {

using util::BigInt;
using util::Rational;

// ------------------------------------------------------ lemma certifier

// One ≤-inequality over the shared integer columns.
struct Ineq {
  std::vector<std::pair<int, std::int64_t>> terms;
  BigInt bound;
  std::string ref;  // proof reference: "p<i>" premise, "q<i>" the ≥-half
                    // of an equality premise
};

// One disequality premise (an equality atom asserted false).
struct Diseq {
  std::vector<std::pair<int, std::int64_t>> terms;
  std::int64_t bound = 0;
  std::size_t premise = 0;
};

struct VarBound {
  bool has = false;
  BigInt val;
};

// Branch state: the premise rows are shared; the bounds are copied per
// branch (splits only ever tighten bounds — a single-variable split is a
// bound update, not a new row).
struct CertState {
  std::vector<VarBound> lo, hi;
};

// floor(a/b) for b > 0 (BigInt division truncates toward zero).
BigInt floor_div_big(const BigInt& a, const BigInt& b) {
  BigInt q = a / b;
  if (!(a % b).is_zero() && a.is_negative()) q -= BigInt(1);
  return q;
}
constexpr int kTightenPasses = 64;

// Interval tightening to fixpoint (or pass budget) with integer rounding.
// Returns the crossed variable on contradiction, -1 otherwise. MUST stay
// behaviorally identical to the checker's copy: stop at the first
// crossing, rows in order, terms in order, full passes.
int tighten(const std::vector<Ineq>& rows, CertState& st) {
  for (int pass = 0; pass < kTightenPasses; ++pass) {
    bool changed = false;
    for (const Ineq& r : rows) {
      for (std::size_t ti = 0; ti < r.terms.size(); ++ti) {
        const int v = r.terms[ti].first;
        const std::int64_t c = r.terms[ti].second;
        BigInt rest(0);
        bool open = false;
        for (std::size_t tj = 0; tj < r.terms.size(); ++tj) {
          if (tj == ti) continue;
          const int u = r.terms[tj].first;
          const std::int64_t cu = r.terms[tj].second;
          const VarBound& b = cu > 0 ? st.lo[static_cast<std::size_t>(u)]
                                     : st.hi[static_cast<std::size_t>(u)];
          if (!b.has) {
            open = true;
            break;
          }
          rest += BigInt(cu) * b.val;
        }
        if (open) continue;
        const BigInt avail = r.bound - rest;  // c·v ≤ avail
        if (c > 0) {
          const BigInt nb = floor_div_big(avail, BigInt(c));
          VarBound& hb = st.hi[static_cast<std::size_t>(v)];
          if (!hb.has || nb < hb.val) {
            hb.has = true;
            hb.val = nb;
            changed = true;
          }
        } else {
          // c < 0: c·v ≤ avail ⇔ v ≥ avail/c; with cc = -c > 0 that is
          // v ≥ -(avail/cc), so lo = ceil(-avail/cc) = -floor(avail/cc).
          const BigInt nb = -floor_div_big(avail, BigInt(-c));
          VarBound& lb = st.lo[static_cast<std::size_t>(v)];
          if (!lb.has || nb > lb.val) {
            lb.has = true;
            lb.val = nb;
            changed = true;
          }
        }
        const VarBound& lb = st.lo[static_cast<std::size_t>(v)];
        const VarBound& hb = st.hi[static_cast<std::size_t>(v)];
        if (lb.has && hb.has && lb.val > hb.val) return v;
      }
    }
    if (!changed) break;
  }
  return -1;
}

// Certifier context for one lemma.
struct Certifier {
  const std::vector<Ineq>& rows;
  const std::vector<Diseq>& diseqs;
  std::size_t num_vars;
  int steps_left = 20000;

  bool branch(CertState st, std::ostringstream& out, int depth);
};

std::string rat_pair(const Rational& r) {
  return r.num().to_string() + " " + r.den().to_string();
}

bool Certifier::branch(CertState st, std::ostringstream& out, int depth) {
  if (--steps_left <= 0 || depth > 48) return false;

  // 1. Integer interval tightening: a bound crossing is a contradiction
  // the checker re-derives, so the step only names the crossed variable's
  // two bounds.
  const int crossed = tighten(rows, st);
  if (crossed >= 0) {
    out << "f 2 lo" << crossed << " 1 1 hi" << crossed << " 1 1\n";
    return true;
  }

  // 2. A disequality whose linear form is pinned to exactly its excluded
  // value refutes the branch.
  for (const Diseq& d : diseqs) {
    BigInt sum(0);
    bool fixed = true;
    for (const auto& [v, c] : d.terms) {
      const VarBound& lb = st.lo[static_cast<std::size_t>(v)];
      const VarBound& hb = st.hi[static_cast<std::size_t>(v)];
      if (!lb.has || !hb.has || lb.val != hb.val) {
        fixed = false;
        break;
      }
      sum += BigInt(c) * lb.val;
    }
    if (fixed && sum == BigInt(d.bound)) {
      out << "dq " << d.premise << "\n";
      return true;
    }
  }

  // 3. Exact rational simplex over the rows plus the current bounds; an
  // infeasibility yields the Farkas combination verbatim.
  linalg::Simplex spx;
  std::vector<std::string> tag_names;
  bool infeasible = false;
  for (std::size_t v = 0; v < num_vars; ++v) {
    const VarBound& lb = st.lo[v];
    const VarBound& hb = st.hi[v];
    if (!lb.has && !hb.has) continue;
    const int x = spx.var(static_cast<std::int32_t>(v));
    if (lb.has) {
      tag_names.push_back("lo" + std::to_string(v));
      if (!spx.assert_lower(x, Rational(lb.val),
                            static_cast<int>(tag_names.size() - 1))) {
        infeasible = true;
      }
    }
    if (!infeasible && hb.has) {
      tag_names.push_back("hi" + std::to_string(v));
      if (!spx.assert_upper(x, Rational(hb.val),
                            static_cast<int>(tag_names.size() - 1))) {
        infeasible = true;
      }
    }
    if (infeasible) break;
  }
  if (!infeasible) {
    for (const Ineq& r : rows) {
      if (r.terms.empty()) {
        if (r.bound.is_negative()) {
          out << "f 1 " << r.ref << " 1 1\n";  // 0 ≤ negative: immediate
          return true;
        }
        continue;
      }
      std::vector<std::pair<std::int32_t, std::int64_t>> terms;
      terms.reserve(r.terms.size());
      for (const auto& [v, c] : r.terms) {
        terms.emplace_back(static_cast<std::int32_t>(v), c);
      }
      const int s = spx.add_slack(terms);
      tag_names.push_back(r.ref);
      if (!spx.assert_upper(s, Rational(r.bound),
                            static_cast<int>(tag_names.size() - 1))) {
        infeasible = true;
        break;
      }
    }
  }
  if (!infeasible) infeasible = !spx.check();
  if (infeasible) {
    const auto& fk = spx.farkas();
    std::ostringstream f;
    int n = 0;
    for (const linalg::FarkasTerm& t : fk) {
      if (t.mult.is_zero() || t.mult.is_negative()) continue;
      f << " " << tag_names[static_cast<std::size_t>(t.tag)] << " "
        << rat_pair(t.mult);
      ++n;
    }
    out << "f " << n << f.str() << "\n";
    return true;
  }

  // 4. Rationally feasible: split on an unfixed variable. Prefer the
  // narrowest finite interval; fall back to cutting at the simplex
  // vertex value for half-open intervals.
  int best = -1;
  std::optional<BigInt> best_width;
  for (std::size_t v = 0; v < num_vars; ++v) {
    const VarBound& lb = st.lo[v];
    const VarBound& hb = st.hi[v];
    if (!lb.has || !hb.has || lb.val == hb.val) continue;
    const BigInt w = hb.val - lb.val;
    if (!best_width || w < *best_width) {
      best_width = w;
      best = static_cast<int>(v);
    }
  }
  BigInt cut;
  if (best >= 0) {
    cut = st.lo[static_cast<std::size_t>(best)].val +
          floor_div_big(*best_width, BigInt(2));
  } else {
    // No finite-width variable: cut a half-open one at its vertex value.
    for (std::size_t v = 0; v < num_vars; ++v) {
      const VarBound& lb = st.lo[v];
      const VarBound& hb = st.hi[v];
      if (lb.has && hb.has) continue;
      if (!lb.has && !hb.has) continue;
      const int x = spx.var(static_cast<std::int32_t>(v));
      const Rational& val = spx.value(x);
      BigInt k = floor_div_big(val.num(), val.den());
      if (hb.has && k >= hb.val) k = hb.val - BigInt(1);
      if (lb.has && k < lb.val) k = lb.val;
      best = static_cast<int>(v);
      cut = k;
      break;
    }
    if (best < 0) return false;  // everything fixed yet feasible: the
                                 // lemma is not certifiable this way
  }
  out << "s " << best << " " << cut.to_string() << "\n";
  CertState left = st;
  VarBound& lhi = left.hi[static_cast<std::size_t>(best)];
  lhi.has = true;
  lhi.val = cut;
  if (!branch(std::move(left), out, depth + 1)) return false;
  out << "alt\n";
  CertState right = std::move(st);
  VarBound& rlo = right.lo[static_cast<std::size_t>(best)];
  rlo.has = true;
  rlo.val = cut + BigInt(1);
  if (!branch(std::move(right), out, depth + 1)) return false;
  out << "join\n";
  return true;
}

// Extracts the premise system of a lemma clause: the negation of each
// clause literal plus each ctx literal, mapped through the atom table.
// Returns false when some literal is not a theory atom (cannot occur for
// the logged lemma sources; defensive).
bool lemma_premises(const SharedProblem& sh, const ProofRecord& rec,
                    std::vector<Ineq>& rows, std::vector<Diseq>& diseqs) {
  const std::size_t n = rec.lits.size();
  for (std::size_t i = 0; i < n + rec.ctx.size(); ++i) {
    const Lit pl = i < n ? neg(rec.lits[i]) : rec.ctx[i - n];
    const int v = var_of(pl);
    if (v < 0 || v >= sh.num_bvars) return false;
    const int ai = sh.atom_of_var[static_cast<std::size_t>(v)];
    if (ai < 0) return false;
    const Atom& a = sh.atoms[static_cast<std::size_t>(ai)];
    const std::string idx = std::to_string(i);
    if (!is_neg(pl)) {  // atom asserted true
      Ineq le;
      le.terms = a.terms;
      le.bound = BigInt(a.bound);
      le.ref = "p" + idx;
      rows.push_back(std::move(le));
      if (a.is_eq) {
        Ineq ge;
        for (const auto& [u, c] : a.terms) ge.terms.emplace_back(u, -c);
        ge.bound = BigInt(-a.bound);
        ge.ref = "q" + idx;
        rows.push_back(std::move(ge));
      }
    } else if (!a.is_eq) {  // Σ ≤ b false  ⇔  Σ ≥ b+1 (integers)
      Ineq gt;
      for (const auto& [u, c] : a.terms) gt.terms.emplace_back(u, -c);
      gt.bound = BigInt(-a.bound) - BigInt(1);
      gt.ref = "p" + idx;
      rows.push_back(std::move(gt));
    } else {  // equality asserted false: a disequality
      Diseq d;
      d.terms = a.terms;
      d.bound = a.bound;
      d.premise = i;
      diseqs.push_back(std::move(d));
    }
  }
  return true;
}

// Certifies one lemma; returns the proof body ("" on failure).
std::string certify_lemma(const SharedProblem& sh, const ProofRecord& rec) {
  std::vector<Ineq> rows;
  std::vector<Diseq> diseqs;
  if (!lemma_premises(sh, rec, rows, diseqs)) return "";
  CertState st;
  st.lo.resize(sh.int_names.size());
  st.hi.resize(sh.int_names.size());
  Certifier cert{rows, diseqs, sh.int_names.size()};
  std::ostringstream body;
  if (!cert.branch(std::move(st), body, 0)) return "";
  return body.str();
}

std::string lemma_key(const ProofRecord& rec) {
  std::vector<Lit> sorted = rec.lits;
  std::sort(sorted.begin(), sorted.end());
  std::string key;
  for (const Lit l : sorted) {
    key += std::to_string(l);
    key += ',';
  }
  key += '|';
  sorted = rec.ctx;
  std::sort(sorted.begin(), sorted.end());
  for (const Lit l : sorted) {
    key += std::to_string(l);
    key += ',';
  }
  return key;
}

void write_clause(std::ostringstream& out, const char* head,
                  const std::vector<Lit>& lits) {
  out << head;
  for (const Lit l : lits) out << " " << proof_lit(l);
  out << " 0\n";
}

}  // namespace

Certificate build_certificate(
    const CertificateInputs& in,
    std::unordered_map<std::string, std::string>& lemma_cache) {
  const util::Stopwatch sw;
  Certificate cert;
  cert.mode = "native";
  std::ostringstream out;
  out << "advocat-proof 1\n";
  out << "mode native\n";
  if (in.trivially_unsat) {
    // Translation already derived the empty clause.
    out << "in 0\nqed\n";
    cert.text = out.str();
    cert.proof_bytes = cert.text.size();
    cert.proof_ms = sw.millis();
    return cert;
  }

  const SharedProblem& sh = *in.sh;
  out << "nvars " << sh.num_bvars << "\n";
  out << "nints " << sh.int_names.size() << "\n";
  for (std::size_t ai = 0; ai < sh.atoms.size(); ++ai) {
    const Atom& a = sh.atoms[ai];
    out << "atom " << sh.atom_var[ai] + 1 << (a.is_eq ? " eq " : " le ")
        << a.bound << " " << a.terms.size();
    for (const auto& [v, c] : a.terms) out << " " << v << " " << c;
    out << "\n";
  }
  for (std::size_t ci = 0; ci < sh.clauses.size(); ++ci) {
    out << "in";
    const Lit* lits = sh.clauses.begin(ci);
    const std::uint32_t n = sh.clauses.len(ci);
    for (std::uint32_t k = 0; k < n; ++k) out << " " << proof_lit(lits[k]);
    out << " 0\n";
  }
  for (const Lit l : sh.def_units) out << "in " << proof_lit(l) << " 0\n";
  for (const Lit l : in.assume_lits) {
    out << "assume " << proof_lit(l) << " 0\n";
  }

  bool complete = !in.attached_mid_session;
  std::string reason =
      in.attached_mid_session ? "proof sink attached mid-session" : "";
  for (const ProofRecord& rec : *in.trace) {
    switch (rec.kind) {
      case ProofRecord::Kind::kRup:
        write_clause(out, "rup", rec.lits);
        break;
      case ProofRecord::Kind::kDelete:
        write_clause(out, "del", rec.lits);
        break;
      case ProofRecord::Kind::kLemma: {
        write_clause(out, "lem", rec.lits);
        if (!rec.ctx.empty()) write_clause(out, "ctx", rec.ctx);
        const std::string key = lemma_key(rec);
        auto it = lemma_cache.find(key);
        if (it == lemma_cache.end()) {
          it = lemma_cache.emplace(key, certify_lemma(sh, rec)).first;
        }
        if (it->second.empty()) {
          out << "unproven\n";
          if (complete) {
            complete = false;
            reason = "uncertified theory lemma";
          }
        } else {
          out << it->second;
        }
        out << "end\n";
        break;
      }
    }
  }

  // Cube-mode refutation: one RUP clause per refuted cube, then the
  // binary folding ladder down to the empty clause (a bare set of 2^k
  // leaf clauses is not unit-refutable; each prefix clause resolves the
  // two one-longer clauses that extend it).
  if (!in.cubes.empty()) {
    for (const std::vector<Lit>& cube : in.cubes) {
      out << "rup";
      for (const Lit l : cube) out << " " << proof_lit(neg(l));
      out << " 0\n";
    }
    const std::vector<Lit>& first = in.cubes.front();
    const std::size_t k = first.size();
    std::vector<int> vars(k);
    for (std::size_t b = 0; b < k; ++b) vars[b] = var_of(first[b]);
    for (std::size_t j = k; j-- > 1;) {
      for (std::uint64_t m = 0; m < (std::uint64_t{1} << j); ++m) {
        out << "rup";
        for (std::size_t b = 0; b < j; ++b) {
          out << " " << proof_lit(neg(mk_lit(vars[b], (m >> b & 1) != 0)));
        }
        out << " 0\n";
      }
    }
  }
  out << "qed\n";

  cert.text = out.str();
  cert.complete = complete;
  cert.reason = reason;
  cert.proof_bytes = cert.text.size();
  cert.proof_ms = sw.millis();
  return cert;
}

}  // namespace advocat::smt::native
