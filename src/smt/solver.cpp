// Backend-independent pieces of the solver interface: the Model accessors,
// the shared check()/model() plumbing, and the runtime backend dispatch.
#include "smt/solver.hpp"

#include <stdexcept>

#include "smt/native_solver.hpp"

namespace advocat::smt {

std::int64_t Model::int_value(const std::string& name) const {
  auto it = ints_.find(name);
  return it == ints_.end() ? 0 : it->second;
}

bool Model::bool_value(const std::string& name) const {
  auto it = bools_.find(name);
  return it != bools_.end() && it->second;
}

SatResult Solver::check(unsigned timeout_ms) {
  static const std::vector<ExprId> kNoAssumptions;
  return check_assuming(kNoAssumptions, timeout_ms);
}

SatResult Solver::check_assuming(const std::vector<ExprId>& assumptions,
                                 unsigned timeout_ms) {
  ++num_checks_;
  core_.clear();  // a stale core must not outlive the check that built it
  // Re-arm the one-shot cancellation flag: a cancel() that landed after
  // the previous check returned must not poison this one.
  cancel_.store(false, std::memory_order_relaxed);
  return do_check(assumptions, timeout_ms);
}

const Model& Solver::model() const {
  if (!has_model_) {
    throw std::logic_error("Solver::model: no check has returned Sat yet");
  }
  return model_;
}

const char* to_string(Backend b) {
  switch (b) {
    case Backend::Auto: return "auto";
    case Backend::Native: return "native";
    case Backend::Z3: return "z3";
  }
  return "?";
}

bool backend_available(Backend b) {
  switch (b) {
    case Backend::Auto:
    case Backend::Native:
      return true;
    case Backend::Z3:
#ifdef ADVOCAT_HAVE_Z3
      return true;
#else
      return false;
#endif
  }
  return false;
}

std::unique_ptr<Solver> make_solver(const ExprFactory& factory,
                                    Backend backend) {
  switch (backend) {
    case Backend::Native: return make_native_solver(factory);
    case Backend::Z3: return make_z3_solver(factory);
    case Backend::Auto:
      return backend_available(Backend::Z3) ? make_z3_solver(factory)
                                            : make_native_solver(factory);
  }
  throw std::runtime_error("make_solver: unknown backend");
}

#ifndef ADVOCAT_HAVE_Z3
std::unique_ptr<Solver> make_z3_solver(const ExprFactory&) {
  throw std::runtime_error(
      "advocat was built without Z3 support (ADVOCAT_WITH_Z3=OFF or libz3 "
      "not found); use Backend::Native or Backend::Auto");
}
#endif

}  // namespace advocat::smt
