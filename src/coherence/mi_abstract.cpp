#include "coherence/mi_abstract.hpp"

#include <stdexcept>

#include "automata/builder.hpp"
#include "util/strings.hpp"

namespace advocat::coh {

using aut::AutomatonBuilder;
using xmas::ColorId;
using xmas::ColorSet;
using xmas::Network;
using xmas::PrimId;

namespace {

// Automaton port conventions shared by cache and directory.
constexpr int kNetIn = 0;   // packets from the ejection bag
constexpr int kCoreIn = 1;  // trigger tokens from the local core
constexpr int kNetOut = 0;  // injected packets

xmas::Automaton build_cache(Network& net, int c, int dir) {
  auto& colors = net.colors();
  const ColorId get = colors.intern(kGet, c, dir);
  const ColorId put = colors.intern(kPut, c, dir);
  const ColorId inv = colors.intern(kInv, dir, c);
  const ColorId ack = colors.intern(kAck, dir, c);
  const ColorId miss = colors.intern(kMiss, c, c);
  const ColorId repl = colors.intern(kRepl, c, c);

  AutomatonBuilder b(util::cat("cache", c), {"I", "M", "MI"});
  b.in_ports(2).out_ports(1).initial("I");
  b.on("I", kCoreIn, miss).emit(kNetOut, get).go("M").label("I:miss/get!");
  b.on("M", kCoreIn, repl).emit(kNetOut, put).go("MI").label("M:repl/put!");
  b.on("M", kNetIn, inv).emit(kNetOut, put).go("MI").label("M:inv?/put!");
  b.on("MI", kNetIn, inv).go("MI").label("MI:inv?/drop");
  b.on("I", kNetIn, inv).go("I").label("I:inv?/drop");
  b.on("MI", kNetIn, ack).go("I").label("MI:ack?");
  return b.build();
}

xmas::Automaton build_directory(Network& net, int dir,
                                const std::vector<int>& caches) {
  auto& colors = net.colors();
  const ColorId tok = colors.intern(kTok, dir, dir);

  std::vector<std::string> states = {"I"};
  for (int c : caches) states.push_back(util::cat("M(", c, ")"));
  for (int c : caches) states.push_back(util::cat("MI(", c, ")"));

  AutomatonBuilder b("dir", states);
  b.in_ports(2).out_ports(1).initial("I");
  for (int c : caches) {
    const ColorId get = colors.intern(kGet, c, dir);
    const ColorId put = colors.intern(kPut, c, dir);
    const ColorId inv = colors.intern(kInv, dir, c);
    const ColorId ack = colors.intern(kAck, dir, c);
    const std::string m = util::cat("M(", c, ")");
    const std::string mi = util::cat("MI(", c, ")");
    b.on("I", kNetIn, get).go(m).label(util::cat("I:get", c, "?"));
    b.on(m, kCoreIn, tok).emit(kNetOut, inv).go(m).label(
        util::cat("M", c, ":tok/inv!"));
    b.on(m, kNetIn, put).go(mi).label(util::cat("M", c, ":put?"));
    b.on(mi, kCoreIn, tok).emit(kNetOut, ack).go("I").label(
        util::cat("MI", c, ":tok/ack!"));
  }
  return b.build();
}

}  // namespace

int mi_abstract_vc_class(const xmas::ColorData& color) {
  // Requests travel cache→dir, responses dir→cache.
  return (color.type == kGet || color.type == kPut) ? 0 : 1;
}

int mi_abstract_vc_class_by_type(const xmas::ColorData& color) {
  if (color.type == kGet) return 0;
  if (color.type == kPut) return 1;
  if (color.type == kInv) return 2;
  return 3;  // ack
}

MiAbstractSystem build_mi_abstract(const MiAbstractConfig& config) {
  MiAbstractSystem sys;
  Network& net = sys.net;
  const int nodes = config.width * config.height;
  sys.directory_node =
      config.directory_node < 0 ? nodes - 1 : config.directory_node;
  if (sys.directory_node >= nodes)
    throw std::invalid_argument("directory node outside mesh");

  for (int n = 0; n < nodes; ++n) {
    if (n != sys.directory_node) sys.cache_nodes.push_back(n);
  }

  // Automata + trigger sources, one per node.
  std::vector<noc::NodeHook> hooks(static_cast<std::size_t>(nodes));
  sys.automaton_of_node.assign(static_cast<std::size_t>(nodes), -1);
  for (int n = 0; n < nodes; ++n) {
    xmas::Automaton a =
        n == sys.directory_node
            ? build_directory(net, n, sys.cache_nodes)
            : build_cache(net, n, sys.directory_node);
    const PrimId prim = net.add_automaton(std::move(a));
    sys.automaton_of_node[static_cast<std::size_t>(n)] =
        net.prim(prim).automaton;
    hooks[static_cast<std::size_t>(n)] = noc::NodeHook{prim, kNetIn, kNetOut};

    ColorSet trigger_colors;
    if (n == sys.directory_node) {
      xmas::set_insert(trigger_colors, net.colors().intern(kTok, n, n));
    } else {
      xmas::set_insert(trigger_colors, net.colors().intern(kMiss, n, n));
      xmas::set_insert(trigger_colors, net.colors().intern(kRepl, n, n));
    }
    const PrimId src =
        net.add_source(util::cat("core", n), std::move(trigger_colors));
    net.connect(src, 0, prim, kCoreIn);
  }

  noc::MeshConfig mesh;
  mesh.width = config.width;
  mesh.height = config.height;
  mesh.link_capacity = config.queue_capacity;
  mesh.eject_capacity = config.eject_capacity;
  mesh.num_vcs = config.num_vcs;
  if (config.num_vcs == 2) mesh.vc_of = mi_abstract_vc_class;
  else if (config.num_vcs > 2) mesh.vc_of = mi_abstract_vc_class_by_type;
  sys.mesh_stats = noc::build_mesh(net, mesh, hooks);
  return sys;
}

}  // namespace advocat::coh
