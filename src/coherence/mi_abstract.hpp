// The paper's artificial directory-based MI protocol (Fig. 2).
//
// Per cache node (state I / M / MI):
//   I  --[core miss]  / get!(c→dir) --> M
//   M  --[core repl]  / put!(c→dir) --> MI
//   M  --[net inv]    / put!(c→dir) --> MI
//   MI --[net inv]    / ⊥           --> MI   (drop a crossing invalidate)
//   I  --[net inv]    / ⊥           --> I    (drop a stale invalidate)
//   MI --[net ack]    / ⊥           --> I
// Directory (state I / M(c) / MI(c), parameterized by the owning cache):
//   I     --[net get(c)] / ⊥            --> M(c)
//   M(c)  --[core tok]   / inv!(dir→c)  --> M(c)   (may invalidate any time,
//                                                   repeatedly)
//   M(c)  --[net put(c)] / ⊥            --> MI(c)
//   MI(c) --[core tok]   / ack!(dir→c)  --> I
//
// "Core" events come from a fair trigger source per node. This protocol is
// deadlock-free under synchronous handshaking but exhibits the paper's
// Fig. 3 cross-layer deadlock on a mesh when queues are too small.
#pragma once

#include <string>
#include <vector>

#include "noc/mesh.hpp"
#include "xmas/network.hpp"

namespace advocat::coh {

/// Message/trigger type names used by the abstract protocol.
inline constexpr const char* kGet = "get";
inline constexpr const char* kPut = "put";
inline constexpr const char* kInv = "inv";
inline constexpr const char* kAck = "ack";
inline constexpr const char* kMiss = "miss";
inline constexpr const char* kRepl = "repl";
inline constexpr const char* kTok = "tok";

struct MiAbstractConfig {
  int width = 2;
  int height = 2;
  int directory_node = -1;  ///< -1: last node (lower-right)
  std::size_t queue_capacity = 2;  ///< link queues (bags, stall & requeue)
  /// Optional ejection bag capacity; 0 (default) = consume straight from
  /// the link queues, the paper's model. See noc::MeshConfig.
  std::size_t eject_capacity = 0;
  /// 1 = no VCs; 2 = request (cache→dir) vs response (dir→cache) classes;
  /// 4 = one class per message type (the paper's "VCs for different message
  /// types", after Dally & Seitz).
  int num_vcs = 1;
};

struct MiAbstractSystem {
  xmas::Network net;
  int directory_node = 0;
  std::vector<int> cache_nodes;
  /// Automaton indices (into net.automata()) per node id; directory
  /// included.
  std::vector<int> automaton_of_node;
  noc::MeshStats mesh_stats;
};

/// Builds protocol automata + trigger sources + mesh. The returned system
/// owns the network.
MiAbstractSystem build_mi_abstract(const MiAbstractConfig& config);

/// VC class used when num_vcs == 2: 0 for cache→dir requests, 1 for
/// dir→cache messages (matches Dally-style message-class separation).
int mi_abstract_vc_class(const xmas::ColorData& color);

/// VC class used when num_vcs == 4: one class per message type
/// (get/put/inv/ack).
int mi_abstract_vc_class_by_type(const xmas::ColorData& color);

}  // namespace advocat::coh
