#include "coherence/mi_gem5.hpp"

#include <stdexcept>
#include <string>

#include "automata/builder.hpp"
#include "util/strings.hpp"

namespace advocat::coh {

using aut::AutomatonBuilder;
using xmas::ColorId;
using xmas::ColorSet;
using xmas::Network;
using xmas::PrimId;

namespace {

constexpr int kNetIn = 0;
constexpr int kCoreIn = 1;
constexpr int kNetOut = 0;

constexpr const char* kMiss = "miss";
constexpr const char* kRepl = "repl";

xmas::Automaton build_cache(Network& net, int c, int dir,
                            const std::vector<int>& requesters) {
  auto& colors = net.colors();
  const ColorId getx = colors.intern(kGetX, c, dir);
  const ColorId putx = colors.intern(kPutX, c, dir);
  const ColorId data_ack = colors.intern(kDataAck, c, dir);
  const ColorId wb_ack = colors.intern(kWbAck, dir, c);
  const ColorId wb_nack = colors.intern(kWbNack, dir, c);
  const ColorId miss = colors.intern(kMiss, c, c);
  const ColorId repl = colors.intern(kRepl, c, c);

  // Data may come from the directory or any other cache.
  ColorSet datas;
  xmas::set_insert(datas, colors.intern(kData, dir, c));
  for (int r : requesters) {
    if (r != c) xmas::set_insert(datas, colors.intern(kData, r, c));
  }
  // Forwards carry the requester in the tag field. One transition per
  // (state, requester) pair below — a single transition producing many data
  // colors would coarsen the invariant generator's out-channel classes and
  // lose the per-requester directory balance.
  std::vector<std::pair<ColorId, ColorId>> fwd_to_data;
  for (int r : requesters) {
    if (r == c) continue;
    fwd_to_data.emplace_back(colors.intern(kFwdGetX, dir, c, r),
                             colors.intern(kData, c, r));
  }

  // State meanings: IM = awaiting data; MI = awaiting the writeback
  // response (wb_ack, or wb_nack when the writeback was superseded by a
  // forward). Forwards are served from *any* state (data is abstract in
  // this model, so a stale forward is answered the same way); this keeps
  // every wait state linearly balanced — e.g. MI = #putx + #wb_ack +
  // #wb_nack en route — which is what lets the flow method prune all
  // unreachable deadlock candidates.
  AutomatonBuilder b(util::cat("cache", c), {"I", "IM", "M", "MI"});
  b.in_ports(2).out_ports(1).initial("I");
  b.on("I", kCoreIn, miss).emit(kNetOut, getx).go("IM").label("I:miss/getx!");
  b.on_any("IM", kNetIn, datas)
      .emit(kNetOut, data_ack)
      .go("M")
      .label("IM:data?/data_ack!");
  b.on("M", kCoreIn, repl).emit(kNetOut, putx).go("MI").label("M:repl/putx!");
  b.on("MI", kNetIn, wb_ack).go("I").label("MI:wb_ack?");
  b.on("MI", kNetIn, wb_nack).go("I").label("MI:wb_nack?");
  for (const auto& [fwd, data] : fwd_to_data) {
    const int r = colors.get(fwd).tag;
    b.on("M", kNetIn, fwd).emit(kNetOut, data).go("I").label(
        util::cat("M:fwd", r, "?/data!"));
    b.on("MI", kNetIn, fwd).emit(kNetOut, data).go("MI").label(
        util::cat("MI:fwd", r, "?/data!"));
    b.on("I", kNetIn, fwd).emit(kNetOut, data).go("I").label(
        util::cat("I:fwd", r, "?/data!"));
    b.on("IM", kNetIn, fwd).emit(kNetOut, data).go("IM").label(
        util::cat("IM:fwd", r, "?/data!"));
  }
  return b.build();
}

xmas::Automaton build_dma(Network& net, int d, int dir) {
  auto& colors = net.colors();
  const ColorId req = colors.intern(kDmaReq, d, dir);
  const ColorId data = colors.intern(kData, dir, d);
  const ColorId tok = colors.intern(kDmaTok, d, d);
  AutomatonBuilder b(util::cat("dma", d), {"I", "W"});
  b.in_ports(2).out_ports(1).initial("I");
  b.on("I", kCoreIn, tok).emit(kNetOut, req).go("W").label("I:tok/dma_req!");
  b.on("W", kNetIn, data).go("I").label("W:data?");
  return b.build();
}

xmas::Automaton build_directory(Network& net, int dir,
                                const std::vector<int>& caches, int dma) {
  auto& colors = net.colors();
  std::vector<std::string> states = {"I"};
  for (int c : caches) states.push_back(util::cat("M(", c, ")"));
  for (int r : caches) states.push_back(util::cat("B(", r, ")"));

  AutomatonBuilder b("dir", states);
  b.in_ports(1).out_ports(1).initial("I");

  for (int r : caches) {
    const ColorId getx = colors.intern(kGetX, r, dir);
    const ColorId data = colors.intern(kData, dir, r);
    const ColorId data_ack = colors.intern(kDataAck, r, dir);
    const std::string br = util::cat("B(", r, ")");
    b.on("I", kNetIn, getx).emit(kNetOut, data).go(br).label(
        util::cat("I:getx", r, "?/data!"));
    b.on(br, kNetIn, data_ack).go(util::cat("M(", r, ")")).label(
        util::cat("B", r, ":data_ack?"));
    // While busy, every putx waits in the ejection bag; it is answered
    // (acked or nacked as superseded) once the transfer completes.
  }
  for (int c : caches) {
    const std::string mc = util::cat("M(", c, ")");
    const ColorId putx = colors.intern(kPutX, c, dir);
    const ColorId wb_ack = colors.intern(kWbAck, dir, c);
    const ColorId wb_nack = colors.intern(kWbNack, dir, c);
    b.on(mc, kNetIn, putx).emit(kNetOut, wb_ack).go("I").label(
        util::cat("M", c, ":putx?/wb_ack!"));
    // A putx reaching the directory when c is no longer the owner was
    // superseded by a forward; reject it (the block moved on).
    b.on("I", kNetIn, putx).emit(kNetOut, wb_nack).go("I").label(
        util::cat("I:putx", c, "?/wb_nack!"));
    for (int x : caches) {
      if (x == c) continue;
      const std::string mx = util::cat("M(", x, ")");
      b.on(mx, kNetIn, putx).emit(kNetOut, wb_nack).go(mx).label(
          util::cat("M", x, ":putx", c, "?/wb_nack!"));
    }
    // Forward GetX from requester r to owner c.
    for (int r : caches) {
      if (r == c) continue;
      const ColorId getx_r = colors.intern(kGetX, r, dir);
      const ColorId fwd = colors.intern(kFwdGetX, dir, c, r);
      b.on(mc, kNetIn, getx_r).emit(kNetOut, fwd).go(util::cat("B(", r, ")"))
          .label(util::cat("M", c, ":getx", r, "?/fwd!"));
    }
  }
  if (dma >= 0) {
    const ColorId req = colors.intern(kDmaReq, dma, dir);
    const ColorId data = colors.intern(kData, dir, dma);
    b.on("I", kNetIn, req).emit(kNetOut, data).go("I").label(
        "I:dma_req?/data!");
  }
  return b.build();
}

}  // namespace

int mi_gem5_vc_class(const xmas::ColorData& color) {
  if (color.type == kFwdGetX) return 1;
  if (color.type == kData || color.type == kWbAck || color.type == kWbNack)
    return 2;
  return 0;  // getx, putx, data_ack, dma_req
}

MiGem5System build_mi_gem5(const MiGem5Config& config) {
  MiGem5System sys;
  Network& net = sys.net;
  const int nodes = config.width * config.height;
  sys.directory_node =
      config.directory_node < 0 ? nodes - 1 : config.directory_node;
  sys.dma_node = config.dma_node;
  if (sys.directory_node >= nodes)
    throw std::invalid_argument("directory node outside mesh");
  if (sys.dma_node >= nodes || sys.dma_node == sys.directory_node)
    throw std::invalid_argument("bad dma node");

  for (int n = 0; n < nodes; ++n) {
    if (n != sys.directory_node && n != sys.dma_node)
      sys.cache_nodes.push_back(n);
  }

  std::vector<noc::NodeHook> hooks(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    xmas::Automaton a;
    ColorSet trigger;
    int core_port = kCoreIn;
    if (n == sys.directory_node) {
      a = build_directory(net, n, sys.cache_nodes, sys.dma_node);
      core_port = -1;  // the directory is purely reactive
    } else if (n == sys.dma_node) {
      a = build_dma(net, n, sys.directory_node);
      xmas::set_insert(trigger, net.colors().intern(kDmaTok, n, n));
    } else {
      a = build_cache(net, n, sys.directory_node, sys.cache_nodes);
      xmas::set_insert(trigger, net.colors().intern(kMiss, n, n));
      xmas::set_insert(trigger, net.colors().intern(kRepl, n, n));
    }
    const PrimId prim = net.add_automaton(std::move(a));
    hooks[static_cast<std::size_t>(n)] = noc::NodeHook{prim, kNetIn, kNetOut};
    if (core_port >= 0) {
      const PrimId src =
          net.add_source(util::cat("core", n), std::move(trigger));
      net.connect(src, 0, prim, core_port);
    }
  }

  noc::MeshConfig mesh;
  mesh.width = config.width;
  mesh.height = config.height;
  mesh.link_capacity = config.queue_capacity;
  mesh.eject_capacity = config.eject_capacity;
  mesh.num_vcs = config.num_vcs;
  if (config.num_vcs > 1) mesh.vc_of = mi_gem5_vc_class;
  sys.mesh_stats = noc::build_mesh(net, mesh, hooks);
  return sys;
}

}  // namespace advocat::coh
