// GEM5-inspired MI cache-coherence protocol (Section 5, "MI Protocol").
//
// Modelled after the flavor of GEM5's MI_example as the paper describes it:
// cache-to-cache transfer (the directory forwards GetX to the current owner,
// which sends Data directly to the requester), acking/nacking of
// replacements, a notification to the directory upon receiving data, and a
// DMA requester. Eight message types:
//   getx(c→dir)        exclusive request
//   data(x→c)          data response (from directory or from the old owner)
//   data_ack(c→dir)    transfer-complete notification from the new owner
//   fwd_getx(dir→c)#r  forward to owner c on behalf of requester r (tag)
//   putx(c→dir)        replacement writeback
//   wb_ack(dir→c)      writeback accepted
//   wb_nack(dir→c)     writeback rejected (a forward was already in flight)
//   dma_req(d→dir)     DMA access (served with data when the block is idle)
//
// L2 cache automaton (4 stable/transient states; forwards are served from
// every state because data is abstract in this model — serving a stale
// forward is indistinguishable from serving a fresh one, and it keeps every
// wait state linearly balanced for the invariant generator):
//   I  --[miss]      / getx!        --> IM
//   IM --[data?]     / data_ack!    --> M
//   M  --[repl]      / putx!        --> MI
//   M  --[fwd_getx?] / data!(→r)    --> I      (cache-to-cache transfer)
//   MI --[wb_ack?]                  --> I
//   MI --[wb_nack?]                 --> I      (writeback superseded)
//   *  --[fwd_getx?] / data!(→r)    --> *      (serve in place: I, IM, MI)
//
// Directory automaton (1 + 2n states: I, M(c), B(r)):
//   I    --[getx?(r)]          / data!(→r)       --> B(r)
//   I    --[dma_req?(d)]       / data!(→d)       --> I
//   I    --[putx?(c)]          / wb_nack!(→c)    --> I    (superseded)
//   M(x) --[putx?(c), c != x]  / wb_nack!(→c)    --> M(x) (superseded)
//   B(r) --[data_ack?(r)]                        --> M(r)
//   M(c) --[getx?(r)]          / fwd_getx!(→c)#r --> B(r)
//   M(c) --[putx?(c)]          / wb_ack!(→c)     --> I
//
// Unconsumable packets wait in the ejection bag (the paper's stall &
// requeue): in particular every putx arriving while the directory is busy
// in B(r) simply waits there until the ownership transfer completes. The
// protocol is deadlock-free under synchronous handshaking (checked with
// the explicit-state explorer); on a mesh it needs sufficiently large
// queues, like the abstract protocol (the paper's modified-MI
// observation).
#pragma once

#include <vector>

#include "noc/mesh.hpp"
#include "xmas/network.hpp"

namespace advocat::coh {

inline constexpr const char* kGetX = "getx";
inline constexpr const char* kData = "data";
inline constexpr const char* kDataAck = "data_ack";
inline constexpr const char* kFwdGetX = "fwd_getx";
inline constexpr const char* kPutX = "putx";
inline constexpr const char* kWbAck = "wb_ack";
inline constexpr const char* kWbNack = "wb_nack";
inline constexpr const char* kDmaReq = "dma_req";
inline constexpr const char* kDmaTok = "dma_tok";

struct MiGem5Config {
  int width = 2;
  int height = 2;
  int directory_node = -1;  ///< -1: last node
  /// Node running the DMA requester instead of a cache; -1 disables DMA.
  int dma_node = 0;
  std::size_t queue_capacity = 4;  ///< link queues (bags, stall & requeue)
  std::size_t eject_capacity = 0;  ///< 0 = no ejection queue (paper model)
  /// 1 = no VCs; 3 = request / forward / response classes.
  int num_vcs = 1;
};

struct MiGem5System {
  xmas::Network net;
  int directory_node = 0;
  int dma_node = -1;
  std::vector<int> cache_nodes;
  noc::MeshStats mesh_stats;
};

MiGem5System build_mi_gem5(const MiGem5Config& config);

/// 3-class VC assignment: requests (getx/putx/dma_req/data_ack) = 0,
/// forwards (fwd_getx) = 1, responses (data/wb_ack/wb_nack) = 2.
int mi_gem5_vc_class(const xmas::ColorData& color);

}  // namespace advocat::coh
