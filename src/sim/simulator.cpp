#include "sim/simulator.hpp"

#include <algorithm>
#include <sstream>

namespace advocat::sim {

using xmas::ChanId;
using xmas::ColorId;
using xmas::PrimId;
using xmas::PrimKind;
using xmas::Primitive;

std::size_t StateHash::operator()(const State& s) const {
  std::size_t h = 0x9e3779b97f4a7c15ull;
  for (const auto& q : s.queues) {
    h = h * 1099511628211ull + q.size();
    for (ColorId c : q) h = h * 131 + static_cast<std::size_t>(c + 1);
  }
  for (int a : s.aut_states) h = h * 1099511628211ull + static_cast<std::size_t>(a + 1);
  return h;
}

Simulator::Simulator(const xmas::Network& net) : net_(net) {
  for (PrimId s : net.prims_of_kind(PrimKind::Source)) {
    has_fair_source_ |= net.prim(s).fair;
  }
  queue_ordinal_.assign(net.num_prims(), -1);
  for (PrimId q : net.prims_of_kind(PrimKind::Queue)) {
    queue_ordinal_[static_cast<std::size_t>(q)] = static_cast<int>(queue_ids_.size());
    queue_ids_.push_back(q);
  }
}

State Simulator::initial() const {
  State s;
  s.queues.resize(queue_ids_.size());
  for (const auto& a : net_.automata()) s.aut_states.push_back(a.initial);
  return s;
}

Effects Simulator::merge_effects(const Effects& a, const Effects& b) {
  Effects out = a;
  out.pops.insert(out.pops.end(), b.pops.begin(), b.pops.end());
  out.pushes.insert(out.pushes.end(), b.pushes.begin(), b.pushes.end());
  out.moves.insert(out.moves.end(), b.moves.begin(), b.moves.end());
  return out;
}

std::vector<Effects> Simulator::accepts(ChanId c, ColorId d,
                                                   const State& s,
                                                   int depth) const {
  if (depth > kMaxDepth) return {};
  const xmas::Channel& ch = net_.channel(c);
  const Primitive& p = net_.prim(ch.target);
  const int port = ch.tgt_port;
  switch (p.kind) {
    case PrimKind::Queue: {
      const int q = queue_ordinal(ch.target);
      if (s.queues[static_cast<std::size_t>(q)].size() >= p.capacity) return {};
      Effects e;
      e.pushes.emplace_back(q, d);
      return {e};
    }
    case PrimKind::Sink:
      if (!p.fair) return {};
      return {Effects{}};
    case PrimKind::Function:
      return accepts(p.out[0], p.func(d), s, depth + 1);
    case PrimKind::Switch: {
      const int out = p.route(d);
      if (out < 0 || static_cast<std::size_t>(out) >= p.out.size()) return {};
      return accepts(p.out[static_cast<std::size_t>(out)], d, s, depth + 1);
    }
    case PrimKind::Merge:
      return accepts(p.out[0], d, s, depth + 1);
    case PrimKind::Fork: {
      std::vector<Effects> result;
      for (const Effects& a : accepts(p.out[0], d, s, depth + 1)) {
        for (const Effects& b : accepts(p.out[1], d, s, depth + 1)) {
          result.push_back(merge_effects(a, b));
        }
      }
      return result;
    }
    case PrimKind::Join: {
      // A join fires when both inputs transfer; the packet on the data
      // input (port 0) is copied to the output.
      std::vector<Effects> result;
      if (port == 0) {
        for (const Offer& tok : offers(p.in[1], s, depth + 1)) {
          for (const Effects& out : accepts(p.out[0], d, s, depth + 1)) {
            result.push_back(merge_effects(tok.effects, out));
          }
        }
      } else {
        for (const Offer& data : offers(p.in[0], s, depth + 1)) {
          for (const Effects& out : accepts(p.out[0], data.color, s, depth + 1)) {
            result.push_back(merge_effects(data.effects, out));
          }
        }
      }
      return result;
    }
    case PrimKind::Automaton: {
      const xmas::Automaton& a = net_.automaton_of(p);
      const int cur = s.aut_states[static_cast<std::size_t>(p.automaton)];
      std::vector<Effects> result;
      for (const auto& t : a.transitions) {
        if (t.from != cur || !t.guard(port, d)) continue;
        Effects base;
        base.moves.emplace_back(p.automaton, t.to);
        auto em = t.transform(port, d);
        if (!em.has_value()) {
          result.push_back(base);
          continue;
        }
        const ChanId out = p.out.at(static_cast<std::size_t>(em->first));
        for (const Effects& acc : accepts(out, em->second, s, depth + 1)) {
          result.push_back(merge_effects(base, acc));
        }
      }
      return result;
    }
    case PrimKind::Source:
      break;
  }
  return {};
}

std::vector<Simulator::Offer> Simulator::offers(ChanId c, const State& s,
                                                int depth) const {
  if (depth > kMaxDepth) return {};
  const xmas::Channel& ch = net_.channel(c);
  const Primitive& p = net_.prim(ch.initiator);
  const int port = ch.init_port;
  switch (p.kind) {
    case PrimKind::Source: {
      std::vector<Offer> result;
      if (p.fair) {
        for (ColorId d : p.source_colors) result.push_back({d, {}});
      }
      return result;
    }
    case PrimKind::Queue: {
      const int q = queue_ordinal(ch.initiator);
      const auto& content = s.queues[static_cast<std::size_t>(q)];
      if (content.empty()) return {};
      std::vector<Offer> result;
      if (p.fifo) {
        Effects e;
        e.pops.emplace_back(q, 0);
        result.push_back({content.front(), e});
      } else {
        // Bag: any stored packet can be consumed (first occurrence of each
        // distinct color; identical colors are interchangeable).
        std::vector<ColorId> seen;
        for (std::size_t i = 0; i < content.size(); ++i) {
          if (std::find(seen.begin(), seen.end(), content[i]) != seen.end())
            continue;
          seen.push_back(content[i]);
          Effects e;
          e.pops.emplace_back(q, static_cast<int>(i));
          result.push_back({content[i], e});
        }
      }
      return result;
    }
    case PrimKind::Function: {
      std::vector<Offer> result;
      for (const Offer& o : offers(p.in[0], s, depth + 1)) {
        result.push_back({p.func(o.color), o.effects});
      }
      return result;
    }
    case PrimKind::Switch: {
      std::vector<Offer> result;
      for (const Offer& o : offers(p.in[0], s, depth + 1)) {
        if (p.route(o.color) == port) result.push_back(o);
      }
      return result;
    }
    case PrimKind::Merge: {
      std::vector<Offer> result;
      for (ChanId in : p.in) {
        for (const Offer& o : offers(in, s, depth + 1)) result.push_back(o);
      }
      return result;
    }
    case PrimKind::Fork: {
      // Offering on one output requires the other output to accept the same
      // packet simultaneously.
      const ChanId other = p.out[port == 0 ? 1 : 0];
      std::vector<Offer> result;
      for (const Offer& o : offers(p.in[0], s, depth + 1)) {
        for (const Effects& acc : accepts(other, o.color, s, depth + 1)) {
          result.push_back({o.color, merge_effects(o.effects, acc)});
        }
      }
      return result;
    }
    case PrimKind::Join: {
      std::vector<Offer> result;
      for (const Offer& data : offers(p.in[0], s, depth + 1)) {
        for (const Offer& tok : offers(p.in[1], s, depth + 1)) {
          result.push_back({data.color, merge_effects(data.effects, tok.effects)});
        }
      }
      return result;
    }
    case PrimKind::Automaton:
      // Automata only emit while consuming; their emissions are enumerated
      // through accepts() on the consumed input, never as standalone offers.
      return {};
    case PrimKind::Sink:
      break;
  }
  return {};
}

std::optional<State> Simulator::apply(const State& s, const Effects& e) const {
  State next = s;
  // At most one transition per automaton per event.
  for (std::size_t i = 0; i < e.moves.size(); ++i) {
    for (std::size_t j = i + 1; j < e.moves.size(); ++j) {
      if (e.moves[i].first == e.moves[j].first) return std::nullopt;
    }
  }
  // Pops against pre-event positions: apply per queue in descending
  // position order so earlier removals do not shift later ones.
  std::vector<std::pair<int, int>> pops = e.pops;
  std::sort(pops.begin(), pops.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first < b.first : a.second > b.second;
  });
  for (std::size_t i = 1; i < pops.size(); ++i) {
    if (pops[i] == pops[i - 1]) return std::nullopt;  // same slot twice
  }
  for (const auto& [q, pos] : pops) {
    auto& content = next.queues[static_cast<std::size_t>(q)];
    if (pos < 0 || static_cast<std::size_t>(pos) >= content.size()) return std::nullopt;
    content.erase(content.begin() + pos);
  }
  for (const auto& [q, color] : e.pushes) {
    auto& content = next.queues[static_cast<std::size_t>(q)];
    const auto cap = net_.prim(queue_ids_[static_cast<std::size_t>(q)]).capacity;
    if (content.size() >= cap) return std::nullopt;
    content.push_back(color);
  }
  for (const auto& [a, to] : e.moves) {
    next.aut_states[static_cast<std::size_t>(a)] = to;
  }
  return next;
}

std::vector<Event> Simulator::events(const State& s) const {
  std::vector<Event> result;
  auto emit = [&](PrimId initiator, const std::string& label,
                  const Effects& eff) {
    if (auto next = apply(s, eff)) {
      result.push_back({label, initiator, eff, std::move(*next)});
    }
  };
  // Initiation points are the storage producers: sources and queues.
  for (PrimId sid : net_.prims_of_kind(PrimKind::Source)) {
    const Primitive& src = net_.prim(sid);
    if (!src.fair) continue;
    for (ColorId d : src.source_colors) {
      for (const Effects& acc : accepts(src.out[0], d, s, 0)) {
        emit(sid, src.name + "!" + net_.colors().name(d), acc);
      }
    }
  }
  for (std::size_t qi = 0; qi < queue_ids_.size(); ++qi) {
    const Primitive& q = net_.prim(queue_ids_[qi]);
    for (const Offer& o : offers(q.out[0], s, 0)) {
      for (const Effects& acc : accepts(q.out[0], o.color, s, 0)) {
        emit(queue_ids_[qi], q.name + ">" + net_.colors().name(o.color),
             merge_effects(o.effects, acc));
      }
    }
  }
  return result;
}

std::string Simulator::describe(const State& s) const {
  std::ostringstream os;
  for (std::size_t qi = 0; qi < queue_ids_.size(); ++qi) {
    const auto& content = s.queues[qi];
    if (content.empty()) continue;
    os << net_.prim(queue_ids_[qi]).name << ": [";
    for (std::size_t i = 0; i < content.size(); ++i) {
      if (i) os << ", ";
      os << net_.colors().name(content[i]);
    }
    os << "]\n";
  }
  for (std::size_t ai = 0; ai < net_.automata().size(); ++ai) {
    const auto& a = net_.automata()[ai];
    os << a.name << ": " << a.states[static_cast<std::size_t>(s.aut_states[ai])] << "\n";
  }
  return os.str();
}

}  // namespace advocat::sim
