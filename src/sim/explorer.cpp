#include "sim/explorer.hpp"

#include <deque>
#include <unordered_map>

#include "util/stopwatch.hpp"

namespace advocat::sim {

namespace {

struct NodeInfo {
  // Predecessor state (by value; states are small) and the event label that
  // reached this node. Empty label marks the initial state.
  State pred;
  std::string label;
};

}  // namespace

ExploreResult explore(const Simulator& sim, const ExploreOptions& options) {
  util::Stopwatch watch;
  ExploreResult result;

  std::unordered_map<State, NodeInfo, StateHash> visited;
  std::deque<State> frontier;

  const State init = sim.initial();
  visited.emplace(init, NodeInfo{});
  frontier.push_back(init);

  while (!frontier.empty()) {
    if (visited.size() > options.max_states) {
      result.states_visited = visited.size();
      result.seconds = watch.seconds();
      return result;  // budget exhausted; complete stays false
    }
    State cur = std::move(frontier.front());
    frontier.pop_front();

    std::vector<Event> events = sim.events(cur);
    result.events_fired += events.size();
    if (events.empty() && sim.quiescence_is_deadlock(cur)) {
      result.deadlock = cur;
      // Reconstruct the trace by walking predecessors.
      std::vector<std::string> rev;
      State walk = cur;
      while (true) {
        const NodeInfo& info = visited.at(walk);
        if (info.label.empty()) break;
        rev.push_back(info.label);
        walk = info.pred;
      }
      result.trace.assign(rev.rbegin(), rev.rend());
      if (options.stop_at_deadlock) {
        result.states_visited = visited.size();
        result.seconds = watch.seconds();
        return result;
      }
    }
    for (Event& e : events) {
      if (visited.contains(e.next)) continue;
      visited.emplace(e.next, NodeInfo{cur, e.label});
      frontier.push_back(std::move(e.next));
    }
  }

  result.states_visited = visited.size();
  result.complete = true;
  result.seconds = watch.seconds();
  return result;
}

}  // namespace advocat::sim
