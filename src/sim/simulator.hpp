// Executable semantics for xMAS networks with IO automata.
//
// The simulator enumerates *transfer events*: the minimal sets of
// simultaneous channel transfers implied by the combinational primitives
// (a fork transfers with both outputs, a join with both inputs, an
// automaton transition consumes and emits atomically). One event moves the
// state; interleaving events over-approximates the synchronous semantics
// for reachability of quiescent states, which is what the deadlock
// confirmation needs (this plays the role UPPAAL plays in the paper).
//
// Storage lives only in queues and automata: a state is the queue contents
// plus the automaton states. Sources inject nondeterministically; merges
// arbitrate by which event is chosen; bag queues (fifo == false) offer any
// stored packet, modelling the paper's stall-and-requeue consumption.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "xmas/network.hpp"

namespace advocat::sim {

struct State {
  /// Per queue (in Network queue order): stored colors, front first.
  std::vector<std::vector<xmas::ColorId>> queues;
  /// Per automaton: current state index.
  std::vector<int> aut_states;

  bool operator==(const State&) const = default;
};

struct StateHash {
  std::size_t operator()(const State& s) const;
};

/// Structured summary of what one event does to the state. Positions in
/// `pops` refer to the pre-event state; queue ordinals are the dense
/// Simulator indices (see Simulator::queue_prim / ordinal_of).
struct Effects {
  /// (queue ordinal, position) removals; positions refer to the pre-event
  /// state.
  std::vector<std::pair<int, int>> pops;
  std::vector<std::pair<int, xmas::ColorId>> pushes;  // (queue ordinal, color)
  std::vector<std::pair<int, int>> moves;  // (automaton index, target state)
};

struct Event {
  std::string label;
  /// The storage producer that initiated the transfer: a fair source or a
  /// queue (PrimId into the network).
  xmas::PrimId initiator = -1;
  /// What the event pops, pushes, and which automata it moves — the
  /// machine-readable counterpart of `label`, used by the deadlock witness
  /// replay to confirm claims ("this queue never pops", "this automaton
  /// never moves") without parsing labels.
  Effects effects;
  State next;
};

class Simulator {
 public:
  explicit Simulator(const xmas::Network& net);

  [[nodiscard]] State initial() const;
  /// All one-event successors (may contain duplicate states).
  [[nodiscard]] std::vector<Event> events(const State& s) const;
  /// A quiescent state (no events) counts as a deadlock only when
  /// something wants to move: a fair source exists (it always eventually
  /// wants to inject and is permanently refused) or a packet is stranded
  /// in a queue. Dead-source networks that simply ran dry are quiescent,
  /// not deadlocked — matching the SMT deadlock condition.
  [[nodiscard]] bool quiescence_is_deadlock(const State& s) const {
    if (has_fair_source_) return true;
    for (const auto& q : s.queues) {
      if (!q.empty()) return true;
    }
    return false;
  }
  /// True iff no transfer event is possible and the state counts as a
  /// deadlock (see quiescence_is_deadlock).
  [[nodiscard]] bool is_deadlock(const State& s) const {
    return events(s).empty() && quiescence_is_deadlock(s);
  }

  [[nodiscard]] std::string describe(const State& s) const;

  [[nodiscard]] const xmas::Network& net() const { return net_; }

  // Queue ordinal mapping (State::queues index <-> network PrimId).
  [[nodiscard]] std::size_t num_queues() const { return queue_ids_.size(); }
  [[nodiscard]] xmas::PrimId queue_prim(int ordinal) const {
    return queue_ids_.at(static_cast<std::size_t>(ordinal));
  }
  /// Dense queue index of `p`, or -1 when `p` is not a queue.
  [[nodiscard]] int ordinal_of(xmas::PrimId p) const {
    return queue_ordinal_.at(static_cast<std::size_t>(p));
  }

 private:
  struct Offer {
    xmas::ColorId color;
    Effects effects;
  };

  /// Ways the target side of channel `c` can absorb a packet of color `d`.
  [[nodiscard]] std::vector<Effects> accepts(xmas::ChanId c, xmas::ColorId d,
                                             const State& s, int depth) const;
  /// Packets the initiator side of channel `c` can present right now.
  [[nodiscard]] std::vector<Offer> offers(xmas::ChanId c, const State& s,
                                          int depth) const;
  /// Applies effects; nullopt when jointly infeasible (capacity, conflicts).
  [[nodiscard]] std::optional<State> apply(const State& s,
                                           const Effects& e) const;

  static Effects merge_effects(const Effects& a, const Effects& b);

  [[nodiscard]] int queue_ordinal(xmas::PrimId p) const {
    return queue_ordinal_.at(static_cast<std::size_t>(p));
  }

  const xmas::Network& net_;
  bool has_fair_source_ = false;
  std::vector<int> queue_ordinal_;       // PrimId -> dense queue index (-1)
  std::vector<xmas::PrimId> queue_ids_;  // dense queue index -> PrimId
  static constexpr int kMaxDepth = 64;
};

}  // namespace advocat::sim
