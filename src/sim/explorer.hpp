// Breadth-first reachability over the simulator's event semantics.
//
// Used to (a) confirm that a deadlock candidate reported by the SMT layer
// is actually reachable (the role UPPAAL plays in the paper) and (b) act as
// the explicit-state baseline in the benchmark suite.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"

namespace advocat::sim {

struct ExploreResult {
  std::size_t states_visited = 0;
  std::size_t events_fired = 0;
  /// First total-deadlock state found, if any.
  std::optional<State> deadlock;
  /// Event labels from the initial state to `deadlock`.
  std::vector<std::string> trace;
  /// True when the whole reachable space fit within the state budget.
  bool complete = false;
  double seconds = 0.0;
};

struct ExploreOptions {
  std::size_t max_states = 1'000'000;
  /// Stop as soon as one deadlock state is found.
  bool stop_at_deadlock = true;
};

ExploreResult explore(const Simulator& sim, const ExploreOptions& options = {});

}  // namespace advocat::sim
