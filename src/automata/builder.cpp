#include "automata/builder.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace advocat::aut {

TransitionBuilder& TransitionBuilder::emit(int out_port, ColorId color) {
  auto& t = owner_->pending_.at(index_);
  t.emit_port = out_port;
  t.emit_color = color;
  t.produce = nullptr;
  return *this;
}

TransitionBuilder& TransitionBuilder::emit_fn(
    int out_port, std::function<ColorId(ColorId)> produce) {
  auto& t = owner_->pending_.at(index_);
  t.emit_port = out_port;
  t.produce = std::move(produce);
  return *this;
}

TransitionBuilder& TransitionBuilder::go(const std::string& state) {
  owner_->pending_.at(index_).to = owner_->state_index(state);
  return *this;
}

TransitionBuilder& TransitionBuilder::label(std::string text) {
  owner_->pending_.at(index_).label = std::move(text);
  return *this;
}

AutomatonBuilder::AutomatonBuilder(std::string name,
                                   std::vector<std::string> states) {
  proto_.name = std::move(name);
  proto_.states = std::move(states);
  if (proto_.states.empty())
    throw std::invalid_argument("automaton needs at least one state");
  proto_.initial = 0;
  proto_.num_in = 1;
  proto_.num_out = 1;
}

AutomatonBuilder& AutomatonBuilder::in_ports(int n) {
  proto_.num_in = n;
  return *this;
}

AutomatonBuilder& AutomatonBuilder::out_ports(int n) {
  proto_.num_out = n;
  return *this;
}

AutomatonBuilder& AutomatonBuilder::initial(const std::string& state) {
  proto_.initial = state_index(state);
  return *this;
}

int AutomatonBuilder::state_index(const std::string& state) const {
  for (std::size_t i = 0; i < proto_.states.size(); ++i) {
    if (proto_.states[i] == state) return static_cast<int>(i);
  }
  throw std::out_of_range(proto_.name + ": unknown state " + state);
}

TransitionBuilder AutomatonBuilder::on(const std::string& from, int in_port,
                                       ColorId color) {
  PendingTransition t;
  t.from = state_index(from);
  t.guard = [in_port, color](int i, ColorId d) {
    return i == in_port && d == color;
  };
  t.label = util::cat(from, ": port", in_port, "?");
  pending_.push_back(std::move(t));
  return TransitionBuilder(this, pending_.size() - 1);
}

TransitionBuilder AutomatonBuilder::on_any(const std::string& from, int in_port,
                                           ColorSet colors) {
  PendingTransition t;
  t.from = state_index(from);
  t.guard = [in_port, colors = std::move(colors)](int i, ColorId d) {
    return i == in_port && xmas::set_contains(colors, d);
  };
  t.label = util::cat(from, ": port", in_port, "? (set)");
  pending_.push_back(std::move(t));
  return TransitionBuilder(this, pending_.size() - 1);
}

TransitionBuilder AutomatonBuilder::on_pred(
    const std::string& from, std::function<bool(int, ColorId)> guard,
    std::string label) {
  PendingTransition t;
  t.from = state_index(from);
  t.guard = std::move(guard);
  t.label = std::move(label);
  pending_.push_back(std::move(t));
  return TransitionBuilder(this, pending_.size() - 1);
}

Automaton AutomatonBuilder::build() const {
  Automaton a = proto_;
  for (const PendingTransition& p : pending_) {
    AutTransition t;
    t.from = p.from;
    t.to = p.to == -1 ? p.from : p.to;
    t.guard = p.guard;
    t.label = p.label;
    if (p.emit_port < 0) {
      t.transform = [](int, ColorId) { return std::optional<Emission>{}; };
    } else if (p.produce) {
      const int port = p.emit_port;
      const auto produce = p.produce;
      t.transform = [port, produce](int, ColorId d) {
        return std::optional<Emission>({port, produce(d)});
      };
    } else {
      const int port = p.emit_port;
      const ColorId color = p.emit_color;
      t.transform = [port, color](int, ColorId) {
        return std::optional<Emission>({port, color});
      };
    }
    if (p.emit_port >= 0 && p.emit_port >= a.num_out)
      throw std::logic_error(a.name + ": emit port out of range: " + t.label);
    a.transitions.push_back(std::move(t));
  }
  return a;
}

}  // namespace advocat::aut
