// Fluent builder for xMAS IO automata.
//
// Writing Automaton transition lambdas by hand is verbose and error-prone;
// the builder offers the common transition shapes used by protocol models:
//
//   AutomatonBuilder b("cache", {"I", "M", "MI"});
//   b.in_ports(2).out_ports(1);
//   b.on("I", kCorePort, miss).emit(kNetPort, get).go("M");
//   b.on("M", kNetPort, inv).emit(kNetPort, put).go("MI");
//   b.on("MI", kNetPort, ack).go("I");
//   Automaton a = b.build();
//
// Guards can match a single color, a set of colors, or a predicate on
// ColorData; emissions can be a fixed color or computed from the consumed
// color.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "xmas/automaton.hpp"
#include "xmas/color.hpp"

namespace advocat::aut {

using xmas::Automaton;
using xmas::AutTransition;
using xmas::ColorId;
using xmas::ColorSet;
using xmas::Emission;

class AutomatonBuilder;

/// One transition under construction; returned by AutomatonBuilder::on().
class TransitionBuilder {
 public:
  /// Emits a fixed color on `out_port` when the transition fires.
  TransitionBuilder& emit(int out_port, ColorId color);
  /// Emits a color computed from the consumed color.
  TransitionBuilder& emit_fn(int out_port,
                             std::function<ColorId(ColorId)> produce);
  /// Moves to `state` (defaults to staying in the source state otherwise).
  TransitionBuilder& go(const std::string& state);
  /// Overrides the auto-generated label.
  TransitionBuilder& label(std::string text);

 private:
  friend class AutomatonBuilder;
  TransitionBuilder(AutomatonBuilder* owner, std::size_t index)
      : owner_(owner), index_(index) {}
  AutomatonBuilder* owner_;
  std::size_t index_;
};

class AutomatonBuilder {
 public:
  AutomatonBuilder(std::string name, std::vector<std::string> states);

  AutomatonBuilder& in_ports(int n);
  AutomatonBuilder& out_ports(int n);
  AutomatonBuilder& initial(const std::string& state);

  /// Transition consuming exactly `color` on `in_port` from `from`.
  TransitionBuilder on(const std::string& from, int in_port, ColorId color);
  /// Transition consuming any color of `colors` on `in_port`.
  TransitionBuilder on_any(const std::string& from, int in_port,
                           ColorSet colors);
  /// Fully general guard ε(i, d).
  TransitionBuilder on_pred(const std::string& from,
                            std::function<bool(int, ColorId)> guard,
                            std::string label);

  [[nodiscard]] int state_index(const std::string& state) const;

  /// Finalizes; throws std::logic_error on dangling or malformed pieces.
  [[nodiscard]] Automaton build() const;

 private:
  friend class TransitionBuilder;

  struct PendingTransition {
    int from = 0;
    int to = -1;  // -1: self-loop by default
    std::function<bool(int, ColorId)> guard;
    int emit_port = -1;
    std::function<ColorId(ColorId)> produce;  // null with emit_port>=0: fixed
    ColorId emit_color = xmas::kNoColor;
    std::string label;
  };

  Automaton proto_;
  std::vector<PendingTransition> pending_;
};

}  // namespace advocat::aut
