// The end-to-end ADVOCAT pipeline:
//   structural validation → T-derivation → cross-layer invariant
//   generation → block/idle SMT deadlock query (with the invariants
//   conjoined) → verdict + witness.
//
// The pipeline is exposed as an incremental *session* (Verifier): the
// expensive, capacity-independent stages — validation, T-derivation,
// invariant generation, the block/idle encoding, and the solver-side
// translation — run once at construction; every subsequent check() /
// check_with() / probe_capacity() is a solver call under retractable
// assumptions on one live smt::Solver. The one-shot verify() and the
// queue-capacity search find_minimal_queue_size() are thin wrappers.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/analyzer.hpp"
#include "deadlock/checker.hpp"
#include "deadlock/encoder.hpp"
#include "deadlock/witness.hpp"
#include "invariants/generator.hpp"
#include "smt/smtlib.hpp"
#include "util/budget.hpp"
#include "xmas/network.hpp"
#include "xmas/typing.hpp"

namespace advocat::core {

struct VerifyOptions {
  /// Conjoin generated flow invariants (the paper's method). Without them
  /// the query degenerates to plain Gotmanov-style detection.
  bool use_invariants = true;
  /// Also conjoin derived ≤-inequalities (extension; tightens pruning).
  bool use_inequalities = true;
  /// Assert the unprojected flow system with nonnegative λ/κ variables
  /// (extension; subsumes the equalities and prunes candidates whose only
  /// flow completions need negative counters — required for the
  /// GEM5-style MI protocol).
  bool use_flow_completion = false;
  /// Solver timeout per query; 0 = unlimited.
  unsigned timeout_ms = 0;
  /// Solver backend: Auto picks Z3 when compiled in, the portable native
  /// solver otherwise.
  smt::Backend backend = smt::Backend::Auto;
  /// Encode queue capacities as symbolic variables bound per check by
  /// solver assumptions instead of baked-in constants. Required for
  /// Verifier::probe_capacity(); the encoding is otherwise equivalent.
  bool symbolic_capacities = false;
  /// Mirror the solver session into an SMT-LIB script (Verifier::script()).
  bool record_script = false;
  /// Drop provably-idle components (every channel dead, no source or
  /// automaton — see analysis::prune_idle) before encoding. Shrinks the
  /// SMT problem without changing the verdict; off by default because a
  /// pruned session's network no longer matches the caller's shape (e.g.
  /// for probe_compatible fingerprints).
  bool prune_dead_channels = false;
  /// Parallel search workers inside each solver check (native backend
  /// cube-and-conquer / portfolio; see smt::Solver::set_threads). 0 keeps
  /// the solver's environment default (ADVOCAT_THREADS, itself defaulting
  /// to 1 — strictly sequential).
  unsigned threads = 0;
  /// Force solver determinism mode: parallel verdicts and SolveStats
  /// become reproducible run to run (disables clause exchange and early
  /// cancellation). No effect on sequential checks, which are always
  /// deterministic.
  bool deterministic = false;
  /// Per-check resource ceilings (deadline, conflicts, decisions,
  /// propagations, memory — see util::ResourceBudget and
  /// docs/ROBUSTNESS.md). Exhausting one degrades the check to Unknown
  /// with the matching StopReason on VerifyResult; a default-constructed
  /// budget (the default) imposes no limits.
  util::ResourceBudget budget{};
  /// Certify Sat verdicts: decode the model into a concrete state, replay
  /// it on the simulator, and minimize the blocking queue set (see
  /// deadlock::build_witness). The result lands on VerifyResult::witness.
  bool witness_replay = false;
  /// Reachable-state budget per witness replay (see WitnessOptions).
  std::size_t witness_max_states = 50'000;
  /// Certify Unsat verdicts: receives an independently checkable proof
  /// certificate for every Unsat the session's solver reports (see
  /// smt::Solver::set_proof_sink and docs/PROOFS.md). The sink must
  /// outlive the session; under parallel capacity probing
  /// (QueueSizingOptions::probe_threads > 1) it is called concurrently
  /// from several sessions and must be thread-safe.
  smt::ProofSink* proof_sink = nullptr;
};

struct VerifyResult {
  deadlock::Report report;
  std::size_t num_invariants = 0;
  std::size_t num_inequalities = 0;
  std::vector<std::string> invariant_text;  ///< pretty-printed invariants

  /// Static-analysis findings for the session's network (warnings only —
  /// errors reject the network at construction; see docs/ANALYSIS.md).
  std::vector<analysis::Diagnostic> diagnostics;
  /// Wall-clock cost of the pre-encoding static analysis, in milliseconds.
  /// Paid once at session construction and repeated in every result.
  double analysis_ms = 0.0;

  /// Solver search effort, cumulative over the session up to and including
  /// this check (mirrors report.solve_stats). On the native backend the
  /// learned-clause fields show CDCL working across incremental probes:
  /// learned_kept > 0 after a check means later probes on the session
  /// start from those clauses instead of re-refuting shared substructure.
  smt::SolveStats solve_stats;

  /// Why this check degraded to Unknown (kNone after a definite verdict).
  /// Mirrors solve_stats.stop_reason; a degraded result is never silent.
  util::StopReason stop_reason = util::StopReason::kNone;

  /// Sat verdicts under VerifyOptions::witness_replay: the decoded,
  /// simulator-replayed, minimized counterexample (see deadlock::Witness).
  std::optional<deadlock::Witness> witness;

  double typing_seconds = 0.0;
  double invariant_seconds = 0.0;
  /// Encode vs solve split (mirrors report.encode_seconds /
  /// report.solve_seconds). For a session the encode cost is paid once at
  /// construction and repeated verbatim in every result; solve_seconds is
  /// this check's marginal cost.
  double encode_seconds = 0.0;
  double solve_seconds = 0.0;
  /// First check on a session (and the verify() wrapper): construction +
  /// check. Later session checks: this check's wall clock only.
  double total_seconds = 0.0;

  [[nodiscard]] bool deadlock_free() const { return report.deadlock_free(); }
  [[nodiscard]] std::string to_string() const;
};

/// Per-check deviations from a session's base VerifyOptions. Everything
/// here is expressed through scoped assertion or assumptions, so no state
/// leaks into later checks.
struct CheckOverrides {
  std::optional<bool> use_invariants;
  std::optional<bool> use_inequalities;
  std::optional<bool> use_flow_completion;
  std::optional<unsigned> timeout_ms;
  /// Uniform capacity assumed for every queue (symbolic sessions only).
  std::optional<std::size_t> uniform_capacity;
  /// Per-queue capacity bindings (symbolic sessions only); wins over
  /// uniform_capacity. Queues in neither keep their network capacity.
  std::vector<std::pair<xmas::PrimId, std::size_t>> queue_capacities;
  /// Extra assumptions, built from the session's factory(), held for this
  /// check only.
  std::vector<smt::ExprId> assumptions;
};

/// Instrumentation: how often each pipeline stage actually ran on a
/// session. A capacity-sizing run over N probes should show one
/// validation/typing/generation/encode and N checks.
struct SessionStats {
  std::size_t validations = 0;
  std::size_t typings = 0;
  std::size_t invariant_generations = 0;
  std::size_t encodes = 0;
  std::size_t checks = 0;
};

/// Incremental verification session over one network. Construction runs
/// validation, T-derivation, invariant generation (per options) and the
/// deadlock encoding, and asserts everything into a live solver; each
/// check is then a single incremental (re-)solve. Throws
/// std::invalid_argument when the network fails structural validation.
class Verifier {
 public:
  explicit Verifier(xmas::Network net, VerifyOptions options = {});

  // The live solver references factory_, and the invariant set references
  // net_/typing_; member addresses must stay stable for the session's
  // lifetime, so sessions are pinned (construct in place, e.g. inside a
  // std::optional).
  Verifier(const Verifier&) = delete;
  Verifier& operator=(const Verifier&) = delete;

  /// Forwards util::ResourceBudget ceilings to the session's solver for
  /// every subsequent check; a default-constructed budget clears them.
  void set_budget(const util::ResourceBudget& budget);
  /// Cancels the in-flight check from another thread: it returns Unknown
  /// with StopReason::kCancelled at the solver's next cancellation point,
  /// and the session stays fully reusable (the flag is one-shot).
  void cancel();

  /// Re-solves the deadlock query under the session's base options.
  VerifyResult check();
  /// Re-solves under per-check overrides (see CheckOverrides). Feature
  /// groups toggled off are disabled via unasserted guard assumptions;
  /// groups toggled on that were never prepared are generated lazily and
  /// asserted incrementally — later checks get them for free.
  VerifyResult check_with(const CheckOverrides& overrides);
  /// Assumes capacity `k` for every queue and re-solves: one assumption
  /// flip per probe. Requires VerifyOptions::symbolic_capacities.
  VerifyResult probe_capacity(std::size_t capacity);

  [[nodiscard]] const xmas::Network& network() const { return net_; }
  [[nodiscard]] const xmas::Typing& typing() const { return typing_; }
  [[nodiscard]] const VerifyOptions& options() const { return options_; }
  [[nodiscard]] const SessionStats& stats() const { return stats_; }
  /// Static-analysis warnings for the session's network (errors throw at
  /// construction, so a live session only ever carries warnings).
  [[nodiscard]] const std::vector<analysis::Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  /// Pre-encoding static analysis cost in milliseconds (see VerifyResult).
  [[nodiscard]] double analysis_ms() const { return analysis_ms_; }
  /// Session-cumulative solver search statistics (see smt::SolveStats) —
  /// the same snapshot every VerifyResult carries, without a check.
  [[nodiscard]] const smt::SolveStats& solve_stats() const;
  /// The session's expression arena — build CheckOverrides::assumptions
  /// against this factory.
  [[nodiscard]] smt::ExprFactory& factory() { return factory_; }
  /// The recorded SMT-LIB session (empty unless options.record_script).
  [[nodiscard]] const smt::Script& script() const { return script_; }

  /// Whether `other` differs from the session's network only in queue
  /// capacities — the precondition for probing `other`'s capacities on
  /// this session. Compares primitives, wiring, colors, automaton
  /// skeletons, and the derived per-channel typing (a semantic
  /// fingerprint of the std::function-valued parts: function maps, switch
  /// routes, transition guards/transforms). Function bodies that diverge
  /// without moving any color past the typing are undetectable and remain
  /// the caller's contract.
  [[nodiscard]] bool probe_compatible(const xmas::Network& other) const;

 private:
  VerifyResult run_check(const CheckOverrides& o);
  void ensure_invariants(bool want_inequalities);
  void ensure_flow_completion();

  xmas::Network net_;
  VerifyOptions options_;
  std::vector<analysis::Diagnostic> diagnostics_;
  double analysis_ms_ = 0.0;
  xmas::Typing typing_;
  smt::ExprFactory factory_;
  deadlock::Encoding enc_;
  smt::Script script_;
  std::unique_ptr<smt::Solver> solver_;

  // Feature-group guard literals: each group is asserted once as
  // guard → constraint; a check enables the group by assuming the guard.
  smt::ExprId inv_guard_ = smt::kNoExpr;
  smt::ExprId ineq_guard_ = smt::kNoExpr;
  smt::ExprId flow_guard_ = smt::kNoExpr;
  bool invariants_ready_ = false;
  bool inequalities_ready_ = false;
  bool flow_ready_ = false;
  inv::InvariantSet invariants_;

  SessionStats stats_;
  double construct_typing_seconds_ = 0.0;
  double invariant_seconds_ = 0.0;
  double construct_encode_seconds_ = 0.0;
  double construct_seconds_ = 0.0;  ///< total ctor wall clock
  bool construction_charged_ = false;
};

/// Runs the full pipeline once (thin wrapper over a one-check Verifier).
/// Throws std::invalid_argument when the network fails structural
/// validation.
VerifyResult verify(const xmas::Network& net, const VerifyOptions& options = {});

struct QueueSizingOptions {
  std::size_t min_capacity = 1;
  std::size_t max_capacity = 256;
  VerifyOptions verify;
  /// Probe capacities as assumption flips on one Verifier session (the
  /// incremental path). Requires make_net to vary only queue capacities
  /// with its argument — verified structurally per probe, with a
  /// per-probe fallback to a fresh one-shot verify() when the shapes
  /// diverge. Set false to force the legacy re-encode-per-probe path.
  bool incremental = true;
  /// Concurrent capacity probes (incremental path only). 1 keeps the
  /// sequential exponential + binary search; N > 1 runs a round-based
  /// parallel ladder then k-section narrowing over N worker sessions,
  /// each its own Verifier (learned clauses persist per worker across its
  /// rounds). make_net is only ever called from the scheduling thread.
  /// 0 takes the ADVOCAT_THREADS environment default. Probe order — and
  /// therefore QueueSizingResult::probes — is deterministic for a fixed
  /// thread count; the verdict is thread-count-independent.
  unsigned probe_threads = 1;
  /// Resource governance for the whole sizing run: deadline_ms bounds the
  /// *overall* search wall clock (the scheduler stops launching probes
  /// once it expires and reports kDeadline), while the discrete ceilings
  /// (conflicts/decisions/propagations/memory) apply per probe via
  /// verify.budget semantics. Partial results stay sound: a capacity is
  /// only ever accepted on its own definite Unsat.
  util::ResourceBudget budget{};
};

struct QueueSizingResult {
  /// Smallest probed capacity proven deadlock-free; 0 when none within
  /// [min, max] was.
  std::size_t minimal_capacity = 0;
  /// (capacity, verdict) for every probe, in probe order. Unsat means
  /// deadlock-free, Sat a deadlock candidate; Unknown (timeout / degraded
  /// search) is treated as not-proven-free by the search, and callers
  /// should report it as "unknown" rather than "deadlock".
  std::vector<std::pair<std::size_t, smt::SatResult>> probes;
  /// Probes whose verdict was Unknown. When nonzero, minimal_capacity is
  /// still sound (a capacity is only accepted on a definite Unsat) but may
  /// be larger than the true minimum.
  std::size_t unknown_probes = 0;
  /// Why the search degraded, combined over every Unknown probe and the
  /// scheduler's own deadline (highest-priority reason wins; kNone when
  /// every probe was definite and the search ran to completion).
  util::StopReason stop_reason = util::StopReason::kNone;
  double seconds = 0.0;
  /// Final solver search effort (incremental path: session-cumulative
  /// totals over every probe; fallback path: the last one-shot check).
  smt::SolveStats solve_stats;

  // Instrumentation (see SessionStats): on the incremental path a whole
  // sizing run costs one validation + one invariant generation + one
  // encode, and one solver check per probe. (Each probe additionally
  // builds the candidate network and derives its typing as the
  // probe_compatible fingerprint; that safety net is not a pipeline stage
  // and is not counted here.)
  std::size_t validations = 0;
  std::size_t invariant_generations = 0;
  std::size_t encodes = 0;
  std::size_t solver_checks = 0;
  /// Whether the incremental session path was used for every probe.
  bool incremental = false;

  /// Cumulative static-analysis wall clock across every session/probe the
  /// search built, in milliseconds, and the number of analyzer diagnostics
  /// (warnings) the probed network carries.
  double analysis_ms = 0.0;
  std::size_t diagnostics = 0;
};

/// Finds the minimal uniform queue capacity for which `make_net(capacity)`
/// verifies deadlock-free. Assumes monotonicity (larger queues never
/// introduce deadlocks — true for the paper's case studies): exponential
/// probe up from min_capacity, then binary search. With
/// QueueSizingOptions::incremental (the default) all probes are assumption
/// flips on one live Verifier session.
QueueSizingResult find_minimal_queue_size(
    const std::function<xmas::Network(std::size_t)>& make_net,
    const QueueSizingOptions& options = {});

}  // namespace advocat::core
