// The end-to-end ADVOCAT pipeline:
//   structural validation → T-derivation → cross-layer invariant
//   generation → block/idle SMT deadlock query (with the invariants
//   conjoined) → verdict + witness.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "deadlock/checker.hpp"
#include "xmas/network.hpp"

namespace advocat::core {

struct VerifyOptions {
  /// Conjoin generated flow invariants (the paper's method). Without them
  /// the query degenerates to plain Gotmanov-style detection.
  bool use_invariants = true;
  /// Also conjoin derived ≤-inequalities (extension; tightens pruning).
  bool use_inequalities = true;
  /// Assert the unprojected flow system with nonnegative λ/κ variables
  /// (extension; subsumes the equalities and prunes candidates whose only
  /// flow completions need negative counters — required for the
  /// GEM5-style MI protocol).
  bool use_flow_completion = false;
  /// Solver timeout per query; 0 = unlimited.
  unsigned timeout_ms = 0;
  /// Solver backend: Auto picks Z3 when compiled in, the portable native
  /// solver otherwise.
  smt::Backend backend = smt::Backend::Auto;
};

struct VerifyResult {
  deadlock::Report report;
  std::size_t num_invariants = 0;
  std::size_t num_inequalities = 0;
  std::vector<std::string> invariant_text;  ///< pretty-printed invariants

  double typing_seconds = 0.0;
  double invariant_seconds = 0.0;
  double total_seconds = 0.0;

  [[nodiscard]] bool deadlock_free() const { return report.deadlock_free(); }
  [[nodiscard]] std::string to_string() const;
};

/// Runs the full pipeline. Throws std::invalid_argument when the network
/// fails structural validation.
VerifyResult verify(const xmas::Network& net, const VerifyOptions& options = {});

struct QueueSizingOptions {
  std::size_t min_capacity = 1;
  std::size_t max_capacity = 256;
  VerifyOptions verify;
};

struct QueueSizingResult {
  /// Smallest probed capacity proven deadlock-free; 0 when none within
  /// [min, max] was.
  std::size_t minimal_capacity = 0;
  /// (capacity, deadlock_free) for every probe, in probe order.
  std::vector<std::pair<std::size_t, bool>> probes;
  double seconds = 0.0;
};

/// Finds the minimal uniform queue capacity for which `make_net(capacity)`
/// verifies deadlock-free. Assumes monotonicity (larger queues never
/// introduce deadlocks — true for the paper's case studies): exponential
/// probe up from min_capacity, then binary search.
QueueSizingResult find_minimal_queue_size(
    const std::function<xmas::Network(std::size_t)>& make_net,
    const QueueSizingOptions& options = {});

}  // namespace advocat::core
