#include "advocat/verifier.hpp"

#include <sstream>
#include <stdexcept>

#include "invariants/generator.hpp"
#include "smt/expr.hpp"
#include "util/stopwatch.hpp"
#include "xmas/typing.hpp"

namespace advocat::core {

std::string VerifyResult::to_string() const {
  std::ostringstream os;
  os << report.to_string();
  os << "invariants: " << num_invariants << " equalities, "
     << num_inequalities << " inequalities\n";
  os << "time: typing " << typing_seconds << "s, invariants "
     << invariant_seconds << "s, total " << total_seconds << "s\n";
  return os.str();
}

VerifyResult verify(const xmas::Network& net, const VerifyOptions& options) {
  util::Stopwatch total;
  VerifyResult result;

  const std::vector<std::string> problems = net.validate();
  if (!problems.empty()) {
    std::string msg = "verify: invalid network:";
    for (const auto& p : problems) msg += "\n  " + p;
    throw std::invalid_argument(msg);
  }

  util::Stopwatch watch;
  const xmas::Typing typing = xmas::Typing::derive(net);
  result.typing_seconds = watch.seconds();

  smt::ExprFactory factory;
  std::vector<smt::ExprId> extra;
  if (options.use_invariants) {
    watch.reset();
    inv::InvariantSet invariants =
        inv::generate(net, typing, options.use_inequalities);
    result.invariant_seconds = watch.seconds();
    result.num_invariants = invariants.equalities.size();
    result.num_inequalities = invariants.inequalities.size();
    result.invariant_text = invariants.to_strings();
    extra = invariants.to_smt(factory);
  }
  if (options.use_flow_completion) {
    const std::vector<smt::ExprId> flow =
        inv::flow_completion_smt(net, typing, factory);
    extra.insert(extra.end(), flow.begin(), flow.end());
  }

  result.report = deadlock::check(net, typing, factory, extra,
                                  options.timeout_ms, options.backend);
  result.total_seconds = total.seconds();
  return result;
}

QueueSizingResult find_minimal_queue_size(
    const std::function<xmas::Network(std::size_t)>& make_net,
    const QueueSizingOptions& options) {
  util::Stopwatch total;
  QueueSizingResult result;

  auto probe = [&](std::size_t capacity) {
    const xmas::Network net = make_net(capacity);
    const bool free = verify(net, options.verify).deadlock_free();
    result.probes.emplace_back(capacity, free);
    return free;
  };

  // Exponential search for the first deadlock-free capacity.
  std::size_t lo = options.min_capacity;  // invariant: lo-1 known-bad or min
  std::size_t hi = 0;                     // first known-good capacity
  std::size_t step = options.min_capacity;
  std::size_t last_bad = options.min_capacity - 1;
  for (std::size_t cap = options.min_capacity; cap <= options.max_capacity;) {
    if (probe(cap)) {
      hi = cap;
      break;
    }
    last_bad = cap;
    step *= 2;
    cap = cap + step > options.max_capacity && cap != options.max_capacity
              ? options.max_capacity
              : cap + step;
  }
  if (hi == 0) {
    result.seconds = total.seconds();
    return result;  // nothing within range
  }
  // Binary search in (last_bad, hi].
  lo = last_bad + 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (probe(mid)) hi = mid;
    else lo = mid + 1;
  }
  result.minimal_capacity = hi;
  result.seconds = total.seconds();
  return result;
}

}  // namespace advocat::core
