#include "advocat/verifier.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "smt/expr.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"
#include "util/stopwatch.hpp"

namespace advocat::core {

std::string VerifyResult::to_string() const {
  std::ostringstream os;
  os << report.to_string();
  if (!diagnostics.empty()) {
    os << "analysis: " << diagnostics.size() << " warning(s)\n";
    for (const analysis::Diagnostic& d : diagnostics) {
      os << "  " << d.to_string() << "\n";
    }
  }
  os << "invariants: " << num_invariants << " equalities, "
     << num_inequalities << " inequalities\n";
  os << "time: typing " << typing_seconds << "s, invariants "
     << invariant_seconds << "s, encode " << encode_seconds << "s, solve "
     << solve_seconds << "s, total " << total_seconds << "s\n";
  os << "solver: " << solve_stats.conflicts << " conflicts, "
     << solve_stats.decisions << " decisions, " << solve_stats.propagations
     << " propagations, " << solve_stats.restarts << " restarts, "
     << solve_stats.learned_clauses << " learned ("
     << solve_stats.learned_kept << " kept, " << solve_stats.deleted_clauses
     << " deleted)\n";
  if (stop_reason != util::StopReason::kNone) {
    os << "stopped: " << util::to_string(stop_reason) << "\n";
  }
  if (witness.has_value()) os << witness->to_string();
  return os.str();
}

Verifier::Verifier(xmas::Network net, VerifyOptions options)
    : net_(std::move(net)), options_(options) {
  util::Stopwatch total;

  util::Stopwatch analysis_watch;
  analysis::AnalysisResult ar = analysis::analyze(net_);
  ++stats_.validations;
  if (ar.has_errors()) {
    std::string msg = "verify: invalid network:";
    for (const analysis::Diagnostic& d : ar.diagnostics) {
      if (d.severity == analysis::Severity::Error) {
        msg += "\n  " + d.to_string();
      }
    }
    throw std::invalid_argument(msg);
  }
  if (options_.prune_dead_channels && !ar.prunable_prims.empty()) {
    net_ = analysis::prune_idle(net_, ar);
  }
  diagnostics_ = std::move(ar.diagnostics);
  analysis_ms_ = analysis_watch.seconds() * 1000.0;
  if (!diagnostics_.empty()) {
    std::fprintf(stderr,
                 "[advocat] network analysis: %zu warning(s); first: %s\n",
                 diagnostics_.size(), diagnostics_.front().to_string().c_str());
  }

  util::Stopwatch watch;
  typing_ = xmas::Typing::derive(net_);
  ++stats_.typings;
  construct_typing_seconds_ = watch.seconds();

  watch.reset();
  deadlock::EncoderOptions eopts;
  eopts.symbolic_capacities = options_.symbolic_capacities;
  deadlock::Encoder encoder(net_, typing_, factory_, eopts);
  enc_ = encoder.encode();
  ++stats_.encodes;
  construct_encode_seconds_ = watch.seconds();

  solver_ = smt::make_solver(factory_, options_.backend);
  if (options_.record_script) {
    solver_ = smt::make_recording_solver(std::move(solver_), script_);
  }
  if (options_.threads != 0) solver_->set_threads(options_.threads);
  if (options_.deterministic) solver_->set_deterministic(true);
  // Before any assertion reaches the solver, so every Unsat of the session
  // is certified from a complete clause log.
  if (options_.proof_sink != nullptr) {
    solver_->set_proof_sink(options_.proof_sink);
  }
  if (!options_.budget.unlimited()) solver_->set_budget(options_.budget);
  for (smt::ExprId e : enc_.structural) solver_->add(e);
  for (smt::ExprId e : enc_.definitions) solver_->add(e);
  solver_->add(enc_.deadlock);

  if (options_.use_invariants) ensure_invariants(options_.use_inequalities);
  if (options_.use_flow_completion) ensure_flow_completion();

  construct_seconds_ = total.seconds();
}

void Verifier::ensure_invariants(bool want_inequalities) {
  if (!invariants_ready_) {
    util::Stopwatch watch;
    invariants_ = inv::generate(net_, typing_, want_inequalities);
    invariant_seconds_ += watch.seconds();
    ++stats_.invariant_generations;
    const std::vector<smt::ExprId> smt = invariants_.to_smt(factory_);
    inv_guard_ = factory_.bool_var("G[invariants]");
    ineq_guard_ = factory_.bool_var("G[inequalities]");
    for (std::size_t i = 0; i < smt.size(); ++i) {
      const smt::ExprId guard =
          i < invariants_.equalities.size() ? inv_guard_ : ineq_guard_;
      solver_->add(factory_.implies(guard, smt[i]));
    }
    invariants_ready_ = true;
    inequalities_ready_ = want_inequalities;
    return;
  }
  if (want_inequalities && !inequalities_ready_) {
    // The session was built without inequalities; derive the full set now
    // and (re-)assert every row. Not just the ≤-rows: that would bake in
    // the assumption that both generate() calls produce an identical
    // equality prefix. Re-asserting instead is unconditionally sound —
    // every generated row is a true invariant of (net, typing), so the
    // union of both generations is valid — and rows identical to the
    // first generation are hash-consed to the same ExprId, making their
    // re-assertion free for the solver.
    util::Stopwatch watch;
    inv::InvariantSet with_ineqs = inv::generate(net_, typing_, true);
    invariant_seconds_ += watch.seconds();
    ++stats_.invariant_generations;
    const std::vector<smt::ExprId> smt = with_ineqs.to_smt(factory_);
    for (std::size_t i = 0; i < smt.size(); ++i) {
      const smt::ExprId guard =
          i < with_ineqs.equalities.size() ? inv_guard_ : ineq_guard_;
      solver_->add(factory_.implies(guard, smt[i]));
    }
    invariants_ = std::move(with_ineqs);
    inequalities_ready_ = true;
  }
}

void Verifier::ensure_flow_completion() {
  if (flow_ready_) return;
  const std::vector<smt::ExprId> flow =
      inv::flow_completion_smt(net_, typing_, factory_);
  flow_guard_ = factory_.bool_var("G[flow_completion]");
  for (smt::ExprId e : flow) {
    solver_->add(factory_.implies(flow_guard_, e));
  }
  flow_ready_ = true;
}

VerifyResult Verifier::run_check(const CheckOverrides& o) {
  util::Stopwatch watch;

  const bool use_inv = o.use_invariants.value_or(options_.use_invariants);
  const bool use_ineq =
      o.use_inequalities.value_or(options_.use_inequalities);
  const bool use_flow =
      o.use_flow_completion.value_or(options_.use_flow_completion);
  const unsigned timeout = o.timeout_ms.value_or(options_.timeout_ms);

  if (!options_.symbolic_capacities &&
      (o.uniform_capacity.has_value() || !o.queue_capacities.empty())) {
    throw std::logic_error(
        "Verifier: capacity overrides require "
        "VerifyOptions::symbolic_capacities");
  }

  if (use_inv) ensure_invariants(use_ineq);
  if (use_flow) ensure_flow_completion();

  std::vector<smt::ExprId> assumptions;
  if (use_inv) {
    assumptions.push_back(inv_guard_);
    if (use_ineq) assumptions.push_back(ineq_guard_);
  }
  if (use_flow) assumptions.push_back(flow_guard_);
  // Capacity bindings: every symbolic capacity variable must be pinned per
  // check, or the solver could pick capacities that fabricate candidates.
  for (const auto& [qid, capvar] : enc_.capacity_vars) {
    std::size_t k = net_.prim(qid).capacity;
    if (o.uniform_capacity.has_value()) k = *o.uniform_capacity;
    for (const auto& [oq, ok] : o.queue_capacities) {
      if (oq == qid) {
        k = ok;
        break;
      }
    }
    assumptions.push_back(
        factory_.eq(capvar, factory_.int_const(static_cast<std::int64_t>(k))));
  }
  assumptions.insert(assumptions.end(), o.assumptions.begin(),
                     o.assumptions.end());

  VerifyResult result;
  result.report.num_definitions = enc_.definitions.size();
  result.report.encode_seconds = construct_encode_seconds_;

  util::Stopwatch solve;
  bool fault_unwound = false;
  try {
    result.report.result = solver_->check_assuming(assumptions, timeout);
  } catch (const util::fault::FaultInjected&) {
    // Safety net: an injected fault that escapes the solver's own
    // handling (they all unwind at assumption-retracted safe points)
    // degrades the check to Unknown; the session stays usable.
    result.report.result = smt::SatResult::Unknown;
    fault_unwound = true;
  }
  result.report.solve_seconds = solve.seconds();
  result.report.solve_stats = solver_->solve_stats();
  result.solve_stats = result.report.solve_stats;
  if (result.report.result == smt::SatResult::Unknown) {
    // Every degraded verdict carries a reason — never a silent Unknown.
    result.stop_reason =
        fault_unwound ? util::StopReason::kFaultInjected
        : result.solve_stats.stop_reason == util::StopReason::kNone
            ? util::StopReason::kDegraded
            : result.solve_stats.stop_reason;
  }
  ++stats_.checks;

  if (result.report.result == smt::SatResult::Sat) {
    deadlock::decode_witness(net_, typing_, factory_, enc_, solver_->model(),
                             result.report);
    if (options_.witness_replay) {
      deadlock::WitnessOptions wo;
      wo.max_states = options_.witness_max_states;
      result.witness = deadlock::build_witness(net_, typing_, solver_->model(),
                                               result.report.fired, wo);
    }
  }

  if (use_inv) {
    result.num_invariants = invariants_.equalities.size();
    result.num_inequalities = use_ineq ? invariants_.inequalities.size() : 0;
    result.invariant_text = invariants_.to_strings();
  }
  result.diagnostics = diagnostics_;
  result.analysis_ms = analysis_ms_;
  result.typing_seconds = construct_typing_seconds_;
  result.invariant_seconds = invariant_seconds_;
  result.encode_seconds = construct_encode_seconds_;
  result.solve_seconds = result.report.solve_seconds;
  result.total_seconds =
      watch.seconds() + (construction_charged_ ? 0.0 : construct_seconds_);
  construction_charged_ = true;
  return result;
}

const smt::SolveStats& Verifier::solve_stats() const {
  return solver_->solve_stats();
}

void Verifier::set_budget(const util::ResourceBudget& budget) {
  options_.budget = budget;
  solver_->set_budget(budget);
}

void Verifier::cancel() { solver_->cancel(); }

VerifyResult Verifier::check() { return run_check(CheckOverrides{}); }

VerifyResult Verifier::check_with(const CheckOverrides& overrides) {
  return run_check(overrides);
}

VerifyResult Verifier::probe_capacity(std::size_t capacity) {
  if (!options_.symbolic_capacities) {
    throw std::logic_error(
        "Verifier::probe_capacity requires VerifyOptions::symbolic_capacities");
  }
  CheckOverrides o;
  o.uniform_capacity = capacity;
  return run_check(o);
}

bool Verifier::probe_compatible(const xmas::Network& other) const {
  if (other.num_prims() != net_.num_prims() ||
      other.num_channels() != net_.num_channels() ||
      other.automata().size() != net_.automata().size() ||
      other.colors().size() != net_.colors().size()) {
    return false;
  }
  for (xmas::ColorId c = 0;
       c < static_cast<xmas::ColorId>(net_.colors().size()); ++c) {
    if (!(other.colors().get(c) == net_.colors().get(c))) return false;
  }
  for (std::size_t i = 0; i < net_.prims().size(); ++i) {
    const xmas::Primitive& a = net_.prims()[i];
    const xmas::Primitive& b = other.prims()[i];
    if (a.kind != b.kind || a.name != b.name || a.in.size() != b.in.size() ||
        a.out.size() != b.out.size() || a.fifo != b.fifo ||
        a.fair != b.fair || a.automaton != b.automaton ||
        a.source_colors != b.source_colors) {
      return false;
    }
  }
  for (std::size_t i = 0; i < net_.channels().size(); ++i) {
    const xmas::Channel& a = net_.channels()[i];
    const xmas::Channel& b = other.channels()[i];
    if (a.initiator != b.initiator || a.init_port != b.init_port ||
        a.target != b.target || a.tgt_port != b.tgt_port) {
      return false;
    }
  }
  for (std::size_t i = 0; i < net_.automata().size(); ++i) {
    const xmas::Automaton& a = net_.automata()[i];
    const xmas::Automaton& b = other.automata()[i];
    if (a.name != b.name || a.num_states() != b.num_states() ||
        a.states != b.states || a.initial != b.initial ||
        a.num_in != b.num_in || a.num_out != b.num_out ||
        a.transitions.size() != b.transitions.size()) {
      return false;
    }
    for (std::size_t t = 0; t < a.transitions.size(); ++t) {
      if (a.transitions[t].from != b.transitions[t].from ||
          a.transitions[t].to != b.transitions[t].to ||
          a.transitions[t].label != b.transitions[t].label) {
        return false;
      }
    }
  }
  // Function bodies (Function::func, Switch::route, transition guards and
  // transforms) are std::function and cannot be compared directly; the
  // derived per-channel color sets are a semantic fingerprint of them, so
  // any behavioural drift that changes what flows where is caught here.
  // A factory whose functions differ *without* moving any color remains
  // the caller's responsibility (see QueueSizingOptions::incremental).
  const xmas::Typing other_typing = xmas::Typing::derive(other);
  if (other_typing.num_channels() != typing_.num_channels()) return false;
  for (xmas::ChanId c = 0;
       c < static_cast<xmas::ChanId>(typing_.num_channels()); ++c) {
    if (other_typing.of(c) != typing_.of(c)) return false;
  }
  return true;
}

VerifyResult verify(const xmas::Network& net, const VerifyOptions& options) {
  // Copies the network into the one-check session; that copy is noise
  // next to encoding + solving, and keeps Verifier's ownership story
  // simple (sessions always own their network).
  Verifier session(net, options);
  return session.check();
}

namespace {

/// One-shot fallback probe (legacy path): rebuild and re-verify.
smt::SatResult probe_from_scratch(const xmas::Network& net,
                                  const VerifyOptions& vo,
                                  QueueSizingResult& result) {
  const VerifyResult r = verify(net, vo);
  ++result.validations;
  ++result.encodes;
  ++result.solver_checks;
  if (vo.use_invariants) ++result.invariant_generations;
  result.solve_stats = r.solve_stats;
  result.analysis_ms += r.analysis_ms;
  result.diagnostics = std::max(result.diagnostics, r.diagnostics.size());
  if (r.report.result == smt::SatResult::Unknown) {
    result.stop_reason = util::combine(
        result.stop_reason, r.stop_reason == util::StopReason::kNone
                                ? util::StopReason::kDegraded
                                : r.stop_reason);
  }
  return r.report.result;
}

/// Overall-search deadline for a sizing run (QueueSizingOptions::budget).
/// The discrete ceilings are per-probe and travel on the VerifyOptions.
class SizingDeadline {
 public:
  explicit SizingDeadline(const util::ResourceBudget& b)
      : active_(b.deadline_ms != 0),
        at_(std::chrono::steady_clock::now() +
            std::chrono::milliseconds(b.deadline_ms)) {}
  [[nodiscard]] bool expired() const {
    return active_ && std::chrono::steady_clock::now() >= at_;
  }

 private:
  bool active_;
  std::chrono::steady_clock::time_point at_;
};

/// Copies the sizing budget's per-probe ceilings onto the per-check
/// verify budget wherever the caller left the latter unlimited; the
/// overall deadline is the scheduler's, never the probe's.
VerifyOptions with_probe_budget(const VerifyOptions& base,
                                const util::ResourceBudget& sizing) {
  VerifyOptions vo = base;
  util::ResourceBudget& b = vo.budget;
  if (b.max_conflicts == 0) b.max_conflicts = sizing.max_conflicts;
  if (b.max_decisions == 0) b.max_decisions = sizing.max_decisions;
  if (b.max_propagations == 0) b.max_propagations = sizing.max_propagations;
  if (b.max_memory_bytes == 0) b.max_memory_bytes = sizing.max_memory_bytes;
  return vo;
}

void add_stats(smt::SolveStats& into, const smt::SolveStats& s) {
  into.conflicts += s.conflicts;
  into.decisions += s.decisions;
  into.propagations += s.propagations;
  into.restarts += s.restarts;
  into.learned_clauses += s.learned_clauses;
  into.deleted_clauses += s.deleted_clauses;
  into.learned_kept += s.learned_kept;
  into.learned_hits += s.learned_hits;
  into.theory_pivots += s.theory_pivots;
  into.farkas_explanations += s.farkas_explanations;
  into.clauses_exported += s.clauses_exported;
  into.clauses_imported += s.clauses_imported;
  into.arena_compactions += s.arena_compactions;
  into.arena_bytes = std::max(into.arena_bytes, s.arena_bytes);
  into.peak_arena_bytes = std::max(into.peak_arena_bytes, s.peak_arena_bytes);
  into.stop_reason = util::combine(into.stop_reason, s.stop_reason);
  into.threads = std::max(into.threads, s.threads);
}

/// Parallel round-based capacity search: a ladder round probes the next W
/// exponential rungs concurrently, then k-section rounds narrow the
/// bad/good interval with up to W evenly spaced midpoints per round.
/// Each worker owns a full Verifier session, so PR4 learned-clause
/// persistence still applies within a worker across its rounds; make_net
/// and all result bookkeeping stay on the scheduling thread. Probes are
/// assigned worker i % W statically, so for a fixed W the whole probe
/// sequence (and QueueSizingResult::probes) is deterministic; the final
/// verdict never depends on W because a capacity is only accepted on its
/// own definite Unsat.
QueueSizingResult find_minimal_parallel(
    const std::function<xmas::Network(std::size_t)>& make_net,
    const QueueSizingOptions& options, unsigned probe_threads) {
  util::Stopwatch total;
  QueueSizingResult result;
  result.incremental = true;
  const SizingDeadline deadline(options.budget);

  VerifyOptions vo = with_probe_budget(options.verify, options.budget);
  vo.symbolic_capacities = true;
  const unsigned width = std::min(probe_threads, 16u);
  std::vector<std::unique_ptr<Verifier>> sessions;
  sessions.reserve(width);
  for (unsigned w = 0; w < width; ++w) {
    sessions.push_back(
        std::make_unique<Verifier>(make_net(options.min_capacity), vo));
  }

  // Probes one round of capacities concurrently (ascending, deduped by the
  // callers) and returns their verdicts in the same order.
  auto run_round = [&](const std::vector<std::size_t>& caps) {
    std::vector<xmas::Network> candidates;
    candidates.reserve(caps.size());
    for (std::size_t cap : caps) candidates.push_back(make_net(cap));
    std::vector<smt::SatResult> verdicts(caps.size(),
                                         smt::SatResult::Unknown);
    std::vector<util::StopReason> reasons(caps.size(),
                                          util::StopReason::kNone);
    std::vector<char> incompatible(caps.size(), 0);
    util::parallel_for_static(caps.size(), width, [&](std::size_t i) {
      Verifier& s = *sessions[i % width];
      if (!s.probe_compatible(candidates[i])) {
        incompatible[i] = 1;
        return;
      }
      CheckOverrides o;
      for (xmas::PrimId qid :
           candidates[i].prims_of_kind(xmas::PrimKind::Queue)) {
        o.queue_capacities.emplace_back(qid, candidates[i].prim(qid).capacity);
      }
      const VerifyResult r = s.check_with(o);
      verdicts[i] = r.report.result;
      // Captured per probe (a session's own stop_reason only remembers
      // its most recent check, which may be a later probe of this round).
      if (verdicts[i] == smt::SatResult::Unknown) {
        reasons[i] = r.stop_reason == util::StopReason::kNone
                         ? util::StopReason::kDegraded
                         : r.stop_reason;
      }
    });
    for (std::size_t i = 0; i < caps.size(); ++i) {
      if (incompatible[i] != 0) {
        // make_net changed more than capacities: probe the slow,
        // always-correct way (serially — verify() rebuilds everything).
        result.incremental = false;
        verdicts[i] =
            probe_from_scratch(candidates[i], options.verify, result);
      }
      result.probes.emplace_back(caps[i], verdicts[i]);
      if (verdicts[i] == smt::SatResult::Unknown) {
        ++result.unknown_probes;
        result.stop_reason = util::combine(result.stop_reason, reasons[i]);
      }
    }
    return verdicts;
  };

  // Ladder rounds: the same exponential rung sequence as the sequential
  // search, W rungs at a time.
  std::size_t hi = 0;
  std::size_t last_bad = options.min_capacity - 1;
  std::size_t step = options.min_capacity;
  std::size_t cap = options.min_capacity;
  bool exhausted = false;
  while (hi == 0 && !exhausted) {
    if (deadline.expired()) {
      // Out of overall budget before a free capacity was found: stop
      // launching probes. minimal_capacity stays 0 ("none proven"),
      // which is sound, and the reason is on the result.
      result.stop_reason =
          util::combine(result.stop_reason, util::StopReason::kDeadline);
      break;
    }
    std::vector<std::size_t> rung;
    while (rung.size() < width) {
      rung.push_back(cap);
      if (cap == options.max_capacity) {
        exhausted = true;
        break;
      }
      step *= 2;
      cap = cap + step > options.max_capacity ? options.max_capacity
                                              : cap + step;
    }
    const std::vector<smt::SatResult> verdicts = run_round(rung);
    for (std::size_t i = 0; i < rung.size(); ++i) {
      if (verdicts[i] == smt::SatResult::Unsat) {
        hi = rung[i];
        break;
      }
      last_bad = rung[i];
    }
  }

  if (hi != 0) {
    // k-section narrowing of (last_bad, hi]: candidates live in
    // [lo, hi - 1]; every round either lowers hi (some midpoint proved
    // free) or raises lo past its bad midpoints, so the interval shrinks
    // every round.
    std::size_t lo = last_bad + 1;
    while (lo < hi) {
      if (deadline.expired()) {
        // hi is already a proven-free capacity; reporting it un-narrowed
        // is sound, just possibly oversized — flagged by the reason.
        result.stop_reason =
            util::combine(result.stop_reason, util::StopReason::kDeadline);
        break;
      }
      const std::size_t span = hi - lo;
      const std::size_t k = std::min<std::size_t>(width, span);
      std::vector<std::size_t> mids;
      mids.reserve(k);
      for (std::size_t j = 1; j <= k; ++j) {
        const std::size_t m = lo + span * j / (k + 1);
        if (mids.empty() || mids.back() != m) mids.push_back(m);
      }
      const std::vector<smt::SatResult> verdicts = run_round(mids);
      for (std::size_t i = 0; i < mids.size(); ++i) {
        if (verdicts[i] == smt::SatResult::Unsat) {
          hi = mids[i];
          break;
        }
        lo = mids[i] + 1;
      }
    }
    result.minimal_capacity = hi;
  }

  result.solve_stats = {};
  for (const auto& s : sessions) {
    add_stats(result.solve_stats, s->solve_stats());
    const SessionStats& st = s->stats();
    result.validations += st.validations;
    result.invariant_generations += st.invariant_generations;
    result.encodes += st.encodes;
    result.solver_checks += st.checks;
    result.analysis_ms += s->analysis_ms();
    result.diagnostics =
        std::max(result.diagnostics, s->diagnostics().size());
  }
  result.seconds = total.seconds();
  return result;
}

}  // namespace

QueueSizingResult find_minimal_queue_size(
    const std::function<xmas::Network(std::size_t)>& make_net,
    const QueueSizingOptions& options) {
  const unsigned probe_threads = options.probe_threads == 0
                                     ? util::env_threads(1)
                                     : options.probe_threads;
  if (options.incremental && probe_threads > 1) {
    return find_minimal_parallel(make_net, options, probe_threads);
  }
  util::Stopwatch total;
  QueueSizingResult result;
  result.incremental = options.incremental;
  const SizingDeadline deadline(options.budget);

  // The session is built once from the smallest instance; every probe then
  // binds the capacities the candidate network would have via assumptions.
  std::optional<Verifier> session;
  if (options.incremental) {
    VerifyOptions vo = with_probe_budget(options.verify, options.budget);
    vo.symbolic_capacities = true;
    session.emplace(make_net(options.min_capacity), vo);
  }

  auto probe = [&](std::size_t capacity) {
    smt::SatResult verdict = smt::SatResult::Unknown;
    if (session.has_value()) {
      xmas::Network candidate = make_net(capacity);
      if (session->probe_compatible(candidate)) {
        CheckOverrides o;
        for (xmas::PrimId qid :
             candidate.prims_of_kind(xmas::PrimKind::Queue)) {
          o.queue_capacities.emplace_back(qid, candidate.prim(qid).capacity);
        }
        const VerifyResult r = session->check_with(o);
        verdict = r.report.result;
        result.solve_stats = r.solve_stats;
        if (verdict == smt::SatResult::Unknown) {
          result.stop_reason = util::combine(
              result.stop_reason, r.stop_reason == util::StopReason::kNone
                                      ? util::StopReason::kDegraded
                                      : r.stop_reason);
        }
      } else {
        // make_net changed more than capacities: probe this capacity the
        // slow, always-correct way.
        result.incremental = false;
        verdict = probe_from_scratch(candidate, options.verify, result);
      }
    } else {
      verdict = probe_from_scratch(make_net(capacity), options.verify, result);
    }
    result.probes.emplace_back(capacity, verdict);
    if (verdict == smt::SatResult::Unknown) ++result.unknown_probes;
    // Only a definite Unsat accepts the capacity; Unknown keeps searching
    // upward (sound under the monotonicity assumption, possibly
    // over-sized — unknown_probes tells the caller).
    return verdict == smt::SatResult::Unsat;
  };

  // Exponential search for the first deadlock-free capacity.
  std::size_t lo = options.min_capacity;  // invariant: lo-1 known-bad or min
  std::size_t hi = 0;                     // first known-good capacity
  std::size_t step = options.min_capacity;
  std::size_t last_bad = options.min_capacity - 1;
  for (std::size_t cap = options.min_capacity; cap <= options.max_capacity;) {
    if (deadline.expired()) {
      result.stop_reason =
          util::combine(result.stop_reason, util::StopReason::kDeadline);
      break;
    }
    if (probe(cap)) {
      hi = cap;
      break;
    }
    last_bad = cap;
    step *= 2;
    cap = cap + step > options.max_capacity && cap != options.max_capacity
              ? options.max_capacity
              : cap + step;
  }
  if (hi != 0) {
    // Binary search in (last_bad, hi].
    lo = last_bad + 1;
    while (lo < hi) {
      if (deadline.expired()) {
        // hi is proven free; stopping here is sound, just un-narrowed.
        result.stop_reason =
            util::combine(result.stop_reason, util::StopReason::kDeadline);
        break;
      }
      const std::size_t mid = lo + (hi - lo) / 2;
      if (probe(mid)) hi = mid;
      else lo = mid + 1;
    }
    result.minimal_capacity = hi;
  }
  if (session.has_value()) {
    const SessionStats& s = session->stats();
    result.validations += s.validations;
    result.invariant_generations += s.invariant_generations;
    result.encodes += s.encodes;
    result.solver_checks += s.checks;
    result.analysis_ms += session->analysis_ms();
    result.diagnostics =
        std::max(result.diagnostics, session->diagnostics().size());
  }
  result.seconds = total.seconds();
  return result;
}

}  // namespace advocat::core
