#!/bin/sh
# Collects the BENCH_JSON result trajectories from every built bench
# harness into one JSON-lines file (see ROADMAP "Collect BENCH_*.json").
#
# Usage: scripts/collect_bench.sh <build-dir> [output-file]
#
# Environment:
#   ADVOCAT_SMOKE=1  minimal instances (CI regression mode, seconds)
#   ADVOCAT_FULL=1   paper-scale instances (hours)
#
# Exit status is non-zero when any harness fails, so CI fails fast on
# incremental-path regressions (fig4 exits non-zero when the incremental
# and re-encode paths disagree on a minimal capacity).
set -eu

build_dir=${1:?usage: collect_bench.sh <build-dir> [output-file]}
out=${2:-BENCH_PR2.json}

if [ ! -d "$build_dir/bench" ]; then
  echo "collect_bench: no bench/ under $build_dir (built with ADVOCAT_BUILD_BENCH=ON?)" >&2
  exit 2
fi

: > "$out"
status=0
for bench in "$build_dir"/bench/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo "== running $name" >&2
  log=$(mktemp)
  if ! "$bench" >"$log" 2>&1; then
    echo "!! $name FAILED; last lines:" >&2
    tail -n 20 "$log" >&2
    status=1
  fi
  # Strip everything up to the marker so the output file is plain JSON
  # lines, one per result. The marker is not always at column 0: harnesses
  # that render tables emit it mid-line (e.g. fig4's grid cells).
  sed -n "s/^.*BENCH_JSON //p" "$log" >> "$out"
  rm -f "$log"
done

echo "collect_bench: wrote $(wc -l < "$out" | tr -d ' ') result lines to $out" >&2
exit $status
