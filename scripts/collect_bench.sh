#!/bin/sh
# Collects the BENCH_JSON result trajectories from every built bench
# harness into one JSON-lines file (see ROADMAP "Collect BENCH_*.json").
#
# Usage: scripts/collect_bench.sh <build-dir> [output-file]
#
# The output file defaults to BENCH.json; set BENCH_PR=<n> (or pass an
# explicit output file) to write the per-PR trajectory name BENCH_PR<n>.json
# that CI uploads as an artifact.
#
# Environment:
#   BENCH_PR=<n>     name the default output BENCH_PR<n>.json
#   ADVOCAT_SMOKE=1  minimal instances (CI regression mode, seconds); also
#                    enables the learned-clause regression guard below
#   ADVOCAT_FULL=1   paper-scale instances (hours)
#
# Exit status is non-zero when any harness fails, so CI fails fast on
# incremental-path regressions (fig4 exits non-zero when the incremental
# and re-encode paths *definitely* disagree on a minimal capacity — an
# unknown/timeout verdict is reported but is not a failure). In smoke mode
# the script additionally fails when the native solver reports zero learned
# clauses on the 2x2 fig4 sizing probe: that would mean CDCL clause
# learning silently stopped working and the incremental speedups are gone.
#
# After collecting, the script diffs the new native sizing times against
# the newest *other* BENCH_PR*.json next to the output (and in the repo
# root) and prints per-scenario and total old/new ratios, so the
# cross-PR perf trajectory is visible directly in CI logs. The diff is
# informational only — it never changes the exit status (timings on
# shared CI runners are too noisy to gate on).
set -eu

# Previous-trajectory selection, shared by the diff below and the
# --print-prev test mode. Reads candidate paths on stdin (one per line,
# unexpanded globs included) and prints the candidate whose BENCH_PR<n>
# numeric suffix is largest, excluding the output file itself. The suffix
# must be strictly numeric: BENCH_PR9_threads4.json and BENCH.json ride
# the same glob without being per-PR trajectories, and a lexicographic or
# version sort would rank BENCH_PR9 after BENCH_PR10.
select_prev() {
  sp_out_abs=$1
  sp_best=""
  sp_best_num=-1
  while IFS= read -r sp_cand; do
    [ -f "$sp_cand" ] || continue
    sp_num=$(basename "$sp_cand")
    sp_num=${sp_num##BENCH_PR}
    sp_num=${sp_num%.json}
    case $sp_num in
      '' | *[!0-9]*) continue ;;
    esac
    sp_cand_abs="$(cd "$(dirname "$sp_cand")" && pwd)/$(basename "$sp_cand")"
    [ "$sp_cand_abs" = "$sp_out_abs" ] && continue
    if [ "$sp_num" -gt "$sp_best_num" ]; then
      sp_best_num=$sp_num
      sp_best=$sp_cand
    fi
  done
  printf '%s\n' "$sp_best"
}

# List the previous-trajectory candidates for an output path: siblings of
# the output plus the current directory. Unmatched globs survive as
# literals; select_prev's -f test drops them.
prev_candidates() {
  pc_out=$1
  printf '%s\n' "$(dirname "$pc_out")"/BENCH_PR*.json BENCH_PR*.json
}

# Test mode: print the previous trajectory that would be compared against
# the given output file, and exit. scripts/test_collect_bench.sh pins the
# selection rules with this entry point (registered as a ctest).
if [ "${1:-}" = "--print-prev" ]; then
  out=${2:?usage: collect_bench.sh --print-prev <output-file>}
  out_abs="$(cd "$(dirname "$out")" && pwd)/$(basename "$out")"
  prev_candidates "$out" | select_prev "$out_abs"
  exit 0
fi

build_dir=${1:?usage: collect_bench.sh <build-dir> [output-file]}
if [ -n "${2:-}" ]; then
  out=$2
elif [ -n "${BENCH_PR:-}" ]; then
  out="BENCH_PR${BENCH_PR}.json"
else
  out=BENCH.json
fi

if [ ! -d "$build_dir/bench" ]; then
  echo "collect_bench: no bench/ under $build_dir (built with ADVOCAT_BUILD_BENCH=ON?)" >&2
  exit 2
fi

: > "$out"
status=0
for bench in "$build_dir"/bench/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name=$(basename "$bench")
  echo "== running $name" >&2
  log=$(mktemp)
  if ! "$bench" >"$log" 2>&1; then
    echo "!! $name FAILED; last lines:" >&2
    tail -n 20 "$log" >&2
    status=1
  fi
  # Strip everything up to the marker so the output file is plain JSON
  # lines, one per result. The marker is not always at column 0: harnesses
  # that render tables emit it mid-line (e.g. fig4's grid cells).
  sed -n "s/^.*BENCH_JSON //p" "$log" >> "$out"
  rm -f "$log"
done

# Smoke-mode regression guard: clause learning must be *active* on the
# native 2x2 sizing probe. The fig4 harness emits one line per backend
# with the session-cumulative solver stats; a native line with
# "learned_clauses":0 (or no native line at all) fails the run.
if [ -n "${ADVOCAT_SMOKE:-}" ]; then
  native_2x2=$(grep '"bench":"fig4_queue_sizes"' "$out" \
      | grep '"backend":"native"' | grep '"mesh":2' || true)
  if [ -z "$native_2x2" ]; then
    echo "collect_bench: SMOKE GUARD: no native 2x2 fig4 sizing line in $out" >&2
    status=1
  elif echo "$native_2x2" | grep -q '"learned_clauses":0[,}]'; then
    echo "collect_bench: SMOKE GUARD: native 2x2 sizing reports zero learned clauses — CDCL learning is inactive:" >&2
    echo "$native_2x2" >&2
    status=1
  fi
fi

echo "collect_bench: wrote $(wc -l < "$out" | tr -d ' ') result lines to $out" >&2

# Trajectory diff: the BENCH_PR<n>.json with the largest numeric PR
# suffix (other than $out) wins — see select_prev above. Lines are
# matched per scenario; old trajectories that predate the per-backend
# "backend" field count as native-comparable only when they were collected
# without Z3 — PR2's were Auto/Z3, which the ratio labels call out.
# Candidates are compared against $out by absolute path: the same file can
# show up under two spellings when $out lives in the current directory.
out_abs="$(cd "$(dirname "$out")" && pwd)/$(basename "$out")"
prev=$(prev_candidates "$out" | select_prev "$out_abs")
if [ -n "$prev" ] && command -v python3 >/dev/null 2>&1; then
  echo "collect_bench: trajectory vs $prev (ratio >1 = faster now):" >&2
  python3 - "$prev" "$out" >&2 <<'PYEOF' || true
import json, sys

def load(path):
    rows = {}
    for line in open(path):
        try:
            j = json.loads(line)
        except ValueError:
            continue
        bench = j.get("bench")
        time_key = next(
            (k for k in ("seconds", "sizing_seconds", "total_seconds")
             if k in j), None)
        if bench is None or time_key is None:
            continue
        id_keys = ("mesh", "directory_node", "capacity", "nodes", "vcs",
                   "scenario", "name", "variant", "width", "height")
        ident = tuple((k, j[k]) for k in id_keys if k in j)
        rows.setdefault((bench, ident, j.get("backend")), j[time_key])
    return rows

old, new = load(sys.argv[1]), load(sys.argv[2])
old_backends = {b for (_, _, b) in old}
totals = {}
for (bench, ident, backend), secs in sorted(new.items()):
    # Pre-backend-field trajectories: match any backend's line.
    prev = old.get((bench, ident, backend))
    label = backend or "?"
    if prev is None and None in old_backends:
        prev = old.get((bench, ident, None))
        label = f"{backend or '?'} vs pre-PR4 default backend"
    if prev is None or secs <= 0:
        continue
    key = (bench, label)
    t = totals.setdefault(key, [0.0, 0.0])
    t[0] += prev
    t[1] += secs
for (bench, label), (p, n) in sorted(totals.items()):
    print(f"  {bench} [{label}]: {p:.3f}s -> {n:.3f}s  ratio {p / n:.2f}x")
if not totals:
    print("  (no comparable scenarios)")
PYEOF
fi
exit "$status"
