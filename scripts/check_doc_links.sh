#!/bin/sh
# Checks that every relative markdown link in the repo docs resolves to an
# existing file, so docs/ can't silently rot as code moves.
#
# Usage: scripts/check_doc_links.sh [file.md ...]
#   With no arguments, checks README.md and docs/*.md from the repo root.
#
# A link is every `](target)` occurrence. External targets (scheme:// or
# mailto:) and pure in-page anchors (#...) are skipped; a trailing #anchor
# on a file target is stripped before the existence check (anchor validity
# is not checked). Exit status 1 when any target is missing.
set -eu

cd "$(dirname "$0")/.."

# Default file set as positional parameters, so names with spaces survive.
if [ "$#" -eq 0 ]; then
  set -- README.md docs/*.md
fi

status=0
checked=0
for f in "$@"; do
  [ -f "$f" ] || { echo "check_doc_links: no such file: $f" >&2; status=1; continue; }
  dir=$(dirname "$f")
  # One target per line: grab the (...) of every ](...) occurrence.
  # Read line-wise (no word splitting) so targets with spaces survive.
  while IFS= read -r target; do
    case "$target" in
      *://*|mailto:*|\#*) continue ;;
    esac
    path=${target%%#*}
    [ -n "$path" ] || continue
    checked=$((checked + 1))
    if [ ! -e "$dir/$path" ]; then
      echo "check_doc_links: $f: broken link -> $target" >&2
      status=1
    fi
  done <<EOF
$(grep -o ']([^)]*)' "$f" | sed 's/^](//; s/)$//')
EOF
done

echo "check_doc_links: $checked relative links checked" >&2
exit "$status"
