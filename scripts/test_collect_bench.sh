#!/bin/sh
# Regression test for collect_bench.sh's previous-trajectory selection
# (the --print-prev entry point): the numeric PR suffix decides — not
# lexicographic or version order — and artifacts that ride the same
# BENCH_PR* glob without being per-PR trajectories (threads variants,
# non-numeric suffixes) are ignored. Registered as the ctest
# `collect_bench_select_prev`.
set -eu

script_dir=$(CDPATH='' cd -- "$(dirname -- "$0")" && pwd)
collect="$script_dir/collect_bench.sh"

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM
cd "$tmp"

fail() {
  echo "test_collect_bench: FAIL: $1" >&2
  exit 1
}

# check <description> <output-file> <expected-basename-or-empty>
check() {
  got=$("$collect" --print-prev "$2")
  if [ -n "$got" ]; then got=$(basename "$got"); fi
  [ "$got" = "$3" ] || fail "$1: want '$3', got '$got'"
}

# No candidates at all: selection is empty, not an error.
check "empty directory selects nothing" BENCH_PR1.json ""

: > BENCH_PR2.json
: > BENCH_PR9.json
: > BENCH_PR10.json

# PR9 sorts after PR10 lexicographically and version-sort ranks the
# basenames, not the PR numbers, once suffixes enter the glob — the
# numeric suffix must decide.
check "numeric suffix beats lexicographic order" \
  BENCH_PR11.json BENCH_PR10.json

# The output file itself is never its own previous trajectory.
check "output file is excluded" BENCH_PR10.json BENCH_PR9.json

# Artifacts riding the glob without a strictly numeric suffix are not
# trajectories: the threads variant and a malformed name must not win
# even though both version-sort after BENCH_PR10.json.
: > BENCH_PR10_threads4.json
: > BENCH_PRx.json
check "non-numeric suffixes are ignored" BENCH_PR11.json BENCH_PR10.json

# A default-named output still diffs against the newest PR trajectory.
check "BENCH.json output compares against newest PR" \
  BENCH.json BENCH_PR10.json

# Candidates next to an output in another directory are found too (and
# compete numerically with the current directory's trajectories).
mkdir sub
: > sub/BENCH_PR12.json
check "siblings of the output directory are candidates" \
  sub/BENCH_PR13.json BENCH_PR12.json

echo "test_collect_bench: PASS"
